package repro_test

import (
	"fmt"
	"math/rand"
	"strings"

	"repro"
)

// Build a Bell pair and inspect amplitudes and multiplication counts.
func ExampleSimulate() {
	c := repro.NewCircuit(2)
	c.H(0).CX(0, 1)
	res, err := repro.Simulate(c, repro.Sequential())
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(|00>) = %.2f\n", real(res.State.Amplitude(0))*real(res.State.Amplitude(0)))
	fmt.Printf("P(|11>) = %.2f\n", real(res.State.Amplitude(3))*real(res.State.Amplitude(3)))
	fmt.Printf("matrix-vector steps: %d\n", res.MatVecSteps)
	// Output:
	// P(|00>) = 0.50
	// P(|11>) = 0.50
	// matrix-vector steps: 2
}

// Combining operations trades matrix-matrix for matrix-vector
// multiplications — the paper's core idea.
func ExampleKOperations() {
	c := repro.NewCircuit(3)
	for i := 0; i < 12; i++ {
		c.T(i % 3)
	}
	seq, _ := repro.Simulate(c, repro.Sequential())
	comb, _ := repro.Simulate(c, repro.KOperations(4))
	fmt.Printf("sequential:   %2d mat-vec, %2d mat-mat\n", seq.MatVecSteps, seq.MatMatSteps)
	fmt.Printf("k-operations: %2d mat-vec, %2d mat-mat\n", comb.MatVecSteps, comb.MatMatSteps)
	// Output:
	// sequential:   12 mat-vec,  0 mat-mat
	// k-operations:  3 mat-vec,  9 mat-mat
}

// Factor 15 with the DD-construct strategy (n+1 = 5 qubits).
func ExampleFactor() {
	rng := rand.New(rand.NewSource(5))
	var res *repro.FactoringResult
	for i := 0; i < 8; i++ {
		r, err := repro.Factor(15, 7, rng)
		if err != nil {
			panic(err)
		}
		if r.Factored {
			res = r
			break
		}
	}
	lo, hi := res.Factors[0], res.Factors[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	fmt.Printf("15 = %d x %d (on %d qubits)\n", lo, hi, res.Qubits)
	// Output:
	// 15 = 3 x 5 (on 5 qubits)
}

// The DD-based equivalence checker verifies optimisations.
func ExampleEquivalent() {
	a := repro.NewCircuit(2)
	a.H(0).H(0).CX(0, 1)
	optimised, stats := repro.Optimize(a)
	same, err := repro.Equivalent(a, optimised)
	if err != nil {
		panic(err)
	}
	fmt.Printf("removed %d gates, still equivalent: %v\n", stats.Removed(), same)
	// Output:
	// removed 2 gates, still equivalent: true
}

// OpenQASM programs import directly.
func ExampleImportQASM() {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q;
ccx q[0],q[1],q[2];
`
	c, err := repro.ImportQASM(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d qubits, %d gates\n", c.NQubits, c.GateCount())
	// Output:
	// 3 qubits, 4 gates
}

// Grover search with the DD-repeating strategy: the iteration matrix
// is combined once and re-used.
func ExampleGroverCircuit() {
	c := repro.GroverCircuit(8, 42, 0)
	res, err := repro.SimulateOpts(c, repro.Options{UseBlocks: true})
	if err != nil {
		panic(err)
	}
	probs := res.State.Probabilities()
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	fmt.Printf("most likely outcome: %d (P = %.3f)\n", best, probs[best])
	// Output:
	// most likely outcome: 42 (P = 1.000)
}
