package repro

// Benchmarks regenerating the paper's evaluation artefacts through the
// standard Go tooling — one benchmark family per table/figure:
//
//	go test -bench=Fig8 -benchmem .     # Fig. 8  (k-operations sweep)
//	go test -bench=Fig9 -benchmem .     # Fig. 9  (max-size sweep)
//	go test -bench=Table1 -benchmem .   # Table I (grover / DD-repeating)
//	go test -bench=Table2 -benchmem .   # Table II (shor / DD-construct)
//
// cmd/ddbench renders the same experiments as the paper's tables and
// figures with speed-up columns; these benchmarks expose the underlying
// runtimes to `benchstat`-style tooling instead.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/grover"
	"repro/internal/opt"
	"repro/internal/sched"
	"repro/internal/shor"
	"repro/internal/supremacy"
)

// fig8Workloads is the reduced benchmark mix (one per family plus the
// deeper supremacy instance) so `go test -bench=.` stays in the
// minutes range.
func figBenchWorkloads() []bench.Workload {
	return []bench.Workload{
		bench.GroverWorkload(14),
		bench.ShorWorkload(15, 7),
		bench.SupremacyWorkload(4, 4, 12, 7),
		bench.SupremacyWorkload(4, 4, 16, 7),
	}
}

func runWorkload(b *testing.B, w bench.Workload, opt core.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the Fig. 8 data points: each sub-benchmark
// is one (workload, k) cell; k=1 rows are the sequential baseline the
// speed-ups divide by.
func BenchmarkFig8(b *testing.B) {
	for _, w := range figBenchWorkloads() {
		for _, k := range []int{1, 2, 8, 32} {
			var st core.Strategy = core.KOperations{K: k}
			if k == 1 {
				st = core.Sequential{}
			}
			b.Run(fmt.Sprintf("%s/k=%d", w.Name, k), func(b *testing.B) {
				runWorkload(b, w, core.Options{Strategy: st})
			})
		}
	}
}

// BenchmarkFig9 regenerates the Fig. 9 data points over s_max.
func BenchmarkFig9(b *testing.B) {
	for _, w := range figBenchWorkloads() {
		for _, s := range []int{16, 128, 1024} {
			b.Run(fmt.Sprintf("%s/smax=%d", w.Name, s), func(b *testing.B) {
				runWorkload(b, w, core.Options{Strategy: core.MaxSize{SMax: s}})
			})
		}
	}
}

// BenchmarkTable1 regenerates Table I: per grover size the three
// columns t_sota (sequential), t_general (k-operations) and
// t_DD-repeating (block matrix re-used across iterations).
func BenchmarkTable1(b *testing.B) {
	for _, n := range []int{12, 14, 16} {
		w := bench.GroverWorkload(n)
		b.Run(fmt.Sprintf("%s/sota", w.Name), func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.Sequential{}})
		})
		b.Run(fmt.Sprintf("%s/general", w.Name), func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.KOperations{K: 8}})
		})
		b.Run(fmt.Sprintf("%s/dd-repeating", w.Name), func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.Sequential{}, UseBlocks: true})
		})
	}
}

// BenchmarkTable2 regenerates Table II: per shor instance t_sota,
// t_general (gate-level Beauregard circuit) and t_DD-construct (direct
// permutation-DD oracle on n+1 qubits).
func BenchmarkTable2(b *testing.B) {
	instances := []bench.ShorInstance{{N: 15, A: 7}, {N: 21, A: 2}, {N: 33, A: 5}}
	for _, inst := range instances {
		w := bench.ShorWorkload(inst.N, inst.A)
		b.Run(fmt.Sprintf("%s/sota", w.Name), func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.Sequential{}})
		})
		b.Run(fmt.Sprintf("%s/general", w.Name), func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.MaxSize{SMax: 128}})
		})
		b.Run(fmt.Sprintf("%s/dd-construct", w.Name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shor.SimulateDDConstruct(inst.N, inst.A, rand.New(rand.NewSource(1))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The DD-construct column scales to the paper's own moduli.
	for _, inst := range []bench.ShorInstance{{N: 1007, A: 602}, {N: 1851, A: 17}} {
		b.Run(fmt.Sprintf("shor_%d_%d/dd-construct", inst.N, inst.A), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shor.SimulateDDConstruct(inst.N, inst.A, rand.New(rand.NewSource(1))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Trace measures the two parenthesisations of Example 3 on
// the supremacy slice: Eq. 1 per-gate application vs. combining k=4
// operations first.
func BenchmarkFig5Trace(b *testing.B) {
	c := supremacy.Circuit(4, 4, 14, 7)
	b.Run("eq1-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(c, core.Options{Strategy: core.Sequential{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eq2-combined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(c, core.Options{Strategy: core.KOperations{K: 4}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDenseBaseline contrasts the array-based simulation the paper
// argues against (footnote 9 / refs [13-17]) on the same workload.
func BenchmarkDenseBaseline(b *testing.B) {
	c := supremacy.Circuit(4, 4, 12, 7)
	b.Run("dense-array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dense.Simulate(c)
		}
	})
	b.Run("dd-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(c, core.Options{Strategy: core.Sequential{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations of design choices called out in DESIGN.md -----------------

// BenchmarkAblationCombineOrder contrasts the linear fold used by the
// DD-repeating block combiner against a balanced-tree fold on the same
// gate range (one full Grover iteration and a supremacy slice).
func BenchmarkAblationCombineOrder(b *testing.B) {
	grov := bench.GroverWorkload(14)
	_ = grov
	gc := groverIterationCircuit()
	sup := supremacy.Circuit(4, 4, 8, 7)
	cases := []struct {
		name string
		c    *circuitAlias
	}{
		{"grover-iter", &circuitAlias{gc}},
		{"supremacy", &circuitAlias{sup}},
	}
	for _, tc := range cases {
		b.Run(tc.name+"/linear", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := dd.New()
				if _, err := core.CombineGates(eng, tc.c.c, 0, tc.c.c.GateCount()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/tree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := dd.New()
				if _, err := core.CombineGatesTree(eng, tc.c.c, 0, tc.c.c.GateCount()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type circuitAlias struct{ c *circuit.Circuit }

// groverIterationCircuit extracts one Grover iteration body as a
// standalone circuit.
func groverIterationCircuit() *circuit.Circuit {
	full := grover.Circuit(14, 1234, 1)
	blk := full.Blocks[0]
	c := circuit.New(full.NQubits)
	c.Gates = append(c.Gates, full.Gates[blk.Start:blk.End]...)
	return c
}

// BenchmarkAblationAdaptive contrasts the fixed-threshold max-size
// strategy against the state-relative adaptive variant.
func BenchmarkAblationAdaptive(b *testing.B) {
	for _, w := range []bench.Workload{
		bench.SupremacyWorkload(4, 4, 16, 7),
		bench.ShorWorkload(15, 7),
	} {
		b.Run(w.Name+"/max-size-128", func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.MaxSize{SMax: 128}})
		})
		b.Run(w.Name+"/adaptive-1", func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.Adaptive{Ratio: 1}})
		})
		b.Run(w.Name+"/adaptive-0.25", func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.Adaptive{Ratio: 0.25}})
		})
	}
}

// BenchmarkAblationGCThreshold measures the cost of garbage-collecting
// too eagerly vs. not at all on a long grover run.
func BenchmarkAblationGCThreshold(b *testing.B) {
	w := bench.GroverWorkload(14)
	for _, thr := range []int{5_000, 50_000, 500_000, -1} {
		name := fmt.Sprintf("threshold=%d", thr)
		if thr < 0 {
			name = "threshold=off"
		}
		b.Run(name, func(b *testing.B) {
			runWorkload(b, w, core.Options{Strategy: core.KOperations{K: 4}, GCThreshold: thr})
		})
	}
}

// BenchmarkAblationScheduling measures whether commutation-aware
// reordering (internal/sched) changes combination effectiveness.
func BenchmarkAblationScheduling(b *testing.B) {
	c := supremacy.Circuit(4, 4, 14, 7)
	variants := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"original", c},
		{"asap", sched.ASAP(c)},
		{"by-locality", sched.ByLocality(c)},
	}
	for _, v := range variants {
		b.Run(v.name+"/k=4", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(v.c, core.Options{Strategy: core.KOperations{K: 4}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(v.name+"/max-size-128", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(v.c, core.Options{Strategy: core.MaxSize{SMax: 128}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOptimizer measures simulation time with and without
// the peephole optimiser on a redundancy-rich workload (a circuit
// composed with its own inverse prefix).
func BenchmarkAblationOptimizer(b *testing.B) {
	base := supremacy.Circuit(3, 4, 10, 3)
	c := circuit.New(base.NQubits)
	c.Gates = append(c.Gates, base.Gates...)
	c.AppendCircuit(base.Inverse())
	c.Gates = append(c.Gates, base.Gates...)
	optimised, _ := opt.Optimize(c)
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(c, core.Options{Strategy: core.MaxSize{SMax: 128}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimised", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(optimised, core.Options{Strategy: core.MaxSize{SMax: 128}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
