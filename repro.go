// Package repro is the public facade of the DD-based quantum circuit
// simulator reproducing Zulehner & Wille, "Matrix-Vector vs.
// Matrix-Matrix Multiplication: Potential in DD-based Simulation of
// Quantum Computations" (DATE 2019).
//
// The simulator represents states and operators as edge-weighted
// decision diagrams and supports the paper's strategies for combining
// operations via matrix-matrix multiplication before they are applied
// to the state vector:
//
//	c := repro.NewCircuit(2)
//	c.H(0).CX(0, 1)
//	res, err := repro.Simulate(c, repro.MaxSize(64))
//
// Algorithm generators (Grover, Shor/Beauregard, Google-style
// supremacy circuits, QFT), a textual circuit format, and the paper's
// benchmark harness are included; see the sub-packages under internal/
// and the runnable programs under cmd/ and examples/.
package repro

import (
	"io"
	"math/rand"

	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dynamic"
	"repro/internal/grover"
	"repro/internal/hamiltonian"
	"repro/internal/opt"
	"repro/internal/qasm"
	"repro/internal/qft"
	"repro/internal/realfmt"
	"repro/internal/shor"
	"repro/internal/supremacy"
)

// Re-exported core types. The facade keeps one import path for typical
// use; power users can import the internal packages directly.
type (
	// Circuit is a gate sequence over n qubits.
	Circuit = circuit.Circuit
	// Gate is one operation of a circuit.
	Gate = circuit.Gate
	// Strategy decides when combined operations are applied to the state.
	Strategy = core.Strategy
	// Options configures a simulation run.
	Options = core.Options
	// Result is the outcome of a simulation run.
	Result = core.Result
	// State is a quantum state represented as a decision diagram.
	State = dd.VEdge
	// Operator is a unitary represented as a decision diagram.
	Operator = dd.MEdge
	// Engine owns the decision-diagram tables of one simulation.
	Engine = dd.Engine
	// FactoringResult is the outcome of a Shor order-finding run.
	FactoringResult = shor.Result
	// DynamicProgram is a circuit with intermediate measurements, resets
	// and classically-controlled gates.
	DynamicProgram = dynamic.Program
)

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// ParseCircuit reads a circuit in the textual format (see
// internal/circuit).
func ParseCircuit(r io.Reader) (*Circuit, error) { return circuit.Parse(r) }

// NewEngine returns a fresh decision-diagram engine.
func NewEngine() *Engine { return dd.New() }

// Sequential returns the matrix-vector-only baseline strategy (Eq. 1 of
// the paper — the state of the art before this work).
func Sequential() Strategy { return core.Sequential{} }

// KOperations returns the strategy combining runs of k operations via
// matrix-matrix multiplication before each simulation step (Sec. IV-A).
func KOperations(k int) Strategy { return core.KOperations{K: k} }

// MaxSize returns the strategy combining operations until the product's
// DD exceeds sMax nodes (Sec. IV-A).
func MaxSize(sMax int) Strategy { return core.MaxSize{SMax: sMax} }

// Adaptive returns the strategy that flushes once the operation DD
// exceeds ratio times the state DD — an extension of max-size that
// normalises the threshold by the actual matrix-vector cost driver.
func Adaptive(ratio float64) Strategy { return core.Adaptive{Ratio: ratio} }

// Planner returns the cost-model-driven adaptive strategy with default
// knobs: it sizes the combination window per circuit segment from a
// static locality model plus measured engine-counter cost, so no k /
// s_max / ratio tuning is needed (see core.Planner for the knobs).
func Planner() Strategy { return &core.Planner{} }

// Simulate runs c from |0…0> under the given strategy (nil means
// sequential) and returns the final state as a decision diagram.
func Simulate(c *Circuit, strategy Strategy) (*Result, error) {
	return core.Run(c, core.Options{Strategy: strategy})
}

// SimulateOpts runs c with full control over the options, including the
// DD-repeating treatment of repeated blocks (Options.UseBlocks).
func SimulateOpts(c *Circuit, opt Options) (*Result, error) {
	return core.Run(c, opt)
}

// GroverCircuit returns a Grover search over 2^n entries for the marked
// element, with the iteration recorded as a repeatable block
// (iterations = 0 selects the optimal count).
func GroverCircuit(n int, marked uint64, iterations int) *Circuit {
	return grover.Circuit(n, marked, iterations)
}

// GroverIterations returns the optimal Grover iteration count for n
// qubits.
func GroverIterations(n int) int { return grover.Iterations(n) }

// SupremacyCircuit returns a Boixo-et-al.-style random grid circuit.
func SupremacyCircuit(rows, cols, depth int, seed int64) *Circuit {
	return supremacy.Circuit(rows, cols, depth, seed)
}

// QFTCircuit returns the quantum Fourier transform on n qubits.
func QFTCircuit(n int) *Circuit { return qft.Circuit(n, true) }

// Factor runs Shor's algorithm for N with base a using the paper's
// DD-construct strategy (oracle built directly as a permutation DD on
// n+1 qubits) and returns the recovered order and factors. rng drives
// the measurement outcomes.
func Factor(n, a uint64, rng *rand.Rand) (*FactoringResult, error) {
	return shor.SimulateDDConstruct(n, a, rng)
}

// FactorGateLevel runs the same computation through the full Beauregard
// 2n+3-qubit circuit simulated with the given strategy — the expensive
// way the paper's Table II baselines measure.
func FactorGateLevel(n, a uint64, strategy Strategy, rng *rand.Rand) (*FactoringResult, error) {
	return shor.SimulateGateLevel(n, a, core.Options{Strategy: strategy}, rng)
}

// BernsteinVazirani returns the one-query circuit recovering the secret
// parity mask (qubits [0,n) input, qubit n ancilla).
func BernsteinVazirani(n int, secret uint64) *Circuit {
	return algos.BernsteinVazirani(n, secret)
}

// DeutschJozsa returns the one-query constant-vs-balanced circuit; a
// zero mask selects the constant oracle.
func DeutschJozsa(n int, mask uint64) *Circuit {
	if mask == 0 {
		return algos.DeutschJozsa(n, false, 0, false)
	}
	return algos.DeutschJozsa(n, true, mask, false)
}

// PhaseEstimation returns the t-counting-qubit phase estimation circuit
// for the eigenphase θ of P(2πθ).
func PhaseEstimation(t int, theta float64) *Circuit {
	return algos.PhaseEstimation(t, theta)
}

// ImportQASM reads an OpenQASM 2.0 program, returning the unitary part
// as a circuit (measurements are dropped; use internal/qasm for them).
func ImportQASM(r io.Reader) (*Circuit, error) {
	prog, err := qasm.Parse(r)
	if err != nil {
		return nil, err
	}
	return prog.Circuit, nil
}

// ExportQASM writes the circuit as an OpenQASM 2.0 program.
func ExportQASM(w io.Writer, c *Circuit) error { return qasm.Export(w, c) }

// Equivalent decides whether two circuits implement the same unitary up
// to global phase by comparing their combined operation DDs.
func Equivalent(c1, c2 *Circuit) (bool, error) {
	res, err := core.Equivalent(nil, c1, c2)
	if err != nil {
		return false, err
	}
	return res.Equivalent, nil
}

// NewDynamicProgram returns an empty dynamic circuit (intermediate
// measurements, resets, classically-controlled gates).
func NewDynamicProgram(nQubits, nClbits int) *DynamicProgram {
	return dynamic.New(nQubits, nClbits)
}

// ImportDynamicQASM parses an OpenQASM 2.0 program including measure,
// reset and `if` statements into a dynamic program.
func ImportDynamicQASM(r io.Reader) (*DynamicProgram, error) {
	return qasm.ParseDynamic(r)
}

// ImportReal reads a RevLib .real reversible circuit.
func ImportReal(r io.Reader) (*Circuit, error) {
	prog, err := realfmt.Parse(r)
	if err != nil {
		return nil, err
	}
	return prog.Circuit, nil
}

// SaveState serialises a state DD (shared structure preserved).
func SaveState(w io.Writer, v State) error { return dd.WriteV(w, v) }

// LoadState deserialises a state DD into the engine.
func LoadState(r io.Reader, eng *Engine) (State, error) { return dd.ReadV(r, eng) }

// Optimize runs the peephole circuit optimiser (inverse-pair
// cancellation, rotation merging, identity removal) and returns the
// reduced circuit; behaviour is preserved exactly.
func Optimize(c *Circuit) (*Circuit, OptimizeStats) {
	return opt.Optimize(c)
}

// OptimizeStats reports what the optimiser removed.
type OptimizeStats = opt.Stats

// TFIM is a transverse-field Ising chain whose Trotterized time
// evolution serves as a further benchmark family (each Trotter step is
// a repeated block the DD-repeating strategy re-uses).
type TFIM = hamiltonian.TFIM
