// Package obs is the observability layer of the simulator: a
// structured event stream with pluggable sinks, and a metrics registry
// of counters, gauges and fixed-bucket histograms.
//
// The paper's entire argument is a cost model — DD node counts and
// cache behaviour, not matrix dimension, decide whether combining
// gates beats gate-at-a-time application — so the quantities that
// matter are per-step trajectories, not end-of-run aggregates. The
// runner (internal/core) emits one Event per applied operation
// carrying wall time, top-level multiplication counts, live node
// counts and cache/GC deltas; sinks consume them as an in-memory ring
// (Ring), a JSONL file (JSONL), or a human-readable progress feed
// (Progress). The Registry snapshots as JSON and as Prometheus text
// exposition for scraping.
//
// The package depends only on the standard library and knows nothing
// about the DD engine: internal/core bridges engine callbacks
// (dd.EngineObserver) into events and metrics, so the engine's
// uninstrumented hot path stays a single nil-check branch.
package obs

import (
	"fmt"
	"time"
)

// Kind classifies an Event.
type Kind uint8

const (
	// KindRunStart opens a run: circuit name, total gates, start gate.
	KindRunStart Kind = iota + 1
	// KindStep is one applied operation (matrix-vector application),
	// including sequential replays during a budget fallback.
	KindStep
	// KindFallback marks a budget abort degrading to sequential replay.
	KindFallback
	// KindGC is one completed engine garbage collection.
	KindGC
	// KindCheckpoint marks a checkpoint handed to the caller.
	KindCheckpoint
	// KindAbort marks a run abort (deadline, budget, cancellation,
	// injected fault, recovered panic); Event.Abort carries the kind.
	KindAbort
	// KindRunEnd closes a run and carries the run totals.
	KindRunEnd
	// KindVerify is one integrity verification pass (audit, norm drift,
	// unitarity, dense-oracle comparison); Event.Check names the failing
	// check, empty when the pass was clean.
	KindVerify
	// KindRepair marks a corruption recovery: the state was rebuilt into
	// a fresh engine and the in-flight gates replayed. Event.Combined is
	// the number of gates replayed; Event.Check names the check that
	// triggered the repair.
	KindRepair
	// KindPlanner is one flush decision of the adaptive strategy planner
	// (core.Planner): Event.Decision names the trip ("window", "ratio",
	// "growth", "cost"), Event.Combined the gates in the flushed window,
	// Event.OpNodes/StateNodes the sizes the decision weighed, and
	// Event.Window the planner's target combination window at the
	// decision.
	KindPlanner
	// KindReorder is one dynamic variable-reordering pass (sifting):
	// Event.Swaps counts adjacent level swaps, Event.SiftPasses the
	// variables sifted, and Event.NodesBefore/NodesAfter the state DD
	// size around the pass.
	KindReorder
	// KindPressure is one action of the memory-pressure governor's
	// degradation ladder: Event.Level is the pressure band ("low",
	// "high", "critical"), Event.Rung the ladder rung taken (1–5, 0 for
	// a budget grow), Event.Action what was done ("gc", "flush",
	// "sift", "approx", "grow", "park"), Event.NodesBefore/NodesAfter
	// the live-node counts around the action, and Event.Fidelity the
	// fidelity bound of an approximation rung.
	KindPressure
)

var kindNames = [...]string{
	KindRunStart:   "run_start",
	KindStep:       "step",
	KindFallback:   "fallback",
	KindGC:         "gc",
	KindCheckpoint: "checkpoint",
	KindAbort:      "abort",
	KindRunEnd:     "run_end",
	KindVerify:     "verify",
	KindRepair:     "repair",
	KindPlanner:    "planner",
	KindReorder:    "reorder",
	KindPressure:   "pressure",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name back into a Kind.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return fmt.Errorf("obs: invalid event kind %s", s)
	}
	s = s[1 : len(s)-1]
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one structured observation of a simulation run. Fields not
// meaningful for a kind are zero and omitted from JSON. Counter-like
// fields (multiplications, cache traffic, GC activity) are deltas over
// the step on KindStep events and run totals on KindRunEnd.
type Event struct {
	Seq  uint64 `json:"seq"`
	Kind Kind   `json:"kind"`
	// TimeUnixNano is the wall-clock emission time.
	TimeUnixNano int64 `json:"time_unix_ns"`
	// Gate is the gate index one past the last gate reflected in the
	// state at emission time.
	Gate int `json:"gate"`

	// Circuit and TotalGates identify the run (run_start / run_end).
	Circuit    string `json:"circuit,omitempty"`
	TotalGates int    `json:"total_gates,omitempty"`

	// WallNS is the duration of the step (KindStep) or of the whole
	// run (KindRunEnd), in nanoseconds.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Combined is the number of gates folded into the applied
	// operation matrix (KindStep), or the number of gates a fallback
	// will replay (KindFallback).
	Combined int `json:"combined,omitempty"`
	// OpNodes and StateNodes are the DD sizes of the applied operation
	// matrix and of the state after the step.
	OpNodes    int `json:"op_nodes,omitempty"`
	StateNodes int `json:"state_nodes,omitempty"`
	// VLive and MLive are the live unique-table node counts at
	// emission time.
	VLive int `json:"v_live,omitempty"`
	MLive int `json:"m_live,omitempty"`

	// Top-level multiplication counts (the paper's Eq. 1 vs Eq. 2
	// trade) and engine cache/allocation/GC activity.
	MatVecMuls uint64 `json:"matvec_muls,omitempty"`
	MatMatMuls uint64 `json:"matmat_muls,omitempty"`
	// MulRecursions counts multiplication-kernel recursion steps and
	// IdentitySkipsMV/MM the identity short-circuits taken inside them
	// (see dd.Stats); together they show how much recursion the
	// identity-aware kernels avoided per step / per run.
	MulRecursions   uint64 `json:"mul_recursions,omitempty"`
	IdentitySkipsMV uint64 `json:"identity_skips_mv,omitempty"`
	IdentitySkipsMM uint64 `json:"identity_skips_mm,omitempty"`
	CacheLookups    uint64 `json:"cache_lookups,omitempty"`
	CacheHits       uint64 `json:"cache_hits,omitempty"`
	NodesCreated    uint64 `json:"nodes_created,omitempty"`
	GCs             uint64 `json:"gcs,omitempty"`
	GCPauseNS       int64  `json:"gc_pause_ns,omitempty"`
	// GCFreed is the number of nodes reclaimed (KindGC only).
	GCFreed int `json:"gc_freed,omitempty"`

	// PeakNodes and Fallbacks are run totals (KindRunEnd).
	PeakNodes int `json:"peak_nodes,omitempty"`
	Fallbacks int `json:"fallbacks,omitempty"`

	// Fallback marks a step replayed sequentially after a budget abort.
	Fallback bool `json:"fallback,omitempty"`
	// Block metadata for DD-repeating steps.
	FromBlock  bool   `json:"from_block,omitempty"`
	Block      string `json:"block,omitempty"`
	BlockReuse bool   `json:"block_reuse,omitempty"`

	// Abort is the failure kind ("deadline", "budget", "canceled",
	// "injected", "panic", "corruption") on KindAbort and on the
	// KindRunEnd of an aborted run; empty on clean runs.
	Abort string `json:"abort,omitempty"`

	// Check names the integrity check involved in a KindVerify or
	// KindRepair event ("audit", "norm", "unitarity", "oracle"); empty
	// on a clean verification pass.
	Check string `json:"check,omitempty"`

	// Decision names the planner trip that caused a KindPlanner flush
	// ("window", "ratio", "growth", "cost"); Window is the planner's
	// target combination window at the decision.
	Decision string `json:"decision,omitempty"`
	Window   int    `json:"window,omitempty"`

	// Dynamic reordering telemetry (KindReorder; Swaps and SiftPasses
	// are also run totals on KindRunEnd). NodesBefore/NodesAfter double
	// as the live-node counts around a KindPressure action.
	Swaps       uint64 `json:"swaps,omitempty"`
	SiftPasses  uint64 `json:"sift_passes,omitempty"`
	NodesBefore int    `json:"nodes_before,omitempty"`
	NodesAfter  int    `json:"nodes_after,omitempty"`

	// Pressure-governor telemetry (KindPressure; see core's degradation
	// ladder). Level is the pressure band, Rung the ladder rung, Action
	// the measure taken, Fidelity the bound of an approximation rung.
	// Degradations and FidelityBound are run totals (KindRunEnd): the
	// number of ladder actions taken and the cumulative fidelity lower
	// bound (omitted when the run stayed exact).
	Level         string  `json:"level,omitempty"`
	Rung          int     `json:"rung,omitempty"`
	Action        string  `json:"action,omitempty"`
	Fidelity      float64 `json:"fidelity,omitempty"`
	Degradations  int     `json:"degradations,omitempty"`
	FidelityBound float64 `json:"fidelity_bound,omitempty"`
}

// Time returns the emission time as a time.Time.
func (e Event) Time() time.Time { return time.Unix(0, e.TimeUnixNano) }

// Wall returns the step/run duration.
func (e Event) Wall() time.Duration { return time.Duration(e.WallNS) }
