package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink consumes the event stream of a run. Emit is called
// synchronously from the simulation goroutine, so implementations must
// be cheap; anything expensive (disk flushes, rendering) should be
// buffered or throttled. Sinks need not be safe for concurrent use —
// a run emits from a single goroutine.
type Sink interface {
	Emit(Event)
}

// MultiSink fans every event out to each sink in order.
type MultiSink []Sink

// Emit forwards e to every sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// --- SyncSink -----------------------------------------------------------

// SyncSink makes any sink safe for concurrent emitters by serialising
// Emit calls behind a mutex. The parallel batch runtime wraps shared
// sinks (a Progress feed, a JSONL file) in one SyncSink so events from
// concurrently running jobs interleave whole, not torn — note the
// event *streams* of different jobs still interleave, so stateful
// renderers see steps of several runs mixed together.
type SyncSink struct {
	mu sync.Mutex
	s  Sink
}

// NewSyncSink wraps s; a nil s yields a sink that drops everything.
func NewSyncSink(s Sink) *SyncSink { return &SyncSink{s: s} }

// Emit forwards e to the wrapped sink under the lock.
func (s *SyncSink) Emit(e Event) {
	if s.s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.s.Emit(e)
}

// --- Ring ---------------------------------------------------------------

// Ring is a fixed-capacity in-memory sink keeping the most recent
// events. It is the default way to hold a bounded trace of a long run
// without unbounded growth.
type Ring struct {
	buf  []Event
	next int
	full bool
}

// NewRing returns a ring buffer holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit records e, evicting the oldest event when full.
func (r *Ring) Emit(e Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports the number of retained events.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// --- JSONL --------------------------------------------------------------

// JSONL streams events as one JSON object per line. Writes are
// buffered; call Flush (or check Err) when the run is done. The first
// write error is sticky and suppresses all further output.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit appends e as one JSON line.
func (s *JSONL) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Flush drains the buffer and returns the first error seen.
func (s *JSONL) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONL) Err() error { return s.err }

// --- Progress -----------------------------------------------------------

// Progress renders a throttled, human-readable feed of a run: a line
// on run start, at most one step line per interval, and unconditional
// lines for fallbacks, aborts and run end.
type Progress struct {
	w        io.Writer
	interval time.Duration
	last     time.Time
	total    int
	// cumulative cache traffic over the run, from step deltas
	lookups, hits uint64
	gcs           uint64
}

// NewProgress returns a progress sink writing to w, printing step
// updates at most every interval (default 500ms when interval <= 0).
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Progress{w: w, interval: interval}
}

// Emit renders e if due.
func (p *Progress) Emit(e Event) {
	switch e.Kind {
	case KindRunStart:
		p.total = e.TotalGates
		p.lookups, p.hits, p.gcs = 0, 0, 0
		fmt.Fprintf(p.w, "progress: %s — %d gates\n", e.Circuit, e.TotalGates)
	case KindStep:
		p.lookups += e.CacheLookups
		p.hits += e.CacheHits
		p.gcs += e.GCs
		now := e.Time()
		if now.Sub(p.last) < p.interval {
			return
		}
		p.last = now
		fmt.Fprintf(p.w, "progress: gate %d/%d  state %d nodes  live %d  cache %s  gc %d\n",
			e.Gate, p.total, e.StateNodes, e.VLive+e.MLive, p.rate(), p.gcs)
	case KindFallback:
		fmt.Fprintf(p.w, "progress: gate %d: node budget hit — replaying %d gates sequentially\n",
			e.Gate, e.Combined)
	case KindAbort:
		fmt.Fprintf(p.w, "progress: aborted (%s) at gate %d/%d\n", e.Abort, e.Gate, p.total)
	case KindRunEnd:
		status := "done"
		if e.Abort != "" {
			status = "aborted (" + e.Abort + ")"
		}
		fmt.Fprintf(p.w, "progress: %s — %d/%d gates in %s (fallbacks %d, peak %d nodes)\n",
			status, e.Gate, p.total, e.Wall().Round(time.Millisecond), e.Fallbacks, e.PeakNodes)
	}
}

// rate formats the cumulative cache hit rate, "-" before any lookup.
func (p *Progress) rate() string {
	if p.lookups == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(p.hits)/float64(p.lookups))
}
