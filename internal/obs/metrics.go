package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down (live node
// counts, queue depths).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics: bucket i counts observations <= bounds[i], with an
// implicit final +Inf bucket. Bounds are fixed at construction.
type Histogram struct {
	bounds []float64       // ascending upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExponentialBuckets returns n upper bounds start, start*factor,
// start*factor², … — the usual latency/size bucket ladder.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: invalid exponential bucket spec")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Label renders a Prometheus-style labelled series name,
// name{k1="v1",k2="v2"}, from alternating key/value pairs. The
// registry treats the result as an ordinary (distinct) metric name, so
// per-worker series like batch_jobs_done_total{worker="3"} register as
// independent instruments; WritePrometheus groups all series of one
// family under a single HELP/TYPE header.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: Label requires alternating key/value pairs")
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", kv[i], kv[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// splitSeries separates a (possibly labelled) series name into its
// family name and the label block ("" when unlabelled).
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// seriesName renders family{labels,extra...}, merging the stored label
// block with extra pairs (used for histogram _bucket le labels).
func seriesName(family, labels string, extra ...string) string {
	all := labels
	for i := 0; i+1 < len(extra); i += 2 {
		pair := fmt.Sprintf("%s=%q", extra[i], extra[i+1])
		if all == "" {
			all = pair
		} else {
			all += "," + pair
		}
	}
	if all == "" {
		return family
	}
	return family + "{" + all + "}"
}

// --- Registry -----------------------------------------------------------

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry holds a named, ordered set of metrics. Registration is
// idempotent: asking twice for the same name (with the same kind)
// returns the same instrument. Snapshots serialise as JSON and as
// Prometheus text exposition format.
type Registry struct {
	mu      sync.Mutex
	ordered []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// lookup finds or registers the named metric. The instrument is
// created by init while the registry lock is held — concurrent
// registrations of the same name (batch workers opening their run
// metrics at once) must agree on one instrument.
func (r *Registry) lookup(name, help string, kind metricKind, init func(*metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	init(m)
	r.ordered = append(r.ordered, m)
	r.byName[name] = m
	return m
}

// Counter returns the counter with the given name, creating it if new.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, func(m *metric) { m.c = &Counter{} }).c
}

// Gauge returns the gauge with the given name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns the histogram with the given name, creating it
// with the given bucket bounds if new (bounds are ignored on reuse).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, func(m *metric) { m.h = newHistogram(bounds) }).h
}

// BucketSnapshot is one cumulative histogram bucket. LE is the upper
// bound formatted as Prometheus renders it ("+Inf" for the last).
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MetricSnapshot is the frozen state of one metric.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    string           `json:"type"`
	Value   float64          `json:"value"`
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot freezes every metric in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		s := MetricSnapshot{Name: m.name, Help: m.help, Type: m.kind.String()}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.c.Value())
		case kindGauge:
			s.Value = float64(m.g.Value())
		case kindHistogram:
			s.Count = m.h.Count()
			s.Sum = m.h.Sum()
			cum := uint64(0)
			for i := range m.h.counts {
				cum += m.h.counts[i].Load()
				le := "+Inf"
				if i < len(m.h.bounds) {
					le = formatLE(m.h.bounds[i])
				}
				s.Buckets = append(s.Buckets, BucketSnapshot{LE: le, Count: cum})
			}
		}
		out = append(out, s)
	}
	return out
}

func formatLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteJSON writes the snapshot as an indented JSON document
// {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{r.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (version 0.0.4). Labelled series (see Label) are grouped by
// family: one HELP/TYPE header per family in first-registration order,
// then every series of that family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var families []string
	grouped := make(map[string][]MetricSnapshot)
	for _, s := range r.Snapshot() {
		family, _ := splitSeries(s.Name)
		if _, ok := grouped[family]; !ok {
			families = append(families, family)
		}
		grouped[family] = append(grouped[family], s)
	}
	for _, family := range families {
		series := grouped[family]
		if help := series[0].Help; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, series[0].Type); err != nil {
			return err
		}
		for _, s := range series {
			_, labels := splitSeries(s.Name)
			var err error
			switch s.Type {
			case "histogram":
				for _, b := range s.Buckets {
					if _, err = fmt.Fprintf(w, "%s %d\n", seriesName(family+"_bucket", labels, "le", b.LE), b.Count); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s %s\n", seriesName(family+"_sum", labels), formatLE(s.Sum)); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s %d\n", seriesName(family+"_count", labels), s.Count)
			default:
				_, err = fmt.Fprintf(w, "%s %s\n", seriesName(family, labels), formatLE(s.Value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
