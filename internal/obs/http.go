package obs

import "net/http"

// Handler exposes a registry in the Prometheus text exposition format
// — the /metrics endpoint of ddserve and anything else that wants one.
// A nil registry serves an empty (but valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r == nil {
			return
		}
		if err := r.WritePrometheus(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
}
