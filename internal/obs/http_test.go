package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "A demo counter.").Add(3)
	r.Gauge(Label("demo_depth", "class", "high"), "A labelled gauge.").Set(2)

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	for _, want := range []string{"demo_total 3", `demo_depth{class="high"} 2`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
}
