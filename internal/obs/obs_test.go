package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindJSONRoundTrip(t *testing.T) {
	for k := KindRunStart; k <= KindRunEnd; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Errorf("round-trip %v -> %s -> %v", k, b, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || len(r.Events()) != 0 {
		t.Fatal("new ring not empty")
	}
	r.Emit(Event{Seq: 1})
	r.Emit(Event{Seq: 2})
	if got := r.Events(); len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("partial ring: %+v", got)
	}
	r.Emit(Event{Seq: 3})
	r.Emit(Event{Seq: 4})
	r.Emit(Event{Seq: 5})
	got := r.Events()
	if r.Len() != 3 || len(got) != 3 {
		t.Fatalf("full ring len %d, events %d", r.Len(), len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Seq != want {
			t.Errorf("events[%d].Seq = %d, want %d (oldest first)", i, got[i].Seq, want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	want := Event{
		Seq: 7, Kind: KindStep, TimeUnixNano: 12345, Gate: 3,
		WallNS: 1e6, Combined: 2, OpNodes: 5, StateNodes: 9,
		VLive: 11, MLive: 13, MatVecMuls: 1, CacheLookups: 20,
		CacheHits: 15, NodesCreated: 4, Fallback: true, Block: "grover-iter",
	}
	s.Emit(want)
	s.Emit(Event{Seq: 8, Kind: KindRunEnd, Abort: "deadline"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var got Event
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	if got != want {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	var end Event
	if err := json.Unmarshal([]byte(lines[1]), &end); err != nil {
		t.Fatal(err)
	}
	if end.Kind != KindRunEnd || end.Abort != "deadline" {
		t.Errorf("run_end event corrupted: %+v", end)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, bufio.ErrBufferFull }

func TestJSONLStickyError(t *testing.T) {
	s := NewJSONL(failWriter{})
	for i := 0; i < 10000; i++ { // enough to overflow the buffer
		s.Emit(Event{Seq: uint64(i), Kind: KindStep})
	}
	if s.Flush() == nil || s.Err() == nil {
		t.Error("expected sticky write error")
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Millisecond)
	base := time.Now()
	p.Emit(Event{Kind: KindRunStart, Circuit: "grover_8", TotalGates: 100, TimeUnixNano: base.UnixNano()})
	for i := 1; i <= 3; i++ {
		p.Emit(Event{Kind: KindStep, Gate: i, StateNodes: 10 * i, VLive: 20,
			CacheLookups: 10, CacheHits: 9,
			TimeUnixNano: base.Add(time.Duration(i) * 10 * time.Millisecond).UnixNano()})
	}
	p.Emit(Event{Kind: KindFallback, Gate: 3, Combined: 4})
	p.Emit(Event{Kind: KindRunEnd, Gate: 100, WallNS: 2e9, PeakNodes: 500})
	out := buf.String()
	for _, want := range []string{"grover_8", "100 gates", "90.0%", "replaying 4 gates", "done — 100/100"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	// Zero-lookup runs must not render a 0% hit rate.
	buf.Reset()
	p = NewProgress(&buf, time.Millisecond)
	p.Emit(Event{Kind: KindRunStart, TotalGates: 1, TimeUnixNano: base.UnixNano()})
	p.Emit(Event{Kind: KindStep, Gate: 1, TimeUnixNano: base.Add(time.Hour).UnixNano()})
	if !strings.Contains(buf.String(), "cache -") {
		t.Errorf("zero-lookup progress should render '-': %s", buf.String())
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := MultiSink{a, b}
	m.Emit(Event{Seq: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("multisink did not fan out")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dd_steps_total", "steps")
	c.Add(5)
	c.Inc()
	if c.Value() != 6 {
		t.Errorf("counter = %d, want 6", c.Value())
	}
	if r.Counter("dd_steps_total", "steps") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("dd_live_nodes", "live")
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Errorf("gauge = %d, want 40", g.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch should panic")
		}
	}()
	r.Gauge("dd_steps_total", "oops")
}

func TestHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5056.5) > 1e-9 {
		t.Errorf("sum = %g", got)
	}
	// cumulative: <=1: 2, <=10: 3, <=100: 4, +Inf: 5
	r := NewRegistry()
	rh := r.Histogram("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 5000} {
		rh.Observe(v)
	}
	snap := r.Snapshot()[0]
	wantCum := []uint64{2, 3, 4, 5}
	if len(snap.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4", len(snap.Buckets))
	}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %s = %d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	if snap.Buckets[3].LE != "+Inf" {
		t.Errorf("last bucket le = %q", snap.Buckets[3].LE)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1e-6, 4, 4)
	want := []float64{1e-6, 4e-6, 1.6e-5, 6.4e-5}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("dd_steps_total", "Applied operations.").Add(3)
	r.Histogram("dd_step_seconds", "Step latency.", []float64{0.001, 0.01}).Observe(0.005)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
	var doc struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) != 2 || doc.Metrics[0].Name != "dd_steps_total" || doc.Metrics[0].Value != 3 {
		t.Errorf("unexpected snapshot: %+v", doc.Metrics)
	}
	if doc.Metrics[1].Count != 1 || len(doc.Metrics[1].Buckets) != 3 {
		t.Errorf("histogram snapshot: %+v", doc.Metrics[1])
	}
}

func TestRegistryWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dd_steps_total", "Applied operations.").Add(3)
	r.Gauge("dd_live_nodes", "Live nodes.").Set(17)
	h := r.Histogram("dd_step_seconds", "Step latency.", []float64{0.001, 0.01})
	h.Observe(0.005)
	h.Observe(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dd_steps_total counter",
		"dd_steps_total 3",
		"# TYPE dd_live_nodes gauge",
		"dd_live_nodes 17",
		"# TYPE dd_step_seconds histogram",
		`dd_step_seconds_bucket{le="0.001"} 0`,
		`dd_step_seconds_bucket{le="0.01"} 1`,
		`dd_step_seconds_bucket{le="+Inf"} 2`,
		"dd_step_seconds_sum 2.005",
		"dd_step_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestLabel(t *testing.T) {
	if got := Label("jobs_total"); got != "jobs_total" {
		t.Fatalf("no labels: %q", got)
	}
	if got := Label("jobs_total", "worker", "3"); got != `jobs_total{worker="3"}` {
		t.Fatalf("one label: %q", got)
	}
	if got := Label("jobs_total", "worker", "3", "kind", "grover"); got != `jobs_total{worker="3",kind="grover"}` {
		t.Fatalf("two labels: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd kv count did not panic")
		}
	}()
	Label("jobs_total", "worker")
}

func TestWritePrometheusLabelledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("pool_jobs_total", "worker", "0"), "Jobs per worker.").Add(2)
	r.Counter(Label("pool_jobs_total", "worker", "1"), "Jobs per worker.").Add(5)
	h := r.Histogram(Label("pool_wait_seconds", "worker", "0"), "Wait per worker.", []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pool_jobs_total counter",
		`pool_jobs_total{worker="0"} 2`,
		`pool_jobs_total{worker="1"} 5`,
		"# TYPE pool_wait_seconds histogram",
		`pool_wait_seconds_bucket{worker="0",le="1"} 1`,
		`pool_wait_seconds_bucket{worker="0",le="+Inf"} 1`,
		`pool_wait_seconds_sum{worker="0"} 0.5`,
		`pool_wait_seconds_count{worker="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labelled prometheus output missing %q:\n%s", want, out)
		}
	}
	// One header per family, not per series.
	if got := strings.Count(out, "# TYPE pool_jobs_total counter"); got != 1 {
		t.Errorf("family header repeated %d times:\n%s", got, out)
	}
}

func TestSyncSinkSerialisesEmitters(t *testing.T) {
	ring := NewRing(1024) // not goroutine-safe on its own
	sink := NewSyncSink(ring)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sink.Emit(Event{Kind: KindRunEnd})
			}
		}()
	}
	wg.Wait()
	if got := len(ring.Events()); got != 800 {
		t.Fatalf("ring holds %d events, want 800", got)
	}
}

func TestSyncSinkNil(t *testing.T) {
	NewSyncSink(nil).Emit(Event{Kind: KindRunEnd}) // must not panic
}

// TestRegistryConcurrentRegistration: batch workers open their run
// metrics simultaneously; every goroutine must get the same instrument
// (this raced before instrument creation moved under the registry
// lock — the nil-check-then-create ran outside it).
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	counters := make([]*Counter, goroutines)
	hists := make([]*Histogram, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			counters[g] = r.Counter("shared_total", "shared counter")
			counters[g].Inc()
			hists[g] = r.Histogram("shared_seconds", "shared histogram", ExponentialBuckets(1e-6, 4, 4))
			hists[g].Observe(0.5)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if counters[g] != counters[0] || hists[g] != hists[0] {
			t.Fatalf("goroutine %d got a different instrument", g)
		}
	}
	if got := counters[0].Value(); got != goroutines {
		t.Fatalf("counter %d, want %d", got, goroutines)
	}
}
