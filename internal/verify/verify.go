// Package verify holds the dense-oracle comparison machinery shared by
// the differential test suites (internal/crossval, internal/batch) and
// by the runner's paranoid mode (internal/core): a random-circuit
// generator over the full supported gate vocabulary, fidelity against a
// dense reference state, and a Lockstep oracle that advances a
// conventional state-vector simulation gate-for-gate alongside a DD run
// and compares amplitudes on demand.
//
// Dense simulation is exactly what does not scale, so everything here
// is bounded by MaxOracleQubits; the DD engine's own integrity checks
// (dd.Engine.Audit, the norm and unitarity monitors) carry verification
// beyond that limit.
package verify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/cnum"
	"repro/internal/dd"
	"repro/internal/dense"
)

// FidelityTol is the default acceptance margin: a DD state agrees with
// the oracle when fidelity ≥ 1 − FidelityTol. Canonicalisation rounds
// each weight by up to cnum.Tol (1e-10); across the circuit lengths the
// test suites use, accumulated fidelity loss stays well under 1e-9
// while any genuine gate-application bug costs orders of magnitude
// more.
const FidelityTol = 1e-9

// MaxOracleQubits is the largest qubit count the dense oracle accepts —
// the dd.VEdge.ToVector expansion limit, beyond which a single
// amplitude vector no longer fits in sensible memory.
const MaxOracleQubits = 24

// ErrMismatch is wrapped by oracle-comparison failures; match with
// errors.Is.
var ErrMismatch = errors.New("verify: state disagrees with dense oracle")

// Fidelity returns |<b|a>|², the squared overlap between an amplitude
// slice (e.g. dd.VEdge.ToVector output) and a dense oracle state. The
// lengths must match.
func Fidelity(a []complex128, b *dense.State) float64 {
	var ip complex128
	for i := range a {
		ip += complex(real(b.Amps[i]), -imag(b.Amps[i])) * a[i]
	}
	return cnum.Abs2(ip)
}

// RandomCircuit generates a random circuit over n ≥ 2 qubits drawing
// from the full gate vocabulary every format layer supports (native
// text, QASM export, the optimiser). Shared by the crossval and batch
// differential suites so both sample the same circuit distribution.
func RandomCircuit(rng *rand.Rand, n, length int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < length; i++ {
		q := rng.Intn(n)
		p := (q + 1 + rng.Intn(n-1)) % n
		switch rng.Intn(12) {
		case 0:
			c.H(q)
		case 1:
			c.X(q)
		case 2:
			c.T(q)
		case 3:
			c.Sdg(q)
		case 4:
			c.SX(q)
		case 5:
			c.P(rng.Float64()*2*math.Pi-math.Pi, q)
		case 6:
			c.RY(rng.Float64()*math.Pi, q)
		case 7:
			c.U(rng.Float64(), rng.Float64(), rng.Float64(), q)
		case 8:
			c.CX(q, p)
		case 9:
			c.CZ(q, p)
		case 10:
			c.CP(rng.Float64()*math.Pi, q, p)
		default:
			if n >= 3 {
				r := (p + 1 + rng.Intn(n-2)) % n
				if r != q && r != p {
					c.CCX(q, p, r)
					continue
				}
			}
			c.H(q)
		}
	}
	return c
}

// Lockstep advances a dense reference simulation of one circuit
// alongside a DD run. The runner asks it to Advance to the gate index
// the DD state has reached, then Check compares amplitudes; because the
// dense state only ever moves forward, a full paranoid run costs one
// dense simulation of the circuit regardless of how often it checks.
type Lockstep struct {
	c       *circuit.Circuit
	state   *dense.State
	applied int // gates of c reflected in state
}

// NewLockstep returns an oracle for c positioned at startGate. initial
// is the starting amplitude vector (nil for |0…0>); it is copied.
func NewLockstep(c *circuit.Circuit, startGate int, initial []complex128) (*Lockstep, error) {
	if c.NQubits > MaxOracleQubits {
		return nil, fmt.Errorf("verify: dense oracle supports at most %d qubits, circuit has %d", MaxOracleQubits, c.NQubits)
	}
	if startGate < 0 || startGate > len(c.Gates) {
		return nil, fmt.Errorf("verify: start gate %d out of range [0,%d]", startGate, len(c.Gates))
	}
	var st *dense.State
	if initial == nil {
		st = dense.NewState(c.NQubits)
	} else {
		amps := make([]complex128, len(initial))
		copy(amps, initial)
		st = dense.FromVector(amps)
		if st.N != c.NQubits {
			return nil, fmt.Errorf("verify: initial state spans %d qubits, circuit has %d", st.N, c.NQubits)
		}
	}
	return &Lockstep{c: c, state: st, applied: startGate}, nil
}

// Advance applies gates until the oracle reflects the first `to` gates
// of the circuit. Calls with to ≤ Applied() are no-ops — the oracle
// never rewinds, which lets the runner re-verify a replayed prefix
// after a repair without re-simulating.
func (l *Lockstep) Advance(to int) error {
	if to > len(l.c.Gates) {
		return fmt.Errorf("verify: advance to gate %d beyond circuit end %d", to, len(l.c.Gates))
	}
	for l.applied < to {
		l.state.ApplyGate(l.c.Gates[l.applied])
		l.applied++
	}
	return nil
}

// Applied returns the gate index the oracle has reached.
func (l *Lockstep) Applied() int { return l.applied }

// State exposes the oracle's dense state (not a copy; do not mutate).
func (l *Lockstep) State() *dense.State { return l.state }

// Check compares a DD state against the oracle at its current position
// and returns an ErrMismatch-wrapping error when fidelity falls below
// 1 − FidelityTol.
func (l *Lockstep) Check(v dd.VEdge) error {
	return l.CheckOrdered(v, nil)
}

// CheckOrdered is Check for a DD whose levels are permuted: order maps
// DD level to circuit qubit (dd reordering convention; nil means
// identity). The DD amplitudes are mapped back to circuit order before
// the fidelity comparison, so the oracle stays oblivious to how the
// runner permutes its levels.
func (l *Lockstep) CheckOrdered(v dd.VEdge, order []int) error {
	amps := dd.VectorInOrder(v, order)
	if len(amps) != len(l.state.Amps) {
		return fmt.Errorf("%w: state spans %d amplitudes, oracle %d after gate %d",
			ErrMismatch, len(amps), len(l.state.Amps), l.applied)
	}
	if f := Fidelity(amps, l.state); f < 1-FidelityTol {
		return fmt.Errorf("%w: fidelity %.12f after gate %d", ErrMismatch, f, l.applied)
	}
	return nil
}
