// Package gates defines the 2×2 unitary matrices of the elementary
// quantum operations used by the circuit layer and the benchmark
// generators, together with unitarity checks.
//
// Matrices are indexed [row][col] and act on a single target qubit;
// controls are expressed at the circuit/DD layer, not here.
package gates

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a 2×2 complex matrix, indexed [row][col].
type Matrix [2][2]complex128

// The constant elementary gates.
var (
	// I is the identity.
	I = Matrix{{1, 0}, {0, 1}}
	// X is the Pauli-X (NOT) gate.
	X = Matrix{{0, 1}, {1, 0}}
	// Y is the Pauli-Y gate.
	Y = Matrix{{0, complex(0, -1)}, {complex(0, 1), 0}}
	// Z is the Pauli-Z gate.
	Z = Matrix{{1, 0}, {0, -1}}
	// H is the Hadamard gate.
	H = Matrix{{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)}}
	// S is the phase gate diag(1, i).
	S = Matrix{{1, 0}, {0, complex(0, 1)}}
	// Sdg is S†, diag(1, -i).
	Sdg = Matrix{{1, 0}, {0, complex(0, -1)}}
	// T is the π/8 gate diag(1, e^{iπ/4}).
	T = Matrix{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}}
	// Tdg is T†.
	Tdg = Matrix{{1, 0}, {0, cmplx.Exp(complex(0, -math.Pi/4))}}
	// SX is √X, used by the supremacy circuits (often written X^{1/2}).
	SX = Matrix{{complex(0.5, 0.5), complex(0.5, -0.5)},
		{complex(0.5, -0.5), complex(0.5, 0.5)}}
	// SY is √Y, used by the supremacy circuits (Y^{1/2}).
	SY = Matrix{{complex(0.5, 0.5), complex(-0.5, -0.5)},
		{complex(0.5, 0.5), complex(0.5, 0.5)}}
	// SXdg is (√X)†.
	SXdg = Matrix{{complex(0.5, -0.5), complex(0.5, 0.5)},
		{complex(0.5, 0.5), complex(0.5, -0.5)}}
	// SYdg is (√Y)†.
	SYdg = Matrix{{complex(0.5, -0.5), complex(0.5, -0.5)},
		{complex(-0.5, 0.5), complex(0.5, -0.5)}}
)

// Phase returns the phase gate diag(1, e^{iθ}) — the controlled version
// is the workhorse of the QFT and the Draper adder.
func Phase(theta float64) Matrix {
	return Matrix{{1, 0}, {0, cmplx.Exp(complex(0, theta))}}
}

// RX returns the rotation exp(-iθX/2).
func RX(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return Matrix{{c, s}, {s, c}}
}

// RY returns the rotation exp(-iθY/2).
func RY(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return Matrix{{c, -s}, {s, c}}
}

// RZ returns the rotation exp(-iθZ/2).
func RZ(theta float64) Matrix {
	return Matrix{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	}
}

// U returns the generic single-qubit gate with Euler angles (θ, φ, λ),
// following the OpenQASM convention.
func U(theta, phi, lambda float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return Matrix{
		{c, -cmplx.Exp(complex(0, lambda)) * s},
		{cmplx.Exp(complex(0, phi)) * s, cmplx.Exp(complex(0, phi+lambda)) * c},
	}
}

// Mul returns the matrix product a·b.
func Mul(a, b Matrix) Matrix {
	var r Matrix
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return r
}

// Adjoint returns the conjugate transpose of m.
func Adjoint(m Matrix) Matrix {
	var r Matrix
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = cmplx.Conj(m[j][i])
		}
	}
	return r
}

// IsUnitary reports whether m†m = I within tol.
func IsUnitary(m Matrix, tol float64) bool {
	p := Mul(Adjoint(m), m)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// CheckUnitary returns an error describing the violation if m is not
// unitary within tol.
func CheckUnitary(m Matrix, tol float64) error {
	if !IsUnitary(m, tol) {
		return fmt.Errorf("gates: matrix %v is not unitary within %g", m, tol)
	}
	return nil
}

// ApproxEqual reports element-wise equality within tol, ignoring global
// phase if ignorePhase is set.
func ApproxEqual(a, b Matrix, tol float64, ignorePhase bool) bool {
	if ignorePhase {
		// Align on the first entry with significant magnitude.
		var ref complex128
		found := false
		for i := 0; i < 2 && !found; i++ {
			for j := 0; j < 2 && !found; j++ {
				if cmplx.Abs(a[i][j]) > tol && cmplx.Abs(b[i][j]) > tol {
					ref = a[i][j] / b[i][j]
					ref /= complex(cmplx.Abs(ref), 0)
					found = true
				}
			}
		}
		if found {
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					b[i][j] *= ref
				}
			}
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}
