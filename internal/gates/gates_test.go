package gates

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllConstantsUnitary(t *testing.T) {
	all := map[string]Matrix{
		"I": I, "X": X, "Y": Y, "Z": Z, "H": H,
		"S": S, "Sdg": Sdg, "T": T, "Tdg": Tdg,
		"SX": SX, "SXdg": SXdg, "SY": SY, "SYdg": SYdg,
	}
	for name, m := range all {
		if err := CheckUnitary(m, 1e-12); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParametricUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		th := rng.Float64()*4*math.Pi - 2*math.Pi
		ph := rng.Float64() * 2 * math.Pi
		la := rng.Float64() * 2 * math.Pi
		for name, m := range map[string]Matrix{
			"Phase": Phase(th), "RX": RX(th), "RY": RY(th), "RZ": RZ(th),
			"U": U(th, ph, la),
		} {
			if err := CheckUnitary(m, 1e-12); err != nil {
				t.Fatalf("%s(%v): %v", name, th, err)
			}
		}
	}
}

func TestSquareRoots(t *testing.T) {
	if !ApproxEqual(Mul(SX, SX), X, 1e-12, false) {
		t.Error("SX² != X")
	}
	if !ApproxEqual(Mul(SY, SY), Y, 1e-12, false) {
		t.Error("SY² != Y")
	}
	if !ApproxEqual(Mul(SX, SXdg), I, 1e-12, false) {
		t.Error("SX·SX† != I")
	}
	if !ApproxEqual(Mul(SY, SYdg), I, 1e-12, false) {
		t.Error("SY·SY† != I")
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	cases := []struct {
		name string
		got  Matrix
		want Matrix
	}{
		{"HH=I", Mul(H, H), I},
		{"XX=I", Mul(X, X), I},
		{"SS=Z", Mul(S, S), Z},
		{"TT=S", Mul(T, T), S},
		{"S·Sdg=I", Mul(S, Sdg), I},
		{"T·Tdg=I", Mul(T, Tdg), I},
		{"HXH=Z", Mul(H, Mul(X, H)), Z},
		{"HZH=X", Mul(H, Mul(Z, H)), X},
	}
	for _, c := range cases {
		if !ApproxEqual(c.got, c.want, 1e-12, false) {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestPhaseSpecialCases(t *testing.T) {
	if !ApproxEqual(Phase(math.Pi), Z, 1e-12, false) {
		t.Error("P(π) != Z")
	}
	if !ApproxEqual(Phase(math.Pi/2), S, 1e-12, false) {
		t.Error("P(π/2) != S")
	}
	if !ApproxEqual(Phase(math.Pi/4), T, 1e-12, false) {
		t.Error("P(π/4) != T")
	}
}

func TestRotationsUpToPhase(t *testing.T) {
	// RZ(θ) equals P(θ) up to global phase.
	if !ApproxEqual(RZ(1.234), Phase(1.234), 1e-12, true) {
		t.Error("RZ vs Phase (ignoring phase)")
	}
	// RX(π) equals X up to global phase, RY(π) equals Y.
	if !ApproxEqual(RX(math.Pi), X, 1e-12, true) {
		t.Error("RX(π) vs X")
	}
	if !ApproxEqual(RY(math.Pi), Y, 1e-12, true) {
		t.Error("RY(π) vs Y")
	}
}

func TestUCovers(t *testing.T) {
	if !ApproxEqual(U(math.Pi/2, 0, math.Pi), H, 1e-12, false) {
		t.Error("U(π/2,0,π) != H")
	}
	if !ApproxEqual(U(math.Pi, 0, math.Pi), X, 1e-12, false) {
		t.Error("U(π,0,π) != X")
	}
}

func TestAdjointInvolution(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		m := U(a, b, c)
		return ApproxEqual(Adjoint(Adjoint(m)), m, 1e-12, false) && (d == d || true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := U(rng.Float64(), rng.Float64(), rng.Float64())
		b := U(rng.Float64()*3, rng.Float64(), rng.Float64())
		c := U(rng.Float64()*2, rng.Float64(), rng.Float64())
		if !ApproxEqual(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-12, false) {
			t.Fatal("matrix multiplication not associative")
		}
	}
}

func TestIsUnitaryRejects(t *testing.T) {
	bad := Matrix{{1, 0}, {0, 2}}
	if IsUnitary(bad, 1e-9) {
		t.Error("diag(1,2) accepted as unitary")
	}
	if err := CheckUnitary(bad, 1e-9); err == nil {
		t.Error("CheckUnitary accepted a non-unitary matrix")
	}
}

func TestApproxEqualPhaseHandling(t *testing.T) {
	phase := cmplx.Exp(complex(0, 0.7))
	var m Matrix
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m[i][j] = H[i][j] * phase
		}
	}
	if ApproxEqual(m, H, 1e-12, false) {
		t.Error("global phase should matter when ignorePhase=false")
	}
	if !ApproxEqual(m, H, 1e-9, true) {
		t.Error("global phase should be ignored when ignorePhase=true")
	}
}
