// Package hamiltonian generates Trotterized time-evolution circuits
// for spin-chain Hamiltonians — a further workload family with tunable
// entanglement growth. The transverse-field Ising model (TFIM)
//
//	H = -J Σ Z_i Z_{i+1} - h Σ X_i
//
// evolves under e^{-iHt}, approximated by first-order Trotter steps
// e^{-iH t} ≈ (Π e^{iJδ Z_iZ_{i+1}} · Π e^{ihδ X_i})^steps, δ = t/steps.
//
// Each ZZ factor is the two-qubit rotation RZZ(−2Jδ) (decomposed as
// CX·RZ·CX) and each X factor the rotation RX(−2hδ). For h = 0 the
// Hamiltonian is diagonal and Trotterisation is exact, which the tests
// exploit by comparing against a directly constructed diagonal DD.
package hamiltonian

import (
	"fmt"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// TFIM describes a transverse-field Ising chain.
type TFIM struct {
	Sites    int     // number of spins (qubits)
	J        float64 // ZZ coupling
	H        float64 // transverse field strength
	Periodic bool    // couple site n-1 back to site 0
}

// Validate checks the model parameters.
func (m TFIM) Validate() error {
	if m.Sites < 2 {
		return fmt.Errorf("hamiltonian: need at least 2 sites, got %d", m.Sites)
	}
	if m.Sites > 62 {
		return fmt.Errorf("hamiltonian: %d sites exceed the index range", m.Sites)
	}
	return nil
}

// bonds returns the coupled site pairs.
func (m TFIM) bonds() [][2]int {
	var bs [][2]int
	for i := 0; i+1 < m.Sites; i++ {
		bs = append(bs, [2]int{i, i + 1})
	}
	if m.Periodic && m.Sites > 2 {
		bs = append(bs, [2]int{m.Sites - 1, 0})
	}
	return bs
}

// TrotterCircuit returns the first-order Trotter circuit approximating
// e^{-iHt} with the given number of steps. Each step is recorded as a
// repeated Block, so the DD-repeating strategy combines one step's
// matrix and re-uses it across all steps — time evolution is a natural
// fit for the paper's Sec. IV-B.
func (m TFIM) TrotterCircuit(t float64, steps int) (*circuit.Circuit, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if steps < 1 {
		return nil, fmt.Errorf("hamiltonian: steps must be positive, got %d", steps)
	}
	delta := t / float64(steps)
	c := circuit.New(m.Sites)
	c.Name = fmt.Sprintf("tfim_%d_t%g_s%d", m.Sites, t, steps)
	c.Repeat("trotter-step", steps, func(c *circuit.Circuit) {
		// e^{+iJδ Z_iZ_j} = RZZ(-2Jδ) up to global phase:
		// RZZ(θ) = CX · RZ(θ) · CX with θ = -2Jδ.
		for _, b := range m.bonds() {
			theta := -2 * m.J * delta
			c.CX(b[0], b[1])
			c.RZ(theta, b[1])
			c.CX(b[0], b[1])
		}
		// e^{+ihδ X_i} = RX(-2hδ).
		if m.H != 0 {
			for q := 0; q < m.Sites; q++ {
				c.RX(-2*m.H*delta, q)
			}
		}
	})
	return c, nil
}

// DiagonalEvolutionDD builds e^{-iHt} directly as a diagonal matrix DD
// for the classical (h = 0) Ising Hamiltonian — exact, no
// Trotterisation. This is the DD-construct idea applied to time
// evolution: the operator is constructed from its function instead of
// from gates. Only valid for H == 0.
func (m TFIM) DiagonalEvolutionDD(eng *dd.Engine, t float64) (dd.MEdge, error) {
	if err := m.Validate(); err != nil {
		return dd.MEdge{}, err
	}
	if m.H != 0 {
		return dd.MEdge{}, fmt.Errorf("hamiltonian: direct diagonal evolution requires h = 0 (got %g)", m.H)
	}
	if m.Sites > 24 {
		return dd.MEdge{}, fmt.Errorf("hamiltonian: diagonal construction capped at 24 sites")
	}
	bonds := m.bonds()
	return eng.FromDiagonal(m.Sites, func(x uint64) complex128 {
		// Energy of basis state x: -J Σ z_i z_j with z = ±1.
		e := 0.0
		for _, b := range bonds {
			zi := 1.0 - 2.0*float64(x>>uint(b[0])&1)
			zj := 1.0 - 2.0*float64(x>>uint(b[1])&1)
			e += -m.J * zi * zj
		}
		return cmplx.Exp(complex(0, -e*t))
	}), nil
}

// Energy returns <ψ|H|ψ> via Pauli-string expectations — the
// observable tracked in Hamiltonian-simulation experiments.
func (m TFIM) Energy(eng *dd.Engine, v dd.VEdge) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if v.Qubits() != m.Sites {
		return 0, fmt.Errorf("hamiltonian: state spans %d qubits, model has %d sites", v.Qubits(), m.Sites)
	}
	total := 0.0
	for _, b := range m.bonds() {
		p := pauliAt(m.Sites, map[int]byte{b[0]: 'Z', b[1]: 'Z'})
		val, err := eng.Expectation(v, p)
		if err != nil {
			return 0, err
		}
		total += -m.J * val
	}
	if m.H != 0 {
		for q := 0; q < m.Sites; q++ {
			p := pauliAt(m.Sites, map[int]byte{q: 'X'})
			val, err := eng.Expectation(v, p)
			if err != nil {
				return 0, err
			}
			total += -m.H * val
		}
	}
	return total, nil
}

// pauliAt builds a Pauli string with the given letters at the given
// qubits (identity elsewhere). Qubit 0 is the rightmost letter.
func pauliAt(n int, letters map[int]byte) dd.PauliString {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = 'I'
	}
	for q, l := range letters {
		buf[n-1-q] = l
	}
	return dd.PauliString(buf)
}
