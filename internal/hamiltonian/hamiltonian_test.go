package hamiltonian

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dd"
)

// entangledState prepares H on all qubits plus a few T and CX gates —
// a structured but non-trivial initial state.
func entangledState(eng *dd.Engine, n int) dd.VEdge {
	h := [2][2]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}
	x := [2][2]complex128{{0, 1}, {1, 0}}
	tg := [2][2]complex128{{1, 0}, {0, complex(1/math.Sqrt2, 1/math.Sqrt2)}}
	v := eng.ZeroState(n)
	for q := 0; q < n; q++ {
		v = eng.MulVec(eng.GateDD(h, n, q, nil), v)
	}
	v = eng.MulVec(eng.GateDD(tg, n, 1, nil), v)
	v = eng.MulVec(eng.GateDD(x, n, 2, []dd.Control{dd.Pos(0)}), v)
	return v
}

func TestTrotterCircuitStructure(t *testing.T) {
	m := TFIM{Sites: 5, J: 1, H: 0.5}
	c, err := m.TrotterCircuit(1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != 1 || c.Blocks[0].Repeat != 4 {
		t.Fatalf("blocks %+v", c.Blocks)
	}
	// Per step: 4 bonds × 3 gates + 5 RX = 17 gates.
	body := c.Blocks[0].End - c.Blocks[0].Start
	if body != 17 {
		t.Fatalf("step body %d gates, want 17", body)
	}
	if c.GateCount() != 4*17 {
		t.Fatalf("gate count %d", c.GateCount())
	}
}

func TestTrotterErrors(t *testing.T) {
	if _, err := (TFIM{Sites: 1}).TrotterCircuit(1, 1); err == nil {
		t.Error("1 site accepted")
	}
	if _, err := (TFIM{Sites: 3}).TrotterCircuit(1, 0); err == nil {
		t.Error("0 steps accepted")
	}
	eng := dd.New()
	if _, err := (TFIM{Sites: 3, H: 1}).DiagonalEvolutionDD(eng, 1); err == nil {
		t.Error("diagonal evolution with transverse field accepted")
	}
}

// For h = 0 the Hamiltonian is diagonal and Trotterisation is exact:
// the gate circuit must equal the directly constructed evolution
// operator (the DD-construct idea applied to time evolution).
func TestClassicalIsingEvolutionExact(t *testing.T) {
	for _, periodic := range []bool{false, true} {
		m := TFIM{Sites: 5, J: 0.7, Periodic: periodic}
		eng := dd.New()
		// A well-entangled initial state: uniform superposition with a
		// few phases.
		init := entangledState(eng, 5)
		c, err := m.TrotterCircuit(1.3, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(c, core.Options{Engine: eng, InitialState: &init, UseBlocks: true})
		if err != nil {
			t.Fatal(err)
		}
		exactOp, err := m.DiagonalEvolutionDD(eng, 1.3)
		if err != nil {
			t.Fatal(err)
		}
		exact := eng.MulVec(exactOp, init)
		if f := eng.Fidelity(res.State, exact); f < 1-1e-9 {
			t.Fatalf("periodic=%v: Trotter vs exact diagonal evolution: fidelity %v", periodic, f)
		}
	}
}

// TestTrotterConvergence: with a transverse field the Trotter error
// must shrink as steps grow (first-order: error ~ t²/steps).
func TestTrotterConvergence(t *testing.T) {
	m := TFIM{Sites: 4, J: 1, H: 0.8}
	eng := dd.New()
	run := func(steps int) dd.VEdge {
		c, err := m.TrotterCircuit(0.9, steps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(c, core.Options{Engine: eng, UseBlocks: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.State
	}
	ref := run(128) // quasi-exact
	fid1 := eng.Fidelity(run(1), ref)
	fid4 := eng.Fidelity(run(4), ref)
	fid16 := eng.Fidelity(run(16), ref)
	if !(fid1 < fid4 && fid4 < fid16 && fid16 <= 1+1e-9) {
		t.Fatalf("Trotter error not decreasing: %v, %v, %v", fid1, fid4, fid16)
	}
	if fid16 < 0.99 {
		t.Fatalf("16 steps still far off: fidelity %v", fid16)
	}
}

func TestEnergyObservables(t *testing.T) {
	eng := dd.New()
	m := TFIM{Sites: 4, J: 1, H: 0.5}
	// |0000>: all spins up, <Z_iZ_j> = 1, <X_i> = 0 → E = -J·(bonds).
	ground := eng.ZeroState(4)
	e, err := m.Energy(eng, ground)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-(-3)) > 1e-9 {
		t.Fatalf("E(|0000>) = %v, want -3", e)
	}
	// |+>^4: <ZZ> = 0, <X> = 1 → E = -h·n = -2.
	plus := ground
	for q := 0; q < 4; q++ {
		plus = eng.MulVec(eng.GateDD([2][2]complex128{
			{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
			{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
		}, 4, q, nil), plus)
	}
	e, err = m.Energy(eng, plus)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-(-2)) > 1e-9 {
		t.Fatalf("E(|+>^4) = %v, want -2", e)
	}
	// Dimension mismatch must error.
	if _, err := m.Energy(eng, eng.ZeroState(3)); err == nil {
		t.Fatal("span mismatch accepted")
	}
}

// Energy is conserved under exact (h=0) evolution.
func TestEnergyConservation(t *testing.T) {
	m := TFIM{Sites: 5, J: 1}
	eng := dd.New()
	init := entangledState(eng, 5)
	e0, err := m.Energy(eng, init)
	if err != nil {
		t.Fatal(err)
	}
	op, err := m.DiagonalEvolutionDD(eng, 2.1)
	if err != nil {
		t.Fatal(err)
	}
	evolved := eng.MulVec(op, init)
	e1, err := m.Energy(eng, evolved)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e0-e1) > 1e-9 {
		t.Fatalf("energy not conserved: %v -> %v", e0, e1)
	}
}

// TestDDRepeatingOnTrotter confirms time evolution is a natural
// DD-repeating workload: one combined step matrix, re-used per step.
func TestDDRepeatingOnTrotter(t *testing.T) {
	m := TFIM{Sites: 6, J: 1, H: 0.3}
	c, err := m.TrotterCircuit(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(c, core.Options{UseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	body := c.Blocks[0].End - c.Blocks[0].Start
	if res.MatMatSteps != body-1 {
		t.Fatalf("matmat steps %d, want %d (one combined step)", res.MatMatSteps, body-1)
	}
	if res.MatVecSteps != 20 {
		t.Fatalf("matvec steps %d, want 20", res.MatVecSteps)
	}
}
