// Package dense implements a conventional array-based state-vector
// simulator — the representation the paper contrasts decision diagrams
// with. It serves as the correctness oracle for the DD engine on small
// instances and as a baseline in the benchmark harness.
package dense

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/cnum"
	"repro/internal/dd"
	"repro/internal/gates"
)

// State is a dense state vector over n qubits (2^n amplitudes; bit q of
// an index is the value of qubit q).
type State struct {
	N    int
	Amps []complex128
}

// NewState returns |0…0> on n qubits. n is capped to keep allocations
// sane: dense simulation is exactly what does not scale.
func NewState(n int) *State {
	if n <= 0 || n > 26 {
		panic(fmt.Sprintf("dense: NewState(%d): qubit count out of supported range [1,26]", n))
	}
	amps := make([]complex128, 1<<uint(n))
	amps[0] = 1
	return &State{N: n, Amps: amps}
}

// FromVector wraps an explicit amplitude vector (length must be a power
// of two). The slice is used directly, not copied.
func FromVector(amps []complex128) *State {
	n := 0
	for 1<<uint(n) < len(amps) {
		n++
	}
	if len(amps) == 0 || 1<<uint(n) != len(amps) {
		panic(fmt.Sprintf("dense: FromVector: length %d is not a power of two", len(amps)))
	}
	return &State{N: n, Amps: amps}
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	amps := make([]complex128, len(s.Amps))
	copy(amps, s.Amps)
	return &State{N: s.N, Amps: amps}
}

// Apply applies a single-qubit gate to target under the given controls,
// in place, by direct index manipulation (the conventional simulation
// step the paper's footnote 1 describes).
func (s *State) Apply(m gates.Matrix, target int, controls []dd.Control) {
	if target < 0 || target >= s.N {
		panic(fmt.Sprintf("dense: Apply: target %d out of range for %d qubits", target, s.N))
	}
	var posMask, negMask uint64
	for _, c := range controls {
		if c.Qubit < 0 || c.Qubit >= s.N || c.Qubit == target {
			panic(fmt.Sprintf("dense: Apply: invalid control %d", c.Qubit))
		}
		if c.Negative {
			negMask |= 1 << uint(c.Qubit)
		} else {
			posMask |= 1 << uint(c.Qubit)
		}
	}
	tBit := uint64(1) << uint(target)
	for i := uint64(0); i < uint64(len(s.Amps)); i++ {
		if i&tBit != 0 {
			continue // handle each (i, i|tBit) pair once, from the 0 side
		}
		if i&posMask != posMask || i&negMask != 0 {
			continue
		}
		j := i | tBit
		a0, a1 := s.Amps[i], s.Amps[j]
		s.Amps[i] = m[0][0]*a0 + m[0][1]*a1
		s.Amps[j] = m[1][0]*a0 + m[1][1]*a1
	}
}

// ApplyGate applies a circuit gate.
func (s *State) ApplyGate(g circuit.Gate) {
	s.Apply(g.Matrix, g.Target, g.Controls)
}

// Run applies all gates of c in order. The circuit's qubit count must
// match the state's.
func (s *State) Run(c *circuit.Circuit) {
	if c.NQubits != s.N {
		panic(fmt.Sprintf("dense: Run: circuit has %d qubits, state has %d", c.NQubits, s.N))
	}
	for _, g := range c.Gates {
		s.ApplyGate(g)
	}
}

// Simulate runs c on |0…0> and returns the resulting state.
func Simulate(c *circuit.Circuit) *State {
	s := NewState(c.NQubits)
	s.Run(c)
	return s
}

// Norm returns the 2-norm of the state.
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.Amps {
		sum += cnum.Abs2(a)
	}
	return math.Sqrt(sum)
}

// Prob returns the probability that measuring qubit q yields outcome.
func (s *State) Prob(q, outcome int) float64 {
	if q < 0 || q >= s.N {
		panic(fmt.Sprintf("dense: Prob: qubit %d out of range", q))
	}
	bit := uint64(1) << uint(q)
	var p float64
	for i, a := range s.Amps {
		if (uint64(i)&bit != 0) == (outcome == 1) {
			p += cnum.Abs2(a)
		}
	}
	return p
}

// SampleAll draws one full measurement outcome from the state's
// distribution without collapsing it.
func (s *State) SampleAll(rng *rand.Rand) uint64 {
	r := rng.Float64()
	var acc float64
	for i, a := range s.Amps {
		acc += cnum.Abs2(a)
		if r < acc {
			return uint64(i)
		}
	}
	return uint64(len(s.Amps) - 1)
}

// MeasureQubit measures qubit q, collapsing and renormalising the state
// in place; it returns the observed bit.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	p1 := s.Prob(q, 1)
	bit := 0
	if rng.Float64() < p1 {
		bit = 1
	}
	s.Project(q, bit)
	return bit
}

// Project collapses qubit q to value and renormalises.
func (s *State) Project(q, value int) {
	bit := uint64(1) << uint(q)
	var norm float64
	for i := range s.Amps {
		if (uint64(i)&bit != 0) != (value == 1) {
			s.Amps[i] = 0
		} else {
			norm += cnum.Abs2(s.Amps[i])
		}
	}
	if norm < cnum.Tol {
		panic("dense: Project onto (near-)zero-probability outcome")
	}
	f := complex(1/math.Sqrt(norm), 0)
	for i := range s.Amps {
		s.Amps[i] *= f
	}
}

// Fidelity returns |<s|o>|².
func (s *State) Fidelity(o *State) float64 {
	if s.N != o.N {
		panic("dense: Fidelity: qubit count mismatch")
	}
	var ip complex128
	for i := range s.Amps {
		ip += complex(real(s.Amps[i]), -imag(s.Amps[i])) * o.Amps[i]
	}
	return cnum.Abs2(ip)
}
