package dense

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/gates"
)

func approx(a, b complex128) bool {
	return math.Abs(real(a-b)) < 1e-9 && math.Abs(imag(a-b)) < 1e-9
}

func TestNewState(t *testing.T) {
	s := NewState(3)
	if len(s.Amps) != 8 || s.Amps[0] != 1 {
		t.Fatal("initial state is not |000>")
	}
	mustPanic(t, func() { NewState(0) })
	mustPanic(t, func() { NewState(30) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestApplyHadamard(t *testing.T) {
	s := NewState(1)
	s.Apply(gates.H, 0, nil)
	w := complex(1/math.Sqrt2, 0)
	if !approx(s.Amps[0], w) || !approx(s.Amps[1], w) {
		t.Fatalf("H|0> = %v", s.Amps)
	}
}

func TestApplyCX(t *testing.T) {
	s := NewState(2)
	s.Apply(gates.X, 0, nil)
	s.Apply(gates.X, 1, []dd.Control{dd.Pos(0)})
	if !approx(s.Amps[3], 1) {
		t.Fatalf("CX·X|00> = %v, want |11>", s.Amps)
	}
	// Negative control: triggers only when control is 0.
	s2 := NewState(2)
	s2.Apply(gates.X, 1, []dd.Control{dd.Neg(0)})
	if !approx(s2.Amps[2], 1) {
		t.Fatalf("negctl X|00> = %v, want |10>", s2.Amps)
	}
}

func TestBellCircuitPaperExample(t *testing.T) {
	// Example 1 of the paper: |01> through H(q0-as-msb) then CX. In our
	// little-endian convention the paper's q0 is our qubit 1.
	s := NewState(2)
	s.Apply(gates.X, 0, nil) // prepare |01> (paper ordering |q0 q1>)
	s.Apply(gates.H, 1, nil)
	s.Apply(gates.X, 0, []dd.Control{dd.Pos(1)})
	w := complex(1/math.Sqrt2, 0)
	// Paper result: (0, 1/√2, 0, 1/√2) in basis |q0 q1> = index q0*2+q1.
	if !approx(s.Amps[1], w) || !approx(s.Amps[2], w) {
		t.Fatalf("paper example state = %v", s.Amps)
	}
	if !approx(s.Amps[0], 0) || !approx(s.Amps[3], 0) {
		t.Fatalf("paper example state = %v", s.Amps)
	}
}

func TestRunCircuitMatchesManual(t *testing.T) {
	c := circuit.New(3)
	c.H(0).CX(0, 1).CCX(0, 1, 2).T(2)
	s := Simulate(c)
	m := NewState(3)
	m.Apply(gates.H, 0, nil)
	m.Apply(gates.X, 1, []dd.Control{dd.Pos(0)})
	m.Apply(gates.X, 2, []dd.Control{dd.Pos(0), dd.Pos(1)})
	m.Apply(gates.T, 2, nil)
	for i := range s.Amps {
		if !approx(s.Amps[i], m.Amps[i]) {
			t.Fatalf("amp %d: %v vs %v", i, s.Amps[i], m.Amps[i])
		}
	}
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm %v", s.Norm())
	}
}

func TestProbAndProject(t *testing.T) {
	s := NewState(2)
	s.Apply(gates.H, 0, nil)
	s.Apply(gates.X, 1, []dd.Control{dd.Pos(0)})
	if p := s.Prob(1, 1); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(q1=1) = %v", p)
	}
	s.Project(1, 1)
	if !approx(s.Amps[3], 1) {
		t.Fatalf("projected state %v", s.Amps)
	}
	mustPanic(t, func() { s.Project(1, 0) }) // zero-probability branch
}

func TestMeasureQubit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := NewState(1)
		s.Apply(gates.H, 0, nil)
		ones += s.MeasureQubit(0, rng)
	}
	ratio := float64(ones) / trials
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("measurement frequency %v, want ~0.5", ratio)
	}
}

func TestSampleAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewState(2)
	s.Apply(gates.X, 1, nil)
	for i := 0; i < 100; i++ {
		if got := s.SampleAll(rng); got != 2 {
			t.Fatalf("sample %d, want 2", got)
		}
	}
}

func TestFidelity(t *testing.T) {
	a := NewState(2)
	b := NewState(2)
	if f := a.Fidelity(b); math.Abs(f-1) > 1e-9 {
		t.Fatalf("identical states fidelity %v", f)
	}
	b.Apply(gates.X, 0, nil)
	if f := a.Fidelity(b); f > 1e-9 {
		t.Fatalf("orthogonal states fidelity %v", f)
	}
}

func TestFromVector(t *testing.T) {
	s := FromVector([]complex128{0, 1, 0, 0})
	if s.N != 2 {
		t.Fatalf("N = %d", s.N)
	}
	mustPanic(t, func() { FromVector(make([]complex128, 3)) })
	mustPanic(t, func() { FromVector(nil) })
}

func TestCloneIndependence(t *testing.T) {
	a := NewState(1)
	b := a.Clone()
	b.Apply(gates.X, 0, nil)
	if !approx(a.Amps[0], 1) {
		t.Fatal("clone aliases original")
	}
}

func BenchmarkDenseGate16(b *testing.B) {
	s := NewState(16)
	for q := 0; q < 16; q++ {
		s.Apply(gates.H, q, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(gates.T, 8, []dd.Control{dd.Pos(0)})
	}
}
