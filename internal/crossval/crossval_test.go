// Package crossval contains randomized differential tests that drive
// every layer of the system against every other: DD simulation under
// all strategies vs. the dense oracle, format round trips (native,
// OpenQASM, RevLib), the optimiser, serialisation, and the equivalence
// checker — on the same randomly generated circuits. A bug in any
// single layer shows up as a disagreement here even if that layer's
// unit tests missed it.
package crossval

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnum"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/opt"
	"repro/internal/qasm"
	"repro/internal/realfmt"
	"repro/internal/verify"
)


// TestEverythingAgreesOnRandomCircuits is the grand differential test:
// for each random circuit, all simulation strategies, the optimised
// circuit, the QASM round trip and the serialised state must agree
// with the dense oracle.
func TestEverythingAgreesOnRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(5)
		c := verify.RandomCircuit(rng, n, 25+rng.Intn(25))
		oracle := dense.Simulate(c)

		strategies := []core.Strategy{
			core.Sequential{},
			core.KOperations{K: 1 + rng.Intn(8)},
			core.MaxSize{SMax: 1 << uint(2+rng.Intn(7))},
			core.Adaptive{Ratio: 0.25 * float64(1+rng.Intn(8))},
			core.CombineAll{},
		}
		var lastState dd.VEdge
		var lastEng *dd.Engine
		for _, st := range strategies {
			res, err := core.Run(c, core.Options{Strategy: st})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, st.Name(), err)
			}
			if f := verify.Fidelity(res.State.ToVector(), oracle); f < 1-1e-9 {
				t.Fatalf("trial %d %s: fidelity %v", trial, st.Name(), f)
			}
			lastState, lastEng = res.State, res.Engine
		}

		// Optimiser: must preserve the unitary exactly.
		optimised, _ := opt.Optimize(c)
		optState := dense.Simulate(optimised)
		if f := oracle.Fidelity(optState); f < 1-1e-9 {
			t.Fatalf("trial %d: optimiser broke the circuit (fidelity %v)", trial, f)
		}

		// QASM round trip.
		text, err := qasm.ExportString(c)
		if err != nil {
			t.Fatalf("trial %d: export: %v", trial, err)
		}
		back, err := qasm.ParseString(text)
		if err != nil {
			t.Fatalf("trial %d: re-import: %v", trial, err)
		}
		if f := oracle.Fidelity(dense.Simulate(back.Circuit)); f < 1-1e-9 {
			t.Fatalf("trial %d: QASM round trip fidelity %v", trial, f)
		}

		// Native text format round trip.
		nc, err := circuit.ParseString(c.String())
		if err != nil {
			t.Fatalf("trial %d: native re-import: %v", trial, err)
		}
		if f := oracle.Fidelity(dense.Simulate(nc)); f < 1-1e-9 {
			t.Fatalf("trial %d: native round trip fidelity %v", trial, f)
		}

		// Serialisation round trip of the final DD state.
		var buf bytes.Buffer
		if err := dd.WriteV(&buf, lastState); err != nil {
			t.Fatalf("trial %d: serialise: %v", trial, err)
		}
		eng2 := dd.New()
		restored, err := dd.ReadV(&buf, eng2)
		if err != nil {
			t.Fatalf("trial %d: deserialise: %v", trial, err)
		}
		if f := verify.Fidelity(restored.ToVector(), oracle); f < 1-1e-9 {
			t.Fatalf("trial %d: serialisation fidelity %v", trial, f)
		}

		// Equivalence checker: circuit ≡ optimised circuit; circuit ≢ a
		// perturbed copy.
		eq, err := core.Equivalent(lastEng, c, optimised)
		if err != nil {
			t.Fatalf("trial %d: equivalence: %v", trial, err)
		}
		if !eq.Equivalent {
			t.Fatalf("trial %d: optimised circuit not equivalent (overlap %v)", trial, eq.HSOverlap)
		}
		perturbed := circuit.New(n)
		perturbed.Gates = append(perturbed.Gates, c.Gates...)
		perturbed.RY(1.234567, rng.Intn(n))
		eq, err = core.Equivalent(lastEng, c, perturbed)
		if err != nil {
			t.Fatal(err)
		}
		if eq.Equivalent {
			t.Fatalf("trial %d: perturbed circuit wrongly equivalent", trial)
		}
	}
}

// TestReversibleSubsetThroughRealFormat drives circuits that stay in
// the reversible subset through the .real round trip and all
// strategies.
func TestReversibleSubsetThroughRealFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(3)
		c := circuit.New(n)
		for i := 0; i < 20; i++ {
			q := rng.Intn(n)
			p := (q + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(3) {
			case 0:
				c.X(q)
			case 1:
				c.CX(q, p)
			default:
				r := (p + 1) % n
				if r != q && r != p {
					c.CCX(q, p, r)
				} else {
					c.X(q)
				}
			}
		}
		var buf bytes.Buffer
		if err := realfmt.Export(&buf, c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prog, err := realfmt.Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		oracle := dense.Simulate(c)
		if f := oracle.Fidelity(dense.Simulate(prog.Circuit)); f < 1-1e-9 {
			t.Fatalf("trial %d: .real round trip fidelity %v", trial, f)
		}
		// Reversible circuits map basis states to basis states: the DD
		// state must have exactly n nodes throughout.
		res, err := core.Run(prog.Circuit, core.Options{Strategy: core.MaxSize{SMax: 64}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine.SizeV(res.State) != n {
			t.Fatalf("trial %d: reversible circuit produced non-basis DD (%d nodes)", trial, res.Engine.SizeV(res.State))
		}
	}
}

// TestDynamicEqualsStaticOnDeferredMeasurement checks the principle of
// deferred measurement: measuring at the end (dense, marginal
// distribution) equals the dynamic run statistics.
func TestDynamicEqualsStaticOnDeferredMeasurement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := `
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
t q[1];
h q[2];
cp(pi/4) q[1],q[2];
measure q -> c;
`
	prog, err := qasm.ParseDynamicString(src)
	if err != nil {
		t.Fatal(err)
	}
	static, err := qasm.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	oracle := dense.Simulate(static.Circuit)
	counts := make([]int, 8)
	const shots = 6000
	for i := 0; i < shots; i++ {
		res, err := prog.Run(core.Options{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Classical]++
	}
	for idx := 0; idx < 8; idx++ {
		want := cnum.Abs2(oracle.Amps[idx])
		got := float64(counts[idx]) / shots
		if math.Abs(got-want) > 0.035 {
			t.Fatalf("outcome %03b: frequency %v, dense probability %v", idx, got, want)
		}
	}
}
