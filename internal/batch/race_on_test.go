//go:build race

package batch_test

// raceEnabled reports whether the race detector is compiled in; timing
// guards skip under it (instrumentation skews run times by ~10x).
const raceEnabled = true
