package batch_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
)

// TestResultsInInputOrder: results must land at their job's index no
// matter which worker ran them or in what order they finished.
func TestResultsInInputOrder(t *testing.T) {
	const n = 64
	jobs := make([]batch.Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context, int) (int, error) { return i * i, nil }
	}
	for _, workers := range []int{1, 3, 8} {
		res, err := batch.Run(context.Background(), jobs, batch.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), n)
		}
		for i, r := range res {
			if r.Index != i || r.Value != i*i || r.Err != nil {
				t.Fatalf("workers=%d: result %d = {Index:%d Value:%d Err:%v}", workers, i, r.Index, r.Value, r.Err)
			}
			if r.Worker < 0 || r.Worker >= workers {
				t.Fatalf("workers=%d: result %d ran on worker %d", workers, i, r.Worker)
			}
		}
	}
}

// TestSingleWorkerRunsSequentiallyInOrder: with one worker the pool
// must degenerate to an in-order loop.
func TestSingleWorkerRunsSequentiallyInOrder(t *testing.T) {
	var order []int
	jobs := make([]batch.Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context, int) (int, error) {
			order = append(order, i) // single worker: no race
			return i, nil
		}
	}
	if _, err := batch.Run(context.Background(), jobs, batch.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v, want ascending", order)
		}
	}
}

// TestPerJobErrorsDoNotKillBatch: failing jobs record their error and
// every sibling still runs.
func TestPerJobErrorsDoNotKillBatch(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]batch.Job[int], 12)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context, int) (int, error) {
			if i%3 == 0 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			return i, nil
		}
	}
	res, err := batch.Run(context.Background(), jobs, batch.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if i%3 == 0 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("job %d: err %v, want boom", i, r.Err)
			}
		} else if r.Err != nil || r.Value != i {
			t.Fatalf("job %d: {Value:%d Err:%v}, want clean %d", i, r.Value, r.Err, i)
		}
	}
}

// TestFailFastSkipsQueuedJobs: under FailFast the first error cancels
// the batch; queued jobs are skipped with ErrSkipped wrapping the
// cause, and skipped results carry Worker == -1.
func TestFailFastSkipsQueuedJobs(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]batch.Job[int], 32)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context, _ int) (int, error) {
			if i == 0 {
				return 0, boom
			}
			// Give the failure time to propagate so later jobs are skipped
			// rather than raced into workers.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			return i, nil
		}
	}
	res, err := batch.Run(context.Background(), jobs, batch.Options{Workers: 2, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, boom) {
		t.Fatalf("job 0: %v, want boom", res[0].Err)
	}
	skipped := 0
	for i, r := range res[1:] {
		if errors.Is(r.Err, batch.ErrSkipped) {
			skipped++
			if !errors.Is(r.Err, boom) {
				t.Fatalf("job %d: skip cause %v, want wrapped boom", i+1, r.Err)
			}
			if r.Worker != -1 {
				t.Fatalf("job %d skipped but Worker = %d", i+1, r.Worker)
			}
		}
	}
	if skipped == 0 {
		t.Fatal("fail-fast batch skipped no queued jobs")
	}
}

// TestNoFailFastNeverSkips: without FailFast every job runs even when
// most of them fail.
func TestNoFailFastNeverSkips(t *testing.T) {
	var ran atomic.Int64
	jobs := make([]batch.Job[int], 20)
	for i := range jobs {
		jobs[i] = func(context.Context, int) (int, error) {
			ran.Add(1)
			return 0, errors.New("always fails")
		}
	}
	res, err := batch.Run(context.Background(), jobs, batch.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d jobs, want all 20", got)
	}
	for i, r := range res {
		if errors.Is(r.Err, batch.ErrSkipped) {
			t.Fatalf("job %d skipped without FailFast", i)
		}
	}
}

// TestParentCancellationSkipsAndAborts: cancelling the parent context
// aborts running jobs (their context closes) and skips queued ones.
func TestParentCancellationSkipsAndAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	jobs := make([]batch.Job[int], 16)
	for i := range jobs {
		jobs[i] = func(jctx context.Context, _ int) (int, error) {
			once.Do(func() { close(started) })
			<-jctx.Done()
			return 0, jctx.Err()
		}
	}
	go func() {
		<-started
		cancel()
	}()
	res, err := batch.Run(ctx, jobs, batch.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("job %d finished cleanly after parent cancellation", i)
		}
		if !errors.Is(r.Err, context.Canceled) && !errors.Is(r.Err, batch.ErrSkipped) {
			t.Fatalf("job %d: %v, want canceled or skipped", i, r.Err)
		}
	}
}

// TestPanicBecomesJobError: a panicking job must not crash the pool.
func TestPanicBecomesJobError(t *testing.T) {
	jobs := []batch.Job[int]{
		func(context.Context, int) (int, error) { panic("kaboom") },
		func(context.Context, int) (int, error) { return 7, nil },
	}
	res, err := batch.Run(context.Background(), jobs, batch.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "kaboom") {
		t.Fatalf("panic not converted: %v", res[0].Err)
	}
	if res[1].Err != nil || res[1].Value != 7 {
		t.Fatalf("sibling of panicking job damaged: %+v", res[1])
	}
}

// TestNilJobRejected: configuration errors are the only way Run fails.
func TestNilJobRejected(t *testing.T) {
	if _, err := batch.Run(context.Background(), []batch.Job[int]{nil}, batch.Options{}); err == nil {
		t.Fatal("nil job accepted")
	}
}

// TestPoolMetrics: per-worker labelled counters must add up to the job
// count and the queue-wait histogram must have seen every job.
func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	jobs := make([]batch.Job[int], 9)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context, int) (int, error) {
			if i == 4 {
				return 0, errors.New("one failure")
			}
			return i, nil
		}
	}
	if _, err := batch.Run(context.Background(), jobs, batch.Options{Workers: 3, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	var started, done, failed, waits uint64
	for _, s := range reg.Snapshot() {
		switch {
		case strings.HasPrefix(s.Name, "batch_jobs_started_total{"):
			started += uint64(s.Value)
		case strings.HasPrefix(s.Name, "batch_jobs_done_total{"):
			done += uint64(s.Value)
		case strings.HasPrefix(s.Name, "batch_jobs_failed_total{"):
			failed += uint64(s.Value)
		case s.Name == "batch_queue_wait_seconds":
			waits = s.Count
		}
	}
	if started != 9 || done != 8 || failed != 1 {
		t.Fatalf("started/done/failed = %d/%d/%d, want 9/8/1", started, done, failed)
	}
	if waits != 9 {
		t.Fatalf("queue-wait histogram saw %d jobs, want 9", waits)
	}
	// The labelled families must render under a single TYPE header each.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "# TYPE batch_jobs_started_total counter"); got != 1 {
		t.Fatalf("labelled family rendered %d TYPE headers:\n%s", got, sb.String())
	}
}

// TestSplitShots: shares must sum to the total and differ by at most 1.
func TestSplitShots(t *testing.T) {
	for _, tc := range []struct{ total, n, wantLen int }{
		{10, 4, 4}, {3, 8, 3}, {8, 8, 8}, {0, 4, 0}, {5, 0, 1},
	} {
		shares := batch.SplitShots(tc.total, tc.n)
		if len(shares) != tc.wantLen {
			t.Fatalf("SplitShots(%d,%d): %d shares, want %d", tc.total, tc.n, len(shares), tc.wantLen)
		}
		sum, min, max := 0, tc.total, 0
		for _, s := range shares {
			sum += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if sum != tc.total {
			t.Fatalf("SplitShots(%d,%d) sums to %d", tc.total, tc.n, sum)
		}
		if len(shares) > 0 && max-min > 1 {
			t.Fatalf("SplitShots(%d,%d) uneven: %v", tc.total, tc.n, shares)
		}
	}
}

// TestEffectiveWorkers pins the clamping rules the budget split
// depends on.
func TestEffectiveWorkers(t *testing.T) {
	if got := (batch.Options{Workers: 8}).EffectiveWorkers(3); got != 3 {
		t.Fatalf("8 workers / 3 jobs = %d, want 3", got)
	}
	if got := (batch.Options{Workers: 2}).EffectiveWorkers(100); got != 2 {
		t.Fatalf("2 workers / 100 jobs = %d, want 2", got)
	}
	if got := (batch.Options{}).EffectiveWorkers(1); got != 1 {
		t.Fatalf("default workers on 1 job = %d, want 1", got)
	}
}
