package batch_test

// Worker-isolation tests: one worker's abort — injected fault or
// node-budget trip — must never corrupt or cancel its siblings unless
// the batch runs fail-fast. Fault injection is armed per-process via
// DD_CHAOS=1 (t.Setenv), so these tests also run without the ddchaos
// build tag; the CI chaos job additionally runs them with the tag and
// -race.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/verify"
)

// referenceAmps computes the serial single-run state for c.
func referenceAmps(t *testing.T, c *circuit.Circuit) []complex128 {
	t.Helper()
	res, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatalf("serial reference: %v", err)
	}
	return res.State.ToVector()
}

func assertExactAmps(t *testing.T, job int, res *core.Result, want []complex128) {
	t.Helper()
	got := res.State.ToVector()
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("job %d: amplitude %d = %v, want %v (sibling state corrupted)", job, k, got[k], want[k])
		}
	}
}

// TestChaosInjectedAbortIsolatedToWorker: a fault injected into one
// job's engine fails exactly that job with FailureInjected; every
// sibling completes with the exact serial state.
func TestChaosInjectedAbortIsolatedToWorker(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	rng := rand.New(rand.NewSource(7))
	c := verify.RandomCircuit(rng, 5, 60)
	want := referenceAmps(t, c)

	const jobs, victim = 6, 2
	bjobs := make([]core.BatchJob, jobs)
	for i := range bjobs {
		// Per-job engines are supplied by the caller here (one each, never
		// shared) because the injection hook must be armed before the run.
		e := dd.New()
		if i == victim {
			if !e.InjectAbortAfter(10, dd.AbortInjected) {
				t.Fatal("fault injection did not arm despite DD_CHAOS=1")
			}
		}
		bjobs[i] = core.BatchJob{Circuit: c, Options: core.Options{Engine: e}}
	}
	results, err := core.RunBatch(context.Background(), bjobs, core.BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == victim {
			if !errors.Is(r.Err, core.ErrInjectedAbort) {
				t.Fatalf("victim job: err %v, want injected abort", r.Err)
			}
			var re *core.RunError
			if !errors.As(r.Err, &re) || re.Kind != core.FailureInjected {
				t.Fatalf("victim job: error not a FailureInjected RunError: %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("sibling job %d failed alongside the injected abort: %v", i, r.Err)
		}
		assertExactAmps(t, i, r.Result, want)
	}
}

// TestChaosFailFastInjectionCancelsSiblings: the same injected fault
// under FailFast cancels the batch — queued jobs are skipped with
// ErrBatchSkipped wrapping the injected abort as the cause.
func TestChaosFailFastInjectionCancelsSiblings(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	rng := rand.New(rand.NewSource(11))
	// Sibling circuits are deliberately heavy (~ms) so the cancellation
	// deterministically outruns the queue.
	victim := verify.RandomCircuit(rng, 5, 40)
	heavy := verify.RandomCircuit(rng, 10, 150)

	const jobs = 16
	bjobs := make([]core.BatchJob, jobs)
	for i := range bjobs {
		if i == 0 {
			e := dd.New()
			if !e.InjectAbortAfter(5, dd.AbortInjected) {
				t.Fatal("fault injection did not arm despite DD_CHAOS=1")
			}
			bjobs[i] = core.BatchJob{Circuit: victim, Options: core.Options{Engine: e}}
			continue
		}
		bjobs[i] = core.BatchJob{Circuit: heavy}
	}
	results, err := core.RunBatch(context.Background(), bjobs,
		core.BatchOptions{Workers: 2, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, core.ErrInjectedAbort) {
		t.Fatalf("job 0: %v, want injected abort", results[0].Err)
	}
	skipped := 0
	for i, r := range results[1:] {
		switch {
		case r.Err == nil:
			// Dispatched before the abort propagated; legitimate.
		case errors.Is(r.Err, core.ErrBatchSkipped):
			skipped++
			if !errors.Is(r.Err, core.ErrInjectedAbort) {
				t.Fatalf("job %d: skip cause %v, want the injected abort", i+1, r.Err)
			}
		case errors.Is(r.Err, core.ErrCanceled):
			// Dispatched into the already-cancelled batch; also legitimate.
		default:
			t.Fatalf("job %d: unexpected error %v", i+1, r.Err)
		}
	}
	if skipped == 0 {
		t.Fatal("fail-fast injection skipped no queued siblings")
	}
}

// TestBatchBudgetTripIsolated: one job with a tiny node budget trips
// FailureBudget; without FailFast its siblings finish untouched with
// the exact serial state. This is the no-chaos half of the isolation
// guarantee — a real budget exhaustion, not an injected one.
func TestBatchBudgetTripIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := verify.RandomCircuit(rng, 6, 60)
	want := referenceAmps(t, c)

	const jobs, victim = 5, 1
	bjobs := make([]core.BatchJob, jobs)
	for i := range bjobs {
		o := core.Options{}
		if i == victim {
			o.MaxNodes = 2 // no 6-qubit run fits two live nodes
			o.DisableFallback = true
		}
		bjobs[i] = core.BatchJob{Circuit: c, Options: o}
	}
	results, err := core.RunBatch(context.Background(), bjobs, core.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == victim {
			if !errors.Is(r.Err, core.ErrBudgetExceeded) {
				t.Fatalf("victim job: err %v, want budget exceeded", r.Err)
			}
			var re *core.RunError
			if !errors.As(r.Err, &re) || re.Kind != core.FailureBudget {
				t.Fatalf("victim job: error not a FailureBudget RunError: %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("sibling job %d failed alongside the budget trip: %v", i, r.Err)
		}
		assertExactAmps(t, i, r.Result, want)
	}
}
