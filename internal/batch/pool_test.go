package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPoolRunsSubmittedTasks: every admitted task runs exactly once.
func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 4, Queue: 100})
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		err := p.TrySubmit(Task{Run: func(context.Context, int) {
			n.Add(1)
			wg.Done()
		}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	if got := n.Load(); got != 50 {
		t.Fatalf("ran %d tasks, want 50", got)
	}
	if _, err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestPoolBoundedAdmission: TrySubmit sheds load at capacity while
// Requeue still admits; the shed is reported as ErrQueueFull.
func TestPoolBoundedAdmission(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 2})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	// Occupy the single worker so queued tasks stay queued.
	if err := p.TrySubmit(Task{Run: func(context.Context, int) { <-release; wg.Done() }}); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	// Wait until the blocker is running (queue empty again).
	for p.Running() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		if err := p.TrySubmit(Task{Run: func(context.Context, int) { wg.Done() }}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := p.TrySubmit(Task{Run: func(context.Context, int) {}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit over capacity = %v, want ErrQueueFull", err)
	}
	wg.Add(1)
	if err := p.Requeue(Task{Run: func(context.Context, int) { wg.Done() }}); err != nil {
		t.Fatalf("requeue over capacity: %v", err)
	}
	close(release)
	wg.Wait()
	p.Drain(context.Background())
}

// TestPoolPriorityOrder: with one worker, queued tasks run in strict
// class order (high before normal before low) and Requeue lands at
// the front of its class.
func TestPoolPriorityOrder(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 16})
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	record := func(name string) Task {
		return Task{Run: func(context.Context, int) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			wg.Done()
		}}
	}
	wg.Add(1)
	p.TrySubmit(Task{Run: func(context.Context, int) { <-release; wg.Done() }})
	for p.Running() == 0 {
		time.Sleep(time.Millisecond)
	}
	submit := func(name string, pri Priority, requeue bool) {
		tk := record(name)
		tk.Priority = pri
		wg.Add(1)
		var err error
		if requeue {
			err = p.Requeue(tk)
		} else {
			err = p.TrySubmit(tk)
		}
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
	}
	submit("low1", PriorityLow, false)
	submit("norm1", PriorityNormal, false)
	submit("high1", PriorityHigh, false)
	submit("norm2", PriorityNormal, false)
	submit("norm0", PriorityNormal, true) // requeued: front of normal
	close(release)
	wg.Wait()
	want := []string{"high1", "norm0", "norm1", "norm2", "low1"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	p.Drain(context.Background())
}

// TestPoolDrain: drain stops intake, returns unstarted tasks, and
// waits for running ones.
func TestPoolDrain(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 16})
	release := make(chan struct{})
	var finished atomic.Bool
	p.TrySubmit(Task{Run: func(context.Context, int) {
		<-release
		finished.Store(true)
	}})
	for p.Running() == 0 {
		time.Sleep(time.Millisecond)
	}
	p.TrySubmit(Task{Priority: PriorityLow, Run: func(context.Context, int) { t.Error("shed task ran") }})
	p.TrySubmit(Task{Priority: PriorityHigh, Run: func(context.Context, int) { t.Error("shed task ran") }})

	drained := make(chan []Task, 1)
	go func() {
		left, err := p.Drain(context.Background())
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		drained <- left
	}()
	// Drain must be blocked on the running task.
	select {
	case <-drained:
		t.Fatal("drain returned while a task was still running")
	case <-time.After(20 * time.Millisecond):
	}
	if err := p.TrySubmit(Task{Run: func(context.Context, int) {}}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after drain = %v, want ErrPoolClosed", err)
	}
	close(release)
	left := <-drained
	if !finished.Load() {
		t.Fatal("drain returned before the running task finished")
	}
	if len(left) != 2 {
		t.Fatalf("drain returned %d unstarted tasks, want 2", len(left))
	}
	if left[0].Priority != PriorityHigh || left[1].Priority != PriorityLow {
		t.Fatalf("unstarted tasks out of priority order: %v, %v", left[0].Priority, left[1].Priority)
	}
}

// TestPoolDrainTimeout: a context deadline stops the wait without
// hanging.
func TestPoolDrainTimeout(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1})
	release := make(chan struct{})
	p.TrySubmit(Task{Run: func(context.Context, int) { <-release }})
	for p.Running() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := p.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain under deadline = %v, want DeadlineExceeded", err)
	}
	close(release)
	p.Wait()
}

// TestPoolKillCancelsRunningTasks: Kill cancels the task context and
// drops the queue.
func TestPoolKillCancelsRunningTasks(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 8})
	cancelled := make(chan struct{})
	p.TrySubmit(Task{Run: func(ctx context.Context, _ int) {
		<-ctx.Done()
		close(cancelled)
	}})
	for p.Running() == 0 {
		time.Sleep(time.Millisecond)
	}
	p.TrySubmit(Task{Run: func(context.Context, int) { t.Error("queued task ran after Kill") }})
	p.Kill()
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("running task never saw cancellation after Kill")
	}
	p.Wait()
	if err := p.TrySubmit(Task{Run: func(context.Context, int) {}}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after kill = %v, want ErrPoolClosed", err)
	}
}

// TestPoolTaskPanicDoesNotKillWorker: a panicking task is recovered
// and the worker keeps serving.
func TestPoolTaskPanicDoesNotKillWorker(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 8})
	p.TrySubmit(Task{Run: func(context.Context, int) { panic("task bug") }})
	done := make(chan struct{})
	p.TrySubmit(Task{Run: func(context.Context, int) { close(done) }})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker died with the panicking task")
	}
	p.Drain(context.Background())
}

// TestPoolInstruments: the pool's metrics reflect admissions,
// rejections and completion. (batch_test.go's TestPoolMetrics covers
// the one-shot Run pool's per-worker instruments.)
func TestPoolInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(PoolOptions{Workers: 1, Queue: 1, Metrics: reg})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	p.TrySubmit(Task{Run: func(context.Context, int) { <-release; wg.Done() }})
	for p.Running() == 0 {
		time.Sleep(time.Millisecond)
	}
	p.TrySubmit(Task{Run: func(context.Context, int) { wg.Done() }})
	if err := p.TrySubmit(Task{Run: func(context.Context, int) {}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	close(release)
	wg.Wait()
	p.Drain(context.Background())

	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		snap[m.Name] = m.Value
	}
	if got := snap[obs.Label("pool_tasks_submitted_total", "class", "normal")]; got != 2 {
		t.Errorf("submitted{normal} = %v, want 2", got)
	}
	if got := snap["pool_tasks_rejected_total"]; got != 1 {
		t.Errorf("rejected = %v, want 1", got)
	}
	if got := snap["pool_tasks_completed_total"]; got != 2 {
		t.Errorf("completed = %v, want 2", got)
	}
	if got := snap[obs.Label("pool_queue_depth", "class", "normal")]; got != 0 {
		t.Errorf("queue depth after drain = %v, want 0", got)
	}
}
