package batch_test

// Differential tests for the parallel batch runtime: the same random
// circuits go through serial core.Run and core.RunBatch at several
// worker counts, and the batch results must be indistinguishable from
// the serial ones — amplitude-exact state vectors and equal engine
// counters. Because every job runs on its own freshly created engine,
// the computation is deterministic: any difference is a real isolation
// bug (shared state, cross-worker cache pollution), not noise.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnum"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/verify"
)


// comparableStats strips the wall-clock fields (GC pause times) that
// legitimately vary between runs; every remaining counter must be
// bit-identical between a serial and a batch execution.
func comparableStats(s dd.Stats) dd.Stats {
	s.GCPause = 0
	s.GCMaxPause = 0
	return s
}

// TestBatchMatchesSerial is satellite 1: random circuits through serial
// core.Run and RunBatch with 1, 4 and 8 workers; amplitude-exact state
// vectors, equal per-run engine counters, and a dense cross-check.
func TestBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const trials = 12
	type serialRun struct {
		c     *circuit.Circuit
		opt   core.Options
		amps  []complex128
		stats dd.Stats
		res   *core.Result
	}
	runs := make([]serialRun, trials)
	jobs := make([]core.BatchJob, trials)
	for i := range runs {
		n := 2 + rng.Intn(5)
		c := verify.RandomCircuit(rng, n, 20+rng.Intn(20))
		var st core.Strategy
		switch i % 3 {
		case 0:
			st = core.Sequential{}
		case 1:
			st = core.KOperations{K: 1 + rng.Intn(6)}
		default:
			st = core.MaxSize{SMax: 1 << uint(2+rng.Intn(6))}
		}
		opt := core.Options{Strategy: st}
		res, err := core.Run(c, opt)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		runs[i] = serialRun{c: c, opt: opt, amps: res.State.ToVector(), stats: comparableStats(res.Stats), res: res}
		jobs[i] = core.BatchJob{Circuit: c, Options: opt}

		// Dense oracle cross-check on the serial reference itself, so a
		// batch/serial match cannot hide an agreed-upon wrong answer.
		if f := verify.Fidelity(runs[i].amps, dense.Simulate(c)); f < 1-1e-9 {
			t.Fatalf("serial run %d disagrees with dense oracle: fidelity %v", i, f)
		}
	}

	for _, workers := range []int{1, 4, 8} {
		results, err := core.RunBatch(context.Background(), jobs, core.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			got := r.Result.State.ToVector()
			if len(got) != len(runs[i].amps) {
				t.Fatalf("workers=%d job %d: vector length %d, want %d", workers, i, len(got), len(runs[i].amps))
			}
			for k := range got {
				if got[k] != runs[i].amps[k] { // exact: same ops on a fresh engine
					t.Fatalf("workers=%d job %d: amplitude %d = %v, serial %v",
						workers, i, k, got[k], runs[i].amps[k])
				}
			}
			if bs := comparableStats(r.Result.Stats); bs != runs[i].stats {
				t.Fatalf("workers=%d job %d: engine counters diverge from serial run:\nbatch:  %+v\nserial: %+v",
					workers, i, bs, runs[i].stats)
			}
			if r.Result.MatVecSteps != runs[i].res.MatVecSteps ||
				r.Result.MatMatSteps != runs[i].res.MatMatSteps ||
				r.Result.GatesApplied != runs[i].res.GatesApplied ||
				r.Result.Fallbacks != runs[i].res.Fallbacks {
				t.Fatalf("workers=%d job %d: step counters diverge from serial run", workers, i)
			}
		}
	}
}

// TestAllStrategiesBatchProperty is satellite 2: for 50 seeded random
// circuits, a batch sweep across every strategy family must reproduce
// the sequential state vector with fidelity 1 (within cnum tolerance).
func TestAllStrategiesBatchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	const circuits = 50
	for trial := 0; trial < circuits; trial++ {
		n := 2 + rng.Intn(4)
		c := verify.RandomCircuit(rng, n, 20+rng.Intn(20))
		ref, err := core.Run(c, core.Options{Strategy: core.Sequential{}})
		if err != nil {
			t.Fatalf("trial %d: sequential reference: %v", trial, err)
		}
		refAmps := ref.State.ToVector()

		strategies := []core.Strategy{
			core.Sequential{},
			core.KOperations{K: 1 + rng.Intn(8)},
			core.MaxSize{SMax: 1 << uint(2+rng.Intn(7))},
			core.Adaptive{Ratio: 0.25 * float64(1+rng.Intn(8))},
			core.CombineAll{},
		}
		jobs := make([]core.BatchJob, len(strategies))
		for i, st := range strategies {
			jobs[i] = core.BatchJob{Circuit: c, Options: core.Options{Strategy: st}}
		}
		results, err := core.RunBatch(context.Background(), jobs, core.BatchOptions{Workers: len(strategies)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("trial %d %s: %v", trial, strategies[i].Name(), r.Err)
			}
			got := r.Result.State.ToVector()
			var ip complex128
			for k := range got {
				ip += complex(real(refAmps[k]), -imag(refAmps[k])) * got[k]
			}
			if f := cnum.Abs2(ip); f < 1-1e-9 {
				t.Fatalf("trial %d %s: fidelity %v against sequential state", trial, strategies[i].Name(), f)
			}
		}
	}
}
