package batch

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
)

// Pool is the long-lived counterpart of Run: a persistent bounded
// worker pool with priority classes, built for daemons (ddserve) that
// accept work over time instead of executing one fixed slice of jobs.
//
// Guarantees:
//
//   - Bounded admission: TrySubmit refuses work once the queue holds
//     Queue tasks (ErrQueueFull) — callers shed load instead of
//     growing memory. Requeue bypasses the cap for work that was
//     already admitted (retries, crash-recovered jobs), so its memory
//     use is bounded by past admissions, not by new traffic.
//   - Strict priority: workers always pick the highest non-empty
//     class; within a class, TrySubmit appends (FIFO) and Requeue
//     prepends (a retried task is older than anything queued behind it).
//   - Drain: stops intake, hands back the tasks that never started,
//     and waits for running tasks to return. Kill cancels the context
//     running tasks received and abandons them — the in-process
//     rehearsal of a kill -9.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [numPriorities][]Task
	queued  int
	running int
	cap     int
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	met *poolPersistentMetrics
}

// Priority orders Pool tasks: lower values run first.
type Priority uint8

const (
	// PriorityNormal is the default class (the Task zero value).
	PriorityNormal Priority = iota
	// PriorityHigh is for interactive, latency-sensitive work.
	PriorityHigh
	// PriorityLow is for background work that may wait indefinitely
	// behind the other classes.
	PriorityLow
	numPriorities
)

// scanOrder is the order workers (and Drain) visit the class queues:
// high first, low last.
var scanOrder = [numPriorities]Priority{PriorityHigh, PriorityNormal, PriorityLow}

// String returns the class's metric label.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	}
	return "invalid"
}

// Task is one unit of pool work. Run receives the pool's context —
// cancelled by Kill, not by Drain — and the index of the worker
// executing it.
type Task struct {
	Priority Priority
	Run      func(ctx context.Context, worker int)
}

// PoolOptions configures NewPool.
type PoolOptions struct {
	// Workers is the number of worker goroutines; <= 0 selects 1.
	Workers int
	// Queue bounds the number of tasks waiting to run (running tasks
	// do not count); <= 0 selects 64.
	Queue int
	// Metrics, when set, receives the pool's instruments: per-class
	// queue-depth gauges, a running-tasks gauge, and per-class
	// submitted/rejected/completed counters.
	Metrics *obs.Registry
}

// Pool admission errors; match with errors.Is.
var (
	// ErrQueueFull reports that TrySubmit found the queue at capacity.
	ErrQueueFull = errors.New("batch: pool queue full")
	// ErrPoolClosed reports a submit after Drain or Kill.
	ErrPoolClosed = errors.New("batch: pool closed")
)

type poolPersistentMetrics struct {
	depth     [numPriorities]*obs.Gauge
	submitted [numPriorities]*obs.Counter
	rejected  *obs.Counter
	running   *obs.Gauge
	completed *obs.Counter
}

func newPoolPersistentMetrics(r *obs.Registry) *poolPersistentMetrics {
	if r == nil {
		return nil
	}
	m := &poolPersistentMetrics{
		rejected:  r.Counter("pool_tasks_rejected_total", "Tasks refused by TrySubmit because the queue was full."),
		running:   r.Gauge("pool_tasks_running", "Tasks currently executing on pool workers."),
		completed: r.Counter("pool_tasks_completed_total", "Tasks that finished executing (regardless of outcome)."),
	}
	for p := Priority(0); p < numPriorities; p++ {
		m.depth[p] = r.Gauge(obs.Label("pool_queue_depth", "class", p.String()),
			"Tasks queued per priority class.")
		m.submitted[p] = r.Counter(obs.Label("pool_tasks_submitted_total", "class", p.String()),
			"Tasks admitted per priority class (TrySubmit and Requeue).")
	}
	return m
}

// NewPool starts the workers and returns the pool.
func NewPool(opt PoolOptions) *Pool {
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	capacity := opt.Queue
	if capacity <= 0 {
		capacity = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{cap: capacity, ctx: ctx, cancel: cancel, met: newPoolPersistentMetrics(opt.Metrics)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// TrySubmit admits t unless the queue is at capacity or the pool is
// closed. It never blocks: a full queue is the caller's signal to
// shed load.
func (p *Pool) TrySubmit(t Task) error {
	return p.submit(t, false)
}

// Requeue admits t even when the queue is over capacity, at the front
// of its priority class. It exists for re-admitting work the pool (or
// a previous process) already accepted — backoff retries and
// journal-recovered jobs must not be shed by admission control.
func (p *Pool) Requeue(t Task) error {
	return p.submit(t, true)
}

func (p *Pool) submit(t Task, requeue bool) error {
	if t.Run == nil {
		return errors.New("batch: nil task")
	}
	if t.Priority >= numPriorities {
		t.Priority = PriorityLow
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if !requeue && p.queued >= p.cap {
		if p.met != nil {
			p.met.rejected.Inc()
		}
		return ErrQueueFull
	}
	q := &p.queues[t.Priority]
	if requeue {
		*q = append([]Task{t}, *q...)
	} else {
		*q = append(*q, t)
	}
	p.queued++
	if p.met != nil {
		p.met.depth[t.Priority].Add(1)
		p.met.submitted[t.Priority].Inc()
	}
	p.cond.Signal()
	return nil
}

// Depth returns the number of queued (not yet running) tasks.
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// Running returns the number of tasks currently executing.
func (p *Pool) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// Capacity returns the queue bound.
func (p *Pool) Capacity() int { return p.cap }

// worker pops the highest-priority task and runs it. Task panics are
// recovered so one bad task cannot take a worker down with it.
func (p *Pool) worker(idx int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.queued == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.queued == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		var t Task
		for _, pri := range scanOrder {
			if q := p.queues[pri]; len(q) > 0 {
				t = q[0]
				p.queues[pri] = q[1:]
				break
			}
		}
		p.queued--
		p.running++
		if p.met != nil {
			p.met.depth[t.Priority].Add(-1)
			p.met.running.Add(1)
		}
		p.mu.Unlock()

		p.runTask(t, idx)

		p.mu.Lock()
		p.running--
		if p.met != nil {
			p.met.running.Add(-1)
			p.met.completed.Inc()
		}
		p.mu.Unlock()
	}
}

func (p *Pool) runTask(t Task, worker int) {
	defer func() { recover() }()
	t.Run(p.ctx, worker)
}

// Drain closes the pool gracefully: intake stops (submits return
// ErrPoolClosed), the tasks that never started are removed and
// returned to the caller in priority-then-FIFO order, and Drain waits
// for the running tasks to finish — until ctx is done, in which case
// it stops waiting and returns the context's error alongside the
// unstarted tasks. It is the caller's job to interrupt long-running
// tasks (ddserve cancels each job's context to trigger
// checkpoint-and-park).
func (p *Pool) Drain(ctx context.Context) ([]Task, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	p.closed = true
	var left []Task
	for _, pri := range scanOrder {
		left = append(left, p.queues[pri]...)
		if p.met != nil {
			p.met.depth[pri].Set(0)
		}
		p.queues[pri] = nil
	}
	p.queued = 0
	p.cond.Broadcast()
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return left, nil
	case <-ctx.Done():
		return left, ctx.Err()
	}
}

// Kill closes the pool abruptly: intake stops, queued tasks are
// dropped, and the context every running task received is cancelled.
// Kill does not wait for the tasks to notice — it is the in-process
// stand-in for the process dying.
func (p *Pool) Kill() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for pri := Priority(0); pri < numPriorities; pri++ {
			p.queues[pri] = nil
			if p.met != nil {
				p.met.depth[pri].Set(0)
			}
		}
		p.queued = 0
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.cancel()
}

// Wait blocks until every worker goroutine has exited (after Drain or
// Kill plus task completion). Exposed for tests that must observe full
// quiescence.
func (p *Pool) Wait() { p.wg.Wait() }
