package batch_test

// BenchmarkRunBatch measures the parallel batch runtime on a Grover
// workload at 1/2/4/8 workers (EXPERIMENTS.md records the numbers),
// and TestSingleWorkerOverhead guards the 1-worker path: the pool must
// cost < 5% over calling core.RunContext directly.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/grover"
)

// benchCircuit is the grover_12 instance (same marked-element rule as
// bench.GroverWorkload): heavy enough that a run dominates scheduling,
// light enough for b.N iterations.
func benchCircuit() *circuit.Circuit {
	const n = 12
	marked := uint64(0x5a5a5a5a5a5a5a5a) & ((1 << n) - 1)
	return grover.Circuit(n, marked, 0)
}

func BenchmarkRunBatch(b *testing.B) {
	c := benchCircuit()
	const jobsPerBatch = 8
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			jobs := make([]core.BatchJob, jobsPerBatch)
			for i := range jobs {
				jobs[i] = core.BatchJob{Circuit: c}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := core.RunBatch(context.Background(), jobs,
					core.BatchOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for j, r := range results {
					if r.Err != nil {
						b.Fatalf("job %d: %v", j, r.Err)
					}
				}
			}
		})
	}
}

func benchName(workers int) string {
	return "workers-" + string(rune('0'+workers))
}

// TestSingleWorkerOverhead: a 1-worker batch is the degenerate case —
// its per-job cost must stay within 5% of calling core.RunContext in a
// loop (plus a small absolute floor for timer noise on fast runs).
func TestSingleWorkerOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("timing guard is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	c := benchCircuit()
	const jobsPerBatch = 4

	// Both sides must retain every result until after the timed region:
	// results pin their engines (the state aliases the engine arena), so
	// a baseline that discards them lets the GC reclaim engines mid-loop
	// and times a lighter workload than any RunBatch caller can have.
	touched := 0
	direct := func() time.Duration {
		results := make([]*core.Result, jobsPerBatch)
		start := time.Now()
		for i := range results {
			res, err := core.RunContext(context.Background(), c, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			results[i] = res
		}
		elapsed := time.Since(start)
		for _, r := range results {
			touched += r.GatesApplied
		}
		return elapsed
	}
	batched := func() time.Duration {
		jobs := make([]core.BatchJob, jobsPerBatch)
		for i := range jobs {
			jobs[i] = core.BatchJob{Circuit: c}
		}
		start := time.Now()
		results, err := core.RunBatch(context.Background(), jobs, core.BatchOptions{Workers: 1})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		for j, r := range results {
			if r.Err != nil {
				t.Fatalf("job %d: %v", j, r.Err)
			}
			touched += r.Result.GatesApplied
		}
		return elapsed
	}

	// Interleaved min-of-5 on both sides, with a GC barrier before each
	// measurement: heap growth over the test's lifetime shifts GC pacing,
	// so measuring all direct rounds first would bias the comparison.
	const rounds = 5
	var d, p time.Duration
	for i := 0; i < rounds; i++ {
		runtime.GC()
		if m := direct(); i == 0 || m < d {
			d = m
		}
		runtime.GC()
		if m := batched(); i == 0 || m < p {
			p = m
		}
	}
	limit := d + d/20 + 20*time.Millisecond // 5% + noise floor
	t.Logf("direct %v, 1-worker batch %v (limit %v, touched %d)", d, p, limit, touched)
	if p > limit {
		t.Fatalf("1-worker batch overhead: %v vs direct %v (limit %v)", p, d, limit)
	}
}
