// Package batch is a bounded worker pool for running independent jobs
// concurrently. It is the scheduling half of the parallel batch
// runtime: DD simulations parallelise naturally at the granularity of
// whole runs (independent runs share nothing), so the pool knows
// nothing about engines or circuits — internal/core builds RunBatch on
// top of it by giving every job a freshly created engine.
//
// Guarantees:
//
//   - Deterministic result ordering: Results[i] always belongs to
//     jobs[i], regardless of which worker ran it or when it finished.
//   - Per-job errors never kill the batch: a failing job records its
//     error in its Result and the pool moves on (unless FailFast).
//   - Aggregate cancellation: cancelling the parent context aborts
//     every running job (jobs receive a derived context) and skips the
//     queued ones; with FailFast, the first job error does the same.
//   - With Workers == 1 the pool degenerates to an in-order sequential
//     loop — the same execution order as calling the jobs directly.
//
// When a metrics registry is supplied the pool maintains per-worker
// labelled instruments (jobs started/done/failed, busy seconds) plus a
// pool-wide queue-wait histogram and in-flight gauge; see the
// batch_* metric names in DESIGN.md §9.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job is one unit of independent work. The context is a child of the
// batch context and is cancelled on aggregate abort; worker is the
// index of the pool worker running the job (0 ≤ worker < Workers),
// stable for the job's whole duration — per-worker state (an engine,
// an rng) is safe to key on it.
type Job[T any] func(ctx context.Context, worker int) (T, error)

// Options configures a pool run.
type Options struct {
	// Workers bounds the number of jobs in flight; <= 0 selects
	// runtime.GOMAXPROCS(0). The effective worker count never exceeds
	// the number of jobs.
	Workers int
	// FailFast makes the first job error cancel the whole batch: running
	// siblings are aborted through their context and queued jobs are
	// skipped with ErrSkipped. Off by default — one blown job must not
	// kill a sweep.
	FailFast bool
	// Metrics, when set, receives the pool's per-worker instruments.
	Metrics *obs.Registry
}

// Result pairs one job's outcome with its scheduling telemetry.
type Result[T any] struct {
	// Index is the job's position in the input slice (Results are
	// returned in input order, so Results[i].Index == i).
	Index int
	// Worker is the pool worker that ran the job (-1 if it was skipped).
	Worker int
	// Value is the job's return value (zero when Err != nil).
	Value T
	// Err is the job's error: whatever the job returned, a recovered
	// panic, or ErrSkipped when the batch aborted before the job started.
	Err error
	// QueueWait is how long the job sat queued before a worker picked it
	// up; Duration is how long it ran.
	QueueWait time.Duration
	Duration  time.Duration
}

// ErrSkipped marks a job that never ran because the batch was cancelled
// (parent context, or a sibling's error under FailFast) first. Match
// with errors.Is; the cause is wrapped alongside it.
var ErrSkipped = errors.New("batch: job skipped after batch abort")

// EffectiveWorkers returns the worker count Run will actually use for
// n jobs — Workers clamped to [1, n], with <= 0 resolving to
// GOMAXPROCS. Callers that split a shared resource across in-flight
// workers (core.RunBatch's node-budget split) use this so the split
// matches the real concurrency.
func (o Options) EffectiveWorkers(n int) int { return o.workers(n) }

// workers resolves the effective worker count for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// poolMetrics holds the pool's instruments; nil when no registry was
// supplied. Per-worker series are labelled worker="i" (see obs.Label).
type poolMetrics struct {
	started, done, failed []*obs.Counter // indexed by worker
	busySeconds           []*obs.Counter
	queueWait             *obs.Histogram
	inflight              *obs.Gauge
}

func newPoolMetrics(r *obs.Registry, workers int) *poolMetrics {
	if r == nil {
		return nil
	}
	m := &poolMetrics{
		queueWait: r.Histogram("batch_queue_wait_seconds",
			"Time jobs sat queued before a worker picked them up.",
			obs.ExponentialBuckets(1e-6, 4, 12)),
		inflight: r.Gauge("batch_inflight_jobs", "Jobs currently running in the pool."),
	}
	for w := 0; w < workers; w++ {
		l := strconv.Itoa(w)
		m.started = append(m.started, r.Counter(obs.Label("batch_jobs_started_total", "worker", l),
			"Jobs started, per pool worker."))
		m.done = append(m.done, r.Counter(obs.Label("batch_jobs_done_total", "worker", l),
			"Jobs finished cleanly, per pool worker."))
		m.failed = append(m.failed, r.Counter(obs.Label("batch_jobs_failed_total", "worker", l),
			"Jobs that returned an error, per pool worker."))
		m.busySeconds = append(m.busySeconds, r.Counter(obs.Label("batch_worker_busy_seconds_total", "worker", l),
			"Whole seconds each worker spent running jobs (truncated)."))
	}
	return m
}

// Run executes every job on a bounded worker pool and returns their
// results in input order. Run itself only returns an error for an
// invalid configuration (a nil job); job failures — including the
// cancellation of the whole batch — are reported per Result, so the
// caller always gets one Result per job.
func Run[T any](ctx context.Context, jobs []Job[T], opt Options) ([]Result[T], error) {
	for i, j := range jobs {
		if j == nil {
			return nil, fmt.Errorf("batch: job %d is nil", i)
		}
	}
	results := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.workers(len(jobs))
	met := newPoolMetrics(opt.Metrics, workers)

	// jobCtx aborts every running job on parent cancellation and — under
	// FailFast — on the first job error. When neither can happen (the
	// parent is non-cancellable and FailFast is off) the jobs receive the
	// parent context untouched: a cancellable context makes engine-backed
	// jobs arm their cooperative abort probes, and the pool must not tax
	// runs with cancellation machinery nobody can trigger.
	jobCtx := ctx
	cancelCause := func(error) {}
	if opt.FailFast || ctx.Done() != nil {
		var cancel context.CancelCauseFunc
		jobCtx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		cancelCause = cancel
	}

	var failOnce sync.Once
	fail := func(err error) {
		if opt.FailFast {
			failOnce.Do(func() { cancelCause(err) })
		}
	}

	// One worker runs inline on the calling goroutine — not just an
	// optimisation of the degenerate case: engine-backed jobs recurse
	// deeply and allocate heavily, and running them on a fresh goroutine
	// costs ~20% in stack growth and GC assists. Inline, a 1-worker
	// batch times like calling the jobs directly (the overhead guard in
	// bench_test.go holds it to <5%).
	if workers == 1 {
		enqueue := time.Now()
		for i := range jobs {
			if jobCtx.Err() != nil {
				cause := context.Cause(jobCtx)
				for ; i < len(jobs); i++ {
					results[i] = Result[T]{
						Index:  i,
						Worker: -1,
						Err:    fmt.Errorf("%w: %w", ErrSkipped, cause),
					}
				}
				break
			}
			res := runOne(jobCtx, jobs[i], i, 0, enqueue, met)
			if res.Err != nil && !errors.Is(res.Err, ErrSkipped) {
				fail(res.Err)
			}
			results[i] = res
		}
		return results, nil
	}

	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-jobCtx.Done():
				// Mark everything not yet handed out as skipped. The
				// feeding goroutine owns results[i] for undispatched i, so
				// this does not race with the workers.
				cause := context.Cause(jobCtx)
				for ; i < len(jobs); i++ {
					results[i] = Result[T]{
						Index:  i,
						Worker: -1,
						Err:    fmt.Errorf("%w: %w", ErrSkipped, cause),
					}
				}
				return
			}
		}
	}()

	enqueue := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				res := runOne(jobCtx, jobs[i], i, worker, enqueue, met)
				if res.Err != nil && !errors.Is(res.Err, ErrSkipped) {
					fail(res.Err)
				}
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	return results, nil
}

// runOne executes a single job on a worker, recovering panics into the
// job's error and recording the worker's telemetry.
func runOne[T any](ctx context.Context, job Job[T], index, worker int, enqueue time.Time, met *poolMetrics) (res Result[T]) {
	start := time.Now()
	res = Result[T]{Index: index, Worker: worker, QueueWait: start.Sub(enqueue)}
	if met != nil {
		met.started[worker].Inc()
		met.queueWait.Observe(res.QueueWait.Seconds())
		met.inflight.Add(1)
	}
	defer func() {
		res.Duration = time.Since(start)
		if rec := recover(); rec != nil {
			res.Err = fmt.Errorf("batch: job %d panicked: %v", index, rec)
		}
		if met != nil {
			met.inflight.Add(-1)
			met.busySeconds[worker].Add(uint64(res.Duration.Seconds()))
			if res.Err != nil {
				met.failed[worker].Inc()
			} else {
				met.done[worker].Inc()
			}
		}
	}()
	res.Value, res.Err = job(ctx, worker)
	return res
}

// SplitShots divides total shots across n workers as evenly as
// possible (the first total%n workers get one extra). It is the
// fan-out rule ddsim's -shots -parallel sampling uses; exported so the
// CLI and tests agree on the split.
func SplitShots(total, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	if total <= 0 {
		return nil
	}
	shares := make([]int, n)
	base, extra := total/n, total%n
	for i := range shares {
		shares[i] = base
		if i < extra {
			shares[i]++
		}
	}
	return shares
}
