// Package opt implements peephole circuit optimisation: cancellation
// of adjacent inverse gate pairs, merging of adjacent rotations on the
// same wires, and removal of identity gates. "Adjacent" is understood
// up to gates on disjoint qubits (which trivially commute), so the
// passes catch pairs separated by unrelated gates.
//
// Optimised circuits are bit-identical in behaviour; the test suite
// verifies every pass against the DD-based equivalence checker. Fewer
// gates mean fewer multiplications for every simulation strategy, so
// the optimiser composes naturally with the paper's combination
// machinery.
package opt

import (
	"repro/internal/circuit"
	"repro/internal/gates"
)

// Stats reports what an optimisation run did.
type Stats struct {
	CancelledPairs  int
	MergedRotations int
	DroppedIdentity int
	Passes          int
}

// Removed returns the total number of gates eliminated.
func (s Stats) Removed() int {
	return 2*s.CancelledPairs + s.MergedRotations + s.DroppedIdentity
}

// Optimize rewrites the circuit to a fixed point of the three peephole
// passes and returns the optimised copy with statistics. Blocks are
// dropped (their gate ranges are generally invalidated by removals).
func Optimize(c *circuit.Circuit) (*circuit.Circuit, Stats) {
	out := circuit.New(c.NQubits)
	out.Name = c.Name
	out.Gates = append([]circuit.Gate(nil), c.Gates...)
	var total Stats
	for {
		changed := false
		if n := cancelPass(out); n > 0 {
			total.CancelledPairs += n
			changed = true
		}
		if n := mergePass(out); n > 0 {
			total.MergedRotations += n
			changed = true
		}
		if n := identityPass(out); n > 0 {
			total.DroppedIdentity += n
			changed = true
		}
		total.Passes++
		if !changed {
			break
		}
	}
	return out, total
}

// qubitsOf returns every wire a gate touches.
func qubitsOf(g circuit.Gate) []int {
	qs := []int{g.Target}
	for _, c := range g.Controls {
		qs = append(qs, c.Qubit)
	}
	return qs
}

// sameWires reports whether two gates act on identical wires in
// identical roles (same target, same control set with polarities).
func sameWires(a, b circuit.Gate) bool {
	if a.Target != b.Target || len(a.Controls) != len(b.Controls) {
		return false
	}
	// Control order is not semantically meaningful; compare as sets.
	match := 0
	for _, ca := range a.Controls {
		for _, cb := range b.Controls {
			if ca == cb {
				match++
				break
			}
		}
	}
	return match == len(a.Controls)
}

func isIdentityMatrix(m gates.Matrix, tol float64) bool {
	return gates.ApproxEqual(m, gates.I, tol, false)
}

// cancelPass removes pairs g2·g1 = I on identical wires. Exact matrix
// identity is required (not up-to-phase: a phase would become a
// *relative* phase under controls).
func cancelPass(c *circuit.Circuit) int {
	removed := 0
	keep := make([]circuit.Gate, 0, len(c.Gates))
	last := make([]int, c.NQubits) // index into keep
	for q := range last {
		last[q] = -1
	}
	for _, g := range c.Gates {
		cand := -1
		ok := true
		for _, q := range qubitsOf(g) {
			l := last[q]
			if l == -1 {
				ok = false
				break
			}
			if cand == -1 {
				cand = l
			} else if cand != l {
				ok = false
				break
			}
		}
		if ok && cand >= 0 && sameWires(keep[cand], g) &&
			isIdentityMatrix(gates.Mul(g.Matrix, keep[cand].Matrix), 1e-10) {
			// Remove the partner; rebuild the last-index map, since
			// earlier gates on these wires become exposed again.
			keep = append(keep[:cand], keep[cand+1:]...)
			removed++
			rebuildLast(keep, last)
			continue
		}
		keep = append(keep, g)
		for _, q := range qubitsOf(g) {
			last[q] = len(keep) - 1
		}
	}
	c.Gates = keep
	return removed
}

// rotationFamily reports whether a gate is angle-parametrised with
// additive composition.
func rotationFamily(name string) bool {
	switch name {
	case "p", "rx", "ry", "rz":
		return true
	}
	return false
}

func rotationMatrix(name string, theta float64) gates.Matrix {
	switch name {
	case "p":
		return gates.Phase(theta)
	case "rx":
		return gates.RX(theta)
	case "ry":
		return gates.RY(theta)
	default:
		return gates.RZ(theta)
	}
}

// mergePass fuses adjacent same-family rotations on identical wires
// into one gate with the summed angle.
func mergePass(c *circuit.Circuit) int {
	merged := 0
	keep := make([]circuit.Gate, 0, len(c.Gates))
	last := make([]int, c.NQubits)
	for q := range last {
		last[q] = -1
	}
	for _, g := range c.Gates {
		if rotationFamily(g.Name) && len(g.Params) == 1 {
			cand := -1
			ok := true
			for _, q := range qubitsOf(g) {
				l := last[q]
				if l == -1 {
					ok = false
					break
				}
				if cand == -1 {
					cand = l
				} else if cand != l {
					ok = false
					break
				}
			}
			if ok && cand >= 0 && keep[cand].Name == g.Name &&
				len(keep[cand].Params) == 1 && sameWires(keep[cand], g) {
				theta := keep[cand].Params[0] + g.Params[0]
				keep[cand].Params = []float64{theta}
				keep[cand].Matrix = rotationMatrix(g.Name, theta)
				merged++
				continue
			}
		}
		keep = append(keep, g)
		for _, q := range qubitsOf(g) {
			last[q] = len(keep) - 1
		}
	}
	c.Gates = keep
	return merged
}

// identityPass drops gates whose matrix is the identity (explicit "i"
// gates, rotations merged to angle 0 or 4π, …).
func identityPass(c *circuit.Circuit) int {
	dropped := 0
	keep := c.Gates[:0]
	for _, g := range c.Gates {
		if isIdentityMatrix(g.Matrix, 1e-10) {
			dropped++
			continue
		}
		// Rotations with angle ≈ 0 mod 4π are identities too; the matrix
		// check above catches them, but angle-2π rotations are -I: keep
		// those (global sign matters under controls).
		keep = append(keep, g)
	}
	c.Gates = keep
	return dropped
}

func rebuildLast(keep []circuit.Gate, last []int) {
	for q := range last {
		last[q] = -1
	}
	for i, g := range keep {
		for _, q := range qubitsOf(g) {
			last[q] = i
		}
	}
}
