package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gates"
)

// assertEquivalent verifies via the DD checker that optimisation did
// not change the unitary (exactly, not just up to phase — the passes
// guarantee exact preservation).
func assertEquivalent(t *testing.T, before, after *circuit.Circuit) {
	t.Helper()
	res, err := core.Equivalent(nil, before, after)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("optimisation changed the circuit (overlap %v)", res.HSOverlap)
	}
	if math.Abs(real(res.Phase)-1) > 1e-6 || math.Abs(imag(res.Phase)) > 1e-6 {
		t.Fatalf("optimisation introduced a global phase %v", res.Phase)
	}
}

func TestCancelAdjacentInverses(t *testing.T) {
	c := circuit.New(2)
	c.H(0).H(0)         // cancels
	c.S(1).Sdg(1)       // cancels
	c.CX(0, 1).CX(0, 1) // cancels
	c.T(0)              // survives
	out, stats := Optimize(c)
	if out.GateCount() != 1 || out.Gates[0].Name != "t" {
		t.Fatalf("optimised to %d gates: %v", out.GateCount(), out.String())
	}
	if stats.CancelledPairs != 3 {
		t.Fatalf("cancelled %d pairs, want 3", stats.CancelledPairs)
	}
	assertEquivalent(t, c, out)
}

func TestCancelAcrossDisjointGates(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.X(1) // disjoint — must not block the H/H cancellation
	c.T(2)
	c.H(0)
	out, stats := Optimize(c)
	if stats.CancelledPairs != 1 {
		t.Fatalf("cancelled %d pairs, want 1 (across disjoint gates)", stats.CancelledPairs)
	}
	if out.GateCount() != 2 {
		t.Fatalf("gate count %d", out.GateCount())
	}
	assertEquivalent(t, c, out)
}

func TestNoCancelWhenBlocked(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1) // touches qubit 0 — blocks
	c.H(0)
	out, stats := Optimize(c)
	if stats.CancelledPairs != 0 || out.GateCount() != 3 {
		t.Fatalf("blocked pair was cancelled: %+v", stats)
	}
}

func TestCancelCascades(t *testing.T) {
	// X S S† X: the inner pair exposes the outer one.
	c := circuit.New(1)
	c.X(0).S(0).Sdg(0).X(0)
	out, stats := Optimize(c)
	if out.GateCount() != 0 {
		t.Fatalf("cascade not fully cancelled: %d gates", out.GateCount())
	}
	if stats.CancelledPairs != 2 {
		t.Fatalf("cancelled %d pairs, want 2", stats.CancelledPairs)
	}
}

func TestControlPolarityMatters(t *testing.T) {
	c := circuit.New(2)
	c.MC("x", gates.X, []dd.Control{dd.Pos(0)}, 1)
	c.MC("x", gates.X, []dd.Control{dd.Neg(0)}, 1)
	out, stats := Optimize(c)
	if stats.CancelledPairs != 0 || out.GateCount() != 2 {
		t.Fatal("gates with different control polarity were cancelled")
	}
}

func TestMergeRotations(t *testing.T) {
	c := circuit.New(2)
	c.P(0.3, 0).P(0.5, 0)   // merge to P(0.8)
	c.RZ(0.1, 1).RZ(0.2, 1) // merge to RZ(0.3)
	out, stats := Optimize(c)
	if stats.MergedRotations != 2 {
		t.Fatalf("merged %d, want 2", stats.MergedRotations)
	}
	if out.GateCount() != 2 {
		t.Fatalf("gate count %d: %s", out.GateCount(), out.String())
	}
	if got := out.Gates[0].Params[0]; math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("merged angle %v, want 0.8", got)
	}
	assertEquivalent(t, c, out)

	// Exactly inverse rotations cancel outright (the cancel pass runs
	// first and sees RZ(0.1)·RZ(-0.1) = I).
	c2 := circuit.New(1)
	c2.RZ(0.1, 0).RZ(-0.1, 0)
	out2, stats2 := Optimize(c2)
	if out2.GateCount() != 0 || stats2.Removed() != 2 {
		t.Fatalf("inverse rotations not eliminated: %+v", stats2)
	}
}

func TestMergeControlledRotations(t *testing.T) {
	c := circuit.New(2)
	c.CP(0.2, 0, 1).CP(0.3, 0, 1)
	out, stats := Optimize(c)
	if stats.MergedRotations != 1 || out.GateCount() != 1 {
		t.Fatalf("controlled rotations not merged: %+v", stats)
	}
	assertEquivalent(t, c, out)
}

func TestDifferentFamiliesNotMerged(t *testing.T) {
	c := circuit.New(1)
	c.RX(0.2, 0).RZ(0.3, 0)
	out, stats := Optimize(c)
	if stats.MergedRotations != 0 || out.GateCount() != 2 {
		t.Fatal("different rotation families merged")
	}
	_ = out
}

func TestIdentityGatesDropped(t *testing.T) {
	c := circuit.New(2)
	c.I(0).H(1).I(1).P(0, 0)
	out, stats := Optimize(c)
	// The three trivial gates vanish (attribution between the cancel
	// and identity passes depends on adjacency; the total is what
	// matters).
	if stats.Removed() != 3 {
		t.Fatalf("removed %d gates, want 3 (%+v)", stats.Removed(), stats)
	}
	if out.GateCount() != 1 || out.Gates[0].Name != "h" {
		t.Fatalf("gate count %d", out.GateCount())
	}
}

func TestRZ2PiKept(t *testing.T) {
	// RZ(2π) = -I globally: must NOT be dropped (the sign is a relative
	// phase under controls).
	c := circuit.New(2)
	c.MC("rz", gates.RZ(2*math.Pi), []dd.Control{dd.Pos(0)}, 1, 2*math.Pi)
	out, _ := Optimize(c)
	if out.GateCount() != 1 {
		t.Fatal("controlled RZ(2π) was dropped")
	}
	assertEquivalent(t, c, out)
}

func TestOptimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuitWithRedundancy(rng, 4, 60)
	out, _ := Optimize(c)
	out2, stats2 := Optimize(out)
	if stats2.Removed() != 0 {
		t.Fatalf("second optimisation still removed %d gates", stats2.Removed())
	}
	if out2.GateCount() != out.GateCount() {
		t.Fatal("not idempotent")
	}
}

// randomCircuitWithRedundancy plants cancellable structure.
func randomCircuitWithRedundancy(rng *rand.Rand, n, length int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < length; i++ {
		q := rng.Intn(n)
		switch rng.Intn(7) {
		case 0:
			c.H(q).H(q)
		case 1:
			c.T(q)
		case 2:
			c.S(q).Sdg(q)
		case 3:
			p := (q + 1) % n
			c.CX(q, p).CX(q, p)
		case 4:
			c.P(rng.Float64(), q).P(rng.Float64(), q)
		case 5:
			c.X(q)
		default:
			p := (q + 1) % n
			c.CX(q, p)
		}
	}
	return c
}

func TestOptimizeRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		c := randomCircuitWithRedundancy(rng, 3+rng.Intn(3), 40)
		out, stats := Optimize(c)
		if stats.Removed() == 0 {
			t.Fatal("planted redundancy not found")
		}
		if out.GateCount() >= c.GateCount() {
			t.Fatalf("no reduction: %d -> %d", c.GateCount(), out.GateCount())
		}
		assertEquivalent(t, c, out)
		if err := out.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	c := circuit.New(1)
	c.H(0).H(0)
	before := c.GateCount()
	Optimize(c)
	if c.GateCount() != before {
		t.Fatal("input circuit mutated")
	}
}

func TestOptimizeSpeedsUpSimulation(t *testing.T) {
	// The composition the package doc promises: fewer gates → fewer
	// multiplications under every strategy.
	rng := rand.New(rand.NewSource(3))
	c := randomCircuitWithRedundancy(rng, 5, 80)
	out, _ := Optimize(c)
	resBefore, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resAfter, err := core.Run(out, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resAfter.MatVecSteps >= resBefore.MatVecSteps {
		t.Fatalf("no multiplication savings: %d vs %d", resAfter.MatVecSteps, resBefore.MatVecSteps)
	}
}
