package grover

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
)

func TestIterations(t *testing.T) {
	cases := []struct{ n, want int }{
		{2, 1}, {4, 3}, {6, 6}, {8, 12}, {10, 25},
	}
	for _, c := range cases {
		if got := Iterations(c.n); got != c.want {
			t.Errorf("Iterations(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSuccessProbabilityHigh(t *testing.T) {
	for n := 3; n <= 12; n++ {
		p := SuccessProbability(n, Iterations(n))
		if p < 0.9 {
			t.Errorf("optimal success probability for n=%d is %v, want > 0.9", n, p)
		}
	}
}

func TestCircuitStructure(t *testing.T) {
	n := 5
	c := Circuit(n, 13, 0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != 1 {
		t.Fatalf("blocks %d, want 1", len(c.Blocks))
	}
	b := c.Blocks[0]
	if b.Name != "grover-iter" || b.Repeat != Iterations(n) {
		t.Fatalf("block %+v", b)
	}
	if b.Start != n {
		t.Fatalf("block should start after the %d initial Hadamards, got %d", n, b.Start)
	}
}

func TestCircuitPanics(t *testing.T) {
	mustPanic(t, func() { Circuit(1, 0, 0) })
	mustPanic(t, func() { Circuit(3, 8, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestGroverFindsMarkedElement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 4, 6, 8} {
		marked := uint64(rng.Intn(1 << uint(n)))
		c := Circuit(n, marked, 0)
		res, err := core.Run(c, core.Options{Strategy: core.Sequential{}})
		if err != nil {
			t.Fatal(err)
		}
		probs := res.State.Probabilities()
		want := SuccessProbability(n, Iterations(n))
		if math.Abs(probs[marked]-want) > 1e-6 {
			t.Fatalf("n=%d marked=%d: P = %v, want %v", n, marked, probs[marked], want)
		}
		// All unmarked elements share the residual probability equally.
		other := (1 - probs[marked]) / float64((uint64(1)<<uint(n))-1)
		for i, p := range probs {
			if uint64(i) == marked {
				continue
			}
			if math.Abs(p-other) > 1e-9 {
				t.Fatalf("n=%d: unmarked %d has P = %v, want %v", n, i, p, other)
			}
		}
	}
}

func TestGroverMarkedZeroAndMax(t *testing.T) {
	// Edge markings exercise the X-conjugated oracle and all-negative
	// controls.
	for _, marked := range []uint64{0, 15} {
		c := Circuit(4, marked, 0)
		res, err := core.Run(c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		probs := res.State.Probabilities()
		if probs[marked] < 0.9 {
			t.Fatalf("marked=%d: P = %v", marked, probs[marked])
		}
	}
}

func TestStrategiesAgreeOnGrover(t *testing.T) {
	c := Circuit(6, 42, 0)
	ref := dense.Simulate(c)
	for _, opt := range []core.Options{
		{Strategy: core.Sequential{}},
		{Strategy: core.KOperations{K: 8}},
		{Strategy: core.MaxSize{SMax: 128}},
		{Strategy: core.Sequential{}, UseBlocks: true},
		{Strategy: core.KOperations{K: 4}, UseBlocks: true},
	} {
		res, err := core.Run(c, opt)
		if err != nil {
			t.Fatal(err)
		}
		vec := res.State.ToVector()
		for i := range vec {
			d := vec[i] - ref.Amps[i]
			if math.Abs(real(d)) > 1e-7 || math.Abs(imag(d)) > 1e-7 {
				t.Fatalf("%s: amplitude %d differs: %v vs %v", opt.Strategy.Name(), i, vec[i], ref.Amps[i])
			}
		}
	}
}

func TestDDRepeatingReducesMultiplications(t *testing.T) {
	c := Circuit(8, 100, 0)
	plain, err := core.Run(c, core.Options{Strategy: core.Sequential{}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Run(c, core.Options{Strategy: core.Sequential{}, UseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatVecSteps >= plain.MatVecSteps {
		t.Fatalf("DD-repeating did not reduce matvec steps: %d vs %d", rep.MatVecSteps, plain.MatVecSteps)
	}
	// One iteration body combined once: matmat steps = bodyGates-1.
	body := c.Blocks[0].End - c.Blocks[0].Start
	if rep.MatMatSteps != body-1 {
		t.Fatalf("matmat steps %d, want %d", rep.MatMatSteps, body-1)
	}
}

func TestOracleDDMatchesGateOracle(t *testing.T) {
	eng := dd.New()
	n := 4
	marked := uint64(9)
	oracle := OracleDD(eng, n, marked)
	m := oracle.ToMatrix()
	for i := range m {
		for j := range m[i] {
			want := complex128(0)
			if i == j {
				want = 1
				if uint64(i) == marked {
					want = -1
				}
			}
			if d := m[i][j] - want; math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
				t.Fatalf("oracle entry (%d,%d) = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
}

func TestIterationDDMatchesGateIteration(t *testing.T) {
	eng := dd.New()
	n := 4
	marked := uint64(6)
	direct := IterationDD(eng, n, marked)

	// Gate-level iteration from the circuit block.
	c := Circuit(n, marked, 1)
	b := c.Blocks[0]
	gateMat, err := core.CombineGates(eng, c, b.Start, b.End)
	if err != nil {
		t.Fatal(err)
	}
	dm := direct.ToMatrix()
	gm := gateMat.ToMatrix()
	// The two constructions may differ by a global phase (the gate-level
	// diffusion flips the sign); align on the largest entry.
	var ref complex128
	for i := range dm {
		for j := range dm[i] {
			if ref == 0 && math.Abs(real(gm[i][j]))+math.Abs(imag(gm[i][j])) > 1e-6 {
				ref = dm[i][j] / gm[i][j]
			}
		}
	}
	for i := range dm {
		for j := range dm[i] {
			d := dm[i][j] - ref*gm[i][j]
			if math.Abs(real(d)) > 1e-8 || math.Abs(imag(d)) > 1e-8 {
				t.Fatalf("iteration entry (%d,%d): %v vs %v (phase %v)", i, j, dm[i][j], gm[i][j], ref)
			}
		}
	}
}

func TestGroverStateStaysCompact(t *testing.T) {
	// Grover intermediate states have only two distinct amplitudes, so
	// the DD must stay tiny even for many qubits — the property that
	// makes grover a favourable DD benchmark.
	c := Circuit(12, 1234, 5)
	res, err := core.Run(c, core.Options{UseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Engine.SizeV(res.State); s > 3*12 {
		t.Fatalf("grover state DD has %d nodes, expected O(n)", s)
	}
}

func TestGroverMultiMarked(t *testing.T) {
	n := 7
	marked := []uint64{5, 99, 17, 64}
	c := CircuitMulti(n, marked, 0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(c, core.Options{UseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	probs := res.State.Probabilities()
	var hit float64
	for _, x := range marked {
		hit += probs[x]
	}
	want := SuccessProbabilityMulti(n, len(marked), IterationsMulti(n, len(marked)))
	if math.Abs(hit-want) > 1e-6 {
		t.Fatalf("P(marked set) = %v, want %v", hit, want)
	}
	if hit < 0.9 {
		t.Fatalf("multi-marked search weak: %v", hit)
	}
	// Marked elements share the amplified probability equally.
	for _, x := range marked {
		if math.Abs(probs[x]-hit/float64(len(marked))) > 1e-9 {
			t.Fatalf("marked element %d has P = %v, want %v", x, probs[x], hit/4)
		}
	}
}

func TestGroverMultiPanics(t *testing.T) {
	mustPanic(t, func() { CircuitMulti(4, nil, 0) })
	mustPanic(t, func() { CircuitMulti(4, []uint64{16}, 0) })
	mustPanic(t, func() { CircuitMulti(4, []uint64{3, 3}, 0) })
	mustPanic(t, func() { IterationsMulti(4, 0) })
}

// More marked elements need fewer iterations.
func TestIterationsMultiMonotone(t *testing.T) {
	n := 10
	prev := Iterations(n)
	if IterationsMulti(n, 1) != prev {
		t.Fatal("IterationsMulti(n,1) != Iterations(n)")
	}
	for m := 2; m <= 16; m *= 2 {
		k := IterationsMulti(n, m)
		if k > prev {
			t.Fatalf("iterations increased with more marked elements: m=%d k=%d prev=%d", m, k, prev)
		}
		prev = k
	}
}
