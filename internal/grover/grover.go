// Package grover generates Grover search circuits (Fig. 6 of the
// paper): a uniform superposition over 2^n database indices followed by
// repeated Grover iterations (oracle + diffusion), each iteration
// recorded as a circuit Block so the DD-repeating strategy can combine
// it once and re-use the matrix.
//
// The oracle is a phase oracle marking a single element x*: a
// multi-controlled Z whose control polarities follow the bits of x*
// (negative controls supported natively by the DD engine, so no
// basis-flipping X conjugation is needed on the controls).
package grover

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/gates"
)

// Iterations returns the optimal iteration count ⌊π/4·√(2^n)⌋ (at least
// 1), the count that maximises the success probability.
func Iterations(n int) int {
	k := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(uint64(1)<<uint(n)))))
	if k < 1 {
		k = 1
	}
	return k
}

// SuccessProbability returns the analytic probability sin²((2k+1)θ) of
// measuring the marked element after k iterations, with
// θ = asin(2^{-n/2}).
func SuccessProbability(n, k int) float64 {
	theta := math.Asin(1 / math.Sqrt(float64(uint64(1)<<uint(n))))
	s := math.Sin(float64(2*k+1) * theta)
	return s * s
}

// Circuit returns the Grover search circuit on n qubits for the marked
// element, running `iterations` Grover iterations (pass 0 for the
// optimal count). The iterations are recorded as the Block "grover-iter".
func Circuit(n int, marked uint64, iterations int) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("grover: need at least 2 qubits, got %d", n))
	}
	if n < 64 && marked >= 1<<uint(n) {
		panic(fmt.Sprintf("grover: marked element %d out of range for %d qubits", marked, n))
	}
	if iterations <= 0 {
		iterations = Iterations(n)
	}
	c := circuit.New(n)
	c.Name = fmt.Sprintf("grover_%d", n)

	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.Repeat("grover-iter", iterations, func(c *circuit.Circuit) {
		appendOracle(c, n, marked)
		appendDiffusion(c, n)
	})
	return c
}

// appendOracle flips the phase of |marked>. The Z target is qubit 0;
// when bit 0 of marked is 0 it is conjugated by X so the active basis
// state is still exactly |marked>.
func appendOracle(c *circuit.Circuit, n int, marked uint64) {
	controls := make([]dd.Control, 0, n-1)
	for q := 1; q < n; q++ {
		controls = append(controls, dd.Control{Qubit: q, Negative: marked>>uint(q)&1 == 0})
	}
	flip := marked&1 == 0
	if flip {
		c.X(0)
	}
	c.MC("z", gates.Z, controls, 0)
	if flip {
		c.X(0)
	}
}

// appendDiffusion appends the inversion about the mean: H^n, a phase
// flip of |0…0>, H^n.
func appendDiffusion(c *circuit.Circuit, n int) {
	for q := 0; q < n; q++ {
		c.H(q)
	}
	controls := make([]dd.Control, 0, n-1)
	for q := 1; q < n; q++ {
		controls = append(controls, dd.Neg(q))
	}
	c.X(0)
	c.MC("z", gates.Z, controls, 0)
	c.X(0)
	for q := 0; q < n; q++ {
		c.H(q)
	}
}

// OracleDD builds the oracle unitary directly as a diagonal DD — the
// DD-construct analogue for Grover, used for validation and ablations.
func OracleDD(eng *dd.Engine, n int, marked uint64) dd.MEdge {
	return eng.FromDiagonal(n, func(x uint64) complex128 {
		if x == marked {
			return -1
		}
		return 1
	})
}

// IterationDD combines one full Grover iteration (oracle followed by
// diffusion) into a single matrix DD, built directly rather than from
// the gate sequence.
func IterationDD(eng *dd.Engine, n int, marked uint64) dd.MEdge {
	oracle := OracleDD(eng, n, marked)
	// Diffusion = H^n · (2|0><0| - I) · H^n; realise via gate DDs.
	h := eng.Identity(n)
	for q := 0; q < n; q++ {
		h = eng.MulMat(eng.GateDD(gates.H, n, q, nil), h)
	}
	zero := eng.FromDiagonal(n, func(x uint64) complex128 {
		if x == 0 {
			return 1
		}
		return -1
	})
	diff := eng.MulMat(h, eng.MulMat(zero, h))
	return eng.MulMat(diff, oracle)
}

// IterationsMulti returns the optimal iteration count
// ⌊π/4·√(2^n/m)⌋ (at least 1) when m elements are marked.
func IterationsMulti(n, m int) int {
	if m < 1 {
		panic(fmt.Sprintf("grover: IterationsMulti: marked count %d", m))
	}
	k := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(uint64(1)<<uint(n))/float64(m))))
	if k < 1 {
		k = 1
	}
	return k
}

// SuccessProbabilityMulti returns sin²((2k+1)θ) with θ = asin(√(m/2^n))
// — the probability that a measurement yields *some* marked element
// after k iterations.
func SuccessProbabilityMulti(n, m, k int) float64 {
	theta := math.Asin(math.Sqrt(float64(m) / float64(uint64(1)<<uint(n))))
	s := math.Sin(float64(2*k+1) * theta)
	return s * s
}

// CircuitMulti returns a Grover search marking a set of elements: the
// oracle is one mixed-polarity multi-controlled Z per marked element.
// iterations = 0 selects the optimal count for the set size.
func CircuitMulti(n int, marked []uint64, iterations int) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("grover: need at least 2 qubits, got %d", n))
	}
	if len(marked) == 0 {
		panic("grover: CircuitMulti: no marked elements")
	}
	seen := make(map[uint64]bool, len(marked))
	for _, x := range marked {
		if n < 64 && x >= 1<<uint(n) {
			panic(fmt.Sprintf("grover: marked element %d out of range for %d qubits", x, n))
		}
		if seen[x] {
			panic(fmt.Sprintf("grover: marked element %d repeated", x))
		}
		seen[x] = true
	}
	if iterations <= 0 {
		iterations = IterationsMulti(n, len(marked))
	}
	c := circuit.New(n)
	c.Name = fmt.Sprintf("grover_multi_%d_%d", n, len(marked))
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.Repeat("grover-iter", iterations, func(c *circuit.Circuit) {
		for _, x := range marked {
			appendOracle(c, n, x)
		}
		appendDiffusion(c, n)
	})
	return c
}
