package dd

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/cnum"
)

// Engine owns the unique tables, compute caches and the complex-value
// table of one simulation. Diagrams from different engines must not be
// mixed. An Engine is not safe for concurrent use.
type Engine struct {
	weights cnum.Table

	vUnique map[vKey]*VNode
	mUnique map[mKey]*MNode
	nextID  uint32

	// Identity diagrams by span: identity[k] covers variables 0..k-1.
	identity []MEdge

	addVTab  []addVSlot
	addMTab  []addMSlot
	mulMVTab []mulMVSlot
	mulMMTab []mulMMSlot

	deadline      time.Time
	deadlineTicks uint32

	// epoch stamps node marks during SizeV/SizeM traversals so repeated
	// size queries (the max-size strategy runs one per gate) need no
	// per-call visited set.
	epoch uint32

	stats Stats
}

// bumpEpoch advances the traversal epoch, clearing all marks on the
// (astronomically rare) wrap-around so stale marks can never alias.
func (e *Engine) bumpEpoch() {
	if e.epoch == math.MaxUint32 {
		for _, n := range e.vUnique {
			n.mark = 0
		}
		for _, n := range e.mUnique {
			n.mark = 0
		}
		e.epoch = 0
	}
	e.epoch++
}

// SizeV counts the distinct non-terminal nodes under e using the
// engine's traversal epoch — allocation-free, unlike VEdge.Size.
// Only valid for diagrams owned by this engine.
func (e *Engine) SizeV(v VEdge) int {
	e.bumpEpoch()
	return e.sizeV(v.N)
}

func (e *Engine) sizeV(n *VNode) int {
	if n == vTerminal || n.mark == e.epoch {
		return 0
	}
	n.mark = e.epoch
	return 1 + e.sizeV(n.E[0].N) + e.sizeV(n.E[1].N)
}

// SizeM counts the distinct non-terminal nodes under e; see SizeV.
func (e *Engine) SizeM(m MEdge) int {
	e.bumpEpoch()
	return e.sizeM(m.N)
}

func (e *Engine) sizeM(n *MNode) int {
	if n == mTerminal || n.mark == e.epoch {
		return 0
	}
	n.mark = e.epoch
	s := 1
	for i := range n.E {
		s += e.sizeM(n.E[i].N)
	}
	return s
}

// ErrDeadlineExceeded is the value carried by the panic an Engine
// raises when a deadline set via SetDeadline expires mid-operation.
// Use AbortedByDeadline to classify recovered panics.
var ErrDeadlineExceeded = errors.New("dd: engine deadline exceeded")

// deadlineError wraps ErrDeadlineExceeded so recover() handlers can
// distinguish deadline aborts from genuine bugs.
type deadlineError struct{}

func (deadlineError) Error() string { return ErrDeadlineExceeded.Error() }

// AbortedByDeadline reports whether a recovered panic value is an
// engine deadline abort.
func AbortedByDeadline(recovered any) bool {
	_, ok := recovered.(deadlineError)
	return ok
}

// SetDeadline arms a wall-clock deadline checked inside the arithmetic
// recursions (every few thousand steps). When it expires, the running
// operation panics with a value recognised by AbortedByDeadline;
// callers recover it and surface an error. A zero time disarms the
// deadline. The engine's tables remain consistent after an abort —
// partially built nodes are already canonical.
func (e *Engine) SetDeadline(t time.Time) { e.deadline = t }

// checkDeadline is called from the hot recursion paths; the tick
// counter keeps the time syscall off the common path.
func (e *Engine) checkDeadline() {
	if e.deadline.IsZero() {
		return
	}
	e.deadlineTicks++
	if e.deadlineTicks&0xfff != 0 {
		return
	}
	if time.Now().After(e.deadline) {
		panic(deadlineError{})
	}
}

// Stats accumulates operation counters of an Engine. The multiplication
// counters are the quantities the paper trades against each other.
type Stats struct {
	MatVecMuls     uint64 // top-level matrix-vector multiplications
	MatMatMuls     uint64 // top-level matrix-matrix multiplications
	AddRecursions  uint64
	MulRecursions  uint64
	CacheHits      uint64
	CacheLookups   uint64
	NodesCreated   uint64
	GCs            uint64
	PeakVNodes     int
	PeakMNodes     int
	PeakVectorSize int // largest state-vector DD observed via NoteVectorSize
	PeakMatrixSize int // largest operation DD observed via NoteMatrixSize
}

// cache sizing: direct-mapped tables with overwrite-on-collision, the
// scheme used by the JKU package. Powers of two for cheap masking.
const (
	cacheBits = 16
	cacheSize = 1 << cacheBits
	cacheMask = cacheSize - 1
)

type vKey struct {
	v      int32
	n0, n1 uint32
	w0, w1 complex128
}

type mKey struct {
	v              int32
	n0, n1, n2, n3 uint32
	w0, w1, w2, w3 complex128
}

type addVSlot struct {
	aN, bN uint32
	aW, bW complex128
	r      VEdge
	ok     bool
}

type addMSlot struct {
	aN, bN uint32
	aW, bW complex128
	r      MEdge
	ok     bool
}

type mulMVSlot struct {
	m, v uint32
	r    VEdge
	ok   bool
}

type mulMMSlot struct {
	a, b uint32
	r    MEdge
	ok   bool
}

// New returns an empty Engine ready for use.
func New() *Engine {
	return &Engine{
		vUnique:  make(map[vKey]*VNode),
		mUnique:  make(map[mKey]*MNode),
		nextID:   1,
		addVTab:  make([]addVSlot, cacheSize),
		addMTab:  make([]addMSlot, cacheSize),
		mulMVTab: make([]mulMVSlot, cacheSize),
		mulMMTab: make([]mulMMSlot, cacheSize),
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes all counters (table contents are preserved).
func (e *Engine) ResetStats() { e.stats = Stats{} }

// VNodeCount returns the number of live vector nodes in the unique table.
func (e *Engine) VNodeCount() int { return len(e.vUnique) }

// MNodeCount returns the number of live matrix nodes in the unique table.
func (e *Engine) MNodeCount() int { return len(e.mUnique) }

// NoteVectorSize records s as an observed state-vector DD size for the
// peak statistics.
func (e *Engine) NoteVectorSize(s int) {
	if s > e.stats.PeakVectorSize {
		e.stats.PeakVectorSize = s
	}
}

// NoteMatrixSize records s as an observed operation DD size for the peak
// statistics.
func (e *Engine) NoteMatrixSize(s int) {
	if s > e.stats.PeakMatrixSize {
		e.stats.PeakMatrixSize = s
	}
}

// Weight canonicalises a complex value through the engine's value table.
func (e *Engine) Weight(c complex128) complex128 { return e.weights.Lookup(c) }

// WeightTableSize returns the number of canonical complex representatives.
func (e *Engine) WeightTableSize() int { return e.weights.Size() }

// makeVNode hash-conses a vector node with the given children. The
// normalisation rule divides out the largest-magnitude edge weight
// (ties broken towards the lower index): stored weights then never
// exceed magnitude one, which bounds floating-point error growth —
// normalising by the *first* non-zero weight instead amplifies noise
// whenever that weight is tiny and destroys sharing over long runs.
func (e *Engine) makeVNode(v int32, e0, e1 VEdge) VEdge {
	e0.W = e.weights.Lookup(e0.W)
	e1.W = e.weights.Lookup(e1.W)
	if e0.W == cnum.Zero {
		e0.N = vTerminal
	}
	if e1.W == cnum.Zero {
		e1.N = vTerminal
	}
	if e0.W == cnum.Zero && e1.W == cnum.Zero {
		return VZero()
	}
	top := e0.W
	if magGreater(e1.W, top) {
		top = e1.W
	}
	e0.W = e.normDiv(e0.W, top)
	e1.W = e.normDiv(e1.W, top)
	k := vKey{v: v, n0: e0.N.id, n1: e1.N.id, w0: e0.W, w1: e1.W}
	if n, ok := e.vUnique[k]; ok {
		return VEdge{W: top, N: n}
	}
	n := &VNode{E: [2]VEdge{e0, e1}, V: v, id: e.nextID}
	e.nextID++
	e.stats.NodesCreated++
	e.vUnique[k] = n
	if len(e.vUnique) > e.stats.PeakVNodes {
		e.stats.PeakVNodes = len(e.vUnique)
	}
	return VEdge{W: top, N: n}
}

// makeMNode hash-conses a matrix node; see makeVNode.
func (e *Engine) makeMNode(v int32, es [4]MEdge) MEdge {
	for i := range es {
		es[i].W = e.weights.Lookup(es[i].W)
		if es[i].W == cnum.Zero {
			es[i].N = mTerminal
		}
	}
	best := -1
	for i := range es {
		if es[i].W == cnum.Zero {
			continue
		}
		if best < 0 || magGreater(es[i].W, es[best].W) {
			best = i
		}
	}
	if best < 0 {
		return MZero()
	}
	top := es[best].W
	for i := range es {
		es[i].W = e.normDiv(es[i].W, top)
	}
	k := mKey{
		v:  v,
		n0: es[0].N.id, n1: es[1].N.id, n2: es[2].N.id, n3: es[3].N.id,
		w0: es[0].W, w1: es[1].W, w2: es[2].W, w3: es[3].W,
	}
	if n, ok := e.mUnique[k]; ok {
		return MEdge{W: top, N: n}
	}
	n := &MNode{E: es, V: v, id: e.nextID}
	e.nextID++
	e.stats.NodesCreated++
	e.mUnique[k] = n
	if len(e.mUnique) > e.stats.PeakMNodes {
		e.stats.PeakMNodes = len(e.mUnique)
	}
	return MEdge{W: top, N: n}
}

// Identity returns the matrix DD of the identity on qubits 0..n-1.
func (e *Engine) Identity(n int) MEdge {
	if n < 0 {
		panic(fmt.Sprintf("dd: Identity(%d): negative qubit count", n))
	}
	for len(e.identity) <= n {
		k := len(e.identity)
		if k == 0 {
			e.identity = append(e.identity, MOne())
			continue
		}
		below := e.identity[k-1]
		e.identity = append(e.identity, e.makeMNode(int32(k-1), [4]MEdge{below, MZero(), MZero(), below}))
	}
	return e.identity[n]
}

// magRelTol is the relative squared-magnitude margin under which two
// edge weights count as equally large during normalisation; the tie
// then goes to the lower edge index so that nodes equal up to noise —
// or up to a common scalar factor — normalise identically.
const magRelTol = 1e-6

// magGreater reports whether |a| exceeds |b| by more than the relative
// tie margin.
func magGreater(a, b complex128) bool {
	return cnum.Abs2(a) > cnum.Abs2(b)*(1+magRelTol)
}

// normDiv divides an edge weight by the normalisation factor and
// canonicalises, mapping the selected edge to exactly one.
func (e *Engine) normDiv(w, top complex128) complex128 {
	if w == cnum.Zero {
		return cnum.Zero
	}
	if w == top {
		return cnum.One
	}
	return e.weights.Lookup(w / top)
}

// mix hashes two node ids into a cache index.
func mix(a, b uint32) uint32 {
	h := a*0x9e3779b1 ^ b*0x85ebca77
	h ^= h >> 15
	h *= 0xc2b2ae3d
	h ^= h >> 13
	return h & cacheMask
}

// mixW folds a complex weight into a hash.
func mixW(h uint32, w complex128) uint32 {
	rb := math.Float64bits(real(w))
	ib := math.Float64bits(imag(w))
	h ^= uint32(rb) ^ uint32(rb>>32)*0x9e3779b1
	h ^= uint32(ib)*0x85ebca77 ^ uint32(ib>>32)
	h ^= h >> 16
	return h & cacheMask
}

// clearCaches invalidates all compute caches (after GC, node identities
// may be reused so stale entries must not survive).
func (e *Engine) clearCaches() {
	for i := range e.addVTab {
		e.addVTab[i].ok = false
	}
	for i := range e.addMTab {
		e.addMTab[i].ok = false
	}
	for i := range e.mulMVTab {
		e.mulMVTab[i].ok = false
	}
	for i := range e.mulMMTab {
		e.mulMMTab[i].ok = false
	}
}
