package dd

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/cnum"
)

// Engine owns the unique tables, node arenas, compute caches and the
// complex-value table of one simulation. Diagrams from different
// engines must not be mixed. An Engine is not safe for concurrent use.
//
// Memory layout (see DESIGN.md, "Engine memory layout"): nodes are
// allocated from chunked arenas and indexed by open-addressing unique
// tables keyed on the node fields themselves; compute caches are
// direct-mapped arrays whose entries carry a generation stamp, so
// post-GC invalidation is a single counter increment instead of a
// table wipe.
type Engine struct {
	weights cnum.Table

	vUnique vTable
	mUnique mTable
	vArena  vArena
	mArena  mArena
	nextID  uint32

	// Identity diagrams by span: identity[k] covers variables 0..k-1.
	identity []MEdge

	addVTab  []addVSlot
	addMTab  []addMSlot
	mulMVTab []mulMVSlot
	mulMMTab []mulMMSlot
	// Scratch memo tables for the query operations (inner products,
	// traces, projections, conjugate transposes); same generation scheme
	// as the caches.
	ipTab   []ipSlot
	trTab   []trSlot
	projTab []projSlot
	ctTab   []ctSlot

	// cacheGen stamps valid cache/scratch entries; clearCaches bumps it
	// so every stale entry expires at once. projGen is bumped per
	// Project call since projections memoise call-local results.
	cacheGen uint32
	projGen  uint32

	// ctlBuf is GateDD's per-qubit control scratch, reused across calls.
	ctlBuf []ctlKind

	// strategyScratch is an opaque slot for strategy state that should
	// live as long as the simulation does (see StrategyScratch). The
	// engine never inspects it.
	strategyScratch any

	// noIdentitySkip disables the identity short-circuits in the
	// multiplication kernels (see arith.go). The zero value — skipping
	// enabled — is the production configuration; differential suites
	// disable it to prove the optimised kernels are pointer-identical to
	// the plain recursion.
	noIdentitySkip bool

	// Cooperative abort layer (see abort.go). armed caches whether any
	// source below is live so the kernel probes cost one branch when
	// nothing is armed; probes counts probe invocations while armed.
	deadline     time.Time
	ctx          context.Context
	budget       int
	injectAt     uint64
	injectReason AbortReason
	probes       uint64
	armed        bool

	// deadlineSkip is the number of unmasked probes the deadline source
	// may skip before re-reading the clock; see abortCheck.
	deadlineSkip uint32

	// Memory-pressure signal (see pressure.go). wmLow/wmHigh/wmCrit are
	// absolute live-node thresholds precomputed from the watermark
	// fractions so the per-probe banding is integer compares only.
	// injectLevel is the chaos override; lastGCLive/lastGCFreed record
	// the most recent collection for the reclaim-effectiveness signal.
	softBudget  int
	wmLow       int
	wmHigh      int
	wmCrit      int
	injectLevel PressureLevel
	lastGCLive  int
	lastGCFreed int

	// Bit-flip fault injection (see faults.go). flipCountdown counts
	// down on node internings; at zero-crossing the fresh node is
	// corrupted in place. Zero means disarmed — the hot-path guard is a
	// single branch, mirroring the abort layer's armed flag.
	flipCountdown uint64
	flipKind      FaultKind

	// epoch stamps node marks during SizeV/SizeM traversals and GC
	// marking, so repeated traversals need no per-call visited set.
	epoch uint32

	// obs, when non-nil, receives instrumentation callbacks; see
	// instrument.go. Hot paths guard every call with a nil check.
	obs EngineObserver

	stats Stats
}

// bumpEpoch advances the traversal epoch. On the (astronomically rare)
// wrap-around every mark in both arenas — including free-listed nodes
// that might later be recycled — is cleared so stale marks can never
// alias a fresh epoch.
func (e *Engine) bumpEpoch() {
	if e.epoch == math.MaxUint32 {
		e.vArena.resetMarks()
		e.mArena.resetMarks()
		e.epoch = 0
	}
	e.epoch++
}

// SizeV counts the distinct non-terminal nodes under e using the
// engine's traversal epoch — allocation-free, unlike VEdge.Size.
// Only valid for diagrams owned by this engine.
func (e *Engine) SizeV(v VEdge) int {
	e.bumpEpoch()
	return e.sizeV(v.N)
}

func (e *Engine) sizeV(n *VNode) int {
	if n == vTerminal || n.mark == e.epoch {
		return 0
	}
	n.mark = e.epoch
	return 1 + e.sizeV(n.E[0].N) + e.sizeV(n.E[1].N)
}

// SizeM counts the distinct non-terminal nodes under e; see SizeV.
func (e *Engine) SizeM(m MEdge) int {
	e.bumpEpoch()
	return e.sizeM(m.N)
}

func (e *Engine) sizeM(n *MNode) int {
	if n == mTerminal || n.mark == e.epoch {
		return 0
	}
	n.mark = e.epoch
	s := 1
	for i := range n.E {
		s += e.sizeM(n.E[i].N)
	}
	return s
}

// Probe is a cheap O(1) sample of the engine quantities the adaptive
// strategy planner (core.Planner) tracks between decisions: live node
// counts per unique table and the kernel-effort counters. Unlike
// SizeV/SizeM a probe never traverses a diagram, so sampling one per
// absorbed gate is free relative to the multiplications themselves.
type Probe struct {
	// VLive and MLive are the live unique-table node counts — the
	// delta in MLive across a gate absorption bounds how much the
	// accumulated operation DD can have grown.
	VLive, MLive int
	// MulRecursions and AddRecursions are the kernel recursion
	// counters; their delta over a window is the actual work the
	// window's matrix-matrix products cost.
	MulRecursions uint64
	AddRecursions uint64
	// IdentitySkips aggregates the identity short-circuits taken
	// (mat-vec + mat-mat); a high skip share marks identity-dominated
	// accumulation, which is exactly when combining stays cheap.
	IdentitySkips uint64
	// NodesCreated counts fresh node internings.
	NodesCreated uint64
}

// Probe samples the engine counters; see Probe. O(1), allocation-free.
func (e *Engine) Probe() Probe {
	return Probe{
		VLive:         e.vUnique.live,
		MLive:         e.mUnique.live,
		MulRecursions: e.stats.MulRecursions,
		AddRecursions: e.stats.AddRecursions,
		IdentitySkips: e.stats.IdentitySkipsMV + e.stats.IdentitySkipsMM,
		NodesCreated:  e.stats.NodesCreated,
	}
}

// Sub returns the component-wise delta p−prev (prev an earlier probe of
// the same engine).
func (p Probe) Sub(prev Probe) Probe {
	return Probe{
		VLive:         p.VLive - prev.VLive,
		MLive:         p.MLive - prev.MLive,
		MulRecursions: p.MulRecursions - prev.MulRecursions,
		AddRecursions: p.AddRecursions - prev.AddRecursions,
		IdentitySkips: p.IdentitySkips - prev.IdentitySkips,
		NodesCreated:  p.NodesCreated - prev.NodesCreated,
	}
}

// Recursions returns the total kernel recursions the probe has seen —
// the planner's scalar work metric.
func (p Probe) Recursions() uint64 { return p.MulRecursions + p.AddRecursions }

// CacheStats counts lookups and hits of one compute cache.
type CacheStats struct {
	Lookups uint64
	Hits    uint64
}

// HitRate returns Hits/Lookups (0 when the cache was never consulted).
func (c CacheStats) HitRate() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}

// Stats accumulates operation counters of an Engine. The multiplication
// counters are the quantities the paper trades against each other.
type Stats struct {
	MatVecMuls    uint64 // top-level matrix-vector multiplications
	MatMatMuls    uint64 // top-level matrix-matrix multiplications
	AddRecursions uint64
	MulRecursions uint64

	// Identity short-circuits taken by the multiplication kernels (see
	// arith.go): IdentitySkipsMV counts mulVec calls answered as I·v = v,
	// IdentitySkipsMM counts mulMat calls answered as I·b = b or a·I = a.
	// IdentitySkipLevels accumulates the spans (levels) of the skipped
	// identity sub-diagrams — the recursion depth the skips avoided — so
	// skips near the root weigh more than skips near the terminal.
	IdentitySkipsMV    uint64
	IdentitySkipsMM    uint64
	IdentitySkipLevels uint64

	// CacheHits and CacheLookups aggregate the four per-cache counters
	// below; Stats() fills them in for snapshot consumers.
	CacheHits    uint64
	CacheLookups uint64
	// Per-cache counters: vector addition, matrix addition,
	// matrix-vector and matrix-matrix multiplication.
	AddV  CacheStats
	AddM  CacheStats
	MulMV CacheStats
	MulMM CacheStats

	NodesCreated  uint64
	NodesRecycled uint64 // dead nodes returned to the arena free lists by GC

	GCs        uint64
	GCPause    time.Duration // cumulative time spent inside GarbageCollect
	GCMaxPause time.Duration // longest single collection

	// Aborts counts cooperative aborts raised by the abort layer
	// (deadline, cancellation, budget or fault injection; see abort.go).
	Aborts uint64
	// FaultsInjected counts bit-flip faults fired by the chaos layer
	// (see faults.go); always zero outside chaos builds.
	FaultsInjected uint64
	// DeadlineClockReads counts actual clock reads by the deadline
	// probe — far fewer than probes/256 thanks to the skip cache in
	// abortCheck; tests pin the ratio.
	DeadlineClockReads uint64

	// Pressure-probe counters: abort probes taken while live-node
	// occupancy sat in each soft-budget watermark band (see
	// pressure.go). How long the engine spent near its budget, at
	// kernel-recursion resolution.
	PressureProbesLow      uint64
	PressureProbesHigh     uint64
	PressureProbesCritical uint64

	// ReorderSwaps counts adjacent level swaps performed by the dynamic
	// reordering layer (see reorder.go); SiftPasses counts variables
	// sifted (one pass moves one variable through all positions).
	ReorderSwaps uint64
	SiftPasses   uint64

	PeakVNodes     int
	PeakMNodes     int
	PeakVectorSize int // largest state-vector DD observed via NoteVectorSize
	PeakMatrixSize int // largest operation DD observed via NoteMatrixSize
}

// MemStats describes the occupancy of the engine's memory layer.
type MemStats struct {
	VLive, MLive             int // live nodes in the unique tables
	VCapacity, MCapacity     int // open-addressing slots allocated
	VTombstones, MTombstones int // deleted slots awaiting compaction
	VFree, MFree             int // recycled nodes on the arena free lists
	VChunks, MChunks         int // arena chunks allocated
}

// cache sizing: direct-mapped tables with overwrite-on-collision, the
// scheme used by the JKU package. Powers of two for cheap masking.
const (
	cacheBits = 16
	cacheSize = 1 << cacheBits
	cacheMask = cacheSize - 1

	// The query scratch tables (inner product, trace, projection) see
	// far fewer distinct keys per operation than the arithmetic caches.
	scratchBits = 14
	scratchSize = 1 << scratchBits
	scratchMask = scratchSize - 1
)

type addVSlot struct {
	aN, bN uint32
	aW, bW complex128
	r      VEdge
	gen    uint32
}

type addMSlot struct {
	aN, bN uint32
	aW, bW complex128
	r      MEdge
	gen    uint32
}

type mulMVSlot struct {
	m, v uint32
	r    VEdge
	gen  uint32
}

type mulMMSlot struct {
	a, b uint32
	r    MEdge
	gen  uint32
}

type ipSlot struct {
	aN, bN uint32
	val    complex128
	gen    uint32
}

type trSlot struct {
	n   uint32
	val complex128
	gen uint32
}

type projSlot struct {
	n   uint32
	r   VEdge
	gen uint32
}

type ctSlot struct {
	n   uint32
	r   MEdge
	gen uint32
}

// New returns an empty Engine ready for use.
func New() *Engine {
	return &Engine{
		vUnique:  newVTable(),
		mUnique:  newMTable(),
		nextID:   1,
		addVTab:  make([]addVSlot, cacheSize),
		addMTab:  make([]addMSlot, cacheSize),
		mulMVTab: make([]mulMVSlot, cacheSize),
		mulMMTab: make([]mulMMSlot, cacheSize),
		ipTab:    make([]ipSlot, scratchSize),
		trTab:    make([]trSlot, scratchSize),
		projTab:  make([]projSlot, scratchSize),
		ctTab:    make([]ctSlot, scratchSize),
		cacheGen: 1,
		projGen:  1,
	}
}

// SetIdentitySkip enables or disables the identity short-circuits in
// the multiplication kernels. Skipping is on by default and changes no
// results — the short-circuits return the exact canonical edges the
// plain recursion would — so disabling it is only useful to measure the
// optimisation or to differential-test against the unoptimised kernels.
func (e *Engine) SetIdentitySkip(enabled bool) { e.noIdentitySkip = !enabled }

// IdentitySkipEnabled reports whether the multiplication kernels take
// the identity short-circuits.
func (e *Engine) IdentitySkipEnabled() bool { return !e.noIdentitySkip }

// Stats returns a snapshot of the engine's counters, with the aggregate
// cache fields derived from the per-cache ones.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.CacheHits = s.AddV.Hits + s.AddM.Hits + s.MulMV.Hits + s.MulMM.Hits
	s.CacheLookups = s.AddV.Lookups + s.AddM.Lookups + s.MulMV.Lookups + s.MulMM.Lookups
	return s
}

// ResetStats zeroes all counters (table contents are preserved).
func (e *Engine) ResetStats() { e.stats = Stats{} }

// MemStats returns a snapshot of unique-table and arena occupancy.
func (e *Engine) MemStats() MemStats {
	return MemStats{
		VLive: e.vUnique.live, MLive: e.mUnique.live,
		VCapacity: len(e.vUnique.slots), MCapacity: len(e.mUnique.slots),
		VTombstones: e.vUnique.dead, MTombstones: e.mUnique.dead,
		VFree: e.vArena.nfree, MFree: e.mArena.nfree,
		VChunks: len(e.vArena.chunks), MChunks: len(e.mArena.chunks),
	}
}

// VNodeCount returns the number of live vector nodes in the unique table.
func (e *Engine) VNodeCount() int { return e.vUnique.live }

// MNodeCount returns the number of live matrix nodes in the unique table.
func (e *Engine) MNodeCount() int { return e.mUnique.live }

// VLevelCount returns the number of live vector nodes at DD level l —
// the per-level unique-table index maintained by insert and sweep.
// Note the count covers everything live in the table, including
// garbage not yet collected; sifting heuristics that want per-diagram
// occupancy should GC first or walk the diagram.
func (e *Engine) VLevelCount(l int) int { return e.vUnique.levelCount(l) }

// MLevelCount returns the number of live matrix nodes at DD level l.
func (e *Engine) MLevelCount(l int) int { return e.mUnique.levelCount(l) }

// NoteVectorSize records s as an observed state-vector DD size for the
// peak statistics.
func (e *Engine) NoteVectorSize(s int) {
	if s > e.stats.PeakVectorSize {
		e.stats.PeakVectorSize = s
	}
}

// NoteMatrixSize records s as an observed operation DD size for the peak
// statistics.
func (e *Engine) NoteMatrixSize(s int) {
	if s > e.stats.PeakMatrixSize {
		e.stats.PeakMatrixSize = s
	}
}

// Weight canonicalises a complex value through the engine's value table.
func (e *Engine) Weight(c complex128) complex128 { return e.weights.Lookup(c) }

// WeightTableSize returns the number of canonical complex representatives.
func (e *Engine) WeightTableSize() int { return e.weights.Size() }

// makeVNode hash-conses a vector node with the given children. The
// normalisation rule divides out the largest-magnitude edge weight
// (ties broken towards the lower index): stored weights then never
// exceed magnitude one, which bounds floating-point error growth —
// normalising by the *first* non-zero weight instead amplifies noise
// whenever that weight is tiny and destroys sharing over long runs.
func (e *Engine) makeVNode(v int32, e0, e1 VEdge) VEdge {
	e0.W = e.weights.Lookup(e0.W)
	e1.W = e.weights.Lookup(e1.W)
	if e0.W == cnum.Zero {
		e0.N = vTerminal
	}
	if e1.W == cnum.Zero {
		e1.N = vTerminal
	}
	if e0.W == cnum.Zero && e1.W == cnum.Zero {
		return VZero()
	}
	top := e0.W
	if magGreater(e1.W, top) {
		top = e1.W
	}
	e0.W = e.normDiv(e0.W, top)
	e1.W = e.normDiv(e1.W, top)
	h := hashVKey(v, e0, e1)
	hit, slot := e.vUnique.find(h, v, e0, e1)
	if hit != nil {
		return VEdge{W: top, N: hit}
	}
	// The miss slot stays valid: nothing below touches the table until
	// insertAt.
	n := e.vArena.alloc()
	n.E = [2]VEdge{e0, e1}
	n.V = v
	n.id = e.nextID
	n.hash = h
	e.nextID++
	e.stats.NodesCreated++
	e.vUnique.insertAt(slot, n)
	if e.flipCountdown != 0 {
		if e.flipCountdown--; e.flipCountdown == 0 {
			e.flipV(n)
		}
	}
	if e.vUnique.live > e.stats.PeakVNodes {
		e.stats.PeakVNodes = e.vUnique.live
	}
	if e.obs != nil {
		e.obs.ObserveNode(false, e.vUnique.live+e.mUnique.live)
	}
	return VEdge{W: top, N: n}
}

// makeMNode hash-conses a matrix node; see makeVNode.
func (e *Engine) makeMNode(v int32, es [4]MEdge) MEdge {
	for i := range es {
		es[i].W = e.weights.Lookup(es[i].W)
		if es[i].W == cnum.Zero {
			es[i].N = mTerminal
		}
	}
	best := -1
	for i := range es {
		if es[i].W == cnum.Zero {
			continue
		}
		if best < 0 || magGreater(es[i].W, es[best].W) {
			best = i
		}
	}
	if best < 0 {
		return MZero()
	}
	top := es[best].W
	for i := range es {
		es[i].W = e.normDiv(es[i].W, top)
	}
	h := hashMKey(v, &es)
	hit, slot := e.mUnique.find(h, v, &es)
	if hit != nil {
		return MEdge{W: top, N: hit}
	}
	n := e.mArena.alloc()
	n.E = es
	n.V = v
	n.id = e.nextID
	n.hash = h
	// Normalisation makes the identity shape canonical — zero
	// off-diagonals, both diagonal weights exactly one, shared diagonal
	// child — so one O(1) comparison against the (already stamped) child
	// classifies the fresh node. Derived, hence excluded from the
	// unique-table key and hash; Audit's "identity-bit" check recomputes
	// it.
	n.isIdentity = es[1].W == cnum.Zero && es[2].W == cnum.Zero &&
		es[0].W == cnum.One && es[3].W == cnum.One &&
		es[0].N == es[3].N &&
		(es[0].N == mTerminal || es[0].N.isIdentity)
	e.nextID++
	e.stats.NodesCreated++
	e.mUnique.insertAt(slot, n)
	if e.flipCountdown != 0 {
		if e.flipCountdown--; e.flipCountdown == 0 {
			e.flipM(n)
		}
	}
	if e.mUnique.live > e.stats.PeakMNodes {
		e.stats.PeakMNodes = e.mUnique.live
	}
	if e.obs != nil {
		e.obs.ObserveNode(true, e.vUnique.live+e.mUnique.live)
	}
	return MEdge{W: top, N: n}
}

// Identity returns the matrix DD of the identity on qubits 0..n-1.
func (e *Engine) Identity(n int) MEdge {
	if n < 0 {
		panic(fmt.Sprintf("dd: Identity(%d): negative qubit count", n))
	}
	for len(e.identity) <= n {
		k := len(e.identity)
		if k == 0 {
			e.identity = append(e.identity, MOne())
			continue
		}
		below := e.identity[k-1]
		e.identity = append(e.identity, e.makeMNode(int32(k-1), [4]MEdge{below, MZero(), MZero(), below}))
	}
	return e.identity[n]
}

// magRelTol is the relative squared-magnitude margin under which two
// edge weights count as equally large during normalisation; the tie
// then goes to the lower edge index so that nodes equal up to noise —
// or up to a common scalar factor — normalise identically.
const magRelTol = 1e-6

// magGreater reports whether |a| exceeds |b| by more than the relative
// tie margin.
func magGreater(a, b complex128) bool {
	return cnum.Abs2(a) > cnum.Abs2(b)*(1+magRelTol)
}

// normDiv divides an edge weight by the normalisation factor and
// canonicalises, mapping the selected edge to exactly one.
func (e *Engine) normDiv(w, top complex128) complex128 {
	if w == cnum.Zero {
		return cnum.Zero
	}
	if w == top {
		return cnum.One
	}
	return e.weights.Lookup(w / top)
}

// hashVKey hashes a normalised vector-node key (full 32 bits; callers
// mask). Stored into the node so probes and rehashes never recompute it.
func hashVKey(v int32, e0, e1 VEdge) uint32 {
	h := uint32(v)*0x9e3779b1 ^ e0.N.id*0x85ebca77 ^ e1.N.id*0xc2b2ae3d
	h = foldW(h, e0.W)
	h = foldW(h, e1.W)
	return finish(h)
}

// hashMKey hashes a normalised matrix-node key.
func hashMKey(v int32, es *[4]MEdge) uint32 {
	h := uint32(v) * 0x9e3779b1
	for i := range es {
		h = (h ^ es[i].N.id) * 0x85ebca77
		h = foldW(h, es[i].W)
	}
	return finish(h)
}

// foldW folds a complex weight's bit pattern into a hash. The shift
// after each multiply matters: XOR-then-multiply alone is linear in the
// top bit ((x^1<<31)*K == x*K ^ 1<<31 for odd K), so two weights whose
// folded words differ only in bit 31 — e.g. +1 and -1 — could be
// swapped between edge positions without changing the final hash. The
// avalanche shift spreads bit 31 downward so position swaps of
// sign-flipped weights always perturb the hash.
func foldW(h uint32, w complex128) uint32 {
	rb := math.Float64bits(real(w))
	ib := math.Float64bits(imag(w))
	h = (h ^ uint32(rb) ^ uint32(rb>>32)) * 0x9e3779b1
	h ^= h >> 15
	h = (h ^ uint32(ib) ^ uint32(ib>>32)) * 0x85ebca77
	h ^= h >> 13
	return h
}

// finish is a murmur-style avalanche of the accumulated hash.
func finish(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}

// mix hashes two node ids into an unmasked cache hash.
func mix(a, b uint32) uint32 {
	h := a*0x9e3779b1 ^ b*0x85ebca77
	h ^= h >> 15
	h *= 0xc2b2ae3d
	h ^= h >> 13
	return h
}

// mixW folds a complex weight into a cache hash.
func mixW(h uint32, w complex128) uint32 {
	rb := math.Float64bits(real(w))
	ib := math.Float64bits(imag(w))
	h ^= uint32(rb) ^ uint32(rb>>32)*0x9e3779b1
	h ^= uint32(ib)*0x85ebca77 ^ uint32(ib>>32)
	h ^= h >> 16
	return h
}

// clearCaches invalidates all compute caches and cross-call scratch
// memos in O(1) by advancing the generation stamp (after GC, node
// identities may be reused so stale entries must not survive). Only on
// the rare counter wrap-around are the tables physically wiped.
func (e *Engine) clearCaches() {
	if e.cacheGen == math.MaxUint32 {
		e.addVTab = make([]addVSlot, cacheSize)
		e.addMTab = make([]addMSlot, cacheSize)
		e.mulMVTab = make([]mulMVSlot, cacheSize)
		e.mulMMTab = make([]mulMMSlot, cacheSize)
		e.ipTab = make([]ipSlot, scratchSize)
		e.trTab = make([]trSlot, scratchSize)
		e.ctTab = make([]ctSlot, scratchSize)
		e.cacheGen = 0
	}
	e.cacheGen++
	if e.obs != nil {
		e.obs.ObserveCacheClear()
	}
}

// bumpProjGen starts a fresh projection memo generation (per-Project
// call; see Engine.Project).
func (e *Engine) bumpProjGen() {
	if e.projGen == math.MaxUint32 {
		e.projTab = make([]projSlot, scratchSize)
		e.projGen = 0
	}
	e.projGen++
}
