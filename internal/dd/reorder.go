package dd

import "repro/internal/cnum"

// Dynamic variable reordering: an adjacent level-swap primitive plus
// classic sifting built on top of it.
//
// The engine's diagrams keep DD variables contiguous (a node at level
// l has children at level l-1; see Audit's "level" check), so a
// reorder never relabels variables inside the diagram. Instead the
// *meaning* of a level changes: callers track a permutation
// order[level] = circuit qubit, and a swap of levels l and l+1
// exchanges order[l] and order[l+1] while rewriting the diagram so the
// represented circuit-indexed function is unchanged.
//
// The swap is a memoized functional rebuild through makeVNode/makeMNode
// rather than an in-place mutation of the two levels' unique-table
// entries: with edge-weight normalisation, swapping a node's two levels
// can change the canonical top weight's phase, which would cascade
// weight updates through every ancestor. Rebuilding through the
// hash-consing constructors keeps every produced node canonical by
// construction, so Engine.Audit stays clean after every swap. The
// per-level unique-table index (vTable.levels) confines the *work* to
// the affected levels: only nodes at levels ≥ l can change, nodes at
// the swap level are rebuilt pairwise, and everything below is shared
// untouched.

// vSub returns child bit of ed composed with ed's weight, guarding the
// zero edge (whose node is the terminal and has no children).
func vSub(ed VEdge, bit int) VEdge {
	if ed.N == vTerminal {
		return VZero()
	}
	c := ed.N.E[bit]
	return VEdge{W: ed.W * c.W, N: c.N}
}

// mSub returns quadrant (r,c) of ed composed with ed's weight, guarding
// the zero edge.
func mSub(ed MEdge, r, c int) MEdge {
	if ed.N == mTerminal {
		return MZero()
	}
	q := ed.N.E[2*r+c]
	return MEdge{W: ed.W * q.W, N: q.N}
}

// swapVNode rebuilds one level-(l+1) node with levels l and l+1
// exchanged: the result's top bit selects what used to be the child
// bit, and vice versa.
func (e *Engine) swapVNode(n *VNode, l int32) VEdge {
	e0 := e.makeVNode(l, vSub(n.E[0], 0), vSub(n.E[1], 0))
	e1 := e.makeVNode(l, vSub(n.E[0], 1), vSub(n.E[1], 1))
	return e.makeVNode(l+1, e0, e1)
}

// SwapAdjacentV returns v with DD levels l and l+1 exchanged: for
// every index pair differing only in bits l and l+1, the amplitudes at
// (…b_{l+1} b_l…) and (…b_l b_{l+1}…) are swapped. Callers tracking an
// order[level]=qubit permutation swap order[l] and order[l+1]
// alongside. The rebuild goes through makeVNode only, so the result is
// canonical and Audit-clean; nodes strictly below level l are shared
// with the input. Panics via the abort layer when a deadline, budget
// or injected fault trips — the swap is a natural probe point for
// aborting a long sifting run.
func (e *Engine) SwapAdjacentV(v VEdge, l int) VEdge {
	if l < 0 || l+1 > v.Var() {
		panic("dd: SwapAdjacentV level out of range")
	}
	if e.armed {
		e.abortCheck()
	}
	e.stats.ReorderSwaps++
	memo := make(map[*VNode]VEdge)
	r := e.swapVRec(v.N, int32(l), memo)
	return VEdge{W: e.weights.Lookup(v.W * r.W), N: r.N}
}

// swapVRec rebuilds the ancestors of the swap level. Nodes at levels
// below l are untouched and returned as unit edges.
func (e *Engine) swapVRec(n *VNode, l int32, memo map[*VNode]VEdge) VEdge {
	if n == vTerminal || n.V < l {
		return VEdge{W: cnum.One, N: n}
	}
	if r, ok := memo[n]; ok {
		return r
	}
	var r VEdge
	if n.V == l+1 {
		r = e.swapVNode(n, l)
	} else {
		r0 := e.swapVEdge(n.E[0], l, memo)
		r1 := e.swapVEdge(n.E[1], l, memo)
		r = e.makeVNode(n.V, r0, r1)
	}
	memo[n] = r
	return r
}

func (e *Engine) swapVEdge(ed VEdge, l int32, memo map[*VNode]VEdge) VEdge {
	if ed.N == vTerminal {
		return ed // zero edge (or a diagram ending above l — impossible without skips)
	}
	r := e.swapVRec(ed.N, l, memo)
	return VEdge{W: ed.W * r.W, N: r.N}
}

// swapMNode rebuilds one level-(l+1) matrix node with levels l and l+1
// exchanged; rows and columns permute independently.
func (e *Engine) swapMNode(n *MNode, l int32) MEdge {
	var outer [4]MEdge
	for rl := 0; rl < 2; rl++ {
		for cl := 0; cl < 2; cl++ {
			var inner [4]MEdge
			for rh := 0; rh < 2; rh++ {
				for ch := 0; ch < 2; ch++ {
					inner[2*rh+ch] = mSub(n.E[2*rh+ch], rl, cl)
				}
			}
			outer[2*rl+cl] = e.makeMNode(l, inner)
		}
	}
	return e.makeMNode(l+1, outer)
}

// SwapAdjacentM is SwapAdjacentV for matrix diagrams: levels l and l+1
// exchange in both the row and the column index.
func (e *Engine) SwapAdjacentM(m MEdge, l int) MEdge {
	if l < 0 || l+1 > m.Var() {
		panic("dd: SwapAdjacentM level out of range")
	}
	if e.armed {
		e.abortCheck()
	}
	e.stats.ReorderSwaps++
	memo := make(map[*MNode]MEdge)
	r := e.swapMRec(m.N, int32(l), memo)
	return MEdge{W: e.weights.Lookup(m.W * r.W), N: r.N}
}

func (e *Engine) swapMRec(n *MNode, l int32, memo map[*MNode]MEdge) MEdge {
	if n == mTerminal || n.V < l {
		return MEdge{W: cnum.One, N: n}
	}
	if r, ok := memo[n]; ok {
		return r
	}
	var r MEdge
	if n.V == l+1 {
		r = e.swapMNode(n, l)
	} else {
		var es [4]MEdge
		for i := range n.E {
			if n.E[i].N == mTerminal {
				es[i] = n.E[i]
				continue
			}
			sub := e.swapMRec(n.E[i].N, l, memo)
			es[i] = MEdge{W: n.E[i].W * sub.W, N: sub.N}
		}
		r = e.makeMNode(n.V, es)
	}
	memo[n] = r
	return r
}

// IdentityOrder returns the identity permutation [0, 1, …, n-1] —
// level l holds qubit l, the order every diagram starts in.
func IdentityOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

// IsPermutation reports whether order is a permutation of [0, len).
func IsPermutation(order []int) bool {
	seen := make([]bool, len(order))
	for _, q := range order {
		if q < 0 || q >= len(order) || seen[q] {
			return false
		}
		seen[q] = true
	}
	return true
}

// IndexToDD maps a circuit basis index to the diagram index under
// order (order[level] = circuit qubit; nil means identity): bit l of
// the result is bit order[l] of i.
func IndexToDD(order []int, i uint64) uint64 {
	if order == nil {
		return i
	}
	var j uint64
	for l, q := range order {
		j |= (i >> uint(q) & 1) << uint(l)
	}
	return j
}

// IndexFromDD maps a diagram basis index back to the circuit index
// under order — the inverse of IndexToDD.
func IndexFromDD(order []int, j uint64) uint64 {
	if order == nil {
		return j
	}
	var i uint64
	for l, q := range order {
		i |= (j >> uint(l) & 1) << uint(q)
	}
	return i
}

// VectorInOrder expands v into circuit-ordered amplitudes under order
// (nil means identity): out[i] is the amplitude of circuit basis state
// i regardless of how levels are permuted. Same size limits as
// VEdge.ToVector.
func VectorInOrder(v VEdge, order []int) []complex128 {
	amps := v.ToVector()
	if order == nil {
		return amps
	}
	out := make([]complex128, len(amps))
	for i := range out {
		out[i] = amps[IndexToDD(order, uint64(i))]
	}
	return out
}

// SiftResult summarises one SiftV invocation.
type SiftResult struct {
	Swaps  int // adjacent level swaps performed (incl. restore moves)
	Passes int // variables sifted
	Before int // node count going in
	After  int // node count coming out
}

// SiftV minimises the size of v by classic variable sifting: each
// variable, most-populated level first, is bubbled through every
// position via SwapAdjacentV and parked where the total diagram is
// smallest. order (order[level] = qubit, len = v.Qubits()) is mutated
// in place alongside the swaps; on a panic (cooperative abort mid-
// sift) it is left consistent with the returned-so-far diagram, so
// callers that must survive aborts should pass a scratch copy and
// commit both results only on normal return.
//
// maxSwaps bounds the work (≤ 0 means unlimited); the budget may be
// overshot by up to one restore walk, which never exceeds the number
// of levels. Sifting allocates (per-swap memo maps) and leaves
// intermediate diagrams in the unique tables; callers should garbage-
// collect afterwards.
func (e *Engine) SiftV(v VEdge, order []int, maxSwaps int) (VEdge, SiftResult) {
	n := v.Qubits()
	res := SiftResult{Before: e.SizeV(v)}
	res.After = res.Before
	if n < 2 || v.IsZero() {
		return v, res
	}
	if len(order) != n {
		panic("dd: SiftV order length mismatch")
	}
	if maxSwaps <= 0 {
		maxSwaps = int(^uint(0) >> 1)
	}

	// Occupancy per level of this diagram (not the whole table — the
	// table may hold garbage); most-populated variables move first,
	// where the leverage is.
	occ := make([]int, n)
	e.bumpEpoch()
	e.countLevels(v.N, occ)

	pos := make([]int, n) // pos[qubit] = level
	for l, q := range order {
		pos[q] = l
	}
	vars := make([]int, n)
	for i := range vars {
		vars[i] = order[i]
	}
	// Sort variables by descending occupancy of their current level,
	// ties towards the lower qubit index (deterministic).
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := vars[j-1], vars[j]
			oa, ob := occ[pos[a]], occ[pos[b]]
			if oa > ob || (oa == ob && a < b) {
				break
			}
			vars[j-1], vars[j] = b, a
		}
	}

	cur := v
	size := res.Before
	// step swaps levels l and l+1 of cur and keeps order/pos in sync.
	step := func(l int) {
		cur = e.SwapAdjacentV(cur, l)
		a, b := order[l], order[l+1]
		order[l], order[l+1] = b, a
		pos[a], pos[b] = l+1, l
		res.Swaps++
	}
	for _, q := range vars {
		if res.Swaps >= maxSwaps {
			break
		}
		res.Passes++
		e.stats.SiftPasses++
		p := pos[q]
		bestSize, bestPos := size, p
		// Walk towards the nearer end first to halve the travel.
		down := p <= n-1-p
		for dir := 0; dir < 2; dir++ {
			for (down && pos[q] > 0) || (!down && pos[q] < n-1) {
				if down {
					step(pos[q] - 1)
				} else {
					step(pos[q])
				}
				size = e.SizeV(cur)
				if size < bestSize {
					bestSize, bestPos = size, pos[q]
				}
				if res.Swaps >= maxSwaps {
					break
				}
			}
			down = !down
			if res.Swaps >= maxSwaps {
				break
			}
		}
		// Restore the best position seen (budget overshoot ≤ n-1).
		for pos[q] > bestPos {
			step(pos[q] - 1)
		}
		for pos[q] < bestPos {
			step(pos[q])
		}
		size = e.SizeV(cur)
	}
	res.After = size
	return cur, res
}

// countLevels tallies the distinct nodes of a diagram per level using
// the engine's traversal epoch (caller bumps it).
func (e *Engine) countLevels(n *VNode, occ []int) {
	if n == vTerminal || n.mark == e.epoch {
		return
	}
	n.mark = e.epoch
	occ[n.V]++
	e.countLevels(n.E[0].N, occ)
	e.countLevels(n.E[1].N, occ)
}
