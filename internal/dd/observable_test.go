package dd

import (
	"math"
	"math/rand"
	"testing"
)

func TestParsePauliString(t *testing.T) {
	if _, err := ParsePauliString("ZIX", 3); err != nil {
		t.Fatal(err)
	}
	if p, err := ParsePauliString("zix", 3); err != nil || p != "ZIX" {
		t.Fatalf("lower-case parse: %v %v", p, err)
	}
	if _, err := ParsePauliString("ZZ", 3); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := ParsePauliString("ZQX", 3); err == nil {
		t.Fatal("bad letter accepted")
	}
}

func TestExpectationComputationalStates(t *testing.T) {
	e := New()
	// <0|Z|0> = 1, <1|Z|1> = -1, <0|X|0> = 0.
	v0 := e.ZeroState(1)
	v1 := e.BasisState(1, 1)
	cases := []struct {
		v    VEdge
		p    PauliString
		want float64
	}{
		{v0, "Z", 1}, {v1, "Z", -1}, {v0, "X", 0}, {v1, "X", 0},
		{v0, "I", 1}, {v0, "Y", 0},
	}
	for _, c := range cases {
		got, err := e.Expectation(c.v, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("<%s> = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestExpectationBellCorrelations(t *testing.T) {
	e := New()
	bell := e.MulVec(e.GateDD(gX, 2, 1, []Control{Pos(0)}),
		e.MulVec(e.GateDD(gH, 2, 0, nil), e.ZeroState(2)))
	// The Bell state has <ZZ> = <XX> = 1, <ZI> = <IZ> = 0, <YY> = -1.
	cases := map[PauliString]float64{
		"ZZ": 1, "XX": 1, "YY": -1, "ZI": 0, "IZ": 0, "XI": 0,
	}
	for p, want := range cases {
		got, err := e.Expectation(bell, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Bell <%s> = %v, want %v", p, got, want)
		}
	}
}

func TestExpectationPlusState(t *testing.T) {
	e := New()
	plus := e.MulVec(e.GateDD(gH, 1, 0, nil), e.ZeroState(1))
	got, err := e.Expectation(plus, "X")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("<+|X|+> = %v, want 1", got)
	}
}

func TestExpectationErrors(t *testing.T) {
	e := New()
	v := e.ZeroState(2)
	if _, err := e.Expectation(v, "Z"); err == nil {
		t.Fatal("span mismatch accepted")
	}
	if _, err := e.Expectation(v, "ZQ"); err == nil {
		t.Fatal("bad letter accepted")
	}
}

func TestObservableDDIsHermitianAndUnitary(t *testing.T) {
	e := New()
	for _, p := range []PauliString{"X", "ZY", "XIZ", "YYXI"} {
		m := e.ObservableDD(p)
		adj := e.ConjTranspose(m)
		if adj.N != m.N || !approxC(adj.W, m.W) {
			t.Fatalf("%s not Hermitian", p)
		}
		sq := e.MulMat(m, m)
		if sq.N != e.Identity(len(p)).N || !approxC(sq.W, 1) {
			t.Fatalf("%s² != I", p)
		}
	}
}

func TestLinearXEB(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	// A random 8-qubit state sampled from its own distribution has
	// XEB ≈ 2^n Σ p² − 1 > 0; uniform random bitstrings give ≈ 0.
	v := e.FromVector(randState(rng, 8))
	var ideal, uniform []uint64
	for i := 0; i < 4000; i++ {
		ideal = append(ideal, v.SampleAll(rng))
		uniform = append(uniform, uint64(rng.Intn(256)))
	}
	xebIdeal := LinearXEB(v, ideal)
	xebUniform := LinearXEB(v, uniform)
	if xebIdeal < 0.5 {
		t.Fatalf("XEB of ideal samples %v, want clearly positive", xebIdeal)
	}
	if math.Abs(xebUniform) > 0.3 {
		t.Fatalf("XEB of uniform samples %v, want near 0", xebUniform)
	}
	if LinearXEB(v, nil) != 0 {
		t.Fatal("empty sample XEB should be 0")
	}
}

// For a Porter-Thomas-like random state the expected ideal-sampling XEB
// approaches 1; for a computational basis state sampling itself it is
// 2^n − 1.
func TestLinearXEBBasisState(t *testing.T) {
	e := New()
	v := e.BasisState(4, 9)
	samples := []uint64{9, 9, 9}
	if got := LinearXEB(v, samples); math.Abs(got-15) > 1e-9 {
		t.Fatalf("basis-state XEB = %v, want 15", got)
	}
}
