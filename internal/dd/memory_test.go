package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Tests for the engine memory layer: open-addressing unique tables,
// arena recycling, generation-stamped caches and the GC statistics.

// Property: hash-consing canonicity survives garbage collection and
// arena recycling. Rebuilding a kept diagram reuses every node
// (pointer-identical root, zero creations); rebuilding after dropping
// everything re-creates exactly the original node count from recycled
// storage.
func TestQuickGCCanonicity(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 2
		e := New()
		base := e.Stats().NodesCreated
		v := stateFromSeed(e, seed, n)
		delta := e.Stats().NodesCreated - base
		want := v.ToVector()

		e.GarbageCollect([]VEdge{v}, nil)
		before := e.Stats().NodesCreated
		w := stateFromSeed(e, seed, n)
		if w.N != v.N || e.Stats().NodesCreated != before {
			return false
		}

		// v and w are dead after this collection; only the stored vector
		// may be consulted below.
		e.GarbageCollect(nil, nil)
		before = e.Stats().NodesCreated
		u := stateFromSeed(e, seed, n)
		if e.Stats().NodesCreated-before != delta {
			return false
		}
		got := u.ToVector()
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: abort-anywhere safety. A fault-injected abort (rehearsing
// the deadline / budget / cancellation reasons) at an arbitrary kernel
// probe leaves the engine canonical: after a full collection, re-running
// the same workload creates exactly the NodesCreated delta of a fresh
// engine, rebuilds are pointer-identical, and the amplitudes match an
// engine that never aborted.
func TestQuickAbortCanonicity(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	reasons := []AbortReason{AbortDeadline, AbortBudget, AbortCanceled, AbortInjected}
	workload := func(e *Engine, seed int64, n int) VEdge {
		v := stateFromSeed(e, seed, n)
		g := e.GateDD(randUnitary(rand.New(rand.NewSource(seed+1))), n, int(seed&1), nil)
		w := e.MulVec(g, v)
		return e.Add(v, w)
	}
	f := func(seed int64, nRaw, probeRaw, reasonRaw uint8) bool {
		n := int(nRaw)%4 + 2

		// Reference: probe count and node delta of an abort-free run
		// (armed with a budget it can never hit so probes advance).
		ref := New()
		ref.SetBudget(1 << 30)
		refRoot := workload(ref, seed, n)
		refDelta := ref.Stats().NodesCreated
		total := ref.Probes()
		if total == 0 {
			return true
		}
		probeN := uint64(probeRaw)%total + 1
		reason := reasons[int(reasonRaw)%len(reasons)]

		e := New()
		if !e.InjectAbortAfter(probeN, reason) {
			t.Fatal("fault injection did not arm")
		}
		aborted := func() (ok bool) {
			defer func() {
				if rec := recover(); rec != nil {
					a, is := AsAbort(rec)
					ok = is && a.Reason == reason
				}
			}()
			workload(e, seed, n)
			return false
		}()
		if !aborted {
			return false
		}

		// Everything the aborted run built is garbage; collect it all.
		e.GarbageCollect(nil, nil)
		before := e.Stats().NodesCreated
		got := workload(e, seed, n)
		if e.Stats().NodesCreated-before != refDelta {
			return false
		}
		// Canonicity: an immediate rebuild reuses every node.
		if again := workload(e, seed, n); again.N != got.N {
			return false
		}
		return vecApproxEq(got, refRoot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestUniqueTableChurnFuzz hammers the unique tables with random
// inserts and collections, checking the open-addressing invariants
// (occupancy accounting, growth, tombstone reuse) and that every
// surviving diagram stays canonical and numerically intact.
func TestUniqueTableChurnFuzz(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(99))
	type kept struct {
		root VEdge
		vec  []complex128
	}
	var pool []kept
	grew, sawTombstones := false, false
	baseCap := e.MemStats().VCapacity
	for round := 0; round < 60; round++ {
		for i := 0; i < 3; i++ {
			n := 4 + rng.Intn(5)
			v := e.FromVector(randState(rng, n))
			pool = append(pool, kept{v, v.ToVector()})
		}
		if round%7 == 6 {
			rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
			pool = pool[:len(pool)/2]
			roots := make([]VEdge, len(pool))
			for i, k := range pool {
				roots[i] = k.root
			}
			e.GarbageCollect(roots, nil)
		}
		m := e.MemStats()
		if m.VCapacity > baseCap {
			grew = true
		}
		if m.VTombstones > 0 {
			sawTombstones = true
		}
		if m.VLive != e.VNodeCount() {
			t.Fatalf("round %d: MemStats live %d != VNodeCount %d", round, m.VLive, e.VNodeCount())
		}
		if m.VLive+m.VTombstones > m.VCapacity {
			t.Fatalf("round %d: occupancy %d+%d exceeds capacity %d",
				round, m.VLive, m.VTombstones, m.VCapacity)
		}
		// Canonicity spot check: re-encoding a survivor's vector must land
		// on the identical root node.
		if len(pool) > 0 {
			k := pool[rng.Intn(len(pool))]
			if again := e.FromVector(k.vec); again.N != k.root.N {
				t.Fatalf("round %d: rebuild not canonical after churn", round)
			}
		}
	}
	if !grew {
		t.Fatal("unique table never grew past its initial capacity")
	}
	if !sawTombstones {
		t.Fatal("collections never left tombstones to exercise reuse")
	}
	for i, k := range pool {
		got := k.root.ToVector()
		for j := range k.vec {
			if cmplx.Abs(got[j]-k.vec[j]) > 1e-9 {
				t.Fatalf("survivor %d corrupted at amplitude %d", i, j)
			}
		}
	}
}

// TestPerCacheCounters checks that each of the four compute caches
// counts lookups and hits separately and that the aggregate counters
// are exactly their sum.
func TestPerCacheCounters(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(5))
	a := e.FromVector(randState(rng, 4))
	b := e.FromVector(randState(rng, 4))
	g := e.GateDD(randUnitary(rng), 4, 1, nil)
	h := e.GateDD(randUnitary(rng), 4, 2, nil)
	// Each pair of identical calls guarantees at least one hit in the
	// corresponding cache (the second call replays the top-level entry).
	_, _ = e.Add(a, b), e.Add(a, b)
	_, _ = e.AddM(g, h), e.AddM(g, h)
	_, _ = e.MulVec(g, a), e.MulVec(g, a)
	_, _ = e.MulMat(g, h), e.MulMat(g, h)
	s := e.Stats()
	for name, c := range map[string]CacheStats{
		"AddV": s.AddV, "AddM": s.AddM, "MulMV": s.MulMV, "MulMM": s.MulMM,
	} {
		if c.Lookups == 0 {
			t.Errorf("%s cache saw no lookups", name)
		}
		if c.Hits == 0 {
			t.Errorf("%s cache saw no hits", name)
		}
		if c.Hits > c.Lookups {
			t.Errorf("%s cache hits %d exceed lookups %d", name, c.Hits, c.Lookups)
		}
		if r := c.HitRate(); r <= 0 || r > 1 {
			t.Errorf("%s hit rate %v out of range", name, r)
		}
	}
	if want := s.AddV.Lookups + s.AddM.Lookups + s.MulMV.Lookups + s.MulMM.Lookups; s.CacheLookups != want {
		t.Errorf("aggregate lookups %d, want sum of per-cache %d", s.CacheLookups, want)
	}
	if want := s.AddV.Hits + s.AddM.Hits + s.MulMV.Hits + s.MulMM.Hits; s.CacheHits != want {
		t.Errorf("aggregate hits %d, want sum of per-cache %d", s.CacheHits, want)
	}
}

// TestGCStatsAndRecycling checks the collection accounting: recycled
// nodes land on the arena free lists and feed subsequent allocations
// instead of fresh chunks.
func TestGCStatsAndRecycling(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(11))
	keep := e.FromVector(randState(rng, 8))
	for i := 0; i < 10; i++ {
		e.FromVector(randState(rng, 8))
	}
	e.GarbageCollect([]VEdge{keep}, nil)
	s := e.Stats()
	if s.GCs != 1 {
		t.Fatalf("GCs = %d, want 1", s.GCs)
	}
	if s.NodesRecycled == 0 {
		t.Fatal("collection recycled no nodes")
	}
	if s.GCMaxPause <= 0 || s.GCPause < s.GCMaxPause {
		t.Fatalf("pause accounting inconsistent: total %v, max %v", s.GCPause, s.GCMaxPause)
	}
	m := e.MemStats()
	if m.VFree == 0 {
		t.Fatal("free list empty after collection")
	}
	e.FromVector(randState(rng, 8))
	m2 := e.MemStats()
	if m2.VChunks != m.VChunks {
		t.Fatalf("allocation grew a chunk (%d -> %d) despite %d free nodes",
			m.VChunks, m2.VChunks, m.VFree)
	}
	if m2.VFree >= m.VFree {
		t.Fatalf("allocation did not consume the free list (%d -> %d)", m.VFree, m2.VFree)
	}
}

// TestEpochWrapAround forces the traversal epoch to wrap and checks
// that marks are reset everywhere — including free-listed arena nodes —
// so no stale mark can alias the fresh epoch.
func TestEpochWrapAround(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(3))
	keep := e.FromVector(randState(rng, 6))
	for i := 0; i < 4; i++ {
		e.FromVector(randState(rng, 6))
	}
	e.GarbageCollect([]VEdge{keep}, nil) // populate the free lists
	want := e.SizeV(keep)
	vec := keep.ToVector()

	e.epoch = math.MaxUint32 // next bump wraps
	if got := e.SizeV(keep); got != want {
		t.Fatalf("SizeV across epoch wrap = %d, want %d", got, want)
	}
	if e.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", e.epoch)
	}
	for _, c := range e.vArena.chunks {
		for i := range c {
			if c[i].mark > e.epoch {
				t.Fatalf("node mark %d survived the wrap (epoch %d)", c[i].mark, e.epoch)
			}
		}
	}
	for n := e.vArena.free; n != nil; n = n.E[0].N {
		if n.mark != 0 {
			t.Fatalf("free-listed node kept mark %d across the wrap", n.mark)
		}
	}
	// A collection right after the wrap must still see the root as live.
	e.GarbageCollect([]VEdge{keep}, nil)
	got := keep.ToVector()
	for i := range vec {
		if cmplx.Abs(got[i]-vec[i]) > 1e-9 {
			t.Fatal("kept state corrupted by post-wrap collection")
		}
	}
}
