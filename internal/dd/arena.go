package dd

// Chunked node arenas. Nodes are allocated out of fixed-size chunks
// owned by the engine instead of individually on the Go heap, and dead
// nodes are recycled through an intrusive free list (threaded through
// E[0].N, which is meaningless on a dead node). Chunks are never
// returned to the runtime while the engine lives, so node pointers stay
// valid for the engine's lifetime and the Go GC never has to trace or
// sweep individual nodes.
//
// A chunk's backing array is allocated at full capacity up front and
// only ever sliced longer, never re-allocated — appending must not move
// nodes that are already referenced.

// arenaChunkSize is the number of nodes per chunk. 2048 VNodes ≈ 128 KiB
// and 2048 MNodes ≈ 224 KiB: big enough to amortise allocation, small
// enough that tiny engines (tests build thousands of them) stay cheap.
const arenaChunkSize = 2048

type vArena struct {
	chunks [][]VNode
	free   *VNode // free list, linked through E[0].N
	nfree  int
}

type mArena struct {
	chunks [][]MNode
	free   *MNode
	nfree  int
}

// alloc returns a zeroed node, recycling the free list first.
func (a *vArena) alloc() *VNode {
	if n := a.free; n != nil {
		a.free = n.E[0].N
		a.nfree--
		n.E[0].N = nil
		return n
	}
	if len(a.chunks) == 0 || len(a.chunks[len(a.chunks)-1]) == arenaChunkSize {
		a.chunks = append(a.chunks, make([]VNode, 0, arenaChunkSize))
	}
	c := &a.chunks[len(a.chunks)-1]
	*c = (*c)[:len(*c)+1]
	return &(*c)[len(*c)-1]
}

func (m *mArena) alloc() *MNode {
	if n := m.free; n != nil {
		m.free = n.E[0].N
		m.nfree--
		n.E[0].N = nil
		return n
	}
	if len(m.chunks) == 0 || len(m.chunks[len(m.chunks)-1]) == arenaChunkSize {
		m.chunks = append(m.chunks, make([]MNode, 0, arenaChunkSize))
	}
	c := &m.chunks[len(m.chunks)-1]
	*c = (*c)[:len(*c)+1]
	return &(*c)[len(*c)-1]
}

// release puts a dead node on the free list. The mark is zeroed here so
// a recycled node can never carry a stale epoch mark into a fresh
// traversal (epoch values start at 1, so 0 never matches).
func (a *vArena) release(n *VNode) {
	*n = VNode{E: [2]VEdge{{N: a.free}, {}}}
	a.free = n
	a.nfree++
}

func (m *mArena) release(n *MNode) {
	*n = MNode{E: [4]MEdge{{N: m.free}, {}, {}, {}}}
	m.free = n
	m.nfree++
}

// resetMarks zeroes the traversal mark of every node the arena has ever
// handed out — live, dead, or free-listed. Called on the (astronomically
// rare) epoch wrap-around so no node anywhere can alias a fresh epoch.
func (a *vArena) resetMarks() {
	for _, c := range a.chunks {
		for i := range c {
			c[i].mark = 0
		}
	}
}

func (m *mArena) resetMarks() {
	for _, c := range m.chunks {
		for i := range c {
			c[i].mark = 0
		}
	}
}
