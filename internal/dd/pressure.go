package dd

import "fmt"

// Memory-pressure signal. A soft budget armed via SetSoftBudget bands
// live-node occupancy against three watermarks (fractions of the soft
// budget); the banding runs on the same probe the abort layer uses, as
// integer compares only, so the kernel hot path stays allocation-free.
// Unlike the hard budget (SetBudget) the soft budget never aborts —
// crossing a watermark merely raises the level reported by Pressure(),
// which core's governor consults at flush boundaries to walk its
// staged degradation ladder instead of running into the budget cliff.

// PressureLevel classifies live-node occupancy against the soft
// budget's watermarks.
type PressureLevel uint8

const (
	// PressureNone: occupancy below the low watermark (or no soft
	// budget armed).
	PressureNone PressureLevel = iota
	// PressureLow: occupancy at or above the low watermark (~70%) —
	// reclaim garbage early, before the cliff is in sight.
	PressureLow
	// PressureHigh: occupancy at or above the high watermark (~85%) —
	// stop accumulating, shrink the working set.
	PressureHigh
	// PressureCritical: occupancy at or above the critical watermark
	// (~95%) — the next large operation is likely to trip the hard
	// budget.
	PressureCritical
)

// String returns the level's short name.
func (l PressureLevel) String() string {
	switch l {
	case PressureNone:
		return "none"
	case PressureLow:
		return "low"
	case PressureHigh:
		return "high"
	case PressureCritical:
		return "critical"
	}
	return fmt.Sprintf("PressureLevel(%d)", uint8(l))
}

// Watermarks are the occupancy fractions of the soft budget at which
// the pressure level steps up. The zero value selects the defaults.
type Watermarks struct {
	Low      float64
	High     float64
	Critical float64
}

// DefaultWatermarks returns the standard 70/85/95% banding.
func DefaultWatermarks() Watermarks {
	return Watermarks{Low: 0.70, High: 0.85, Critical: 0.95}
}

// Valid reports whether the watermarks are strictly increasing within
// (0, 1]. The zero value is also valid (it means "defaults").
func (w Watermarks) Valid() bool {
	if w == (Watermarks{}) {
		return true
	}
	return w.Low > 0 && w.Low < w.High && w.High < w.Critical && w.Critical <= 1
}

// SetSoftBudget arms the pressure signal against a live-node target.
// The watermark fractions (zero value: DefaultWatermarks) are
// precomputed into absolute node counts so the per-probe banding costs
// integer compares only. maxNodes <= 0 disarms the signal. Invalid
// watermarks fall back to the defaults — callers wanting an error
// should validate via Watermarks.Valid first (core does, with a typed
// ConfigError).
func (e *Engine) SetSoftBudget(maxNodes int, w Watermarks) {
	if maxNodes <= 0 {
		e.softBudget, e.wmLow, e.wmHigh, e.wmCrit = 0, 0, 0, 0
		e.rearm()
		return
	}
	if w == (Watermarks{}) || !w.Valid() {
		w = DefaultWatermarks()
	}
	e.softBudget = maxNodes
	e.wmLow = wmNodes(w.Low, maxNodes)
	e.wmHigh = wmNodes(w.High, maxNodes)
	e.wmCrit = wmNodes(w.Critical, maxNodes)
	e.rearm()
}

// wmNodes converts a watermark fraction to an absolute threshold,
// clamped to at least one node so an armed signal can always fire.
func wmNodes(frac float64, budget int) int {
	n := int(frac * float64(budget))
	if n < 1 {
		n = 1
	}
	return n
}

// SoftBudget returns the armed soft budget (0 when disarmed).
func (e *Engine) SoftBudget() int { return e.softBudget }

// PressureInfo is an O(1) snapshot of the memory-pressure signal.
type PressureInfo struct {
	// Level is the occupancy band (the chaos override from
	// InjectPressure is folded in).
	Level PressureLevel
	// Live is the combined live-node occupancy of both unique tables —
	// the quantity banded against the watermarks.
	Live int
	// Budget is the armed soft budget (0 when disarmed).
	Budget int
	// Occupancy is Live/Budget (0 when disarmed). May exceed 1.
	Occupancy float64
	// ReclaimRatio is freed/live-before of the most recent
	// GarbageCollect — how effective collection still is. 0 before the
	// first collection; a ratio near 0 after one means the live set
	// itself is what fills the budget and further GC cannot help.
	ReclaimRatio float64
}

// Pressure snapshots the signal. O(1): the occupancy is two field
// reads and the reclaim ratio was recorded by the last collection.
func (e *Engine) Pressure() PressureInfo {
	live := e.vUnique.live + e.mUnique.live
	info := PressureInfo{Live: live, Budget: e.softBudget}
	if e.softBudget > 0 {
		info.Occupancy = float64(live) / float64(e.softBudget)
		switch {
		case live >= e.wmCrit:
			info.Level = PressureCritical
		case live >= e.wmHigh:
			info.Level = PressureHigh
		case live >= e.wmLow:
			info.Level = PressureLow
		}
	}
	if e.injectLevel > info.Level {
		info.Level = e.injectLevel
	}
	if e.lastGCLive > 0 {
		info.ReclaimRatio = float64(e.lastGCFreed) / float64(e.lastGCLive)
	}
	return info
}

// InjectPressure overrides the reported pressure level for chaos
// tests: Pressure() returns at least the injected level until it is
// cleared with PressureNone. Because an injected level never subsides,
// one governor look walks every ladder rung the level unlocks, making
// each rung deterministically forceable in CI. Gated like the other
// fault hooks (ddchaos build tag or DD_CHAOS=1); reports whether it
// armed.
func (e *Engine) InjectPressure(l PressureLevel) bool {
	if !chaosEnabled() {
		return false
	}
	e.injectLevel = l
	return true
}
