package dd

import (
	"fmt"
	"sort"
)

// Control describes a control qubit of a gate. A positive control
// activates the gate when the qubit is |1>, a negative control when it
// is |0> (negative controls let oracles such as Grover's be expressed
// without basis-flipping X gates).
type Control struct {
	Qubit    int
	Negative bool
}

// ctlKind classifies a qubit's role in the gate being built (see
// Engine.ctlBuf).
type ctlKind uint8

const (
	ctlNone ctlKind = iota
	ctlPos
	ctlNeg
)

// Pos is shorthand for a positive control on qubit q.
func Pos(q int) Control { return Control{Qubit: q} }

// Neg is shorthand for a negative control on qubit q.
func Neg(q int) Control { return Control{Qubit: q, Negative: true} }

// GateDD builds the matrix DD of a single-qubit gate u applied to
// `target` of an n-qubit register, controlled by the given (possibly
// empty) controls. The construction is the direct bottom-up sweep of
// ref [25] of the paper: gate DDs come out linear in n, never via
// explicit Kronecker products of dense matrices.
//
// u is indexed u[row][col].
func (e *Engine) GateDD(u [2][2]complex128, n, target int, controls []Control) MEdge {
	if target < 0 || target >= n {
		panic(fmt.Sprintf("dd: GateDD: target %d out of range for %d qubits", target, n))
	}
	// Per-qubit control kind, in an engine-owned scratch buffer — GateDD
	// runs once per gate, and a map here costs an allocation plus a
	// hashed lookup per level.
	if cap(e.ctlBuf) < n {
		e.ctlBuf = make([]ctlKind, n)
	}
	ctl := e.ctlBuf[:n]
	for i := range ctl {
		ctl[i] = ctlNone
	}
	for _, c := range controls {
		if c.Qubit < 0 || c.Qubit >= n {
			panic(fmt.Sprintf("dd: GateDD: control %d out of range for %d qubits", c.Qubit, n))
		}
		if c.Qubit == target {
			panic(fmt.Sprintf("dd: GateDD: qubit %d is both control and target", c.Qubit))
		}
		if ctl[c.Qubit] != ctlNone {
			panic(fmt.Sprintf("dd: GateDD: duplicate control on qubit %d", c.Qubit))
		}
		if c.Negative {
			ctl[c.Qubit] = ctlNeg
		} else {
			ctl[c.Qubit] = ctlPos
		}
	}

	// em[2*row+col] tracks, for each entry of the target-level 2x2 block,
	// the sub-diagram on the qubits processed so far (all below target).
	var em [4]MEdge
	for row := 0; row < 2; row++ {
		for col := 0; col < 2; col++ {
			w := e.weights.Lookup(u[row][col])
			if w == 0 {
				em[2*row+col] = MZero()
			} else {
				em[2*row+col] = MEdge{W: w, N: mTerminal}
			}
		}
	}

	for z := 0; z < target; z++ {
		isCtl, neg := ctl[z] != ctlNone, ctl[z] == ctlNeg
		for i := range em {
			diagonal := i == 0 || i == 3
			switch {
			case !isCtl:
				em[i] = e.makeMNode(int32(z), [4]MEdge{em[i], MZero(), MZero(), em[i]})
			case diagonal:
				// When the control is inactive the whole operation is the
				// identity, whose target-diagonal blocks are identities on
				// the lower qubits.
				id := e.Identity(z)
				if neg {
					em[i] = e.makeMNode(int32(z), [4]MEdge{em[i], MZero(), MZero(), id})
				} else {
					em[i] = e.makeMNode(int32(z), [4]MEdge{id, MZero(), MZero(), em[i]})
				}
			default:
				// Off-diagonal target blocks of the identity are zero.
				if neg {
					em[i] = e.makeMNode(int32(z), [4]MEdge{em[i], MZero(), MZero(), MZero()})
				} else {
					em[i] = e.makeMNode(int32(z), [4]MEdge{MZero(), MZero(), MZero(), em[i]})
				}
			}
		}
	}

	f := e.makeMNode(int32(target), em)

	for z := target + 1; z < n; z++ {
		isCtl, neg := ctl[z] != ctlNone, ctl[z] == ctlNeg
		switch {
		case !isCtl:
			f = e.makeMNode(int32(z), [4]MEdge{f, MZero(), MZero(), f})
		case neg:
			f = e.makeMNode(int32(z), [4]MEdge{f, MZero(), MZero(), e.Identity(z)})
		default:
			f = e.makeMNode(int32(z), [4]MEdge{e.Identity(z), MZero(), MZero(), f})
		}
	}
	return f
}

// SwapDD builds the matrix DD exchanging qubits a and b of an n-qubit
// register, composed from three CX gates.
func (e *Engine) SwapDD(n, a, b int) MEdge {
	if a == b {
		return e.Identity(n)
	}
	x := [2][2]complex128{{0, 1}, {1, 0}}
	cx1 := e.GateDD(x, n, b, []Control{Pos(a)})
	cx2 := e.GateDD(x, n, a, []Control{Pos(b)})
	return e.MulMat(cx1, e.MulMat(cx2, cx1))
}

// FromPermutation builds the matrix DD of the basis-state permutation
// perm on n qubits: the unitary with entries M[perm(x)][x] = 1. This is
// the DD-construct primitive of Section IV-B — a Boolean oracle is
// turned into a DD directly rather than through elementary gates.
//
// perm must be a bijection on [0, 2^n); this is validated.
func (e *Engine) FromPermutation(n int, perm func(uint64) uint64) MEdge {
	if n < 0 || n > 24 {
		panic(fmt.Sprintf("dd: FromPermutation: qubit count %d out of supported range", n))
	}
	size := uint64(1) << uint(n)
	images := make([]uint64, size)
	seen := make(map[uint64]struct{}, size)
	for x := uint64(0); x < size; x++ {
		y := perm(x)
		if y >= size {
			panic(fmt.Sprintf("dd: FromPermutation: perm(%d) = %d out of range", x, y))
		}
		if _, dup := seen[y]; dup {
			panic(fmt.Sprintf("dd: FromPermutation: perm is not injective (image %d repeated)", y))
		}
		seen[y] = struct{}{}
		images[x] = y
	}
	// Balanced divide-and-conquer over column ranges: each leaf is the
	// single-entry matrix |perm(x)><x|, combined pairwise with AddM so
	// intermediate diagrams stay small and shared.
	var build func(lo, hi uint64) MEdge
	build = func(lo, hi uint64) MEdge {
		if hi-lo == 1 {
			return e.singleEntry(n, images[lo], lo)
		}
		mid := lo + (hi-lo)/2
		return e.AddM(build(lo, mid), build(mid, hi))
	}
	return build(0, size)
}

// singleEntry builds the matrix DD with a single 1 at (row, col).
func (e *Engine) singleEntry(n int, row, col uint64) MEdge {
	m := MOne()
	for q := 0; q < n; q++ {
		idx := 2*int(row>>uint(q)&1) + int(col>>uint(q)&1)
		var es [4]MEdge
		for i := range es {
			es[i] = MZero()
		}
		es[idx] = m
		m = e.makeMNode(int32(q), es)
	}
	return m
}

// FromDiagonal builds the diagonal matrix DD with entries phase(x) on n
// qubits — the natural representation of phase oracles. The callback is
// invoked once per basis state, so the construction is Θ(2^n); intended
// for oracle sizes up to ~20 qubits.
func (e *Engine) FromDiagonal(n int, phase func(uint64) complex128) MEdge {
	if n < 0 || n > 24 {
		panic(fmt.Sprintf("dd: FromDiagonal: qubit count %d out of supported range", n))
	}
	var build func(level int, prefix uint64) MEdge
	build = func(level int, prefix uint64) MEdge {
		if level == 0 {
			w := e.weights.Lookup(phase(prefix))
			if w == 0 {
				return MZero()
			}
			return MEdge{W: w, N: mTerminal}
		}
		lo := build(level-1, prefix)
		hi := build(level-1, prefix|1<<uint(level-1))
		return e.makeMNode(int32(level-1), [4]MEdge{lo, MZero(), MZero(), hi})
	}
	return build(n, 0)
}

// ControlledOp wraps an existing k-qubit operation DD (acting on qubits
// 0..k-1) with one additional control on qubit k (the next level up).
// When the control is inactive, the identity applies.
func (e *Engine) ControlledOp(op MEdge, negative bool) MEdge {
	k := op.Qubits()
	id := e.Identity(k)
	if negative {
		return e.makeMNode(int32(k), [4]MEdge{op, MZero(), MZero(), id})
	}
	return e.makeMNode(int32(k), [4]MEdge{id, MZero(), MZero(), op})
}

// ExtendAbove pads an operation DD acting on qubits 0..k-1 with
// identities so it spans n qubits.
func (e *Engine) ExtendAbove(op MEdge, n int) MEdge {
	for z := op.Qubits(); z < n; z++ {
		op = e.makeMNode(int32(z), [4]MEdge{op, MZero(), MZero(), op})
	}
	return op
}

// SortedControls returns the controls sorted by qubit, for deterministic
// diagnostics.
func SortedControls(controls []Control) []Control {
	out := append([]Control(nil), controls...)
	sort.Slice(out, func(i, j int) bool { return out[i].Qubit < out[j].Qubit })
	return out
}
