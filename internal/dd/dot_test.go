package dd

import (
	"strings"
	"testing"
)

func TestDotVWellFormed(t *testing.T) {
	e := New()
	v := e.MulVec(e.GateDD(gH, 3, 0, nil), e.ZeroState(3))
	v = e.MulVec(e.GateDD(gX, 3, 2, []Control{Pos(0)}), v)
	var sb strings.Builder
	if err := DotV(&sb, v, "test state"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph vectordd", "test state", "q2", "q0", "term", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces in DOT output")
	}
}

func TestDotVZeroStubs(t *testing.T) {
	e := New()
	v := e.BasisState(2, 2)
	var sb strings.Builder
	if err := DotV(&sb, v, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shape=point") {
		t.Fatal("zero stubs not drawn as points")
	}
}

func TestDotMWellFormed(t *testing.T) {
	e := New()
	m := e.GateDD(gX, 2, 1, []Control{Pos(0)})
	var sb strings.Builder
	if err := DotM(&sb, m, "cx"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph matrixdd", "00:", "11:", "term"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWeightLabel(t *testing.T) {
	cases := map[complex128]string{
		complex(1, 0):    "1",
		complex(-0.5, 0): "-0.5",
		complex(0, 1):    "1i",
		complex(0, -1):   "-1i",
		complex(0.5, .5): "0.5+0.5i",
		complex(.5, -.5): "0.5-0.5i",
	}
	for in, want := range cases {
		if got := weightLabel(in); got != want {
			t.Errorf("weightLabel(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestNodesByLevel(t *testing.T) {
	e := New()
	v := e.ZeroState(4)
	profile := v.NodesByLevel()
	for q := 0; q < 4; q++ {
		if profile[q] != 1 {
			t.Fatalf("level %d has %d nodes, want 1", q, profile[q])
		}
	}
	m := e.Identity(3)
	mp := m.NodesByLevel()
	if len(mp) != 3 {
		t.Fatalf("identity profile %v", mp)
	}
	s := LevelProfile(profile)
	if !strings.HasPrefix(s, "[q3:1") {
		t.Fatalf("LevelProfile = %q", s)
	}
	if LevelProfile(nil) != "[]" {
		t.Fatal("empty profile")
	}
}
