// Package dd implements the decision-diagram engine at the heart of the
// simulator: edge-weighted decision diagrams for quantum state vectors
// (two successors per node) and unitary matrices (four successors per
// node), in the style of QMDDs and the JKU/MQT DD package.
//
// Conventions:
//
//   - Qubits are numbered 0..n-1 with qubit 0 the least significant bit
//     of a basis-state index. A node's variable equals its qubit index;
//     the root of an n-qubit diagram has variable n-1 and the (shared)
//     terminal sits below variable 0.
//   - No variable skipping: every root-to-terminal path visits every
//     level. The identity on k qubits therefore takes k nodes (one per
//     level) — the "linear fashion" the paper relies on.
//   - Nodes are hash-consed per Engine, and edge weights are
//     canonicalised through a cnum.Table so structurally equal diagrams
//     are pointer-equal within an Engine.
//
// The multiplication routines follow Section II-B of the paper: the
// matrix-vector product recurses over quadrant/half decompositions, and
// matrix-matrix products recurse over quadrants, with memoisation in
// fixed-size compute caches.
package dd

import "repro/internal/cnum"

// VNode is a decision-diagram node of a state vector. E[0] leads to the
// sub-vector where this node's qubit is |0>, E[1] to the |1> half.
//
// Nodes live in their engine's arena (see arena.go) and are indexed by
// the open-addressing unique table (see table.go); the full key hash is
// precomputed into the node so probing and rehashing never recompute
// it. On free-listed nodes E[0].N doubles as the free-list link.
type VNode struct {
	E    [2]VEdge
	V    int32  // qubit/variable index; -1 marks the terminal
	id   uint32 // engine-unique identity used for cache hashing
	mark uint32 // engine traversal epoch (see Engine.SizeV, GC marking)
	hash uint32 // unique-table hash of (V, E), fixed at creation
}

// MNode is a decision-diagram node of a matrix. The four successors are
// the quadrants in row-major order: E[2*row+col] with row the output
// (ket) bit and col the input (bra) bit of this node's qubit. Storage
// follows the same arena/unique-table scheme as VNode.
type MNode struct {
	E    [4]MEdge
	V    int32
	id   uint32
	mark uint32
	hash uint32
	// isIdentity marks nodes whose sub-diagram is exactly the identity
	// on variables 0..V: zero off-diagonal quadrants, both diagonal
	// weights exactly one, and a shared diagonal child that is itself
	// identity (or the terminal). Stamped at interning time in makeMNode
	// from the already-normalised edges, so the multiplication kernels
	// can skip identity structure with a single field load (see
	// arith.go). The bit is derived — it is NOT part of the unique-table
	// key or the stored hash — and Audit recomputes it structurally (the
	// "identity-bit" check), which is the only way a corrupted bit is
	// caught.
	isIdentity bool
}

// VEdge is a weighted edge into a vector DD. The amplitude of a basis
// state is the product of edge weights along its root-to-terminal path.
type VEdge struct {
	W complex128
	N *VNode
}

// MEdge is a weighted edge into a matrix DD.
type MEdge struct {
	W complex128
	N *MNode
}

// Shared terminal nodes. They are immutable and engine-independent;
// their id 0 is reserved (engine node ids start at 1).
var (
	vTerminal = &VNode{V: -1}
	mTerminal = &MNode{V: -1}
)

// VZero is the zero vector edge (weight 0 into the terminal).
func VZero() VEdge { return VEdge{W: cnum.Zero, N: vTerminal} }

// VOne is the scalar-1 vector edge (used as the recursion base).
func VOne() VEdge { return VEdge{W: cnum.One, N: vTerminal} }

// MZero is the zero matrix edge.
func MZero() MEdge { return MEdge{W: cnum.Zero, N: mTerminal} }

// MOne is the scalar-1 matrix edge.
func MOne() MEdge { return MEdge{W: cnum.One, N: mTerminal} }

// IsTerminal reports whether the edge points at the terminal node.
func (e VEdge) IsTerminal() bool { return e.N == vTerminal }

// IsZero reports whether the edge is the zero vector.
func (e VEdge) IsZero() bool { return cnum.IsZero(e.W) }

// IsTerminal reports whether the edge points at the terminal node.
func (e MEdge) IsTerminal() bool { return e.N == mTerminal }

// IsZero reports whether the edge is the zero matrix.
func (e MEdge) IsZero() bool { return cnum.IsZero(e.W) }

// Var returns the variable of the node under the edge (-1 for the
// terminal).
func (e VEdge) Var() int { return int(e.N.V) }

// Var returns the variable of the node under the edge (-1 for the
// terminal).
func (e MEdge) Var() int { return int(e.N.V) }

// IsIdentity reports whether the sub-diagram under the edge is the
// identity matrix on its span (the edge weight still applies as a
// scalar factor, so the edge as a whole represents W·I). The terminal
// counts: it is the identity on zero qubits. O(1) — it reads the bit
// stamped by makeMNode.
func (e MEdge) IsIdentity() bool { return e.N == mTerminal || e.N.isIdentity }

// Qubits returns the number of qubits the diagram under e spans
// (its root variable + 1; 0 for a terminal edge).
func (e VEdge) Qubits() int { return int(e.N.V) + 1 }

// Qubits returns the number of qubits the diagram under e spans.
func (e MEdge) Qubits() int { return int(e.N.V) + 1 }

// Size returns the number of distinct non-terminal nodes reachable from
// e, the node count the paper's max-size strategy is parameterised on.
//
// Deprecated: Size allocates a visited map per call. Engine-owning
// callers should use Engine.SizeV, which reuses the engine's traversal
// epoch and is allocation-free; this walker remains for engine-less
// contexts (e.g. inspecting deserialised diagrams in tests).
func (e VEdge) Size() int {
	seen := make(map[*VNode]struct{})
	var walk func(*VNode)
	walk = func(n *VNode) {
		if n == vTerminal {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		walk(n.E[0].N)
		walk(n.E[1].N)
	}
	walk(e.N)
	return len(seen)
}

// Size returns the number of distinct non-terminal nodes reachable from
// e.
//
// Deprecated: see VEdge.Size; use Engine.SizeM where an engine is at
// hand.
func (e MEdge) Size() int {
	seen := make(map[*MNode]struct{})
	var walk func(*MNode)
	walk = func(n *MNode) {
		if n == mTerminal {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		for i := range n.E {
			walk(n.E[i].N)
		}
	}
	walk(e.N)
	return len(seen)
}
