package dd

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cnum"
)

// ZeroState returns the DD of |0…0> on n qubits.
func (e *Engine) ZeroState(n int) VEdge {
	return e.BasisState(n, 0)
}

// BasisState returns the DD of the computational basis state |index> on
// n qubits (bit q of index is the value of qubit q).
func (e *Engine) BasisState(n int, index uint64) VEdge {
	if n < 0 || n > 63 {
		panic(fmt.Sprintf("dd: BasisState(%d): qubit count out of range", n))
	}
	if n < 64 && index >= 1<<uint(n) {
		panic(fmt.Sprintf("dd: BasisState: index %d out of range for %d qubits", index, n))
	}
	v := VOne()
	for q := 0; q < n; q++ {
		if index>>uint(q)&1 == 0 {
			v = e.makeVNode(int32(q), v, VZero())
		} else {
			v = e.makeVNode(int32(q), VZero(), v)
		}
	}
	return v
}

// FromVector builds the DD of an explicit amplitude vector. len(amps)
// must be a power of two. Used by tests and small-scale tooling.
func (e *Engine) FromVector(amps []complex128) VEdge {
	n := 0
	for 1<<uint(n) < len(amps) {
		n++
	}
	if 1<<uint(n) != len(amps) {
		panic(fmt.Sprintf("dd: FromVector: length %d is not a power of two", len(amps)))
	}
	var build func(level int, base uint64) VEdge
	build = func(level int, base uint64) VEdge {
		if level == 0 {
			w := e.weights.Lookup(amps[base])
			if w == cnum.Zero {
				return VZero()
			}
			return VEdge{W: w, N: vTerminal}
		}
		lo := build(level-1, base)
		hi := build(level-1, base|1<<uint(level-1))
		return e.makeVNode(int32(level-1), lo, hi)
	}
	return build(n, 0)
}

// Amplitude returns the amplitude of basis state index in v, the product
// of the edge weights along the corresponding path.
func (v VEdge) Amplitude(index uint64) complex128 {
	w := v.W
	n := v.N
	for n != vTerminal {
		c := n.E[index>>uint(n.V)&1]
		w *= c.W
		n = c.N
	}
	return w
}

// ToVector expands the diagram into a dense amplitude slice of length
// 2^n where n is the qubit span. Guarded against blow-up; intended for
// tests and small instances.
func (v VEdge) ToVector() []complex128 {
	n := v.Qubits()
	if n > 24 {
		panic(fmt.Sprintf("dd: ToVector on %d qubits would allocate 2^%d amplitudes", n, n))
	}
	out := make([]complex128, 1<<uint(n))
	var walk func(e VEdge, w complex128, level int, base uint64)
	walk = func(e VEdge, w complex128, level int, base uint64) {
		w *= e.W
		if w == 0 {
			return
		}
		if e.IsTerminal() {
			out[base] = w
			return
		}
		walk(e.N.E[0], w, level-1, base)
		walk(e.N.E[1], w, level-1, base|1<<uint(e.N.V))
	}
	walk(v, 1, n-1, 0)
	return out
}

// ToMatrix expands a matrix diagram into a dense 2^n × 2^n matrix
// (row-major [row][col]). Intended for tests and small instances.
func (m MEdge) ToMatrix() [][]complex128 {
	n := m.Qubits()
	if n > 12 {
		panic(fmt.Sprintf("dd: ToMatrix on %d qubits would allocate 4^%d entries", n, n))
	}
	dim := 1 << uint(n)
	out := make([][]complex128, dim)
	for i := range out {
		out[i] = make([]complex128, dim)
	}
	var walk func(e MEdge, w complex128, row, col uint64)
	walk = func(e MEdge, w complex128, row, col uint64) {
		w *= e.W
		if w == 0 {
			return
		}
		if e.IsTerminal() {
			out[row][col] = w
			return
		}
		bit := uint64(1) << uint(e.N.V)
		walk(e.N.E[0], w, row, col)
		walk(e.N.E[1], w, row, col|bit)
		walk(e.N.E[2], w, row|bit, col)
		walk(e.N.E[3], w, row|bit, col|bit)
	}
	walk(m, 1, 0, 0)
	return out
}

// mass returns, for every node, the sum over all paths to the terminal
// of the squared magnitudes of the edge-weight products — the recursive
// "probability mass" below a node. The top edge weight is excluded.
func mass(n *VNode, memo map[*VNode]float64) float64 {
	if n == vTerminal {
		return 1
	}
	if m, ok := memo[n]; ok {
		return m
	}
	m := cnum.Abs2(n.E[0].W)*mass(n.E[0].N, memo) + cnum.Abs2(n.E[1].W)*mass(n.E[1].N, memo)
	memo[n] = m
	return m
}

// Norm returns the 2-norm of the state vector.
func (v VEdge) Norm() float64 {
	memo := make(map[*VNode]float64)
	return math.Sqrt(cnum.Abs2(v.W) * mass(v.N, memo))
}

// Normalize rescales v to unit 2-norm. Panics on the zero vector.
func (e *Engine) Normalize(v VEdge) VEdge {
	n := v.Norm()
	if n < cnum.Tol {
		panic("dd: Normalize of (near-)zero vector")
	}
	return e.scaleV(v, complex(1/n, 0))
}

// Prob returns the probability that measuring qubit q of state v yields
// outcome (0 or 1). v must be normalised.
func (v VEdge) Prob(q int, outcome int) float64 {
	if outcome != 0 && outcome != 1 {
		panic(fmt.Sprintf("dd: Prob: outcome %d not in {0,1}", outcome))
	}
	massMemo := make(map[*VNode]float64)
	memo := make(map[*VNode]float64)
	var rec func(n *VNode) float64
	rec = func(n *VNode) float64 {
		if n == vTerminal {
			// Qubit q does not appear below; with no skipping this only
			// happens if q < 0, which the caller excludes.
			return 0
		}
		if p, ok := memo[n]; ok {
			return p
		}
		var p float64
		if int(n.V) == q {
			c := n.E[outcome]
			p = cnum.Abs2(c.W) * mass(c.N, massMemo)
		} else {
			p = cnum.Abs2(n.E[0].W)*rec(n.E[0].N) + cnum.Abs2(n.E[1].W)*rec(n.E[1].N)
		}
		memo[n] = p
		return p
	}
	if q < 0 || q >= v.Qubits() {
		panic(fmt.Sprintf("dd: Prob: qubit %d out of range for %d-qubit state", q, v.Qubits()))
	}
	return cnum.Abs2(v.W) * rec(v.N)
}

// Probabilities expands all basis-state probabilities (2^n entries).
// Intended for tests and small instances.
func (v VEdge) Probabilities() []float64 {
	amps := v.ToVector()
	out := make([]float64, len(amps))
	for i, a := range amps {
		out[i] = cnum.Abs2(a)
	}
	return out
}

// SampleAll draws one measurement outcome of all qubits from the state's
// distribution without collapsing it. v must be normalised.
func (v VEdge) SampleAll(rng *rand.Rand) uint64 {
	memo := make(map[*VNode]float64)
	var idx uint64
	n := v.N
	for n != vTerminal {
		p0 := cnum.Abs2(n.E[0].W) * mass(n.E[0].N, memo)
		p1 := cnum.Abs2(n.E[1].W) * mass(n.E[1].N, memo)
		total := p0 + p1
		var bit int
		if total <= 0 {
			bit = 0 // degenerate; should not happen on normalised states
		} else if rng.Float64()*total < p1 {
			bit = 1
		}
		if bit == 1 {
			idx |= 1 << uint(n.V)
		}
		n = n.E[bit].N
	}
	return idx
}

// MeasureQubit measures qubit q, collapsing the state. It returns the
// observed bit and the renormalised post-measurement state. v must be
// normalised.
func (e *Engine) MeasureQubit(v VEdge, q int, rng *rand.Rand) (int, VEdge) {
	p1 := v.Prob(q, 1)
	bit := 0
	if rng.Float64() < p1 {
		bit = 1
	}
	return bit, e.Project(v, q, bit)
}

// Project projects the state onto qubit q having the given value and
// renormalises. Panics if the projected state has (near-)zero norm.
// The per-call memo lives in an engine-owned scratch table (stamped
// with a per-call generation), so projecting allocates nothing beyond
// the result nodes themselves.
func (e *Engine) Project(v VEdge, q int, value int) VEdge {
	e.bumpProjGen()
	projected := e.scaleV(e.project(v.N, q, value), v.W)
	return e.Normalize(projected)
}

func (e *Engine) project(n *VNode, q, value int) VEdge {
	if n == vTerminal {
		return VOne()
	}
	idx := mix(n.id, 0x85ebca77) & scratchMask
	if s := &e.projTab[idx]; s.gen == e.projGen && s.n == n.id {
		return s.r
	}
	var r VEdge
	if int(n.V) == q {
		if value == 0 {
			r = e.makeVNode(n.V, n.E[0], VZero())
		} else {
			r = e.makeVNode(n.V, VZero(), n.E[1])
		}
	} else {
		c0 := e.project(n.E[0].N, q, value)
		c1 := e.project(n.E[1].N, q, value)
		r = e.makeVNode(n.V,
			e.scaleV(c0, n.E[0].W),
			e.scaleV(c1, n.E[1].W))
	}
	e.projTab[idx] = projSlot{n: n.id, r: r, gen: e.projGen}
	return r
}

// ResetQubit projects qubit q to the measured value and then flips it to
// |0> if the measurement yielded 1 — the reset operation used by
// semiclassical (one-control-qubit) phase estimation.
func (e *Engine) ResetQubit(v VEdge, q int, rng *rand.Rand) (int, VEdge) {
	bit, post := e.MeasureQubit(v, q, rng)
	if bit == 1 {
		x := e.GateDD([2][2]complex128{{0, 1}, {1, 0}}, post.Qubits(), q, nil)
		post = e.MulVec(x, post)
	}
	return bit, post
}
