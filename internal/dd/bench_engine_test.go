package dd

import (
	"math/rand"
	"testing"
	"time"
)

// The engine microbenchmarks below exercise the memory layer on paths
// that miss the compute caches, so node creation, unique-table probing
// and garbage collection dominate — unlike the cache-hit loops in
// dd_test.go, which measure pure lookup throughput.

// BenchmarkMakeNode drives makeVNode through BasisState with a rolling
// index: a mix of unique-table misses (fresh nodes) and hits (shared
// suffixes), with periodic full collections to keep the table bounded.
func BenchmarkMakeNode(b *testing.B) {
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.BasisState(20, uint64(i)&((1<<20)-1))
		if i&8191 == 8191 {
			e.GarbageCollect(nil, nil)
		}
	}
}

// BenchmarkMulVec applies a rotating set of random controlled gates to
// an evolving 12-qubit state. Every application misses the compute
// caches and builds fresh result nodes, so this measures the full hot
// path the paper's strategies bottom out in: recursion + add + node
// creation + unique-table insertion, with GC when the engine fills up.
func BenchmarkMulVec(b *testing.B) {
	e := New()
	const n = 12
	rng := rand.New(rand.NewSource(42))
	gates := make([]MEdge, 64)
	for i := range gates {
		tgt := rng.Intn(n)
		var controls []Control
		if c := rng.Intn(n); c != tgt {
			controls = append(controls, Control{Qubit: c, Negative: rng.Intn(2) == 0})
		}
		gates[i] = e.GateDD(randUnitary(rng), n, tgt, controls)
	}
	v := e.ZeroState(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = e.MulVec(gates[i&63], v)
		if e.VNodeCount()+e.MNodeCount() > 150_000 {
			e.GarbageCollect([]VEdge{v}, gates)
		}
	}
}

// BenchmarkGC measures a full churn cycle: build ~20k garbage nodes
// from pregenerated amplitude vectors, then collect them while keeping
// one live state. (Build stays inside the timed section — per-iteration
// StopTimer calls runtime.ReadMemStats and would dominate wall-clock —
// so the numbers cover allocation and collection of the same nodes,
// which is exactly the churn GC exists to absorb.)
func BenchmarkGC(b *testing.B) {
	e := New()
	rng := rand.New(rand.NewSource(7))
	states := make([][]complex128, 20)
	for i := range states {
		states[i] = randState(rng, 10)
	}
	live := e.FromVector(randState(rng, 10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range states {
			e.FromVector(s)
		}
		e.GarbageCollect([]VEdge{live}, nil)
	}
}

// BenchmarkMulVecDeadline is BenchmarkMulVec with a distant wall-clock
// deadline armed, so the abort probes run their unmasked path. The
// clock-read skip cache in abortCheck must keep the overhead small and
// the hot path at 0 allocs/op (CI greps the benchmark output for it).
func BenchmarkMulVecDeadline(b *testing.B) {
	e := New()
	e.SetDeadline(time.Now().Add(time.Hour))
	const n = 12
	rng := rand.New(rand.NewSource(42))
	gates := make([]MEdge, 64)
	for i := range gates {
		tgt := rng.Intn(n)
		var controls []Control
		if c := rng.Intn(n); c != tgt {
			controls = append(controls, Control{Qubit: c, Negative: rng.Intn(2) == 0})
		}
		gates[i] = e.GateDD(randUnitary(rng), n, tgt, controls)
	}
	v := e.ZeroState(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = e.MulVec(gates[i&63], v)
		if e.VNodeCount()+e.MNodeCount() > 150_000 {
			e.GarbageCollect([]VEdge{v}, gates)
		}
	}
}

// BenchmarkMulVecGate applies rotating single-qubit gates to a wide
// evolving state — the gate-padding case the identity-aware kernels
// target: everything below the target level is identity structure the
// recursion must absorb in O(1) instead of walking. CI greps this
// benchmark for 0 allocs/op alongside BenchmarkMulVec, so the identity
// short-circuit cannot regress the hot path's allocation-free property.
func BenchmarkMulVecGate(b *testing.B) {
	e := New()
	const n = 20
	rng := rand.New(rand.NewSource(42))
	gates := make([]MEdge, 64)
	for i := range gates {
		gates[i] = e.GateDD(randUnitary(rng), n, rng.Intn(n), nil)
	}
	v := e.ZeroState(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = e.MulVec(gates[i&63], v)
		if e.VNodeCount()+e.MNodeCount() > 150_000 {
			e.GarbageCollect([]VEdge{v}, gates)
		}
	}
}
