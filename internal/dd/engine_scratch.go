package dd

// StrategyScratch returns the opaque per-engine strategy slot set by
// SetStrategyScratch, or nil. The engine is the one object whose
// lifetime matches a logical simulation — multi-segment drivers (Shor's
// semiclassical QFT) call the runner once per segment against the same
// engine — so adaptive strategies use this slot to carry learned state
// across segments without coupling the engine to any strategy type.
// Like the rest of the engine it is not safe for concurrent use.
func (e *Engine) StrategyScratch() any { return e.strategyScratch }

// SetStrategyScratch stores v in the per-engine strategy slot.
func (e *Engine) SetStrategyScratch(v any) { e.strategyScratch = v }
