package dd

import (
	"context"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Tests for the identity-aware multiplication kernels: the isIdentity
// bit stamped by makeMNode, the short-circuits in mulVec/mulMat, the
// memoised ConjTranspose, the kron abort probes, and the audit check
// that guards the derived bit.

// TestIdentityBitStamping checks the bit on the structures it must and
// must not mark: identity diagrams at every level, the identity padding
// below a gate's target, and nothing else.
func TestIdentityBitStamping(t *testing.T) {
	e := New()
	id := e.Identity(6)
	for n := id.N; n != mTerminal; n = n.E[0].N {
		if !n.isIdentity {
			t.Fatalf("identity node at level %d not stamped", n.V)
		}
	}
	if !id.IsIdentity() || !MOne().IsIdentity() {
		t.Fatal("IsIdentity helper rejects identity edges")
	}
	// A scaled identity is still an edge into an identity node.
	if !e.ScaleM(id, complex(0.5, 0.25)).IsIdentity() {
		t.Fatal("scaling must not clear the node's identity structure")
	}

	// Gate on the top qubit: the root is the gate, everything below the
	// target is identity padding.
	g := e.GateDD(gH, 6, 5, nil)
	if g.N.isIdentity {
		t.Fatal("H gate root stamped as identity")
	}
	for i := 0; i < 4; i++ {
		if !g.N.E[i].IsZero() && !g.N.E[i].IsIdentity() {
			t.Fatalf("gate padding quadrant %d not identity", i)
		}
	}
	// Gate on the bottom qubit: the doubling nodes above the target are
	// diagonal but not identity (their diagonal blocks hold the gate).
	g = e.GateDD(gH, 6, 0, nil)
	if g.N.isIdentity {
		t.Fatal("doubling node above an H target stamped as identity")
	}
	// A controlled gate is not identity either, and neither is a
	// diagonal-but-unequal-weights node like T's padding root.
	if cx := e.GateDD(gX, 4, 1, []Control{{Qubit: 3}}); cx.N.isIdentity {
		t.Fatal("controlled-X root stamped as identity")
	}
	if tt := e.GateDD(gT, 4, 2, nil); tt.N.isIdentity {
		t.Fatal("T gate root stamped as identity")
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("audit after stamping checks: %v", err)
	}
}

// TestQuickIdentitySkipPointerIdentical is the central soundness
// property of the short-circuits: on the SAME engine, random gate
// chains produce pointer- and weight-identical edges with skipping on
// and off, for both the mat-vec and mat-mat kernels. (Hash-consing
// makes structural equality pointer equality, so == on edges is the
// strongest possible check.)
func TestQuickIdentitySkipPointerIdentical(t *testing.T) {
	e := New()
	defer e.SetIdentitySkip(true)
	f := func(s1, s2, s3, s4 int64, nRaw uint8) bool {
		n := int(nRaw)%4 + 2
		v0 := stateFromSeed(e, s1, n)
		gs := []MEdge{gateFromSeed(e, s2, n), gateFromSeed(e, s3, n), gateFromSeed(e, s4, n)}

		e.SetIdentitySkip(false)
		vOff, mOff := v0, e.Identity(n)
		for _, g := range gs {
			vOff = e.MulVec(g, vOff)
			mOff = e.MulMat(g, mOff)
		}
		e.SetIdentitySkip(true)
		e.clearCaches() // force the on run to recompute, not replay cached results
		vOn, mOn := v0, e.Identity(n)
		for _, g := range gs {
			vOn = e.MulVec(g, vOn)
			mOn = e.MulMat(g, mOn)
		}
		return vOn == vOff && mOn == mOff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("audit after property run: %v", err)
	}
}

// TestIdentitySkipRecursionGuard is the CI regression guard: a
// single-qubit gate on a wide product state must stop recursing at the
// identity padding. With skipping on, the kernel touches a handful of
// levels; without, it walks the full diagram. A code change that breaks
// the short-circuit (or the stamping feeding it) trips the constant
// below long before it shows up in benchmarks.
func TestIdentitySkipRecursionGuard(t *testing.T) {
	const n = 24
	e := New()
	v := e.ZeroState(n)
	g := e.GateDD(gH, n, n-1, nil) // top-qubit gate: n-1 identity levels below

	before := e.Stats()
	von := e.MulVec(g, v)
	d := e.Stats()
	onRec := d.MulRecursions - before.MulRecursions
	if d.IdentitySkipsMV == before.IdentitySkipsMV {
		t.Fatal("identity short-circuit never fired on a top-qubit gate")
	}
	if onRec > 8 {
		t.Fatalf("MulRecursions with skipping = %d, want <= 8 (identity padding not skipped)", onRec)
	}

	e.SetIdentitySkip(false)
	defer e.SetIdentitySkip(true)
	e.clearCaches() // the off run must not reuse results cached by the on run
	before = e.Stats()
	voff := e.MulVec(g, v)
	offRec := e.Stats().MulRecursions - before.MulRecursions
	if offRec < n {
		t.Fatalf("MulRecursions without skipping = %d, want >= %d (guard is not measuring the full walk)", offRec, n)
	}
	if von != voff {
		t.Fatal("skip on/off disagree on the result edge")
	}
	t.Logf("MulRecursions: %d with skipping, %d without", onRec, offRec)
}

// TestConjTransposeSharedDiagramLinear is the regression test for the
// memoised adjoint: a depth-40 chain in which every node points to the
// same child four times (with distinct weights) has 4^40 paths — the
// pre-memo recursion would never return. The probe counter bounds the
// actual number of conjT invocations, so the test fails fast (rather
// than hanging) if the memo is dropped.
func TestConjTransposeSharedDiagramLinear(t *testing.T) {
	e := New()
	const depth = 40
	m := MOne()
	for v := int32(0); v < depth; v++ {
		m = e.makeMNode(v, [4]MEdge{
			m,
			e.scaleM(m, complex(0.5, 0)),
			e.scaleM(m, complex(0, 0.5)),
			e.scaleM(m, complex(-0.5, 0)),
		})
	}

	// Arm a cancellable (but never canceled) context so abort probes
	// count; every conjT call probes exactly once.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.SetContext(ctx)
	defer e.SetContext(nil)
	p0 := e.Probes()
	ct := e.ConjTranspose(m)
	probes := e.Probes() - p0
	if probes > 20*depth {
		t.Fatalf("ConjTranspose probed %d times on a depth-%d shared chain, want O(depth) — memo broken", probes, depth)
	}
	// The adjoint is an involution; on a hash-consed engine that means
	// edge equality, not approximation.
	if back := e.ConjTranspose(ct); back != m {
		t.Fatalf("ConjTranspose not an involution: got %v, want %v", back, m)
	}
	t.Logf("probes = %d for depth %d", probes, depth)
}

// TestConjTransposeMatchesMatrix pins the element-level semantics of
// the restructured adjoint against the explicit matrix.
func TestConjTransposeMatchesMatrix(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 1 + rng.Intn(3)
		g := gateFromSeed(e, rng.Int63(), n)
		got := e.ConjTranspose(g).ToMatrix()
		want := g.ToMatrix()
		for r := range want {
			for c := range want[r] {
				if cmplx.Abs(got[r][c]-cmplx.Conj(want[c][r])) > 1e-12 {
					t.Fatalf("trial %d: adjoint[%d][%d] = %v, want conj(m[%d][%d]) = %v",
						trial, r, c, got[r][c], c, r, cmplx.Conj(want[c][r]))
				}
			}
		}
		// I† = I must hold exactly (the unconditional short-circuit).
		id := e.Identity(n)
		if e.ConjTranspose(id) != id {
			t.Fatal("identity not self-adjoint")
		}
	}
}

// TestKronInjectAbortChaos checks the new abort probes inside the kron
// recursions: an injected abort must fire mid-kron, surface as an
// *AbortError, and leave the engine canonical and reusable.
func TestKronInjectAbortChaos(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	e := New()
	rng := rand.New(rand.NewSource(21))
	hi := e.FromVector(randState(rng, 8)) // dense: ~2^8 nodes to walk
	lo := e.FromVector(randState(rng, 4))
	if !e.InjectAbortAfter(10, AbortInjected) {
		t.Skip("fault injection did not arm (chaos disabled)")
	}
	ab := recoverAbort(func() { e.KronV(hi, lo) })
	if ab == nil {
		t.Fatal("injected abort did not fire inside kronV")
	}
	if ab.Reason != AbortInjected {
		t.Fatalf("abort reason = %v, want injected", ab.Reason)
	}

	mhi := e.MulMat(gateFromSeed(e, 1, 5), e.MulMat(gateFromSeed(e, 2, 5), gateFromSeed(e, 3, 5)))
	mlo := gateFromSeed(e, 4, 3)
	if !e.InjectAbortAfter(4, AbortInjected) {
		t.Skip("fault injection did not arm (chaos disabled)")
	}
	if ab := recoverAbort(func() { e.KronM(mhi, mlo) }); ab == nil {
		t.Fatal("injected abort did not fire inside kronM")
	}

	// Disarmed, both kron products must complete and the engine must
	// still pass the audit battery.
	kv := e.KronV(hi, lo)
	km := e.KronM(mhi, mlo)
	if kv.Qubits() != 12 || km.Qubits() != 8 {
		t.Fatalf("post-abort kron spans %d/%d, want 12/8", kv.Qubits(), km.Qubits())
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("audit after aborted krons: %v", err)
	}
}

// TestAuditDetectsIdentityBitCorruption flips the derived bit directly
// on live nodes — in both directions — and checks the audit pins it
// with the dedicated identity-bit check (the bit is excluded from the
// unique-table key and hash, so no other check can catch it).
func TestAuditDetectsIdentityBitCorruption(t *testing.T) {
	e := New()
	id := e.Identity(5)
	g := e.GateDD(gH, 5, 2, nil)
	if err := e.Audit(); err != nil {
		t.Fatalf("clean engine: %v", err)
	}

	id.N.isIdentity = false
	err := e.Audit()
	ie, ok := err.(*IntegrityError)
	if !ok {
		t.Fatalf("cleared identity bit undetected: %v", err)
	}
	if ie.Check != "identity-bit" && ie.Check != "identity-cache" {
		t.Fatalf("unexpected check %q: %v", ie.Check, err)
	}
	id.N.isIdentity = true

	g.N.isIdentity = true
	err = e.Audit()
	if ie, ok = err.(*IntegrityError); !ok || ie.Check != "identity-bit" {
		t.Fatalf("spurious identity bit undetected or misclassified: %v", err)
	}
	g.N.isIdentity = false

	if err := e.Audit(); err != nil {
		t.Fatalf("engine not clean after restoring bits: %v", err)
	}
}

// TestAuditIdentityBitFlipChaos runs bit-flip injection while identity
// structure is being built and used, and checks the audit battery
// catches every fired fault — the acceptance check that Engine.Audit
// still works with the new node bit under chaos.
func TestAuditIdentityBitFlipChaos(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	for _, after := range []uint64{1, 2, 3, 5} {
		e := New()
		if !e.InjectBitFlipAfter(after, FaultChildFlip) {
			t.Skip("fault injection did not arm (chaos disabled)")
		}
		var id MEdge
		panicked := func() (p bool) {
			defer func() {
				if recover() != nil {
					p = true
				}
			}()
			id = e.Identity(6)
			v := e.MulVec(id, e.ZeroState(6))
			_ = e.MulMat(id, e.GateDD(gH, 6, 3, nil))
			_ = v
			return false
		}()
		if e.Stats().FaultsInjected == 0 {
			t.Fatalf("after %d: fault never fired", after)
		}
		detected := panicked
		if !detected {
			if err := e.Audit(); err != nil {
				detected = true
			} else if err := e.AuditM(id); err != nil {
				detected = true
			}
		}
		if !detected {
			t.Errorf("after %d internings: corrupted identity structure undetected", after)
		}
	}
}

// TestIdentitySkipStatsAccounting pins the skip counters: applying the
// identity itself must be one mat-vec skip covering all levels, and the
// mat-mat short-circuit must count once per absorbed operand.
func TestIdentitySkipStatsAccounting(t *testing.T) {
	e := New()
	const n = 7
	id := e.Identity(n)
	v := stateFromSeed(e, 99, n)

	before := e.Stats()
	if got := e.MulVec(id, v); got != v {
		t.Fatal("I·v changed the edge")
	}
	d := e.Stats()
	if d.IdentitySkipsMV-before.IdentitySkipsMV != 1 {
		t.Fatalf("IdentitySkipsMV delta = %d, want 1", d.IdentitySkipsMV-before.IdentitySkipsMV)
	}
	if d.IdentitySkipLevels-before.IdentitySkipLevels != n {
		t.Fatalf("IdentitySkipLevels delta = %d, want %d", d.IdentitySkipLevels-before.IdentitySkipLevels, n)
	}

	g := gateFromSeed(e, 5, n)
	before = e.Stats()
	if got := e.MulMat(g, id); got != g {
		t.Fatal("g×I changed the edge")
	}
	if got := e.MulMat(id, g); got != g {
		t.Fatal("I×g changed the edge")
	}
	d = e.Stats()
	if d.IdentitySkipsMM-before.IdentitySkipsMM != 2 {
		t.Fatalf("IdentitySkipsMM delta = %d, want 2", d.IdentitySkipsMM-before.IdentitySkipsMM)
	}

	// Scaled identities still short-circuit, through the weight only.
	w := complex(0, 1)
	if got := e.MulVec(e.ScaleM(id, w), v); got != e.ScaleV(v, w) {
		t.Fatal("(w·I)·v != w·v")
	}
	if e.Stats().IdentitySkipsMV == 0 {
		t.Fatal("scaled identity did not take the short-circuit")
	}
}
