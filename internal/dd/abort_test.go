package dd

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// recoverAbort runs f and returns the recovered *AbortError (nil when f
// completed without aborting).
func recoverAbort(f func()) (a *AbortError) {
	defer func() {
		if rec := recover(); rec != nil {
			var ok bool
			if a, ok = AsAbort(rec); !ok {
				panic(rec)
			}
		}
	}()
	f()
	return nil
}

// bigPair builds two dense random states large enough that a single
// Add walks well past the sampled probe interval.
func bigPair(e *Engine, seed int64) (VEdge, VEdge) {
	rng := rand.New(rand.NewSource(seed))
	return e.FromVector(randState(rng, 10)), e.FromVector(randState(rng, 10))
}

func TestBudgetAborts(t *testing.T) {
	e := New()
	a, b := bigPair(e, 1)
	// The states alone exceed the budget; the first sampled probe inside
	// the addition must fire.
	e.SetBudget(10)
	ab := recoverAbort(func() { e.Add(a, b) })
	if ab == nil {
		t.Fatal("addition under a 10-node budget did not abort")
	}
	if ab.Reason != AbortBudget || !errors.Is(ab, ErrBudgetExceeded) {
		t.Fatalf("abort = %v, want budget", ab)
	}
	if AbortedByDeadline(ab) {
		t.Fatal("budget abort misclassified as deadline")
	}
	if e.Stats().Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", e.Stats().Aborts)
	}
	// Disarm and re-run: the engine must be fully usable.
	e.SetBudget(0)
	sum := e.Add(a, b)
	if got, want := sum.ToVector(), a.ToVector(); len(got) != len(want) {
		t.Fatal("post-abort addition broken")
	}
}

func TestContextCancelAborts(t *testing.T) {
	e := New()
	a, b := bigPair(e, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	ab := recoverAbort(func() { e.Add(a, b) })
	if ab == nil {
		t.Fatal("addition under a canceled context did not abort")
	}
	if ab.Reason != AbortCanceled || !errors.Is(ab, context.Canceled) {
		t.Fatalf("abort = %v, want canceled wrapping context.Canceled", ab)
	}
	e.SetContext(nil)
	if got := recoverAbort(func() { e.Add(a, b) }); got != nil {
		t.Fatalf("disarmed engine still aborted: %v", got)
	}
}

func TestBackgroundContextIgnored(t *testing.T) {
	e := New()
	e.SetContext(context.Background())
	if e.armed {
		t.Fatal("un-cancellable context armed the probe path")
	}
}

func TestDeadlineAbortStillClassified(t *testing.T) {
	e := New()
	a, b := bigPair(e, 3)
	e.SetDeadline(time.Now().Add(-time.Second))
	ab := recoverAbort(func() { e.Add(a, b) })
	if ab == nil {
		t.Fatal("expired deadline did not abort")
	}
	if !AbortedByDeadline(ab) || !errors.Is(ab, ErrDeadlineExceeded) {
		t.Fatalf("abort = %v, want deadline", ab)
	}
	e.SetDeadline(time.Time{})
}

func TestInjectRequiresChaosGate(t *testing.T) {
	t.Setenv("DD_CHAOS", "")
	if chaosBuild {
		t.Skip("built with ddchaos: injection is always armed")
	}
	e := New()
	if e.InjectAbortAfter(1, AbortInjected) {
		t.Fatal("fault injection armed without the chaos gate")
	}
	a, b := bigPair(e, 4)
	if ab := recoverAbort(func() { e.Add(a, b) }); ab != nil {
		t.Fatalf("unexpected abort: %v", ab)
	}
}

func TestInjectFiresExactlyAndDisarms(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	e := New()
	a, b := bigPair(e, 5)
	if !e.InjectAbortAfter(7, AbortInjected) {
		t.Fatal("fault injection did not arm under DD_CHAOS=1")
	}
	ab := recoverAbort(func() { e.Add(a, b) })
	if ab == nil {
		t.Fatal("injection did not fire")
	}
	if ab.Reason != AbortInjected || !errors.Is(ab, ErrInjectedAbort) {
		t.Fatalf("abort = %v, want injected", ab)
	}
	if ab.Probes != 7 {
		t.Fatalf("fired at probe %d, want exactly 7", ab.Probes)
	}
	// One-shot: the retry must complete.
	if again := recoverAbort(func() { e.Add(a, b) }); again != nil {
		t.Fatalf("injection fired twice: %v", again)
	}
}

// TestInjectedReasonsCarrySentinels checks that rehearsed deadline /
// budget / cancellation aborts surface the same sentinel errors as the
// real thing, so recovery code paths can be chaos-tested end to end.
func TestInjectedReasonsCarrySentinels(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	cases := []struct {
		reason AbortReason
		want   error
	}{
		{AbortDeadline, ErrDeadlineExceeded},
		{AbortBudget, ErrBudgetExceeded},
		{AbortCanceled, context.Canceled},
		{AbortInjected, ErrInjectedAbort},
	}
	for _, tc := range cases {
		e := New()
		a, b := bigPair(e, 6)
		if !e.InjectAbortAfter(3, tc.reason) {
			t.Fatal("injection did not arm")
		}
		ab := recoverAbort(func() { e.Add(a, b) })
		if ab == nil || ab.Reason != tc.reason || !errors.Is(ab, tc.want) {
			t.Fatalf("reason %v: abort = %v, want %v", tc.reason, ab, tc.want)
		}
	}
}

// TestAbortInvalidatesCaches checks the post-abort invariant that no
// compute-cache entry from the aborted operation survives (generation
// bump on the abort path).
func TestAbortInvalidatesCaches(t *testing.T) {
	e := New()
	a, b := bigPair(e, 7)
	gen := e.cacheGen
	e.SetBudget(10)
	if recoverAbort(func() { e.Add(a, b) }) == nil {
		t.Fatal("expected abort")
	}
	if e.cacheGen == gen {
		t.Fatal("abort did not invalidate the compute caches")
	}
}

// TestAbortMidMulLeavesEngineReusable aborts a matrix-matrix product in
// flight and checks that a later identical product on the same engine
// matches one from a fresh engine.
func TestAbortMidMulLeavesEngineReusable(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	build := func(e *Engine) (MEdge, MEdge) {
		g1 := gateFromSeed(e, 21, 8)
		g2 := gateFromSeed(e, 22, 8)
		return g1, g2
	}
	ref := New()
	rg1, rg2 := build(ref)
	want := ref.MulMat(rg1, rg2)

	e := New()
	g1, g2 := build(e)
	if !e.InjectAbortAfter(5, AbortBudget) {
		t.Fatal("injection did not arm")
	}
	if recoverAbort(func() { e.MulMat(g1, g2) }) == nil {
		t.Fatal("expected abort")
	}
	got := e.MulMat(g1, g2)
	wm, gm := want.ToMatrix(), got.ToMatrix()
	for i := range wm {
		for j := range wm[i] {
			if d := wm[i][j] - gm[i][j]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
				t.Fatalf("post-abort product differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestDeadlineProbeCachesClockReads(t *testing.T) {
	e := New()
	e.SetDeadline(time.Now().Add(time.Hour))
	for i := 0; i < 1<<20; i++ {
		e.abortCheck()
	}
	s := e.Stats()
	unmasked := e.Probes() / (abortProbeMask + 1)
	if s.DeadlineClockReads == 0 {
		t.Fatal("deadline probe never read the clock")
	}
	// With over a second remaining the skip is 255, so reads stay near
	// unmasked/256; the bound below leaves slack for boundary effects.
	if max := unmasked/64 + 2; s.DeadlineClockReads > max {
		t.Fatalf("DeadlineClockReads = %d over %d unmasked probes, want <= %d",
			s.DeadlineClockReads, unmasked, max)
	}
	// Re-arming resets the skip, so an expired deadline still aborts on
	// the first unmasked probe.
	e.SetDeadline(time.Now().Add(-time.Millisecond))
	ab := recoverAbort(func() {
		for i := 0; i <= abortProbeMask+1; i++ {
			e.abortCheck()
		}
	})
	if ab == nil || ab.Reason != AbortDeadline {
		t.Fatalf("expired deadline after re-arm did not abort: %v", ab)
	}
	e.SetDeadline(time.Time{})
}

func TestDeadlineSkipTightensNearDeadline(t *testing.T) {
	cases := []struct {
		remaining time.Duration
		want      uint32
	}{
		{time.Hour, 255},
		{2 * time.Second, 255},
		{500 * time.Millisecond, 63},
		{50 * time.Millisecond, 7},
		{5 * time.Millisecond, 0},
		{-time.Second, 0},
	}
	for _, c := range cases {
		if got := deadlineSkipFor(c.remaining); got != c.want {
			t.Errorf("deadlineSkipFor(%v) = %d, want %d", c.remaining, got, c.want)
		}
	}
}
