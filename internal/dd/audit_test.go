package dd

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cnum"
)

// ghzState builds a GHZ-like entangled state exercising several levels.
func ghzState(e *Engine, n int) VEdge {
	v := e.MulVec(e.GateDD(gH, n, n-1, nil), e.ZeroState(n))
	for q := n - 2; q >= 0; q-- {
		v = e.MulVec(e.GateDD(gX, n, q, []Control{Pos(q + 1)}), v)
	}
	return v
}

// TestAuditCleanEngine verifies that a healthy engine passes the full
// audit at every stage of a simulation, including after GC.
func TestAuditCleanEngine(t *testing.T) {
	e := New()
	if err := e.Audit(); err != nil {
		t.Fatalf("fresh engine: %v", err)
	}
	v := ghzState(e, 5)
	if err := e.Audit(); err != nil {
		t.Fatalf("after GHZ build: %v", err)
	}
	if err := e.AuditV(v); err != nil {
		t.Fatalf("state audit: %v", err)
	}
	g1 := e.GateDD(gH, 5, 2, nil)
	g2 := e.GateDD(gT, 5, 0, nil)
	prod := e.MulMat(g2, g1)
	if err := e.AuditM(prod); err != nil {
		t.Fatalf("matrix audit: %v", err)
	}
	v = e.MulVec(prod, v)
	e.GarbageCollect([]VEdge{v}, nil)
	if err := e.Audit(); err != nil {
		t.Fatalf("after GC: %v", err)
	}
	if err := e.AuditV(v); err != nil {
		t.Fatalf("state audit after GC: %v", err)
	}
}

// TestAuditDetectsWeightMutation flips a mantissa bit on a live node's
// edge weight directly and checks both the whole-table audit and the
// reachable-state audit report it with a node path.
func TestAuditDetectsWeightMutation(t *testing.T) {
	e := New()
	v := ghzState(e, 4)
	n := v.N // root node of the state diagram
	orig := n.E[0].W
	n.E[0].W = flipWeight(orig)
	defer func() { n.E[0].W = orig }()

	err := e.Audit()
	if err == nil {
		t.Fatal("Audit missed a mutated edge weight")
	}
	ie, ok := err.(*IntegrityError)
	if !ok {
		t.Fatalf("want *IntegrityError, got %T: %v", err, err)
	}
	// A flipped mantissa bit breaks either canonicality or the stored
	// hash, depending on iteration order.
	if ie.Check != "weight-canonical" && ie.Check != "hash" && ie.Check != "normalization" {
		t.Fatalf("unexpected check %q: %v", ie.Check, err)
	}

	verr := e.AuditV(v)
	if verr == nil {
		t.Fatal("AuditV missed a mutated edge weight")
	}
	if vie := verr.(*IntegrityError); vie.Path == "" {
		t.Fatalf("AuditV error carries no path: %v", verr)
	}
}

// TestAuditDetectsChildMutation redirects a child pointer (level skip)
// and checks detection.
func TestAuditDetectsChildMutation(t *testing.T) {
	e := New()
	v := ghzState(e, 4)
	n := v.N
	orig := n.E[0].N
	n.E[0].N = vTerminal // skips from level 3 straight to the terminal
	defer func() { n.E[0].N = orig }()

	err := e.AuditV(v)
	if err == nil {
		t.Fatal("AuditV missed a level-skipping child pointer")
	}
	ie := err.(*IntegrityError)
	if ie.Check != "level" && ie.Check != "hash" {
		t.Fatalf("unexpected check %q: %v", ie.Check, err)
	}
}

// TestAuditDetectsDanglingNode checks that a reachable node absent from
// the unique table (freed or never interned) fails the state audit.
func TestAuditDetectsDanglingNode(t *testing.T) {
	e := New()
	v := ghzState(e, 4)
	// Forge a node that was never interned.
	rogue := &VNode{V: v.N.V - 1, id: 1}
	rogue.E[0] = VEdge{W: cnum.One, N: vTerminal}
	rogue.E[1] = VEdge{W: cnum.Zero, N: vTerminal}
	// Give it internally consistent fields so only the table check fires.
	for rogue.V > 0 {
		child := &VNode{V: rogue.V - 1, id: 1}
		child.E[0] = VEdge{W: cnum.One, N: vTerminal}
		child.E[1] = VEdge{W: cnum.Zero, N: vTerminal}
		child.hash = hashVKey(child.V, child.E[0], child.E[1])
		rogue.E[0].N = child
		break
	}
	rogue.hash = hashVKey(rogue.V, rogue.E[0], rogue.E[1])
	orig := v.N.E[0].N
	v.N.E[0].N = rogue
	defer func() { v.N.E[0].N = orig }()

	err := e.AuditV(v)
	if err == nil {
		t.Fatal("AuditV missed a dangling (never-interned) node")
	}
	if ie := err.(*IntegrityError); ie.Check != "unique-table" && ie.Check != "level" && ie.Check != "hash" {
		t.Fatalf("unexpected check %q: %v", ie.Check, err)
	}
}

// TestAuditMNilOnClean guards the typed-nil pitfall: AuditM on a sound
// matrix must return an interface that compares equal to nil.
func TestAuditMNilOnClean(t *testing.T) {
	e := New()
	m := e.MulMat(e.GateDD(gH, 3, 1, nil), e.GateDD(gX, 3, 0, nil))
	if err := e.AuditM(m); err != nil {
		t.Fatalf("AuditM on sound matrix: %v", err)
	}
}

// TestCheckNorm exercises the online norm monitor on sound and damaged
// states.
func TestCheckNorm(t *testing.T) {
	e := New()
	v := ghzState(e, 4)
	drift, err := CheckNorm(v, 0)
	if err != nil {
		t.Fatalf("unit state flagged: %v", err)
	}
	if drift > 1e-9 {
		t.Fatalf("unit state drift %g", drift)
	}
	scaled := VEdge{W: v.W * complex(1.1, 0), N: v.N}
	if _, err := CheckNorm(scaled, 0); err == nil {
		t.Fatal("scaled state passed the norm check")
	}
	if _, err := CheckNorm(scaled, 0.5); err != nil {
		t.Fatalf("loose tolerance still flagged: %v", err)
	}
}

// TestCheckUnitary verifies the trace-based spot-check accepts gate
// products and rejects a damaged matrix.
func TestCheckUnitary(t *testing.T) {
	e := New()
	m := e.GateDD(gH, 4, 3, nil)
	for _, g := range []MEdge{
		e.GateDD(gT, 4, 1, nil),
		e.GateDD(gX, 4, 0, []Control{Pos(2)}),
		e.GateDD(gH, 4, 2, nil),
	} {
		m = e.MulMat(g, m)
	}
	if err := e.CheckUnitary(m, 0); err != nil {
		t.Fatalf("unitary product flagged: %v", err)
	}
	damaged := MEdge{W: m.W * complex(1.01, 0), N: m.N}
	if err := e.CheckUnitary(damaged, 0); err == nil {
		t.Fatal("scaled (non-unitary) matrix passed")
	}
	// Terminal-only scalar edge.
	if err := e.CheckUnitary(MOne(), 0); err != nil {
		t.Fatalf("identity scalar flagged: %v", err)
	}
	if err := e.CheckUnitary(MEdge{W: complex(0.5, 0), N: mTerminal}, 0); err == nil {
		t.Fatal("contracting scalar passed")
	}
}

// TestCopyVCrossEngine rebuilds a state into a fresh engine and checks
// exact amplitude agreement plus a clean audit of the copy.
func TestCopyVCrossEngine(t *testing.T) {
	src := New()
	v := ghzState(src, 5)
	v = src.MulVec(src.GateDD(gT, 5, 2, nil), v)
	want := v.ToVector()

	dst := New()
	cp := dst.CopyV(v)
	got := cp.ToVector()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("amplitude %d: copy %v, original %v", i, got[i], want[i])
		}
	}
	if err := dst.Audit(); err != nil {
		t.Fatalf("destination engine audit: %v", err)
	}
	if err := dst.AuditV(cp); err != nil {
		t.Fatalf("copied state audit: %v", err)
	}
	if n := dst.SizeV(cp); n != src.SizeV(v) {
		t.Fatalf("copy has %d nodes, original %d", n, src.SizeV(v))
	}
}

// TestCopyVZero covers the degenerate inputs.
func TestCopyVZero(t *testing.T) {
	dst := New()
	if cp := dst.CopyV(VZero()); !cp.IsZero() {
		t.Fatalf("copy of zero edge: %v", cp)
	}
}

// TestBitFlipInjectionDetected arms each fault kind at several interning
// counts, runs a small circuit, and checks that every injected
// corruption is caught — by the audit battery, or by a kernel panic on
// the corrupted structure (which the core runner routes into its repair
// path the same way). Requires chaos builds.
func TestBitFlipInjectionDetected(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	for _, kind := range []FaultKind{FaultWeightFlip, FaultChildFlip} {
		for _, after := range []uint64{1, 3, 7, 12} {
			e := New()
			if !e.InjectBitFlipAfter(after, kind) {
				t.Skip("fault injection did not arm (chaos disabled)")
			}
			var v VEdge
			panicked := func() (p bool) {
				defer func() {
					if recover() != nil {
						p = true
					}
				}()
				v = ghzState(e, 4)
				v = e.MulVec(e.GateDD(gT, 4, 1, nil), v)
				// The countdown may outlast a tiny circuit; extend it.
				for i := 0; i < 4 && e.Stats().FaultsInjected == 0; i++ {
					v = e.MulVec(e.GateDD(gH, 4, i, nil), v)
				}
				return false
			}()
			if e.Stats().FaultsInjected == 0 {
				t.Fatalf("%v after %d: fault never fired", kind, after)
			}
			detected := panicked
			if !detected {
				if err := e.Audit(); err != nil {
					detected = true
				} else if err := e.AuditV(v); err != nil {
					detected = true
				} else if _, err := CheckNorm(v, 0); err != nil {
					detected = true
				}
			}
			if !detected {
				t.Errorf("%v after %d internings: corruption undetected by the audit battery", kind, after)
			}
		}
	}
}

// TestInjectBitFlipDisabled checks the arming gate: without DD_CHAOS the
// hook must refuse (in default builds).
func TestInjectBitFlipDisabled(t *testing.T) {
	t.Setenv("DD_CHAOS", "")
	e := New()
	if e.InjectBitFlipAfter(1, FaultWeightFlip) {
		t.Skip("built with ddchaos: injection is always armed")
	}
	_ = ghzState(e, 3)
	if e.Stats().FaultsInjected != 0 {
		t.Fatal("fault fired while disarmed")
	}
}

// TestFaultKindString pins the diagnostic names.
func TestFaultKindString(t *testing.T) {
	if FaultWeightFlip.String() != "weight-flip" || FaultChildFlip.String() != "child-flip" {
		t.Fatalf("unexpected names %q %q", FaultWeightFlip, FaultChildFlip)
	}
	if !strings.Contains(FaultKind(9).String(), "?") {
		t.Fatalf("unknown kind renders as %q", FaultKind(9))
	}
}

// TestHashSignSwapSensitive pins a past blind spot: XOR-then-multiply
// hashing is linear in the top bit, so swapping two edge weights whose
// folded words differ only in the sign bit (+1 and -1) used to leave
// hashMKey unchanged — making the stored-hash audit blind to exactly
// the child-swap corruption the chaos suite injects. The avalanche
// shifts in foldW must keep these distinguishable.
func TestHashSignSwapSensitive(t *testing.T) {
	a := complex(-0.30366806450359335, 0)
	es := [4]MEdge{
		{W: a, N: mTerminal},
		{W: complex(1, 0), N: mTerminal},
		{W: complex(-1, 0), N: mTerminal},
		{W: a, N: mTerminal},
	}
	h1 := hashMKey(0, &es)
	es[1], es[2] = es[2], es[1]
	if h2 := hashMKey(0, &es); h2 == h1 {
		t.Fatalf("hashMKey invariant under sign-swapped edge exchange (h=%08x)", h1)
	}
	e0 := VEdge{W: complex(1, 0), N: vTerminal}
	e1 := VEdge{W: complex(-1, 0), N: vTerminal}
	if hashVKey(0, e0, e1) == hashVKey(0, e1, e0) {
		t.Fatal("hashVKey invariant under sign-swapped edge exchange")
	}
}

// TestFlipWeightChangesValue pins the corruption primitive itself: the
// flip must change the value by a margin the tolerance cannot absorb.
func TestFlipWeightChangesValue(t *testing.T) {
	w := complex(1/math.Sqrt2, 0)
	f := flipWeight(w)
	if f == w {
		t.Fatal("flip is a no-op")
	}
	if d := math.Abs(real(f) - real(w)); d < cnum.Tol {
		t.Fatalf("flip delta %g is inside cnum tolerance", d)
	}
}
