package dd

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestVectorSerialisationRoundTrip(t *testing.T) {
	src := New()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(7)
		v := src.FromVector(randState(rng, n))
		var buf bytes.Buffer
		if err := WriteV(&buf, v); err != nil {
			t.Fatal(err)
		}
		dst := New()
		got, err := ReadV(&buf, dst)
		if err != nil {
			t.Fatal(err)
		}
		approxVec(t, got.ToVector(), v.ToVector(), "serialise round trip")
	}
}

func TestVectorSerialisationPreservesSharing(t *testing.T) {
	src := New()
	// A GHZ-like state shares heavily; node counts must survive.
	v := src.ZeroState(10)
	v = src.MulVec(src.GateDD(gH, 10, 0, nil), v)
	for q := 1; q < 10; q++ {
		v = src.MulVec(src.GateDD(gX, 10, q, []Control{Pos(q - 1)}), v)
	}
	var buf bytes.Buffer
	if err := WriteV(&buf, v); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	dst := New()
	got, err := ReadV(bytes.NewReader(data), dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != v.Size() {
		t.Fatalf("sharing lost: %d vs %d nodes", got.Size(), v.Size())
	}
	// Decoding into the same engine must hash-cons onto the original.
	same, err := ReadV(bytes.NewReader(data), src)
	if err != nil {
		t.Fatal(err)
	}
	if same.N != v.N {
		t.Fatal("decode into source engine did not hash-cons")
	}
}

func TestZeroAndBasisSerialisation(t *testing.T) {
	src := New()
	for _, v := range []VEdge{VZero(), src.ZeroState(3), src.BasisState(4, 11)} {
		var buf bytes.Buffer
		if err := WriteV(&buf, v); err != nil {
			t.Fatal(err)
		}
		dst := New()
		got, err := ReadV(&buf, dst)
		if err != nil {
			t.Fatal(err)
		}
		if v.N == vTerminal {
			if !got.IsZero() && got.W != v.W {
				t.Fatalf("terminal round trip %v vs %v", got, v)
			}
			continue
		}
		approxVec(t, got.ToVector(), v.ToVector(), "basis round trip")
	}
}

func TestMatrixSerialisationRoundTrip(t *testing.T) {
	src := New()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(4)
		m := src.GateDD(randUnitary(rng), n, rng.Intn(n), nil)
		if trial%2 == 0 {
			m = src.MulMat(m, src.GateDD(randUnitary(rng), n, rng.Intn(n), nil))
		}
		var buf bytes.Buffer
		if err := WriteM(&buf, m); err != nil {
			t.Fatal(err)
		}
		dst := New()
		got, err := ReadM(&buf, dst)
		if err != nil {
			t.Fatal(err)
		}
		approxMat(t, got.ToMatrix(), m.ToMatrix(), "matrix round trip")
	}
}

func TestSerialisationErrors(t *testing.T) {
	dst := New()
	if _, err := ReadV(strings.NewReader(""), dst); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadV(strings.NewReader("BOGUS___"), dst); err == nil {
		t.Error("bad magic accepted")
	}
	// Vector payload fed to the matrix reader must be rejected.
	var buf bytes.Buffer
	if err := WriteV(&buf, dst.ZeroState(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadM(bytes.NewReader(buf.Bytes()), dst); err == nil {
		t.Error("vector payload accepted by ReadM")
	}
	// Truncated payload.
	var buf2 bytes.Buffer
	if err := WriteV(&buf2, dst.ZeroState(2)); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()/2]
	if _, err := ReadV(bytes.NewReader(trunc), dst); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestSerialisationIsCompact(t *testing.T) {
	src := New()
	// 2^20 amplitudes, but a product state: the file must stay tiny.
	v := src.ZeroState(20)
	for q := 0; q < 20; q++ {
		v = src.MulVec(src.GateDD(gH, 20, q, nil), v)
	}
	var buf bytes.Buffer
	if err := WriteV(&buf, v); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 2048 {
		t.Fatalf("uniform 20-qubit state serialised to %d bytes", buf.Len())
	}
}
