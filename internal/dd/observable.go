package dd

import (
	"fmt"
	"math"
	"strings"
)

// PauliString is an observable of the form P_{n-1} ⊗ … ⊗ P_0 with each
// P_q ∈ {I, X, Y, Z}, written with qubit 0 rightmost (e.g. "ZIX" on
// three qubits puts Z on qubit 2 and X on qubit 0).
type PauliString string

// ParsePauliString validates the observable for an n-qubit system.
func ParsePauliString(s string, n int) (PauliString, error) {
	if len(s) != n {
		return "", fmt.Errorf("dd: Pauli string %q has %d letters, want %d", s, len(s), n)
	}
	for _, r := range strings.ToUpper(s) {
		switch r {
		case 'I', 'X', 'Y', 'Z':
		default:
			return "", fmt.Errorf("dd: invalid Pauli letter %q in %q", r, s)
		}
	}
	return PauliString(strings.ToUpper(s)), nil
}

var pauliMatrices = map[byte][2][2]complex128{
	'I': {{1, 0}, {0, 1}},
	'X': {{0, 1}, {1, 0}},
	'Y': {{0, complex(0, -1)}, {complex(0, 1), 0}},
	'Z': {{1, 0}, {0, -1}},
}

// ObservableDD builds the matrix DD of the Pauli string on n qubits.
// Pauli tensor products stay linear in n as DDs.
func (e *Engine) ObservableDD(p PauliString) MEdge {
	n := len(p)
	m := e.Identity(n)
	for q := 0; q < n; q++ {
		letter := p[n-1-q] // qubit 0 is the rightmost letter
		if letter == 'I' {
			continue
		}
		m = e.MulMat(e.GateDD(pauliMatrices[letter], n, q, nil), m)
	}
	return m
}

// Expectation returns <v|P|v> for a normalised state v; the result is
// real for Hermitian P up to numerical noise, so the real part is
// returned.
func (e *Engine) Expectation(v VEdge, p PauliString) (float64, error) {
	if len(p) != v.Qubits() {
		return 0, fmt.Errorf("dd: Expectation: observable spans %d qubits, state %d", len(p), v.Qubits())
	}
	if _, err := ParsePauliString(string(p), len(p)); err != nil {
		return 0, err
	}
	pv := e.MulVec(e.ObservableDD(p), v)
	return real(e.InnerProduct(v, pv)), nil
}

// LinearXEB returns the linear cross-entropy benchmarking fidelity of a
// set of sampled bitstrings against the ideal output distribution of
// state v — the figure of merit of the quantum-supremacy experiments
// the supremacy benchmarks model: F = 2^n · E[p(x_i)] − 1, which is 1
// in expectation for perfect sampling and 0 for uniform noise.
func LinearXEB(v VEdge, samples []uint64) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := v.Qubits()
	dim := math.Pow(2, float64(n))
	var sum float64
	for _, x := range samples {
		amp := v.Amplitude(x)
		sum += real(amp)*real(amp) + imag(amp)*imag(amp)
	}
	return dim*sum/float64(len(samples)) - 1
}
