package dd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"
)

// Cooperative abort layer. The recursive Add/Mul kernels probe
// abortCheck on every recursion step; when any armed abort source fires
// the running operation panics with an *AbortError after invalidating
// the compute caches. Because nodes are hash-consed atomically
// (makeVNode/makeMNode complete before the next probe), the unique
// tables and arenas are consistent between any two probes, so an abort
// leaves the engine canonical and immediately reusable — callers
// recover the panic, classify it with AsAbort, and may keep simulating
// on the same engine (see core.RunContext).
//
// Four sources can be armed independently:
//
//   - SetDeadline: wall-clock deadline (the paper's 2-CPU-hour budget).
//   - SetContext: context.Context cancellation for cooperative
//     shutdown of long multiplications.
//   - SetBudget: live-node budget fed by the unique-table occupancy;
//     the memory analogue of the deadline.
//   - InjectAbortAfter: fault injection for chaos tests, firing a
//     synthetic abort at an exact probe count (gated behind the
//     ddchaos build tag or DD_CHAOS=1).
//
// The memory-pressure signal (SetSoftBudget, see pressure.go) rides
// the same probe but never aborts: it only bands occupancy into the
// pressure Stats counters for core's degradation governor.

// AbortReason classifies why an engine operation aborted.
type AbortReason uint8

const (
	// AbortDeadline: the wall-clock deadline set via SetDeadline expired.
	AbortDeadline AbortReason = iota + 1
	// AbortCanceled: the context set via SetContext was canceled.
	AbortCanceled
	// AbortBudget: live nodes exceeded the budget set via SetBudget.
	AbortBudget
	// AbortInjected: a fault-injection probe armed via InjectAbortAfter.
	AbortInjected
)

// String returns the reason's short name.
func (r AbortReason) String() string {
	switch r {
	case AbortDeadline:
		return "deadline"
	case AbortCanceled:
		return "canceled"
	case AbortBudget:
		return "budget"
	case AbortInjected:
		return "injected"
	}
	return fmt.Sprintf("AbortReason(%d)", uint8(r))
}

// Sentinel errors carried by AbortError; match with errors.Is.
var (
	// ErrDeadlineExceeded is carried when a deadline set via SetDeadline
	// expires mid-operation.
	ErrDeadlineExceeded = errors.New("dd: engine deadline exceeded")
	// ErrBudgetExceeded is carried when the live-node budget set via
	// SetBudget is exceeded mid-operation.
	ErrBudgetExceeded = errors.New("dd: engine node budget exceeded")
	// ErrInjectedAbort is carried by synthetic fault-injection aborts.
	ErrInjectedAbort = errors.New("dd: injected abort")
)

// AbortError is the panic value raised from an abort probe. It is a
// controlled unwind, not a bug: recover it, classify via Reason, and
// keep using the engine.
type AbortError struct {
	Reason AbortReason
	// Cause is the underlying error: one of the dd sentinel errors, or
	// the context's Err() for AbortCanceled.
	Cause error
	// Probes is the value of the engine's probe counter at the abort
	// site (useful for reproducing the abort point in chaos tests).
	Probes uint64
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("dd: operation aborted (%s): %v", e.Reason, e.Cause)
}

// Unwrap exposes the underlying sentinel for errors.Is.
func (e *AbortError) Unwrap() error { return e.Cause }

// AsAbort extracts an *AbortError from a recovered panic value.
func AsAbort(recovered any) (*AbortError, bool) {
	a, ok := recovered.(*AbortError)
	return a, ok
}

// AbortedByDeadline reports whether a recovered panic value is an
// engine deadline abort. Retained for callers predating AsAbort.
func AbortedByDeadline(recovered any) bool {
	a, ok := AsAbort(recovered)
	return ok && a.Reason == AbortDeadline
}

// SetDeadline arms a wall-clock deadline checked inside the arithmetic
// recursions. When it expires, the running operation panics with an
// *AbortError (reason AbortDeadline); callers recover it and surface an
// error. A zero time disarms the deadline. The engine stays canonical
// and reusable after the abort.
func (e *Engine) SetDeadline(t time.Time) {
	e.deadline = t
	e.deadlineSkip = 0
	e.rearm()
}

// SetContext arms cooperative cancellation: once ctx is canceled, the
// running operation aborts with reason AbortCanceled. A nil context
// disarms. Contexts that can never be canceled (Done() == nil) are
// ignored.
func (e *Engine) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	e.ctx = ctx
	e.rearm()
}

// SetBudget arms a live-node budget: when the combined occupancy of the
// vector and matrix unique tables exceeds maxNodes mid-operation, the
// operation aborts with reason AbortBudget. The check runs on every
// probe, so the budget is enforced to within a handful of nodes of the
// cap. Note that occupancy includes garbage not yet
// collected — pair a budget with garbage collection (core.Run couples
// its GC threshold to Options.MaxNodes). Zero or negative disarms.
func (e *Engine) SetBudget(maxNodes int) {
	if maxNodes < 0 {
		maxNodes = 0
	}
	e.budget = maxNodes
	e.rearm()
}

// Budget returns the armed live-node budget (0 when disarmed).
func (e *Engine) Budget() int { return e.budget }

// Probes returns the cumulative abort-probe count. Probes advance only
// while at least one abort source is armed; chaos tests use the count
// of a reference run to place injected aborts at exact kernel sites.
func (e *Engine) Probes() uint64 { return e.probes }

// InjectAbortAfter arms the fault-injection hook: the n-th abort probe
// from now (n ≥ 1) panics with an *AbortError of the given reason
// (AbortInjected for a plain synthetic abort; AbortDeadline /
// AbortBudget / AbortCanceled to rehearse those failure paths at an
// exact kernel site). The hook disarms itself after firing. Fault
// injection is compiled out of release builds: it is active only under
// the ddchaos build tag or with DD_CHAOS=1 in the environment, and the
// call reports whether it armed anything.
func (e *Engine) InjectAbortAfter(n uint64, reason AbortReason) bool {
	if !chaosEnabled() || n == 0 {
		return false
	}
	e.injectAt = e.probes + n
	e.injectReason = reason
	e.rearm()
	return true
}

// chaosEnabled reports whether fault injection may arm: compiled in via
// the ddchaos build tag, or opted in per-process via DD_CHAOS=1.
func chaosEnabled() bool {
	return chaosBuild || os.Getenv("DD_CHAOS") == "1"
}

// rearm recomputes the fast-path armed flag from the abort sources.
func (e *Engine) rearm() {
	e.armed = !e.deadline.IsZero() || e.ctx != nil || e.budget > 0 ||
		e.injectAt != 0 || e.softBudget > 0
}

// abortProbeMask samples the slow checks (time syscall, context poll)
// once per 256 probes; fault injection and the budget stay exact.
const abortProbeMask = 0xff

// abortCheck is probed from the hot recursion paths. The single armed
// flag keeps the disarmed cost to one branch.
func (e *Engine) abortCheck() {
	if !e.armed {
		return
	}
	e.probes++
	if e.injectAt != 0 && e.probes >= e.injectAt {
		reason := e.injectReason
		e.injectAt = 0
		e.rearm()
		e.abort(reason, injectCause(reason))
	}
	// The budget compare is two integer loads — cheap enough to run on
	// every probe, making enforcement exact at probe granularity.
	if e.budget > 0 && e.vUnique.live+e.mUnique.live > e.budget {
		e.abort(AbortBudget, ErrBudgetExceeded)
	}
	// The soft budget shares the probe: band occupancy against the
	// precomputed watermarks (integer compares only — the hot path
	// stays allocation-free) into the pressure counters. Never aborts.
	if e.softBudget > 0 {
		switch live := e.vUnique.live + e.mUnique.live; {
		case live >= e.wmCrit:
			e.stats.PressureProbesCritical++
		case live >= e.wmHigh:
			e.stats.PressureProbesHigh++
		case live >= e.wmLow:
			e.stats.PressureProbesLow++
		}
	}
	if e.probes&abortProbeMask != 0 {
		return
	}
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			e.abort(AbortCanceled, err)
		}
	}
	// The deadline source caches a coarse clock tick: a time.Now() on
	// every unmasked probe puts a clock read on the multiply hot path,
	// which is measurable on deadline-bounded sweeps. After each real
	// read the probe is allowed to skip a count sized from the time
	// remaining, so distant deadlines cost a clock read only every few
	// hundred thousand probes while enforcement tightens back to every
	// masked batch (256 probes) as the deadline approaches.
	if !e.deadline.IsZero() {
		if e.deadlineSkip > 0 {
			e.deadlineSkip--
			return
		}
		e.stats.DeadlineClockReads++
		now := time.Now()
		if now.After(e.deadline) {
			e.abort(AbortDeadline, ErrDeadlineExceeded)
		}
		e.deadlineSkip = deadlineSkipFor(e.deadline.Sub(now))
	}
}

// deadlineSkipFor sizes the clock-read skip from the time remaining.
// The resulting worst-case overshoot (skip × 256 probes × probe cost)
// stays far below the bucket that allowed it.
func deadlineSkipFor(remaining time.Duration) uint32 {
	switch {
	case remaining > time.Second:
		return 255
	case remaining > 100*time.Millisecond:
		return 63
	case remaining > 10*time.Millisecond:
		return 7
	default:
		return 0
	}
}

// abort invalidates the compute caches (a single generation bump, so no
// partially-relevant entry survives into the post-abort engine) and
// unwinds with a typed panic. The unique tables and arenas need no
// repair: every node visible to them was fully constructed.
func (e *Engine) abort(reason AbortReason, cause error) {
	e.stats.Aborts++
	e.clearCaches()
	panic(&AbortError{Reason: reason, Cause: cause, Probes: e.probes})
}

// injectCause maps an injected reason to the sentinel a real abort of
// that reason would carry, so chaos rehearsals exercise the same error
// paths.
func injectCause(reason AbortReason) error {
	switch reason {
	case AbortDeadline:
		return ErrDeadlineExceeded
	case AbortBudget:
		return ErrBudgetExceeded
	case AbortCanceled:
		return context.Canceled
	default:
		return ErrInjectedAbort
	}
}
