package dd

import (
	"math/rand"
	"testing"
)

// TestPressureDisarmed: a fresh engine reports no pressure and a zero
// budget, regardless of how many nodes are live.
func TestPressureDisarmed(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	_ = e.FromVector(randState(rng, 10))
	p := e.Pressure()
	if p.Level != PressureNone || p.Budget != 0 || p.Occupancy != 0 {
		t.Fatalf("disarmed engine reports pressure: %+v", p)
	}
	if e.SoftBudget() != 0 {
		t.Fatalf("SoftBudget() = %d on a fresh engine", e.SoftBudget())
	}
}

// TestPressureWatermarkBands drives one live set through the default
// 70/85/95% bands by re-arming the soft budget around it.
func TestPressureWatermarkBands(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(2))
	v := e.FromVector(randState(rng, 10))
	e.GarbageCollect([]VEdge{v}, nil)
	live := e.VNodeCount() + e.MNodeCount()
	if live < 40 {
		t.Fatalf("need a non-trivial live set, got %d nodes", live)
	}
	cases := []struct {
		name   string
		budget int
		want   PressureLevel
	}{
		{"half", live * 2, PressureNone},             // occupancy 0.50
		{"threequarters", live * 4 / 3, PressureLow}, // occupancy 0.75
		{"ninety", live * 10 / 9, PressureHigh},      // occupancy 0.90
		{"full", live, PressureCritical},             // occupancy 1.00
	}
	for _, tc := range cases {
		e.SetSoftBudget(tc.budget, Watermarks{})
		p := e.Pressure()
		if p.Level != tc.want {
			t.Errorf("%s: budget %d live %d: level %v, want %v",
				tc.name, tc.budget, p.Live, p.Level, tc.want)
		}
		if p.Live != live || p.Budget != tc.budget {
			t.Errorf("%s: snapshot live/budget %d/%d, want %d/%d",
				tc.name, p.Live, p.Budget, live, tc.budget)
		}
	}
	e.SetSoftBudget(0, Watermarks{})
	if p := e.Pressure(); p.Level != PressureNone || p.Budget != 0 {
		t.Fatalf("disarm did not clear the signal: %+v", p)
	}
}

// TestWatermarksValid pins the validation rule: zero value means
// defaults; otherwise strictly increasing within (0, 1].
func TestWatermarksValid(t *testing.T) {
	cases := []struct {
		w  Watermarks
		ok bool
	}{
		{Watermarks{}, true},
		{DefaultWatermarks(), true},
		{Watermarks{Low: 0.5, High: 0.6, Critical: 0.7}, true},
		{Watermarks{Low: 0.9, High: 0.6, Critical: 0.7}, false}, // not increasing
		{Watermarks{Low: 0.5, High: 0.5, Critical: 0.7}, false}, // not strict
		{Watermarks{Low: 0, High: 0.6, Critical: 0.7}, false},   // low unset
		{Watermarks{Low: 0.5, High: 0.6, Critical: 1.2}, false}, // above 1
	}
	for _, tc := range cases {
		if got := tc.w.Valid(); got != tc.ok {
			t.Errorf("Valid(%+v) = %v, want %v", tc.w, got, tc.ok)
		}
	}
}

// TestInvalidWatermarksFallBack: arming with invalid fractions selects
// the defaults rather than banding nonsense.
func TestInvalidWatermarksFallBack(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(3))
	v := e.FromVector(randState(rng, 10))
	e.GarbageCollect([]VEdge{v}, nil)
	live := e.VNodeCount() + e.MNodeCount()
	e.SetSoftBudget(live*2, Watermarks{Low: 2, High: 1, Critical: 0})
	if p := e.Pressure(); p.Level != PressureNone {
		t.Fatalf("occupancy 0.5 under default fallback should be none, got %v", p.Level)
	}
	e.SetSoftBudget(live, Watermarks{Low: 2, High: 1, Critical: 0})
	if p := e.Pressure(); p.Level != PressureCritical {
		t.Fatalf("occupancy 1.0 under default fallback should be critical, got %v", p.Level)
	}
}

// TestPressureProbeCounters: with a soft budget armed below the live
// set, kernel work ticks the banded probe counters — the signal rides
// the existing abort probe, so these counters also prove the probe path
// sees the soft budget at all.
func TestPressureProbeCounters(t *testing.T) {
	e := New()
	const n = 10
	rng := rand.New(rand.NewSource(4))
	v := e.FromVector(randState(rng, n))
	e.SetSoftBudget(1, Watermarks{}) // any live node is critical occupancy
	g := e.GateDD(randUnitary(rng), n, 3, nil)
	v = e.MulVec(g, v)
	_ = v
	st := e.Stats()
	if st.PressureProbesCritical == 0 {
		t.Fatalf("no critical pressure probes recorded: %+v", st)
	}
}

// TestInjectPressure: the chaos override arms only under DD_CHAOS and
// then floors the reported level, with or without a soft budget.
func TestInjectPressure(t *testing.T) {
	e := New()
	if e.InjectPressure(PressureCritical) {
		t.Skip("built with the ddchaos tag; the no-chaos half does not apply")
	}
	t.Setenv("DD_CHAOS", "1")
	if !e.InjectPressure(PressureHigh) {
		t.Fatal("InjectPressure refused under DD_CHAOS=1")
	}
	if p := e.Pressure(); p.Level != PressureHigh {
		t.Fatalf("injected high, Pressure() = %v", p.Level)
	}
	// A real signal above the injection wins (max, not override).
	rng := rand.New(rand.NewSource(5))
	v := e.FromVector(randState(rng, 10))
	e.GarbageCollect([]VEdge{v}, nil)
	e.SetSoftBudget(e.VNodeCount()+e.MNodeCount(), Watermarks{})
	if p := e.Pressure(); p.Level != PressureCritical {
		t.Fatalf("occupancy 1.0 with injected high should read critical, got %v", p.Level)
	}
	e.SetSoftBudget(0, Watermarks{})
	e.InjectPressure(PressureNone)
	if p := e.Pressure(); p.Level != PressureNone {
		t.Fatalf("cleared injection still reports %v", p.Level)
	}
}

// TestPressureReclaimRatio: after a collection that frees garbage, the
// snapshot reports how much of the pre-GC live set it reclaimed.
func TestPressureReclaimRatio(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(6))
	keep := e.FromVector(randState(rng, 10))
	for i := 0; i < 8; i++ {
		_ = e.FromVector(randState(rng, 10)) // garbage
	}
	e.GarbageCollect([]VEdge{keep}, nil)
	p := e.Pressure()
	if p.ReclaimRatio <= 0 || p.ReclaimRatio > 1 {
		t.Fatalf("reclaim ratio %v out of (0,1] after collecting garbage", p.ReclaimRatio)
	}
}

// BenchmarkMulVecSoftBudget is BenchmarkMulVec with the pressure signal
// armed, so every abort probe also runs the watermark banding. CI greps
// this benchmark for 0 allocs/op: the banding is integer compares only
// and must not cost the hot path its allocation-free property.
func BenchmarkMulVecSoftBudget(b *testing.B) {
	e := New()
	e.SetSoftBudget(200_000, Watermarks{})
	const n = 12
	rng := rand.New(rand.NewSource(42))
	gates := make([]MEdge, 64)
	for i := range gates {
		tgt := rng.Intn(n)
		var controls []Control
		if c := rng.Intn(n); c != tgt {
			controls = append(controls, Control{Qubit: c, Negative: rng.Intn(2) == 0})
		}
		gates[i] = e.GateDD(randUnitary(rng), n, tgt, controls)
	}
	v := e.ZeroState(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = e.MulVec(gates[i&63], v)
		if e.VNodeCount()+e.MNodeCount() > 150_000 {
			e.GarbageCollect([]VEdge{v}, gates)
		}
	}
}
