package dd

import (
	"fmt"

	"repro/internal/cnum"
)

// Add returns the element-wise sum of two vector diagrams (Fig. 4 of the
// paper). Both operands must span the same variables.
func (e *Engine) Add(a, b VEdge) VEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	return e.addV(a, b)
}

func (e *Engine) addV(a, b VEdge) VEdge {
	e.abortCheck()
	e.stats.AddRecursions++
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.N == b.N {
		w := e.weights.Lookup(a.W + b.W)
		if w == cnum.Zero {
			return VZero()
		}
		return VEdge{W: w, N: a.N}
	}
	if a.IsTerminal() && b.IsTerminal() {
		w := e.weights.Lookup(a.W + b.W)
		if w == cnum.Zero {
			return VZero()
		}
		return VEdge{W: w, N: vTerminal}
	}
	if a.N.V != b.N.V {
		panic(fmt.Sprintf("dd: Add on mismatched levels %d vs %d", a.N.V, b.N.V))
	}
	// Canonical operand order: addition commutes.
	if a.N.id > b.N.id {
		a, b = b, a
	}
	aW := e.weights.Lookup(a.W)
	bW := e.weights.Lookup(b.W)
	idx := mixW(mixW(mix(a.N.id, b.N.id), aW), bW) & cacheMask
	e.stats.AddV.Lookups++
	if s := &e.addVTab[idx]; s.gen == e.cacheGen && s.aN == a.N.id && s.bN == b.N.id && s.aW == aW && s.bW == bW {
		e.stats.AddV.Hits++
		return s.r
	}
	var children [2]VEdge
	for i := 0; i < 2; i++ {
		ca := VEdge{W: aW * a.N.E[i].W, N: a.N.E[i].N}
		cb := VEdge{W: bW * b.N.E[i].W, N: b.N.E[i].N}
		children[i] = e.addV(ca, cb)
	}
	r := e.makeVNode(a.N.V, children[0], children[1])
	e.addVTab[idx] = addVSlot{aN: a.N.id, bN: b.N.id, aW: aW, bW: bW, r: r, gen: e.cacheGen}
	return r
}

// AddM returns the element-wise sum of two matrix diagrams.
func (e *Engine) AddM(a, b MEdge) MEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	return e.addM(a, b)
}

func (e *Engine) addM(a, b MEdge) MEdge {
	e.abortCheck()
	e.stats.AddRecursions++
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.N == b.N {
		w := e.weights.Lookup(a.W + b.W)
		if w == cnum.Zero {
			return MZero()
		}
		return MEdge{W: w, N: a.N}
	}
	if a.IsTerminal() && b.IsTerminal() {
		w := e.weights.Lookup(a.W + b.W)
		if w == cnum.Zero {
			return MZero()
		}
		return MEdge{W: w, N: mTerminal}
	}
	if a.N.V != b.N.V {
		panic(fmt.Sprintf("dd: AddM on mismatched levels %d vs %d", a.N.V, b.N.V))
	}
	if a.N.id > b.N.id {
		a, b = b, a
	}
	aW := e.weights.Lookup(a.W)
	bW := e.weights.Lookup(b.W)
	idx := mixW(mixW(mix(a.N.id, b.N.id), aW), bW) & cacheMask
	e.stats.AddM.Lookups++
	if s := &e.addMTab[idx]; s.gen == e.cacheGen && s.aN == a.N.id && s.bN == b.N.id && s.aW == aW && s.bW == bW {
		e.stats.AddM.Hits++
		return s.r
	}
	var children [4]MEdge
	for i := 0; i < 4; i++ {
		ca := MEdge{W: aW * a.N.E[i].W, N: a.N.E[i].N}
		cb := MEdge{W: bW * b.N.E[i].W, N: b.N.E[i].N}
		children[i] = e.addM(ca, cb)
	}
	r := e.makeMNode(a.N.V, children)
	e.addMTab[idx] = addMSlot{aN: a.N.id, bN: b.N.id, aW: aW, bW: bW, r: r, gen: e.cacheGen}
	return r
}

// MulVec returns the matrix-vector product m×v (Fig. 3 of the paper, a
// single "simulation step"). The operands must span the same variables.
func (e *Engine) MulVec(m MEdge, v VEdge) VEdge {
	e.stats.MatVecMuls++
	return e.mulVec(m, v)
}

func (e *Engine) mulVec(m MEdge, v VEdge) VEdge {
	e.abortCheck()
	e.stats.MulRecursions++
	if m.IsZero() || v.IsZero() {
		return VZero()
	}
	// Top weights factor out multiplicatively: cache on nodes only.
	w := e.weights.Lookup(m.W * v.W)
	if m.IsTerminal() { // then v is terminal too (same span)
		return VEdge{W: w, N: vTerminal}
	}
	if m.N.V != v.N.V {
		panic(fmt.Sprintf("dd: MulVec on mismatched levels %d vs %d", m.N.V, v.N.V))
	}
	idx := mix(m.N.id, v.N.id) & cacheMask
	e.stats.MulMV.Lookups++
	if s := &e.mulMVTab[idx]; s.gen == e.cacheGen && s.m == m.N.id && s.v == v.N.id {
		e.stats.MulMV.Hits++
		return e.scaleV(s.r, w)
	}
	var children [2]VEdge
	for row := 0; row < 2; row++ {
		var sum VEdge = VZero()
		for col := 0; col < 2; col++ {
			p := e.mulVec(m.N.E[2*row+col], v.N.E[col])
			sum = e.addV(sum, p)
		}
		children[row] = sum
	}
	r := e.makeVNode(m.N.V, children[0], children[1])
	e.mulMVTab[idx] = mulMVSlot{m: m.N.id, v: v.N.id, r: r, gen: e.cacheGen}
	return e.scaleV(r, w)
}

// MulMat returns the matrix-matrix product a×b (a applied after b, i.e.
// (a×b)·x == a·(b·x)). This is the operation the paper's combination
// strategies spend to save matrix-vector multiplications.
func (e *Engine) MulMat(a, b MEdge) MEdge {
	e.stats.MatMatMuls++
	return e.mulMat(a, b)
}

func (e *Engine) mulMat(a, b MEdge) MEdge {
	e.abortCheck()
	e.stats.MulRecursions++
	if a.IsZero() || b.IsZero() {
		return MZero()
	}
	w := e.weights.Lookup(a.W * b.W)
	if a.IsTerminal() {
		return MEdge{W: w, N: mTerminal}
	}
	if a.N.V != b.N.V {
		panic(fmt.Sprintf("dd: MulMat on mismatched levels %d vs %d", a.N.V, b.N.V))
	}
	idx := mix(a.N.id, b.N.id) & cacheMask
	e.stats.MulMM.Lookups++
	if s := &e.mulMMTab[idx]; s.gen == e.cacheGen && s.a == a.N.id && s.b == b.N.id {
		e.stats.MulMM.Hits++
		return e.scaleM(s.r, w)
	}
	var children [4]MEdge
	for row := 0; row < 2; row++ {
		for col := 0; col < 2; col++ {
			var sum MEdge = MZero()
			for k := 0; k < 2; k++ {
				p := e.mulMat(a.N.E[2*row+k], b.N.E[2*k+col])
				sum = e.addM(sum, p)
			}
			children[2*row+col] = sum
		}
	}
	r := e.makeMNode(a.N.V, children)
	e.mulMMTab[idx] = mulMMSlot{a: a.N.id, b: b.N.id, r: r, gen: e.cacheGen}
	return e.scaleM(r, w)
}

// scaleV multiplies a vector edge by a scalar.
func (e *Engine) scaleV(v VEdge, w complex128) VEdge {
	if w == cnum.One {
		return v
	}
	nw := e.weights.Lookup(v.W * w)
	if nw == cnum.Zero {
		return VZero()
	}
	return VEdge{W: nw, N: v.N}
}

// scaleM multiplies a matrix edge by a scalar.
func (e *Engine) scaleM(m MEdge, w complex128) MEdge {
	if w == cnum.One {
		return m
	}
	nw := e.weights.Lookup(m.W * w)
	if nw == cnum.Zero {
		return MZero()
	}
	return MEdge{W: nw, N: m.N}
}

// ScaleV multiplies a vector diagram by a scalar.
func (e *Engine) ScaleV(v VEdge, w complex128) VEdge { return e.scaleV(v, w) }

// ScaleM multiplies a matrix diagram by a scalar.
func (e *Engine) ScaleM(m MEdge, w complex128) MEdge { return e.scaleM(m, w) }

// KronV stacks the diagram hi on top of lo: the result represents
// hi ⊗ lo, with hi's variables re-labelled above lo's.
func (e *Engine) KronV(hi, lo VEdge) VEdge {
	shift := int32(lo.Qubits())
	return e.kronV(hi, lo, shift)
}

func (e *Engine) kronV(hi, lo VEdge, shift int32) VEdge {
	if hi.IsZero() || lo.IsZero() {
		return VZero()
	}
	if hi.IsTerminal() {
		return e.scaleV(lo, hi.W)
	}
	e0 := e.kronV(hi.N.E[0], lo, shift)
	e1 := e.kronV(hi.N.E[1], lo, shift)
	r := e.makeVNode(hi.N.V+shift, e0, e1)
	return e.scaleV(r, hi.W)
}

// KronM stacks the matrix diagram hi on top of lo, yielding hi ⊗ lo.
func (e *Engine) KronM(hi, lo MEdge) MEdge {
	shift := int32(lo.Qubits())
	return e.kronM(hi, lo, shift)
}

func (e *Engine) kronM(hi, lo MEdge, shift int32) MEdge {
	if hi.IsZero() || lo.IsZero() {
		return MZero()
	}
	if hi.IsTerminal() {
		return e.scaleM(lo, hi.W)
	}
	var children [4]MEdge
	for i := range children {
		children[i] = e.kronM(hi.N.E[i], lo, shift)
	}
	r := e.makeMNode(hi.N.V+shift, children)
	return e.scaleM(r, hi.W)
}

// ConjTranspose returns the conjugate transpose (adjoint) of m.
func (e *Engine) ConjTranspose(m MEdge) MEdge {
	if m.IsZero() {
		return m
	}
	if m.IsTerminal() {
		return MEdge{W: conj(m.W), N: mTerminal}
	}
	var children [4]MEdge
	children[0] = e.ConjTranspose(m.N.E[0])
	children[1] = e.ConjTranspose(m.N.E[2]) // swap off-diagonal quadrants
	children[2] = e.ConjTranspose(m.N.E[1])
	children[3] = e.ConjTranspose(m.N.E[3])
	r := e.makeMNode(m.N.V, children)
	return e.scaleM(r, conj(m.W))
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// InnerProduct returns <a|b> = Σ_i conj(a_i)·b_i. The recursion
// memoises on node pairs through an engine-owned scratch table (the
// per-pair sums are weight-independent, so entries stay valid across
// calls until the next GC) — no allocation on the hot path.
func (e *Engine) InnerProduct(a, b VEdge) complex128 {
	return e.innerProduct(a, b)
}

func (e *Engine) innerProduct(a, b VEdge) complex128 {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	w := conj(a.W) * b.W
	if a.IsTerminal() {
		return w
	}
	idx := mix(a.N.id, b.N.id) & scratchMask
	if s := &e.ipTab[idx]; s.gen == e.cacheGen && s.aN == a.N.id && s.bN == b.N.id {
		return w * s.val
	}
	sub := e.innerProduct(a.N.E[0], b.N.E[0]) + e.innerProduct(a.N.E[1], b.N.E[1])
	e.ipTab[idx] = ipSlot{aN: a.N.id, bN: b.N.id, val: sub, gen: e.cacheGen}
	return w * sub
}

// Fidelity returns |<a|b>|² for two (normalised) states.
func (e *Engine) Fidelity(a, b VEdge) float64 {
	return cnum.Abs2(e.InnerProduct(a, b))
}

// Trace returns the trace of the matrix diagram (sum of diagonal
// entries) via memoised recursion — the primitive behind equivalence
// checking of combined operation matrices. Like InnerProduct, the memo
// is an engine-owned scratch table valid until the next GC, so repeated
// traces over shared structure are allocation-free and cheap.
func (e *Engine) Trace(m MEdge) complex128 {
	return m.W * e.trace(m.N)
}

func (e *Engine) trace(n *MNode) complex128 {
	if n == mTerminal {
		return 1
	}
	idx := mix(n.id, 0x9e3779b9) & scratchMask
	if s := &e.trTab[idx]; s.gen == e.cacheGen && s.n == n.id {
		return s.val
	}
	v := n.E[0].W*e.trace(n.E[0].N) + n.E[3].W*e.trace(n.E[3].N)
	e.trTab[idx] = trSlot{n: n.id, val: v, gen: e.cacheGen}
	return v
}
