package dd

import (
	"fmt"

	"repro/internal/cnum"
)

// Add returns the element-wise sum of two vector diagrams (Fig. 4 of the
// paper). Both operands must span the same variables.
func (e *Engine) Add(a, b VEdge) VEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	return e.addV(a, b)
}

func (e *Engine) addV(a, b VEdge) VEdge {
	e.abortCheck()
	e.stats.AddRecursions++
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.N == b.N {
		w := e.weights.Lookup(a.W + b.W)
		if w == cnum.Zero {
			return VZero()
		}
		return VEdge{W: w, N: a.N}
	}
	if a.IsTerminal() && b.IsTerminal() {
		w := e.weights.Lookup(a.W + b.W)
		if w == cnum.Zero {
			return VZero()
		}
		return VEdge{W: w, N: vTerminal}
	}
	if a.N.V != b.N.V {
		panic(fmt.Sprintf("dd: Add on mismatched levels %d vs %d", a.N.V, b.N.V))
	}
	// Canonical operand order: addition commutes.
	if a.N.id > b.N.id {
		a, b = b, a
	}
	aW := e.weights.Lookup(a.W)
	bW := e.weights.Lookup(b.W)
	idx := mixW(mixW(mix(a.N.id, b.N.id), aW), bW) & cacheMask
	e.stats.AddV.Lookups++
	if s := &e.addVTab[idx]; s.gen == e.cacheGen && s.aN == a.N.id && s.bN == b.N.id && s.aW == aW && s.bW == bW {
		e.stats.AddV.Hits++
		return s.r
	}
	var children [2]VEdge
	for i := 0; i < 2; i++ {
		ca := VEdge{W: aW * a.N.E[i].W, N: a.N.E[i].N}
		cb := VEdge{W: bW * b.N.E[i].W, N: b.N.E[i].N}
		children[i] = e.addV(ca, cb)
	}
	r := e.makeVNode(a.N.V, children[0], children[1])
	e.addVTab[idx] = addVSlot{aN: a.N.id, bN: b.N.id, aW: aW, bW: bW, r: r, gen: e.cacheGen}
	return r
}

// AddM returns the element-wise sum of two matrix diagrams.
func (e *Engine) AddM(a, b MEdge) MEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	return e.addM(a, b)
}

func (e *Engine) addM(a, b MEdge) MEdge {
	e.abortCheck()
	e.stats.AddRecursions++
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.N == b.N {
		w := e.weights.Lookup(a.W + b.W)
		if w == cnum.Zero {
			return MZero()
		}
		return MEdge{W: w, N: a.N}
	}
	if a.IsTerminal() && b.IsTerminal() {
		w := e.weights.Lookup(a.W + b.W)
		if w == cnum.Zero {
			return MZero()
		}
		return MEdge{W: w, N: mTerminal}
	}
	if a.N.V != b.N.V {
		panic(fmt.Sprintf("dd: AddM on mismatched levels %d vs %d", a.N.V, b.N.V))
	}
	if a.N.id > b.N.id {
		a, b = b, a
	}
	aW := e.weights.Lookup(a.W)
	bW := e.weights.Lookup(b.W)
	idx := mixW(mixW(mix(a.N.id, b.N.id), aW), bW) & cacheMask
	e.stats.AddM.Lookups++
	if s := &e.addMTab[idx]; s.gen == e.cacheGen && s.aN == a.N.id && s.bN == b.N.id && s.aW == aW && s.bW == bW {
		e.stats.AddM.Hits++
		return s.r
	}
	var children [4]MEdge
	for i := 0; i < 4; i++ {
		ca := MEdge{W: aW * a.N.E[i].W, N: a.N.E[i].N}
		cb := MEdge{W: bW * b.N.E[i].W, N: b.N.E[i].N}
		children[i] = e.addM(ca, cb)
	}
	r := e.makeMNode(a.N.V, children)
	e.addMTab[idx] = addMSlot{aN: a.N.id, bN: b.N.id, aW: aW, bW: bW, r: r, gen: e.cacheGen}
	return r
}

// MulVec returns the matrix-vector product m×v (Fig. 3 of the paper, a
// single "simulation step"). The operands must span the same variables.
func (e *Engine) MulVec(m MEdge, v VEdge) VEdge {
	e.stats.MatVecMuls++
	return e.mulVec(m, v)
}

func (e *Engine) mulVec(m MEdge, v VEdge) VEdge {
	e.abortCheck()
	e.stats.MulRecursions++
	if m.IsZero() || v.IsZero() {
		return VZero()
	}
	// Top weights factor out multiplicatively: cache on nodes only.
	w := e.weights.Lookup(m.W * v.W)
	if m.IsTerminal() { // then v is terminal too (same span)
		return VEdge{W: w, N: vTerminal}
	}
	if m.N.V != v.N.V {
		panic(fmt.Sprintf("dd: MulVec on mismatched levels %d vs %d", m.N.V, v.N.V))
	}
	// Identity short-circuit: an edge into an identity node represents
	// m.W·I, so the product is v scaled by m.W — the exact canonical
	// edge the recursion below would rebuild (the identity rows
	// reproduce v.N's halves unchanged, and re-interning a canonical
	// node is the node itself), just without walking m.N.V+1 levels.
	if m.N.isIdentity && !e.noIdentitySkip {
		e.stats.IdentitySkipsMV++
		e.stats.IdentitySkipLevels += uint64(m.N.V) + 1
		return e.scaleV(v, m.W)
	}
	idx := mix(m.N.id, v.N.id) & cacheMask
	e.stats.MulMV.Lookups++
	if s := &e.mulMVTab[idx]; s.gen == e.cacheGen && s.m == m.N.id && s.v == v.N.id {
		e.stats.MulMV.Hits++
		return e.scaleV(s.r, w)
	}
	var children [2]VEdge
	for row := 0; row < 2; row++ {
		var sum VEdge = VZero()
		for col := 0; col < 2; col++ {
			// Zero quadrants contribute nothing; gate padding guarantees
			// plenty of them (every non-target level of a gate DD has
			// zero off-diagonals). Unconditional: addV(sum, 0) == sum, so
			// skipping is bit-identical to recursing.
			if m.N.E[2*row+col].IsZero() || v.N.E[col].IsZero() {
				continue
			}
			p := e.mulVec(m.N.E[2*row+col], v.N.E[col])
			sum = e.addV(sum, p)
		}
		children[row] = sum
	}
	r := e.makeVNode(m.N.V, children[0], children[1])
	e.mulMVTab[idx] = mulMVSlot{m: m.N.id, v: v.N.id, r: r, gen: e.cacheGen}
	return e.scaleV(r, w)
}

// MulMat returns the matrix-matrix product a×b (a applied after b, i.e.
// (a×b)·x == a·(b·x)). This is the operation the paper's combination
// strategies spend to save matrix-vector multiplications.
func (e *Engine) MulMat(a, b MEdge) MEdge {
	e.stats.MatMatMuls++
	return e.mulMat(a, b)
}

func (e *Engine) mulMat(a, b MEdge) MEdge {
	e.abortCheck()
	e.stats.MulRecursions++
	if a.IsZero() || b.IsZero() {
		return MZero()
	}
	w := e.weights.Lookup(a.W * b.W)
	if a.IsTerminal() {
		return MEdge{W: w, N: mTerminal}
	}
	if a.N.V != b.N.V {
		panic(fmt.Sprintf("dd: MulMat on mismatched levels %d vs %d", a.N.V, b.N.V))
	}
	// Identity short-circuits: (a.W·I)×b = b scaled by a.W and
	// a×(b.W·I) = a scaled by b.W, both the exact canonical edges the
	// recursion would rebuild. This is the combination strategies' case:
	// accumulated operation matrices are mostly identity structure.
	if !e.noIdentitySkip {
		if a.N.isIdentity {
			e.stats.IdentitySkipsMM++
			e.stats.IdentitySkipLevels += uint64(a.N.V) + 1
			return e.scaleM(b, a.W)
		}
		if b.N.isIdentity {
			e.stats.IdentitySkipsMM++
			e.stats.IdentitySkipLevels += uint64(b.N.V) + 1
			return e.scaleM(a, b.W)
		}
	}
	idx := mix(a.N.id, b.N.id) & cacheMask
	e.stats.MulMM.Lookups++
	if s := &e.mulMMTab[idx]; s.gen == e.cacheGen && s.a == a.N.id && s.b == b.N.id {
		e.stats.MulMM.Hits++
		return e.scaleM(s.r, w)
	}
	var children [4]MEdge
	for row := 0; row < 2; row++ {
		for col := 0; col < 2; col++ {
			var sum MEdge = MZero()
			for k := 0; k < 2; k++ {
				// Skip zero partial products (see mulVec): bit-identical,
				// since addM(sum, 0) == sum.
				if a.N.E[2*row+k].IsZero() || b.N.E[2*k+col].IsZero() {
					continue
				}
				p := e.mulMat(a.N.E[2*row+k], b.N.E[2*k+col])
				sum = e.addM(sum, p)
			}
			children[2*row+col] = sum
		}
	}
	r := e.makeMNode(a.N.V, children)
	e.mulMMTab[idx] = mulMMSlot{a: a.N.id, b: b.N.id, r: r, gen: e.cacheGen}
	return e.scaleM(r, w)
}

// scaleV multiplies a vector edge by a scalar.
func (e *Engine) scaleV(v VEdge, w complex128) VEdge {
	if w == cnum.One {
		return v
	}
	nw := e.weights.Lookup(v.W * w)
	if nw == cnum.Zero {
		return VZero()
	}
	return VEdge{W: nw, N: v.N}
}

// scaleM multiplies a matrix edge by a scalar.
func (e *Engine) scaleM(m MEdge, w complex128) MEdge {
	if w == cnum.One {
		return m
	}
	nw := e.weights.Lookup(m.W * w)
	if nw == cnum.Zero {
		return MZero()
	}
	return MEdge{W: nw, N: m.N}
}

// ScaleV multiplies a vector diagram by a scalar.
func (e *Engine) ScaleV(v VEdge, w complex128) VEdge { return e.scaleV(v, w) }

// ScaleM multiplies a matrix diagram by a scalar.
func (e *Engine) ScaleM(m MEdge, w complex128) MEdge { return e.scaleM(m, w) }

// KronV stacks the diagram hi on top of lo: the result represents
// hi ⊗ lo, with hi's variables re-labelled above lo's.
func (e *Engine) KronV(hi, lo VEdge) VEdge {
	shift := int32(lo.Qubits())
	return e.kronV(hi, lo, shift)
}

func (e *Engine) kronV(hi, lo VEdge, shift int32) VEdge {
	e.abortCheck()
	if hi.IsZero() || lo.IsZero() {
		return VZero()
	}
	if hi.IsTerminal() {
		return e.scaleV(lo, hi.W)
	}
	e0 := e.kronV(hi.N.E[0], lo, shift)
	e1 := e.kronV(hi.N.E[1], lo, shift)
	r := e.makeVNode(hi.N.V+shift, e0, e1)
	return e.scaleV(r, hi.W)
}

// KronM stacks the matrix diagram hi on top of lo, yielding hi ⊗ lo.
func (e *Engine) KronM(hi, lo MEdge) MEdge {
	shift := int32(lo.Qubits())
	return e.kronM(hi, lo, shift)
}

func (e *Engine) kronM(hi, lo MEdge, shift int32) MEdge {
	e.abortCheck()
	if hi.IsZero() || lo.IsZero() {
		return MZero()
	}
	if hi.IsTerminal() {
		return e.scaleM(lo, hi.W)
	}
	var children [4]MEdge
	for i := range children {
		children[i] = e.kronM(hi.N.E[i], lo, shift)
	}
	r := e.makeMNode(hi.N.V+shift, children)
	return e.scaleM(r, hi.W)
}

// ConjTranspose returns the conjugate transpose (adjoint) of m. The
// recursion memoises per node through an engine-owned scratch table
// (adjoints are weight-independent below the root, so entries stay
// valid until the next GC) and probes the abort layer — without the
// memo it is exponential on shared DAGs, exactly the diagrams the
// combination strategies build.
func (e *Engine) ConjTranspose(m MEdge) MEdge {
	if m.IsZero() {
		return m
	}
	return e.scaleM(e.conjT(m.N), conj(m.W))
}

// conjT returns the adjoint of the sub-diagram under n (weight one into
// n), memoised on the node id.
func (e *Engine) conjT(n *MNode) MEdge {
	if n == mTerminal {
		return MOne()
	}
	e.abortCheck()
	// The identity is self-adjoint; re-interning it would rebuild the
	// same node, so returning it directly is exact (and unconditional —
	// this is a canonical-form fact, not a gated optimisation).
	if n.isIdentity {
		return MEdge{W: cnum.One, N: n}
	}
	idx := mix(n.id, 0x85ebca77) & scratchMask
	if s := &e.ctTab[idx]; s.gen == e.cacheGen && s.n == n.id {
		return s.r
	}
	var children [4]MEdge
	children[0] = e.scaleM(e.conjT(n.E[0].N), conj(n.E[0].W))
	children[1] = e.scaleM(e.conjT(n.E[2].N), conj(n.E[2].W)) // swap off-diagonal quadrants
	children[2] = e.scaleM(e.conjT(n.E[1].N), conj(n.E[1].W))
	children[3] = e.scaleM(e.conjT(n.E[3].N), conj(n.E[3].W))
	r := e.makeMNode(n.V, children)
	e.ctTab[idx] = ctSlot{n: n.id, r: r, gen: e.cacheGen}
	return r
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// InnerProduct returns <a|b> = Σ_i conj(a_i)·b_i. The recursion
// memoises on node pairs through an engine-owned scratch table (the
// per-pair sums are weight-independent, so entries stay valid across
// calls until the next GC) — no allocation on the hot path.
func (e *Engine) InnerProduct(a, b VEdge) complex128 {
	return e.innerProduct(a, b)
}

func (e *Engine) innerProduct(a, b VEdge) complex128 {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	w := conj(a.W) * b.W
	if a.IsTerminal() {
		return w
	}
	idx := mix(a.N.id, b.N.id) & scratchMask
	if s := &e.ipTab[idx]; s.gen == e.cacheGen && s.aN == a.N.id && s.bN == b.N.id {
		return w * s.val
	}
	sub := e.innerProduct(a.N.E[0], b.N.E[0]) + e.innerProduct(a.N.E[1], b.N.E[1])
	e.ipTab[idx] = ipSlot{aN: a.N.id, bN: b.N.id, val: sub, gen: e.cacheGen}
	return w * sub
}

// Fidelity returns |<a|b>|² for two (normalised) states.
func (e *Engine) Fidelity(a, b VEdge) float64 {
	return cnum.Abs2(e.InnerProduct(a, b))
}

// Trace returns the trace of the matrix diagram (sum of diagonal
// entries) via memoised recursion — the primitive behind equivalence
// checking of combined operation matrices. Like InnerProduct, the memo
// is an engine-owned scratch table valid until the next GC, so repeated
// traces over shared structure are allocation-free and cheap.
func (e *Engine) Trace(m MEdge) complex128 {
	return m.W * e.trace(m.N)
}

func (e *Engine) trace(n *MNode) complex128 {
	if n == mTerminal {
		return 1
	}
	idx := mix(n.id, 0x9e3779b9) & scratchMask
	if s := &e.trTab[idx]; s.gen == e.cacheGen && s.n == n.id {
		return s.val
	}
	v := n.E[0].W*e.trace(n.E[0].N) + n.E[3].W*e.trace(n.E[3].N)
	e.trTab[idx] = trSlot{n: n.id, val: v, gen: e.cacheGen}
	return v
}
