package dd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialisation of decision diagrams. Nodes are written in
// topological order (children before parents) so shared sub-diagrams
// are stored once; decoding rebuilds through the target engine's
// unique tables, so the result is canonical there. The encoding is
// little-endian with varint node counts:
//
//	magic ("DDV1" or "DDM1")
//	uvarint nodeCount
//	per node: int32 variable, then 2 (vector) or 4 (matrix) edges
//	per edge: float64 re, float64 im, uvarint target (0 = terminal,
//	          k+1 = k-th written node)
//	root edge in the same encoding
var (
	vMagic = [4]byte{'D', 'D', 'V', '1'}
	mMagic = [4]byte{'D', 'D', 'M', '1'}
)

const (
	// serializePrealloc caps the node-slice capacity allocated before any
	// payload bytes are seen; larger diagrams grow by append as nodes
	// actually decode.
	serializePrealloc = 1 << 16
	// maxSerializedVar bounds the per-node variable index; anything
	// larger is a corrupt stream, not a plausible qubit count.
	maxSerializedVar = 1 << 20
)

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// WriteV serialises a vector diagram.
func WriteV(w io.Writer, v VEdge) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(vMagic[:]); err != nil {
		return err
	}
	index := map[*VNode]uint64{}
	var order []*VNode
	var topo func(n *VNode)
	topo = func(n *VNode) {
		if n == vTerminal {
			return
		}
		if _, ok := index[n]; ok {
			return
		}
		topo(n.E[0].N)
		topo(n.E[1].N)
		index[n] = uint64(len(order)) + 1
		order = append(order, n)
	}
	topo(v.N)

	writeUvarint(bw, uint64(len(order)))
	for _, n := range order {
		writeInt32(bw, n.V)
		for i := 0; i < 2; i++ {
			writeVEdge(bw, n.E[i], index)
		}
	}
	writeVEdge(bw, v, index)
	return bw.Flush()
}

// ReadV deserialises a vector diagram into the engine.
func ReadV(r io.Reader, e *Engine) (VEdge, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return VEdge{}, fmt.Errorf("dd: ReadV: %w", err)
	}
	if magic != vMagic {
		return VEdge{}, fmt.Errorf("dd: ReadV: bad magic %q", magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return VEdge{}, fmt.Errorf("dd: ReadV: %w", err)
	}
	if count > 1<<28 {
		return VEdge{}, fmt.Errorf("dd: ReadV: implausible node count %d", count)
	}
	// The count is attacker-controlled (truncated or bit-flipped inputs
	// reach this decoder via checkpoints); cap the upfront allocation and
	// grow as nodes actually arrive, so a corrupt count costs an error,
	// not an out-of-memory.
	nodes := make([]VEdge, 0, min64(count, serializePrealloc))
	resolve := func(w complex128, ref uint64) (VEdge, error) {
		if ref == 0 {
			if w == 0 {
				return VZero(), nil
			}
			return VEdge{W: e.Weight(w), N: vTerminal}, nil
		}
		if ref > uint64(len(nodes)) {
			return VEdge{}, fmt.Errorf("forward reference %d", ref)
		}
		child := nodes[ref-1]
		return e.ScaleV(child, w), nil
	}
	for i := uint64(0); i < count; i++ {
		v, err := readInt32(br)
		if err != nil {
			return VEdge{}, fmt.Errorf("dd: ReadV: node %d: %w", i, err)
		}
		if v < 0 || v > maxSerializedVar {
			return VEdge{}, fmt.Errorf("dd: ReadV: node %d: variable %d out of range", i, v)
		}
		var es [2]VEdge
		for j := 0; j < 2; j++ {
			w, ref, err := readEdge(br)
			if err != nil {
				return VEdge{}, fmt.Errorf("dd: ReadV: node %d edge %d: %w", i, j, err)
			}
			es[j], err = resolve(w, ref)
			if err != nil {
				return VEdge{}, fmt.Errorf("dd: ReadV: node %d edge %d: %w", i, j, err)
			}
			// No-skip invariant: a non-zero edge leads exactly one level
			// down (Var is -1 on the terminal, so this covers v == 0 too).
			if !es[j].IsZero() && es[j].Var() != int(v)-1 {
				return VEdge{}, fmt.Errorf("dd: ReadV: node %d edge %d: child at level %d under level %d",
					i, j, es[j].Var(), v)
			}
		}
		nodes = append(nodes, e.makeVNode(v, es[0], es[1]))
	}
	w, ref, err := readEdge(br)
	if err != nil {
		return VEdge{}, fmt.Errorf("dd: ReadV: root edge: %w", err)
	}
	root, err := resolve(w, ref)
	if err != nil {
		return VEdge{}, fmt.Errorf("dd: ReadV: root edge: %w", err)
	}
	return root, nil
}

// WriteM serialises a matrix diagram.
func WriteM(w io.Writer, m MEdge) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(mMagic[:]); err != nil {
		return err
	}
	index := map[*MNode]uint64{}
	var order []*MNode
	var topo func(n *MNode)
	topo = func(n *MNode) {
		if n == mTerminal {
			return
		}
		if _, ok := index[n]; ok {
			return
		}
		for i := range n.E {
			topo(n.E[i].N)
		}
		index[n] = uint64(len(order)) + 1
		order = append(order, n)
	}
	topo(m.N)

	writeUvarint(bw, uint64(len(order)))
	for _, n := range order {
		writeInt32(bw, n.V)
		for i := range n.E {
			writeMEdge(bw, n.E[i], index)
		}
	}
	writeMEdge(bw, m, index)
	return bw.Flush()
}

// ReadM deserialises a matrix diagram into the engine.
func ReadM(r io.Reader, e *Engine) (MEdge, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return MEdge{}, fmt.Errorf("dd: ReadM: %w", err)
	}
	if magic != mMagic {
		return MEdge{}, fmt.Errorf("dd: ReadM: bad magic %q", magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return MEdge{}, fmt.Errorf("dd: ReadM: %w", err)
	}
	if count > 1<<28 {
		return MEdge{}, fmt.Errorf("dd: ReadM: implausible node count %d", count)
	}
	nodes := make([]MEdge, 0, min64(count, serializePrealloc))
	resolve := func(w complex128, ref uint64) (MEdge, error) {
		if ref == 0 {
			if w == 0 {
				return MZero(), nil
			}
			return MEdge{W: e.Weight(w), N: mTerminal}, nil
		}
		if ref > uint64(len(nodes)) {
			return MEdge{}, fmt.Errorf("forward reference %d", ref)
		}
		return e.ScaleM(nodes[ref-1], w), nil
	}
	for i := uint64(0); i < count; i++ {
		v, err := readInt32(br)
		if err != nil {
			return MEdge{}, fmt.Errorf("dd: ReadM: node %d: %w", i, err)
		}
		if v < 0 || v > maxSerializedVar {
			return MEdge{}, fmt.Errorf("dd: ReadM: node %d: variable %d out of range", i, v)
		}
		var es [4]MEdge
		for j := 0; j < 4; j++ {
			w, ref, err := readEdge(br)
			if err != nil {
				return MEdge{}, fmt.Errorf("dd: ReadM: node %d edge %d: %w", i, j, err)
			}
			es[j], err = resolve(w, ref)
			if err != nil {
				return MEdge{}, fmt.Errorf("dd: ReadM: node %d edge %d: %w", i, j, err)
			}
			if !es[j].IsZero() && es[j].Var() != int(v)-1 {
				return MEdge{}, fmt.Errorf("dd: ReadM: node %d edge %d: child at level %d under level %d",
					i, j, es[j].Var(), v)
			}
		}
		nodes = append(nodes, e.makeMNode(v, es))
	}
	w, ref, err := readEdge(br)
	if err != nil {
		return MEdge{}, fmt.Errorf("dd: ReadM: root edge: %w", err)
	}
	root, err := resolve(w, ref)
	if err != nil {
		return MEdge{}, fmt.Errorf("dd: ReadM: root edge: %w", err)
	}
	return root, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeInt32(w *bufio.Writer, v int32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	w.Write(buf[:])
}

func readInt32(r *bufio.Reader) (int32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return int32(binary.LittleEndian.Uint32(buf[:])), nil
}

func writeFloat(w *bufio.Writer, f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.Write(buf[:])
}

func readFloat(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func writeVEdge(w *bufio.Writer, e VEdge, index map[*VNode]uint64) {
	writeFloat(w, real(e.W))
	writeFloat(w, imag(e.W))
	writeUvarint(w, index[e.N]) // terminal is absent from index → 0
}

func writeMEdge(w *bufio.Writer, e MEdge, index map[*MNode]uint64) {
	writeFloat(w, real(e.W))
	writeFloat(w, imag(e.W))
	writeUvarint(w, index[e.N])
}

func readEdge(r *bufio.Reader) (complex128, uint64, error) {
	re, err := readFloat(r)
	if err != nil {
		return 0, 0, err
	}
	im, err := readFloat(r)
	if err != nil {
		return 0, 0, err
	}
	ref, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, err
	}
	return complex(re, im), ref, nil
}
