//go:build ddchaos

package dd

// chaosBuild compiles fault injection in unconditionally (chaos CI job,
// ad-hoc chaos benchmarking). Without the tag, DD_CHAOS=1 still enables
// it per process; see chaosEnabled.
const chaosBuild = true
