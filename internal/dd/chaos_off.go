//go:build !ddchaos

package dd

// chaosBuild is off in regular builds; fault injection then requires
// DD_CHAOS=1 in the environment (see chaosEnabled).
const chaosBuild = false
