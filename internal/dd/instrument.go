package dd

import "time"

// EngineObserver receives low-level instrumentation callbacks from the
// engine. All methods are invoked synchronously from the engine's own
// goroutine, so implementations must be cheap and must not call back
// into the engine. The default nil observer keeps the hot paths at a
// single predictable branch and zero allocations (enforced by the
// MulVec benchmark's allocs/op report).
//
// The interface deliberately lives in this package instead of
// depending on internal/obs: the engine stays leaf-level, and
// internal/core bridges these callbacks into the event stream and
// metrics registry.
type EngineObserver interface {
	// ObserveNode fires after a fresh node is interned into a unique
	// table (hash-cons hits on existing nodes do not fire). matrix
	// distinguishes matrix from vector nodes; live is the combined
	// unique-table occupancy after the insertion.
	ObserveNode(matrix bool, live int)
	// ObserveGC fires at the end of every GarbageCollect.
	ObserveGC(GCInfo)
	// ObserveCacheClear fires whenever the compute caches are
	// invalidated (after GC, after recovered aborts, and on explicit
	// clears).
	ObserveCacheClear()
}

// GCInfo describes one completed garbage collection.
type GCInfo struct {
	Pause time.Duration
	Freed int // nodes returned to the arena free lists
	VLive int // vector nodes surviving the sweep
	MLive int // matrix nodes surviving the sweep
}

// SetObserver attaches o to the engine; nil detaches. Only one
// observer can be attached at a time — internal/core installs its run
// observer for the duration of a run and detaches it afterwards.
func (e *Engine) SetObserver(o EngineObserver) { e.obs = o }
