package dd

import "math"

// Bit-flip fault injection. Where abort injection (abort.go) rehearses
// loud failures, bit flips rehearse the quiet ones: a single mutated
// edge weight or child pointer that leaves the diagram structurally
// plausible but numerically wrong, the exact corruption class the
// integrity layer (audit.go, core's verifier) exists to catch. Faults
// fire on node internings rather than abort probes so placement is
// deterministic for a given circuit and independent of whether any
// abort source is armed — and so the disarmed hot path pays only the
// same single-branch guard the abort layer does.
//
// Like abort injection, bit flips are compiled out of release builds:
// arming requires the ddchaos build tag or DD_CHAOS=1.

// FaultKind selects what a bit-flip fault corrupts.
type FaultKind uint8

const (
	// FaultWeightFlip flips one mantissa bit of an edge weight on the
	// target node, breaking weight canonicality (and usually the state
	// norm) without touching structure.
	FaultWeightFlip FaultKind = iota + 1
	// FaultChildFlip swaps two successor edges of the target node,
	// corrupting structure while every individual weight stays canonical.
	FaultChildFlip
)

// String returns the kind's short name.
func (k FaultKind) String() string {
	switch k {
	case FaultWeightFlip:
		return "weight-flip"
	case FaultChildFlip:
		return "child-flip"
	}
	return "fault(?)"
}

// InjectBitFlipAfter arms a bit-flip fault: the n-th node interning
// from now (n ≥ 1, vector or matrix) has one edge corrupted in place
// immediately after it is inserted into the unique table. The hook
// disarms itself after firing and counts the hit in
// Stats.FaultsInjected. Only active under the ddchaos build tag or
// DD_CHAOS=1; the call reports whether it armed.
func (e *Engine) InjectBitFlipAfter(n uint64, kind FaultKind) bool {
	if !chaosEnabled() || n == 0 {
		return false
	}
	e.flipCountdown = n
	e.flipKind = kind
	return true
}

// weightFlipBit is XORed into the real-part mantissa of the victim
// weight: bit 30 sits mid-mantissa, so the flip is large enough to
// defeat cnum tolerance yet small enough that the weight still looks
// like a plausible amplitude.
const weightFlipBit = 1 << 30

func flipWeight(w complex128) complex128 {
	return complex(math.Float64frombits(math.Float64bits(real(w))^weightFlipBit), imag(w))
}

// flipV corrupts a freshly interned vector node in place. Interned
// fields (hash, unique-table slot) are NOT updated — that staleness is
// the corruption being modelled.
func (e *Engine) flipV(n *VNode) {
	e.stats.FaultsInjected++
	if e.flipKind == FaultChildFlip {
		if n.E[0] != n.E[1] {
			n.E[0], n.E[1] = n.E[1], n.E[0]
			return
		}
		// Both successors equal: a swap is a no-op. Redirect a child to
		// the terminal instead (level-skip corruption) when there is a
		// level below; at V==0 the children already are the terminal, so
		// fall through to a weight flip.
		if n.V > 0 {
			n.E[0].N = vTerminal
			return
		}
	}
	for i := range n.E {
		if n.E[i].W != 0 {
			n.E[i].W = flipWeight(n.E[i].W)
			return
		}
	}
}

// flipM corrupts a freshly interned matrix node in place; see flipV.
// Child flips swap the diagonal quadrants E[0]/E[3].
func (e *Engine) flipM(n *MNode) {
	e.stats.FaultsInjected++
	if e.flipKind == FaultChildFlip {
		if n.E[0] != n.E[3] {
			n.E[0], n.E[3] = n.E[3], n.E[0]
			return
		}
		if n.E[1] != n.E[2] {
			n.E[1], n.E[2] = n.E[2], n.E[1]
			return
		}
		if n.V > 0 {
			n.E[0].N = mTerminal
			return
		}
	}
	for i := range n.E {
		if n.E[i].W != 0 {
			n.E[i].W = flipWeight(n.E[i].W)
			return
		}
	}
}
