package dd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cnum"
)

func TestMarginalSingleQubitMatchesProb(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(5)
		v := e.FromVector(randState(rng, n))
		for q := 0; q < n; q++ {
			m := e.Marginal(v, []int{q})
			if math.Abs(m[0]-v.Prob(q, 0)) > 1e-9 || math.Abs(m[1]-v.Prob(q, 1)) > 1e-9 {
				t.Fatalf("marginal over {%d} = %v, Prob = (%v, %v)", q, m, v.Prob(q, 0), v.Prob(q, 1))
			}
		}
	}
}

func TestMarginalAllQubitsMatchesProbabilities(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(2))
	n := 5
	v := e.FromVector(randState(rng, n))
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	m := e.Marginal(v, qs)
	want := v.Probabilities()
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-9 {
			t.Fatalf("full marginal[%d] = %v, want %v", i, m[i], want[i])
		}
	}
}

func TestMarginalSubsetAgainstDense(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(4)
		amps := randState(rng, n)
		v := e.FromVector(amps)
		// Random 2-qubit subset, possibly reordered.
		q1 := rng.Intn(n)
		q2 := (q1 + 1 + rng.Intn(n-1)) % n
		m := e.Marginal(v, []int{q1, q2})
		want := make([]float64, 4)
		for idx, a := range amps {
			o := uint64(idx)>>uint(q1)&1 | (uint64(idx)>>uint(q2)&1)<<1
			want[o] += cnum.Abs2(a)
		}
		for o := range want {
			if math.Abs(m[o]-want[o]) > 1e-9 {
				t.Fatalf("marginal over {%d,%d}: entry %d = %v, want %v", q1, q2, o, m[o], want[o])
			}
		}
	}
}

func TestMarginalSumsToOne(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(4))
	v := e.FromVector(randState(rng, 6))
	m := e.Marginal(v, []int{1, 3, 5})
	var sum float64
	for _, p := range m {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("marginal sums to %v", sum)
	}
}

func TestMarginalPanics(t *testing.T) {
	e := New()
	v := e.ZeroState(3)
	mustPanic(t, func() { e.Marginal(v, []int{5}) })
	mustPanic(t, func() { e.Marginal(v, []int{1, 1}) })
}

func TestApproximateNoOpWithinBudget(t *testing.T) {
	e := New()
	v := e.ZeroState(6)
	res, err := e.Approximate(v, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity != 1 || res.Removed != 0 || res.State.N != v.N {
		t.Fatalf("no-op approximation changed the state: %+v", res)
	}
}

func TestApproximateShrinksAndReportsFidelity(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(5))
	// A random dense state has an exponentially large DD; cut it down.
	n := 8
	v := e.FromVector(randState(rng, n))
	full := e.SizeV(v)
	budget := full / 2
	if budget < n {
		budget = n
	}
	res, err := e.Approximate(v, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SizeV(res.State); got > budget {
		t.Fatalf("approximation size %d exceeds budget %d", got, budget)
	}
	if res.Fidelity <= 0 || res.Fidelity > 1+1e-9 {
		t.Fatalf("fidelity %v out of range", res.Fidelity)
	}
	// The cut edges were chosen by lowest mass: fidelity should remain
	// substantial when halving a random state's DD.
	if res.Fidelity < 0.5 {
		t.Fatalf("fidelity %v suspiciously low", res.Fidelity)
	}
	// Check the reported fidelity is the true overlap.
	if math.Abs(res.Fidelity-e.Fidelity(res.State, v)) > 1e-9 {
		t.Fatalf("reported fidelity inconsistent")
	}
	if math.Abs(res.State.Norm()-1) > 1e-9 {
		t.Fatalf("approximated state not normalised: %v", res.State.Norm())
	}
}

func TestApproximateConcentratedState(t *testing.T) {
	// A state that is "almost" a basis state: approximation to the
	// minimum budget must keep the dominant amplitude.
	e := New()
	n := 6
	amps := make([]complex128, 1<<uint(n))
	amps[5] = complex(math.Sqrt(0.97), 0)
	rng := rand.New(rand.NewSource(6))
	var rest float64
	for i := range amps {
		if i == 5 {
			continue
		}
		x := rng.NormFloat64()
		amps[i] = complex(x, 0)
		rest += x * x
	}
	scale := complex(math.Sqrt(0.03/rest), 0)
	for i := range amps {
		if i != 5 {
			amps[i] *= scale
		}
	}
	v := e.FromVector(amps)
	res, err := e.Approximate(v, n+2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.9 {
		t.Fatalf("fidelity %v — dominant amplitude lost", res.Fidelity)
	}
	if p := cnum.Abs2(res.State.Amplitude(5)); p < 0.9 {
		t.Fatalf("dominant amplitude reduced to %v", p)
	}
}

func TestApproximateErrors(t *testing.T) {
	e := New()
	v := e.ZeroState(5)
	if _, err := e.Approximate(v, 3); err == nil {
		t.Fatal("budget below qubit count accepted")
	}
}

func TestFidelityBound(t *testing.T) {
	if FidelityBound(0) != 1 || FidelityBound(1.5) != 0 {
		t.Fatal("bounds wrong")
	}
	if got := FidelityBound(0.25); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("FidelityBound(0.25) = %v", got)
	}
}
