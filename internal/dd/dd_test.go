package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/cnum"
)

// --- dense helpers used as the oracle -------------------------------

type mat [][]complex128

func eye(dim int) mat {
	m := make(mat, dim)
	for i := range m {
		m[i] = make([]complex128, dim)
		m[i][i] = 1
	}
	return m
}

func matMul(a, b mat) mat {
	n := len(a)
	r := make(mat, n)
	for i := 0; i < n; i++ {
		r[i] = make([]complex128, n)
		for k := 0; k < n; k++ {
			if a[i][k] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				r[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return r
}

func matVec(a mat, v []complex128) []complex128 {
	r := make([]complex128, len(v))
	for i := range a {
		for j, x := range v {
			r[i] += a[i][j] * x
		}
	}
	return r
}

// denseGate expands a controlled single-qubit gate to a full 2^n matrix.
func denseGate(u [2][2]complex128, n, target int, controls []Control) mat {
	dim := 1 << uint(n)
	m := make(mat, dim)
	for i := range m {
		m[i] = make([]complex128, dim)
	}
	tBit := 1 << uint(target)
	for col := 0; col < dim; col++ {
		active := true
		for _, c := range controls {
			bit := col>>uint(c.Qubit)&1 == 1
			if bit == c.Negative {
				active = false
				break
			}
		}
		if !active {
			m[col][col] = 1
			continue
		}
		cb := col >> uint(target) & 1
		m[col&^tBit][col] += u[0][cb]
		m[col|tBit][col] += u[1][cb]
	}
	return m
}

func approxC(a, b complex128) bool { return cmplx.Abs(a-b) < 1e-9 }

func approxVec(t *testing.T, got, want []complex128, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if !approxC(got[i], want[i]) {
			t.Fatalf("%s: entry %d: got %v, want %v", label, i, got[i], want[i])
		}
	}
}

func approxMat(t *testing.T, got, want mat, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: dim %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if !approxC(got[i][j], want[i][j]) {
				t.Fatalf("%s: entry (%d,%d): got %v, want %v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

var (
	gX = [2][2]complex128{{0, 1}, {1, 0}}
	gH = [2][2]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}
	gZ = [2][2]complex128{{1, 0}, {0, -1}}
	gT = [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}}
)

func randUnitary(rng *rand.Rand) [2][2]complex128 {
	// Random U(2) via Euler angles and a global phase.
	th, ph, la, al := rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	c := complex(math.Cos(th/2), 0)
	s := complex(math.Sin(th/2), 0)
	g := cmplx.Exp(complex(0, al))
	return [2][2]complex128{
		{g * c, -g * cmplx.Exp(complex(0, la)) * s},
		{g * cmplx.Exp(complex(0, ph)) * s, g * cmplx.Exp(complex(0, ph+la)) * c},
	}
}

func randState(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += cnum.Abs2(v[i])
	}
	f := complex(1/math.Sqrt(norm), 0)
	for i := range v {
		v[i] *= f
	}
	return v
}

// --- construction ----------------------------------------------------

func TestBasisState(t *testing.T) {
	e := New()
	for n := 1; n <= 5; n++ {
		for idx := uint64(0); idx < 1<<uint(n); idx++ {
			v := e.BasisState(n, idx)
			for j := uint64(0); j < 1<<uint(n); j++ {
				want := complex128(0)
				if j == idx {
					want = 1
				}
				if got := v.Amplitude(j); !approxC(got, want) {
					t.Fatalf("BasisState(%d,%d): amplitude(%d) = %v, want %v", n, idx, j, got, want)
				}
			}
			if v.Size() != n {
				t.Fatalf("BasisState(%d,%d): size %d, want %d", n, idx, v.Size(), n)
			}
		}
	}
}

func TestBasisStatePanics(t *testing.T) {
	e := New()
	mustPanic(t, func() { e.BasisState(3, 8) })
	mustPanic(t, func() { e.BasisState(-1, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestFromVectorRoundTrip(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 7; n++ {
		want := randState(rng, n)
		v := e.FromVector(want)
		approxVec(t, v.ToVector(), want, "round trip")
		if math.Abs(v.Norm()-1) > 1e-9 {
			t.Fatalf("norm %v, want 1", v.Norm())
		}
	}
}

func TestFromVectorSharing(t *testing.T) {
	// A uniform vector must collapse to one node per level.
	e := New()
	n := 6
	amps := make([]complex128, 1<<uint(n))
	for i := range amps {
		amps[i] = complex(1/math.Sqrt(float64(len(amps))), 0)
	}
	v := e.FromVector(amps)
	if v.Size() != n {
		t.Fatalf("uniform state size = %d, want %d", v.Size(), n)
	}
}

func TestNormalFormInvariants(t *testing.T) {
	// Every node must carry exactly-one as the weight of its
	// largest-magnitude edge, no stored weight may exceed magnitude one
	// (beyond the tie margin), and zero-weight edges must point at the
	// terminal.
	e := New()
	rng := rand.New(rand.NewSource(2))
	v := e.FromVector(randState(rng, 6))
	seen := map[*VNode]bool{}
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n == vTerminal || seen[n] {
			return
		}
		seen[n] = true
		hasOne := false
		for i := 0; i < 2; i++ {
			w := n.E[i].W
			if w == cnum.One {
				hasOne = true
			}
			if cnum.Abs2(w) > 1+1e-6 {
				t.Fatalf("stored weight %v exceeds magnitude 1", w)
			}
			if w == cnum.Zero && n.E[i].N != vTerminal {
				t.Fatal("zero edge not pointing at terminal")
			}
			walk(n.E[i].N)
		}
		if !hasOne {
			t.Fatalf("node has no exactly-one weight: %v, %v", n.E[0].W, n.E[1].W)
		}
	}
	walk(v.N)
}

func TestIdentity(t *testing.T) {
	e := New()
	for n := 0; n <= 6; n++ {
		id := e.Identity(n)
		if n == 0 {
			if !id.IsTerminal() || id.W != 1 {
				t.Fatal("Identity(0) should be the scalar 1")
			}
			continue
		}
		if id.Size() != n {
			t.Fatalf("Identity(%d) has %d nodes, want %d", n, id.Size(), n)
		}
		approxMat(t, id.ToMatrix(), eye(1<<uint(n)), "identity")
	}
}

// --- gate construction ------------------------------------------------

func TestGateDDAgainstDense(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name     string
		u        [2][2]complex128
		n, tgt   int
		controls []Control
	}{
		{"h0of1", gH, 1, 0, nil},
		{"x1of3", gX, 3, 1, nil},
		{"h2of3", gH, 3, 2, nil},
		{"cx01", gX, 2, 1, []Control{Pos(0)}},
		{"cx10", gX, 2, 0, []Control{Pos(1)}},
		{"cz02of3", gZ, 3, 2, []Control{Pos(0)}},
		{"ccx", gX, 3, 2, []Control{Pos(0), Pos(1)}},
		{"ccx_mixed_order", gX, 3, 0, []Control{Pos(2), Pos(1)}},
		{"negctl", gX, 2, 1, []Control{Neg(0)}},
		{"mixed_polarity", gZ, 4, 1, []Control{Neg(0), Pos(3), Neg(2)}},
		{"t_mid", gT, 4, 2, []Control{Pos(0)}},
	}
	for _, c := range cases {
		got := e.GateDD(c.u, c.n, c.tgt, c.controls).ToMatrix()
		want := denseGate(c.u, c.n, c.tgt, c.controls)
		approxMat(t, got, want, c.name)
	}
	// Randomised sweep.
	for i := 0; i < 50; i++ {
		n := 2 + rng.Intn(4)
		tgt := rng.Intn(n)
		var controls []Control
		for q := 0; q < n; q++ {
			if q != tgt && rng.Intn(3) == 0 {
				controls = append(controls, Control{Qubit: q, Negative: rng.Intn(2) == 0})
			}
		}
		u := randUnitary(rng)
		got := e.GateDD(u, n, tgt, controls).ToMatrix()
		approxMat(t, got, denseGate(u, n, tgt, controls), "random gate")
	}
}

func TestGateDDLinearSize(t *testing.T) {
	// A single-qubit gate on n qubits must be linear in n — the key fact
	// behind the paper's observation that operation DDs are small.
	e := New()
	for n := 1; n <= 20; n++ {
		g := e.GateDD(gH, n, n/2, nil)
		if g.Size() > n {
			t.Fatalf("H gate DD on %d qubits has %d nodes, want <= %d", n, g.Size(), n)
		}
	}
	// Even many-controlled gates stay linear.
	controls := []Control{Pos(0), Pos(1), Neg(2), Pos(3)}
	g := e.GateDD(gX, 20, 10, controls)
	if g.Size() > 3*20 {
		t.Fatalf("MCX DD too large: %d nodes", g.Size())
	}
}

func TestGateDDPanics(t *testing.T) {
	e := New()
	mustPanic(t, func() { e.GateDD(gX, 2, 2, nil) })
	mustPanic(t, func() { e.GateDD(gX, 2, 0, []Control{Pos(0)}) })
	mustPanic(t, func() { e.GateDD(gX, 2, 0, []Control{Pos(5)}) })
	mustPanic(t, func() { e.GateDD(gX, 3, 0, []Control{Pos(1), Neg(1)}) })
}

func TestSwapDD(t *testing.T) {
	e := New()
	for n := 2; n <= 4; n++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				m := e.SwapDD(n, a, b).ToMatrix()
				dim := 1 << uint(n)
				want := make(mat, dim)
				for col := 0; col < dim; col++ {
					want[col] = make([]complex128, dim)
				}
				for col := 0; col < dim; col++ {
					ba := col >> uint(a) & 1
					bb := col >> uint(b) & 1
					row := col&^(1<<uint(a))&^(1<<uint(b)) | bb<<uint(a) | ba<<uint(b)
					want[row][col] = 1
				}
				approxMat(t, m, want, "swap")
			}
		}
	}
}

// --- arithmetic --------------------------------------------------------

func TestAddAgainstDense(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		a := randState(rng, n)
		b := randState(rng, n)
		sum := make([]complex128, len(a))
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		got := e.Add(e.FromVector(a), e.FromVector(b))
		approxVec(t, got.ToVector(), sum, "add")
	}
}

func TestAddCancellation(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(5))
	a := randState(rng, 4)
	va := e.FromVector(a)
	neg := e.ScaleV(va, -1)
	sum := e.Add(va, neg)
	if !sum.IsZero() {
		t.Fatalf("v + (-v) = %v, want zero edge", sum)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		tgt := rng.Intn(n)
		var controls []Control
		for q := 0; q < n; q++ {
			if q != tgt && rng.Intn(4) == 0 {
				controls = append(controls, Control{Qubit: q, Negative: rng.Intn(2) == 0})
			}
		}
		u := randUnitary(rng)
		vec := randState(rng, n)
		m := e.GateDD(u, n, tgt, controls)
		got := e.MulVec(m, e.FromVector(vec))
		want := matVec(denseGate(u, n, tgt, controls), vec)
		approxVec(t, got.ToVector(), want, "mulvec")
		if math.Abs(got.Norm()-1) > 1e-9 {
			t.Fatalf("unitary broke the norm: %v", got.Norm())
		}
	}
}

func TestMulMatAgainstDense(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4)
		mk := func() (MEdge, mat) {
			tgt := rng.Intn(n)
			var controls []Control
			for q := 0; q < n; q++ {
				if q != tgt && rng.Intn(4) == 0 {
					controls = append(controls, Control{Qubit: q})
				}
			}
			u := randUnitary(rng)
			return e.GateDD(u, n, tgt, controls), denseGate(u, n, tgt, controls)
		}
		a, da := mk()
		b, db := mk()
		got := e.MulMat(a, b).ToMatrix()
		approxMat(t, got, matMul(da, db), "mulmat")
	}
}

// Associativity — the algebraic fact the whole paper rests on:
// (M2 × M1) × v == M2 × (M1 × v).
func TestAssociativityProperty(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		v := e.FromVector(randState(rng, n))
		g1 := e.GateDD(randUnitary(rng), n, rng.Intn(n), nil)
		g2 := e.GateDD(randUnitary(rng), n, rng.Intn(n), nil)
		eq1 := e.MulVec(g2, e.MulVec(g1, v)) // Eq. 1
		eq2 := e.MulVec(e.MulMat(g2, g1), v) // Eq. 2
		if f := e.Fidelity(eq1, eq2); f < 1-1e-9 {
			t.Fatalf("associativity violated: fidelity %v", f)
		}
		approxVec(t, eq2.ToVector(), eq1.ToVector(), "associativity")
	}
}

func TestMulMatIdentity(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(9))
	n := 4
	g := e.GateDD(randUnitary(rng), n, 2, []Control{Pos(0)})
	id := e.Identity(n)
	left := e.MulMat(id, g)
	right := e.MulMat(g, id)
	approxMat(t, left.ToMatrix(), g.ToMatrix(), "id*g")
	approxMat(t, right.ToMatrix(), g.ToMatrix(), "g*id")
	// Hash-consing should make these literally the same diagram.
	if left.N != g.N || right.N != g.N {
		t.Fatal("identity multiplication did not return the canonical node")
	}
}

func TestConjTranspose(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4)
		g := e.GateDD(randUnitary(rng), n, rng.Intn(n), nil)
		adj := e.ConjTranspose(g)
		prod := e.MulMat(adj, g)
		approxMat(t, prod.ToMatrix(), eye(1<<uint(n)), "U†U")
	}
}

func TestKron(t *testing.T) {
	e := New()
	// |1> ⊗ |0> = |10> (qubit 1 high, qubit 0 low).
	hi := e.BasisState(1, 1)
	lo := e.BasisState(1, 0)
	v := e.KronV(hi, lo)
	approxVec(t, v.ToVector(), []complex128{0, 0, 1, 0}, "kronV")

	// X ⊗ I acts on qubit 1 of two.
	x1 := e.KronM(e.GateDD(gX, 1, 0, nil), e.Identity(1))
	approxMat(t, x1.ToMatrix(), denseGate(gX, 2, 1, nil), "kronM")
}

func TestInnerProduct(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(11))
	n := 5
	a := randState(rng, n)
	b := randState(rng, n)
	var want complex128
	for i := range a {
		want += complex(real(a[i]), -imag(a[i])) * b[i]
	}
	got := e.InnerProduct(e.FromVector(a), e.FromVector(b))
	if !approxC(got, want) {
		t.Fatalf("inner product %v, want %v", got, want)
	}
	if f := e.Fidelity(e.FromVector(a), e.FromVector(a)); math.Abs(f-1) > 1e-9 {
		t.Fatalf("self fidelity %v", f)
	}
}

// --- permutations and diagonals ---------------------------------------

func TestFromPermutation(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 3, 5} {
		size := uint64(1) << uint(n)
		perm := rng.Perm(int(size))
		m := e.FromPermutation(n, func(x uint64) uint64 { return uint64(perm[x]) })
		// Applying to each basis state must yield the permuted basis state.
		for x := uint64(0); x < size; x++ {
			out := e.MulVec(m, e.BasisState(n, x))
			if got := out.Amplitude(uint64(perm[x])); !approxC(got, 1) {
				t.Fatalf("n=%d: perm(%d): amplitude at image = %v, want 1", n, x, got)
			}
		}
		// And it must be unitary.
		prod := e.MulMat(e.ConjTranspose(m), m)
		approxMat(t, prod.ToMatrix(), eye(int(size)), "perm unitarity")
	}
}

func TestFromPermutationRejectsNonBijection(t *testing.T) {
	e := New()
	mustPanic(t, func() { e.FromPermutation(2, func(x uint64) uint64 { return 0 }) })
	mustPanic(t, func() { e.FromPermutation(2, func(x uint64) uint64 { return 7 }) })
}

func TestFromPermutationIdentitySharing(t *testing.T) {
	e := New()
	m := e.FromPermutation(4, func(x uint64) uint64 { return x })
	if m.N != e.Identity(4).N {
		t.Fatal("identity permutation did not hash-cons onto the identity DD")
	}
}

func TestFromDiagonal(t *testing.T) {
	e := New()
	n := 3
	phase := func(x uint64) complex128 {
		if x == 5 {
			return -1
		}
		return 1
	}
	m := e.FromDiagonal(n, phase)
	dm := m.ToMatrix()
	for i := range dm {
		for j := range dm[i] {
			want := complex128(0)
			if i == j {
				want = phase(uint64(i))
			}
			if !approxC(dm[i][j], want) {
				t.Fatalf("diagonal entry (%d,%d) = %v, want %v", i, j, dm[i][j], want)
			}
		}
	}
	// A single flipped sign is exactly a (multi-controlled-Z)-style
	// oracle; check it against GateDD with mixed polarity controls.
	oracle := e.GateDD(gZ, n, 0, []Control{Neg(1), Pos(2)})
	approxMat(t, oracle.ToMatrix(), m.ToMatrix(), "diag vs mcz")
}

func TestControlledOpExtendAbove(t *testing.T) {
	e := New()
	x := e.GateDD(gX, 1, 0, nil)
	cx := e.ControlledOp(x, false)
	approxMat(t, cx.ToMatrix(), denseGate(gX, 2, 0, []Control{Pos(1)}), "controlled op")
	ncx := e.ControlledOp(x, true)
	approxMat(t, ncx.ToMatrix(), denseGate(gX, 2, 0, []Control{Neg(1)}), "neg controlled op")
	ext := e.ExtendAbove(cx, 4)
	approxMat(t, ext.ToMatrix(), denseGate(gX, 4, 0, []Control{Pos(1)}), "extend above")
}

// --- measurement --------------------------------------------------------

func TestProbBellState(t *testing.T) {
	e := New()
	// Bell state via H(0);CX(0,1) on |00>.
	v := e.ZeroState(2)
	v = e.MulVec(e.GateDD(gH, 2, 0, nil), v)
	v = e.MulVec(e.GateDD(gX, 2, 1, []Control{Pos(0)}), v)
	for q := 0; q < 2; q++ {
		if p := v.Prob(q, 1); math.Abs(p-0.5) > 1e-9 {
			t.Fatalf("Bell: P(q%d=1) = %v, want 0.5", q, p)
		}
	}
	// Collapse qubit 0 to 1: qubit 1 must follow.
	post := e.Project(v, 0, 1)
	if p := post.Prob(1, 1); math.Abs(p-1) > 1e-9 {
		t.Fatalf("Bell collapse: P(q1=1) = %v, want 1", p)
	}
	if got := post.Amplitude(3); !approxC(got, 1) {
		t.Fatalf("post-measurement amplitude %v, want 1", got)
	}
}

func TestProbMatchesDenseRandom(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		amps := randState(rng, n)
		v := e.FromVector(amps)
		for q := 0; q < n; q++ {
			var want float64
			for i, a := range amps {
				if i>>uint(q)&1 == 1 {
					want += cnum.Abs2(a)
				}
			}
			if got := v.Prob(q, 1); math.Abs(got-want) > 1e-9 {
				t.Fatalf("Prob(q%d=1) = %v, want %v", q, got, want)
			}
			if got0 := v.Prob(q, 0); math.Abs(got0+v.Prob(q, 1)-1) > 1e-9 {
				t.Fatalf("probabilities do not sum to 1: %v", got0)
			}
		}
	}
}

func TestSampleAllDistribution(t *testing.T) {
	e := New()
	// |+>|0>: outcomes 0 and 1 equally likely, 2/3 never.
	v := e.MulVec(e.GateDD(gH, 2, 0, nil), e.ZeroState(2))
	rng := rand.New(rand.NewSource(14))
	counts := map[uint64]int{}
	const samples = 20000
	for i := 0; i < samples; i++ {
		counts[v.SampleAll(rng)]++
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("impossible outcomes sampled: %v", counts)
	}
	ratio := float64(counts[0]) / samples
	if math.Abs(ratio-0.5) > 0.02 {
		t.Fatalf("outcome 0 frequency %v, want ~0.5", ratio)
	}
}

func TestMeasureQubitCollapse(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(15))
	v := e.MulVec(e.GateDD(gH, 3, 1, nil), e.ZeroState(3))
	bit, post := e.MeasureQubit(v, 1, rng)
	if p := post.Prob(1, bit); math.Abs(p-1) > 1e-9 {
		t.Fatalf("collapsed state P(q1=%d) = %v, want 1", bit, p)
	}
	if math.Abs(post.Norm()-1) > 1e-9 {
		t.Fatalf("post-measurement norm %v", post.Norm())
	}
}

func TestResetQubit(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		v := e.MulVec(e.GateDD(gH, 2, 0, nil), e.ZeroState(2))
		v = e.MulVec(e.GateDD(gT, 2, 0, nil), v)
		_, post := e.ResetQubit(v, 0, rng)
		if p := post.Prob(0, 0); math.Abs(p-1) > 1e-9 {
			t.Fatalf("reset qubit not in |0>: P = %v", p)
		}
	}
}

// --- engine bookkeeping -------------------------------------------------

func TestHashConsing(t *testing.T) {
	e := New()
	a := e.BasisState(4, 5)
	b := e.BasisState(4, 5)
	if a.N != b.N {
		t.Fatal("equal states got distinct nodes")
	}
	g1 := e.GateDD(gH, 4, 2, nil)
	g2 := e.GateDD(gH, 4, 2, nil)
	if g1.N != g2.N {
		t.Fatal("equal gates got distinct nodes")
	}
}

func TestGarbageCollect(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(17))
	keep := e.FromVector(randState(rng, 6))
	for i := 0; i < 50; i++ {
		e.FromVector(randState(rng, 6)) // garbage
	}
	before := e.VNodeCount()
	want := keep.ToVector()
	e.GarbageCollect([]VEdge{keep}, nil)
	after := e.VNodeCount()
	if after >= before {
		t.Fatalf("GC did not shrink the unique table: %d -> %d", before, after)
	}
	if after != keep.Size() {
		t.Fatalf("GC kept %d nodes, root needs %d", after, keep.Size())
	}
	approxVec(t, keep.ToVector(), want, "state after GC")
	// The engine must remain fully functional, including hash-consing
	// onto surviving nodes.
	v2 := e.FromVector(want)
	if v2.N != keep.N {
		t.Fatal("hash-consing broken after GC")
	}
	g := e.GateDD(gH, 6, 3, nil)
	_ = e.MulVec(g, keep)
	if e.Stats().GCs != 1 {
		t.Fatalf("GC counter = %d, want 1", e.Stats().GCs)
	}
}

func TestGarbageCollectKeepsMatrixRoots(t *testing.T) {
	e := New()
	g := e.GateDD(gT, 5, 2, []Control{Pos(0)})
	want := g.ToMatrix()
	for i := 0; i < 20; i++ {
		e.GateDD(randUnitary(rand.New(rand.NewSource(int64(i)))), 5, i%5, nil)
	}
	e.GarbageCollect(nil, []MEdge{g})
	approxMat(t, g.ToMatrix(), want, "matrix after GC")
}

func TestStatsCounters(t *testing.T) {
	e := New()
	v := e.ZeroState(3)
	g := e.GateDD(gH, 3, 0, nil)
	_ = e.MulVec(g, v)
	_ = e.MulMat(g, g)
	s := e.Stats()
	if s.MatVecMuls != 1 || s.MatMatMuls != 1 {
		t.Fatalf("mul counters = (%d,%d), want (1,1)", s.MatVecMuls, s.MatMatMuls)
	}
	e.ResetStats()
	if e.Stats().MatVecMuls != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestSizeCounts(t *testing.T) {
	e := New()
	v := e.ZeroState(4)
	if v.Size() != 4 {
		t.Fatalf("|0000> size %d, want 4", v.Size())
	}
	if VZero().Size() != 0 {
		t.Fatal("zero edge should have size 0")
	}
}

// --- randomized full-circuit cross-check --------------------------------

func TestRandomCircuitAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 10; trial++ {
		e := New()
		n := 2 + rng.Intn(5)
		v := e.ZeroState(n)
		vec := make([]complex128, 1<<uint(n))
		vec[0] = 1
		for step := 0; step < 30; step++ {
			tgt := rng.Intn(n)
			var controls []Control
			for q := 0; q < n; q++ {
				if q != tgt && rng.Intn(5) == 0 {
					controls = append(controls, Control{Qubit: q, Negative: rng.Intn(2) == 0})
				}
			}
			u := randUnitary(rng)
			v = e.MulVec(e.GateDD(u, n, tgt, controls), v)
			vec = matVec(denseGate(u, n, tgt, controls), vec)
		}
		approxVec(t, v.ToVector(), vec, "random circuit")
	}
}

func BenchmarkMulVecHadamardLayer(b *testing.B) {
	e := New()
	n := 16
	v := e.ZeroState(n)
	for q := 0; q < n; q++ {
		v = e.MulVec(e.GateDD(gH, n, q, nil), v)
	}
	g := e.GateDD(gT, n, n/2, []Control{Pos(0)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.MulVec(g, v)
	}
}

func BenchmarkMulMatSmallGates(b *testing.B) {
	e := New()
	n := 16
	g1 := e.GateDD(gH, n, 3, nil)
	g2 := e.GateDD(gX, n, 7, []Control{Pos(2)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.MulMat(g1, g2)
	}
}

func BenchmarkGateDD(b *testing.B) {
	e := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.GateDD(gX, 24, 12, []Control{Pos(3), Neg(17)})
	}
}

func TestEngineSizeMatchesEdgeSize(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 20; i++ {
		v := e.FromVector(randState(rng, 1+rng.Intn(7)))
		if e.SizeV(v) != v.Size() {
			t.Fatalf("SizeV %d != Size %d", e.SizeV(v), v.Size())
		}
		// Repeated queries (fresh epochs) must agree.
		if e.SizeV(v) != v.Size() {
			t.Fatal("second SizeV query differs")
		}
		m := e.GateDD(randUnitary(rng), 5, rng.Intn(5), nil)
		m = e.MulMat(m, e.GateDD(randUnitary(rng), 5, rng.Intn(5), nil))
		if e.SizeM(m) != m.Size() {
			t.Fatalf("SizeM %d != Size %d", e.SizeM(m), m.Size())
		}
	}
	if e.SizeV(VZero()) != 0 || e.SizeM(MZero()) != 0 {
		t.Fatal("zero edges should have size 0")
	}
}
