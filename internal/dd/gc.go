package dd

import "time"

// GarbageCollect drops every node not reachable from the given roots
// from the unique tables and invalidates the compute caches. Node
// identities (and hence hash-consing of the surviving nodes) are
// preserved — reachable diagrams remain valid and canonical.
//
// Collection is mark-sweep over the engine's own structures: reachable
// nodes are stamped with a fresh traversal epoch (no live-set maps are
// built), dead entries are tombstoned out of the unique tables in
// place, and their nodes go onto the arena free lists for reuse —
// nothing is handed back to the Go heap. Cache invalidation afterwards
// is a single generation bump, O(1).
//
// The core simulator calls this when live node counts exceed its
// threshold; long runs would otherwise retain every intermediate state
// ever built.
//
// Collection is abort-atomic: no abort probe (see abort.go) is taken
// inside the mark or sweep phases, so a deadline, cancellation or
// budget abort can never fire mid-collection and leave the unique
// tables half-swept. After a recovered abort, a GarbageCollect with the
// surviving roots reclaims whatever the interrupted operation built.
func (e *Engine) GarbageCollect(vroots []VEdge, mroots []MEdge) {
	start := time.Now()
	e.stats.GCs++
	liveBefore := e.vUnique.live + e.mUnique.live

	e.bumpEpoch()
	for _, r := range vroots {
		e.markV(r.N)
	}
	for _, r := range mroots {
		e.markM(r.N)
	}
	// The identity cache is cheap to keep and pervasively shared; treat
	// its entries as roots so Identity() stays O(1) after collection.
	for _, id := range e.identity {
		e.markM(id.N)
	}

	freed := e.vUnique.sweep(e.epoch, &e.vArena)
	freed += e.mUnique.sweep(e.epoch, &e.mArena)
	e.stats.NodesRecycled += uint64(freed)
	// Feed the pressure signal's reclaim-effectiveness ratio (see
	// pressure.go): a collection that frees almost nothing means the
	// live set itself fills the budget.
	e.lastGCLive, e.lastGCFreed = liveBefore, freed

	e.clearCaches()

	pause := time.Since(start)
	e.stats.GCPause += pause
	if pause > e.stats.GCMaxPause {
		e.stats.GCMaxPause = pause
	}
	if e.obs != nil {
		e.obs.ObserveGC(GCInfo{Pause: pause, Freed: freed,
			VLive: e.vUnique.live, MLive: e.mUnique.live})
	}
}

// markV stamps every node reachable from n with the current epoch.
func (e *Engine) markV(n *VNode) {
	if n == vTerminal || n == nil || n.mark == e.epoch {
		return
	}
	n.mark = e.epoch
	e.markV(n.E[0].N)
	e.markV(n.E[1].N)
}

// markM stamps every matrix node reachable from n with the current epoch.
func (e *Engine) markM(n *MNode) {
	if n == mTerminal || n == nil || n.mark == e.epoch {
		return
	}
	n.mark = e.epoch
	for i := range n.E {
		e.markM(n.E[i].N)
	}
}
