package dd

// GarbageCollect drops every node not reachable from the given roots
// from the unique tables and invalidates the compute caches. Node
// identities (and hence hash-consing of the surviving nodes) are
// preserved — reachable diagrams remain valid and canonical.
//
// The core simulator calls this when live node counts exceed its
// threshold; long runs would otherwise retain every intermediate state
// ever built.
func (e *Engine) GarbageCollect(vroots []VEdge, mroots []MEdge) {
	e.stats.GCs++

	liveV := make(map[*VNode]struct{})
	var markV func(n *VNode)
	markV = func(n *VNode) {
		if n == vTerminal {
			return
		}
		if _, ok := liveV[n]; ok {
			return
		}
		liveV[n] = struct{}{}
		markV(n.E[0].N)
		markV(n.E[1].N)
	}
	for _, r := range vroots {
		markV(r.N)
	}

	liveM := make(map[*MNode]struct{})
	var markM func(n *MNode)
	markM = func(n *MNode) {
		if n == mTerminal {
			return
		}
		if _, ok := liveM[n]; ok {
			return
		}
		liveM[n] = struct{}{}
		for i := range n.E {
			markM(n.E[i].N)
		}
	}
	for _, r := range mroots {
		markM(r.N)
	}
	// The identity cache is cheap to keep and pervasively shared; treat
	// its entries as roots so Identity() stays O(1) after collection.
	for _, id := range e.identity {
		markM(id.N)
	}

	newV := make(map[vKey]*VNode, len(liveV))
	for k, n := range e.vUnique {
		if _, ok := liveV[n]; ok {
			newV[k] = n
		}
	}
	e.vUnique = newV

	newM := make(map[mKey]*MNode, len(liveM))
	for k, n := range e.mUnique {
		if _, ok := liveM[n]; ok {
			newM[k] = n
		}
	}
	e.mUnique = newM

	e.clearCaches()
}
