package dd

// Open-addressing unique tables. The Go-map tables of the seed
// implementation hashed a struct of four complex128s on every lookup
// and re-built the whole map on garbage collection; these tables probe
// a flat power-of-two slot array with linear probing, compare keys
// against the node fields directly (children are canonical pointers,
// weights canonical representatives, so == is exact), and unlink dead
// entries in place via tombstones.
//
// Invariants:
//   - len(slots) is a power of two, ≥ 1<<tableInitBits.
//   - live + dead ≤ loadNum/loadDen of capacity after every insert
//     (rehash restores it), so probe chains stay short and a nil slot
//     is always reachable.
//   - a node's slot position is derived from node.hash, which is fixed
//     at creation; rehashing never recomputes key hashes.

const (
	tableInitBits = 10 // 1024 slots ≈ 8 KiB per empty table
	// Rehash when (live+dead)*loadDen ≥ cap*loadNum, i.e. at 3/4 load.
	loadNum = 3
	loadDen = 4
)

// Tombstones are sentinel nodes distinguishable from both nil and any
// real node; their fields are never read.
var (
	vTombstone = &VNode{V: -2}
	mTombstone = &MNode{V: -2}
)

type vTable struct {
	slots []*VNode
	live  int // real entries
	dead  int // tombstones
	// levels[v] counts the live nodes at variable v — the per-level
	// index dynamic reordering reads (sifting orders variables by
	// occupancy, swaps touch only the two affected levels' counts).
	// Maintained by insertAt/sweep; grows only when a new topmost
	// level first appears, so the steady state stays allocation-free.
	levels []int
}

type mTable struct {
	slots []*MNode
	live  int
	dead  int
	levels []int
}

// noteLevel adjusts the live count of level v by d, growing the index
// on first sight of a new level.
func (t *vTable) noteLevel(v int32, d int) {
	if int(v) >= len(t.levels) {
		grown := make([]int, int(v)+9)
		copy(grown, t.levels)
		t.levels = grown
	}
	t.levels[v] += d
}

func (t *mTable) noteLevel(v int32, d int) {
	if int(v) >= len(t.levels) {
		grown := make([]int, int(v)+9)
		copy(grown, t.levels)
		t.levels = grown
	}
	t.levels[v] += d
}

// levelCount returns the live-node count at level v.
func (t *vTable) levelCount(v int) int {
	if v < 0 || v >= len(t.levels) {
		return 0
	}
	return t.levels[v]
}

func (t *mTable) levelCount(v int) int {
	if v < 0 || v >= len(t.levels) {
		return 0
	}
	return t.levels[v]
}

func newVTable() vTable { return vTable{slots: make([]*VNode, 1<<tableInitBits)} }
func newMTable() mTable { return mTable{slots: make([]*MNode, 1<<tableInitBits)} }

// find probes for a node with the given key. It returns the node if
// present, else nil plus the slot index where the key should be
// inserted (the first tombstone on the probe path, or the terminating
// nil slot).
func (t *vTable) find(h uint32, v int32, e0, e1 VEdge) (*VNode, int) {
	mask := uint32(len(t.slots) - 1)
	i := h & mask
	ins := -1
	for {
		s := t.slots[i]
		if s == nil {
			if ins < 0 {
				ins = int(i)
			}
			return nil, ins
		}
		if s == vTombstone {
			if ins < 0 {
				ins = int(i)
			}
		} else if s.hash == h && s.V == v && s.E[0] == e0 && s.E[1] == e1 {
			return s, int(i)
		}
		i = (i + 1) & mask
	}
}

func (t *mTable) find(h uint32, v int32, es *[4]MEdge) (*MNode, int) {
	mask := uint32(len(t.slots) - 1)
	i := h & mask
	ins := -1
	for {
		s := t.slots[i]
		if s == nil {
			if ins < 0 {
				ins = int(i)
			}
			return nil, ins
		}
		if s == mTombstone {
			if ins < 0 {
				ins = int(i)
			}
		} else if s.hash == h && s.V == v && s.E == *es {
			return s, int(i)
		}
		i = (i + 1) & mask
	}
}

// insertAt places n into the slot returned by a preceding find and
// rehashes if the load factor is exceeded. Growth doubles capacity only
// when the table is genuinely full of live entries; a table bloated by
// tombstones (after GC) is compacted at the same capacity instead.
func (t *vTable) insertAt(slot int, n *VNode) {
	if t.slots[slot] == vTombstone {
		t.dead--
	}
	t.slots[slot] = n
	t.live++
	t.noteLevel(n.V, 1)
	if (t.live+t.dead)*loadDen >= len(t.slots)*loadNum {
		t.rehash()
	}
}

func (t *mTable) insertAt(slot int, n *MNode) {
	if t.slots[slot] == mTombstone {
		t.dead--
	}
	t.slots[slot] = n
	t.live++
	t.noteLevel(n.V, 1)
	if (t.live+t.dead)*loadDen >= len(t.slots)*loadNum {
		t.rehash()
	}
}

func (t *vTable) rehash() {
	// Double only when at least half the slots hold live nodes;
	// otherwise the table is mostly tombstones and compacting at the
	// same capacity restores a ≤1/2 load.
	newCap := len(t.slots)
	if t.live*2 >= newCap {
		newCap *= 2
	}
	ns := make([]*VNode, newCap)
	mask := uint32(newCap - 1)
	for _, s := range t.slots {
		if s == nil || s == vTombstone {
			continue
		}
		i := s.hash & mask
		for ns[i] != nil {
			i = (i + 1) & mask
		}
		ns[i] = s
	}
	t.slots = ns
	t.dead = 0
}

func (t *mTable) rehash() {
	newCap := len(t.slots)
	if t.live*2 >= newCap {
		newCap *= 2
	}
	ns := make([]*MNode, newCap)
	mask := uint32(newCap - 1)
	for _, s := range t.slots {
		if s == nil || s == mTombstone {
			continue
		}
		i := s.hash & mask
		for ns[i] != nil {
			i = (i + 1) & mask
		}
		ns[i] = s
	}
	t.slots = ns
	t.dead = 0
}

// sweep unlinks every entry whose node is not marked with the given
// epoch, releasing it into the arena, and returns the number of nodes
// freed. Slots become tombstones in place — surviving entries keep
// their positions, so no rebuild happens; the tombstones are compacted
// away by the next load-triggered rehash.
func (t *vTable) sweep(epoch uint32, a *vArena) int {
	freed := 0
	for i, s := range t.slots {
		if s == nil || s == vTombstone {
			continue
		}
		if s.mark != epoch {
			t.slots[i] = vTombstone
			t.live--
			t.noteLevel(s.V, -1)
			t.dead++
			freed++
			a.release(s)
		}
	}
	return freed
}

func (t *mTable) sweep(epoch uint32, m *mArena) int {
	freed := 0
	for i, s := range t.slots {
		if s == nil || s == mTombstone {
			continue
		}
		if s.mark != epoch {
			t.slots[i] = mTombstone
			t.live--
			t.noteLevel(s.V, -1)
			t.dead++
			freed++
			m.release(s)
		}
	}
	return freed
}

// forEach visits every live node (used by diagnostics and the epoch
// wrap-around reset).
func (t *vTable) forEach(f func(*VNode)) {
	for _, s := range t.slots {
		if s != nil && s != vTombstone {
			f(s)
		}
	}
}

func (t *mTable) forEach(f func(*MNode)) {
	for _, s := range t.slots {
		if s != nil && s != mTombstone {
			f(s)
		}
	}
}
