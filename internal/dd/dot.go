package dd

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DotV writes the vector diagram in Graphviz DOT format — the picture
// the paper's Fig. 2 draws: one rank per qubit, solid edges for the
// |1> successor, dashed for |0>, weights as edge labels (1-weights
// omitted, zero stubs drawn as points).
func DotV(w io.Writer, v VEdge, title string) error {
	var sb strings.Builder
	sb.WriteString("digraph vectordd {\n")
	if title != "" {
		fmt.Fprintf(&sb, "  label=%q;\n", title)
	}
	sb.WriteString("  node [shape=circle fixedsize=true width=0.45];\n")
	sb.WriteString("  root [shape=point];\n")

	ids := map[*VNode]int{}
	var order []*VNode
	var collect func(n *VNode)
	collect = func(n *VNode) {
		if n == vTerminal {
			return
		}
		if _, ok := ids[n]; ok {
			return
		}
		ids[n] = len(ids)
		order = append(order, n)
		collect(n.E[0].N)
		collect(n.E[1].N)
	}
	collect(v.N)

	sb.WriteString("  term [shape=box label=\"1\"];\n")
	for _, n := range order {
		fmt.Fprintf(&sb, "  n%d [label=\"q%d\"];\n", ids[n], n.V)
	}
	zeroStubs := 0
	edge := func(from string, e VEdge, dashed bool) {
		style := ""
		if dashed {
			style = " style=dashed"
		}
		if e.W == 0 {
			fmt.Fprintf(&sb, "  z%d [shape=point label=\"\"];\n", zeroStubs)
			fmt.Fprintf(&sb, "  %s -> z%d [label=\"0\"%s];\n", from, zeroStubs, style)
			zeroStubs++
			return
		}
		to := "term"
		if e.N != vTerminal {
			to = fmt.Sprintf("n%d", ids[e.N])
		}
		fmt.Fprintf(&sb, "  %s -> %s [label=%q%s];\n", from, to, weightLabel(e.W), style)
	}

	fmt.Fprintf(&sb, "  root -> %s [label=%q];\n", nodeName(v, ids), weightLabel(v.W))
	for _, n := range order {
		from := fmt.Sprintf("n%d", ids[n])
		edge(from, n.E[0], true)
		edge(from, n.E[1], false)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// DotM writes the matrix diagram in DOT format (four successors per
// node, labelled by quadrant).
func DotM(w io.Writer, m MEdge, title string) error {
	var sb strings.Builder
	sb.WriteString("digraph matrixdd {\n")
	if title != "" {
		fmt.Fprintf(&sb, "  label=%q;\n", title)
	}
	sb.WriteString("  node [shape=circle fixedsize=true width=0.45];\n")
	sb.WriteString("  root [shape=point];\n")

	ids := map[*MNode]int{}
	var order []*MNode
	var collect func(n *MNode)
	collect = func(n *MNode) {
		if n == mTerminal {
			return
		}
		if _, ok := ids[n]; ok {
			return
		}
		ids[n] = len(ids)
		order = append(order, n)
		for i := range n.E {
			collect(n.E[i].N)
		}
	}
	collect(m.N)

	sb.WriteString("  term [shape=box label=\"1\"];\n")
	for _, n := range order {
		fmt.Fprintf(&sb, "  n%d [label=\"q%d\"];\n", ids[n], n.V)
	}
	quadrant := []string{"00", "01", "10", "11"}
	zeroStubs := 0
	rootTo := "term"
	if m.N != mTerminal {
		rootTo = fmt.Sprintf("n%d", ids[m.N])
	}
	fmt.Fprintf(&sb, "  root -> %s [label=%q];\n", rootTo, weightLabel(m.W))
	for _, n := range order {
		from := fmt.Sprintf("n%d", ids[n])
		for i := range n.E {
			e := n.E[i]
			if e.W == 0 {
				fmt.Fprintf(&sb, "  mz%d [shape=point label=\"\"];\n", zeroStubs)
				fmt.Fprintf(&sb, "  %s -> mz%d [label=\"%s:0\"];\n", from, zeroStubs, quadrant[i])
				zeroStubs++
				continue
			}
			to := "term"
			if e.N != mTerminal {
				to = fmt.Sprintf("n%d", ids[e.N])
			}
			fmt.Fprintf(&sb, "  %s -> %s [label=\"%s:%s\"];\n", from, to, quadrant[i], weightLabel(e.W))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func nodeName(v VEdge, ids map[*VNode]int) string {
	if v.N == vTerminal {
		return "term"
	}
	return fmt.Sprintf("n%d", ids[v.N])
}

// weightLabel renders an edge weight compactly ("1" suppressed to ""
// everywhere but the root edge would lose information, so it is kept).
func weightLabel(w complex128) string {
	re, im := real(w), imag(w)
	switch {
	case im == 0:
		return trimFloat(re)
	case re == 0:
		return trimFloat(im) + "i"
	default:
		s := trimFloat(im)
		if !strings.HasPrefix(s, "-") {
			s = "+" + s
		}
		return trimFloat(re) + s + "i"
	}
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.4g", f)
	return s
}

// NodesByLevel returns the node count per variable level — the size
// profile plotted qualitatively in the paper's Fig. 5.
func (e VEdge) NodesByLevel() map[int]int {
	out := map[int]int{}
	seen := map[*VNode]bool{}
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n == vTerminal || seen[n] {
			return
		}
		seen[n] = true
		out[int(n.V)]++
		walk(n.E[0].N)
		walk(n.E[1].N)
	}
	walk(e.N)
	return out
}

// NodesByLevel returns the node count per variable level.
func (e MEdge) NodesByLevel() map[int]int {
	out := map[int]int{}
	seen := map[*MNode]bool{}
	var walk func(n *MNode)
	walk = func(n *MNode) {
		if n == mTerminal || seen[n] {
			return
		}
		seen[n] = true
		out[int(n.V)]++
		for i := range n.E {
			walk(n.E[i].N)
		}
	}
	walk(e.N)
	return out
}

// LevelProfile renders a NodesByLevel map as a compact one-line string
// (top level first), for logging and the ddsim -trace output.
func LevelProfile(profile map[int]int) string {
	if len(profile) == 0 {
		return "[]"
	}
	levels := make([]int, 0, len(profile))
	for l := range profile {
		levels = append(levels, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	parts := make([]string, 0, len(levels))
	for _, l := range levels {
		parts = append(parts, fmt.Sprintf("q%d:%d", l, profile[l]))
	}
	return "[" + strings.Join(parts, " ") + "]"
}
