package dd

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/cnum"
)

// Integrity auditing. The whole speedup argument of the simulator rests
// on canonicity: equal sub-diagrams share one node, so a single
// corrupted edge weight or broken unique-table invariant silently
// poisons every later multiplication while still producing
// plausible-looking amplitudes. Audit re-derives the invariants the
// engine maintains by construction and reports the first violation as a
// typed *IntegrityError:
//
//   - unique-table canonicity: every live node is findable under its
//     key, exactly once, and its stored hash matches a recomputation
//     from its fields;
//   - normalisation: some edge weight is exactly one, no weight exceeds
//     magnitude one (beyond the tie tolerance), zero weights point at
//     the terminal, and every weight is finite and bit-identical to a
//     canonical cnum representative;
//   - structure: no variable skipping (a node's non-zero edges lead to
//     nodes exactly one level below; the terminal only below level 0),
//     node ids are in the engine's issued range;
//   - memory: unique-table live/tombstone counters match the slots,
//     the arena free lists have exactly the recorded length, and every
//     arena node is either live in a table or free-listed;
//   - terminals: the shared terminal sentinels are untouched.
//
// Audit is O(live nodes) and allocates only for the free-list cycle
// check; it is meant for Options.VerifyEvery cadences, not per-gate hot
// paths. The cheap per-state monitors (CheckNorm, CheckUnitary) are
// separate.

// IntegrityError reports a violated DD invariant. It is the typed
// currency of the verification layer: Engine.Audit, the reachable-state
// audits and the online monitors all return it, and core's repair path
// classifies on it.
type IntegrityError struct {
	// Check names the violated invariant: "terminal", "id", "level",
	// "hash", "unique-table", "zero-edge", "weight-finite",
	// "weight-canonical", "normalization", "identity-bit",
	// "table-counters", "arena", "free-list", "identity-cache", "norm",
	// "unitarity".
	Check string
	// Matrix is true when the failing node lives in the matrix table.
	Matrix bool
	// NodeID is the engine-unique id of the failing node (0 when the
	// failure is not attributable to one node).
	NodeID uint32
	// Var is the failing node's variable (level).
	Var int32
	// Path is the root-relative edge path to the failing node for
	// diagram-scoped audits (e.g. "1.0.1": successor 1 of the root, then
	// successor 0, …). Empty for whole-table audits.
	Path string
	// Detail describes the violation.
	Detail string
}

// Error implements error.
func (e *IntegrityError) Error() string {
	kind := "vnode"
	if e.Matrix {
		kind = "mnode"
	}
	s := fmt.Sprintf("dd: integrity violation (%s): %s id=%d var=%d: %s", e.Check, kind, e.NodeID, e.Var, e.Detail)
	if e.Path != "" {
		s += fmt.Sprintf(" (path %s)", e.Path)
	}
	return s
}

// auditTerminals checks the shared terminal sentinels, which every
// diagram bottoms out in.
func auditTerminals() *IntegrityError {
	if vTerminal.V != -1 || vTerminal.id != 0 {
		return &IntegrityError{Check: "terminal", Var: vTerminal.V, NodeID: vTerminal.id,
			Detail: "vector terminal sentinel corrupted"}
	}
	if mTerminal.V != -1 || mTerminal.id != 0 {
		return &IntegrityError{Check: "terminal", Matrix: true, Var: mTerminal.V, NodeID: mTerminal.id,
			Detail: "matrix terminal sentinel corrupted"}
	}
	return nil
}

// auditWeight applies the per-edge weight invariants shared by vector
// and matrix nodes.
func (e *Engine) auditWeight(w complex128) (check, detail string) {
	if math.IsNaN(real(w)) || math.IsNaN(imag(w)) || math.IsInf(real(w), 0) || math.IsInf(imag(w), 0) {
		return "weight-finite", fmt.Sprintf("edge weight %v is not finite", w)
	}
	if cnum.Abs2(w) > 1+magRelTol {
		return "normalization", fmt.Sprintf("edge weight %v has magnitude above one", w)
	}
	if !e.weights.Canonical(w) {
		return "weight-canonical", fmt.Sprintf("edge weight %v is not a canonical representative", w)
	}
	return "", ""
}

// auditVNode checks one live vector node's local invariants.
func (e *Engine) auditVNode(n *VNode) *IntegrityError {
	fail := func(check, detail string) *IntegrityError {
		return &IntegrityError{Check: check, NodeID: n.id, Var: n.V, Detail: detail}
	}
	if n.id == 0 || n.id >= e.nextID {
		return fail("id", fmt.Sprintf("node id outside issued range [1,%d)", e.nextID))
	}
	if n.V < 0 {
		return fail("level", "negative variable on a non-terminal node")
	}
	if h := hashVKey(n.V, n.E[0], n.E[1]); h != n.hash {
		return fail("hash", fmt.Sprintf("stored hash %#x, recomputed %#x — node fields mutated after interning", n.hash, h))
	}
	one := false
	for i := range n.E {
		w, c := n.E[i].W, n.E[i].N
		if w == cnum.Zero {
			if c != vTerminal {
				return fail("zero-edge", fmt.Sprintf("zero-weight edge %d does not point at the terminal", i))
			}
			continue
		}
		if check, detail := e.auditWeight(w); check != "" {
			return fail(check, fmt.Sprintf("edge %d: %s", i, detail))
		}
		if w == cnum.One {
			one = true
		}
		if c.V != n.V-1 {
			return fail("level", fmt.Sprintf("edge %d skips from level %d to %d", i, n.V, c.V))
		}
	}
	if !one {
		return fail("normalization", "no edge weight is exactly one")
	}
	return nil
}

// auditMNode checks one live matrix node's local invariants; see
// auditVNode.
func (e *Engine) auditMNode(n *MNode) *IntegrityError {
	fail := func(check, detail string) *IntegrityError {
		return &IntegrityError{Check: check, Matrix: true, NodeID: n.id, Var: n.V, Detail: detail}
	}
	if n.id == 0 || n.id >= e.nextID {
		return fail("id", fmt.Sprintf("node id outside issued range [1,%d)", e.nextID))
	}
	if n.V < 0 {
		return fail("level", "negative variable on a non-terminal node")
	}
	if h := hashMKey(n.V, &n.E); h != n.hash {
		return fail("hash", fmt.Sprintf("stored hash %#x, recomputed %#x — node fields mutated after interning", n.hash, h))
	}
	one := false
	for i := range n.E {
		w, c := n.E[i].W, n.E[i].N
		if w == cnum.Zero {
			if c != mTerminal {
				return fail("zero-edge", fmt.Sprintf("zero-weight edge %d does not point at the terminal", i))
			}
			continue
		}
		if check, detail := e.auditWeight(w); check != "" {
			return fail(check, fmt.Sprintf("edge %d: %s", i, detail))
		}
		if w == cnum.One {
			one = true
		}
		if c.V != n.V-1 {
			return fail("level", fmt.Sprintf("edge %d skips from level %d to %d", i, n.V, c.V))
		}
	}
	if !one {
		return fail("normalization", "no edge weight is exactly one")
	}
	// The isIdentity bit is derived and deliberately excluded from the
	// stored hash, so the hash check above cannot see a corrupted bit —
	// recomputing the shape from the edges here is the only detector.
	// (With a single corrupted bit the children are honest, so using the
	// child's bit in the recomputation is sound; a corrupted child fails
	// its own audit.)
	if want := identityShape(n); n.isIdentity != want {
		return fail("identity-bit", fmt.Sprintf("stored isIdentity=%v, structure says %v", n.isIdentity, want))
	}
	return nil
}

// identityShape recomputes, from the stored (normalised) edges, whether
// n is an identity node — the ground truth for the stamped isIdentity
// bit.
func identityShape(n *MNode) bool {
	return n.E[1].W == cnum.Zero && n.E[2].W == cnum.Zero &&
		n.E[0].W == cnum.One && n.E[3].W == cnum.One &&
		n.E[0].N == n.E[3].N &&
		(n.E[0].N == mTerminal || n.E[0].N.isIdentity)
}

// Audit verifies the engine's structural invariants — unique-table
// canonicity and stored-hash consistency, weight canonicalisation and
// normalisation on every edge of every live node, arena/free-list
// accounting, and the terminal sentinels — and returns the first
// violation as a *IntegrityError (nil when the engine is sound). The
// engine is not modified. Cost is O(live nodes); see Options.VerifyEvery
// in internal/core for the intended cadence.
func (e *Engine) Audit() error {
	if err := auditTerminals(); err != nil {
		return err
	}

	live, dead := 0, 0
	for _, s := range e.vUnique.slots {
		switch s {
		case nil:
		case vTombstone:
			dead++
		default:
			live++
			if err := e.auditVNode(s); err != nil {
				return err
			}
			// Canonicity: probing with the node's own key must land on
			// this very node — a duplicate or a mis-placed entry (e.g.
			// after a corrupted rehash) surfaces as a different hit or a
			// miss.
			if hit, _ := e.vUnique.find(s.hash, s.V, s.E[0], s.E[1]); hit != s {
				return &IntegrityError{Check: "unique-table", NodeID: s.id, Var: s.V,
					Detail: "node is not findable under its own key (duplicate or misplaced entry)"}
			}
		}
	}
	if live != e.vUnique.live || dead != e.vUnique.dead {
		return &IntegrityError{Check: "table-counters",
			Detail: fmt.Sprintf("vector table counts live=%d dead=%d, slots hold %d/%d", e.vUnique.live, e.vUnique.dead, live, dead)}
	}

	live, dead = 0, 0
	for _, s := range e.mUnique.slots {
		switch s {
		case nil:
		case mTombstone:
			dead++
		default:
			live++
			if err := e.auditMNode(s); err != nil {
				return err
			}
			if hit, _ := e.mUnique.find(s.hash, s.V, &s.E); hit != s {
				return &IntegrityError{Check: "unique-table", Matrix: true, NodeID: s.id, Var: s.V,
					Detail: "node is not findable under its own key (duplicate or misplaced entry)"}
			}
		}
	}
	if live != e.mUnique.live || dead != e.mUnique.dead {
		return &IntegrityError{Check: "table-counters", Matrix: true,
			Detail: fmt.Sprintf("matrix table counts live=%d dead=%d, slots hold %d/%d", e.mUnique.live, e.mUnique.dead, live, dead)}
	}

	if err := e.auditArenas(); err != nil {
		return err
	}

	// The identity cache is marked as a GC root, so its diagrams must
	// still be live and well-formed.
	for k, id := range e.identity {
		if k == 0 {
			continue
		}
		if id.W != cnum.One || id.N == mTerminal || int(id.N.V) != k-1 || !id.N.isIdentity {
			return &IntegrityError{Check: "identity-cache", Matrix: true, NodeID: id.N.id, Var: id.N.V,
				Detail: fmt.Sprintf("cached identity over %d qubits is malformed", k)}
		}
	}
	return nil
}

// auditArenas checks free-list length against the recorded count and
// total arena occupancy against live + free (every node ever allocated
// is either interned or free-listed; a node in neither leaked, a node
// in both double-freed).
func (e *Engine) auditArenas() *IntegrityError {
	freeLen, seen := 0, make(map[*VNode]bool)
	for n := e.vArena.free; n != nil; n = n.E[0].N {
		if seen[n] {
			return &IntegrityError{Check: "free-list", NodeID: n.id, Var: n.V, Detail: "cycle in the vector arena free list"}
		}
		seen[n] = true
		freeLen++
		if freeLen > e.vArena.nfree {
			break
		}
	}
	if freeLen != e.vArena.nfree {
		return &IntegrityError{Check: "free-list",
			Detail: fmt.Sprintf("vector free list holds %d nodes, arena records %d", freeLen, e.vArena.nfree)}
	}
	total := 0
	for _, c := range e.vArena.chunks {
		total += len(c)
	}
	if total != e.vUnique.live+e.vArena.nfree {
		return &IntegrityError{Check: "arena",
			Detail: fmt.Sprintf("vector arena holds %d nodes, %d live + %d free recorded", total, e.vUnique.live, e.vArena.nfree)}
	}

	freeLenM, seenM := 0, make(map[*MNode]bool)
	for n := e.mArena.free; n != nil; n = n.E[0].N {
		if seenM[n] {
			return &IntegrityError{Check: "free-list", Matrix: true, NodeID: n.id, Var: n.V, Detail: "cycle in the matrix arena free list"}
		}
		seenM[n] = true
		freeLenM++
		if freeLenM > e.mArena.nfree {
			break
		}
	}
	if freeLenM != e.mArena.nfree {
		return &IntegrityError{Check: "free-list", Matrix: true,
			Detail: fmt.Sprintf("matrix free list holds %d nodes, arena records %d", freeLenM, e.mArena.nfree)}
	}
	total = 0
	for _, c := range e.mArena.chunks {
		total += len(c)
	}
	if total != e.mUnique.live+e.mArena.nfree {
		return &IntegrityError{Check: "arena", Matrix: true,
			Detail: fmt.Sprintf("matrix arena holds %d nodes, %d live + %d free recorded", total, e.mUnique.live, e.mArena.nfree)}
	}
	return nil
}

// AuditV audits only the diagram reachable from v, attaching the
// root-relative edge path of the first failing node (Engine.Audit
// covers all live nodes but cannot name a path). It also verifies every
// reachable node is live in the unique table — a dangling pointer into
// a freed or never-interned node fails here even when its fields happen
// to look plausible.
func (e *Engine) AuditV(v VEdge) error {
	if check, detail := e.auditWeight(v.W); check != "" && v.W != cnum.Zero {
		// Root weights may legitimately exceed magnitude one only for
		// unnormalised intermediate diagrams; state roots seen by the
		// verifier are unit-norm, so keep only the finiteness and
		// canonicality parts here.
		if check != "normalization" {
			return &IntegrityError{Check: check, Path: "root", Detail: detail}
		}
	}
	visited := make(map[*VNode]bool)
	var walk func(n *VNode, path string) *IntegrityError
	walk = func(n *VNode, path string) *IntegrityError {
		if n == vTerminal || visited[n] {
			return nil
		}
		visited[n] = true
		if err := e.auditVNode(n); err != nil {
			err.Path = path
			return err
		}
		if hit, _ := e.vUnique.find(n.hash, n.V, n.E[0], n.E[1]); hit != n {
			return &IntegrityError{Check: "unique-table", NodeID: n.id, Var: n.V, Path: path,
				Detail: "reachable node is not live in the unique table"}
		}
		for i := range n.E {
			if err := walk(n.E[i].N, fmt.Sprintf("%s.%d", path, i)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(v.N, "root"); err != nil {
		return err
	}
	return nil
}

// AuditM audits the matrix diagram reachable from m; see AuditV.
func (e *Engine) AuditM(m MEdge) error {
	visited := make(map[*MNode]bool)
	var walk func(n *MNode, path string) *IntegrityError
	walk = func(n *MNode, path string) *IntegrityError {
		if n == mTerminal || visited[n] {
			return nil
		}
		visited[n] = true
		if err := e.auditMNode(n); err != nil {
			err.Path = path
			return err
		}
		if hit, _ := e.mUnique.find(n.hash, n.V, &n.E); hit != n {
			return &IntegrityError{Check: "unique-table", Matrix: true, NodeID: n.id, Var: n.V, Path: path,
				Detail: "reachable node is not live in the unique table"}
		}
		for i := range n.E {
			if err := walk(n.E[i].N, fmt.Sprintf("%s.%d", path, i)); err != nil {
				return err
			}
		}
		return nil
	}
	// Explicit nil check: returning walk's *IntegrityError directly
	// would wrap a nil pointer in a non-nil error interface.
	if err := walk(m.N, "root"); err != nil {
		return err
	}
	return nil
}

// DefaultNormTol is the norm-drift tolerance used by the online state
// monitor. Canonicalisation introduces up to cnum.Tol of rounding per
// weight; over realistic circuit lengths the accumulated drift stays
// orders of magnitude below this bound, while a single flipped mantissa
// bit in a significant weight exceeds it.
const DefaultNormTol = 1e-6

// CheckNorm is the cheap online state monitor: it reports a typed
// *IntegrityError when the state's 2-norm has drifted more than tol
// from one (tol <= 0 selects DefaultNormTol). The drift value is
// returned for trend tracking either way.
func CheckNorm(v VEdge, tol float64) (drift float64, err error) {
	if tol <= 0 {
		tol = DefaultNormTol
	}
	drift = math.Abs(v.Norm() - 1)
	if drift > tol || math.IsNaN(drift) {
		return drift, &IntegrityError{Check: "norm", NodeID: v.N.id, Var: v.N.V,
			Detail: fmt.Sprintf("state norm drifted %.3e from unit (tolerance %.1e)", drift, tol)}
	}
	return drift, nil
}

// CheckUnitary is the trace-based unitarity spot-check for accumulated
// operation matrices: for a unitary M over n qubits, tr(M†M) = 2ⁿ
// exactly, and the trace is computable in DD form without expanding the
// matrix. A corrupted weight or child pointer anywhere in the
// accumulated product shows up as a trace defect. tol is relative to
// 2ⁿ (tol <= 0 selects DefaultNormTol). The check allocates nodes for
// M†M; run it at verification cadence, not per gate.
func (e *Engine) CheckUnitary(m MEdge, tol float64) error {
	if tol <= 0 {
		tol = DefaultNormTol
	}
	if m.N == mTerminal {
		if math.Abs(cnum.Abs2(m.W)-1) > tol {
			return &IntegrityError{Check: "unitarity", Matrix: true,
				Detail: fmt.Sprintf("scalar operation has magnitude %v, want 1", cmplx.Abs(m.W))}
		}
		return nil
	}
	dim := math.Ldexp(1, m.Qubits())
	tr := e.Trace(e.MulMat(e.ConjTranspose(m), m))
	if cmplx.Abs(tr-complex(dim, 0)) > tol*dim {
		return &IntegrityError{Check: "unitarity", Matrix: true, NodeID: m.N.id, Var: m.N.V,
			Detail: fmt.Sprintf("tr(M†M) = %v over %d qubits, want %g", tr, m.Qubits(), dim)}
	}
	return nil
}

// CopyV rebuilds the diagram under v — owned by any engine — inside e,
// re-canonicalising every node and weight through e's unique tables and
// value table. This is the repair primitive: rebuilding a state into a
// fresh engine discards whatever table damage the old engine carried
// while preserving the represented vector exactly.
func (e *Engine) CopyV(v VEdge) VEdge {
	memo := make(map[*VNode]VEdge)
	var rebuild func(n *VNode) VEdge
	rebuild = func(n *VNode) VEdge {
		if n == vTerminal {
			return VOne()
		}
		if r, ok := memo[n]; ok {
			return r
		}
		e0 := e.scaleV(rebuild(n.E[0].N), n.E[0].W)
		e1 := e.scaleV(rebuild(n.E[1].N), n.E[1].W)
		r := e.makeVNode(n.V, e0, e1)
		memo[n] = r
		return r
	}
	if v.N == nil || v.W == cnum.Zero {
		return VZero()
	}
	return e.scaleV(rebuild(v.N), v.W)
}

// CopyM rebuilds a matrix diagram inside e; see CopyV.
func (e *Engine) CopyM(m MEdge) MEdge {
	memo := make(map[*MNode]MEdge)
	var rebuild func(n *MNode) MEdge
	rebuild = func(n *MNode) MEdge {
		if n == mTerminal {
			return MOne()
		}
		if r, ok := memo[n]; ok {
			return r
		}
		var es [4]MEdge
		for i := range n.E {
			es[i] = e.scaleM(rebuild(n.E[i].N), n.E[i].W)
		}
		r := e.makeMNode(n.V, es)
		memo[n] = r
		return r
	}
	if m.N == nil || m.W == cnum.Zero {
		return MZero()
	}
	return e.scaleM(rebuild(m.N), m.W)
}
