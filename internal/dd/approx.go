package dd

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cnum"
)

// Marginal returns the probability distribution over the given qubits
// (in the order given: bit i of an outcome index corresponds to
// qubits[i]), marginalising all others. Cost is O(2^len(qubits) ·
// nodes) in the worst case; intended for small qubit subsets.
func (e *Engine) Marginal(v VEdge, qubits []int) []float64 {
	n := v.Qubits()
	if len(qubits) > 20 {
		panic(fmt.Sprintf("dd: Marginal over %d qubits would allocate 2^%d entries", len(qubits), len(qubits)))
	}
	pos := make(map[int]int, len(qubits)) // qubit -> outcome bit position
	for i, q := range qubits {
		if q < 0 || q >= n {
			panic(fmt.Sprintf("dd: Marginal: qubit %d out of range for %d-qubit state", q, n))
		}
		if _, dup := pos[q]; dup {
			panic(fmt.Sprintf("dd: Marginal: duplicate qubit %d", q))
		}
		pos[q] = i
	}
	out := make([]float64, 1<<uint(len(qubits)))
	massMemo := make(map[*VNode]float64)

	// The outcome distribution below a node is independent of the path
	// taken to reach it, so memoisation on the node alone is sound.
	memo := make(map[*VNode]map[uint64]float64)

	// walk returns, for the sub-diagram under node, the map outcome →
	// probability mass (relative; caller scales by |w|²).
	var walk func(node *VNode) map[uint64]float64
	walk = func(node *VNode) map[uint64]float64 {
		if node == vTerminal {
			return map[uint64]float64{0: 1}
		}
		if m, ok := memo[node]; ok {
			return m
		}
		res := map[uint64]float64{}
		bitPos, tracked := pos[int(node.V)]
		for b := 0; b < 2; b++ {
			c := node.E[b]
			if c.W == 0 {
				continue
			}
			w2 := cnum.Abs2(c.W)
			var sub map[uint64]float64
			if !trackedBelow(node, pos) {
				// No tracked qubits below: collapse to total mass.
				sub = map[uint64]float64{0: mass(c.N, massMemo)}
			} else {
				sub = walk(c.N)
			}
			for o, p := range sub {
				oo := o
				if tracked && b == 1 {
					oo |= 1 << uint(bitPos)
				}
				res[oo] += w2 * p
			}
		}
		memo[node] = res
		return res
	}
	top := walk(v.N)
	w2 := cnum.Abs2(v.W)
	for o, p := range top {
		out[o] += w2 * p
	}
	return out
}

// trackedBelow reports whether any tracked qubit lies at or below the
// node's level (levels run 0..V, so a tracked qubit q ≤ V qualifies).
func trackedBelow(node *VNode, pos map[int]int) bool {
	for q := range pos {
		if q <= int(node.V) {
			return true
		}
	}
	return false
}

// ApproxResult reports an approximation outcome.
type ApproxResult struct {
	State    VEdge
	Fidelity float64 // |<approx|original>|²
	Removed  int     // nodes cut
}

// Approximate reduces the state DD to at most maxNodes nodes by cutting
// the lowest-probability-mass edges and renormalising — the size/
// accuracy trade-off studied in the DD approximation literature
// (Zulehner et al.). The returned fidelity quantifies the damage; the
// original state is untouched. maxNodes must be at least the qubit
// count (a product state cannot be smaller).
func (e *Engine) Approximate(v VEdge, maxNodes int) (ApproxResult, error) {
	n := v.Qubits()
	if maxNodes < n {
		return ApproxResult{}, fmt.Errorf("dd: Approximate: budget %d below qubit count %d", maxNodes, n)
	}
	size := e.SizeV(v)
	if size <= maxNodes {
		return ApproxResult{State: v, Fidelity: 1}, nil
	}

	// Rank every edge by the probability mass that flows through it
	// (upstream amplitude² × downstream mass), then zero edges from the
	// least significant up until the rebuild fits the budget.
	massMemo := make(map[*VNode]float64)
	type edgeRef struct {
		node *VNode
		side int
		flow float64
	}
	var edges []edgeRef
	up := map[*VNode]float64{v.N: cnum.Abs2(v.W)}
	queue := []*VNode{v.N}
	seen := map[*VNode]bool{v.N: true}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for s := 0; s < 2; s++ {
			c := node.E[s]
			if c.W == 0 {
				continue
			}
			flow := up[node] * cnum.Abs2(c.W) * mass(c.N, massMemo)
			edges = append(edges, edgeRef{node: node, side: s, flow: flow})
			if c.N != vTerminal {
				up[c.N] += up[node] * cnum.Abs2(c.W)
				if !seen[c.N] {
					seen[c.N] = true
					queue = append(queue, c.N)
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].flow < edges[j].flow })

	cut := map[[2]uintptrish]bool{}
	removedMass := 0.0
	result := v
	removed := 0
	for _, er := range edges {
		if e.SizeV(result) <= maxNodes {
			break
		}
		// Never cut the last remaining edge mass.
		if removedMass+er.flow >= 0.999 {
			continue
		}
		cut[[2]uintptrish{uintptrish(er.node.id), uintptrish(er.side)}] = true
		removedMass += er.flow
		rebuilt := e.rebuildWithCuts(v, cut)
		if rebuilt.IsZero() {
			delete(cut, [2]uintptrish{uintptrish(er.node.id), uintptrish(er.side)})
			removedMass -= er.flow
			continue
		}
		result = rebuilt
		removed++
	}
	if norm := result.Norm(); norm < cnum.Tol {
		return ApproxResult{}, fmt.Errorf("dd: Approximate: state collapsed to zero")
	}
	result = e.Normalize(result)
	fid := e.Fidelity(result, v)
	return ApproxResult{State: result, Fidelity: fid, Removed: removed}, nil
}

type uintptrish uint64

// rebuildWithCuts reconstructs the diagram with the selected edges
// zeroed.
func (e *Engine) rebuildWithCuts(v VEdge, cut map[[2]uintptrish]bool) VEdge {
	memo := make(map[*VNode]VEdge)
	var rec func(node *VNode) VEdge
	rec = func(node *VNode) VEdge {
		if node == vTerminal {
			return VOne()
		}
		if r, ok := memo[node]; ok {
			return r
		}
		var es [2]VEdge
		for s := 0; s < 2; s++ {
			if cut[[2]uintptrish{uintptrish(node.id), uintptrish(s)}] || node.E[s].W == 0 {
				es[s] = VZero()
				continue
			}
			sub := rec(node.E[s].N)
			es[s] = e.scaleV(sub, node.E[s].W)
		}
		r := e.makeVNode(node.V, es[0], es[1])
		memo[node] = r
		return r
	}
	out := rec(v.N)
	return e.scaleV(out, v.W)
}

// FidelityBound returns 1 - mass(cuts) as a quick lower bound estimate
// for the fidelity after removing the given probability mass.
func FidelityBound(removedMass float64) float64 {
	if removedMass >= 1 {
		return 0
	}
	return math.Max(0, 1-removedMass)
}
