package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnum"
)

// The testing/quick properties below drive the engine with arbitrary
// seeded inputs; each seed deterministically generates states/gates so
// failures are reproducible from the printed arguments.

func stateFromSeed(e *Engine, seed int64, n int) VEdge {
	return e.FromVector(randState(rand.New(rand.NewSource(seed)), n))
}

func gateFromSeed(e *Engine, seed int64, n int) MEdge {
	rng := rand.New(rand.NewSource(seed))
	tgt := rng.Intn(n)
	var controls []Control
	for q := 0; q < n; q++ {
		if q != tgt && rng.Intn(3) == 0 {
			controls = append(controls, Control{Qubit: q, Negative: rng.Intn(2) == 0})
		}
	}
	return e.GateDD(randUnitary(rng), n, tgt, controls)
}

func vecApproxEq(a, b VEdge) bool {
	av, bv := a.ToVector(), b.ToVector()
	for i := range av {
		if cmplx.Abs(av[i]-bv[i]) > 1e-8 {
			return false
		}
	}
	return true
}

// Property: addition commutes.
func TestQuickAddCommutative(t *testing.T) {
	e := New()
	f := func(s1, s2 int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 1
		a := stateFromSeed(e, s1, n)
		b := stateFromSeed(e, s2, n)
		return vecApproxEq(e.Add(a, b), e.Add(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: addition associates.
func TestQuickAddAssociative(t *testing.T) {
	e := New()
	f := func(s1, s2, s3 int64, nRaw uint8) bool {
		n := int(nRaw)%4 + 1
		a := stateFromSeed(e, s1, n)
		b := stateFromSeed(e, s2, n)
		c := stateFromSeed(e, s3, n)
		return vecApproxEq(e.Add(e.Add(a, b), c), e.Add(a, e.Add(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: matrix application is linear: M(a+b) = Ma + Mb.
func TestQuickMulVecLinear(t *testing.T) {
	e := New()
	f := func(s1, s2, s3 int64, nRaw uint8) bool {
		n := int(nRaw)%4 + 1
		m := gateFromSeed(e, s3, n)
		a := stateFromSeed(e, s1, n)
		b := stateFromSeed(e, s2, n)
		lhs := e.MulVec(m, e.Add(a, b))
		rhs := e.Add(e.MulVec(m, a), e.MulVec(m, b))
		return vecApproxEq(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: scalars commute through multiplication: (cM)v = c(Mv).
func TestQuickScalarFactorisation(t *testing.T) {
	e := New()
	f := func(s1, s2 int64, re, im float64, nRaw uint8) bool {
		n := int(nRaw)%4 + 1
		c := complex(math.Mod(re, 2), math.Mod(im, 2))
		if cmplx.IsNaN(c) || cmplx.IsInf(c) {
			return true
		}
		m := gateFromSeed(e, s1, n)
		v := stateFromSeed(e, s2, n)
		lhs := e.MulVec(e.ScaleM(m, c), v)
		rhs := e.ScaleV(e.MulVec(m, v), c)
		return vecApproxEq(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: unitaries preserve norm and inner products.
func TestQuickUnitaryInvariants(t *testing.T) {
	e := New()
	f := func(s1, s2, s3 int64, nRaw uint8) bool {
		n := int(nRaw)%4 + 1
		m := gateFromSeed(e, s3, n)
		a := stateFromSeed(e, s1, n)
		b := stateFromSeed(e, s2, n)
		ma := e.MulVec(m, a)
		mb := e.MulVec(m, b)
		if math.Abs(ma.Norm()-1) > 1e-8 {
			return false
		}
		return cmplx.Abs(e.InnerProduct(ma, mb)-e.InnerProduct(a, b)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the fundamental rearrangement of the paper, on arbitrary
// chains: applying k gates one by one equals applying their combined
// product once.
func TestQuickCombinationEquivalence(t *testing.T) {
	e := New()
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%4 + 2
		k := int(kRaw)%6 + 2
		rng := rand.New(rand.NewSource(seed))
		v := stateFromSeed(e, seed+1, n)
		seq := v
		combined := e.Identity(n)
		for i := 0; i < k; i++ {
			g := gateFromSeed(e, rng.Int63(), n)
			seq = e.MulVec(g, seq)
			combined = e.MulMat(g, combined)
		}
		return vecApproxEq(seq, e.MulVec(combined, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Kron respects the mixed-product rule:
// (A⊗B)(x⊗y) = (Ax)⊗(By).
func TestQuickKronMixedProduct(t *testing.T) {
	e := New()
	f := func(s1, s2, s3, s4 int64, nRaw uint8) bool {
		nHi := int(nRaw)%2 + 1
		nLo := int(nRaw>>4)%2 + 1
		a := gateFromSeed(e, s1, nHi)
		b := gateFromSeed(e, s2, nLo)
		x := stateFromSeed(e, s3, nHi)
		y := stateFromSeed(e, s4, nLo)
		lhs := e.MulVec(e.KronM(a, b), e.KronV(x, y))
		rhs := e.KronV(e.MulVec(a, x), e.MulVec(b, y))
		return vecApproxEq(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: inner products are conjugate symmetric.
func TestQuickInnerProductConjugateSymmetry(t *testing.T) {
	e := New()
	f := func(s1, s2 int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 1
		a := stateFromSeed(e, s1, n)
		b := stateFromSeed(e, s2, n)
		ab := e.InnerProduct(a, b)
		ba := e.InnerProduct(b, a)
		return cmplx.Abs(ab-cmplx.Conj(ba)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: trace is linear and invariant under transposition.
func TestQuickTraceProperties(t *testing.T) {
	e := New()
	f := func(s1, s2 int64, nRaw uint8) bool {
		n := int(nRaw)%4 + 1
		a := gateFromSeed(e, s1, n)
		b := gateFromSeed(e, s2, n)
		trSum := e.Trace(e.AddM(a, b))
		if cmplx.Abs(trSum-(e.Trace(a)+e.Trace(b))) > 1e-8 {
			return false
		}
		// tr(AB) = tr(BA).
		return cmplx.Abs(e.Trace(e.MulMat(a, b))-e.Trace(e.MulMat(b, a))) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: structural sharing — building the same vector twice yields
// the same root pointer (canonicity through the unique tables).
func TestQuickCanonicity(t *testing.T) {
	e := New()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 1
		a := stateFromSeed(e, seed, n)
		b := stateFromSeed(e, seed, n)
		return a.N == b.N && cnum.Eq(a.W, b.W)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: measurement probabilities sum to one over every qubit.
func TestQuickProbNormalisation(t *testing.T) {
	e := New()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 1
		v := stateFromSeed(e, seed, n)
		for q := 0; q < n; q++ {
			if math.Abs(v.Prob(q, 0)+v.Prob(q, 1)-1) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
