package dd

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// swapBits exchanges bits l and l+1 of index i — the dense reference
// for what one adjacent level swap does to basis indices.
func swapBits(i uint64, l int) uint64 {
	b0 := i >> uint(l) & 1
	b1 := i >> uint(l+1) & 1
	i &^= 3 << uint(l)
	return i | b0<<uint(l+1) | b1<<uint(l)
}

// Property: a random walk of adjacent level swaps over a random state
// preserves the circuit-indexed amplitudes (checked against the dense
// reference through the tracked order) and leaves the engine and the
// diagram Audit-clean after every single swap.
func TestReorderSwapVProperty(t *testing.T) {
	f := func(seed int64, nRaw, steps uint8) bool {
		e := New()
		n := int(nRaw)%5 + 2
		rng := rand.New(rand.NewSource(seed))
		want := randState(rng, n)
		v := e.FromVector(want)
		order := IdentityOrder(n)
		for s := 0; s < int(steps)%12+1; s++ {
			l := rng.Intn(n - 1)
			v = e.SwapAdjacentV(v, l)
			order[l], order[l+1] = order[l+1], order[l]
			if err := e.AuditV(v); err != nil {
				t.Logf("AuditV after swap %d at level %d: %v", s, l, err)
				return false
			}
			if err := e.Audit(); err != nil {
				t.Logf("Audit after swap %d: %v", s, err)
				return false
			}
			got := VectorInOrder(v, order)
			for i := range want {
				if cmplx.Abs(got[i]-want[i]) > 1e-8 {
					t.Logf("amp %d drifted after swap %d: got %v want %v", i, s, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Zero-heavy diagrams (basis states) exercise the vTerminal guards of
// the swap helpers: most child edges are zero edges whose node is the
// terminal.
func TestReorderSwapVBasisStates(t *testing.T) {
	e := New()
	n := 5
	for idx := uint64(0); idx < 1<<uint(n); idx += 3 {
		v := e.BasisState(n, idx)
		for l := 0; l < n-1; l++ {
			sw := e.SwapAdjacentV(v, l)
			if err := e.AuditV(sw); err != nil {
				t.Fatalf("AuditV(basis %d, swap %d): %v", idx, l, err)
			}
			if got, want := sw.Amplitude(swapBits(idx, l)), complex(1, 0); cmplx.Abs(got-want) > 1e-12 {
				t.Fatalf("basis %d swap %d: amplitude %v, want 1", idx, l, got)
			}
		}
	}
	// The all-zero edge is a no-op fixpoint.
	if sw := e.SwapAdjacentV(e.ZeroState(3), 1); sw.IsZero() {
		t.Fatalf("swap of |000> must stay non-zero")
	}
}

// Property: swapping a matrix DD permutes rows and columns by the same
// bit exchange, and the result is AuditM-clean.
func TestReorderSwapMProperty(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		e := New()
		n := int(nRaw)%3 + 2
		l := int(lRaw) % (n - 1)
		m := gateFromSeed(e, seed, n)
		sw := e.SwapAdjacentM(m, l)
		if err := e.AuditM(sw); err != nil {
			t.Logf("AuditM: %v", err)
			return false
		}
		if err := e.Audit(); err != nil {
			t.Logf("Audit: %v", err)
			return false
		}
		orig, got := m.ToMatrix(), sw.ToMatrix()
		for r := range orig {
			for c := range orig[r] {
				pr, pc := swapBits(uint64(r), l), swapBits(uint64(c), l)
				if cmplx.Abs(got[pr][pc]-orig[r][c]) > 1e-8 {
					t.Logf("entry (%d,%d): got %v want %v", pr, pc, got[pr][pc], orig[r][c])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// A swap is an involution: applying it twice returns the identical
// canonical edge (pointer equality included — hash-consing guarantees
// it when the function is truly unchanged).
func TestReorderSwapInvolution(t *testing.T) {
	e := New()
	v := stateFromSeed(e, 42, 6)
	for l := 0; l < 5; l++ {
		back := e.SwapAdjacentV(e.SwapAdjacentV(v, l), l)
		if back != v {
			t.Fatalf("double swap at level %d is not the identity edge", l)
		}
	}
	m := gateFromSeed(e, 7, 4)
	for l := 0; l < 3; l++ {
		back := e.SwapAdjacentM(e.SwapAdjacentM(m, l), l)
		if back != m {
			t.Fatalf("double matrix swap at level %d is not the identity edge", l)
		}
	}
}

// crossState prepares the cross-register entangler: Bell pairs between
// qubit i and i+n/2 under the identity order, which forces ~2^(n/2)
// nodes; an interleaved order collapses it to O(n).
func crossState(e *Engine, n int) VEdge {
	v := e.ZeroState(n)
	half := n / 2
	for i := 0; i < half; i++ {
		v = e.MulVec(e.GateDD(gH, n, i, nil), v)
		v = e.MulVec(e.GateDD(gX, n, i+half, []Control{Pos(i)}), v)
	}
	return v
}

// Sifting must find the interleaved order for the cross-register state
// (≥2x reduction; the true optimum is linear in n) while preserving
// amplitudes and audits.
func TestSiftVReducesCrossRegisterState(t *testing.T) {
	e := New()
	n := 12
	v := crossState(e, n)
	want := VectorInOrder(v, nil)
	order := IdentityOrder(n)
	before := e.SizeV(v)
	sifted, res := e.SiftV(v, order, 0)
	if res.Before != before {
		t.Fatalf("SiftResult.Before = %d, want %d", res.Before, before)
	}
	if res.After != e.SizeV(sifted) {
		t.Fatalf("SiftResult.After = %d, actual size %d", res.After, e.SizeV(sifted))
	}
	if res.After*2 > before {
		t.Fatalf("sifting reduced %d -> %d nodes; want at least 2x", before, res.After)
	}
	if !IsPermutation(order) {
		t.Fatalf("sifting left a non-permutation order %v", order)
	}
	if err := e.AuditV(sifted); err != nil {
		t.Fatalf("AuditV after sifting: %v", err)
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("Audit after sifting: %v", err)
	}
	got := VectorInOrder(sifted, order)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("amplitude %d: got %v want %v", i, got[i], want[i])
		}
	}
	if st := e.Stats(); st.ReorderSwaps == 0 || st.SiftPasses == 0 {
		t.Fatalf("stats not updated: %+v", st)
	}
}

// The swap budget is a hard cap up to the documented restore overshoot
// (≤ one walk across the levels).
func TestSiftVBudget(t *testing.T) {
	e := New()
	n := 10
	v := crossState(e, n)
	order := IdentityOrder(n)
	_, res := e.SiftV(v, order, 5)
	if res.Swaps > 5+n {
		t.Fatalf("budget 5 overshot to %d swaps (limit %d)", res.Swaps, 5+n)
	}
	if !IsPermutation(order) {
		t.Fatalf("budgeted sift left non-permutation order %v", order)
	}
}

// An injected abort inside sifting must surface as the usual
// *AbortError panic from the swap probe, with the diagram it was
// handed still intact. Chaos-gated: skipped unless fault injection is
// compiled/opted in.
func TestSiftAbortInjection(t *testing.T) {
	e := New()
	n := 10
	v := crossState(e, n)
	if !e.InjectAbortAfter(3, AbortInjected) {
		t.Skip("fault injection disabled (build without ddchaos and DD_CHAOS unset)")
	}
	order := IdentityOrder(n)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("sift with injected abort did not panic")
			}
			var ae *AbortError
			if err, ok := r.(error); !ok || !errors.As(err, &ae) {
				t.Fatalf("panic value %v is not an *AbortError", r)
			}
		}()
		e.SiftV(v, order, 0)
	}()
	// The input diagram must still audit clean after the aborted sift.
	if err := e.AuditV(v); err != nil {
		t.Fatalf("AuditV on input after aborted sift: %v", err)
	}
}

func TestReorderIndexMaps(t *testing.T) {
	order := []int{2, 0, 3, 1}
	if !IsPermutation(order) {
		t.Fatalf("IsPermutation rejected %v", order)
	}
	for _, bad := range [][]int{{0, 0, 1}, {1, 2, 3}, {-1, 0, 1}} {
		if IsPermutation(bad) {
			t.Fatalf("IsPermutation accepted %v", bad)
		}
	}
	for i := uint64(0); i < 16; i++ {
		if got := IndexFromDD(order, IndexToDD(order, i)); got != i {
			t.Fatalf("round trip %d -> %d", i, got)
		}
	}
	// Identity (nil) order is the identity map.
	if IndexToDD(nil, 13) != 13 || IndexFromDD(nil, 13) != 13 {
		t.Fatalf("nil order must be identity")
	}
}

// The per-level unique-table index must agree with a full recount
// after interning and GC.
func TestLevelIndexTracksInsertAndSweep(t *testing.T) {
	e := New()
	v := crossState(e, 8)
	check := func(when string) {
		for l := 0; l < 8; l++ {
			want := 0
			e.vUnique.forEach(func(n *VNode) {
				if int(n.V) == l {
					want++
				}
			})
			if got := e.VLevelCount(l); got != want {
				t.Fatalf("%s: VLevelCount(%d) = %d, recount %d", when, l, got, want)
			}
		}
	}
	check("after build")
	e.GarbageCollect([]VEdge{v}, nil)
	check("after GC")
	if e.VLevelCount(-1) != 0 || e.VLevelCount(1000) != 0 {
		t.Fatalf("out-of-range level counts must be zero")
	}
}

func BenchmarkSwapAdjacentV(b *testing.B) {
	e := New()
	v := crossState(e, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = e.SwapAdjacentV(v, i%15)
	}
}
