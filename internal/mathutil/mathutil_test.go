package mathutil

import (
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {17, 13, 1}, {100, 75, 25},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDCommutesProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		return GCD(uint64(a), uint64(b)) == GCD(uint64(b), uint64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMod(t *testing.T) {
	if got := MulMod(7, 8, 5); got != 1 {
		t.Errorf("7*8 mod 5 = %d, want 1", got)
	}
	// Large modulus path (no overflow).
	big := uint64(1) << 62
	if got := MulMod(big-1, big-1, big); got != 1 {
		t.Errorf("(2^62-1)^2 mod 2^62 = %d, want 1", got)
	}
}

func TestPowMod(t *testing.T) {
	cases := []struct{ b, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{7, 0, 13, 1},
		{7, 4, 15, 1}, // order of 7 mod 15 is 4
		{3, 5, 1, 0},
	}
	for _, c := range cases {
		if got := PowMod(c.b, c.e, c.m); got != c.want {
			t.Errorf("PowMod(%d,%d,%d) = %d, want %d", c.b, c.e, c.m, got, c.want)
		}
	}
}

func TestInvMod(t *testing.T) {
	inv, err := InvMod(7, 15)
	if err != nil {
		t.Fatal(err)
	}
	if MulMod(7, inv, 15) != 1 {
		t.Errorf("7*%d mod 15 != 1", inv)
	}
	if _, err := InvMod(6, 15); err == nil {
		t.Error("InvMod(6,15) should fail (gcd 3)")
	}
	if _, err := InvMod(3, 0); err == nil {
		t.Error("InvMod with modulus 0 should fail")
	}
}

func TestInvModProperty(t *testing.T) {
	f := func(a uint16, m uint16) bool {
		mm := uint64(m)%1000 + 2
		aa := uint64(a)%mm + 1
		if GCD(aa, mm) != 1 {
			return true
		}
		inv, err := InvMod(aa, mm)
		return err == nil && MulMod(aa, inv, mm) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMultiplicativeOrder(t *testing.T) {
	cases := []struct{ a, n, want uint64 }{
		{7, 15, 4},
		{2, 15, 4},
		{4, 15, 2},
		{2, 21, 6},
		{5, 21, 6},
	}
	for _, c := range cases {
		got, err := MultiplicativeOrder(c.a, c.n)
		if err != nil {
			t.Fatalf("order(%d mod %d): %v", c.a, c.n, err)
		}
		if got != c.want {
			t.Errorf("order(%d mod %d) = %d, want %d", c.a, c.n, got, c.want)
		}
	}
	if _, err := MultiplicativeOrder(6, 15); err == nil {
		t.Error("order of non-coprime should fail")
	}
}

func TestOrderDefinitionProperty(t *testing.T) {
	// For every returned r: a^r = 1 and a^k != 1 for 0 < k < r.
	for n := uint64(3); n < 60; n++ {
		for _, a := range RandomCoprimes(n) {
			r, err := MultiplicativeOrder(a, n)
			if err != nil {
				t.Fatal(err)
			}
			if PowMod(a, r, n) != 1 {
				t.Fatalf("a=%d n=%d r=%d: a^r != 1", a, n, r)
			}
			for k := uint64(1); k < r; k++ {
				if PowMod(a, k, n) == 1 {
					t.Fatalf("a=%d n=%d: order %d not minimal (k=%d)", a, n, r, k)
				}
			}
		}
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {15, 4}, {16, 5}, {1 << 40, 41}}
	for _, c := range cases {
		if got := BitLen(c.v); got != c.want {
			t.Errorf("BitLen(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 101, 1009}
	composites := []uint64{0, 1, 4, 9, 15, 21, 1001}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestContinuedFraction(t *testing.T) {
	// 649/200 = [3;4,12,4]; convergents 3/1, 13/4, 159/49, 649/200.
	cs := ContinuedFraction(649, 200, 1000)
	want := []Convergent{{3, 1}, {13, 4}, {159, 49}, {649, 200}}
	if len(cs) != len(want) {
		t.Fatalf("convergents %v, want %v", cs, want)
	}
	for i := range cs {
		if cs[i] != want[i] {
			t.Fatalf("convergent %d = %v, want %v", i, cs[i], want[i])
		}
	}
	// Denominator bound respected.
	cs = ContinuedFraction(649, 200, 40)
	for _, c := range cs {
		if c.Q > 40 {
			t.Fatalf("convergent %v exceeds bound", c)
		}
	}
}

func TestOrderFromPhase(t *testing.T) {
	// For N=15, a=7 the order is 4: an 8-bit phase estimate of k/4
	// (k = 1 → y = 64) must recover r = 4.
	if r := OrderFromPhase(64, 8, 7, 15); r != 4 {
		t.Errorf("OrderFromPhase(64/256) = %d, want 4", r)
	}
	// k=2 → y=128 gives the divisor 2; the multiple expansion must
	// still recover a working order.
	if r := OrderFromPhase(128, 8, 7, 15); r == 0 || PowMod(7, r, 15) != 1 {
		t.Errorf("OrderFromPhase(128/256) = %d", r)
	}
	if r := OrderFromPhase(0, 8, 7, 15); r != 0 {
		t.Errorf("zero phase should fail, got %d", r)
	}
}

func TestFactorsFromOrder(t *testing.T) {
	p, q, ok := FactorsFromOrder(7, 4, 15)
	if !ok {
		t.Fatal("factoring 15 with order 4 failed")
	}
	if p*q != 15 || p == 1 || q == 1 {
		t.Fatalf("factors %d, %d", p, q)
	}
	// Odd order fails.
	if _, _, ok := FactorsFromOrder(2, 3, 15); ok {
		t.Error("odd order should fail")
	}
	// a^(r/2) = -1 fails (trivial).
	if _, _, ok := FactorsFromOrder(14, 2, 15); ok {
		t.Error("a^(r/2) = -1 should fail")
	}
}

func TestRandomCoprimes(t *testing.T) {
	cs := RandomCoprimes(15)
	for _, a := range cs {
		if GCD(a, 15) != 1 {
			t.Fatalf("%d not coprime to 15", a)
		}
	}
	// φ(15) = 8, minus 1 (we exclude a=1): 7 entries.
	if len(cs) != 7 {
		t.Fatalf("coprimes of 15 = %v (len %d), want 7 entries", cs, len(cs))
	}
}
