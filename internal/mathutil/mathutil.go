// Package mathutil collects the elementary number theory needed by
// Shor's algorithm: modular arithmetic, continued fractions for the
// order-extraction post-processing, and small helpers for choosing
// benchmark instances.
package mathutil

import "fmt"

// GCD returns the greatest common divisor of a and b.
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// MulMod returns a·b mod m without overflow for m < 2^32 via direct
// multiplication and otherwise via binary (Russian-peasant)
// multiplication.
func MulMod(a, b, m uint64) uint64 {
	if m == 0 {
		panic("mathutil: MulMod: modulus 0")
	}
	a %= m
	b %= m
	if m <= 1<<32 {
		return a * b % m
	}
	var r uint64
	for b > 0 {
		if b&1 == 1 {
			r = (r + a) % m
		}
		a = (a + a) % m
		b >>= 1
	}
	return r
}

// PowMod returns base^exp mod m.
func PowMod(base, exp, m uint64) uint64 {
	if m == 0 {
		panic("mathutil: PowMod: modulus 0")
	}
	if m == 1 {
		return 0
	}
	r := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			r = MulMod(r, base, m)
		}
		base = MulMod(base, base, m)
		exp >>= 1
	}
	return r
}

// InvMod returns the multiplicative inverse of a modulo m, or an error
// if gcd(a, m) != 1.
func InvMod(a, m uint64) (uint64, error) {
	if m == 0 {
		return 0, fmt.Errorf("mathutil: InvMod: modulus 0")
	}
	// Extended Euclid on signed accumulators.
	g, x, _ := extGCD(int64(a%m), int64(m))
	if g != 1 {
		return 0, fmt.Errorf("mathutil: InvMod: %d has no inverse mod %d (gcd %d)", a, m, g)
	}
	xm := x % int64(m)
	if xm < 0 {
		xm += int64(m)
	}
	return uint64(xm), nil
}

func extGCD(a, b int64) (g, x, y int64) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := extGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// MultiplicativeOrder returns the least r > 0 with a^r ≡ 1 (mod n), or
// an error if a and n are not coprime. The search is linear in r and
// intended for the moderate n of the benchmarks.
func MultiplicativeOrder(a, n uint64) (uint64, error) {
	if n <= 1 {
		return 0, fmt.Errorf("mathutil: MultiplicativeOrder: modulus %d", n)
	}
	if GCD(a, n) != 1 {
		return 0, fmt.Errorf("mathutil: MultiplicativeOrder: gcd(%d,%d) != 1", a, n)
	}
	v := a % n
	for r := uint64(1); r <= n; r++ {
		if v == 1 {
			return r, nil
		}
		v = MulMod(v, a, n)
	}
	return 0, fmt.Errorf("mathutil: MultiplicativeOrder: no order found for %d mod %d", a, n)
}

// BitLen returns the number of bits needed to represent v.
func BitLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// IsPrime reports primality by trial division (sufficient for the
// benchmark instance sizes).
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Convergent is one continued-fraction convergent p/q.
type Convergent struct {
	P, Q uint64
}

// ContinuedFraction returns the convergents of num/den (den > 0) with
// denominators bounded by maxQ — the classical post-processing step of
// Shor's algorithm that recovers the order r from a phase estimate
// y/2^m ≈ k/r.
func ContinuedFraction(num, den, maxQ uint64) []Convergent {
	if den == 0 {
		panic("mathutil: ContinuedFraction: zero denominator")
	}
	var out []Convergent
	// p/q convergents via the standard recurrence with seeds
	// p_{-2}/q_{-2} = 0/1 and p_{-1}/q_{-1} = 1/0.
	var p0, q0, p1, q1 uint64 = 0, 1, 1, 0
	a, b := num, den
	for b != 0 {
		k := a / b
		a, b = b, a%b
		p0, p1 = p1, k*p1+p0
		q0, q1 = q1, k*q1+q0
		if q1 > maxQ {
			break
		}
		out = append(out, Convergent{P: p1, Q: q1})
	}
	return out
}

// OrderFromPhase recovers a candidate order r from the measured phase
// y/2^m using continued fractions, verifying a^r ≡ 1 (mod n). It
// returns 0 if no denominator works. Candidates that are a divisor of
// the true order are expanded by small multiples, the standard fix-up.
func OrderFromPhase(y uint64, m int, a, n uint64) uint64 {
	if y == 0 {
		return 0
	}
	den := uint64(1) << uint(m)
	for _, c := range ContinuedFraction(y, den, n) {
		if c.Q == 0 {
			continue
		}
		for mult := uint64(1); mult <= 8; mult++ {
			r := c.Q * mult
			if r == 0 || r > n {
				break
			}
			if PowMod(a, r, n) == 1 {
				return r
			}
		}
	}
	return 0
}

// FactorsFromOrder derives non-trivial factors of n from an even order
// r of a (the classical end of Shor's algorithm). ok is false when the
// order is odd or yields only trivial factors.
func FactorsFromOrder(a, r, n uint64) (p, q uint64, ok bool) {
	if r == 0 || r%2 != 0 {
		return 0, 0, false
	}
	x := PowMod(a, r/2, n)
	if x == n-1 || x == 1 {
		return 0, 0, false
	}
	p = GCD(x+1, n)
	q = GCD(x+n-1, n)
	if p == 1 || p == n {
		if q == 1 || q == n {
			return 0, 0, false
		}
		return q, n / q, true
	}
	return p, n / p, true
}

// RandomCoprimes returns all a in [2, n) with gcd(a, n) = 1 (for
// deterministic benchmark instance selection).
func RandomCoprimes(n uint64) []uint64 {
	var out []uint64
	for a := uint64(2); a < n; a++ {
		if GCD(a, n) == 1 {
			out = append(out, a)
		}
	}
	return out
}
