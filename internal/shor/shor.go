package shor

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dynamic"
	"repro/internal/gates"
	"repro/internal/mathutil"
)

// Result is the outcome of one order-finding run.
type Result struct {
	N, A     uint64
	Phase    uint64 // measured 2n-bit phase estimate y (φ ≈ y/2^{2n})
	Order    uint64 // recovered multiplicative order r (0 if recovery failed)
	Factors  [2]uint64
	Factored bool
	Qubits   int
	// Aggregated simulation cost.
	MatVecSteps int
	MatMatSteps int
	Duration    time.Duration
	Stats       dd.Stats
}

// checkInstance validates N and a for order finding.
func checkInstance(modN, a uint64) error {
	if modN < 3 {
		return fmt.Errorf("shor: modulus %d too small", modN)
	}
	if modN%2 == 0 {
		return fmt.Errorf("shor: modulus %d is even; factor out 2 classically", modN)
	}
	if a < 2 || a >= modN {
		return fmt.Errorf("shor: base a=%d out of range [2,%d)", a, modN)
	}
	if g := mathutil.GCD(a, modN); g != 1 {
		return fmt.Errorf("shor: gcd(a=%d, N=%d) = %d — already a factor, no quantum part needed", a, modN, g)
	}
	return nil
}

// postprocess turns the measured phase into order and factors.
func postprocess(res *Result) {
	m := 2 * mathutil.BitLen(res.N)
	res.Order = mathutil.OrderFromPhase(res.Phase, m, res.A, res.N)
	if res.Order != 0 {
		if p, q, ok := mathutil.FactorsFromOrder(res.A, res.Order, res.N); ok {
			res.Factors = [2]uint64{p, q}
			res.Factored = true
		}
	}
}

// phaseCorrection returns the semiclassical inverse-QFT rotation applied
// before the j-th measurement, conditioned on the previously measured
// bits y_0..y_{j-1}: θ_j = -2π Σ_k y_k / 2^{j+1-k}.
func phaseCorrection(bits []int) float64 {
	var theta float64
	j := len(bits)
	for k, b := range bits {
		if b == 1 {
			theta -= 2 * math.Pi / float64(uint64(1)<<uint(j+1-k))
		}
	}
	return theta
}

// SimulateGateLevel runs Shor's algorithm for N with base a through the
// full Beauregard 2n+3-qubit circuit, simulated DD-based with the given
// combination strategy. One semiclassical phase-estimation round per
// bit: H on the control, controlled U_{a^{2^{m-1-j}}}, feedback
// rotation, H, measure, reset — 2n rounds in total.
func SimulateGateLevel(modN, a uint64, opt core.Options, rng *rand.Rand) (*Result, error) {
	if err := checkInstance(modN, a); err != nil {
		return nil, err
	}
	nBits := mathutil.BitLen(modN)
	l := NewLayout(nBits)
	m := 2 * nBits

	eng := opt.Engine
	if eng == nil {
		eng = dd.New()
	}
	opt.Engine = eng

	start := time.Now()
	statsBefore := eng.Stats()

	v := eng.BasisState(l.Total(), 1) // x register = 1, everything else 0
	var bits []int
	for j := 0; j < m; j++ {
		power := uint64(1) << uint(m-1-j)
		factor := mathutil.PowMod(a, power, modN)

		seg := circuit.New(l.Total())
		seg.Name = fmt.Sprintf("shor_%d_%d_round_%d", modN, a, j)
		seg.H(l.Control())
		if err := AppendControlledUa(seg, l, factor, modN, l.Control()); err != nil {
			return nil, err
		}
		if theta := phaseCorrection(bits); theta != 0 {
			seg.P(theta, l.Control())
		}
		seg.H(l.Control())

		opt.InitialState = &v
		res, err := core.Run(seg, opt)
		if err != nil {
			return nil, fmt.Errorf("shor: round %d: %w", j, err)
		}
		// Under dynamic reordering the control qubit may live at a
		// permuted DD level; ResetQubit addresses levels, so map it.
		// The reset itself leaves the permutation intact — carry it
		// into the next round so the state keeps its meaning.
		ctl := l.Control()
		for lev, q := range res.Order {
			if q == ctl {
				ctl = lev
				break
			}
		}
		bit, post := eng.ResetQubit(res.State, ctl, rng)
		bits = append(bits, bit)
		v = post
		opt.InitialOrder = res.Order
	}

	var phase uint64
	for k, b := range bits {
		phase |= uint64(b) << uint(k)
	}
	statsAfter := eng.Stats()
	out := &Result{
		N: modN, A: a, Phase: phase,
		Qubits:      l.Total(),
		MatVecSteps: int(statsAfter.MatVecMuls - statsBefore.MatVecMuls),
		MatMatSteps: int(statsAfter.MatMatMuls - statsBefore.MatMatMuls),
		Duration:    time.Since(start),
		Stats:       statsAfter,
	}
	postprocess(out)
	return out, nil
}

// MultiplyPermutation returns the bijection on [0, 2^n) that the
// DD-construct oracle encodes: x → a·x mod N for x < N, identity for
// the unused basis states x ≥ N.
func MultiplyPermutation(nBits int, a, modN uint64) func(uint64) uint64 {
	return func(x uint64) uint64 {
		if x < modN {
			return mathutil.MulMod(a, x, modN)
		}
		return x
	}
}

// BuildUaDD constructs the modular-multiplication unitary U_a directly
// as a matrix DD on nBits qubits — the DD-construct primitive.
func BuildUaDD(eng *dd.Engine, nBits int, a, modN uint64) dd.MEdge {
	return eng.FromPermutation(nBits, MultiplyPermutation(nBits, a, modN))
}

// SimulateDDConstruct runs the same order finding with the DD-construct
// strategy of Sec. IV-B: the Boolean oracle U_{a^{2^j}} is built
// directly from its function as a permutation DD (no working qubits, no
// elementary-gate decomposition), so only n+1 qubits are needed.
func SimulateDDConstruct(modN, a uint64, rng *rand.Rand) (*Result, error) {
	if err := checkInstance(modN, a); err != nil {
		return nil, err
	}
	nBits := mathutil.BitLen(modN)
	total := nBits + 1
	ctl := nBits
	m := 2 * nBits

	eng := dd.New()
	start := time.Now()

	// Pre-build the 2n controlled oracles (one per power); each is the
	// permutation DD with one control wrapped on top.
	cUs := make([]dd.MEdge, m)
	for j := 0; j < m; j++ {
		power := uint64(1) << uint(m-1-j)
		factor := mathutil.PowMod(a, power, modN)
		cUs[j] = eng.ControlledOp(BuildUaDD(eng, nBits, factor, modN), false)
	}
	h := eng.GateDD(gates.H, total, ctl, nil)

	v := eng.BasisState(total, 1)
	var bits []int
	for j := 0; j < m; j++ {
		v = eng.MulVec(h, v)
		v = eng.MulVec(cUs[j], v)
		if theta := phaseCorrection(bits); theta != 0 {
			v = eng.MulVec(eng.GateDD(gates.Phase(theta), total, ctl, nil), v)
		}
		v = eng.MulVec(h, v)
		bit, post := eng.ResetQubit(v, ctl, rng)
		bits = append(bits, bit)
		v = post
	}

	var phase uint64
	for k, b := range bits {
		phase |= uint64(b) << uint(k)
	}
	stats := eng.Stats()
	out := &Result{
		N: modN, A: a, Phase: phase,
		Qubits:      total,
		MatVecSteps: int(stats.MatVecMuls),
		MatMatSteps: int(stats.MatMatMuls),
		Duration:    time.Since(start),
		Stats:       stats,
	}
	postprocess(out)
	return out, nil
}

// FactorWithRetries runs order finding repeatedly (fresh randomness per
// attempt) until factors are found or attempts are exhausted. run picks
// the simulation path.
func FactorWithRetries(modN, a uint64, attempts int, rng *rand.Rand,
	run func(modN, a uint64, rng *rand.Rand) (*Result, error)) (*Result, error) {
	var last *Result
	for i := 0; i < attempts; i++ {
		res, err := run(modN, a, rng)
		if err != nil {
			return nil, err
		}
		last = res
		if res.Factored {
			return res, nil
		}
	}
	return last, nil
}

// DynamicProgram builds the complete semiclassical Beauregard
// order-finding procedure as a dynamic circuit: per phase bit an H on
// the control, the controlled modular multiplier, classically
// conditioned feedback rotations, H, measurement into classical bit j,
// and a conditioned X restoring the control to |0>. Classical bit j
// holds phase bit y_j afterwards.
func DynamicProgram(modN, a uint64) (*dynamic.Program, error) {
	if err := checkInstance(modN, a); err != nil {
		return nil, err
	}
	nBits := mathutil.BitLen(modN)
	if 2*nBits > 64 {
		return nil, fmt.Errorf("shor: modulus too large for the 64-bit classical register")
	}
	l := NewLayout(nBits)
	m := 2 * nBits
	p := dynamic.New(l.Total(), m)
	ctl := l.Control()

	// The x register starts at 1.
	p.Gate(circuit.Gate{Name: "x", Matrix: gates.X, Target: l.X(0)})

	for j := 0; j < m; j++ {
		power := uint64(1) << uint(m-1-j)
		factor := mathutil.PowMod(a, power, modN)

		p.Gate(circuit.Gate{Name: "h", Matrix: gates.H, Target: ctl})
		seg := circuit.New(l.Total())
		if err := AppendControlledUa(seg, l, factor, modN, ctl); err != nil {
			return nil, err
		}
		for _, g := range seg.Gates {
			p.Gate(g)
		}
		// Feedback rotations conditioned on the previously measured bits.
		for k := 0; k < j; k++ {
			theta := -2 * math.Pi / float64(uint64(1)<<uint(j+1-k))
			p.GateIf(circuit.Gate{Name: "p", Matrix: gates.Phase(theta), Target: ctl, Params: []float64{theta}},
				1<<uint(k), 1<<uint(k))
		}
		p.Gate(circuit.Gate{Name: "h", Matrix: gates.H, Target: ctl})
		p.Measure(ctl, j)
		p.GateIf(circuit.Gate{Name: "x", Matrix: gates.X, Target: ctl}, 1<<uint(j), 1<<uint(j))
	}
	return p, nil
}

// SimulateDynamic runs the dynamic-program formulation of the
// semiclassical procedure — same physics as SimulateGateLevel, with
// the measurement/feedback logic expressed declaratively.
func SimulateDynamic(modN, a uint64, opt core.Options, rng *rand.Rand) (*Result, error) {
	prog, err := DynamicProgram(modN, a)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	run, err := prog.Run(opt, rng)
	if err != nil {
		return nil, err
	}
	out := &Result{
		N: modN, A: a,
		Phase:       run.Classical,
		Qubits:      prog.NQubits,
		MatVecSteps: run.MatVecSteps,
		MatMatSteps: run.MatMatSteps,
		Duration:    time.Since(start),
		Stats:       run.Engine.Stats(),
	}
	postprocess(out)
	return out, nil
}
