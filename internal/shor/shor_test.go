package shor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/dynamic"
	"repro/internal/mathutil"
)

// runOnBasis densely simulates c on the basis state |input> and asserts
// the result is again a basis state, returning its index.
func runOnBasis(t *testing.T, c *circuit.Circuit, input uint64) uint64 {
	t.Helper()
	s := dense.NewState(c.NQubits)
	for q := 0; q < c.NQubits; q++ {
		if input>>uint(q)&1 == 1 {
			s.Apply([2][2]complex128{{0, 1}, {1, 0}}, q, nil)
		}
	}
	s.Run(c)
	out := uint64(0)
	found := false
	for i, a := range s.Amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 1e-6 {
			if p < 1-1e-6 {
				t.Fatalf("output is not a basis state: |amp[%d]|² = %v", i, p)
			}
			if found {
				t.Fatalf("output has multiple populated basis states")
			}
			out = uint64(i)
			found = true
		}
	}
	if !found {
		t.Fatal("output state has no populated amplitude")
	}
	return out
}

// encode packs register values into a basis index for the layout.
func encode(l Layout, x, b uint64, anc, ctl int) uint64 {
	idx := x // x occupies the low bits
	idx |= b << uint(l.N)
	idx |= uint64(anc) << uint(l.Ancilla())
	idx |= uint64(ctl) << uint(l.Control())
	return idx
}

func TestLayout(t *testing.T) {
	l := NewLayout(4)
	if l.Total() != 11 {
		t.Fatalf("Total = %d, want 11", l.Total())
	}
	if l.X(0) != 0 || l.X(3) != 3 || l.B(0) != 4 || l.B(4) != 8 {
		t.Fatal("register layout wrong")
	}
	if l.Ancilla() != 9 || l.Control() != 10 {
		t.Fatal("ancilla/control layout wrong")
	}
	qs := l.BQubits()
	if len(qs) != 5 || qs[0] != 8 || qs[4] != 4 {
		t.Fatalf("BQubits = %v", qs)
	}
}

func TestPhiAddAddsConstant(t *testing.T) {
	l := NewLayout(3) // 9 qubits, mod 2^4 arithmetic in b
	mod := uint64(16)
	for _, a := range []uint64{0, 1, 5, 7, 15} {
		for b := uint64(0); b < mod; b += 3 {
			c := circuit.New(l.Total())
			appendQFTB(c, l)
			AppendPhiAdd(c, l, a, nil, false)
			appendIQFTB(c, l)
			got := runOnBasis(t, c, encode(l, 0, b, 0, 0))
			want := encode(l, 0, (b+a)%mod, 0, 0)
			if got != want {
				t.Fatalf("φADD(%d) on b=%d: got state %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestPhiAddInverseSubtracts(t *testing.T) {
	l := NewLayout(3)
	mod := uint64(16)
	c := circuit.New(l.Total())
	appendQFTB(c, l)
	AppendPhiAdd(c, l, 5, nil, true)
	appendIQFTB(c, l)
	got := runOnBasis(t, c, encode(l, 0, 3, 0, 0))
	want := encode(l, 0, (3+mod-5)%mod, 0, 0)
	if got != want {
		t.Fatalf("φADD⁻¹(5) on b=3: got %d, want %d", got, want)
	}
}

func TestPhiAddControlled(t *testing.T) {
	l := NewLayout(3)
	controls := []dd.Control{dd.Pos(l.Control()), dd.Pos(l.X(0))}
	build := func() *circuit.Circuit {
		c := circuit.New(l.Total())
		appendQFTB(c, l)
		AppendPhiAdd(c, l, 6, controls, false)
		appendIQFTB(c, l)
		return c
	}
	// Both controls on: adds.
	got := runOnBasis(t, build(), encode(l, 1, 2, 0, 1))
	if got != encode(l, 1, 8, 0, 1) {
		t.Fatalf("controlled φADD active: got %d", got)
	}
	// One control off: identity.
	in := encode(l, 1, 2, 0, 0)
	if got := runOnBasis(t, build(), in); got != in {
		t.Fatalf("controlled φADD inactive: got %d, want %d", got, in)
	}
}

func TestCCPhiAddMod(t *testing.T) {
	l := NewLayout(3)
	modN := uint64(7)
	ctl1, ctl2 := l.Control(), l.X(0)
	for a := uint64(0); a < modN; a++ {
		for b := uint64(0); b < modN; b++ {
			c := circuit.New(l.Total())
			appendQFTB(c, l)
			AppendCCPhiAddMod(c, l, a, modN, ctl1, ctl2, false)
			appendIQFTB(c, l)
			// Active: both controls set (x0 doubles as a control here).
			got := runOnBasis(t, c, encode(l, 1, b, 0, 1))
			want := encode(l, 1, (b+a)%modN, 0, 1)
			if got != want {
				t.Fatalf("φADDMOD(%d) mod %d on b=%d: got %d, want %d", a, modN, b, got, want)
			}
		}
	}
	// Inactive: identity with clean ancilla.
	c := circuit.New(l.Total())
	appendQFTB(c, l)
	AppendCCPhiAddMod(c, l, 5, modN, ctl1, ctl2, false)
	appendIQFTB(c, l)
	in := encode(l, 0, 4, 0, 1) // ctl1 on but ctl2 (x0) off
	if got := runOnBasis(t, c, in); got != in {
		t.Fatalf("inactive φADDMOD: got %d, want %d", got, in)
	}
}

func TestCCPhiAddModInverse(t *testing.T) {
	l := NewLayout(3)
	modN := uint64(7)
	c := circuit.New(l.Total())
	appendQFTB(c, l)
	AppendCCPhiAddMod(c, l, 3, modN, l.Control(), l.X(0), false)
	AppendCCPhiAddMod(c, l, 3, modN, l.Control(), l.X(0), true)
	appendIQFTB(c, l)
	in := encode(l, 1, 5, 0, 1)
	if got := runOnBasis(t, c, in); got != in {
		t.Fatalf("φADDMOD followed by inverse: got %d, want %d", got, in)
	}
}

func TestCMult(t *testing.T) {
	l := NewLayout(3)
	modN := uint64(7)
	for _, a := range []uint64{2, 3, 5} {
		for x := uint64(0); x < modN; x++ {
			for _, b := range []uint64{0, 4} {
				c := circuit.New(l.Total())
				AppendCMult(c, l, a, modN, l.Control(), false)
				got := runOnBasis(t, c, encode(l, x, b, 0, 1))
				want := encode(l, x, (b+a*x)%modN, 0, 1)
				if got != want {
					t.Fatalf("CMULT(%d) x=%d b=%d: got %d, want %d", a, x, b, got, want)
				}
			}
		}
	}
	// Control off: identity.
	c := circuit.New(l.Total())
	AppendCMult(c, l, 3, modN, l.Control(), false)
	in := encode(l, 4, 2, 0, 0)
	if got := runOnBasis(t, c, in); got != in {
		t.Fatalf("inactive CMULT: got %d, want %d", got, in)
	}
}

func TestControlledUa(t *testing.T) {
	modN := uint64(7)
	for _, a := range []uint64{2, 3, 5} {
		c, l, err := ControlledUaCircuit(modN, a)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		for x := uint64(1); x < modN; x++ {
			got := runOnBasis(t, c, encode(l, x, 0, 0, 1))
			want := encode(l, mathutil.MulMod(a, x, modN), 0, 0, 1)
			if got != want {
				t.Fatalf("cU_%d x=%d: got %d, want %d", a, x, got, want)
			}
		}
		// Control off: identity.
		in := encode(l, 3, 0, 0, 0)
		if got := runOnBasis(t, c, in); got != in {
			t.Fatalf("cU_%d inactive: got %d, want %d", a, got, in)
		}
	}
}

func TestControlledUaRejectsNonCoprime(t *testing.T) {
	if _, _, err := ControlledUaCircuit(15, 6); err == nil {
		t.Fatal("expected error for gcd(6,15) != 1")
	}
}

func TestMultiplyPermutationIsBijection(t *testing.T) {
	f := MultiplyPermutation(4, 7, 15)
	seen := map[uint64]bool{}
	for x := uint64(0); x < 16; x++ {
		y := f(x)
		if seen[y] {
			t.Fatalf("image %d repeated", y)
		}
		seen[y] = true
		if x >= 15 && y != x {
			t.Fatalf("padding state %d not fixed", x)
		}
	}
}

func TestBuildUaDDMatchesPermutation(t *testing.T) {
	eng := dd.New()
	u := BuildUaDD(eng, 4, 7, 15)
	for x := uint64(0); x < 16; x++ {
		out := eng.MulVec(u, eng.BasisState(4, x))
		want := MultiplyPermutation(4, 7, 15)(x)
		amp := out.Amplitude(want)
		if math.Abs(real(amp)-1) > 1e-9 || math.Abs(imag(amp)) > 1e-9 {
			t.Fatalf("U_7 |%d>: amplitude at %d = %v", x, want, amp)
		}
	}
}

func TestPhaseCorrection(t *testing.T) {
	if got := phaseCorrection(nil); got != 0 {
		t.Fatalf("empty correction %v", got)
	}
	// bits = [1] (y_0 = 1), j = 1: θ = -2π/4 = -π/2.
	if got := phaseCorrection([]int{1}); math.Abs(got+math.Pi/2) > 1e-12 {
		t.Fatalf("correction for [1] = %v, want -π/2", got)
	}
	// bits = [1, 0, 1]: θ = -2π(1/16 + 0 + 1/4).
	want := -2 * math.Pi * (1.0/16 + 1.0/4)
	if got := phaseCorrection([]int{1, 0, 1}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("correction for [1,0,1] = %v, want %v", got, want)
	}
}

func TestCheckInstance(t *testing.T) {
	bad := []struct{ n, a uint64 }{
		{2, 1}, {15, 1}, {15, 15}, {15, 6}, {16, 3},
	}
	for _, c := range bad {
		if err := checkInstance(c.n, c.a); err == nil {
			t.Errorf("checkInstance(%d, %d) accepted", c.n, c.a)
		}
	}
	if err := checkInstance(15, 7); err != nil {
		t.Errorf("checkInstance(15, 7): %v", err)
	}
}

func TestSimulateDDConstructFactors15(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res, err := FactorWithRetries(15, 7, 8, rng, SimulateDDConstruct)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Factored {
		t.Fatalf("failed to factor 15 in 8 attempts (last phase %d, order %d)", res.Phase, res.Order)
	}
	p, q := res.Factors[0], res.Factors[1]
	if p*q != 15 || p == 1 || q == 1 {
		t.Fatalf("factors %d·%d", p, q)
	}
	if res.Qubits != 5 {
		t.Fatalf("DD-construct used %d qubits, want n+1 = 5", res.Qubits)
	}
	if res.MatMatSteps != 0 {
		t.Fatalf("DD-construct should need no matrix-matrix multiplications, got %d", res.MatMatSteps)
	}
}

func TestSimulateDDConstructFactors21(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := FactorWithRetries(21, 2, 12, rng, SimulateDDConstruct)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Factored {
		t.Fatalf("failed to factor 21 (last phase %d, order %d)", res.Phase, res.Order)
	}
	if res.Factors[0]*res.Factors[1] != 21 {
		t.Fatalf("factors %v", res.Factors)
	}
}

func TestSimulateGateLevelFactors15(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-level Shor is slow in -short mode")
	}
	rng := rand.New(rand.NewSource(3))
	run := func(modN, a uint64, rng *rand.Rand) (*Result, error) {
		return SimulateGateLevel(modN, a, core.Options{Strategy: core.KOperations{K: 8}}, rng)
	}
	res, err := FactorWithRetries(15, 7, 5, rng, run)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Factored {
		t.Fatalf("gate-level run failed to factor 15 (last phase %d)", res.Phase)
	}
	if res.Qubits != 11 {
		t.Fatalf("gate-level used %d qubits, want 2n+3 = 11", res.Qubits)
	}
	if res.MatMatSteps == 0 {
		t.Fatal("k-operations run should perform matrix-matrix multiplications")
	}
}

func TestGateLevelPhaseIsExactForPowerOfTwoOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-level Shor is slow in -short mode")
	}
	// Order of 7 mod 15 is 4 = 2², so every measured phase must be an
	// exact multiple of 2^{2n}/4 = 64.
	rng := rand.New(rand.NewSource(11))
	res, err := SimulateGateLevel(15, 7, core.Options{Strategy: core.Sequential{}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase%64 != 0 {
		t.Fatalf("phase %d is not a multiple of 64", res.Phase)
	}
}

func TestSimulateDynamicFactors15(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-level Shor is slow in -short mode")
	}
	rng := rand.New(rand.NewSource(21))
	run := func(modN, a uint64, rng *rand.Rand) (*Result, error) {
		return SimulateDynamic(modN, a, core.Options{Strategy: core.MaxSize{SMax: 64}}, rng)
	}
	res, err := FactorWithRetries(15, 7, 5, rng, run)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Factored {
		t.Fatalf("dynamic-program run failed to factor 15 (last phase %d)", res.Phase)
	}
	if res.Qubits != 11 {
		t.Fatalf("qubits %d, want 11", res.Qubits)
	}
	// The exact order 4 means phases are multiples of 64, as in the
	// hand-rolled loop.
	if res.Phase%64 != 0 {
		t.Fatalf("phase %d not a multiple of 64", res.Phase)
	}
}

func TestDynamicProgramStructure(t *testing.T) {
	prog, err := DynamicProgram(15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if prog.NQubits != 11 || prog.NClbits != 8 {
		t.Fatalf("program dims %d/%d", prog.NQubits, prog.NClbits)
	}
	measures := 0
	conditionals := 0
	for _, op := range prog.Ops {
		switch {
		case op.Kind == dynamic.OpMeasure:
			measures++
		case op.Kind == dynamic.OpGate && op.Cond != nil:
			conditionals++
		}
	}
	if measures != 8 {
		t.Fatalf("measures %d, want 2n = 8", measures)
	}
	// Feedback rotations: Σ_{j=1..7} j = 28, plus 8 conditional resets.
	if conditionals != 28+8 {
		t.Fatalf("conditional gates %d, want 36", conditionals)
	}
	if _, err := DynamicProgram(16, 3); err == nil {
		t.Fatal("even modulus accepted")
	}
}

// The measured phase distribution for an exact power-of-two order must
// be uniform over the multiples k·2^{2n}/r — order finding's textbook
// statistics.
func TestDDConstructPhaseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	counts := map[uint64]int{}
	const runs = 200
	for i := 0; i < runs; i++ {
		res, err := SimulateDDConstruct(15, 7, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Phase]++
	}
	// Order of 7 mod 15 is 4: phases concentrate on {0, 64, 128, 192}.
	valid := map[uint64]bool{0: true, 64: true, 128: true, 192: true}
	for phase, n := range counts {
		if !valid[phase] {
			t.Fatalf("impossible phase %d measured %d times", phase, n)
		}
	}
	for phase := range valid {
		frac := float64(counts[phase]) / runs
		if math.Abs(frac-0.25) > 0.12 {
			t.Fatalf("phase %d frequency %v, want ~0.25", phase, frac)
		}
	}
}
