// Package shor implements Shor's factoring algorithm in the two forms
// the paper benchmarks:
//
//   - the gate-level Beauregard circuit (2n+3 qubits; ref [27] of the
//     paper): Draper adders in Fourier space, doubly-controlled modular
//     adders, controlled modular multipliers, and semiclassical
//     (one-control-qubit) phase estimation with intermediate
//     measurements — the workload behind the t_sota / t_general columns
//     of Table II, and
//
//   - the DD-construct form (Sec. IV-B): the modular-multiplication
//     oracle built *directly* as a permutation DD on only n+1 qubits,
//     behind the t_DD-construct column.
//
// This file contains the reversible-arithmetic circuit builders.
package shor

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/gates"
	"repro/internal/mathutil"
	"repro/internal/qft"
)

// Layout fixes the qubit roles of the 2n+3-qubit Beauregard circuit:
//
//	x register:  qubits [0, n)        multiplier register, initialised |1>
//	b register:  qubits [n, 2n+1)     (n+1)-qubit accumulator, initialised |0>
//	ancilla:     qubit 2n+1           comparison scratch bit
//	control:     qubit 2n+2           the recycled phase-estimation qubit
type Layout struct {
	N int // bits of the modulus
}

// NewLayout returns the register layout for an n-bit modulus.
func NewLayout(nBits int) Layout { return Layout{N: nBits} }

// Total returns the total qubit count 2n+3.
func (l Layout) Total() int { return 2*l.N + 3 }

// X returns the index of multiplier-register qubit i.
func (l Layout) X(i int) int { return i }

// B returns the index of accumulator-register qubit i (i in [0, n]).
func (l Layout) B(i int) int { return l.N + i }

// BQubits returns the accumulator register, most significant first, as
// qft.Append expects it.
func (l Layout) BQubits() []int {
	qs := make([]int, l.N+1)
	for i := range qs {
		qs[i] = l.B(l.N - i)
	}
	return qs
}

// Ancilla returns the comparison ancilla index.
func (l Layout) Ancilla() int { return 2*l.N + 1 }

// Control returns the recycled control-qubit index.
func (l Layout) Control() int { return 2*l.N + 2 }

// appendQFTB / appendIQFTB wrap the accumulator register in and out of
// Fourier space (with the qubit-reversing swaps, so value bits keep
// their little-endian positions).
func appendQFTB(c *circuit.Circuit, l Layout) {
	qft.Append(c, l.BQubits(), true)
}

func appendIQFTB(c *circuit.Circuit, l Layout) {
	qft.AppendInverse(c, l.BQubits(), true)
}

// AppendPhiAdd appends the Draper adder φADD(a): with the accumulator
// in Fourier space, adding the classical constant a (mod 2^{n+1}) is a
// layer of single-qubit phase gates P(2π·a·2^k/2^{n+1}) on accumulator
// qubit k, each optionally controlled. inverse selects subtraction.
func AppendPhiAdd(c *circuit.Circuit, l Layout, a uint64, controls []dd.Control, inverse bool) {
	m := l.N + 1
	mod := uint64(1) << uint(m)
	a %= mod
	for k := 0; k < m; k++ {
		// 2π·a·2^k/2^m, folded mod 2π to keep angles small.
		num := (a << uint(k)) % mod
		if num == 0 {
			continue
		}
		theta := 2 * math.Pi * float64(num) / float64(mod)
		if inverse {
			theta = -theta
		}
		if len(controls) == 0 {
			c.P(theta, l.B(k))
		} else {
			c.MC("p", gates.Phase(theta), controls, l.B(k), theta)
		}
	}
}

// AppendCCPhiAddMod appends the doubly-controlled modular adder
// φADDMOD(a, N) of Beauregard Fig. 5: with the accumulator in Fourier
// space it maps b → (b + a) mod N when both controls are active and is
// the identity (with a clean ancilla) otherwise. Requires 0 ≤ a < N and
// b < N.
func AppendCCPhiAddMod(c *circuit.Circuit, l Layout, a, modN uint64, ctl1, ctl2 int, inverse bool) {
	if inverse {
		// The adjoint of the whole sequence: build it forward into a
		// scratch circuit and append its inverse.
		scratch := circuit.New(c.NQubits)
		AppendCCPhiAddMod(scratch, l, a, modN, ctl1, ctl2, false)
		c.AppendCircuit(scratch.Inverse())
		return
	}
	cc := []dd.Control{dd.Pos(ctl1), dd.Pos(ctl2)}
	anc := []dd.Control{dd.Pos(l.Ancilla())}
	msb := l.B(l.N)

	AppendPhiAdd(c, l, a, cc, false)     // 1: b += a (if controls)
	AppendPhiAdd(c, l, modN, nil, true)  // 2: b -= N
	appendIQFTB(c, l)                    // 3: leave Fourier space
	c.CX(msb, l.Ancilla())               // 4: ancilla ← sign (borrow)
	appendQFTB(c, l)                     // 5: back to Fourier space
	AppendPhiAdd(c, l, modN, anc, false) // 6: b += N if borrowed
	AppendPhiAdd(c, l, a, cc, true)      // 7: b -= a (if controls)
	appendIQFTB(c, l)                    // 8
	c.X(msb)                             // 9: ancilla ← ¬sign …
	c.CX(msb, l.Ancilla())               //    … restoring it to |0>
	c.X(msb)                             //
	appendQFTB(c, l)                     // 10
	AppendPhiAdd(c, l, a, cc, false)     // 11: b += a (if controls)
}

// AppendCMult appends the controlled modular multiply-accumulate
// CMULT(a): |c=1>|x>|b> → |c=1>|x>|(b + a·x) mod N>, identity when the
// control is off. inverse appends its adjoint (subtraction).
func AppendCMult(c *circuit.Circuit, l Layout, a, modN uint64, ctl int, inverse bool) {
	if inverse {
		scratch := circuit.New(c.NQubits)
		AppendCMult(scratch, l, a, modN, ctl, false)
		c.AppendCircuit(scratch.Inverse())
		return
	}
	appendQFTB(c, l)
	for i := 0; i < l.N; i++ {
		addend := mathutil.MulMod(a, uint64(1)<<uint(i), modN)
		AppendCCPhiAddMod(c, l, addend, modN, ctl, l.X(i), false)
	}
	appendIQFTB(c, l)
}

// AppendControlledUa appends the controlled modular multiplier
// C-U_a: |c=1>|x>|0> → |c=1>|a·x mod N>|0> (identity when the control
// is off), composed as CMULT(a), a controlled register swap, and the
// inverse CMULT(a^{-1}) — Beauregard Fig. 7. gcd(a, N) must be 1.
func AppendControlledUa(c *circuit.Circuit, l Layout, a, modN uint64, ctl int) error {
	ainv, err := mathutil.InvMod(a, modN)
	if err != nil {
		return fmt.Errorf("shor: controlled U_a: %w", err)
	}
	AppendCMult(c, l, a, modN, ctl, false)
	for i := 0; i < l.N; i++ {
		c.CSwap(ctl, l.X(i), l.B(i))
	}
	AppendCMult(c, l, ainv, modN, ctl, true)
	return nil
}

// ControlledUaCircuit builds one controlled modular multiplication as a
// standalone 2n+3-qubit circuit (used by tests and size statistics).
func ControlledUaCircuit(modN, a uint64) (*circuit.Circuit, Layout, error) {
	nBits := mathutil.BitLen(modN)
	l := NewLayout(nBits)
	c := circuit.New(l.Total())
	c.Name = fmt.Sprintf("cU_%d_mod_%d", a, modN)
	if err := AppendControlledUa(c, l, a%modN, modN, l.Control()); err != nil {
		return nil, l, err
	}
	return c, l, nil
}
