package circuit

import (
	"strings"
	"testing"
)

// TestParseRepeatExpansionCap: a tiny input must not expand past the
// 1M-gate limit (mirrors the OpenQASM parser's cap).
func TestParseRepeatExpansionCap(t *testing.T) {
	_, err := ParseString("qubits 1\nrepeat 2000000000\nh 0\nendrepeat\n")
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("unbounded repeat accepted: %v", err)
	}
	// Nested blocks are checked at every level.
	_, err = ParseString("qubits 1\nrepeat 2000\nrepeat 2000\nh 0\nendrepeat\nendrepeat\n")
	if err == nil {
		t.Fatal("nested repeat blowup accepted")
	}
	// Within the cap still works.
	c, err := ParseString("qubits 1\nrepeat 1000\nh 0\nendrepeat\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1000 {
		t.Fatalf("expanded to %d gates, want 1000", len(c.Gates))
	}
}
