// Package circuit provides the intermediate representation of quantum
// circuits: a flat gate sequence over n qubits, optional repeated-block
// annotations (exploited by the DD-repeating strategy), a builder API,
// and a textual format (see parser.go).
package circuit

import (
	"fmt"
	"math"

	"repro/internal/dd"
	"repro/internal/gates"
)

// Gate is one operation: a single-qubit unitary applied to Target under
// the given controls. Multi-qubit primitives (CX, CCZ, SWAP, …) are
// expressed through controls or decomposition.
type Gate struct {
	Name     string       // mnemonic of the base gate, e.g. "x", "h", "p"
	Matrix   gates.Matrix // the 2×2 target unitary
	Target   int
	Controls []dd.Control
	Params   []float64 // angle parameters, for display/serialisation
}

// Block marks a consecutively repeated gate subsequence: the body is
// Gates[Start:End) and the flat gate list contains Repeat consecutive
// copies of it, i.e. Gates[Start : Start+Repeat*(End-Start)). Strategies
// unaware of blocks simply ignore them.
type Block struct {
	Name   string
	Start  int
	End    int
	Repeat int
}

// Circuit is a gate sequence over NQubits qubits.
type Circuit struct {
	Name    string
	NQubits int
	Gates   []Gate
	Blocks  []Block
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: New(%d): qubit count must be positive", n))
	}
	return &Circuit{NQubits: n}
}

func (c *Circuit) check(qubits ...int) {
	for _, q := range qubits {
		if q < 0 || q >= c.NQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NQubits))
		}
	}
}

// Append adds a gate after validating its qubit indices.
func (c *Circuit) Append(g Gate) *Circuit {
	c.check(g.Target)
	for _, ctl := range g.Controls {
		c.check(ctl.Qubit)
		if ctl.Qubit == g.Target {
			panic(fmt.Sprintf("circuit: qubit %d is both control and target", ctl.Qubit))
		}
	}
	c.Gates = append(c.Gates, g)
	return c
}

// apply1 appends a named single-qubit gate.
func (c *Circuit) apply1(name string, m gates.Matrix, target int, params ...float64) *Circuit {
	return c.Append(Gate{Name: name, Matrix: m, Target: target, Params: params})
}

// applyCtl appends a controlled gate.
func (c *Circuit) applyCtl(name string, m gates.Matrix, target int, controls []dd.Control, params ...float64) *Circuit {
	return c.Append(Gate{Name: name, Matrix: m, Target: target, Controls: controls, Params: params})
}

// I appends an explicit identity (useful for padding tests).
func (c *Circuit) I(q int) *Circuit { return c.apply1("i", gates.I, q) }

// X appends a Pauli-X gate.
func (c *Circuit) X(q int) *Circuit { return c.apply1("x", gates.X, q) }

// Y appends a Pauli-Y gate.
func (c *Circuit) Y(q int) *Circuit { return c.apply1("y", gates.Y, q) }

// Z appends a Pauli-Z gate.
func (c *Circuit) Z(q int) *Circuit { return c.apply1("z", gates.Z, q) }

// H appends a Hadamard gate.
func (c *Circuit) H(q int) *Circuit { return c.apply1("h", gates.H, q) }

// S appends a phase gate S.
func (c *Circuit) S(q int) *Circuit { return c.apply1("s", gates.S, q) }

// Sdg appends S†.
func (c *Circuit) Sdg(q int) *Circuit { return c.apply1("sdg", gates.Sdg, q) }

// T appends a T gate.
func (c *Circuit) T(q int) *Circuit { return c.apply1("t", gates.T, q) }

// Tdg appends T†.
func (c *Circuit) Tdg(q int) *Circuit { return c.apply1("tdg", gates.Tdg, q) }

// SX appends √X.
func (c *Circuit) SX(q int) *Circuit { return c.apply1("sx", gates.SX, q) }

// SY appends √Y.
func (c *Circuit) SY(q int) *Circuit { return c.apply1("sy", gates.SY, q) }

// P appends the phase gate diag(1, e^{iθ}).
func (c *Circuit) P(theta float64, q int) *Circuit {
	return c.apply1("p", gates.Phase(theta), q, theta)
}

// RX appends an X rotation.
func (c *Circuit) RX(theta float64, q int) *Circuit {
	return c.apply1("rx", gates.RX(theta), q, theta)
}

// RY appends a Y rotation.
func (c *Circuit) RY(theta float64, q int) *Circuit {
	return c.apply1("ry", gates.RY(theta), q, theta)
}

// RZ appends a Z rotation.
func (c *Circuit) RZ(theta float64, q int) *Circuit {
	return c.apply1("rz", gates.RZ(theta), q, theta)
}

// U appends the generic Euler-angle gate.
func (c *Circuit) U(theta, phi, lambda float64, q int) *Circuit {
	return c.apply1("u", gates.U(theta, phi, lambda), q, theta, phi, lambda)
}

// CX appends a controlled-X (CNOT).
func (c *Circuit) CX(ctl, target int) *Circuit {
	return c.applyCtl("x", gates.X, target, []dd.Control{dd.Pos(ctl)})
}

// CZ appends a controlled-Z.
func (c *Circuit) CZ(ctl, target int) *Circuit {
	return c.applyCtl("z", gates.Z, target, []dd.Control{dd.Pos(ctl)})
}

// CCX appends a Toffoli gate.
func (c *Circuit) CCX(ctl1, ctl2, target int) *Circuit {
	return c.applyCtl("x", gates.X, target, []dd.Control{dd.Pos(ctl1), dd.Pos(ctl2)})
}

// CP appends a controlled phase gate.
func (c *Circuit) CP(theta float64, ctl, target int) *Circuit {
	return c.applyCtl("p", gates.Phase(theta), target, []dd.Control{dd.Pos(ctl)}, theta)
}

// CCP appends a doubly-controlled phase gate.
func (c *Circuit) CCP(theta float64, ctl1, ctl2, target int) *Circuit {
	return c.applyCtl("p", gates.Phase(theta), target, []dd.Control{dd.Pos(ctl1), dd.Pos(ctl2)}, theta)
}

// MC appends a multi-controlled gate with arbitrary control polarities.
func (c *Circuit) MC(name string, m gates.Matrix, controls []dd.Control, target int, params ...float64) *Circuit {
	return c.applyCtl(name, m, target, controls, params...)
}

// Swap appends the exchange of qubits a and b (three CX gates).
func (c *Circuit) Swap(a, b int) *Circuit {
	if a == b {
		return c
	}
	return c.CX(a, b).CX(b, a).CX(a, b)
}

// CSwap appends a controlled swap (Fredkin), decomposed into CX and
// Toffoli gates.
func (c *Circuit) CSwap(ctl, a, b int) *Circuit {
	if a == b {
		return c
	}
	return c.CX(b, a).CCX(ctl, a, b).CX(b, a)
}

// Repeat appends `times` copies of the gates produced by body (which
// receives the circuit and appends one iteration) and records the
// repetition as a Block the DD-repeating strategy can exploit.
func (c *Circuit) Repeat(name string, times int, body func(*Circuit)) *Circuit {
	if times <= 0 {
		panic(fmt.Sprintf("circuit: Repeat(%q, %d): repetition count must be positive", name, times))
	}
	start := len(c.Gates)
	body(c)
	end := len(c.Gates)
	if end == start {
		panic(fmt.Sprintf("circuit: Repeat(%q): empty body", name))
	}
	iter := append([]Gate(nil), c.Gates[start:end]...)
	for i := 1; i < times; i++ {
		c.Gates = append(c.Gates, iter...)
	}
	c.Blocks = append(c.Blocks, Block{Name: name, Start: start, End: end, Repeat: times})
	return c
}

// AppendCircuit appends all gates of other (which must have the same
// qubit count); other's blocks are carried over with shifted indices.
func (c *Circuit) AppendCircuit(other *Circuit) *Circuit {
	if other.NQubits != c.NQubits {
		panic(fmt.Sprintf("circuit: AppendCircuit: qubit count mismatch %d vs %d", other.NQubits, c.NQubits))
	}
	offset := len(c.Gates)
	c.Gates = append(c.Gates, other.Gates...)
	for _, b := range other.Blocks {
		c.Blocks = append(c.Blocks, Block{Name: b.Name, Start: b.Start + offset, End: b.End + offset, Repeat: b.Repeat})
	}
	return c
}

// Inverse returns the adjoint circuit: gates reversed and conjugate
// transposed. Blocks are dropped (their structure does not survive
// reversal in general).
func (c *Circuit) Inverse() *Circuit {
	inv := New(c.NQubits)
	inv.Name = c.Name + "_inv"
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		params := invertParams(g.Name, g.Params)
		inv.Append(Gate{
			Name:     adjointName(g.Name),
			Matrix:   gates.Adjoint(g.Matrix),
			Target:   g.Target,
			Controls: append([]dd.Control(nil), g.Controls...),
			Params:   params,
		})
	}
	return inv
}

// adjointName maps a gate mnemonic to the mnemonic of its adjoint so
// inverted circuits remain serialisable.
func adjointName(name string) string {
	switch name {
	case "s":
		return "sdg"
	case "sdg":
		return "s"
	case "t":
		return "tdg"
	case "tdg":
		return "t"
	case "sx":
		return "sxdg"
	case "sxdg":
		return "sx"
	case "sy":
		return "sydg"
	case "sydg":
		return "sy"
	default:
		// Self-inverse (i, x, y, z, h) or parameter-negated (p, rx, ry,
		// rz, u) gates keep their mnemonic.
		return name
	}
}

func invertParams(name string, params []float64) []float64 {
	if len(params) == 0 {
		return nil
	}
	out := make([]float64, len(params))
	for i, p := range params {
		out[i] = -p
	}
	if name == "u" && len(params) == 3 {
		// U(θ,φ,λ)† = U(-θ,-λ,-φ)
		out[1], out[2] = -params[2], -params[1]
	}
	return out
}

// GateCount returns the number of gates.
func (c *Circuit) GateCount() int { return len(c.Gates) }

// CountByName returns per-mnemonic gate counts (controlled gates are
// counted under their base name prefixed by one "c" per control).
func (c *Circuit) CountByName() map[string]int {
	out := make(map[string]int)
	for _, g := range c.Gates {
		name := g.Name
		for range g.Controls {
			name = "c" + name
		}
		out[name]++
	}
	return out
}

// Depth returns the circuit depth under the usual greedy schedule: a
// gate occupies its target and all control qubits for one time step.
func (c *Circuit) Depth() int {
	avail := make([]int, c.NQubits)
	depth := 0
	for _, g := range c.Gates {
		t := avail[g.Target]
		for _, ctl := range g.Controls {
			if avail[ctl.Qubit] > t {
				t = avail[ctl.Qubit]
			}
		}
		t++
		avail[g.Target] = t
		for _, ctl := range g.Controls {
			avail[ctl.Qubit] = t
		}
		if t > depth {
			depth = t
		}
	}
	return depth
}

// Validate checks structural invariants: qubit ranges, control/target
// disjointness, unitary gate matrices, and well-formed blocks.
func (c *Circuit) Validate() error {
	if c.NQubits <= 0 {
		return fmt.Errorf("circuit %q: non-positive qubit count %d", c.Name, c.NQubits)
	}
	for i, g := range c.Gates {
		if g.Target < 0 || g.Target >= c.NQubits {
			return fmt.Errorf("circuit %q: gate %d: target %d out of range", c.Name, i, g.Target)
		}
		seen := map[int]bool{g.Target: true}
		for _, ctl := range g.Controls {
			if ctl.Qubit < 0 || ctl.Qubit >= c.NQubits {
				return fmt.Errorf("circuit %q: gate %d: control %d out of range", c.Name, i, ctl.Qubit)
			}
			if seen[ctl.Qubit] {
				return fmt.Errorf("circuit %q: gate %d: qubit %d used twice", c.Name, i, ctl.Qubit)
			}
			seen[ctl.Qubit] = true
		}
		if err := gates.CheckUnitary(g.Matrix, 1e-9); err != nil {
			return fmt.Errorf("circuit %q: gate %d (%s): %w", c.Name, i, g.Name, err)
		}
	}
	for _, b := range c.Blocks {
		body := b.End - b.Start
		if b.Start < 0 || body <= 0 || b.Repeat <= 0 || b.Start+body*b.Repeat > len(c.Gates) {
			return fmt.Errorf("circuit %q: malformed block %+v", c.Name, b)
		}
		for i := 0; i < body; i++ {
			for r := 1; r < b.Repeat; r++ {
				if !sameGate(c.Gates[b.Start+i], c.Gates[b.Start+r*body+i]) {
					return fmt.Errorf("circuit %q: block %q: repetition %d differs from body at offset %d", c.Name, b.Name, r, i)
				}
			}
		}
	}
	return nil
}

func sameGate(a, b Gate) bool {
	if a.Name != b.Name || a.Target != b.Target || len(a.Controls) != len(b.Controls) {
		return false
	}
	for i := range a.Controls {
		if a.Controls[i] != b.Controls[i] {
			return false
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			d := a.Matrix[i][j] - b.Matrix[i][j]
			if math.Abs(real(d)) > 1e-12 || math.Abs(imag(d)) > 1e-12 {
				return false
			}
		}
	}
	return true
}
