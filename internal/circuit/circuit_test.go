package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dd"
	"repro/internal/gates"
)

func TestBuilderBasics(t *testing.T) {
	c := New(3)
	c.H(0).CX(0, 1).CCX(0, 1, 2).P(math.Pi/4, 2)
	if c.GateCount() != 4 {
		t.Fatalf("gate count %d, want 4", c.GateCount())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := c.CountByName()
	if counts["h"] != 1 || counts["cx"] != 1 || counts["ccx"] != 1 || counts["p"] != 1 {
		t.Fatalf("unexpected counts %v", counts)
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic(t, func() { New(0) })
	mustPanic(t, func() { New(2).H(2) })
	mustPanic(t, func() { New(2).CX(0, 0) })
	mustPanic(t, func() { New(2).Repeat("r", 0, func(c *Circuit) { c.H(0) }) })
	mustPanic(t, func() { New(2).Repeat("r", 3, func(c *Circuit) {}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestRepeatExpandsAndRecords(t *testing.T) {
	c := New(2)
	c.H(0)
	c.Repeat("iter", 3, func(c *Circuit) {
		c.CX(0, 1)
		c.H(1)
	})
	c.X(0)
	if c.GateCount() != 1+3*2+1 {
		t.Fatalf("gate count %d, want 8", c.GateCount())
	}
	if len(c.Blocks) != 1 {
		t.Fatalf("blocks %d, want 1", len(c.Blocks))
	}
	b := c.Blocks[0]
	if b.Start != 1 || b.End != 3 || b.Repeat != 3 {
		t.Fatalf("block %+v", b)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBrokenBlock(t *testing.T) {
	c := New(2)
	c.H(0).H(0).H(0)
	c.Blocks = append(c.Blocks, Block{Name: "bad", Start: 0, End: 2, Repeat: 3})
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for out-of-range block")
	}
	c2 := New(2)
	c2.H(0).X(1).H(0).H(1) // second "repetition" differs
	c2.Blocks = append(c2.Blocks, Block{Name: "bad", Start: 0, End: 2, Repeat: 2})
	if err := c2.Validate(); err == nil {
		t.Fatal("expected error for non-matching repetition")
	}
}

func TestDepth(t *testing.T) {
	c := New(3)
	c.H(0).H(1).H(2) // parallel: depth 1
	if d := c.Depth(); d != 1 {
		t.Fatalf("depth %d, want 1", d)
	}
	c.CX(0, 1) // depth 2
	c.CX(1, 2) // depth 3
	if d := c.Depth(); d != 3 {
		t.Fatalf("depth %d, want 3", d)
	}
}

func TestInverse(t *testing.T) {
	c := New(2)
	c.H(0).S(0).T(1).CX(0, 1).P(0.7, 1).SX(0)
	inv := c.Inverse()
	if inv.GateCount() != c.GateCount() {
		t.Fatal("inverse changed gate count")
	}
	// Composing c with its inverse must give the identity on every gate
	// pair: check via matrices of first/last pairing.
	for i, g := range c.Gates {
		ig := inv.Gates[len(inv.Gates)-1-i]
		prod := gates.Mul(ig.Matrix, g.Matrix)
		// only equal for the same target gate pair; here they pair up in
		// reverse order so g's partner is at mirrored index.
		if !gates.ApproxEqual(prod, gates.I, 1e-9, false) {
			t.Fatalf("gate %d (%s): inverse pairing broken", i, g.Name)
		}
	}
	// Adjoint names must be serialisable.
	names := map[string]bool{}
	for _, g := range inv.Gates {
		names[g.Name] = true
	}
	for n := range names {
		if strings.Contains(n, "†") {
			t.Fatalf("unserialisable adjoint name %q", n)
		}
	}
	if err := inv.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendCircuit(t *testing.T) {
	a := New(2)
	a.H(0)
	b := New(2)
	b.Repeat("r", 2, func(c *Circuit) { c.X(1) })
	a.AppendCircuit(b)
	if a.GateCount() != 3 {
		t.Fatalf("gate count %d, want 3", a.GateCount())
	}
	if len(a.Blocks) != 1 || a.Blocks[0].Start != 1 {
		t.Fatalf("block offset wrong: %+v", a.Blocks)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, func() { a.AppendCircuit(New(3)) })
}

func TestSwapDecomposition(t *testing.T) {
	c := New(2)
	c.Swap(0, 1)
	if c.GateCount() != 3 {
		t.Fatalf("swap should decompose into 3 gates, got %d", c.GateCount())
	}
	c2 := New(2)
	c2.Swap(1, 1)
	if c2.GateCount() != 0 {
		t.Fatal("self-swap should be a no-op")
	}
	c3 := New(3)
	c3.CSwap(0, 1, 2)
	if c3.GateCount() != 3 {
		t.Fatalf("cswap should decompose into 3 gates, got %d", c3.GateCount())
	}
	if err := c3.Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- parser -------------------------------------------------------------

func TestParseBasic(t *testing.T) {
	src := `
# a comment
name demo
qubits 3
h 0
cx 0 1
ccx 0 1 2
cp(pi/4) 0 2
cx !0 1
x 2 # trailing comment
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" || c.NQubits != 3 || c.GateCount() != 6 {
		t.Fatalf("parsed %q %d qubits %d gates", c.Name, c.NQubits, c.GateCount())
	}
	g := c.Gates[4] // cx !0 1
	if len(g.Controls) != 1 || !g.Controls[0].Negative || g.Controls[0].Qubit != 0 {
		t.Fatalf("negative control not parsed: %+v", g)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseRepeat(t *testing.T) {
	src := `
qubits 2
h 0
repeat 4
  cx 0 1
  h 1
endrepeat
x 0
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 1+4*2+1 {
		t.Fatalf("gate count %d, want 10", c.GateCount())
	}
	if len(c.Blocks) != 1 || c.Blocks[0].Repeat != 4 {
		t.Fatalf("block not recorded: %+v", c.Blocks)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseAngles(t *testing.T) {
	cases := map[string]float64{
		"p(0.5) 0":    0.5,
		"p(pi) 0":     math.Pi,
		"p(-pi) 0":    -math.Pi,
		"p(pi/4) 0":   math.Pi / 4,
		"p(2pi) 0":    2 * math.Pi,
		"p(3pi/8) 0":  3 * math.Pi / 8,
		"p(-pi/2) 0":  -math.Pi / 2,
		"p(0.5pi) 0":  0.5 * math.Pi,
		"p(1.5e-1) 0": 0.15,
	}
	for line, want := range cases {
		c, err := ParseString("qubits 1\n" + line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if got := c.Gates[0].Params[0]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("%q: angle %v, want %v", line, got, want)
		}
	}
}

func TestParseSwap(t *testing.T) {
	c, err := ParseString("qubits 3\nswap 0 2\ncswap 0 1 2")
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 6 {
		t.Fatalf("gate count %d, want 6 (3 per swap)", c.GateCount())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                   // no qubits
		"qubits 0",                           // invalid count
		"qubits two",                         // invalid count
		"h 0",                                // gates before qubits
		"qubits 2\nfoo 0",                    // unknown gate
		"qubits 2\nh 5",                      // out of range
		"qubits 2\nh !0",                     // negated target
		"qubits 2\ncx 0",                     // missing operand
		"qubits 2\np 0",                      // missing parameter
		"qubits 2\np(0.5",                    // malformed parens
		"qubits 2\np(xyz) 0",                 // bad angle
		"qubits 2\np(pi/0) 0",                // division by zero
		"qubits 2\nrepeat 2\nh 0",            // unterminated repeat
		"qubits 2\nendrepeat",                // stray endrepeat
		"qubits 2\nrepeat 0\nh 0\nendrepeat", // bad count
		"qubits 2\nrepeat 2\nendrepeat",      // empty body
		"qubits 2\nqubits 2",                 // duplicate declaration
		"qubits 2\nu(1,2) 0",                 // wrong arity
		"qubits 3\ncswap !0 1 2",             // negative control on swap
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	c := New(4)
	c.Name = "round"
	c.H(0).CX(0, 1).CCP(math.Pi/8, 0, 1, 3).SX(2).Tdg(3)
	c.MC("z", gates.Z, []dd.Control{dd.Neg(0), dd.Pos(2)}, 3)
	text := c.String()
	parsed, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", text, err)
	}
	if parsed.GateCount() != c.GateCount() {
		t.Fatalf("round trip changed gate count: %d vs %d", parsed.GateCount(), c.GateCount())
	}
	for i := range c.Gates {
		if !sameGate(c.Gates[i], parsed.Gates[i]) {
			t.Fatalf("gate %d changed in round trip:\n%+v\nvs\n%+v", i, c.Gates[i], parsed.Gates[i])
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	c := New(3)
	c.H(0).S(1).T(2).SX(0).SY(1).P(0.3, 2).U(0.1, 0.2, 0.3, 0)
	inv := c.Inverse()
	text := inv.String()
	parsed, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parsing inverse %q: %v", text, err)
	}
	for i := range inv.Gates {
		if !gates.ApproxEqual(parsed.Gates[i].Matrix, inv.Gates[i].Matrix, 1e-9, false) {
			t.Fatalf("inverse gate %d matrix changed in round trip", i)
		}
	}
}

// Property: any builder-generated circuit survives the textual round
// trip gate-for-gate.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 2
		rng := rand.New(rand.NewSource(seed))
		c := New(n)
		for i := 0; i < 20; i++ {
			q := rng.Intn(n)
			p := (q + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(6) {
			case 0:
				c.H(q)
			case 1:
				c.Tdg(q)
			case 2:
				c.P(rng.Float64()*2-1, q)
			case 3:
				c.CX(q, p)
			case 4:
				c.MC("z", gates.Z, []dd.Control{dd.Neg(q)}, p)
			default:
				c.U(rng.Float64(), rng.Float64(), rng.Float64(), q)
			}
		}
		parsed, err := ParseString(c.String())
		if err != nil {
			return false
		}
		if parsed.GateCount() != c.GateCount() {
			return false
		}
		for i := range c.Gates {
			if !gates.ApproxEqual(parsed.Gates[i].Matrix, c.Gates[i].Matrix, 1e-9, false) {
				return false
			}
			if parsed.Gates[i].Target != c.Gates[i].Target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
