package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/dd"
	"repro/internal/gates"
)

// The textual circuit format, line oriented:
//
//	# comment
//	name my_circuit
//	qubits 5
//	h 0
//	cx 0 1            // leading c's are controls: operands are controls… target
//	ccp(pi/4) 0 1 2   // parameters in parentheses; pi expressions allowed
//	cx !0 1           // '!' marks a negative (control-on-zero) control
//	repeat 10         // repeated block, recorded as a Block annotation
//	  h 2
//	  cz 0 2
//	endrepeat
//
// Base gate mnemonics: i x y z h s sdg t tdg sx sy swap p(θ) rx(θ) ry(θ)
// rz(θ) u(θ,φ,λ). swap takes two operands and is decomposed into CXs.

// maxGateExpansion bounds the gate count a repeat block may expand to
// — the same 1M limit the OpenQASM parser enforces, so a small hostile
// input cannot balloon into gigabytes of gate storage. (Programmatic
// circuit construction is unaffected.)
const maxGateExpansion = 1 << 20

// Parse reads a circuit from r in the textual format.
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var c *Circuit
	name := ""
	lineNo := 0
	type repeatFrame struct {
		name  string
		start int
		count int
		line  int
	}
	var repeats []repeatFrame
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToLower(fields[0]) {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: name takes exactly one argument", lineNo)
			}
			name = fields[1]
			continue
		case "qubits":
			if c != nil {
				return nil, fmt.Errorf("line %d: duplicate qubits declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: qubits takes exactly one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("line %d: invalid qubit count %q", lineNo, fields[1])
			}
			c = New(n)
			c.Name = name
			continue
		}
		if c == nil {
			return nil, fmt.Errorf("line %d: qubits declaration must precede gates", lineNo)
		}
		switch strings.ToLower(fields[0]) {
		case "repeat":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: repeat takes exactly one argument", lineNo)
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil || k <= 0 {
				return nil, fmt.Errorf("line %d: invalid repeat count %q", lineNo, fields[1])
			}
			repeats = append(repeats, repeatFrame{
				name:  fmt.Sprintf("repeat@%d", lineNo),
				start: len(c.Gates),
				count: k,
				line:  lineNo,
			})
		case "endrepeat":
			if len(repeats) == 0 {
				return nil, fmt.Errorf("line %d: endrepeat without repeat", lineNo)
			}
			fr := repeats[len(repeats)-1]
			repeats = repeats[:len(repeats)-1]
			end := len(c.Gates)
			if end == fr.start {
				return nil, fmt.Errorf("line %d: empty repeat block opened at line %d", lineNo, fr.line)
			}
			if total := int64(fr.start) + int64(end-fr.start)*int64(fr.count); total > maxGateExpansion {
				return nil, fmt.Errorf("line %d: repeat expands to %d gates (limit %d)", lineNo, total, maxGateExpansion)
			}
			body := append([]Gate(nil), c.Gates[fr.start:end]...)
			for i := 1; i < fr.count; i++ {
				c.Gates = append(c.Gates, body...)
			}
			c.Blocks = append(c.Blocks, Block{Name: fr.name, Start: fr.start, End: end, Repeat: fr.count})
		default:
			if err := parseGateLine(c, fields); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("circuit: read: %w", err)
	}
	if len(repeats) > 0 {
		return nil, fmt.Errorf("unterminated repeat opened at line %d", repeats[len(repeats)-1].line)
	}
	if c == nil {
		return nil, fmt.Errorf("circuit: empty input (missing qubits declaration)")
	}
	return c, nil
}

// ParseString parses a circuit from a string.
func ParseString(s string) (*Circuit, error) {
	return Parse(strings.NewReader(s))
}

func parseGateLine(c *Circuit, fields []string) error {
	head := strings.ToLower(fields[0])
	mnemonic := head
	var params []float64
	if i := strings.IndexByte(head, '('); i >= 0 {
		if !strings.HasSuffix(head, ")") {
			return fmt.Errorf("malformed parameter list in %q", head)
		}
		mnemonic = head[:i]
		for _, part := range strings.Split(head[i+1:len(head)-1], ",") {
			v, err := parseAngle(strings.TrimSpace(part))
			if err != nil {
				return err
			}
			params = append(params, v)
		}
	}
	nControls := 0
	base := mnemonic
	for strings.HasPrefix(base, "c") && !isBaseGate(base) {
		base = base[1:]
		nControls++
	}
	if !isBaseGate(base) {
		return fmt.Errorf("unknown gate %q", fields[0])
	}

	operands := fields[1:]
	var controls []dd.Control
	parseOperand := func(s string) (int, bool, error) {
		neg := false
		if strings.HasPrefix(s, "!") {
			neg = true
			s = s[1:]
		}
		q, err := strconv.Atoi(s)
		if err != nil {
			return 0, false, fmt.Errorf("invalid qubit %q", s)
		}
		if q < 0 || q >= c.NQubits {
			return 0, false, fmt.Errorf("qubit %d out of range [0,%d)", q, c.NQubits)
		}
		return q, neg, nil
	}

	if base == "swap" {
		if nControls > 1 {
			return fmt.Errorf("swap supports at most one control")
		}
		if len(operands) != nControls+2 {
			return fmt.Errorf("swap expects %d operands, got %d", nControls+2, len(operands))
		}
		qs := make([]int, 0, len(operands))
		for i, op := range operands {
			q, neg, err := parseOperand(op)
			if err != nil {
				return err
			}
			if neg && i >= nControls {
				return fmt.Errorf("swap operand %q: only controls may be negative", op)
			}
			if neg {
				return fmt.Errorf("controlled swap with negative control is not supported")
			}
			qs = append(qs, q)
		}
		if nControls == 1 {
			c.CSwap(qs[0], qs[1], qs[2])
		} else {
			c.Swap(qs[0], qs[1])
		}
		return nil
	}

	if len(operands) != nControls+1 {
		return fmt.Errorf("gate %s expects %d operands, got %d", fields[0], nControls+1, len(operands))
	}
	for _, op := range operands[:nControls] {
		q, neg, err := parseOperand(op)
		if err != nil {
			return err
		}
		controls = append(controls, dd.Control{Qubit: q, Negative: neg})
	}
	target, neg, err := parseOperand(operands[nControls])
	if err != nil {
		return err
	}
	if neg {
		return fmt.Errorf("target %q may not be negated", operands[nControls])
	}

	m, nParams, err := baseMatrix(base, params)
	if err != nil {
		return err
	}
	if len(params) != nParams {
		return fmt.Errorf("gate %s expects %d parameter(s), got %d", base, nParams, len(params))
	}
	c.Append(Gate{Name: base, Matrix: m, Target: target, Controls: controls, Params: params})
	return nil
}

func isBaseGate(s string) bool {
	switch s {
	case "i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg", "sy", "sydg", "swap", "p", "rx", "ry", "rz", "u":
		return true
	}
	return false
}

func baseMatrix(base string, params []float64) (gates.Matrix, int, error) {
	p := func(i int) float64 {
		if i < len(params) {
			return params[i]
		}
		return 0
	}
	switch base {
	case "i":
		return gates.I, 0, nil
	case "x":
		return gates.X, 0, nil
	case "y":
		return gates.Y, 0, nil
	case "z":
		return gates.Z, 0, nil
	case "h":
		return gates.H, 0, nil
	case "s":
		return gates.S, 0, nil
	case "sdg":
		return gates.Sdg, 0, nil
	case "t":
		return gates.T, 0, nil
	case "tdg":
		return gates.Tdg, 0, nil
	case "sx":
		return gates.SX, 0, nil
	case "sxdg":
		return gates.SXdg, 0, nil
	case "sy":
		return gates.SY, 0, nil
	case "sydg":
		return gates.SYdg, 0, nil
	case "p":
		return gates.Phase(p(0)), 1, nil
	case "rx":
		return gates.RX(p(0)), 1, nil
	case "ry":
		return gates.RY(p(0)), 1, nil
	case "rz":
		return gates.RZ(p(0)), 1, nil
	case "u":
		return gates.U(p(0), p(1), p(2)), 3, nil
	}
	return gates.Matrix{}, 0, fmt.Errorf("unknown base gate %q", base)
}

// parseAngle parses a float, optionally involving "pi": "0.5", "pi",
// "-pi", "pi/4", "2pi", "3pi/8", "-pi/2".
func parseAngle(s string) (float64, error) {
	orig := s
	if s == "" {
		return 0, fmt.Errorf("empty angle")
	}
	sign := 1.0
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	factor := 1.0
	div := 1.0
	if i := strings.Index(s, "/"); i >= 0 {
		d, err := strconv.ParseFloat(s[i+1:], 64)
		if err != nil || d == 0 {
			return 0, fmt.Errorf("invalid angle %q", orig)
		}
		div = d
		s = s[:i]
	}
	hasPi := false
	if strings.HasSuffix(s, "pi") {
		hasPi = true
		s = strings.TrimSuffix(s, "pi")
	}
	if s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid angle %q", orig)
		}
		factor = f
	} else if !hasPi {
		return 0, fmt.Errorf("invalid angle %q", orig)
	}
	v := sign * factor / div
	if hasPi {
		v *= math.Pi
	}
	return v, nil
}

// Write serialises the circuit in the textual format. Blocks are not
// re-folded: the expanded gate list is emitted (annotated with a comment
// for each block).
func (c *Circuit) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if c.Name != "" {
		fmt.Fprintf(bw, "name %s\n", c.Name)
	}
	fmt.Fprintf(bw, "qubits %d\n", c.NQubits)
	for _, b := range c.Blocks {
		fmt.Fprintf(bw, "# block %s: gates [%d,%d) repeated %d times\n", b.Name, b.Start, b.End, b.Repeat)
	}
	for _, g := range c.Gates {
		fmt.Fprintln(bw, formatGate(g))
	}
	return bw.Flush()
}

// String renders the circuit in the textual format.
func (c *Circuit) String() string {
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		return "<error: " + err.Error() + ">"
	}
	return sb.String()
}

func formatGate(g Gate) string {
	var sb strings.Builder
	for range g.Controls {
		sb.WriteByte('c')
	}
	sb.WriteString(strings.TrimSuffix(g.Name, "†"))
	if len(g.Params) > 0 {
		sb.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%g", p)
		}
		sb.WriteByte(')')
	}
	for _, ctl := range g.Controls {
		if ctl.Negative {
			fmt.Fprintf(&sb, " !%d", ctl.Qubit)
		} else {
			fmt.Fprintf(&sb, " %d", ctl.Qubit)
		}
	}
	fmt.Fprintf(&sb, " %d", g.Target)
	return sb.String()
}
