package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// Checkpoint is a resumable snapshot of a simulation: the state DD
// after NextGate gates, plus the bookkeeping needed to continue the
// run and reproduce downstream sampling.
//
// On-disk format (see DESIGN.md "Verification & self-healing"): the
// current version 2 ("DDCKPT2\n" magic) is a sequence of sections,
// each carrying a one-byte tag, a uvarint payload length, a CRC32
// (IEEE) of the payload, and the payload itself:
//
//	'H'  header: circuit name, qubit count, next gate index, RNG seed,
//	     fallback count, strategy name, repair count (varint-encoded)
//	'S'  state: the state DD in the serialize.go DDV1 format
//	'O'  order: the variable order the state DD was taken under — a
//	     uvarint count followed by count uvarint entries, order[level] =
//	     circuit qubit (absent when the run used identity order; files
//	     without it load with Order nil)
//
// Unknown section tags are CRC-checked and skipped, so the format can
// grow without breaking old readers. A flipped bit anywhere in a
// section fails its CRC with a *CheckpointError naming the section —
// corruption is detected at load time, not discovered as wrong
// amplitudes hours into a resumed run. Version 1 files ("DDCKPT1\n",
// no sections, no checksums) are still readable.
type Checkpoint struct {
	CircuitName string
	NQubits     int
	// NextGate is the index of the first gate NOT yet reflected in
	// State; resuming sets Options.StartGate to it.
	NextGate  int
	Seed      int64
	Fallbacks int
	// Strategy is the Strategy.Name() the run was using, recorded so a
	// resume can adopt it (and flag accidental mismatches). Empty on
	// version-1 checkpoints.
	Strategy string
	// Repairs is the number of corruption recoveries the run had
	// performed when the checkpoint was taken (see Result.Repairs).
	Repairs int
	// Version is the on-disk format version the checkpoint was read
	// from (2 for fresh checkpoints; set by ReadCheckpoint).
	Version int
	// Order is the variable order State was taken under: order[level] =
	// circuit qubit, nil for identity (see internal/dd reordering).
	// Checkpoints written before dynamic reordering existed load with
	// Order nil, which resumes them under identity order — correct,
	// since those runs never permuted their levels.
	Order []int
	State dd.VEdge
}

var (
	ckptMagicV1 = [8]byte{'D', 'D', 'C', 'K', 'P', 'T', '1', '\n'}
	ckptMagicV2 = [8]byte{'D', 'D', 'C', 'K', 'P', 'T', '2', '\n'}
)

const (
	ckptSectionHeader = 'H'
	ckptSectionState  = 'S'
	ckptSectionOrder  = 'O'
	// ckptMaxSection bounds a section's declared payload length; the
	// length field is untrusted input.
	ckptMaxSection = 1 << 30
)

// ErrCheckpointCorrupt is wrapped by every corruption-class checkpoint
// failure (bad magic, CRC mismatch, truncation, malformed payload);
// match with errors.Is. I/O errors opening a file are not corruption
// and do not wrap it.
var ErrCheckpointCorrupt = errors.New("core: checkpoint corrupt")

// CheckpointError reports a checkpoint decode failure with enough
// context to localise the damage: the section being decoded and the
// absolute byte offset where decoding failed.
type CheckpointError struct {
	// Section is "magic", "header", "state", or "section <tag>" for an
	// unrecognised tag.
	Section string
	// Offset is the byte offset into the file at which the failure was
	// detected (the start of the section for CRC mismatches).
	Offset int64
	Err    error
}

// Error implements error.
func (e *CheckpointError) Error() string {
	return fmt.Sprintf("core: checkpoint %s section at byte %d: %v", e.Section, e.Offset, e.Err)
}

// Unwrap exposes both the corruption sentinel and the underlying error.
func (e *CheckpointError) Unwrap() []error { return []error{ErrCheckpointCorrupt, e.Err} }

// WriteCheckpoint serialises ck to w in the version-2 format.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	var hdr bytes.Buffer
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		hdr.Write(buf[:n])
	}
	putU(uint64(len(ck.CircuitName)))
	hdr.WriteString(ck.CircuitName)
	putU(uint64(ck.NQubits))
	putU(uint64(ck.NextGate))
	n := binary.PutVarint(buf[:], ck.Seed)
	hdr.Write(buf[:n])
	putU(uint64(ck.Fallbacks))
	putU(uint64(len(ck.Strategy)))
	hdr.WriteString(ck.Strategy)
	putU(uint64(ck.Repairs))

	var state bytes.Buffer
	if err := dd.WriteV(&state, ck.State); err != nil {
		return fmt.Errorf("core: encoding checkpoint state: %w", err)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagicV2[:]); err != nil {
		return err
	}
	if err := writeCkptSection(bw, ckptSectionHeader, hdr.Bytes()); err != nil {
		return err
	}
	// The optional order section is written BEFORE the required state
	// section: a file truncated at any section boundary then also loses
	// the state and fails the missing-section check, instead of quietly
	// decoding with the order dropped (which would resume a permuted
	// state under identity order).
	if ck.Order != nil {
		var ord bytes.Buffer
		n := binary.PutUvarint(buf[:], uint64(len(ck.Order)))
		ord.Write(buf[:n])
		for _, q := range ck.Order {
			n := binary.PutUvarint(buf[:], uint64(q))
			ord.Write(buf[:n])
		}
		if err := writeCkptSection(bw, ckptSectionOrder, ord.Bytes()); err != nil {
			return err
		}
	}
	if err := writeCkptSection(bw, ckptSectionState, state.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

func writeCkptSection(bw *bufio.Writer, tag byte, payload []byte) error {
	if err := bw.WriteByte(tag); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(payload)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := bw.Write(crc[:]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// writeCheckpointV1 emits the legacy version-1 encoding (no sections,
// no checksums, no strategy/repair fields). Kept for compatibility
// tests proving v1 files remain readable.
func writeCheckpointV1(w io.Writer, ck *Checkpoint) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagicV1[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(ck.CircuitName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(ck.CircuitName); err != nil {
		return err
	}
	if err := putUvarint(uint64(ck.NQubits)); err != nil {
		return err
	}
	if err := putUvarint(uint64(ck.NextGate)); err != nil {
		return err
	}
	n := binary.PutVarint(buf[:], ck.Seed)
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	if err := putUvarint(uint64(ck.Fallbacks)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// WriteV takes the raw writer; bw is flushed so ordering is safe.
	return dd.WriteV(w, ck.State)
}

// ckptReader tracks the absolute byte offset of everything consumed so
// decode failures can be localised. It implements io.Reader and
// io.ByteReader (the latter keeps binary.ReadUvarint from allocating a
// shim and keeps offsets exact for header fields).
type ckptReader struct {
	br  *bufio.Reader
	off int64
}

func (c *ckptReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.off += int64(n)
	return n, err
}

func (c *ckptReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

// corruptAt builds the typed decode error, mapping a bare EOF from an
// interior read to ErrUnexpectedEOF — a checkpoint that ends mid-field
// is truncated, not merely finished.
func corruptAt(section string, off int64, err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		err = io.ErrUnexpectedEOF
	}
	return &CheckpointError{Section: section, Offset: off, Err: err}
}

// ReadCheckpoint deserialises a checkpoint from r, building the state
// DD in e. Both format versions are accepted; corruption-class
// failures (bad magic, CRC mismatch, truncation, malformed fields)
// return a *CheckpointError wrapping ErrCheckpointCorrupt and never
// panic.
func ReadCheckpoint(r io.Reader, e *dd.Engine) (*Checkpoint, error) {
	cr := &ckptReader{br: bufio.NewReader(r)}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, corruptAt("magic", 0, err)
	}
	switch magic {
	case ckptMagicV1:
		return readCheckpointV1(cr, e)
	case ckptMagicV2:
		return readCheckpointV2(cr, e)
	default:
		return nil, corruptAt("magic", 0, fmt.Errorf("not a checkpoint file (magic %q)", magic[:]))
	}
}

func readCheckpointV2(cr *ckptReader, e *dd.Engine) (*Checkpoint, error) {
	ck := &Checkpoint{Version: 2}
	var haveHeader, haveState bool
	for {
		secStart := cr.off
		tag, err := cr.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, corruptAt("section", secStart, err)
		}
		secName := sectionName(tag)
		length, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, corruptAt(secName, secStart, err)
		}
		if length > ckptMaxSection {
			return nil, corruptAt(secName, secStart, fmt.Errorf("implausible section length %d", length))
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
			return nil, corruptAt(secName, secStart, err)
		}
		want := binary.LittleEndian.Uint32(crcBuf[:])
		payload, err := readCapped(cr, length)
		if err != nil {
			return nil, corruptAt(secName, secStart, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, corruptAt(secName, secStart,
				fmt.Errorf("CRC mismatch: stored %08x, computed %08x over %d bytes", want, got, length))
		}
		switch tag {
		case ckptSectionHeader:
			if err := decodeCkptHeader(payload, ck); err != nil {
				return nil, corruptAt(secName, secStart, err)
			}
			haveHeader = true
		case ckptSectionState:
			st, err := dd.ReadV(bytes.NewReader(payload), e)
			if err != nil {
				return nil, corruptAt(secName, secStart, err)
			}
			ck.State = st
			haveState = true
		case ckptSectionOrder:
			ord, err := decodeCkptOrder(payload)
			if err != nil {
				return nil, corruptAt(secName, secStart, err)
			}
			ck.Order = ord
		default:
			// CRC verified; payload intentionally ignored (future section).
		}
	}
	if !haveHeader || !haveState {
		missing := "header"
		if haveHeader {
			missing = "state"
		}
		return nil, corruptAt(missing, cr.off, fmt.Errorf("missing %s section", missing))
	}
	if ck.Order != nil && len(ck.Order) != ck.NQubits {
		return nil, corruptAt("order", cr.off,
			fmt.Errorf("order spans %d levels, header declares %d qubits", len(ck.Order), ck.NQubits))
	}
	return ck, nil
}

// decodeCkptOrder parses the 'O' payload into a validated permutation.
// The CRC has passed, but the content is still untrusted: a section
// borrowed from another file could carry a non-permutation, which would
// silently scramble every amplitude of a resumed run.
func decodeCkptOrder(payload []byte) ([]int, error) {
	br := bytes.NewReader(payload)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("order count: %w", err)
	}
	if count > uint64(br.Len()) { // each entry is ≥ 1 byte
		return nil, fmt.Errorf("order count %d exceeds remaining payload %d", count, br.Len())
	}
	ord := make([]int, count)
	for i := range ord {
		q, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("order entry %d: %w", i, err)
		}
		if q >= count {
			return nil, fmt.Errorf("order entry %d is %d, want < %d", i, q, count)
		}
		ord[i] = int(q)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after order entries", br.Len())
	}
	if !dd.IsPermutation(ord) {
		return nil, fmt.Errorf("order %v is not a permutation", ord)
	}
	return ord, nil
}

func sectionName(tag byte) string {
	switch tag {
	case ckptSectionHeader:
		return "header"
	case ckptSectionState:
		return "state"
	case ckptSectionOrder:
		return "order"
	default:
		return fmt.Sprintf("section %q", tag)
	}
}

// readCapped reads exactly length bytes, growing the buffer
// incrementally so a corrupt length costs a truncation error rather
// than a huge allocation.
func readCapped(r io.Reader, length uint64) ([]byte, error) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min64(length, chunk))
	for uint64(len(buf)) < length {
		n := min64(length-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// decodeCkptHeader parses the 'H' payload (already CRC-verified, but
// still length-validated: a forged CRC must not buy a panic).
func decodeCkptHeader(payload []byte, ck *Checkpoint) error {
	br := bytes.NewReader(payload)
	readStr := func(what string) (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("%s length: %w", what, err)
		}
		if n > uint64(br.Len()) {
			return "", fmt.Errorf("%s length %d exceeds remaining payload %d", what, n, br.Len())
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("%s: %w", what, err)
		}
		return string(b), nil
	}
	name, err := readStr("circuit name")
	if err != nil {
		return err
	}
	nq, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("qubit count: %w", err)
	}
	nextGate, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("gate index: %w", err)
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return fmt.Errorf("seed: %w", err)
	}
	fallbacks, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("fallback count: %w", err)
	}
	strategy, err := readStr("strategy name")
	if err != nil {
		return err
	}
	repairs, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("repair count: %w", err)
	}
	ck.CircuitName = name
	ck.NQubits = int(nq)
	ck.NextGate = int(nextGate)
	ck.Seed = seed
	ck.Fallbacks = int(fallbacks)
	ck.Strategy = strategy
	ck.Repairs = int(repairs)
	return nil
}

// readCheckpointV1 decodes the legacy format (magic already consumed).
func readCheckpointV1(cr *ckptReader, e *dd.Engine) (*Checkpoint, error) {
	fieldStart := cr.off
	nameLen, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, corruptAt("header", fieldStart, fmt.Errorf("circuit name length: %w", err))
	}
	if nameLen > 1<<20 {
		return nil, corruptAt("header", fieldStart, fmt.Errorf("circuit name length %d implausible", nameLen))
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, name); err != nil {
		return nil, corruptAt("header", fieldStart, fmt.Errorf("circuit name: %w", err))
	}
	fieldStart = cr.off
	nq, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, corruptAt("header", fieldStart, fmt.Errorf("qubit count: %w", err))
	}
	fieldStart = cr.off
	nextGate, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, corruptAt("header", fieldStart, fmt.Errorf("gate index: %w", err))
	}
	fieldStart = cr.off
	seed, err := binary.ReadVarint(cr)
	if err != nil {
		return nil, corruptAt("header", fieldStart, fmt.Errorf("seed: %w", err))
	}
	fieldStart = cr.off
	fallbacks, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, corruptAt("header", fieldStart, fmt.Errorf("fallback count: %w", err))
	}
	stateStart := cr.off
	// dd.ReadV adds node-level context to its own errors; the wrapper
	// localises the section (offsets inside it shift with ReadV's
	// internal buffering).
	state, err := dd.ReadV(cr, e)
	if err != nil {
		return nil, corruptAt("state", stateStart, err)
	}
	return &Checkpoint{
		CircuitName: string(name),
		NQubits:     int(nq),
		NextGate:    int(nextGate),
		Seed:        seed,
		Fallbacks:   int(fallbacks),
		Version:     1,
		State:       state,
	}, nil
}

// SaveCheckpoint writes ck to path atomically and durably: the data is
// written to a temp file, fsynced, renamed over path, and the parent
// directory is fsynced so the rename itself survives a crash. Without
// the syncs a crash shortly after a "successful" save could surface a
// zero-length or torn checkpoint — rename is atomic in the namespace
// but says nothing about when file contents or the directory entry
// reach stable storage.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	if err := WriteCheckpoint(f, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: installing checkpoint: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
// Platforms whose directory handles reject Sync (it is optional in
// POSIX) degrade to the pre-sync behaviour rather than failing saves.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: opening checkpoint dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("core: syncing checkpoint dir: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint from path into e.
func LoadCheckpoint(path string, e *dd.Engine) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening checkpoint: %w", err)
	}
	defer f.Close()
	ck, rerr := ReadCheckpoint(f, e)
	if cerr := f.Close(); cerr != nil && rerr == nil {
		return nil, fmt.Errorf("core: closing checkpoint: %w", cerr)
	}
	return ck, rerr
}

// FsckReport summarises a verified checkpoint for ddsim -fsck.
type FsckReport struct {
	Version     int
	CircuitName string
	NQubits     int
	NextGate    int
	Seed        int64
	Fallbacks   int
	Strategy    string
	Repairs     int
	// Order is the recorded variable order (nil for identity).
	Order []int
	// StateNodes is the decoded state DD's node count; Norm its 2-norm.
	StateNodes int
	Norm       float64
}

// VerifyCheckpoint loads and deep-checks a checkpoint file: format and
// per-section CRC32 (version 2), then structural audit of the decoded
// state DD, header/state qubit agreement, and unit-norm. It returns a
// report describing the checkpoint; errors from corruption-class
// failures wrap ErrCheckpointCorrupt.
func VerifyCheckpoint(path string) (*FsckReport, error) {
	eng := dd.New()
	ck, err := LoadCheckpoint(path, eng)
	if err != nil {
		return nil, err
	}
	rep := &FsckReport{
		Version:     ck.Version,
		CircuitName: ck.CircuitName,
		NQubits:     ck.NQubits,
		NextGate:    ck.NextGate,
		Seed:        ck.Seed,
		Fallbacks:   ck.Fallbacks,
		Strategy:    ck.Strategy,
		Repairs:     ck.Repairs,
		Order:       ck.Order,
		StateNodes:  eng.SizeV(ck.State),
	}
	if got := ck.State.Qubits(); got != ck.NQubits {
		return rep, fmt.Errorf("%w: header declares %d qubits, state DD spans %d", ErrCheckpointCorrupt, ck.NQubits, got)
	}
	if err := eng.AuditV(ck.State); err != nil {
		return rep, fmt.Errorf("%w: state DD fails audit: %w", ErrCheckpointCorrupt, err)
	}
	drift, err := dd.CheckNorm(ck.State, 0)
	rep.Norm = 1 + drift
	if err != nil {
		rep.Norm = ck.State.Norm()
		return rep, fmt.Errorf("%w: %w", ErrCheckpointCorrupt, err)
	}
	rep.Norm = ck.State.Norm()
	return rep, nil
}

// StrategyFromName parses a Strategy.Name() string back into the
// strategy — the inverse used when a resume adopts the strategy
// recorded in a checkpoint.
func StrategyFromName(name string) (Strategy, error) {
	switch {
	case name == "sequential":
		return Sequential{}, nil
	case name == "combine-all":
		return CombineAll{}, nil
	case strings.HasPrefix(name, "k-operations("):
		var k int
		if _, err := fmt.Sscanf(name, "k-operations(k=%d)", &k); err != nil || k <= 0 {
			return nil, fmt.Errorf("core: malformed strategy name %q", name)
		}
		return KOperations{K: k}, nil
	case strings.HasPrefix(name, "max-size("):
		var s int
		if _, err := fmt.Sscanf(name, "max-size(s=%d)", &s); err != nil || s <= 0 {
			return nil, fmt.Errorf("core: malformed strategy name %q", name)
		}
		return MaxSize{SMax: s}, nil
	case strings.HasPrefix(name, "adaptive("):
		var r float64
		if _, err := fmt.Sscanf(name, "adaptive(r=%g)", &r); err != nil || r <= 0 {
			return nil, fmt.Errorf("core: malformed strategy name %q", name)
		}
		return Adaptive{Ratio: r}, nil
	case strings.HasPrefix(name, "planner("):
		var w int
		var r, g float64
		if _, err := fmt.Sscanf(name, "planner(w=%d,r=%g,g=%g)", &w, &r, &g); err != nil || w < 1 || r <= 0 || g <= 0 {
			return nil, fmt.Errorf("core: malformed strategy name %q", name)
		}
		// A fresh Planner: resuming resets the adaptive state — the
		// knobs round-trip, the learned window deliberately does not.
		return &Planner{MaxWindow: w, FlushRatio: r, Growth: g}, nil
	}
	return nil, fmt.Errorf("core: unknown strategy name %q", name)
}

// ResumeOptions prepares opt for resuming c from ck: the checkpoint's
// state becomes the initial state, StartGate skips the already-applied
// prefix, and the recorded seed is restored. It validates that the
// checkpoint matches the circuit, and — when the checkpoint records a
// strategy — either adopts it (opt.Strategy nil) or requires agreement
// with the one configured; callers overriding deliberately should
// clear ck.Strategy first.
func ResumeOptions(opt Options, c *circuit.Circuit, ck *Checkpoint) (Options, error) {
	if ck.NQubits != c.NQubits {
		return opt, fmt.Errorf("core: checkpoint has %d qubits, circuit %q has %d", ck.NQubits, c.Name, c.NQubits)
	}
	if ck.NextGate < 0 || ck.NextGate > len(c.Gates) {
		return opt, fmt.Errorf("core: checkpoint gate index %d out of range for %d gates", ck.NextGate, len(c.Gates))
	}
	if ck.CircuitName != "" && c.Name != "" && ck.CircuitName != c.Name {
		return opt, fmt.Errorf("core: checkpoint is for circuit %q, not %q", ck.CircuitName, c.Name)
	}
	if ck.Strategy != "" {
		if opt.Strategy == nil {
			st, err := StrategyFromName(ck.Strategy)
			if err != nil {
				return opt, fmt.Errorf("core: checkpoint strategy: %w", err)
			}
			opt.Strategy = st
		} else if opt.Strategy.Name() != ck.Strategy {
			return opt, fmt.Errorf("core: checkpoint was taken under strategy %q, options request %q (clear ck.Strategy to override)",
				ck.Strategy, opt.Strategy.Name())
		}
	}
	st := ck.State
	opt.InitialState = &st
	opt.StartGate = ck.NextGate
	opt.Seed = ck.Seed
	// The recorded order (nil for identity) wins over any caller-set
	// InitialOrder: the state DD is only meaningful under the order it
	// was checkpointed with.
	opt.InitialOrder = ck.Order
	return opt, nil
}
