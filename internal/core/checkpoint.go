package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// Checkpoint is a resumable snapshot of a simulation: the state DD
// after NextGate gates, plus the bookkeeping needed to continue the
// run and reproduce downstream sampling.
//
// On-disk format (see DESIGN.md "Resilience"): an 8-byte magic
// "DDCKPT1\n", a varint-encoded header (circuit name, qubit count,
// next gate index, RNG seed, fallback count), then the state DD in the
// serialize.go DDV1 format.
type Checkpoint struct {
	CircuitName string
	NQubits     int
	// NextGate is the index of the first gate NOT yet reflected in
	// State; resuming sets Options.StartGate to it.
	NextGate  int
	Seed      int64
	Fallbacks int
	State     dd.VEdge
}

var ckptMagic = [8]byte{'D', 'D', 'C', 'K', 'P', 'T', '1', '\n'}

// WriteCheckpoint serialises ck to w.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(ck.CircuitName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(ck.CircuitName); err != nil {
		return err
	}
	if err := putUvarint(uint64(ck.NQubits)); err != nil {
		return err
	}
	if err := putUvarint(uint64(ck.NextGate)); err != nil {
		return err
	}
	n := binary.PutVarint(buf[:], ck.Seed)
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	if err := putUvarint(uint64(ck.Fallbacks)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// WriteV takes the raw writer; bw is flushed so ordering is safe.
	return dd.WriteV(w, ck.State)
}

// ReadCheckpoint deserialises a checkpoint from r, building the state
// DD in e.
func ReadCheckpoint(r io.Reader, e *dd.Engine) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("core: not a checkpoint file (magic %q)", magic[:])
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("core: checkpoint name length %d implausible", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("core: checkpoint name: %w", err)
	}
	nq, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	nextGate, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	fallbacks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	// ReadV buffers internally, so the shared bufio.Reader keeps byte
	// positions consistent between header and DD payload.
	state, err := dd.ReadV(br, e)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint state: %w", err)
	}
	ck := &Checkpoint{
		CircuitName: string(name),
		NQubits:     int(nq),
		NextGate:    int(nextGate),
		Seed:        seed,
		Fallbacks:   int(fallbacks),
		State:       state,
	}
	return ck, nil
}

// SaveCheckpoint writes ck to path atomically and durably: the data is
// written to a temp file, fsynced, renamed over path, and the parent
// directory is fsynced so the rename itself survives a crash. Without
// the syncs a crash shortly after a "successful" save could surface a
// zero-length or torn checkpoint — rename is atomic in the namespace
// but says nothing about when file contents or the directory entry
// reach stable storage.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	if err := WriteCheckpoint(f, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: installing checkpoint: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
// Platforms whose directory handles reject Sync (it is optional in
// POSIX) degrade to the pre-sync behaviour rather than failing saves.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: opening checkpoint dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("core: syncing checkpoint dir: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint from path into e.
func LoadCheckpoint(path string, e *dd.Engine) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f, e)
}

// ResumeOptions prepares opt for resuming c from ck: the checkpoint's
// state becomes the initial state, StartGate skips the already-applied
// prefix, and the recorded seed is restored. It validates that the
// checkpoint matches the circuit.
func ResumeOptions(opt Options, c *circuit.Circuit, ck *Checkpoint) (Options, error) {
	if ck.NQubits != c.NQubits {
		return opt, fmt.Errorf("core: checkpoint has %d qubits, circuit %q has %d", ck.NQubits, c.Name, c.NQubits)
	}
	if ck.NextGate < 0 || ck.NextGate > len(c.Gates) {
		return opt, fmt.Errorf("core: checkpoint gate index %d out of range for %d gates", ck.NextGate, len(c.Gates))
	}
	if ck.CircuitName != "" && c.Name != "" && ck.CircuitName != c.Name {
		return opt, fmt.Errorf("core: checkpoint is for circuit %q, not %q", ck.CircuitName, c.Name)
	}
	st := ck.State
	opt.InitialState = &st
	opt.StartGate = ck.NextGate
	opt.Seed = ck.Seed
	return opt, nil
}
