package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/obs"
)

// scriptedStrategy replays a recorded sequence of flush cuts: it fires
// exactly when the combined count reaches the next recorded cut. Used
// by the differential test to re-run the planner's decisions through a
// strategy that consults nothing — same cuts, same multiplications.
type scriptedStrategy struct {
	cuts []int
	i    int
}

func (s *scriptedStrategy) Name() string { return "scripted" }

func (s *scriptedStrategy) ShouldApply(combined int, _, _ func() int) bool {
	if s.i < len(s.cuts) && combined >= s.cuts[s.i] {
		s.i++
		return true
	}
	return false
}

// TestPlannerDifferential proves the planner changes only *when* the
// accumulated matrix is applied, never *what* is computed: replaying
// its recorded flush cuts through a strategy that looks at nothing
// must reach a pointer-identical state DD on a shared engine, and a
// byte-identical serialisation on a fresh one.
func TestPlannerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 4 + rng.Intn(3)
		c := randomCircuit(rng, n, 60, false)

		eng := dd.New()
		planner := &Planner{MaxWindow: 8}
		res, err := Run(c, Options{Strategy: planner, Engine: eng, RecordTrace: true})
		if err != nil {
			t.Fatalf("trial %d: planner run: %v", trial, err)
		}
		var cuts []int
		for _, tp := range res.Trace {
			cuts = append(cuts, tp.Combined)
		}
		if len(cuts) < 2 {
			t.Fatalf("trial %d: planner made %d steps; too few to be interesting", trial, len(cuts))
		}

		// Same engine: the unique tables must intern the replayed state
		// onto the very same node.
		ref, err := Run(c, Options{Strategy: &scriptedStrategy{cuts: cuts}, Engine: eng, RecordTrace: true})
		if err != nil {
			t.Fatalf("trial %d: scripted run: %v", trial, err)
		}
		if res.State != ref.State {
			t.Fatalf("trial %d: planner state not pointer-identical to scripted replay", trial)
		}
		if res.MatVecSteps != ref.MatVecSteps || res.MatMatSteps != ref.MatMatSteps {
			t.Fatalf("trial %d: multiplication counts diverge: planner %d/%d, scripted %d/%d",
				trial, res.MatVecSteps, res.MatMatSteps, ref.MatVecSteps, ref.MatMatSteps)
		}

		// Fresh engine: serialised bytes must agree too.
		fresh, err := Run(c, Options{Strategy: &scriptedStrategy{cuts: cuts}, Engine: dd.New()})
		if err != nil {
			t.Fatalf("trial %d: fresh scripted run: %v", trial, err)
		}
		var a, b bytes.Buffer
		if err := dd.WriteV(&a, res.State); err != nil {
			t.Fatal(err)
		}
		if err := dd.WriteV(&b, fresh.State); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("trial %d: planner state serialisation differs from scripted replay", trial)
		}
	}
}

// TestPlannerDeterministic: two identical planner runs on fresh engines
// must make identical decisions — the planner consults sizes and
// counters, never the clock.
func TestPlannerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomCircuit(rng, 6, 80, false)
	var traces [2][]TracePoint
	for i := range traces {
		res, err := Run(c, Options{Strategy: &Planner{}, Engine: dd.New(), RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = res.Trace
	}
	if len(traces[0]) != len(traces[1]) {
		t.Fatalf("step counts differ: %d vs %d", len(traces[0]), len(traces[1]))
	}
	for i := range traces[0] {
		if traces[0][i] != traces[1][i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, traces[0][i], traces[1][i])
		}
	}
}

// TestPlannerMatchesDense anchors planner correctness to the dense
// reference simulator across random circuits, including under blocks.
func TestPlannerMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		n := 2 + rng.Intn(4)
		c := randomCircuit(rng, n, 40, trial%2 == 0)
		for _, useBlocks := range []bool{false, true} {
			res, err := Run(c, Options{Strategy: &Planner{}, UseBlocks: useBlocks})
			if err != nil {
				t.Fatalf("trial %d blocks=%v: %v", trial, useBlocks, err)
			}
			if f := fidelityWithDense(t, res, c); f < 1-1e-9 {
				t.Fatalf("trial %d blocks=%v: fidelity %v", trial, useBlocks, f)
			}
		}
	}
}

// TestPlannerEventsAndMetrics: every planner flush decision surfaces as
// a KindPlanner event with a named trip and as dd_planner_* metrics.
func TestPlannerEventsAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng, 6, 120, false)
	ring := obs.NewRing(4096)
	reg := obs.NewRegistry()
	res, err := Run(c, Options{Strategy: &Planner{MaxWindow: 4}, EventSink: ring, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.GatesApplied != c.GateCount() {
		t.Fatalf("applied %d of %d gates", res.GatesApplied, c.GateCount())
	}
	valid := map[string]bool{"window": true, "ratio": true, "growth": true, "cost": true}
	events := 0
	for _, e := range ring.Events() {
		if e.Kind != obs.KindPlanner {
			continue
		}
		events++
		if !valid[e.Decision] {
			t.Fatalf("planner event with unknown decision %q", e.Decision)
		}
		if e.Combined < 1 || e.Window < 1 {
			t.Fatalf("planner event with nonsense combined=%d window=%d", e.Combined, e.Window)
		}
	}
	if events == 0 {
		t.Fatal("no KindPlanner events emitted")
	}
	var flushes, decisions uint64
	seenWindow := false
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "dd_planner_flushes_total":
			flushes = uint64(m.Value)
		case "dd_planner_decisions_total":
			decisions = uint64(m.Value)
		case "dd_planner_window":
			seenWindow = true
		}
	}
	if flushes != uint64(events) {
		t.Fatalf("dd_planner_flushes_total = %d, want %d (one per event)", flushes, events)
	}
	if decisions < flushes {
		t.Fatalf("dd_planner_decisions_total = %d < flushes %d", decisions, flushes)
	}
	if !seenWindow {
		t.Fatal("dd_planner_window gauge not registered")
	}
}

// TestPlannerSharedOptionsNoRace: one Options value reused across
// concurrent runs must be safe — RunContext clones the planner per run.
// (Run under -race in CI's batch-race job.)
func TestPlannerSharedOptionsNoRace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomCircuit(rng, 5, 60, false)
	planner := &Planner{MaxWindow: 8}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := Run(c, Options{Strategy: planner, Engine: dd.New()})
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if planner.eng != nil || planner.window != 0 {
		t.Fatal("shared planner instance was mutated; runs must operate on clones")
	}
}

// TestPlannerNameRoundTrip: the planner's canonical name reconstructs
// an equivalent planner with fresh adaptive state.
func TestPlannerNameRoundTrip(t *testing.T) {
	for _, p := range []*Planner{{}, {MaxWindow: 16}, {MaxWindow: 32, FlushRatio: 0.5, Growth: 3}} {
		st, err := StrategyFromName(p.Name())
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		back, ok := st.(*Planner)
		if !ok {
			t.Fatalf("%s: parsed to %T", p.Name(), st)
		}
		if back.Name() != p.Name() {
			t.Fatalf("round trip %q -> %q", p.Name(), back.Name())
		}
		if back.eng != nil || back.sampled || back.pending {
			t.Fatalf("%s: reconstructed planner carries adaptive state", p.Name())
		}
	}
	if _, err := StrategyFromName("planner(w=0,r=1,g=2)"); err == nil {
		t.Fatal("malformed planner name accepted")
	}
}

// TestPlannerInitialWindowLocality: the static cost model reads gate
// locality to pick the starting regime. Chained gates (every pair
// sharing a qubit, Shor-like) start at the narrow window; layers of
// disjoint gates (random-circuit-like, locality ~0) enter ride mode
// with the window pinned at the cap.
func TestPlannerInitialWindowLocality(t *testing.T) {
	local := circuit.New(8)
	for i := 0; i < 64; i++ {
		local.H(0)
	}
	scattered := circuit.New(8)
	for i := 0; i < 64; i++ {
		scattered.H(i % 8)
	}
	pLocal := &Planner{}
	pLocal.bindRun(dd.New(), local, 0)
	if pLocal.ride || pLocal.window != plannerNarrowInit {
		t.Fatalf("chained gates: ride=%v window=%d; want windowed start at %d",
			pLocal.ride, pLocal.window, plannerNarrowInit)
	}
	pScattered := &Planner{}
	pScattered.bindRun(dd.New(), scattered, 0)
	if !pScattered.ride || pScattered.window != pScattered.maxWindow() {
		t.Fatalf("disjoint gates: ride=%v window=%d; want ride mode at cap %d",
			pScattered.ride, pScattered.window, pScattered.maxWindow())
	}
}

// BenchmarkPlannerDecision guards the planner's decision path: it runs
// on every absorbed gate, so it must stay allocation-free (enforced by
// the CI alloc-regression step).
func BenchmarkPlannerDecision(b *testing.B) {
	c := circuit.New(6)
	for i := 0; i < 16; i++ {
		c.H(i%6).CX(i%6, (i+1)%6)
	}
	eng := dd.New()
	p := &Planner{}
	p.bindRun(eng, c, 0)
	opSize := func() int { return 12 }
	stateSize := func() int { return 40 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combined := 1 + i%8
		if p.ShouldApply(combined, opSize, stateSize) {
			p.noteApply(combined)
			p.takeDecision()
		}
	}
}
