package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/verify"
)

// Self-verification and bounded repair. With Options.VerifyEvery set,
// the runner periodically audits the engine (dd.Engine.Audit and the
// reachable-state audit), tracks state-norm drift, spot-checks the
// accumulated operation matrix for unitarity, and — in Paranoid mode —
// compares amplitudes against a dense lockstep oracle. On a failed
// check it does not give up immediately: the state is rebuilt into a
// fresh engine from the last verified snapshot (re-canonicalising every
// node and weight), the gates since the snapshot are replayed
// sequentially, and the run continues. Repairs are bounded; a state
// that fails verification even after a rebuild — or more than
// maxRepairs rebuilds per run — fails the run with FailureCorruption.

// maxRepairs bounds rebuild attempts per run: corruption that recurs
// after this many clean-engine replays is systematic (a logic bug or
// failing hardware), not transient, and hiding it behind endless
// repairs would be worse than failing loudly.
const maxRepairs = 4

// verifier holds the verification state of one run.
type verifier struct {
	every    int
	oracle   *verify.Lockstep // nil unless Paranoid
	lastSync int              // r.next value at the last verification pass

	// Last verified snapshot, held in a private engine the simulation
	// never touches so main-engine corruption cannot reach it.
	// snapOrder is the variable order the snapshot state is encoded in
	// (a copy; nil = identity) — a repair must restore it before
	// replaying, since sifting may have moved the live order since.
	snapEng   *dd.Engine
	snap      dd.VEdge
	snapGate  int
	snapOrder []int
	snapValid bool

	repairs  int
	maxDrift float64
}

// newVerifier builds the run's verifier, or nil when verification is
// disabled. Returns a configuration error when Paranoid is requested
// beyond the dense oracle's qubit range.
func newVerifier(c *circuit.Circuit, opt Options) (*verifier, error) {
	every := opt.VerifyEvery
	if opt.Paranoid && every <= 0 {
		every = 1
	}
	if every <= 0 {
		return nil, nil
	}
	v := &verifier{every: every, lastSync: opt.StartGate, snapGate: opt.StartGate}
	if opt.Paranoid {
		if c.NQubits > verify.MaxOracleQubits {
			return nil, fmt.Errorf("core: Paranoid dense oracle supports at most %d qubits, circuit has %d",
				verify.MaxOracleQubits, c.NQubits)
		}
		var initial []complex128
		if opt.InitialState != nil {
			// The caller's state is encoded in InitialOrder; the oracle
			// wants circuit-ordered amplitudes.
			initial = dd.VectorInOrder(*opt.InitialState, opt.InitialOrder)
		}
		oracle, err := verify.NewLockstep(c, opt.StartGate, initial)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		v.oracle = oracle
	}
	return v, nil
}

// maybeVerify runs a verification pass when the cadence is due (or
// force is set, for the end-of-run pass). On a failed check it attempts
// a repair; the returned error is nil when the state is verified or
// successfully repaired.
func (r *runner) maybeVerify(force bool) error {
	if r.ver == nil {
		return nil
	}
	if !force && r.next-r.ver.lastSync < r.ver.every {
		return nil
	}
	r.ver.lastSync = r.next
	check, ierr, rerr := r.runChecks()
	if rerr != nil {
		return rerr // genuine abort (deadline/budget/cancel) mid-check
	}
	if r.obs != nil {
		r.obs.verifyEv(r.applied, check)
	}
	if ierr == nil {
		r.snapshot()
		return nil
	}
	return r.attemptRepair(check, ierr)
}

// runChecks runs the verification battery against the current state.
// It returns the name of the failing check and its error (both empty on
// a clean pass), or a *RunError when a real abort source fired during
// the — potentially expensive — checks. Panics out of the checks (e.g.
// a level-mismatch panic from multiplying a structurally corrupt
// matrix) are themselves treated as detection, not as run failures.
func (r *runner) runChecks() (check string, ierr error, rerr *RunError) {
	gerr := r.guard(r.applied, func() {
		if err := r.eng.Audit(); err != nil {
			check, ierr = "audit", err
			return
		}
		if err := r.eng.AuditV(r.v); err != nil {
			check, ierr = "audit", err
			return
		}
		drift, err := dd.CheckNorm(r.v, 0)
		if drift > r.ver.maxDrift {
			r.ver.maxDrift = drift
		}
		if err != nil {
			check, ierr = "norm", err
			return
		}
		if r.accValid && r.combined > 1 {
			if err := r.eng.AuditM(r.acc); err != nil {
				check, ierr = "audit", err
				return
			}
			if err := r.eng.CheckUnitary(r.acc, 0); err != nil {
				check, ierr = "unitarity", err
				return
			}
		}
		if r.ver.oracle != nil {
			if err := r.ver.oracle.Advance(r.applied); err != nil {
				check, ierr = "oracle", err
				return
			}
			if err := r.ver.oracle.CheckOrdered(r.v, r.order); err != nil {
				check, ierr = "oracle", err
				return
			}
		}
	})
	if gerr != nil {
		if gerr.Kind != FailurePanic {
			return "", nil, gerr
		}
		check, ierr = "audit", gerr.Err
	}
	return check, ierr, nil
}

// snapshot records the (just verified) state as the repair baseline,
// rebuilt into the verifier's private engine. The private engine is
// reused across snapshots and garbage-collected down to the one live
// snapshot each time.
func (r *runner) snapshot() {
	if r.ver.snapEng == nil {
		r.ver.snapEng = dd.New()
	}
	r.ver.snap = r.ver.snapEng.CopyV(r.v)
	r.ver.snapGate = r.applied
	r.ver.snapOrder = append([]int(nil), r.order...)
	r.ver.snapValid = true
	r.ver.snapEng.GarbageCollect([]dd.VEdge{r.ver.snap}, nil)
}

// maybeRepairOnPanic routes kernel panics into the repair path when
// verification is enabled: a panic out of the arithmetic recursions
// (level mismatch, invariant violation) on a previously healthy engine
// is corruption evidence of the same kind an audit failure is. Without
// a verifier the error passes through unchanged. Returns nil when the
// run was repaired and may continue.
func (r *runner) maybeRepairOnPanic(err error) error {
	var re *RunError
	if r.ver == nil || !errors.As(err, &re) || re.Kind != FailurePanic {
		return err
	}
	if r.obs != nil {
		r.obs.verifyEv(r.applied, "panic")
	}
	return r.attemptRepair("panic", re.Err)
}

// attemptRepair is the bounded self-healing path: rebuild the state
// from the last verified snapshot into a fresh engine
// (re-canonicalisation discards whatever table damage the old engine
// carried), replay the gates between the snapshot and the last applied
// gate sequentially, re-verify, and resume. Any failure here — repair
// budget exhausted, no snapshot, replay abort, or a re-verification
// failure on the rebuilt state — ends the run with FailureCorruption.
func (r *runner) attemptRepair(check string, ierr error) error {
	corruption := func(cause error) *RunError {
		return &RunError{Kind: FailureCorruption, GateIndex: r.applied, Err: ErrCorruption, Cause: cause}
	}
	r.ver.repairs++
	if r.ver.repairs > maxRepairs {
		return corruption(fmt.Errorf("repair budget (%d) exhausted: %w", maxRepairs, ierr))
	}
	if !r.ver.snapValid {
		// No verified snapshot yet (corruption before the first pass) —
		// unless the run started from a caller-provided state, gate 0's
		// |0…0> start is trivially reconstructible.
		if r.opt.StartGate == 0 && r.opt.InitialState == nil {
			r.ver.snapEng = dd.New()
			r.ver.snap = r.ver.snapEng.ZeroState(r.c.NQubits)
			r.ver.snapGate = 0
			// |0…0> is permutation-symmetric, so the replay may start
			// from the run's initial order.
			r.ver.snapOrder = append([]int(nil), r.opt.InitialOrder...)
			r.ver.snapValid = true
		} else {
			return corruption(fmt.Errorf("no verified snapshot to rebuild from: %w", ierr))
		}
	}

	target := r.applied
	fresh := dd.New()
	rebuilt := fresh.CopyV(r.ver.snap)
	r.swapEngine(fresh)
	r.v = rebuilt
	r.applied = r.ver.snapGate
	r.accValid = false
	r.combined = 0
	// The snapshot is encoded in the order current at snapshot time;
	// sifting may have moved the live order since, so restore it (and
	// the qubit→level map the replay's gateDD reads).
	r.order = append([]int(nil), r.ver.snapOrder...)
	r.buildPos()
	r.siftBase = 0

	// Replay the in-flight gates one at a time — small gate DDs, no
	// accumulated matrix — so the rebuilt engine reaches the state the
	// corrupt one claimed to be at.
	for i := r.ver.snapGate; i < target; i++ {
		g := r.c.Gates[i]
		if err := r.guard(i, func() {
			r.applyOp(r.gateDD(g), i+1, 1, false, "", false)
		}); err != nil {
			return corruption(errors.Join(ierr, err))
		}
		r.maybeGC()
	}
	r.next = target
	if r.obs != nil {
		r.obs.repairEv(target, target-r.ver.snapGate, check)
	}

	// The rebuilt state must pass the full battery; failing again means
	// the corruption is not confined to the discarded engine.
	check2, ierr2, rerr := r.runChecks()
	if rerr != nil {
		return rerr
	}
	if r.obs != nil {
		r.obs.verifyEv(r.applied, check2)
	}
	if ierr2 != nil {
		return corruption(fmt.Errorf("state fails %s check even after rebuild: %w", check2, ierr2))
	}
	r.snapshot()
	return nil
}

// swapEngine retires the runner's engine for a fresh one: the old
// engine's counter contribution is folded into the carried totals, the
// abort sources move over, and the observer is re-pointed. Block
// matrices die with the old engine; runBlock notices the identity
// change and falls back to gate-at-a-time execution.
func (r *runner) swapEngine(fresh *dd.Engine) {
	old := r.eng
	oldStats := old.Stats()
	r.carried = statsSum(r.carried, statsDelta(oldStats, r.statsBase))
	r.statsBase = dd.Stats{}

	old.SetDeadline(time.Time{})
	old.SetBudget(0)
	old.SetContext(nil)
	fresh.SetDeadline(r.opt.Deadline)
	fresh.SetBudget(r.opt.MaxNodes)
	fresh.SetContext(r.ctx)
	fresh.SetIdentitySkip(!r.opt.DisableIdentitySkip)
	if r.gov != nil {
		old.SetSoftBudget(0, dd.Watermarks{})
		fresh.SetSoftBudget(r.gov.soft, r.opt.PressureWatermarks)
	}
	if r.obs != nil {
		old.SetObserver(nil)
		r.obs.engineSwapped(oldStats, fresh)
		fresh.SetObserver(r.obs)
	}
	r.eng = fresh
	r.blockMats = nil
	r.stateSz = -1
	// A run-bound strategy (the planner) probes engine counters; point
	// it at the replacement engine and let it re-plan from the gates
	// about to replay.
	if rb, ok := r.opt.Strategy.(runBound); ok {
		rb.bindRun(fresh, r.c, r.next)
	}
}

// statsDelta returns the counter growth from base to cur (snapshots of
// the same engine, cur later). Peak fields are maxima, not counters:
// the delta carries cur's value and statsSum resolves by max.
func statsDelta(cur, base dd.Stats) dd.Stats {
	d := cur
	d.MatVecMuls -= base.MatVecMuls
	d.MatMatMuls -= base.MatMatMuls
	d.AddRecursions -= base.AddRecursions
	d.MulRecursions -= base.MulRecursions
	d.IdentitySkipsMV -= base.IdentitySkipsMV
	d.IdentitySkipsMM -= base.IdentitySkipsMM
	d.IdentitySkipLevels -= base.IdentitySkipLevels
	d.CacheHits -= base.CacheHits
	d.CacheLookups -= base.CacheLookups
	d.AddV.Lookups -= base.AddV.Lookups
	d.AddV.Hits -= base.AddV.Hits
	d.AddM.Lookups -= base.AddM.Lookups
	d.AddM.Hits -= base.AddM.Hits
	d.MulMV.Lookups -= base.MulMV.Lookups
	d.MulMV.Hits -= base.MulMV.Hits
	d.MulMM.Lookups -= base.MulMM.Lookups
	d.MulMM.Hits -= base.MulMM.Hits
	d.NodesCreated -= base.NodesCreated
	d.NodesRecycled -= base.NodesRecycled
	d.GCs -= base.GCs
	d.GCPause -= base.GCPause
	d.Aborts -= base.Aborts
	d.FaultsInjected -= base.FaultsInjected
	d.DeadlineClockReads -= base.DeadlineClockReads
	d.ReorderSwaps -= base.ReorderSwaps
	d.SiftPasses -= base.SiftPasses
	return d
}

// statsSum accumulates two stat deltas (or a base snapshot plus a
// delta): counters add, peaks and maximum pauses take the max.
func statsSum(a, b dd.Stats) dd.Stats {
	s := a
	s.MatVecMuls += b.MatVecMuls
	s.MatMatMuls += b.MatMatMuls
	s.AddRecursions += b.AddRecursions
	s.MulRecursions += b.MulRecursions
	s.IdentitySkipsMV += b.IdentitySkipsMV
	s.IdentitySkipsMM += b.IdentitySkipsMM
	s.IdentitySkipLevels += b.IdentitySkipLevels
	s.CacheHits += b.CacheHits
	s.CacheLookups += b.CacheLookups
	s.AddV.Lookups += b.AddV.Lookups
	s.AddV.Hits += b.AddV.Hits
	s.AddM.Lookups += b.AddM.Lookups
	s.AddM.Hits += b.AddM.Hits
	s.MulMV.Lookups += b.MulMV.Lookups
	s.MulMV.Hits += b.MulMV.Hits
	s.MulMM.Lookups += b.MulMM.Lookups
	s.MulMM.Hits += b.MulMM.Hits
	s.NodesCreated += b.NodesCreated
	s.NodesRecycled += b.NodesRecycled
	s.GCs += b.GCs
	s.GCPause += b.GCPause
	s.Aborts += b.Aborts
	s.FaultsInjected += b.FaultsInjected
	s.DeadlineClockReads += b.DeadlineClockReads
	s.ReorderSwaps += b.ReorderSwaps
	s.SiftPasses += b.SiftPasses
	if b.GCMaxPause > s.GCMaxPause {
		s.GCMaxPause = b.GCMaxPause
	}
	if b.PeakVNodes > s.PeakVNodes {
		s.PeakVNodes = b.PeakVNodes
	}
	if b.PeakMNodes > s.PeakMNodes {
		s.PeakMNodes = b.PeakMNodes
	}
	if b.PeakVectorSize > s.PeakVectorSize {
		s.PeakVectorSize = b.PeakVectorSize
	}
	if b.PeakMatrixSize > s.PeakMatrixSize {
		s.PeakMatrixSize = b.PeakMatrixSize
	}
	return s
}
