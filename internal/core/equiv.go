package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// EquivalenceResult reports whether two circuits implement the same
// unitary.
type EquivalenceResult struct {
	Equivalent bool
	// Phase is the global phase e^{iφ} relating the two unitaries when
	// they are equivalent (U1 = Phase · U2).
	Phase complex128
	// HSOverlap is |tr(U2† U1)| / 2^n, the normalised Hilbert-Schmidt
	// overlap: 1 for equivalent circuits, < 1 otherwise.
	HSOverlap float64
}

// equivTol is the overlap slack tolerated for equivalence (floating-
// point drift across two full-circuit matrix builds).
const equivTol = 1e-7

// Equivalent decides whether two circuits on the same qubit count
// implement the same unitary up to global phase, by combining each
// circuit into a single operation DD (the paper's matrix-matrix
// machinery) and comparing tr(U2†·U1) against the dimension.
//
// This is a natural application of DD-based matrix-matrix
// multiplication beyond simulation: both full matrices and their
// product stay compact whenever the circuits are structured.
func Equivalent(eng *dd.Engine, c1, c2 *circuit.Circuit) (*EquivalenceResult, error) {
	if c1 == nil || c2 == nil {
		return nil, fmt.Errorf("core: Equivalent: nil circuit")
	}
	if c1.NQubits != c2.NQubits {
		return nil, fmt.Errorf("core: Equivalent: qubit counts differ (%d vs %d)", c1.NQubits, c2.NQubits)
	}
	if err := c1.Validate(); err != nil {
		return nil, err
	}
	if err := c2.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = dd.New()
	}
	m1, err := FullMatrix(eng, c1)
	if err != nil {
		return nil, err
	}
	m2, err := FullMatrix(eng, c2)
	if err != nil {
		return nil, err
	}
	// tr(U2†·U1) = 2^n · e^{iφ} iff U1 = e^{iφ} U2.
	t := eng.Trace(eng.MulMat(eng.ConjTranspose(m2), m1))
	dim := math.Pow(2, float64(c1.NQubits))
	overlap := cmplx.Abs(t) / dim
	res := &EquivalenceResult{HSOverlap: overlap}
	if overlap >= 1-equivTol {
		res.Equivalent = true
		res.Phase = t / complex(cmplx.Abs(t), 0)
	}
	return res, nil
}

// IsIdentityCircuit reports whether the circuit implements the identity
// up to global phase (e.g. an algorithm composed with its inverse).
func IsIdentityCircuit(eng *dd.Engine, c *circuit.Circuit) (bool, error) {
	res, err := Equivalent(eng, c, circuit.New(c.NQubits))
	if err != nil {
		return false, err
	}
	return res.Equivalent, nil
}
