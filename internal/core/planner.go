package core

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// Planner defaults and tuning constants. The defaults are the values
// the planner-vs-fixed sweep (internal/bench, -experiment planner) was
// tuned against; zero-valued knobs select them so &Planner{} is a
// working configuration.
const (
	// defaultPlannerWindow bounds the combination window: the planner
	// never folds more than this many gates into one operation matrix,
	// however cheap the accumulator stays. The bound is a safety cap,
	// not an operating point — the ratio/growth/cost trips are the real
	// brakes, and the cap must sit high enough that a circuit whose
	// accumulator stays tiny (the Adaptive sweet spot) is still
	// reachable by the window adaptation.
	defaultPlannerWindow = 1024
	// defaultPlannerRatio is the op-to-state flush bound (same quantity
	// Adaptive uses): the accumulator is applied once its DD exceeds
	// ratio x the state DD.
	defaultPlannerRatio = 1.0
	// defaultPlannerGrowth is the proactive-flush lookahead in gates:
	// flush when the current per-gate op-DD growth, extrapolated this
	// many gates ahead, would cross the ratio bound.
	defaultPlannerGrowth = 2.0
	// plannerInitWindow is the windowed mode's starting window for
	// moderate-locality circuits (Grover measures ~0.15 and settles at
	// 2-4); plannerNarrowInit is the start above plannerNarrowLocality,
	// where nearly every gate chains on the same registers (Shor's
	// modular arithmetic measures ~0.76), products entangle within a
	// composition or two, and — the part that matters for cost —
	// segmented simulations like Shor's semiclassical QFT re-pay the
	// descent from the initial window once per segment. Circuits whose
	// measured locality says "ride" use neither (see
	// plannerRideLocality).
	plannerInitWindow     = 4
	plannerNarrowInit     = 2
	plannerNarrowLocality = 0.5
	// plannerNoiseFloor is the op-DD node count below which the growth
	// trip never fires: tiny accumulators grow by whole multiples
	// gate-to-gate without being expensive.
	plannerNoiseFloor = 64
	// plannerCostFactor scales the in-window runaway guard: once the
	// window's absorption has burned more than plannerCostFactor x
	// combined x the learned per-gate baseline (+ the floor below) in
	// kernel recursions, the mat-mat bet has lost regardless of node
	// counts — flush now. The budget is anchored to the measured
	// baseline, not the state size: on wide states a node-count bound
	// would let a runaway absorb burn millions of recursions before
	// tripping.
	plannerCostFactor = 3
	// plannerCostFloor keeps the runaway guard quiet at scales where a
	// few hundred recursions are noise.
	plannerCostFloor = 1 << 10
	// plannerLocalitySample bounds how many gates the static model
	// inspects when choosing the initial window.
	plannerLocalitySample = 256
	// plannerBuckets is the size of the per-window-size cost table:
	// windows are powers of two, bucket b holding the measured cost of
	// window 1<<b. 32 buckets cover any int-sized MaxWindow.
	plannerBuckets = 32
	// plannerStaleWindows is the re-exploration cadence: a cost sample
	// older than this many flushes is treated as unknown again, so the
	// planner keeps probing neighbouring window sizes at a bounded
	// (~1/160) overhead as the circuit moves between phases.
	plannerStaleWindows = 160
	// plannerCeilingFlushes is how long a blow-up ceiling holds: after a
	// window ends in a ratio/growth/cost trip, the planner refuses to
	// widen back to that target size for this many flushes — one probe
	// ride per ceiling period bounds the cost of re-checking whether the
	// circuit has entered a combine-friendly phase.
	plannerCeilingFlushes = 160
	// plannerUpMargin is the hysteresis for widening on known costs: a
	// wider window must measure at least this much cheaper before the
	// planner moves up, while any measured gain moves it down. The
	// asymmetry leans sequential-ward, where the failure mode is mild
	// (Eq. 1 is the baseline), rather than combine-ward, where it is a
	// ratio blow-up. The margin is wide because the samples are wall
	// measurements with ~15% noise: on circuits whose neighbouring
	// window sizes genuinely tie (Shor's w1 vs w2), a thin margin lets
	// every lucky sample buy a probe excursion that the kernels then
	// pay for.
	plannerUpMargin = 0.75
	// plannerCreateWeight is the node-creation weight in the planner's
	// scalar work metric (see plannerEffort). Recursions alone
	// under-price matrix-matrix work: a mat-mat recursion interns fresh
	// matrix nodes (allocation, hashing, normalisation) where a cached
	// mat-vec recursion touches existing ones, and on workloads where
	// k=1 and k=2 differ by ~20% wall time the recursion counts differ
	// by only ~4% — creations carry the missing signal.
	plannerCreateWeight = 4
	// plannerLeanWindow is the narrow-window fast path bound: while the
	// target window is at or under this size, mid-window gates skip the
	// ratio/growth/cost evaluation entirely — no opSize/stateSize DD
	// traversals — and only the window-full gate measures. At these
	// sizes the exposure of deferring the ratio check is at most a
	// couple of absorbed gates, while the per-gate traversals are pure
	// overhead against the fixed strategies (KOperations never sizes
	// anything), which is exactly the regime — Grover, Shor — where the
	// planner must match them to within a few percent on
	// tens-of-milliseconds workloads.
	plannerLeanWindow = 4
	// plannerSettledStride is the settled-mode measurement cadence at
	// narrow windows: when the table keeps choosing a window at or
	// under plannerLeanWindow, only every Nth window is measured
	// (probe, clock, sizes, table update) and the rest flush on gate
	// count alone, exactly like the fixed strategy the planner has
	// converged to. At these window sizes the planner competes against
	// Sequential/KOperations whose per-gate decision is a single
	// integer compare — measuring every window would spend more than
	// the decisions are worth.
	plannerSettledStride = 16
	// plannerRideLocality is the static model's ride-mode cutoff: below
	// this fraction of qubit-sharing consecutive gate pairs the circuit
	// is layered from disjoint gates (random-circuit style), whose
	// products are structurally tensor products that the identity-skip
	// kernels keep compact — the planner then rides the ratio bound
	// directly (window = MaxWindow) instead of learning window sizes it
	// has too few flushes to learn.
	plannerRideLocality = 0.02
)

// Planner is the cost-model-driven adaptive strategy (ROADMAP item 4):
// it decides per circuit segment how far to follow the paper's Eq. 2
// (combine gates by matrix-matrix multiplication) before falling back
// to Eq. 1 (apply to the state), instead of leaving k / s_max to the
// user.
//
// The decision stack, cheapest first — ShouldApply returns true (flush)
// on the first trip:
//
//   - "window": the combination window is full. The window starts from
//     a static cost model (gate locality over the upcoming gates, see
//     initialWindow) and is then steered by a learned per-size cost
//     table: after each flush is applied, the planner records the
//     window's measured wall time per gate — absorption plus apply, so
//     per-flush overhead is priced in — into the power-of-two bucket of
//     its realized size (EWMA, see record). A window that completed cleanly with
//     the accumulator still within the state bound widens into
//     unexplored or known-cheaper sizes — that is how combine-friendly
//     circuits climb to Adaptive-like deep windows — while a window
//     that blew up (ratio/growth/cost trip) arms a ceiling that blocks
//     re-widening to that size for plannerCeilingFlushes. Among known
//     costs, any measured gain narrows the window but widening demands
//     a plannerUpMargin improvement: the failure mode of being too
//     narrow is the Eq. 1 baseline, the failure mode of being too wide
//     is a blow-up. A circuit where matrix-matrix work is a loss
//     settles at window 1-2 (sequential-like) and re-probes width only
//     at the stale/ceiling cadence. Measured engine cost, not a
//     node-count heuristic, decides (see nextBucket).
//   - "ratio": the accumulated operation DD exceeds FlushRatio x the
//     state DD — the Adaptive bound, kept as the planner's hard line.
//   - "growth": proactive flush. The op DD is still under the bound,
//     but its current per-gate growth, extrapolated Growth gates ahead,
//     crosses it — flush now rather than absorb another gate into an
//     accumulator that is about to be expensive.
//   - "cost": in-window runaway guard. The probe shows the window's
//     absorption alone already burned far more recursions than the
//     learned per-gate baseline says its gates should cost; the mat-mat
//     bet has lost regardless of node counts. This is the brake that
//     does not depend on DD sizes, so it still fires where the state DD
//     is huge and a node-ratio bound would react far too late.
//
// Expensive trips (ratio, growth, cost) flush early; their realized
// cost — absorption plus the apply — is charged to the bucket of the
// size they actually reached, so the table prices window sizes by what
// running at them really costs, ratio blow-ups included.
//
// Every flush decision is recorded as an obs.KindPlanner event plus
// dd_planner_* metrics. A Planner carries per-run adaptive state, so it
// has pointer methods; RunContext clones it per run (see runBound), so
// one Options value can be shared across concurrent runs and a resumed
// run restarts with the adaptive state reset.
type Planner struct {
	// MaxWindow bounds the combination window (0 selects 1024).
	MaxWindow int
	// FlushRatio is the op-to-state size bound (0 selects 1).
	FlushRatio float64
	// Growth is the proactive-flush lookahead in gates (0 selects 2).
	Growth float64

	// Per-run state, owned by the run's clone (see cloneForRun).
	eng      *dd.Engine
	window   int // current target combination window (1<<bucket, capped)
	bucket   int // log2 of the current target window
	prevOp   int // op-DD size at the previous decision in this window
	winStart dd.Probe
	winClock time.Time
	sampled  bool // winStart/winClock hold the window-start probe/time
	decision PlannerDecision
	pending  bool // decision awaits collection by the runner
	// lastCombined is the gate count of the flush whose cost noteApply
	// should measure (0 = none pending).
	lastCombined int
	// mem is the learned state, engine-resident (see plannerMemory):
	// it survives across the segments of one simulation.
	mem *plannerMemory
	// skipLeft counts remaining unmeasured settled-mode windows (see
	// plannerSettledStride).
	skipLeft int
	// ride marks ride mode (see plannerRideLocality): the window stays
	// at MaxWindow and only a cost-trip ceiling clamps it.
	ride bool
}

// plannerMemory is the planner's learned state. It lives in the
// engine's strategy-scratch slot rather than in the Planner clone: the
// engine's lifetime matches the logical simulation, so a multi-segment
// driver (Shor's semiclassical QFT calls the runner once per modular
// power against one engine) re-enters each segment with the table
// already settled instead of re-paying the probe descent ~10 times. A
// resumed or repaired run gets a fresh engine and therefore fresh
// memory, preserving the reset semantics the checkpoint layer tests.
type plannerMemory struct {
	// Learned cost table: cost[b] is the EWMA of measured wall
	// nanoseconds per gate at realized window size 1<<b — absorption
	// plus apply, so per-flush fixed overhead is priced in naturally —
	// seen[b] the flush index of its last sample (0 = never, the
	// staleness reference), flushes the running sample count.
	cost    [plannerBuckets]float64
	seen    [plannerBuckets]int
	flushes int
	// Blow-up ceiling: after an expensive trip, ceilWindow is the
	// target window that blew up and ceilSet the flush index, blocking
	// fast-widening back to that size for plannerCeilingFlushes.
	ceilWindow int
	ceilSet    int
	// baseRate is the EWMA of per-gate-per-state-node effort over
	// well-behaved flushes — what a gate costs here when combining is
	// behaving, normalized by the state DD size at the sample so the
	// estimate survives the state growing between samples. The
	// in-window runaway guard budgets against it (plannerCostFactor),
	// re-scaled by the state size at the moment of the check.
	baseRate float64
}

// PlannerDecision is one flush decision, as handed to the obs layer.
type PlannerDecision struct {
	// Reason names the trip: "window", "ratio", "growth" or "cost".
	Reason string
	// Combined is the number of gates in the flushed window.
	Combined int
	// OpNodes and StateNodes are the DD sizes the decision weighed.
	OpNodes, StateNodes int
	// Window is the planner's target combination window at the
	// decision (the cost-table adjustment lands after the apply is
	// measured, so it shows in the next decision).
	Window int
}

func (p *Planner) maxWindow() int {
	if p.MaxWindow == 0 {
		return defaultPlannerWindow
	}
	return p.MaxWindow
}

func (p *Planner) flushRatio() float64 {
	if p.FlushRatio == 0 {
		return defaultPlannerRatio
	}
	return p.FlushRatio
}

func (p *Planner) growth() float64 {
	if p.Growth == 0 {
		return defaultPlannerGrowth
	}
	return p.Growth
}

// Name implements Strategy. Resolved knob values are encoded so the
// name round-trips through checkpoints and the ddserve journal
// (StrategyFromName reconstructs an equivalent planner with fresh
// adaptive state).
func (p *Planner) Name() string {
	return fmt.Sprintf("planner(w=%d,r=%g,g=%g)", p.maxWindow(), p.flushRatio(), p.growth())
}

// ShouldApply implements Strategy. It is allocation-free after binding
// (guarded by BenchmarkPlannerDecision in CI). Decisions are driven by
// gate index, DD sizes, engine counters and measured wall time — the
// last makes the flush cuts themselves timing-dependent, which is
// harmless for correctness: any sequence of cuts yields the same state,
// and the differential test proves it by replaying the planner's
// recorded cuts as a fixed strategy and requiring an identical state.
func (p *Planner) ShouldApply(combined int, opSize, stateSize func() int) bool {
	if p.window <= 0 {
		// Unbound use (no RunContext): behave as a statically sized
		// window from the first call.
		if p.mem == nil {
			p.mem = &plannerMemory{}
		}
		p.setBucket(bucketFor(min(plannerInitWindow, p.maxWindow())))
	}
	if p.skipLeft > 0 && p.window <= plannerLeanWindow {
		// Settled mode: the table has repeatedly confirmed this narrow
		// window; flush on gate count alone, as the equivalent fixed
		// strategy would. The decision event reuses the last measured
		// DD sizes — at a 1-2 gate cadence they cannot have moved far.
		if combined < p.window {
			return false
		}
		p.skipLeft--
		p.lastCombined = 0
		p.decision = PlannerDecision{
			Reason:     "window",
			Combined:   combined,
			OpNodes:    p.decision.OpNodes,
			StateNodes: p.decision.StateNodes,
			Window:     p.window,
		}
		p.pending = true
		return true
	}

	if !p.sampled {
		if p.eng != nil {
			p.winStart = p.eng.Probe()
		}
		p.winClock = time.Now()
		p.sampled = true
	}

	if combined < p.window && p.window <= plannerLeanWindow {
		return false
	}

	op := opSize()
	dOp := op - p.prevOp
	p.prevOp = op
	st := stateSize()
	bound := p.flushRatio() * float64(st)

	reason := ""
	switch {
	case float64(op) > bound:
		reason = "ratio"
	case combined >= p.window:
		if p.widenInPlace(op, st) {
			// The window filled with the accumulator still far under
			// the state bound: keep absorbing instead of paying a
			// matrix-vector apply just to restart. This is the regime
			// where Eq. 2 wins outright (the Adaptive sweet spot), and
			// on a large state DD the flush itself is the dominant
			// cost.
			return false
		}
		reason = "window"
	case combined >= 2 && op > plannerNoiseFloor && dOp > 0 &&
		float64(op)+p.growth()*float64(dOp) > bound:
		reason = "growth"
	case combined >= 2 && p.eng != nil && p.mem.baseRate > 0 &&
		plannerEffort(p.eng.Probe().Sub(p.winStart)) >
			plannerCostFactor*float64(combined)*p.mem.baseRate*float64(max(st, 1))+
				plannerCostFloor:
		reason = "cost"
	default:
		return false
	}

	// Hand the flush to noteApply for cost measurement — the charge
	// must include the matrix-vector apply, which has not happened yet.
	// Expensive trips are measured too: their realized cost is charged
	// to the window size that was being targeted, which is exactly what
	// teaches the table that targeting a wide window here ends in a
	// ratio blow-up, not just that narrow windows exist.
	p.lastCombined = combined

	p.decision = PlannerDecision{
		Reason:     reason,
		Combined:   combined,
		OpNodes:    op,
		StateNodes: st,
		Window:     p.window,
	}
	p.pending = true
	return true
}

// cloneForRun implements runBound: RunContext runs against a copy so
// concurrent runs sharing one Options value cannot race on the adaptive
// state, and every run (including a checkpoint resume) starts with that
// state reset.
func (p *Planner) cloneForRun() runBound {
	c := *p
	c.eng = nil
	c.window = 0
	c.bucket = 0
	c.prevOp = 0
	c.winStart = dd.Probe{}
	c.winClock = time.Time{}
	c.sampled = false
	c.decision = PlannerDecision{}
	c.pending = false
	c.lastCombined = 0
	c.mem = nil // adopted from the engine at bindRun
	c.skipLeft = 0
	c.ride = false
	return &c
}

// bindRun implements runBound: called once per run — and again when a
// corruption repair swaps in a fresh engine — to give the planner its
// probe source and let the static cost model size the initial window
// from the gates about to run.
func (p *Planner) bindRun(eng *dd.Engine, c *circuit.Circuit, startGate int) {
	p.eng = eng
	p.prevOp = 0
	p.sampled = false
	p.lastCombined = 0
	p.skipLeft = 0
	if m, ok := eng.StrategyScratch().(*plannerMemory); ok && m != nil {
		p.mem = m
	} else {
		p.mem = &plannerMemory{}
		eng.SetStrategyScratch(p.mem)
	}
	loc := localityOf(c, startGate)
	p.ride = loc >= 0 && loc < plannerRideLocality
	switch {
	case p.ride:
		p.setBucket(p.maxBucket())
	case p.mem.flushes > 0:
		// Warm memory from an earlier segment against this engine:
		// start at the cheapest priced window instead of re-running
		// the probe descent.
		p.setBucket(p.warmBucket())
	default:
		p.setBucket(bucketFor(p.initialWindow(loc)))
	}
}

// warmBucket is the cheapest bucket the memory has priced, for warm
// starts (see bindRun).
func (p *Planner) warmBucket() int {
	best, found := 0, false
	for b := 0; b <= p.maxBucket(); b++ {
		if p.mem.seen[b] != 0 && (!found || p.mem.cost[b] < p.mem.cost[best]) {
			best, found = b, true
		}
	}
	if !found {
		return bucketFor(plannerInitWindow)
	}
	return best
}

// noteApply implements runBound: the runner reports every applied
// operation (flush, fallback replay, block apply). For a planner flush
// this is where the cost table learns what targeting the current
// window actually cost — the probe now spans the window's
// matrix-matrix absorption AND the matrix-vector apply — and the next
// window size is chosen. The cost rate is plain kernel recursions per
// gate; the staleness cadence (see unknown) keeps compared samples
// close enough in time that the state DD's slow drift does not skew
// the comparison.
func (p *Planner) noteApply(int) {
	if p.lastCombined > 0 && p.eng != nil && p.sampled {
		realized := bucketFor(p.lastCombined)
		// The bucket table is priced in the quantity being minimized:
		// wall time per gate for the whole window, absorption and apply
		// included. Engine counters cannot stand in for it — where the
		// DDs are tiny (Grover runs at 20-40 nodes) the per-flush fixed
		// overhead dominates and recursion counts rank narrow windows
		// exactly backwards.
		rate := float64(time.Since(p.winClock).Nanoseconds()) / float64(p.lastCombined)
		p.record(realized, rate)
		clean := p.decision.Reason == "window"
		if clean || (p.ride && p.decision.Reason != "cost") {
			// The runaway-guard baseline stays in engine-counter units
			// (plannerEffort): the guard compares a window in progress,
			// whose wall time a mid-window check cannot attribute, while
			// the probe delta is exact. Sampled on well-behaved flushes:
			// clean window flushes in windowed mode, any non-runaway
			// flush in ride mode (where windows never fill, ratio trips
			// ARE normal operation). Normalized by the state size at the
			// sample — later rides run against a larger state and get a
			// proportionally larger budget.
			effortRate := plannerEffort(p.eng.Probe().Sub(p.winStart)) / float64(p.lastCombined)
			norm := effortRate / float64(max(p.decision.StateNodes, 1))
			if p.mem.baseRate == 0 {
				p.mem.baseRate = norm
			} else {
				p.mem.baseRate = 0.75*p.mem.baseRate + 0.25*norm
			}
		}
		if p.decision.Reason == "cost" || (!clean && !p.ride) {
			// The window blew up mid-ride: arm the ceiling at the size
			// the ride actually reached, so the planner does not
			// immediately ride back out to the size that just proved
			// expensive (the target it was aiming for may be far wider
			// than it ever got). In ride mode only a true runaway (a
			// cost trip — the ride burned past its recursion budget)
			// arms it: ratio and growth trips are the operating mode
			// there, their cost bounded by construction.
			p.mem.ceilWindow = min(p.window, max(2, 1<<realized))
			p.mem.ceilSet = p.mem.flushes
		}
		if p.ride {
			// Ride mode: stay at the cap; a cost-trip ceiling clamps
			// the window below the runaway size until it expires.
			if maxB := p.maxBucket(); p.widenAllowed(maxB) {
				p.setBucket(maxB)
			} else {
				p.setBucket(max(bucketFor(p.mem.ceilWindow)-1, 0))
			}
		} else {
			nb := p.nextBucket(realized)
			if nb == p.bucket && clean && p.window <= plannerLeanWindow {
				// The table re-confirmed a narrow window: stop paying
				// for measurements it keeps agreeing with (see
				// plannerSettledStride).
				p.skipLeft = plannerSettledStride - 1
			}
			p.setBucket(nb)
		}
		p.lastCombined = 0
	}
	p.prevOp = 0
	p.sampled = false
}

// widenAllowed reports whether the planner may widen to bucket b, i.e.
// no recent blow-up ceiling covers that size.
func (p *Planner) widenAllowed(b int) bool {
	return p.mem.ceilWindow == 0 || 1<<b < p.mem.ceilWindow ||
		p.mem.flushes-p.mem.ceilSet > plannerCeilingFlushes
}

// plannerExtendFactor gates in-place widening: the window only extends
// without flushing while op x this factor still fits under the state
// DD — i.e. while absorption is operating far from the ratio bound.
const plannerExtendFactor = 4

// widenInPlace decides whether a full window should extend rather than
// flush, and performs the extension. Extending is free (no apply) but
// unmeasured — no cost sample is recorded for the size it skips — so it
// is only taken when the accumulator is deep inside the cheap regime
// (op*plannerExtendFactor <= st) and nothing known argues against the
// next size up.
func (p *Planner) widenInPlace(op, st int) bool {
	up := min(p.bucket+1, p.maxBucket())
	if up == p.bucket || op*plannerExtendFactor > st || !p.widenAllowed(up) {
		return false
	}
	if !p.unknown(up) && p.mem.cost[up] >= p.mem.cost[p.bucket] {
		return false
	}
	p.setBucket(up)
	return true
}

// record folds a measured cost rate into bucket b. A fresh or stale
// bucket takes the sample outright; a live one averages, so one noisy
// window cannot flip a settled decision.
func (p *Planner) record(b int, rate float64) {
	m := p.mem
	m.flushes++
	if m.seen[b] == 0 || m.flushes-m.seen[b] > plannerStaleWindows {
		m.cost[b] = rate
	} else {
		// Heavy memory: wall samples carry scheduler and cache noise,
		// and a settled decision should take several consistent
		// samples to overturn, not one lucky window.
		m.cost[b] = 0.75*m.cost[b] + 0.25*rate
	}
	m.seen[b] = m.flushes
}

// unknown reports whether bucket b has no usable cost sample: never
// measured, or not measured for plannerStaleWindows flushes. Staleness
// is purely age-based, and that matters in both directions. It must not
// be conditioned on regime markers like state-DD drift: Grover holds a
// constant ~36-node state for the whole run, so under a drift condition
// one unlucky sample (a GC pause landing in an early w=4 window) would
// block the up-path forever and trap the planner at the sequential end
// of a circuit whose true optimum is w=4. And it must not be *hastened*
// by such markers either: Shor's state DD oscillates ~3x within a
// segment without the cost ranking moving at all, and every false
// "unknown" buys a probe ride at a window the table already priced as
// a loss. Age alone re-prices every neighbouring size at a bounded
// ~1/plannerStaleWindows overhead.
func (p *Planner) unknown(b int) bool {
	return p.mem.seen[b] == 0 || p.mem.flushes-p.mem.seen[b] > plannerStaleWindows
}

// nextBucket picks the window size for the next segment, moving
// relative to bucket b (the realized size of the window just
// measured). Widening requires the window to have completed cleanly
// (reason "window"), the accumulator to have stayed within the state
// bound, and no recent blow-up ceiling — then it proceeds into unknown
// sizes outright (that is how combine-friendly circuits climb to deep
// windows) or onto known-cheaper ones. Otherwise unexplored narrower
// sizes are probed (narrowing is the safe direction — Eq. 1 is the
// baseline), and among known costs any gain moves the window down
// while moving up demands a plannerUpMargin improvement.
func (p *Planner) nextBucket(b int) int {
	maxB := p.maxBucket()
	up, down := min(b+1, maxB), max(b-1, 0)
	clean := p.decision.Reason == "window"
	withinBound := p.decision.OpNodes <= p.decision.StateNodes
	if clean && withinBound && up > b && p.widenAllowed(up) &&
		(p.unknown(up) || p.mem.cost[up] < plannerUpMargin*p.mem.cost[b]) {
		// Unexplored territory is climbed x4 per flush (two buckets), so
		// a combine-friendly circuit reaches deep windows in a handful
		// of flushes; known costs are walked one bucket at a time.
		if up2 := min(b+2, maxB); up2 > up && p.unknown(up) &&
			p.unknown(up2) && p.widenAllowed(up2) {
			return up2
		}
		return up
	}
	if down < b && p.unknown(down) {
		return down
	}
	best := b
	if down < b && p.mem.cost[down] < p.mem.cost[best] {
		best = down
	}
	if up > b && !p.unknown(up) && withinBound && p.widenAllowed(up) &&
		p.mem.cost[up] < plannerUpMargin*p.mem.cost[best] {
		best = up
	}
	return best
}

// setBucket sets the current bucket and its window size (1<<bucket,
// capped at MaxWindow, which need not be a power of two).
func (p *Planner) setBucket(b int) {
	p.bucket = b
	p.window = max(min(1<<b, p.maxWindow()), 1)
}

func (p *Planner) maxBucket() int {
	return min(bits.Len(uint(p.maxWindow()))-1, plannerBuckets-1)
}

// bucketFor maps a window size to its bucket: the largest power of two
// not exceeding it.
func bucketFor(w int) int {
	return bits.Len(uint(max(w, 1))) - 1
}

// plannerEffort is the planner's scalar work metric for a probe delta:
// kernel recursions plus plannerCreateWeight x fresh node internings
// (see plannerCreateWeight for why creations are weighted in).
func plannerEffort(d dd.Probe) float64 {
	return float64(d.Recursions() + plannerCreateWeight*d.NodesCreated)
}

// takeDecision hands the pending flush decision to the runner for
// event/metric emission, at most once per flush.
func (p *Planner) takeDecision() (PlannerDecision, bool) {
	if !p.pending {
		return PlannerDecision{}, false
	}
	p.pending = false
	return p.decision, true
}

// localityOf is the static cost model's input: the fraction of
// consecutive gate pairs sharing a qubit over the upcoming gates
// (capped at plannerLocalitySample), or -1 when there are not enough
// gates to measure. It splits the circuit families cleanly: supremacy
// random circuits measure 0.00 (layers of disjoint gates), Grover
// ~0.15 (disjoint H layers punctuated by all-qubit oracles), Shor's
// modular arithmetic ~0.76 (every gate touches the same work
// registers).
func localityOf(c *circuit.Circuit, startGate int) float64 {
	if c == nil || startGate < 0 || len(c.Gates)-startGate < 2 {
		return -1
	}
	n := min(plannerLocalitySample, len(c.Gates)-startGate)
	shared := 0
	for i := startGate + 1; i < startGate+n; i++ {
		if gatesOverlap(&c.Gates[i-1], &c.Gates[i]) {
			shared++
		}
	}
	return float64(shared) / float64(n-1)
}

// initialWindow is the windowed mode's starting window. Locality has
// already made the coarse call (ride vs windowed, see bindRun); within
// windowed mode it makes one more: high-locality circuits start a step
// narrower, because their gates chain on the same registers and the
// narrow end is where their cost table ends up anyway — starting there
// skips a descent that segmented simulations would otherwise repeat
// every segment. The cost table does the fine placement from there.
func (p *Planner) initialWindow(loc float64) int {
	w := plannerInitWindow
	if loc >= plannerNarrowLocality {
		w = plannerNarrowInit
	}
	return max(1, min(w, p.maxWindow()))
}

// gatesOverlap reports whether two gates act on a common qubit.
func gatesOverlap(a, b *circuit.Gate) bool {
	if a.Target == b.Target {
		return true
	}
	for _, ca := range a.Controls {
		if ca.Qubit == b.Target {
			return true
		}
		for _, cb := range b.Controls {
			if ca.Qubit == cb.Qubit {
				return true
			}
		}
	}
	for _, cb := range b.Controls {
		if cb.Qubit == a.Target {
			return true
		}
	}
	return false
}

// runBound is implemented by strategies that carry per-run adaptive
// state (the Planner). RunContext clones such a strategy for the run,
// binds the clone to the engine and circuit, and reports every applied
// operation; a corruption repair re-binds to the replacement engine.
type runBound interface {
	Strategy
	cloneForRun() runBound
	bindRun(eng *dd.Engine, c *circuit.Circuit, startGate int)
	noteApply(gate int)
}

// decisionTaker is implemented by strategies whose flush decisions are
// observable (the Planner): after ShouldApply returns true the runner
// collects the pending decision for event/metric emission.
type decisionTaker interface {
	takeDecision() (PlannerDecision, bool)
}
