package core

import (
	"errors"
	"time"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/obs"
)

// runObserver bridges one simulation run to the obs layer: it emits
// structured events into Options.EventSink, records telemetry into
// Options.Metrics, collects the Result.Trace points, and receives the
// engine's low-level callbacks (dd.EngineObserver) for GC and node
// telemetry. It is nil — and completely free — unless the run asked
// for any of the three.
type runObserver struct {
	sink   obs.Sink
	met    *runMetrics
	eng    *dd.Engine
	record bool
	trace  []TracePoint

	seq     uint64
	started time.Time
	circuit string
	total   int
	applied int // gate index of the last emitted step

	startStats dd.Stats // engine snapshot at run start (run totals)
	prev       dd.Stats // snapshot at the previous step boundary (deltas)
	// carried holds counter contributions of engines retired by
	// corruption repairs, so run_end totals span all engines the run
	// touched.
	carried dd.Stats
}

// runMetrics holds the instruments a run updates. Names are stable API
// (documented in DESIGN.md); re-registering on a shared registry
// returns the same instruments, so sweeps aggregate across runs.
type runMetrics struct {
	steps, matvec, matmat    *obs.Counter
	mulRecursions            *obs.Counter
	identitySkipsMV          *obs.Counter
	identitySkipsMM          *obs.Counter
	cacheLookups, cacheHits  *obs.Counter
	cacheInvalidations       *obs.Counter
	nodesCreated             *obs.Counter
	gcs, fallbacks, aborts   *obs.Counter
	checkpoints              *obs.Counter
	verifications            *obs.Counter
	verifyFailures           *obs.Counter
	repairs                  *obs.Counter
	plannerDecisions         *obs.Counter
	plannerFlushes           *obs.Counter
	reorders                 *obs.Counter
	reorderSwaps             *obs.Counter
	reorderSiftPasses        *obs.Counter
	pressureActions          *obs.Counter
	pressureParks            *obs.Counter
	pressureApprox           *obs.Counter
	pressureLevel            *obs.Gauge
	pressureFidelity         *obs.Gauge
	liveNodes                *obs.Gauge
	plannerWindow            *obs.Gauge
	reorderNodesBefore       *obs.Gauge
	reorderNodesAfter        *obs.Gauge
	stepSeconds, gcPauseSecs *obs.Histogram
	stateNodes, opNodes      *obs.Histogram
}

func newRunMetrics(r *obs.Registry) *runMetrics {
	nodeBuckets := obs.ExponentialBuckets(1, 4, 12)
	latBuckets := obs.ExponentialBuckets(1e-6, 4, 12)
	gcBuckets := obs.ExponentialBuckets(1e-6, 4, 10)
	return &runMetrics{
		steps:              r.Counter("dd_steps_total", "Applied operations (top-level matrix-vector steps)."),
		matvec:             r.Counter("dd_matvec_muls_total", "Top-level matrix-vector multiplications (Eq. 1 cost)."),
		matmat:             r.Counter("dd_matmat_muls_total", "Top-level matrix-matrix multiplications (Eq. 2 cost)."),
		mulRecursions:      r.Counter("dd_mul_recursions_total", "Multiplication-kernel recursion steps (mat-vec and mat-mat)."),
		identitySkipsMV:    r.Counter("dd_identity_skips_mv_total", "Identity short-circuits taken in matrix-vector multiplications."),
		identitySkipsMM:    r.Counter("dd_identity_skips_mm_total", "Identity short-circuits taken in matrix-matrix multiplications."),
		cacheLookups:       r.Counter("dd_cache_lookups_total", "Compute-cache lookups across all four caches."),
		cacheHits:          r.Counter("dd_cache_hits_total", "Compute-cache hits across all four caches."),
		cacheInvalidations: r.Counter("dd_cache_invalidations_total", "Compute-cache invalidations (GC, aborts, explicit clears)."),
		nodesCreated:       r.Counter("dd_nodes_created_total", "Fresh DD nodes interned into the unique tables."),
		gcs:                r.Counter("dd_gc_total", "Engine garbage collections."),
		fallbacks:          r.Counter("dd_fallbacks_total", "Budget aborts degraded to sequential replay."),
		aborts:             r.Counter("dd_aborts_total", "Runs aborted (deadline, budget, cancellation, injection, panic)."),
		checkpoints:        r.Counter("dd_checkpoints_total", "Checkpoints handed to the caller."),
		verifications:      r.Counter("dd_verifications_total", "Integrity verification passes."),
		verifyFailures:     r.Counter("dd_verify_failures_total", "Verification passes that detected corruption."),
		repairs:            r.Counter("dd_repairs_total", "Corruption recoveries (state rebuilt and replayed)."),
		plannerDecisions:   r.Counter("dd_planner_decisions_total", "Planner flush evaluations (one per gate absorbed under the planner)."),
		plannerFlushes:     r.Counter("dd_planner_flushes_total", "Planner flush decisions taken."),
		reorders:           r.Counter("dd_reorder_total", "Dynamic variable-reordering (sifting) passes."),
		reorderSwaps:       r.Counter("dd_reorder_swaps_total", "Adjacent level swaps performed by dynamic reordering."),
		reorderSiftPasses:  r.Counter("dd_reorder_sift_passes_total", "Variables sifted by dynamic reordering."),
		pressureActions:    r.Counter("dd_pressure_actions_total", "Degradation-ladder actions taken by the memory-pressure governor."),
		pressureParks:      r.Counter("dd_pressure_parks_total", "Runs parked behind a checkpoint by the pressure governor (rung 5)."),
		pressureApprox:     r.Counter("dd_pressure_approx_total", "Fidelity-bounded state approximations taken under pressure (rung 4)."),
		pressureLevel:      r.Gauge("dd_pressure_level", "Pressure band of the governor's last action (1 low, 2 high, 3 critical)."),
		pressureFidelity:   r.Gauge("dd_pressure_fidelity_bound_ppm", "Cumulative fidelity lower bound after approximations, in parts per million."),
		liveNodes:          r.Gauge("dd_live_nodes", "Live nodes in the unique tables (vector + matrix)."),
		plannerWindow:      r.Gauge("dd_planner_window", "Planner target combination window after the last decision."),
		reorderNodesBefore: r.Gauge("dd_reorder_nodes_before", "State DD size entering the last sifting pass."),
		reorderNodesAfter:  r.Gauge("dd_reorder_nodes_after", "State DD size leaving the last sifting pass."),
		stepSeconds:        r.Histogram("dd_step_seconds", "Wall time per applied operation.", latBuckets),
		gcPauseSecs:        r.Histogram("dd_gc_pause_seconds", "Engine GC pause durations.", gcBuckets),
		stateNodes:         r.Histogram("dd_state_nodes", "State DD size after each applied operation.", nodeBuckets),
		opNodes:            r.Histogram("dd_op_nodes", "Operation DD size of each applied matrix.", nodeBuckets),
	}
}

// newRunObserver returns nil when the run requests no observability at
// all — the runner then skips every per-step size traversal and clock
// read exactly as before.
func newRunObserver(opt Options, eng *dd.Engine) *runObserver {
	if opt.EventSink == nil && opt.Metrics == nil && !opt.RecordTrace {
		return nil
	}
	o := &runObserver{sink: opt.EventSink, eng: eng, record: opt.RecordTrace}
	if opt.Metrics != nil {
		o.met = newRunMetrics(opt.Metrics)
	}
	return o
}

// emit stamps and delivers one event; a nil sink drops it.
func (o *runObserver) emit(e obs.Event) {
	if o.sink == nil {
		return
	}
	o.seq++
	e.Seq = o.seq
	e.TimeUnixNano = time.Now().UnixNano()
	e.VLive = o.eng.VNodeCount()
	e.MLive = o.eng.MNodeCount()
	o.sink.Emit(e)
}

func (o *runObserver) runStart(c *circuit.Circuit, startGate int) {
	o.started = time.Now()
	o.circuit = c.Name
	o.total = len(c.Gates)
	o.applied = startGate
	o.startStats = o.eng.Stats()
	o.prev = o.startStats
	o.emit(obs.Event{Kind: obs.KindRunStart, Gate: startGate, Circuit: c.Name, TotalGates: o.total})
}

// stepInfo is what the runner knows about one applied operation.
type stepInfo struct {
	gate, combined      int
	opNodes, stateNodes int
	wall                time.Duration
	fromBlock           bool
	block               string
	reuse               bool
	fallback            bool
}

// step records one applied operation: trace point, metrics, and a
// KindStep event carrying the engine-counter deltas since the previous
// step (GC activity between steps is attributed to the following one).
func (o *runObserver) step(si stepInfo) {
	o.applied = si.gate
	if o.record {
		o.trace = append(o.trace, TracePoint{
			GateIndex:  si.gate,
			OpSize:     si.opNodes,
			StateSize:  si.stateNodes,
			Combined:   si.combined,
			FromBlock:  si.fromBlock,
			BlockName:  si.block,
			BlockReuse: si.reuse,
			Fallback:   si.fallback,
		})
	}
	cur := o.eng.Stats()
	d := obs.Event{
		Kind:            obs.KindStep,
		Gate:            si.gate,
		WallNS:          si.wall.Nanoseconds(),
		Combined:        si.combined,
		OpNodes:         si.opNodes,
		StateNodes:      si.stateNodes,
		MatVecMuls:      cur.MatVecMuls - o.prev.MatVecMuls,
		MatMatMuls:      cur.MatMatMuls - o.prev.MatMatMuls,
		MulRecursions:   cur.MulRecursions - o.prev.MulRecursions,
		IdentitySkipsMV: cur.IdentitySkipsMV - o.prev.IdentitySkipsMV,
		IdentitySkipsMM: cur.IdentitySkipsMM - o.prev.IdentitySkipsMM,
		CacheLookups:    cur.CacheLookups - o.prev.CacheLookups,
		CacheHits:       cur.CacheHits - o.prev.CacheHits,
		NodesCreated:    cur.NodesCreated - o.prev.NodesCreated,
		GCs:             cur.GCs - o.prev.GCs,
		GCPauseNS:       (cur.GCPause - o.prev.GCPause).Nanoseconds(),
		Fallback:        si.fallback,
		FromBlock:       si.fromBlock,
		Block:           si.block,
		BlockReuse:      si.reuse,
	}
	o.prev = cur
	if m := o.met; m != nil {
		m.steps.Inc()
		m.matvec.Add(d.MatVecMuls)
		m.matmat.Add(d.MatMatMuls)
		m.mulRecursions.Add(d.MulRecursions)
		m.identitySkipsMV.Add(d.IdentitySkipsMV)
		m.identitySkipsMM.Add(d.IdentitySkipsMM)
		m.cacheLookups.Add(d.CacheLookups)
		m.cacheHits.Add(d.CacheHits)
		m.nodesCreated.Add(d.NodesCreated)
		m.stepSeconds.Observe(si.wall.Seconds())
		m.stateNodes.Observe(float64(si.stateNodes))
		m.opNodes.Observe(float64(si.opNodes))
		m.liveNodes.Set(int64(o.eng.VNodeCount() + o.eng.MNodeCount()))
	}
	o.emit(d)
}

func (o *runObserver) fallback(gate, gates int) {
	if o.met != nil {
		o.met.fallbacks.Inc()
	}
	o.emit(obs.Event{Kind: obs.KindFallback, Gate: gate, Combined: gates})
}

func (o *runObserver) checkpointEv(gate int) {
	if o.met != nil {
		o.met.checkpoints.Inc()
	}
	o.emit(obs.Event{Kind: obs.KindCheckpoint, Gate: gate})
}

// verifyEv records one verification pass; check names the failing
// check, empty when the pass was clean.
func (o *runObserver) verifyEv(gate int, check string) {
	if o.met != nil {
		o.met.verifications.Inc()
		if check != "" {
			o.met.verifyFailures.Inc()
		}
	}
	o.emit(obs.Event{Kind: obs.KindVerify, Gate: gate, Check: check})
}

// plannerEv records one flush decision of the adaptive strategy
// planner: which trip fired, the sizes it weighed, and the target
// window after adaptation.
func (o *runObserver) plannerEv(gate int, d PlannerDecision) {
	if o.met != nil {
		o.met.plannerDecisions.Add(uint64(d.Combined))
		o.met.plannerFlushes.Inc()
		o.met.plannerWindow.Set(int64(d.Window))
	}
	o.emit(obs.Event{
		Kind:       obs.KindPlanner,
		Gate:       gate,
		Combined:   d.Combined,
		OpNodes:    d.OpNodes,
		StateNodes: d.StateNodes,
		Decision:   d.Reason,
		Window:     d.Window,
	})
}

// reorderEv records one dynamic reordering (sifting) pass.
func (o *runObserver) reorderEv(gate int, sr dd.SiftResult) {
	if o.met != nil {
		o.met.reorders.Inc()
		o.met.reorderSwaps.Add(uint64(sr.Swaps))
		o.met.reorderSiftPasses.Add(uint64(sr.Passes))
		o.met.reorderNodesBefore.Set(int64(sr.Before))
		o.met.reorderNodesAfter.Set(int64(sr.After))
	}
	o.emit(obs.Event{
		Kind:        obs.KindReorder,
		Gate:        gate,
		Swaps:       uint64(sr.Swaps),
		SiftPasses:  uint64(sr.Passes),
		NodesBefore: sr.Before,
		NodesAfter:  sr.After,
	})
}

// pressureEv records one action of the memory-pressure governor's
// degradation ladder.
func (o *runObserver) pressureEv(gate int, d Degradation) {
	if o.met != nil {
		o.met.pressureActions.Inc()
		o.met.pressureLevel.Set(int64(pressureLevelOrdinal(d.Level)))
		switch d.Action {
		case "park":
			o.met.pressureParks.Inc()
		case "approx":
			o.met.pressureApprox.Inc()
			o.met.pressureFidelity.Set(int64(d.Fidelity * 1e6))
		}
	}
	o.emit(obs.Event{
		Kind:        obs.KindPressure,
		Gate:        gate,
		Level:       d.Level,
		Rung:        d.Rung,
		Action:      d.Action,
		NodesBefore: d.LiveBefore,
		NodesAfter:  d.LiveAfter,
		Fidelity:    d.Fidelity,
	})
}

// pressureLevelOrdinal maps a level's wire name back to its ordinal
// for the gauge (0 for unknown names).
func pressureLevelOrdinal(level string) int {
	switch level {
	case "low":
		return 1
	case "high":
		return 2
	case "critical":
		return 3
	}
	return 0
}

// repairEv records a corruption recovery; replayed is the number of
// gates re-applied on the fresh engine.
func (o *runObserver) repairEv(gate, replayed int, check string) {
	if o.met != nil {
		o.met.repairs.Inc()
	}
	o.emit(obs.Event{Kind: obs.KindRepair, Gate: gate, Combined: replayed, Check: check})
}

// engineSwapped re-points the observer at the fresh engine after a
// corruption repair, folding the retired engine's counters into the
// carried totals so run_end still reports the whole run.
func (o *runObserver) engineSwapped(old dd.Stats, fresh *dd.Engine) {
	o.carried = statsSum(o.carried, statsDelta(old, o.startStats))
	o.eng = fresh
	o.startStats = dd.Stats{} // fresh engines count from zero
	o.prev = dd.Stats{}
}

// finish emits the abort event (for failed runs) and the closing
// run_end event carrying the run totals.
func (o *runObserver) finish(applied, stateNodes, fallbacks, degradations int, fidelityBound float64, err error) {
	abort := ""
	var re *RunError
	if errors.As(err, &re) {
		abort = re.Kind.String()
		if o.met != nil {
			o.met.aborts.Inc()
		}
		o.emit(obs.Event{Kind: obs.KindAbort, Gate: re.GateIndex, Abort: abort})
	}
	totals := statsSum(o.carried, statsDelta(o.eng.Stats(), o.startStats))
	o.emit(obs.Event{
		Kind:            obs.KindRunEnd,
		Gate:            applied,
		Circuit:         o.circuit,
		TotalGates:      o.total,
		WallNS:          time.Since(o.started).Nanoseconds(),
		StateNodes:      stateNodes,
		MatVecMuls:      totals.MatVecMuls,
		MatMatMuls:      totals.MatMatMuls,
		MulRecursions:   totals.MulRecursions,
		IdentitySkipsMV: totals.IdentitySkipsMV,
		IdentitySkipsMM: totals.IdentitySkipsMM,
		CacheLookups:    totals.CacheLookups,
		CacheHits:       totals.CacheHits,
		NodesCreated:    totals.NodesCreated,
		GCs:             totals.GCs,
		GCPauseNS:       totals.GCPause.Nanoseconds(),
		PeakNodes:       totals.PeakVNodes + totals.PeakMNodes,
		Fallbacks:       fallbacks,
		Abort:           abort,
		Swaps:           totals.ReorderSwaps,
		SiftPasses:      totals.SiftPasses,
		Degradations:    degradations,
		FidelityBound:   runEndFidelity(degradations, fidelityBound),
	})
}

// runEndFidelity keeps the run_end fidelity_bound field omitted (zero)
// for runs the governor never touched, and meaningful — even when
// still 1.0 — for degraded ones.
func runEndFidelity(degradations int, bound float64) float64 {
	if degradations == 0 && bound >= 1 {
		return 0
	}
	return bound
}

// --- dd.EngineObserver ---------------------------------------------------

// ObserveNode tracks the live-node gauge; it runs on the engine's node
// interning path, so it is a single atomic store and nothing else.
func (o *runObserver) ObserveNode(matrix bool, live int) {
	if o.met != nil {
		o.met.liveNodes.Set(int64(live))
	}
}

// ObserveGC emits a KindGC event anchored at the gate being processed.
func (o *runObserver) ObserveGC(gi dd.GCInfo) {
	if o.met != nil {
		o.met.gcs.Inc()
		o.met.gcPauseSecs.Observe(gi.Pause.Seconds())
		o.met.liveNodes.Set(int64(gi.VLive + gi.MLive))
	}
	o.emit(obs.Event{
		Kind:      obs.KindGC,
		Gate:      o.applied,
		GCPauseNS: gi.Pause.Nanoseconds(),
		GCFreed:   gi.Freed,
	})
}

// ObserveCacheClear counts compute-cache invalidations.
func (o *runObserver) ObserveCacheClear() {
	if o.met != nil {
		o.met.cacheInvalidations.Inc()
	}
}
