package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dd"
)

// ckptBytes serialises a representative checkpoint in the version-2
// format and returns both the checkpoint and its encoding.
func ckptBytes(t testing.TB) (*Checkpoint, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	e := dd.New()
	ck := &Checkpoint{
		CircuitName: "hardening",
		NQubits:     4,
		NextGate:    9,
		Seed:        -77,
		Fallbacks:   1,
		Strategy:    "k-operations(k=4)",
		Repairs:     2,
		Order:       []int{2, 0, 3, 1},
		State:       e.FromVector(randAmps(rng, 4)),
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return ck, buf.Bytes()
}

// TestCheckpointV2Roundtrip checks the version-2 fields survive a
// write/read cycle, including the verification-era additions.
func TestCheckpointV2Roundtrip(t *testing.T) {
	ck, data := ckptBytes(t)
	got, err := ReadCheckpoint(bytes.NewReader(data), dd.New())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 {
		t.Fatalf("version %d, want 2", got.Version)
	}
	if got.Strategy != ck.Strategy || got.Repairs != ck.Repairs {
		t.Fatalf("strategy/repairs mismatch: %+v", got)
	}
	if got.CircuitName != ck.CircuitName || got.NQubits != ck.NQubits ||
		got.NextGate != ck.NextGate || got.Seed != ck.Seed || got.Fallbacks != ck.Fallbacks {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !ordersEqual(got.Order, ck.Order) {
		t.Fatalf("order mismatch: %v, want %v", got.Order, ck.Order)
	}
	vectorsMatch(t, got.State.ToVector(), ck.State.ToVector())
}

func ordersEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCheckpointV1Compat proves legacy files remain readable: a file in
// the version-1 encoding loads with Version 1 and no strategy.
func TestCheckpointV1Compat(t *testing.T) {
	ck, _ := ckptBytes(t)
	var buf bytes.Buffer
	if err := writeCheckpointV1(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), dd.New())
	if err != nil {
		t.Fatalf("v1 checkpoint no longer readable: %v", err)
	}
	if got.Version != 1 || got.Strategy != "" || got.Repairs != 0 {
		t.Fatalf("v1 decode: version=%d strategy=%q repairs=%d", got.Version, got.Strategy, got.Repairs)
	}
	if got.CircuitName != ck.CircuitName || got.Seed != ck.Seed {
		t.Fatalf("v1 header mismatch: %+v", got)
	}
	vectorsMatch(t, got.State.ToVector(), ck.State.ToVector())
}

// TestCheckpointBitFlipDetected flips every single byte of a
// checkpoint in turn; every mutation must surface as an error wrapping
// ErrCheckpointCorrupt — never a silent wrong read, never a panic.
func TestCheckpointBitFlipDetected(t *testing.T) {
	ck, data := ckptBytes(t)
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x10
		got, err := ReadCheckpoint(bytes.NewReader(mut), dd.New())
		if err == nil {
			// The only acceptable silent outcome is the 'O' tag byte
			// flipping to an unknown tag: the optional order section is
			// then CRC-verified and skipped (the tagged-section format
			// cannot distinguish that from a genuine future section).
			// Everything else must fail, and even the tag-flip case must
			// decode every remaining field exactly.
			if got.CircuitName != ck.CircuitName || got.NextGate != ck.NextGate {
				t.Fatalf("byte %d: corrupt checkpoint decoded to %+v", i, got)
			}
			if mut[i] != byte(ckptSectionOrder)^0x10 || got.Order != nil {
				t.Fatalf("byte %d: flip not detected (order %v)", i, got.Order)
			}
			continue
		}
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("byte %d: error %v does not wrap ErrCheckpointCorrupt", i, err)
		}
	}
}

// TestCheckpointTruncationNoPanic feeds every strict prefix of a valid
// checkpoint to the reader; each must fail cleanly as corruption.
func TestCheckpointTruncationNoPanic(t *testing.T) {
	_, data := ckptBytes(t)
	for n := 0; n < len(data); n++ {
		_, err := ReadCheckpoint(bytes.NewReader(data[:n]), dd.New())
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(data))
		}
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("prefix %d: error %v does not wrap ErrCheckpointCorrupt", n, err)
		}
	}
}

// TestCheckpointErrorContext checks the typed error localises damage:
// section name and a plausible byte offset.
func TestCheckpointErrorContext(t *testing.T) {
	_, data := ckptBytes(t)
	// The state section is the last one; flipping the final byte damages
	// its payload without touching the header or order.
	mut := bytes.Clone(data)
	mut[len(mut)-1] ^= 0x01
	_, err := ReadCheckpoint(bytes.NewReader(mut), dd.New())
	var ce *CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CheckpointError, got %T: %v", err, err)
	}
	if ce.Section != "state" {
		t.Fatalf("section %q, want state", ce.Section)
	}
	if ce.Offset <= 8 || ce.Offset >= int64(len(data)) {
		t.Fatalf("offset %d not inside the file (len %d)", ce.Offset, len(data))
	}
}

// TestCheckpointUnknownSectionSkipped checks forward compatibility: a
// reader must CRC-verify and skip tags it does not know.
func TestCheckpointUnknownSectionSkipped(t *testing.T) {
	ck, data := ckptBytes(t)
	// Splice an unknown section directly after the magic.
	var buf bytes.Buffer
	buf.Write(data[:8])
	bw := bufio.NewWriter(&buf)
	if err := writeCkptSection(bw, 'Z', []byte("future payload")); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.Write(data[8:])
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), dd.New())
	if err != nil {
		t.Fatalf("unknown section broke the read: %v", err)
	}
	if got.CircuitName != ck.CircuitName || got.Repairs != ck.Repairs {
		t.Fatalf("decode through unknown section: %+v", got)
	}
	// A corrupted unknown section must still be caught by its CRC.
	raw := buf.Bytes()
	raw[8+1+1+4+2] ^= 0x40 // a byte inside the 'Z' payload
	if _, err := ReadCheckpoint(bytes.NewReader(raw), dd.New()); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("corrupt unknown section not detected: %v", err)
	}
}

// TestCheckpointOrderSectionCorruption hand-crafts malformed 'O'
// sections: every corruption must surface as a typed *CheckpointError
// naming the order section and wrapping ErrCheckpointCorrupt — a CRC
// can be forged (or borrowed from another file), so the decoded content
// itself is validated before it can scramble a resumed run.
func TestCheckpointOrderSectionCorruption(t *testing.T) {
	ck, _ := ckptBytes(t)
	ck.Order = nil
	var base bytes.Buffer
	if err := WriteCheckpoint(&base, ck); err != nil {
		t.Fatal(err)
	}
	withOrder := func(payload []byte) []byte {
		var buf bytes.Buffer
		buf.Write(base.Bytes())
		bw := bufio.NewWriter(&buf)
		if err := writeCkptSection(bw, ckptSectionOrder, payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	uvarints := func(vs ...uint64) []byte {
		var p []byte
		var tmp [10]byte
		for _, v := range vs {
			n := binary.PutUvarint(tmp[:], v)
			p = append(p, tmp[:n]...)
		}
		return p
	}

	// Sanity: a well-formed section decodes.
	got, err := ReadCheckpoint(bytes.NewReader(withOrder(uvarints(4, 3, 2, 1, 0))), dd.New())
	if err != nil {
		t.Fatal(err)
	}
	if !ordersEqual(got.Order, []int{3, 2, 1, 0}) {
		t.Fatalf("order decoded as %v", got.Order)
	}

	bad := map[string][]byte{
		"duplicate entry":      uvarints(4, 0, 0, 1, 2),
		"entry out of range":   uvarints(4, 0, 1, 2, 4),
		"length != qubits":     uvarints(3, 2, 1, 0),
		"truncated entries":    uvarints(4, 0, 1),
		"implausible count":    uvarints(1 << 40),
		"trailing bytes":       append(uvarints(4, 3, 2, 1, 0), 0x7f),
		"empty payload":        {},
		"truncated mid-varint": {4, 0x80},
	}
	for name, payload := range bad {
		_, err := ReadCheckpoint(bytes.NewReader(withOrder(payload)), dd.New())
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrCheckpointCorrupt", name, err)
		}
		var ce *CheckpointError
		if !errors.As(err, &ce) || ce.Section != "order" {
			t.Fatalf("%s: error %v does not name the order section", name, err)
		}
	}
}

// TestVerifyCheckpointFile exercises the fsck entry point on a good
// file, a corrupted file, and a legacy v1 file.
func TestVerifyCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	ck, data := ckptBytes(t)
	good := filepath.Join(dir, "good.ckpt")
	if err := SaveCheckpoint(good, ck); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyCheckpoint(good)
	if err != nil {
		t.Fatalf("good checkpoint failed fsck: %v", err)
	}
	if rep.Version != 2 || rep.Strategy != ck.Strategy || rep.StateNodes == 0 {
		t.Fatalf("fsck report: %+v", rep)
	}
	if rep.Norm < 0.999999 || rep.Norm > 1.000001 {
		t.Fatalf("fsck norm %v", rep.Norm)
	}

	bad := filepath.Join(dir, "bad.ckpt")
	mut := bytes.Clone(data)
	mut[len(mut)/2] ^= 0x08
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyCheckpoint(bad); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("fsck on corrupt file: %v", err)
	}

	v1 := filepath.Join(dir, "v1.ckpt")
	var v1buf bytes.Buffer
	if err := writeCheckpointV1(&v1buf, ck); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1, v1buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyCheckpoint(v1)
	if err != nil {
		t.Fatalf("v1 checkpoint failed fsck: %v", err)
	}
	if rep.Version != 1 {
		t.Fatalf("v1 fsck report: %+v", rep)
	}
}

// TestStrategyFromName round-trips every strategy through its Name()
// and rejects malformed strings.
func TestStrategyFromName(t *testing.T) {
	for _, st := range []Strategy{
		Sequential{}, KOperations{K: 4}, MaxSize{SMax: 4096},
		Adaptive{Ratio: 0.75}, CombineAll{},
	} {
		parsed, err := StrategyFromName(st.Name())
		if err != nil {
			t.Fatalf("%s: %v", st.Name(), err)
		}
		if parsed.Name() != st.Name() {
			t.Fatalf("round trip %q -> %q", st.Name(), parsed.Name())
		}
	}
	for _, bad := range []string{
		"", "bogus", "k-operations(k=0)", "k-operations(k=x)",
		"max-size(", "max-size(s=-3)", "adaptive(r=0)", "sequential ",
	} {
		if _, err := StrategyFromName(bad); err == nil {
			t.Fatalf("malformed name %q accepted", bad)
		}
	}
}

// TestResumeOptionsStrategy covers the strategy adoption/mismatch
// logic added with the version-2 checkpoint.
func TestResumeOptionsStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := randomCircuit(rng, 4, 10, false)
	e := dd.New()
	ck := &Checkpoint{NQubits: 4, NextGate: 3, Strategy: "adaptive(r=0.5)", State: e.ZeroState(4)}

	opt, err := ResumeOptions(Options{}, c, ck)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Strategy == nil || opt.Strategy.Name() != "adaptive(r=0.5)" {
		t.Fatalf("recorded strategy not adopted: %v", opt.Strategy)
	}

	if _, err := ResumeOptions(Options{Strategy: Sequential{}}, c, ck); err == nil {
		t.Fatal("strategy mismatch accepted")
	}
	if _, err := ResumeOptions(Options{Strategy: Adaptive{Ratio: 0.5}}, c, ck); err != nil {
		t.Fatalf("matching strategy rejected: %v", err)
	}

	ck.Strategy = "not-a-strategy"
	if _, err := ResumeOptions(Options{}, c, ck); err == nil {
		t.Fatal("unparseable recorded strategy accepted")
	}
	// Clearing the recorded strategy is the documented override path.
	ck.Strategy = ""
	if _, err := ResumeOptions(Options{Strategy: Sequential{}}, c, ck); err != nil {
		t.Fatalf("cleared strategy still validated: %v", err)
	}

	// The recorded order wins over any caller-set InitialOrder — the
	// state is only meaningful under the order it was taken with.
	ck.Order = []int{1, 0, 3, 2}
	opt, err = ResumeOptions(Options{Strategy: Sequential{}, InitialOrder: []int{3, 2, 1, 0}}, c, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !ordersEqual(opt.InitialOrder, ck.Order) {
		t.Fatalf("resume order %v, want %v", opt.InitialOrder, ck.Order)
	}
	ck.Order = nil
	opt, err = ResumeOptions(Options{Strategy: Sequential{}, InitialOrder: []int{3, 2, 1, 0}}, c, ck)
	if err != nil {
		t.Fatal(err)
	}
	if opt.InitialOrder != nil {
		t.Fatalf("identity-order checkpoint resumed with order %v", opt.InitialOrder)
	}
}

// FuzzReadCheckpoint throws arbitrary bytes at the reader: it must
// never panic, and anything it accepts must survive a write/read
// fixpoint with identical header fields.
func FuzzReadCheckpoint(f *testing.F) {
	ck, v2 := ckptBytes(f)
	f.Add(v2)
	var v1 bytes.Buffer
	if err := writeCheckpointV1(&v1, ck); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2[:len(v2)/2])
	f.Add([]byte("DDCKPT2\n"))
	f.Add([]byte("DDCKPT1\n"))
	f.Add([]byte{})
	mut := bytes.Clone(v2)
	mut[11] ^= 0xff
	f.Add(mut)
	// Order-section seeds: a corrupted byte inside the 'O' payload, and
	// the 'O' tag flipped to an unknown section. The section is located
	// by walking the tagged-section layout.
	forOrderTag := func(mutate func(data []byte, tagPos int)) []byte {
		data := bytes.Clone(v2)
		pos := 8
		for pos < len(data) {
			tag := data[pos]
			length, n := binary.Uvarint(data[pos+1:])
			if tag == byte(ckptSectionOrder) {
				mutate(data, pos)
				return data
			}
			pos += 1 + n + 4 + int(length)
		}
		f.Fatal("order section not found in seed checkpoint")
		return nil
	}
	f.Add(forOrderTag(func(data []byte, tagPos int) {
		_, n := binary.Uvarint(data[tagPos+1:])
		data[tagPos+1+n+4] ^= 0x01 // first byte of the 'O' payload
	}))
	f.Add(forOrderTag(func(data []byte, tagPos int) { data[tagPos] = 'Q' }))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCheckpoint(bytes.NewReader(data), dd.New())
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("reader error %v does not wrap ErrCheckpointCorrupt", err)
			}
			return
		}
		var buf bytes.Buffer
		if got.Version == 1 {
			err = writeCheckpointV1(&buf, got)
		} else {
			err = WriteCheckpoint(&buf, got)
		}
		if err != nil {
			t.Fatalf("re-encoding accepted checkpoint: %v", err)
		}
		again, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), dd.New())
		if err != nil {
			t.Fatalf("re-read of re-encoded checkpoint: %v", err)
		}
		if again.CircuitName != got.CircuitName || again.NQubits != got.NQubits ||
			again.NextGate != got.NextGate || again.Seed != got.Seed ||
			again.Fallbacks != got.Fallbacks || again.Strategy != got.Strategy ||
			again.Repairs != got.Repairs {
			t.Fatalf("fixpoint mismatch: %+v vs %+v", got, again)
		}
		// The v1 encoding has no order section, so only the v2 round
		// trip preserves Order.
		if got.Version == 2 && !ordersEqual(again.Order, got.Order) {
			t.Fatalf("order fixpoint mismatch: %v vs %v", got.Order, again.Order)
		}
	})
}
