package core

import (
	"fmt"
	"strings"
)

// StrategyNames is the canonical list of strategy selectors, in the
// order CLI help renders them. Every surface that accepts a strategy by
// name — the ddsim/ddbench flags, the ddserve job decoder, checkpoint
// resume — derives its accepted set from this table (via NewStrategy),
// so the surfaces cannot drift apart.
var strategyNames = []string{
	"sequential",
	"k-operations",
	"max-size",
	"adaptive",
	"planner",
	"combine-all",
}

// StrategyNames returns the canonical strategy selectors (a copy).
func StrategyNames() []string {
	return append([]string(nil), strategyNames...)
}

// StrategyUsage renders the selector list for flag help:
// "sequential | k-operations | max-size | adaptive | planner | combine-all".
func StrategyUsage() string { return strings.Join(strategyNames, " | ") }

// StrategyKnobs carries the per-family parameters a named strategy
// takes. Zero values select each family's documented default; negative
// or otherwise nonsensical values are rejected with a *ConfigError.
type StrategyKnobs struct {
	// K parameterises k-operations (default 4).
	K int
	// SMax parameterises max-size (default 128).
	SMax int
	// Ratio parameterises adaptive and the planner's flush bound
	// (default 1).
	Ratio float64
	// Window parameterises the planner's maximum combination window
	// (default 64).
	Window int
	// Growth parameterises the planner's proactive-flush lookahead in
	// gates (default 2).
	Growth float64
}

// NewStrategy constructs the named strategy with the given knobs — the
// single constructor behind ddsim's -strategy flag and the ddserve job
// decoder. Unknown names and invalid knobs return a *ConfigError.
func NewStrategy(name string, kn StrategyKnobs) (Strategy, error) {
	var st Strategy
	switch name {
	case "sequential":
		st = Sequential{}
	case "k-operations":
		k := kn.K
		if k == 0 {
			k = 4
		}
		st = KOperations{K: k}
	case "max-size":
		s := kn.SMax
		if s == 0 {
			s = 128
		}
		st = MaxSize{SMax: s}
	case "adaptive":
		st = Adaptive{Ratio: kn.Ratio}
	case "planner":
		st = &Planner{MaxWindow: kn.Window, FlushRatio: kn.Ratio, Growth: kn.Growth}
	case "combine-all":
		st = CombineAll{}
	default:
		return nil, &ConfigError{
			Option: "Strategy",
			Msg:    fmt.Sprintf("unknown strategy %q (want %s)", name, StrategyUsage()),
		}
	}
	if err := validateStrategy(st); err != nil {
		return nil, err
	}
	return st, nil
}

// ConfigError is the typed error RunContext (and NewStrategy) returns
// for a nonsensical configuration: a strategy parameter outside its
// domain, or an unknown strategy name. It is a configuration error, not
// a run failure — no *RunError, no partial result.
type ConfigError struct {
	// Option names the offending knob, e.g. "KOperations.K".
	Option string
	Msg    string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid configuration: %s: %s", e.Option, e.Msg)
}

// validateStrategy rejects nonsensical strategy parameters with a
// typed *ConfigError. Without this check, KOperations{K: 0} and
// MaxSize{SMax: 0} would run but degenerate to sequential behaviour
// under a misleading Name() — silent acceptance the caller cannot
// distinguish from a working configuration.
func validateStrategy(st Strategy) error {
	bad := func(option, format string, args ...any) error {
		return &ConfigError{Option: option, Msg: fmt.Sprintf(format, args...)}
	}
	switch s := st.(type) {
	case KOperations:
		if s.K < 1 {
			return bad("KOperations.K", "must be >= 1, got %d", s.K)
		}
	case MaxSize:
		if s.SMax < 1 {
			return bad("MaxSize.SMax", "must be >= 1, got %d", s.SMax)
		}
	case Adaptive:
		if s.Ratio < 0 {
			return bad("Adaptive.Ratio", "must be >= 0 (0 selects the default 1), got %g", s.Ratio)
		}
	case *Planner:
		if s == nil {
			return bad("Planner", "nil *Planner")
		}
		if s.MaxWindow < 0 {
			return bad("Planner.MaxWindow", "must be >= 0 (0 selects the default %d), got %d", defaultPlannerWindow, s.MaxWindow)
		}
		if s.FlushRatio < 0 {
			return bad("Planner.FlushRatio", "must be >= 0 (0 selects the default %g), got %g", defaultPlannerRatio, s.FlushRatio)
		}
		if s.Growth < 0 {
			return bad("Planner.Growth", "must be >= 0 (0 selects the default %g), got %g", defaultPlannerGrowth, s.Growth)
		}
	}
	return nil
}
