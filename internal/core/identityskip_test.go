package core

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/dd"
)

// TestIdentitySkipMatchesDense runs random circuits through every
// strategy family with the identity short-circuits on and off and
// checks both runs against the dense oracle and against each other.
// The kernels' skip paths return the exact canonical edges the full
// recursion builds, so the two runs must agree to within the oracle
// tolerance on every amplitude — across sequential application, the
// combination strategies (whose accumulated matrices are mostly
// identity structure), and repeated blocks.
func TestIdentitySkipMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	strategies := []Strategy{
		Sequential{},
		KOperations{K: 4},
		MaxSize{SMax: 64},
	}
	for trial := 0; trial < 4; trial++ {
		n := 2 + rng.Intn(4)
		c := randomCircuit(rng, n, 30, trial%2 == 1)
		for _, st := range strategies {
			var vecs [2][]complex128
			for i, disable := range []bool{false, true} {
				res, err := Run(c, Options{Strategy: st, DisableIdentitySkip: disable})
				if err != nil {
					t.Fatalf("trial %d %s skip-disabled=%v: %v", trial, st.Name(), disable, err)
				}
				if f := fidelityWithDense(t, res, c); f < 1-1e-9 {
					t.Fatalf("trial %d %s skip-disabled=%v: fidelity %v against dense oracle",
						trial, st.Name(), disable, f)
				}
				vecs[i] = res.State.ToVector()
			}
			for i := range vecs[0] {
				if cmplx.Abs(vecs[0][i]-vecs[1][i]) > 1e-9 {
					t.Fatalf("trial %d %s: amplitude %d differs with skipping on/off: %v vs %v",
						trial, st.Name(), i, vecs[0][i], vecs[1][i])
				}
			}
		}
	}
}

// TestIdentitySkipOptionPlumbing checks the option actually reaches the
// engine: a run with DisableIdentitySkip must record zero skips, the
// default run must record some, and a caller-supplied engine must come
// back configured the way the last run left it (documented behaviour:
// RunContext sets the engine mode and does not reset it).
func TestIdentitySkipOptionPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	c := randomCircuit(rng, 4, 24, false)

	e := dd.New()
	if _, err := Run(c, Options{Strategy: KOperations{K: 4}, Engine: e}); err != nil {
		t.Fatal(err)
	}
	if !e.IdentitySkipEnabled() {
		t.Fatal("default run left identity skipping disabled")
	}
	if s := e.Stats(); s.IdentitySkipsMV+s.IdentitySkipsMM == 0 {
		t.Fatal("default run recorded no identity skips on a combination strategy")
	}

	e = dd.New()
	if _, err := Run(c, Options{Strategy: KOperations{K: 4}, Engine: e, DisableIdentitySkip: true}); err != nil {
		t.Fatal(err)
	}
	if e.IdentitySkipEnabled() {
		t.Fatal("DisableIdentitySkip did not reach the engine")
	}
	if s := e.Stats(); s.IdentitySkipsMV+s.IdentitySkipsMM != 0 {
		t.Fatalf("disabled run still recorded %d skips", s.IdentitySkipsMV+s.IdentitySkipsMM)
	}
	// The disabled run must still do strictly more kernel work.
	off := e.Stats().MulRecursions
	e2 := dd.New()
	if _, err := Run(c, Options{Strategy: KOperations{K: 4}, Engine: e2}); err != nil {
		t.Fatal(err)
	}
	if on := e2.Stats().MulRecursions; on >= off {
		t.Fatalf("MulRecursions with skipping (%d) not below without (%d)", on, off)
	}
}
