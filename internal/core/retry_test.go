package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/circuit"
)

func TestRetryableClassification(t *testing.T) {
	mk := func(k FailureKind, sentinel error) error {
		return &RunError{Kind: k, Err: sentinel}
	}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"injected", mk(FailureInjected, ErrInjectedAbort), true},
		{"budget", mk(FailureBudget, ErrBudgetExceeded), true},
		{"panic", mk(FailurePanic, errors.New("recovered panic")), true},
		{"deadline", mk(FailureDeadline, ErrDeadlineExceeded), false},
		{"canceled", mk(FailureCanceled, ErrCanceled), false},
		{"corruption", mk(FailureCorruption, ErrCorruption), false},
		{"plain error", errors.New("bad config"), false},
		{"wrapped run error", fmt.Errorf("outer: %w", mk(FailureInjected, ErrInjectedAbort)), true},
		// A checkpoint-write failure joined onto an otherwise retryable
		// abort must poison the retry: the journal medium is broken.
		{"injected + checkpoint write", errors.Join(
			mk(FailureInjected, ErrInjectedAbort),
			fmt.Errorf("%w: disk full", ErrCheckpointWrite)), false},
		{"checkpoint write alone", fmt.Errorf("%w: disk full", ErrCheckpointWrite), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestCheckpointWriteFailureWrapsSentinel: both checkpoint-persistence
// failure paths (periodic and on-abort) must surface
// ErrCheckpointWrite so the serving layer can refuse to retry them.
func TestCheckpointWriteFailureWrapsSentinel(t *testing.T) {
	c := circuit.New(3)
	for i := 0; i < 30; i++ {
		c.H(i%3).CX(0, (i%2)+1)
	}
	boom := errors.New("disk full")

	// Periodic path: the callback fails mid-run.
	_, err := Run(c, Options{
		CheckpointEvery: 1,
		OnCheckpoint:    func(*Checkpoint) error { return boom },
	})
	if !errors.Is(err, ErrCheckpointWrite) || !errors.Is(err, boom) {
		t.Fatalf("periodic checkpoint failure = %v, want ErrCheckpointWrite wrapping cause", err)
	}
	if Retryable(err) {
		t.Fatal("periodic checkpoint-write failure classified retryable")
	}

	// Abort path: the run aborts (deadline in the past) and the abort
	// checkpoint cannot be written.
	_, err = Run(c, Options{
		Deadline:     time.Now().Add(-time.Second),
		OnCheckpoint: func(*Checkpoint) error { return boom },
	})
	if !errors.Is(err, ErrCheckpointWrite) || !errors.Is(err, boom) {
		t.Fatalf("abort checkpoint failure = %v, want ErrCheckpointWrite wrapping cause", err)
	}
	if Retryable(err) {
		t.Fatal("abort checkpoint-write failure classified retryable")
	}
}
