// Tests for the memory-pressure governor: knob validation, the staged
// degradation ladder with every rung forced deterministically via
// chaos pressure injection, the exactness guarantees of the exact
// rungs, the fidelity bound of the approximation rung against a dense
// oracle, and the soft-budget rescue of a run that hard-aborts on the
// budget cliff. Lives in the external test package so it can drive the
// real workload generators.
package core_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/grover"
	"repro/internal/qft"
)

// TestGovernorConfigErrors pins the typed validation of the governor
// knobs: every violation is a *core.ConfigError naming the offending
// option, returned before the simulation starts.
func TestGovernorConfigErrors(t *testing.T) {
	c := qft.Circuit(6, true)
	cases := []struct {
		name   string
		opt    core.Options
		option string
	}{
		{"unknown mode", core.Options{Degrade: "gently"}, "Degrade"},
		{"negative soft budget", core.Options{SoftBudget: -1}, "SoftBudget"},
		{"soft above hard", core.Options{SoftBudget: 100, MaxNodes: 50}, "SoftBudget"},
		{"unordered watermarks", core.Options{
			SoftBudget:         1000,
			PressureWatermarks: dd.Watermarks{Low: 0.9, High: 0.8, Critical: 0.95},
		}, "PressureWatermarks"},
		{"mode without budget", core.Options{Degrade: "ladder"}, "Degrade"},
		{"approx nodes in ladder mode", core.Options{
			SoftBudget: 1000, Degrade: "ladder", ApproxNodes: 64,
		}, "ApproxNodes"},
		{"approx nodes without governor", core.Options{ApproxNodes: 64}, "ApproxNodes"},
		{"approx floor below qubit count", core.Options{
			SoftBudget: 1000, Degrade: "approx", ApproxNodes: 3,
		}, "ApproxNodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := core.Run(c, tc.opt)
			var ce *core.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *core.ConfigError", err)
			}
			if ce.Option != tc.option {
				t.Fatalf("ConfigError.Option = %q, want %q (%v)", ce.Option, tc.option, err)
			}
		})
	}
}

// TestGovernorValidConfigs: configurations that must be accepted, with
// the documented defaulting (SoftBudget implies ladder; Degrade
// without SoftBudget governs against MaxNodes), all completing exactly
// when the budget is never under pressure.
func TestGovernorValidConfigs(t *testing.T) {
	c := qft.Circuit(6, true)
	for _, opt := range []core.Options{
		{SoftBudget: 1 << 20},                    // implies ladder
		{Degrade: "ladder", MaxNodes: 1 << 20},   // governs against MaxNodes
		{Degrade: "approx", SoftBudget: 1 << 20}, // ApproxNodes defaulted
		{Degrade: "off", MaxNodes: 1 << 20},      // explicit off
		{SoftBudget: 1 << 20, Degrade: "approx", ApproxNodes: 64},
	} {
		res, err := core.Run(c, opt)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		if len(res.Degradations) != 0 {
			t.Fatalf("untroubled run journaled %d degradations", len(res.Degradations))
		}
		if res.FidelityBound != 1 {
			t.Fatalf("untroubled run reports fidelity bound %v", res.FidelityBound)
		}
	}
}

// maxRung returns the highest ladder rung in a degradation journal and
// the set of rungs touched.
func maxRung(ds []core.Degradation) (int, map[int]bool) {
	rungs := make(map[int]bool)
	top := 0
	for _, d := range ds {
		rungs[d.Rung] = true
		if d.Rung > top {
			top = d.Rung
		}
	}
	return top, rungs
}

// randAmps returns a normalised random amplitude vector on n qubits —
// a state whose DD is maximally large, so the approximation rung has
// something to cut at the very first governor look.
func randAmps(rng *rand.Rand, n int) []complex128 {
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	s := complex(1/math.Sqrt(norm), 0)
	for i := range amps {
		amps[i] *= s
	}
	return amps
}

// prefix returns the first n gates of c as a standalone circuit (for
// dense references of parked partial states).
func prefix(c *circuit.Circuit, n int) *circuit.Circuit {
	return &circuit.Circuit{Name: c.Name, NQubits: c.NQubits, Gates: c.Gates[:n]}
}

// TestGovernorRungForcing walks the ladder deterministically: chaos
// pressure injection floors the reported level at a fixed band, so a
// single governor look reaches exactly the rungs that band unlocks.
func TestGovernorRungForcing(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	c := grover.Circuit(8, 0x2d, 0)
	ref, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refAmps := ref.State.ToVector()

	t.Run("low reaches rung 1 only and stays pointer-exact", func(t *testing.T) {
		eng := dd.New()
		if !eng.InjectPressure(dd.PressureLow) {
			t.Fatal("chaos injection refused under DD_CHAOS=1")
		}
		res, err := core.Run(c, core.Options{Engine: eng, SoftBudget: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		top, _ := maxRung(res.Degradations)
		if len(res.Degradations) == 0 || top != 1 {
			t.Fatalf("injected low: %d degradations, top rung %d (want >0 entries, top 1)",
				len(res.Degradations), top)
		}
		amps := res.State.ToVector()
		for i := range amps {
			if amps[i] != refAmps[i] {
				t.Fatalf("rung 1 changed amplitude %d: %v != %v", i, amps[i], refAmps[i])
			}
		}
		if res.FidelityBound != 1 {
			t.Fatalf("exact rungs report fidelity bound %v", res.FidelityBound)
		}
	})

	t.Run("high walks through the exact rungs and completes", func(t *testing.T) {
		eng := dd.New()
		eng.InjectPressure(dd.PressureHigh)
		res, err := core.Run(c, core.Options{Engine: eng, SoftBudget: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		top, rungs := maxRung(res.Degradations)
		if !rungs[2] || top > 3 {
			t.Fatalf("injected high: rungs %v (want rung 2 present, nothing above 3)", rungs)
		}
		if res.FidelityBound != 1 {
			t.Fatalf("exact rungs report fidelity bound %v", res.FidelityBound)
		}
		// Rung 3 sifts, so exactness is up to weight canonicalisation —
		// the same contract as Options.Reorder "sifting".
		amps := dd.VectorInOrder(res.State, res.Order)
		if f := fidelity(amps, refAmps); f < 1-siftFidelityTol {
			t.Fatalf("fidelity %.12f after exact-only ladder", f)
		}
		if err := res.Engine.AuditV(res.State); err != nil {
			t.Fatalf("canonicity audit after governor sift: %v", err)
		}
	})

	t.Run("critical under ladder parks with rung 5", func(t *testing.T) {
		eng := dd.New()
		eng.InjectPressure(dd.PressureCritical)
		var ck *core.Checkpoint
		res, err := core.Run(c, core.Options{
			Engine:       eng,
			SoftBudget:   1 << 20,
			OnCheckpoint: func(c *core.Checkpoint) error { ck = c; return nil },
		})
		var re *core.RunError
		if !errors.As(err, &re) || re.Kind != core.FailurePressure {
			t.Fatalf("err = %v, want FailurePressure", err)
		}
		if !errors.Is(err, core.ErrPressure) {
			t.Fatalf("err %v does not wrap ErrPressure", err)
		}
		if !core.Retryable(err) {
			t.Fatal("a pressure park must be retryable")
		}
		if ck == nil {
			t.Fatal("no park checkpoint written")
		}
		top, rungs := maxRung(res.Degradations)
		if top != 5 || !rungs[2] {
			t.Fatalf("rungs %v (want the ladder walked through rung 5)", rungs)
		}
	})

	t.Run("critical under approx reaches rung 4", func(t *testing.T) {
		eng := dd.New()
		eng.InjectPressure(dd.PressureCritical)
		// A random dense state keeps the state DD large, so rung 4 has
		// something to cut at the very first boundary.
		rng := rand.New(rand.NewSource(11))
		init := eng.FromVector(randAmps(rng, 8))
		qc := qft.Circuit(8, false)
		res, err := core.Run(qc, core.Options{
			Engine:       eng,
			InitialState: &init,
			SoftBudget:   1 << 20,
			Degrade:      "approx",
			ApproxNodes:  32,
		})
		// The injected level never subsides, so after the cut the run
		// still parks — but the journal must show rung 4 fired and the
		// fidelity bound must have been recorded.
		var re *core.RunError
		if !errors.As(err, &re) || re.Kind != core.FailurePressure {
			t.Fatalf("err = %v, want FailurePressure", err)
		}
		_, rungs := maxRung(res.Degradations)
		if !rungs[4] {
			t.Fatalf("rungs %v (want the approximation rung)", rungs)
		}
		if res.FidelityBound <= 0 || res.FidelityBound >= 1 {
			t.Fatalf("fidelity bound %v after a cut, want within (0,1)", res.FidelityBound)
		}
		for _, d := range res.Degradations {
			if d.Rung == 4 && (d.Fidelity <= 0 || d.Fidelity > 1) {
				t.Fatalf("rung 4 entry carries fidelity %v", d.Fidelity)
			}
		}
	})
}

// TestGovernorApproxFidelityOracle confirms the contract of the
// reported bound: the actual fidelity of the governed (approximated)
// state against a dense reference of the same applied prefix is at
// least Result.FidelityBound.
func TestGovernorApproxFidelityOracle(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	rng := rand.New(rand.NewSource(7))
	amps := randAmps(rng, 8)

	eng := dd.New()
	eng.InjectPressure(dd.PressureCritical)
	init := eng.FromVector(amps)
	c := qft.Circuit(8, false)
	res, err := core.Run(c, core.Options{
		Engine:       eng,
		InitialState: &init,
		SoftBudget:   1 << 20,
		Degrade:      "approx",
		ApproxNodes:  32,
	})
	// Under permanent injected pressure the run parks right after the
	// cut; the partial state and its bound are the contract under test.
	var re *core.RunError
	if !errors.As(err, &re) || re.Kind != core.FailurePressure {
		t.Fatalf("err = %v, want FailurePressure", err)
	}
	if res.FidelityBound <= 0 || res.FidelityBound >= 1 {
		t.Fatalf("fidelity bound %v, want a genuine cut within (0,1)", res.FidelityBound)
	}

	exact := dense.FromVector(append([]complex128(nil), amps...))
	exact.Run(prefix(c, res.GatesApplied))
	got := dd.VectorInOrder(res.State, res.Order)
	if f := fidelity(got, exact.Amps); f < res.FidelityBound-1e-9 {
		t.Fatalf("actual fidelity %.12f below the reported bound %.12f", f, res.FidelityBound)
	}
}

// TestGovernorSoftBudgetRescue is the acceptance scenario: a strategy
// that blows a node budget which hard-aborts on the budget cliff
// completes under the same budget once the governor is armed, because
// rung 2 flushes the accumulated matrix early and pins the strategy to
// sequential. The rescue uses only the pointer-exact rungs (1-2), so
// the amplitudes are byte-identical to the unconstrained run's (if the
// sift rung ever joined in, agreement would be up to weight
// canonicalisation instead).
func TestGovernorSoftBudgetRescue(t *testing.T) {
	c := grover.Circuit(10, 0x2d5, 0)
	// The budget and watermarks are pinned empirically: 150 live nodes
	// hard-abort combine-all on this circuit but comfortably fit the
	// sequential replay, and the early watermarks make the governor pin
	// sequential before the accumulated matrix can blow the budget
	// between two boundary looks.
	const budget = 150
	marks := dd.Watermarks{Low: 0.2, High: 0.35, Critical: 0.9}

	// Unconstrained reference.
	ref, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refAmps := ref.State.ToVector()

	// Baseline: the budget with fallback disabled is a cliff.
	st, err := core.NewStrategy("combine-all", core.StrategyKnobs{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(c, core.Options{Strategy: st, MaxNodes: budget, DisableFallback: true})
	var re *core.RunError
	if !errors.As(err, &re) || re.Kind != core.FailureBudget {
		t.Fatalf("baseline should hard-abort on the budget cliff %d, got %v", budget, err)
	}

	// Same budget, governor armed: the run must complete.
	st2, _ := core.NewStrategy("combine-all", core.StrategyKnobs{})
	res, err := core.Run(c, core.Options{
		Strategy:           st2,
		MaxNodes:           budget,
		DisableFallback:    true,
		SoftBudget:         budget,
		PressureWatermarks: marks,
	})
	if err != nil {
		t.Fatalf("governed run under the cliff budget %d: %v", budget, err)
	}
	top, rungs := maxRung(res.Degradations)
	if !rungs[2] {
		t.Fatalf("rungs %v (want the flush-and-pin rung)", rungs)
	}
	if res.FidelityBound != 1 {
		t.Fatalf("exact ladder reports fidelity bound %v", res.FidelityBound)
	}
	amps := dd.VectorInOrder(res.State, res.Order)
	if top <= 2 {
		for i := range amps {
			if amps[i] != refAmps[i] {
				t.Fatalf("exact rescue changed amplitude %d: %v != %v", i, amps[i], refAmps[i])
			}
		}
	} else if f := fidelity(amps, refAmps); f < 1-siftFidelityTol {
		t.Fatalf("fidelity %.12f after exact ladder (rungs %v)", f, rungs)
	}
	if err := res.Engine.AuditV(res.State); err != nil {
		t.Fatalf("canonicity audit: %v", err)
	}
}

// TestGovernorParkCheckpointFailure: when the park checkpoint cannot be
// written, the returned error reports both the pressure park and the
// checkpoint failure, and stops being retryable — a scheduler must not
// re-admit a job whose resume point was lost.
func TestGovernorParkCheckpointFailure(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	eng := dd.New()
	eng.InjectPressure(dd.PressureCritical)
	werr := errors.New("disk full")
	_, err := core.Run(grover.Circuit(8, 0x2d, 0), core.Options{
		Engine:       eng,
		SoftBudget:   1 << 20,
		OnCheckpoint: func(*core.Checkpoint) error { return werr },
	})
	if !errors.Is(err, core.ErrPressure) {
		t.Fatalf("err %v does not wrap ErrPressure", err)
	}
	if !errors.Is(err, core.ErrCheckpointWrite) {
		t.Fatalf("err %v does not wrap ErrCheckpointWrite", err)
	}
	if !errors.Is(err, werr) {
		t.Fatalf("err %v lost the underlying write error", err)
	}
	if core.Retryable(err) {
		t.Fatal("a park without a checkpoint must not be retryable")
	}
}
