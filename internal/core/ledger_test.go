package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// TestBudgetLedger exercises the batch-wide budget ledger directly:
// leases draw their share from the pool, a grow grant is capped by both
// the freed pool and the caller's current budget (at most doubling),
// and every release rebalances the pool exactly — the ledger ends where
// it started once all leases are returned.
func TestBudgetLedger(t *testing.T) {
	l := &budgetLedger{free: 1000}
	a := l.take(400)
	b := l.take(400)
	if l.free != 200 {
		t.Fatalf("free = %d after two 400 leases, want 200", l.free)
	}

	// a grows: the pool has 200 left, below a's current budget of 400.
	if nb := a.grow(400); nb != 600 {
		t.Fatalf("grow(400) with 200 free = %d, want 600", nb)
	}
	if a.held() != 600 || l.free != 0 {
		t.Fatalf("after grow: held %d free %d, want 600/0", a.held(), l.free)
	}

	// b grows against an empty pool: no grant, budget unchanged.
	if nb := b.grow(400); nb != 400 {
		t.Fatalf("grow against empty pool = %d, want 400", nb)
	}

	// a finishes; its whole lease (share + grant) returns to the pool.
	l.release(a.held())
	if l.free != 600 {
		t.Fatalf("free = %d after releasing a, want 600", l.free)
	}

	// b grows again: the grant is capped at b's current budget (the
	// at-most-doubling rule), not the whole freed pool.
	if nb := b.grow(400); nb != 800 {
		t.Fatalf("grow(400) with 600 free = %d, want 800", nb)
	}
	if b.held() != 800 || l.free != 200 {
		t.Fatalf("after second grow: held %d free %d, want 800/200", b.held(), l.free)
	}

	l.release(b.held())
	if l.free != 1000 {
		t.Fatalf("ledger unbalanced: free = %d after all releases, want 1000", l.free)
	}
}

// TestRunBatchPressurePark: a batch surfaces a sibling's pressure park
// as a retryable FailurePressure with the partial result's degradation
// journal attached, without disturbing the healthy job. The pressured
// engine is forced via chaos injection, so the outcome is deterministic
// (the injected level never subsides — the governor always parks).
func TestRunBatchPressurePark(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	eng := dd.New()
	if !eng.InjectPressure(dd.PressureCritical) {
		t.Fatal("chaos injection refused under DD_CHAOS=1")
	}

	small := circuit.New(2)
	small.H(0)
	big := circuit.New(4)
	for q := 0; q < 4; q++ {
		big.H(q)
	}

	res, err := RunBatch(context.Background(), []BatchJob{
		{Circuit: small},
		{Circuit: big, Options: Options{Engine: eng, Degrade: "ladder"}},
	}, BatchOptions{Workers: 2, MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatalf("healthy sibling failed: %v", res[0].Err)
	}
	var re *RunError
	if !errors.As(res[1].Err, &re) || re.Kind != FailurePressure {
		t.Fatalf("pressured job: err = %v, want FailurePressure", res[1].Err)
	}
	if !Retryable(res[1].Err) {
		t.Fatal("a batch pressure park must be retryable")
	}
	if res[1].Result == nil || len(res[1].Result.Degradations) == 0 {
		t.Fatal("pressured job lost its degradation journal")
	}
	last := res[1].Result.Degradations[len(res[1].Result.Degradations)-1]
	if last.Rung != 5 || last.Action != "park" {
		t.Fatalf("journal ends with %+v, want the rung-5 park", last)
	}
}
