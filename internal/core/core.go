// Package core implements the paper's contribution: DD-based
// Schrödinger simulation with pluggable strategies that trade
// matrix-matrix against matrix-vector multiplications.
//
// The baseline ("sequential", the state of the art the paper improves
// on) applies one gate matrix to the state per step — Eq. 1. The
// combination strategies of Section IV-A absorb runs of gates into an
// accumulated operation matrix first (matrix-matrix multiplications on
// small DDs) and touch the — typically much larger — state DD only when
// the strategy decides to flush:
//
//   - KOperations flushes after every k absorbed gates.
//   - MaxSize flushes once the accumulated matrix DD exceeds s_max nodes.
//
// Section IV-B's knowledge-exploiting strategies are also here:
//
//   - Repeated blocks (DD-repeating): a circuit Block's body is combined
//     into a single matrix once and re-used for every further iteration
//     without any additional matrix-matrix multiplication.
//   - Direct construction (DD-construct) is provided by the shor package
//     on top of dd.FromPermutation; see internal/shor.
//
// Runs are resilient (see DESIGN.md "Resilience"): RunContext supports
// cooperative cancellation, wall-clock deadlines and live-node budgets,
// every engine panic is recovered into a typed *RunError, strategies
// degrade to sequential replay when a combination trips the budget, and
// checkpoints allow aborted runs to be resumed.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Strategy decides when the accumulated operation matrix is applied to
// the state vector. After each gate is absorbed, ShouldApply is called
// with the number of gates combined so far and lazily evaluated node
// counts of the accumulated operation DD and the current state DD.
type Strategy interface {
	Name() string
	ShouldApply(combined int, opSize, stateSize func() int) bool
}

// Sequential is the state-of-the-art baseline: every gate is applied to
// the state immediately (pure matrix-vector simulation, Eq. 1).
type Sequential struct{}

// Name implements Strategy.
func (Sequential) Name() string { return "sequential" }

// ShouldApply implements Strategy: always flush.
func (Sequential) ShouldApply(int, func() int, func() int) bool { return true }

// KOperations combines runs of K gates via matrix-matrix multiplication
// before each matrix-vector step (strategy "k-operations", Sec. IV-A).
type KOperations struct {
	K int
}

// Name implements Strategy.
func (s KOperations) Name() string { return fmt.Sprintf("k-operations(k=%d)", s.K) }

// ShouldApply implements Strategy.
func (s KOperations) ShouldApply(combined int, _, _ func() int) bool {
	return combined >= s.K
}

// MaxSize combines gates until the accumulated matrix DD exceeds SMax
// nodes (strategy "max-size", Sec. IV-A). Parameterisation is by DD
// size, not gate count, so cheap runs are combined further and expensive
// ones flushed early.
type MaxSize struct {
	SMax int
}

// Name implements Strategy.
func (s MaxSize) Name() string { return fmt.Sprintf("max-size(s=%d)", s.SMax) }

// ShouldApply implements Strategy.
func (s MaxSize) ShouldApply(_ int, opSize, _ func() int) bool {
	return opSize() > s.SMax
}

// Adaptive flushes once the accumulated operation DD grows beyond
// Ratio times the current state DD — an extension of the paper's
// max-size idea that normalises the threshold by the quantity actually
// driving the matrix-vector cost. With large state DDs it keeps
// combining aggressively; with small ones it behaves almost
// sequentially. Included as an ablation of the fixed-threshold design
// choice.
type Adaptive struct {
	// Ratio is the op-to-state size ratio above which the accumulated
	// matrix is applied. Values around 0.5–2 work well; zero selects 1.
	Ratio float64
}

// Name implements Strategy.
func (s Adaptive) Name() string { return fmt.Sprintf("adaptive(r=%g)", s.ratio()) }

func (s Adaptive) ratio() float64 {
	if s.Ratio <= 0 {
		return 1
	}
	return s.Ratio
}

// ShouldApply implements Strategy.
func (s Adaptive) ShouldApply(_ int, opSize, stateSize func() int) bool {
	return float64(opSize()) > s.ratio()*float64(stateSize())
}

// CombineAll never flushes until the end of the circuit — the extreme
// case of completely following Eq. 2, which the paper shows is *not* a
// good idea. Included for the ablation benchmarks.
type CombineAll struct{}

// Name implements Strategy.
func (CombineAll) Name() string { return "combine-all" }

// ShouldApply implements Strategy.
func (CombineAll) ShouldApply(int, func() int, func() int) bool { return false }

// Options configures a simulation run.
type Options struct {
	// Strategy defaults to Sequential{}.
	Strategy Strategy
	// UseBlocks enables the DD-repeating treatment of circuit Blocks:
	// each block body is combined into one matrix and re-used across all
	// repetitions.
	UseBlocks bool
	// GCThreshold is the live-node count above which the engine is
	// garbage collected between steps. Zero selects the default (200k);
	// negative disables collection. When MaxNodes is set, the effective
	// threshold is clamped to 3/4 of the budget so collection keeps the
	// live set under the cap whenever the workload allows.
	GCThreshold int
	// RecordTrace records the DD sizes of the state after every
	// matrix-vector step and of every applied operation matrix (used for
	// the Fig. 5 style size traces). Costs O(size) per step.
	RecordTrace bool
	// Deadline aborts the run once the wall clock passes it (probed both
	// between multiplications and inside them). The zero value means no
	// deadline. This mirrors the paper's 2-CPU-hour timeout for the
	// t_sota columns. The run then returns a *RunError wrapping
	// ErrDeadlineExceeded.
	Deadline time.Time
	// MaxNodes arms the engine's live-node budget: when unique-table
	// occupancy exceeds it mid-operation, the operation aborts. Unless
	// DisableFallback is set, a combination strategy then degrades to
	// sequential replay of the affected gate run (recorded in
	// Result.Fallbacks and the trace); if the budget cannot be met even
	// sequentially, the run returns a *RunError wrapping
	// ErrBudgetExceeded. Zero means unlimited.
	MaxNodes int
	// DisableFallback turns off graceful strategy degradation: a budget
	// abort fails the run immediately instead of replaying the gate run
	// sequentially.
	DisableFallback bool
	// StartGate resumes a run at this gate index: gates before it are
	// assumed to be reflected in InitialState (see Checkpoint). Zero
	// starts from the beginning.
	StartGate int
	// InitialState overrides the |0…0> start state.
	InitialState *dd.VEdge
	// Engine re-uses an existing engine (otherwise a fresh one is
	// created per run).
	Engine *dd.Engine
	// OnCheckpoint, when set, receives resume checkpoints: periodically
	// every CheckpointEvery applied gates, and always before Run returns
	// an abort error. The callback must serialise the checkpoint before
	// returning (its State belongs to the running engine); an error from
	// the callback fails the run.
	OnCheckpoint func(*Checkpoint) error
	// CheckpointEvery is the minimum number of applied gates between
	// periodic checkpoints (0 = checkpoint only on abort).
	CheckpointEvery int
	// Seed is recorded in checkpoints so resumed runs can reproduce
	// downstream sampling. It does not influence the simulation itself.
	Seed int64
	// EventSink, when set, receives the run's structured event stream
	// (run_start, one step per applied operation, fallback / gc /
	// checkpoint / abort, run_end); see internal/obs. Like RecordTrace
	// it costs O(state size) per applied step for the size traversals.
	// The engine's observer slot is claimed for the duration of the run.
	EventSink obs.Sink
	// Metrics, when set, records run telemetry (step latencies,
	// node-size distributions, multiplication / cache / GC counters)
	// into the registry. Sharing one registry across runs aggregates.
	Metrics *obs.Registry
	// VerifyEvery enables integrity verification every N absorbed gates
	// (plus a final pass): engine audit, state audit with node paths,
	// norm-drift tracking, and a unitarity spot-check of the accumulated
	// operation matrix. On a failed check the runner rebuilds the state
	// into a fresh engine from the last verified snapshot and replays
	// the in-flight gates (bounded; see Result.Repairs); corruption that
	// survives repair fails the run with a *RunError wrapping
	// ErrCorruption. Zero disables verification; the hot path then
	// carries no verification cost at all.
	VerifyEvery int
	// Paranoid additionally runs a dense lockstep oracle and compares
	// amplitudes at every verification pass. Limited to small circuits
	// (dense simulation is exactly what does not scale); implies
	// VerifyEvery=1 unless set explicitly.
	Paranoid bool
	// DisableIdentitySkip turns off the engine's identity short-circuits
	// in the multiplication kernels (dd.Engine.SetIdentitySkip). Results
	// are identical either way; the switch exists for differential
	// testing and for measuring the optimisation (Stats.IdentitySkips*).
	DisableIdentitySkip bool
	// Reorder selects dynamic variable reordering: "" or "off" for the
	// fixed identity order, "static" to derive a circuit-preprocessing
	// order from the qubit-interaction graph (sched.StaticOrder; only
	// for fresh runs — when InitialOrder, InitialState or StartGate
	// already pin the order, the derivation is skipped), or "sifting"
	// for in-run sifting at flush boundaries, triggered by the growth
	// heuristic below. Gates are mapped through the live permutation
	// before GateDD, so the circuit itself is never rewritten.
	Reorder string
	// InitialOrder sets the starting DD variable order: order[level] =
	// circuit qubit, a permutation of [0, NQubits). Nil means identity.
	// When InitialState is set it must already be encoded in this order
	// (checkpoints record the order for exactly this reason). The slice
	// is copied.
	InitialOrder []int
	// SiftGrowth is the growth factor over the post-sift baseline size
	// that triggers the next sifting pass (default 2). SiftMinNodes is
	// the state size below which sifting is never attempted (default
	// 256). SiftMaxSwaps bounds the swaps of one pass (default 8·n²,
	// enough for a few full rounds; sifting additionally aborts with
	// the run's deadline/budget/cancellation machinery, probed at every
	// swap).
	SiftGrowth   float64
	SiftMinNodes int
	SiftMaxSwaps int
	// SoftBudget arms the memory-pressure governor (see governor.go and
	// DESIGN.md §15): live-node occupancy is banded against
	// PressureWatermarks fractions of this target, and at flush
	// boundaries the run walks a staged degradation ladder — emergency
	// GC, flush-and-pin-sequential, sifting, optional approximation,
	// checkpoint-then-park — instead of running into the MaxNodes
	// cliff. Zero disables the governor unless Degrade selects a mode
	// (SoftBudget then defaults to MaxNodes). Must not exceed MaxNodes
	// when both are set.
	SoftBudget int
	// Degrade selects the governor's ladder mode: "" (off, unless
	// SoftBudget is set — that implies "ladder"), "off", "ladder"
	// (exact rungs only: GC, flush+pin, sift, park), or "approx"
	// (additionally rung 4: fidelity-bounded state approximation via
	// dd.Engine.Approximate, with the cumulative bound recorded in
	// Result.FidelityBound).
	Degrade string
	// ApproxNodes is rung 4's state-DD node target (only meaningful
	// with Degrade "approx"). Zero selects SoftBudget/4, floored at the
	// qubit count; explicit values below the qubit count are a
	// ConfigError, mirroring the dd.Engine.Approximate precondition.
	ApproxNodes int
	// PressureWatermarks overrides the occupancy fractions at which the
	// pressure level steps up (zero value: 70/85/95%). Must be strictly
	// increasing within (0, 1].
	PressureWatermarks dd.Watermarks
	// GrowBudget, when set, is consulted at critical pressure before
	// the governor degrades past its exact rungs: it receives the
	// current soft budget and returns a new one (<= current means no
	// headroom available). RunBatch wires this to a batch-wide ledger
	// that returns finished jobs' unused budget shares to stragglers.
	// Called on the run's goroutine.
	GrowBudget func(current int) int
	// OnPressure, when set, receives every Degradation the governor
	// journals, as it happens — a lightweight pressure feed for serving
	// layers that do not want a full event stream. Called on the run's
	// goroutine.
	OnPressure func(Degradation)
}

const defaultGCThreshold = 200_000

// Sentinel errors wrapped by *RunError; match with errors.Is.
var (
	// ErrDeadlineExceeded reports that a simulation hit Options.Deadline.
	ErrDeadlineExceeded = errors.New("core: simulation deadline exceeded")
	// ErrBudgetExceeded reports that a simulation could not stay under
	// Options.MaxNodes (even after fallback, unless fallback was
	// disabled).
	ErrBudgetExceeded = errors.New("core: simulation node budget exceeded")
	// ErrCanceled reports that the RunContext context was canceled.
	ErrCanceled = errors.New("core: simulation canceled")
	// ErrInjectedAbort reports a synthetic fault-injection abort.
	ErrInjectedAbort = errors.New("core: injected abort")
	// ErrCorruption reports that integrity verification detected state
	// or engine corruption that could not be repaired.
	ErrCorruption = errors.New("core: state corruption detected")
	// ErrPressure reports that the memory-pressure governor exhausted
	// its degradation ladder and parked the run (checkpoint written
	// when Options.OnCheckpoint is set; see Options.SoftBudget).
	ErrPressure = errors.New("core: simulation parked under memory pressure")
)

// FailureKind classifies a *RunError.
type FailureKind uint8

const (
	// FailureDeadline: Options.Deadline expired.
	FailureDeadline FailureKind = iota + 1
	// FailureCanceled: the context passed to RunContext was canceled.
	FailureCanceled
	// FailureBudget: Options.MaxNodes was exceeded without recourse.
	FailureBudget
	// FailureInjected: a fault-injection abort (chaos testing).
	FailureInjected
	// FailurePanic: a panic escaped the engine (or a strategy callback)
	// and was recovered into a typed error.
	FailurePanic
	// FailureCorruption: integrity verification (Options.VerifyEvery /
	// Paranoid) detected corruption that repair could not clear.
	FailureCorruption
	// FailurePressure: the memory-pressure governor exhausted its
	// degradation ladder and parked the run behind a checkpoint instead
	// of letting it trip the hard budget. Unlike FailureBudget the
	// state was checkpointed at a consistent boundary; retrying under a
	// quieter budget resumes it (see Retryable).
	FailurePressure
)

// String returns the kind's short name (also used for CLI exit-status
// mapping and bench CSV marks).
func (k FailureKind) String() string {
	switch k {
	case FailureDeadline:
		return "deadline"
	case FailureCanceled:
		return "canceled"
	case FailureBudget:
		return "budget"
	case FailureInjected:
		return "injected"
	case FailurePanic:
		return "panic"
	case FailureCorruption:
		return "corruption"
	case FailurePressure:
		return "pressure"
	}
	return fmt.Sprintf("FailureKind(%d)", uint8(k))
}

// RunError is the typed error a simulation returns when it aborts (by
// deadline, cancellation, node budget or fault injection) or when a
// panic is recovered from the engine. Runs that return a *RunError also
// return a partial *Result carrying the last consistent state and the
// progress counters for reporting.
type RunError struct {
	Kind FailureKind
	// GateIndex is the gate being processed when the run stopped.
	GateIndex int
	// Err is the matching sentinel (ErrDeadlineExceeded, ErrCanceled,
	// ErrBudgetExceeded, ErrInjectedAbort) or, for FailurePanic, an
	// error describing the recovered panic.
	Err error
	// Cause carries underlying detail where available (e.g. the
	// context's error for FailureCanceled, or the engine's abort error).
	Cause error
}

// Error implements error.
func (e *RunError) Error() string {
	return fmt.Sprintf("core: run aborted (%s) at gate %d: %v", e.Kind, e.GateIndex, e.Err)
}

// Unwrap exposes the sentinel and the cause for errors.Is / errors.As.
func (e *RunError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Err, e.Cause}
	}
	return []error{e.Err}
}

// TracePoint is one recorded simulation step.
type TracePoint struct {
	GateIndex  int // index one past the last gate included in this step
	OpSize     int // nodes of the applied operation matrix DD
	StateSize  int // nodes of the state DD after the step
	Combined   int // gates combined into the applied matrix
	FromBlock  bool
	BlockName  string
	BlockReuse bool // true when the matrix was re-used, not re-built
	Fallback   bool // step replayed sequentially after a budget abort
}

// Result is the outcome of a simulation run.
type Result struct {
	State    dd.VEdge
	Engine   *dd.Engine
	Stats    dd.Stats
	Duration time.Duration
	// MatVecSteps and MatMatSteps are the top-level multiplication
	// counts of this run (not cumulated across engine re-use).
	MatVecSteps int
	MatMatSteps int
	// GatesApplied is the gate index through which State reflects the
	// circuit (equals len(c.Gates) on success; less after an abort).
	GatesApplied int
	// Fallbacks counts budget aborts that degraded to sequential replay.
	Fallbacks int
	// Repairs counts corruption recoveries: verification failures that
	// were cleared by rebuilding the state into a fresh engine and
	// replaying the in-flight gates (see Options.VerifyEvery).
	Repairs int
	// NormDrift is the largest |norm − 1| the verification passes
	// observed (zero when verification was disabled).
	NormDrift float64
	// Order is the final DD variable order (order[level] = circuit
	// qubit; nil means identity). State is encoded in this order —
	// amplitude extraction and sampling must map indices through it
	// (dd.VectorInOrder / dd.IndexFromDD).
	Order []int
	Trace []TracePoint
	// Degradations journals every action the memory-pressure governor
	// took, in order (empty when the governor never engaged; see
	// Options.SoftBudget).
	Degradations []Degradation
	// FidelityBound is the guaranteed lower bound on the fidelity
	// |⟨state|exact⟩|² after governor approximations: the product of
	// the per-cut fidelities (exact for a single cut; the standard
	// composition estimate for several). 1 for exact runs.
	FidelityBound float64
}

// Run simulates circuit c from |0…0> (or Options.InitialState) and
// returns the final state vector as a DD. See RunContext for the
// error/partial-result contract.
func Run(c *circuit.Circuit, opt Options) (*Result, error) {
	return RunContext(context.Background(), c, opt)
}

// RunContext simulates c under opt with cooperative cancellation: when
// ctx is canceled the run aborts — including from inside a long
// multiplication — and returns a *RunError wrapping ErrCanceled.
//
// Error contract: configuration errors (nil circuit, invalid options)
// return (nil, err). Aborted runs — deadline, cancellation, budget,
// injected fault, or a recovered engine panic — return a partial
// *Result (last consistent state, progress counters, statistics)
// together with a *RunError.
func RunContext(ctx context.Context, c *circuit.Circuit, opt Options) (*Result, error) {
	if c == nil {
		return nil, errors.New("core: nil circuit")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opt.Strategy == nil {
		opt.Strategy = Sequential{}
	}
	if err := validateStrategy(opt.Strategy); err != nil {
		return nil, err
	}
	if opt.GCThreshold == 0 {
		opt.GCThreshold = defaultGCThreshold
	}
	if opt.StartGate < 0 || opt.StartGate > len(c.Gates) {
		return nil, fmt.Errorf("core: StartGate %d out of range for %d gates", opt.StartGate, len(c.Gates))
	}
	switch opt.Reorder {
	case "", "off", "static", "sifting":
	default:
		return nil, fmt.Errorf("core: unknown Reorder mode %q (want off, static or sifting)", opt.Reorder)
	}
	if err := normalizeGovernor(&opt, c.NQubits); err != nil {
		return nil, err
	}
	var order []int
	if opt.InitialOrder != nil {
		if len(opt.InitialOrder) != c.NQubits || !dd.IsPermutation(opt.InitialOrder) {
			return nil, fmt.Errorf("core: InitialOrder %v is not a permutation of [0,%d)", opt.InitialOrder, c.NQubits)
		}
		order = append([]int(nil), opt.InitialOrder...)
	} else if opt.Reorder == "static" && opt.InitialState == nil && opt.StartGate == 0 {
		order = sched.StaticOrder(c)
	}
	if identityOrder(order) {
		order = nil // keep the identity fast paths
	}
	// Everything downstream (verifier bootstrap, checkpoints) reads the
	// resolved start order from the options copy.
	opt.InitialOrder = order
	eng := opt.Engine
	if eng == nil {
		eng = dd.New()
	}
	// Strategies with per-run adaptive state (the planner) are cloned so
	// concurrent runs sharing one Options value cannot race, then bound
	// to this run's engine and circuit.
	if rb, ok := opt.Strategy.(runBound); ok {
		rb = rb.cloneForRun()
		rb.bindRun(eng, c, opt.StartGate)
		opt.Strategy = rb
	}

	start := time.Now()
	statsBefore := eng.Stats()

	v := eng.ZeroState(c.NQubits)
	if opt.InitialState != nil {
		v = *opt.InitialState
		if v.Qubits() != c.NQubits {
			return nil, fmt.Errorf("core: initial state spans %d qubits, circuit has %d", v.Qubits(), c.NQubits)
		}
	}

	if ctx == nil {
		ctx = context.Background()
	}
	ver, verr := newVerifier(c, opt)
	if verr != nil {
		return nil, verr
	}
	ro := newRunObserver(opt, eng)
	r := &runner{
		eng:       eng,
		c:         c,
		opt:       opt,
		ctx:       ctx,
		obs:       ro,
		ver:       ver,
		v:         v,
		next:      opt.StartGate,
		applied:   opt.StartGate,
		lastCkpt:  opt.StartGate,
		stateSz:   -1,
		statsBase: statsBefore,
		order:     order,
	}
	r.buildPos()
	if governorArmed(opt) {
		r.gov = newGovernor(r)
		eng.SetSoftBudget(opt.SoftBudget, opt.PressureWatermarks)
	}
	if ro != nil {
		eng.SetObserver(ro)
		defer func() { r.eng.SetObserver(nil) }()
		ro.runStart(c, opt.StartGate)
	}
	// Arm the engine-level abort layer too: a single multiplication on
	// huge diagrams can outlive many per-gate checks. The deferred
	// disarm reads r.eng, not eng — a corruption repair may have swapped
	// the engine mid-run.
	eng.SetDeadline(opt.Deadline)
	eng.SetBudget(opt.MaxNodes)
	eng.SetContext(ctx)
	eng.SetIdentitySkip(!opt.DisableIdentitySkip)
	defer func() {
		r.eng.SetDeadline(time.Time{})
		r.eng.SetBudget(0)
		r.eng.SetContext(nil)
		r.eng.SetSoftBudget(0, dd.Watermarks{})
	}()
	err := r.runRecovering()
	if err != nil && opt.OnCheckpoint != nil {
		var re *RunError
		if errors.As(err, &re) {
			if cerr := opt.OnCheckpoint(r.checkpoint()); cerr != nil {
				err = errors.Join(err, fmt.Errorf("%w: abort checkpoint: %w", ErrCheckpointWrite, cerr))
			} else if ro != nil {
				ro.checkpointEv(r.applied)
			}
		}
	}

	// Engine swaps fold retired-engine counters into r.carried; the run
	// delta is carried plus the current engine's growth, and Result.Stats
	// stays cumulative relative to the pre-run snapshot (bit-identical to
	// the current engine's own stats when no swap happened).
	runDelta := statsSum(r.carried, statsDelta(r.eng.Stats(), r.statsBase))
	res := &Result{
		State:        r.v,
		Engine:       r.eng,
		Stats:        statsSum(statsBefore, runDelta),
		Duration:     time.Since(start),
		MatVecSteps:  int(runDelta.MatVecMuls),
		MatMatSteps:  int(runDelta.MatMatMuls),
		GatesApplied: r.applied,
		Fallbacks:    r.fallbacks,
		Order:        append([]int(nil), r.order...),
	}
	res.FidelityBound = 1
	if r.gov != nil {
		res.Degradations = r.gov.journal
		res.FidelityBound = r.gov.fidelity
	}
	if ver != nil {
		res.Repairs = ver.repairs
		res.NormDrift = ver.maxDrift
	}
	if ro != nil {
		res.Trace = ro.trace
		sz := r.stateSz
		if sz < 0 {
			sz = r.eng.SizeV(r.v)
		}
		ro.finish(r.applied, sz, r.fallbacks, len(res.Degradations), res.FidelityBound, err)
	}
	if err != nil {
		return res, err
	}
	return res, nil
}

// runner holds the mutable state of one simulation.
type runner struct {
	eng *dd.Engine
	c   *circuit.Circuit
	opt Options
	ctx context.Context
	// obs is the run's observability bridge (nil unless the run asked
	// for events, metrics or a trace); it owns the TracePoint recording.
	obs  *runObserver
	v    dd.VEdge
	next int // index of the next gate to absorb

	acc      dd.MEdge // accumulated operation matrix
	accValid bool
	accStart int // first gate index covered by acc
	combined int
	// applied is the gate index through which v reflects the circuit.
	applied int
	// stateSz caches the state DD's node count between flushes (-1 =
	// unknown); it only changes when an operation is applied.
	stateSz int

	fallbacks  int
	inFallback bool
	lastCkpt   int

	// order is the live DD variable order (order[level] = circuit
	// qubit; nil = identity), pos its inverse (pos[qubit] = level).
	// Gates are mapped through pos at absorption, so the circuit is
	// never rewritten. siftBase is the post-sift baseline size the
	// growth trigger compares against (0 = unset). ctlScratch is
	// gateDD's reusable control-mapping buffer.
	order      []int
	pos        []int
	siftBase   int
	ctlScratch []dd.Control

	// blockMat keeps combined block matrices alive across GC.
	blockMats []dd.MEdge

	// gov is the memory-pressure governor (nil unless armed via
	// Options.SoftBudget/Degrade); see governor.go.
	gov *governor

	// ver is the integrity-verification state (nil unless the run asked
	// for VerifyEvery/Paranoid); see verify.go.
	ver *verifier
	// carried accumulates the counter contributions of engines retired
	// by corruption repairs; statsBase is the current engine's snapshot
	// at the point this run started using it.
	carried   dd.Stats
	statsBase dd.Stats
}

// runRecovering is the outermost backstop: any panic not already
// converted by an op-level guard (e.g. from a strategy callback or a
// size traversal) is recovered into a *RunError instead of crashing the
// caller.
func (r *runner) runRecovering() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = r.errFromPanic(rec, r.next)
		}
	}()
	return r.run()
}

func (r *runner) run() error {
	blocks := r.blockIndex()
	for r.next < len(r.c.Gates) {
		if err := r.checkAbort(); err != nil {
			return err
		}
		if b, ok := blocks[r.next]; ok && r.opt.UseBlocks {
			if err := r.flush(r.next); err != nil {
				if err = r.maybeRepairOnPanic(err); err != nil {
					return err
				}
				continue
			}
			if err := r.runBlock(b); err != nil {
				if err = r.maybeRepairOnPanic(err); err != nil {
					return err
				}
			}
			continue
		}
		if err := r.absorbNext(); err != nil {
			if err = r.maybeRepairOnPanic(err); err != nil {
				return err
			}
			continue
		}
		opSz := -1
		opSize := func() int {
			if opSz < 0 {
				opSz = r.eng.SizeM(r.acc)
			}
			return opSz
		}
		stateSize := func() int {
			if r.stateSz < 0 {
				r.stateSz = r.eng.SizeV(r.v)
			}
			return r.stateSz
		}
		if r.accValid && (r.govPinned() || r.opt.Strategy.ShouldApply(r.combined, opSize, stateSize)) {
			r.notePlannerDecision()
			if err := r.flush(r.next); err != nil {
				if err = r.maybeRepairOnPanic(err); err != nil {
					return err
				}
				continue
			}
			// Reorder only at flush boundaries: the accumulator is
			// invalid here, so no combined matrix can go stale against
			// the new order.
			if err := r.maybeReorder(); err != nil {
				if err = r.maybeRepairOnPanic(err); err != nil {
					return err
				}
				continue
			}
		}
		r.maybeGC()
		if err := r.maybeGovern(); err != nil {
			if err = r.maybeRepairOnPanic(err); err != nil {
				return err
			}
			continue
		}
		if err := r.maybeCheckpoint(); err != nil {
			return err
		}
		if err := r.maybeVerify(false); err != nil {
			return err
		}
	}
	if err := r.flush(len(r.c.Gates)); err != nil {
		if err = r.maybeRepairOnPanic(err); err != nil {
			return err
		}
		// The repair replayed through the last applied gate; the final
		// flush target may still be ahead, so re-run the tail.
		if r.next < len(r.c.Gates) {
			return r.run()
		}
	}
	return r.maybeVerify(true)
}

// absorbNext multiplies the next gate onto the accumulated operation
// matrix. A budget abort mid-product discards the accumulator and
// degrades to sequential replay of the covered gate run.
func (r *runner) absorbNext() error {
	i := r.next
	if !r.accValid {
		r.accStart = i
	}
	err := r.guard(i, func() {
		gd := r.gateDD(r.c.Gates[i])
		if r.accValid {
			r.acc = r.eng.MulMat(gd, r.acc)
			r.combined++
		} else {
			r.acc = gd
			r.accValid = true
			r.combined = 1
		}
	})
	if err == nil {
		r.next++
		return nil
	}
	if ferr := r.tryFallback(err, r.accStart, i+1); ferr != nil {
		return ferr
	}
	r.next = i + 1
	return nil
}

// flush applies the accumulated matrix (if any) to the state,
// degrading to sequential replay on a budget abort.
func (r *runner) flush(gateIndex int) error {
	if !r.accValid {
		return nil
	}
	op, combined := r.acc, r.combined
	err := r.guard(gateIndex, func() {
		r.applyOp(op, gateIndex, combined, false, "", false)
	})
	if err == nil {
		r.accValid = false
		r.combined = 0
		return nil
	}
	return r.tryFallback(err, r.accStart, gateIndex)
}

// tryFallback is the graceful-degradation path: after a budget abort
// covering gates [from, to), it discards the accumulated matrix,
// collects garbage, and replays that gate run sequentially (one small
// gate DD and one matrix-vector product at a time). Any abort during
// the replay — including hitting the budget again — is final.
func (r *runner) tryFallback(runErr *RunError, from, to int) error {
	if runErr.Kind != FailureBudget || r.opt.DisableFallback || r.inFallback {
		return runErr
	}
	r.accValid = false
	r.combined = 0
	r.collect()
	r.fallbacks++
	if r.obs != nil {
		r.obs.fallback(runErr.GateIndex, to-from)
	}
	r.inFallback = true
	defer func() { r.inFallback = false }()
	for i := from; i < to; i++ {
		g := r.c.Gates[i]
		if err := r.guard(i, func() {
			r.applyOp(r.gateDD(g), i+1, 1, false, "", false)
		}); err != nil {
			return err
		}
		r.maybeGC()
	}
	return nil
}

// gateDD builds one gate's matrix DD with its qubits mapped through
// the live variable order (identity when no reorder is active). The
// control buffer is reused across calls, keeping the mapped path
// allocation-free in steady state.
func (r *runner) gateDD(g circuit.Gate) dd.MEdge {
	if r.order == nil {
		return r.eng.GateDD(g.Matrix, r.c.NQubits, g.Target, g.Controls)
	}
	ctl := r.ctlScratch[:0]
	for _, c := range g.Controls {
		ctl = append(ctl, dd.Control{Qubit: r.pos[c.Qubit], Negative: c.Negative})
	}
	r.ctlScratch = ctl
	return r.eng.GateDD(g.Matrix, r.c.NQubits, r.pos[g.Target], ctl)
}

// buildPos refreshes the qubit→level inverse of r.order.
func (r *runner) buildPos() {
	if r.order == nil {
		r.pos = nil
		return
	}
	if cap(r.pos) < len(r.order) {
		r.pos = make([]int, len(r.order))
	}
	r.pos = r.pos[:len(r.order)]
	for l, q := range r.order {
		r.pos[q] = l
	}
}

// identityOrder reports whether order is nil or the identity map.
func identityOrder(order []int) bool {
	for l, q := range order {
		if l != q {
			return false
		}
	}
	return true
}

func (r *runner) siftGrowth() float64 {
	if r.opt.SiftGrowth <= 0 {
		return 2
	}
	return r.opt.SiftGrowth
}

func (r *runner) siftMinNodes() int {
	if r.opt.SiftMinNodes <= 0 {
		return 256
	}
	return r.opt.SiftMinNodes
}

func (r *runner) siftMaxSwaps() int {
	if r.opt.SiftMaxSwaps > 0 {
		return r.opt.SiftMaxSwaps
	}
	n := r.c.NQubits
	return 8 * n * n
}

// maybeReorder runs one sifting pass when the state DD has outgrown
// the post-sift baseline. Called only at flush boundaries (the
// accumulator is invalid), so combined operation matrices never go
// stale against the new order. A cooperative abort inside sifting —
// the swap primitive probes the deadline/budget/cancellation layer on
// every swap — leaves r.v and r.order untouched (SiftV works on a
// scratch copy of the order) and surfaces through the usual guard.
func (r *runner) maybeReorder() error {
	if r.opt.Reorder != "sifting" || r.accValid {
		return nil
	}
	if r.stateSz < 0 {
		r.stateSz = r.eng.SizeV(r.v)
	}
	sz := r.stateSz
	if sz < r.siftMinNodes() {
		r.siftBase = 0
		return nil
	}
	if r.siftBase == 0 {
		r.siftBase = sz
	}
	if float64(sz) < r.siftGrowth()*float64(r.siftBase) {
		return nil
	}
	// Sifting under a nearly exhausted node budget would spend the
	// remaining headroom on intermediate diagrams and abort the run
	// over an optimisation; skip until collection makes room.
	if r.opt.MaxNodes > 0 && (r.eng.VNodeCount()+r.eng.MNodeCount())*2 > r.opt.MaxNodes {
		return nil
	}
	order := r.order
	if order == nil {
		order = dd.IdentityOrder(r.c.NQubits)
	} else {
		order = append([]int(nil), order...)
	}
	var (
		sifted dd.VEdge
		sres   dd.SiftResult
	)
	if err := r.guard(r.next, func() {
		sifted, sres = r.eng.SiftV(r.v, order, r.siftMaxSwaps())
	}); err != nil {
		return err
	}
	r.v = sifted
	r.order = order
	r.buildPos()
	r.stateSz = sres.After
	r.siftBase = sres.After
	// Drop the intermediate diagrams sifting interned.
	r.collect()
	if r.obs != nil {
		r.obs.reorderEv(r.applied, sres)
	}
	return nil
}

// notePlannerDecision collects the flush decision a decision-taking
// strategy (the planner) just made and forwards it to the obs layer.
// The decision is drained even without an observer so a stale one can
// never be attributed to a later flush.
func (r *runner) notePlannerDecision() {
	dt, ok := r.opt.Strategy.(decisionTaker)
	if !ok {
		return
	}
	d, ok := dt.takeDecision()
	if !ok {
		return
	}
	if r.obs != nil {
		r.obs.plannerEv(r.next, d)
	}
}

func (r *runner) applyOp(op dd.MEdge, gateIndex, combined int, fromBlock bool, blockName string, reuse bool) {
	var start time.Time
	if r.obs != nil {
		start = time.Now()
	}
	r.v = r.eng.MulVec(op, r.v)
	r.stateSz = -1
	r.applied = gateIndex
	if rb, ok := r.opt.Strategy.(runBound); ok {
		rb.noteApply(gateIndex)
	}
	opSz := r.eng.SizeM(op)
	r.eng.NoteMatrixSize(opSz)
	if r.obs == nil {
		return
	}
	r.stateSz = r.eng.SizeV(r.v)
	r.obs.step(stepInfo{
		gate:       gateIndex,
		combined:   combined,
		opNodes:    opSz,
		stateNodes: r.stateSz,
		wall:       time.Since(start),
		fromBlock:  fromBlock,
		block:      blockName,
		reuse:      reuse,
		fallback:   r.inFallback,
	})
}

// blockIndex maps a block's start gate index to the block.
func (r *runner) blockIndex() map[int]circuit.Block {
	m := make(map[int]circuit.Block, len(r.c.Blocks))
	for _, b := range r.c.Blocks {
		m[b.Start] = b
	}
	return m
}

// runBlock executes a repeated block DD-repeating style: combine the
// body once, then apply the same matrix Repeat times. Budget aborts —
// while combining or applying — degrade to sequential replay of the
// block's remaining gates.
func (r *runner) runBlock(b circuit.Block) error {
	body := b.End - b.Start
	end := b.Start + b.Repeat*body
	var mat dd.MEdge
	err := r.guard(b.Start, func() {
		// Fold through r.gateDD so block matrices respect the live
		// order; sifting never runs inside a block, so the matrix
		// cannot go stale across the repeats.
		mat = r.gateDD(r.c.Gates[b.Start])
		for i := b.Start + 1; i < b.End; i++ {
			mat = r.eng.MulMat(r.gateDD(r.c.Gates[i]), mat)
		}
	})
	if err != nil {
		if ferr := r.tryFallback(err, b.Start, end); ferr != nil {
			return ferr
		}
		r.next = end
		return nil
	}
	r.blockMats = append(r.blockMats, mat)
	// A corruption repair inside the loop swaps the engine and nils
	// blockMats, so the pop must tolerate an already-empty stack.
	popBlockMat := func() {
		if n := len(r.blockMats); n > 0 {
			r.blockMats = r.blockMats[:n-1]
		}
	}
	for i := 0; i < b.Repeat; i++ {
		if err := r.checkAbort(); err != nil {
			popBlockMat()
			return err
		}
		upTo := b.Start + (i+1)*body
		err := r.guard(upTo, func() {
			r.applyOp(mat, upTo, body, true, b.Name, i > 0)
		})
		if err != nil {
			popBlockMat()
			if ferr := r.tryFallback(err, r.applied, end); ferr != nil {
				return ferr
			}
			r.next = end
			return nil
		}
		r.maybeGC()
		if err := r.maybeGovern(); err != nil {
			popBlockMat()
			return err
		}
		if err := r.maybeCheckpoint(); err != nil {
			popBlockMat()
			return err
		}
		engBefore := r.eng
		if err := r.maybeVerify(false); err != nil {
			popBlockMat()
			return err
		}
		if r.eng != engBefore {
			// A repair rebuilt the state on a fresh engine; the combined
			// block matrix died with the old one. Hand the block's
			// remaining gates back to the main loop (gate-at-a-time).
			r.next = r.applied
			return nil
		}
	}
	popBlockMat()
	r.next = end
	return nil
}

// guard runs f, recovering engine aborts and any other panic into a
// typed *RunError anchored at gateIndex.
func (r *runner) guard(gateIndex int, f func()) (rerr *RunError) {
	defer func() {
		if rec := recover(); rec != nil {
			rerr = r.errFromPanic(rec, gateIndex)
		}
	}()
	f()
	return nil
}

// errFromPanic converts a recovered panic value into a *RunError:
// engine aborts keep their reason, everything else (mismatched-level
// or validation panics from internal/dd, strategy callbacks, …)
// becomes FailurePanic.
func (r *runner) errFromPanic(rec any, gateIndex int) *RunError {
	if a, ok := dd.AsAbort(rec); ok {
		re := &RunError{GateIndex: gateIndex, Cause: a}
		switch a.Reason {
		case dd.AbortDeadline:
			re.Kind, re.Err = FailureDeadline, ErrDeadlineExceeded
		case dd.AbortCanceled:
			re.Kind, re.Err = FailureCanceled, ErrCanceled
		case dd.AbortBudget:
			re.Kind, re.Err = FailureBudget, ErrBudgetExceeded
		default:
			re.Kind, re.Err = FailureInjected, ErrInjectedAbort
		}
		return re
	}
	if err, ok := rec.(error); ok {
		return &RunError{Kind: FailurePanic, GateIndex: gateIndex, Err: fmt.Errorf("core: recovered panic: %w", err)}
	}
	return &RunError{Kind: FailurePanic, GateIndex: gateIndex, Err: fmt.Errorf("core: recovered panic: %v", rec)}
}

// checkAbort polls the between-operations abort sources (context and
// deadline; the node budget is enforced inside the kernels).
func (r *runner) checkAbort() error {
	select {
	case <-r.ctx.Done():
		return &RunError{Kind: FailureCanceled, GateIndex: r.next, Err: ErrCanceled, Cause: r.ctx.Err()}
	default:
	}
	if !r.opt.Deadline.IsZero() && time.Now().After(r.opt.Deadline) {
		return &RunError{Kind: FailureDeadline, GateIndex: r.next, Err: ErrDeadlineExceeded}
	}
	return nil
}

// checkpoint snapshots the current consistent state for resume.
func (r *runner) checkpoint() *Checkpoint {
	repairs := 0
	if r.ver != nil {
		repairs = r.ver.repairs
	}
	return &Checkpoint{
		CircuitName: r.c.Name,
		NQubits:     r.c.NQubits,
		NextGate:    r.applied,
		Seed:        r.opt.Seed,
		Fallbacks:   r.fallbacks,
		Strategy:    r.opt.Strategy.Name(),
		Repairs:     repairs,
		Order:       append([]int(nil), r.order...),
		State:       r.v,
	}
}

// maybeCheckpoint emits a periodic checkpoint once enough gates have
// been applied since the last one.
func (r *runner) maybeCheckpoint() error {
	if r.opt.OnCheckpoint == nil || r.opt.CheckpointEvery <= 0 {
		return nil
	}
	if r.applied-r.lastCkpt < r.opt.CheckpointEvery {
		return nil
	}
	r.lastCkpt = r.applied
	if err := r.opt.OnCheckpoint(r.checkpoint()); err != nil {
		return fmt.Errorf("%w: at gate %d: %w", ErrCheckpointWrite, r.applied, err)
	}
	if r.obs != nil {
		r.obs.checkpointEv(r.applied)
	}
	return nil
}

// gcThreshold couples the GC trigger to the node budget: with a budget
// armed, collection must keep the live set comfortably below the cap or
// every operation would abort on garbage.
func (r *runner) gcThreshold() int {
	th := r.opt.GCThreshold
	if r.opt.MaxNodes > 0 {
		if b := r.opt.MaxNodes * 3 / 4; th < 0 || b < th {
			th = b
		}
	}
	// The soft budget clamps the same way: routine collection should
	// keep occupancy below the pressure watermarks whenever the
	// workload allows, so the governor only engages when GC alone no
	// longer suffices.
	if r.opt.SoftBudget > 0 {
		if b := r.opt.SoftBudget * 3 / 4; th < 0 || b < th {
			th = b
		}
	}
	return th
}

// collect garbage-collects with the run's live roots.
func (r *runner) collect() {
	mroots := append([]dd.MEdge(nil), r.blockMats...)
	if r.accValid {
		mroots = append(mroots, r.acc)
	}
	r.eng.GarbageCollect([]dd.VEdge{r.v}, mroots)
}

func (r *runner) maybeGC() {
	th := r.gcThreshold()
	if th < 0 {
		return
	}
	if r.eng.VNodeCount()+r.eng.MNodeCount() <= th {
		return
	}
	r.collect()
}

// CombineGates multiplies gates [from, to) of c into a single operation
// matrix (linear left fold: each gate is multiplied onto the
// accumulated product in circuit order).
func CombineGates(eng *dd.Engine, c *circuit.Circuit, from, to int) (dd.MEdge, error) {
	if from < 0 || to > len(c.Gates) || from >= to {
		return dd.MEdge{}, fmt.Errorf("core: CombineGates: invalid range [%d,%d) of %d gates", from, to, len(c.Gates))
	}
	g := c.Gates[from]
	acc := eng.GateDD(g.Matrix, c.NQubits, g.Target, g.Controls)
	for i := from + 1; i < to; i++ {
		g = c.Gates[i]
		gd := eng.GateDD(g.Matrix, c.NQubits, g.Target, g.Controls)
		acc = eng.MulMat(gd, acc)
	}
	return acc, nil
}

// CombineGatesTree multiplies gates [from, to) as a balanced tree
// instead of a linear fold: products of neighbouring gates are combined
// pairwise, then pairs of pairs, and so on. Intermediate operands stay
// small and symmetric, which can expose more node sharing than the
// linear fold — the design-choice ablation benchmarked in
// BenchmarkAblationCombineOrder.
func CombineGatesTree(eng *dd.Engine, c *circuit.Circuit, from, to int) (dd.MEdge, error) {
	if from < 0 || to > len(c.Gates) || from >= to {
		return dd.MEdge{}, fmt.Errorf("core: CombineGatesTree: invalid range [%d,%d) of %d gates", from, to, len(c.Gates))
	}
	var build func(lo, hi int) dd.MEdge
	build = func(lo, hi int) dd.MEdge {
		if hi-lo == 1 {
			g := c.Gates[lo]
			return eng.GateDD(g.Matrix, c.NQubits, g.Target, g.Controls)
		}
		mid := lo + (hi-lo)/2
		left := build(lo, mid)  // earlier gates
		right := build(mid, hi) // later gates
		return eng.MulMat(right, left)
	}
	return build(from, to), nil
}

// FullMatrix combines the entire circuit into one operation matrix
// (Eq. 2 taken to the extreme).
func FullMatrix(eng *dd.Engine, c *circuit.Circuit) (dd.MEdge, error) {
	if len(c.Gates) == 0 {
		return eng.Identity(c.NQubits), nil
	}
	return CombineGates(eng, c, 0, len(c.Gates))
}
