// Package core implements the paper's contribution: DD-based
// Schrödinger simulation with pluggable strategies that trade
// matrix-matrix against matrix-vector multiplications.
//
// The baseline ("sequential", the state of the art the paper improves
// on) applies one gate matrix to the state per step — Eq. 1. The
// combination strategies of Section IV-A absorb runs of gates into an
// accumulated operation matrix first (matrix-matrix multiplications on
// small DDs) and touch the — typically much larger — state DD only when
// the strategy decides to flush:
//
//   - KOperations flushes after every k absorbed gates.
//   - MaxSize flushes once the accumulated matrix DD exceeds s_max nodes.
//
// Section IV-B's knowledge-exploiting strategies are also here:
//
//   - Repeated blocks (DD-repeating): a circuit Block's body is combined
//     into a single matrix once and re-used for every further iteration
//     without any additional matrix-matrix multiplication.
//   - Direct construction (DD-construct) is provided by the shor package
//     on top of dd.FromPermutation; see internal/shor.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// Strategy decides when the accumulated operation matrix is applied to
// the state vector. After each gate is absorbed, ShouldApply is called
// with the number of gates combined so far and lazily evaluated node
// counts of the accumulated operation DD and the current state DD.
type Strategy interface {
	Name() string
	ShouldApply(combined int, opSize, stateSize func() int) bool
}

// Sequential is the state-of-the-art baseline: every gate is applied to
// the state immediately (pure matrix-vector simulation, Eq. 1).
type Sequential struct{}

// Name implements Strategy.
func (Sequential) Name() string { return "sequential" }

// ShouldApply implements Strategy: always flush.
func (Sequential) ShouldApply(int, func() int, func() int) bool { return true }

// KOperations combines runs of K gates via matrix-matrix multiplication
// before each matrix-vector step (strategy "k-operations", Sec. IV-A).
type KOperations struct {
	K int
}

// Name implements Strategy.
func (s KOperations) Name() string { return fmt.Sprintf("k-operations(k=%d)", s.K) }

// ShouldApply implements Strategy.
func (s KOperations) ShouldApply(combined int, _, _ func() int) bool {
	return combined >= s.K
}

// MaxSize combines gates until the accumulated matrix DD exceeds SMax
// nodes (strategy "max-size", Sec. IV-A). Parameterisation is by DD
// size, not gate count, so cheap runs are combined further and expensive
// ones flushed early.
type MaxSize struct {
	SMax int
}

// Name implements Strategy.
func (s MaxSize) Name() string { return fmt.Sprintf("max-size(s=%d)", s.SMax) }

// ShouldApply implements Strategy.
func (s MaxSize) ShouldApply(_ int, opSize, _ func() int) bool {
	return opSize() > s.SMax
}

// Adaptive flushes once the accumulated operation DD grows beyond
// Ratio times the current state DD — an extension of the paper's
// max-size idea that normalises the threshold by the quantity actually
// driving the matrix-vector cost. With large state DDs it keeps
// combining aggressively; with small ones it behaves almost
// sequentially. Included as an ablation of the fixed-threshold design
// choice.
type Adaptive struct {
	// Ratio is the op-to-state size ratio above which the accumulated
	// matrix is applied. Values around 0.5–2 work well; zero selects 1.
	Ratio float64
}

// Name implements Strategy.
func (s Adaptive) Name() string { return fmt.Sprintf("adaptive(r=%g)", s.ratio()) }

func (s Adaptive) ratio() float64 {
	if s.Ratio <= 0 {
		return 1
	}
	return s.Ratio
}

// ShouldApply implements Strategy.
func (s Adaptive) ShouldApply(_ int, opSize, stateSize func() int) bool {
	return float64(opSize()) > s.ratio()*float64(stateSize())
}

// CombineAll never flushes until the end of the circuit — the extreme
// case of completely following Eq. 2, which the paper shows is *not* a
// good idea. Included for the ablation benchmarks.
type CombineAll struct{}

// Name implements Strategy.
func (CombineAll) Name() string { return "combine-all" }

// ShouldApply implements Strategy.
func (CombineAll) ShouldApply(int, func() int, func() int) bool { return false }

// Options configures a simulation run.
type Options struct {
	// Strategy defaults to Sequential{}.
	Strategy Strategy
	// UseBlocks enables the DD-repeating treatment of circuit Blocks:
	// each block body is combined into one matrix and re-used across all
	// repetitions.
	UseBlocks bool
	// GCThreshold is the live-node count above which the engine is
	// garbage collected between steps. Zero selects the default (200k);
	// negative disables collection.
	GCThreshold int
	// RecordTrace records the DD sizes of the state after every
	// matrix-vector step and of every applied operation matrix (used for
	// the Fig. 5 style size traces). Costs O(size) per step.
	RecordTrace bool
	// Deadline aborts the run with ErrDeadlineExceeded once the wall
	// clock passes it (checked between multiplications). The zero value
	// means no deadline. This mirrors the paper's 2-CPU-hour timeout for
	// the t_sota columns.
	Deadline time.Time
	// InitialState overrides the |0…0> start state.
	InitialState *dd.VEdge
	// Engine re-uses an existing engine (otherwise a fresh one is
	// created per run).
	Engine *dd.Engine
}

const defaultGCThreshold = 200_000

// ErrDeadlineExceeded reports that a simulation hit Options.Deadline.
var ErrDeadlineExceeded = errors.New("core: simulation deadline exceeded")

// TracePoint is one recorded simulation step.
type TracePoint struct {
	GateIndex  int // index one past the last gate included in this step
	OpSize     int // nodes of the applied operation matrix DD
	StateSize  int // nodes of the state DD after the step
	Combined   int // gates combined into the applied matrix
	FromBlock  bool
	BlockName  string
	BlockReuse bool // true when the matrix was re-used, not re-built
}

// Result is the outcome of a simulation run.
type Result struct {
	State    dd.VEdge
	Engine   *dd.Engine
	Stats    dd.Stats
	Duration time.Duration
	// MatVecSteps and MatMatSteps are the top-level multiplication
	// counts of this run (not cumulated across engine re-use).
	MatVecSteps int
	MatMatSteps int
	Trace       []TracePoint
}

// Run simulates circuit c from |0…0> (or Options.InitialState) and
// returns the final state vector as a DD.
func Run(c *circuit.Circuit, opt Options) (*Result, error) {
	if c == nil {
		return nil, errors.New("core: nil circuit")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opt.Strategy == nil {
		opt.Strategy = Sequential{}
	}
	if opt.GCThreshold == 0 {
		opt.GCThreshold = defaultGCThreshold
	}
	eng := opt.Engine
	if eng == nil {
		eng = dd.New()
	}

	start := time.Now()
	statsBefore := eng.Stats()

	v := eng.ZeroState(c.NQubits)
	if opt.InitialState != nil {
		v = *opt.InitialState
		if v.Qubits() != c.NQubits {
			return nil, fmt.Errorf("core: initial state spans %d qubits, circuit has %d", v.Qubits(), c.NQubits)
		}
	}

	r := &runner{
		eng:     eng,
		c:       c,
		opt:     opt,
		v:       v,
		next:    0,
		stateSz: -1,
	}
	if !opt.Deadline.IsZero() {
		// Arm the engine-level deadline too: a single multiplication on
		// huge diagrams can outlive many per-gate checks.
		eng.SetDeadline(opt.Deadline)
		defer eng.SetDeadline(time.Time{})
	}
	if err := r.runRecovering(); err != nil {
		return nil, err
	}

	statsAfter := eng.Stats()
	return &Result{
		State:       r.v,
		Engine:      eng,
		Stats:       statsAfter,
		Duration:    time.Since(start),
		MatVecSteps: int(statsAfter.MatVecMuls - statsBefore.MatVecMuls),
		MatMatSteps: int(statsAfter.MatMatMuls - statsBefore.MatMatMuls),
		Trace:       r.trace,
	}, nil
}

// runner holds the mutable state of one simulation.
type runner struct {
	eng   *dd.Engine
	c     *circuit.Circuit
	opt   Options
	v     dd.VEdge
	next  int // index of the next gate to absorb
	trace []TracePoint

	acc      dd.MEdge // accumulated operation matrix
	accValid bool
	combined int
	// stateSz caches the state DD's node count between flushes (-1 =
	// unknown); it only changes when an operation is applied.
	stateSz int

	// blockMat keeps combined block matrices alive across GC.
	blockMats []dd.MEdge
}

// runRecovering runs the simulation, translating engine deadline
// aborts (which surface as panics from deep inside a multiplication)
// into ErrDeadlineExceeded.
func (r *runner) runRecovering() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if dd.AbortedByDeadline(rec) {
				err = ErrDeadlineExceeded
				return
			}
			panic(rec)
		}
	}()
	return r.run()
}

func (r *runner) run() error {
	blocks := r.blockIndex()
	for r.next < len(r.c.Gates) {
		if err := r.checkDeadline(); err != nil {
			return err
		}
		if b, ok := blocks[r.next]; ok && r.opt.UseBlocks {
			r.flush(r.next, false, "", false)
			if err := r.runBlock(b); err != nil {
				return err
			}
			continue
		}
		g := r.c.Gates[r.next]
		gd := r.eng.GateDD(g.Matrix, r.c.NQubits, g.Target, g.Controls)
		if r.accValid {
			r.acc = r.eng.MulMat(gd, r.acc)
			r.combined++
		} else {
			r.acc = gd
			r.accValid = true
			r.combined = 1
		}
		r.next++
		opSz := -1
		opSize := func() int {
			if opSz < 0 {
				opSz = r.eng.SizeM(r.acc)
			}
			return opSz
		}
		stateSize := func() int {
			if r.stateSz < 0 {
				r.stateSz = r.eng.SizeV(r.v)
			}
			return r.stateSz
		}
		if r.opt.Strategy.ShouldApply(r.combined, opSize, stateSize) {
			r.flush(r.next, false, "", false)
		}
		r.maybeGC()
	}
	r.flush(r.next, false, "", false)
	return nil
}

// flush applies the accumulated matrix (if any) to the state.
func (r *runner) flush(gateIndex int, fromBlock bool, blockName string, reuse bool) {
	if !r.accValid {
		return
	}
	op := r.acc
	combined := r.combined
	r.accValid = false
	r.combined = 0
	r.applyOp(op, gateIndex, combined, fromBlock, blockName, reuse)
}

func (r *runner) applyOp(op dd.MEdge, gateIndex, combined int, fromBlock bool, blockName string, reuse bool) {
	r.v = r.eng.MulVec(op, r.v)
	r.stateSz = -1
	r.eng.NoteMatrixSize(r.eng.SizeM(op))
	if r.opt.RecordTrace {
		r.trace = append(r.trace, TracePoint{
			GateIndex:  gateIndex,
			OpSize:     r.eng.SizeM(op),
			StateSize:  r.eng.SizeV(r.v),
			Combined:   combined,
			FromBlock:  fromBlock,
			BlockName:  blockName,
			BlockReuse: reuse,
		})
	}
}

// blockIndex maps a block's start gate index to the block.
func (r *runner) blockIndex() map[int]circuit.Block {
	m := make(map[int]circuit.Block, len(r.c.Blocks))
	for _, b := range r.c.Blocks {
		m[b.Start] = b
	}
	return m
}

// runBlock executes a repeated block DD-repeating style: combine the
// body once, then apply the same matrix Repeat times.
func (r *runner) runBlock(b circuit.Block) error {
	body := b.End - b.Start
	mat, err := CombineGates(r.eng, r.c, b.Start, b.End)
	if err != nil {
		return err
	}
	r.blockMats = append(r.blockMats, mat)
	for i := 0; i < b.Repeat; i++ {
		if err := r.checkDeadline(); err != nil {
			return err
		}
		end := b.Start + (i+1)*body
		r.applyOp(mat, end, body, true, b.Name, i > 0)
		r.maybeGC()
	}
	r.blockMats = r.blockMats[:len(r.blockMats)-1]
	r.next = b.Start + b.Repeat*body
	return nil
}

func (r *runner) checkDeadline() error {
	if !r.opt.Deadline.IsZero() && time.Now().After(r.opt.Deadline) {
		return ErrDeadlineExceeded
	}
	return nil
}

func (r *runner) maybeGC() {
	if r.opt.GCThreshold < 0 {
		return
	}
	if r.eng.VNodeCount()+r.eng.MNodeCount() <= r.opt.GCThreshold {
		return
	}
	mroots := append([]dd.MEdge(nil), r.blockMats...)
	if r.accValid {
		mroots = append(mroots, r.acc)
	}
	r.eng.GarbageCollect([]dd.VEdge{r.v}, mroots)
}

// CombineGates multiplies gates [from, to) of c into a single operation
// matrix (linear left fold: each gate is multiplied onto the
// accumulated product in circuit order).
func CombineGates(eng *dd.Engine, c *circuit.Circuit, from, to int) (dd.MEdge, error) {
	if from < 0 || to > len(c.Gates) || from >= to {
		return dd.MEdge{}, fmt.Errorf("core: CombineGates: invalid range [%d,%d) of %d gates", from, to, len(c.Gates))
	}
	g := c.Gates[from]
	acc := eng.GateDD(g.Matrix, c.NQubits, g.Target, g.Controls)
	for i := from + 1; i < to; i++ {
		g = c.Gates[i]
		gd := eng.GateDD(g.Matrix, c.NQubits, g.Target, g.Controls)
		acc = eng.MulMat(gd, acc)
	}
	return acc, nil
}

// CombineGatesTree multiplies gates [from, to) as a balanced tree
// instead of a linear fold: products of neighbouring gates are combined
// pairwise, then pairs of pairs, and so on. Intermediate operands stay
// small and symmetric, which can expose more node sharing than the
// linear fold — the design-choice ablation benchmarked in
// BenchmarkAblationCombineOrder.
func CombineGatesTree(eng *dd.Engine, c *circuit.Circuit, from, to int) (dd.MEdge, error) {
	if from < 0 || to > len(c.Gates) || from >= to {
		return dd.MEdge{}, fmt.Errorf("core: CombineGatesTree: invalid range [%d,%d) of %d gates", from, to, len(c.Gates))
	}
	var build func(lo, hi int) dd.MEdge
	build = func(lo, hi int) dd.MEdge {
		if hi-lo == 1 {
			g := c.Gates[lo]
			return eng.GateDD(g.Matrix, c.NQubits, g.Target, g.Controls)
		}
		mid := lo + (hi-lo)/2
		left := build(lo, mid)  // earlier gates
		right := build(mid, hi) // later gates
		return eng.MulMat(right, left)
	}
	return build(from, to), nil
}

// FullMatrix combines the entire circuit into one operation matrix
// (Eq. 2 taken to the extreme).
func FullMatrix(eng *dd.Engine, c *circuit.Circuit) (dd.MEdge, error) {
	if len(c.Gates) == 0 {
		return eng.Identity(c.NQubits), nil
	}
	return CombineGates(eng, c, 0, len(c.Gates))
}
