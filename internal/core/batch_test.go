package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/obs"
)

func TestRunBatchRejectsNilCircuit(t *testing.T) {
	jobs := []BatchJob{{Circuit: circuit.New(2)}, {}}
	if _, err := RunBatch(context.Background(), jobs, BatchOptions{}); err == nil {
		t.Fatal("nil circuit accepted")
	}
}

func TestRunBatchEmpty(t *testing.T) {
	res, err := RunBatch(context.Background(), nil, BatchOptions{Workers: 4})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v results, err %v", len(res), err)
	}
}

// TestRunBatchBudgetSplit: BatchOptions.MaxNodes is a shared budget
// divided across the in-flight workers. A batch whose split share is
// too small for the circuit must trip FailureBudget on every job; the
// same batch with no shared budget succeeds; and a job carrying its own
// tighter budget keeps it even when the batch share is generous.
func TestRunBatchBudgetSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(rng, 6, 50, false)

	mk := func(n int) []BatchJob {
		jobs := make([]BatchJob, n)
		for i := range jobs {
			jobs[i] = BatchJob{Circuit: c, Options: Options{DisableFallback: true}}
		}
		return jobs
	}

	// 4 workers share 8 nodes → 2 per job: nothing fits.
	res, err := RunBatch(context.Background(), mk(4), BatchOptions{Workers: 4, MaxNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, ErrBudgetExceeded) {
			t.Fatalf("job %d under split budget: err %v, want budget exceeded", i, r.Err)
		}
	}

	// No shared budget: everything runs.
	res, err = RunBatch(context.Background(), mk(4), BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d without budget: %v", i, r.Err)
		}
	}

	// A per-job budget tighter than the split share wins.
	jobs := mk(3)
	jobs[1].Options.MaxNodes = 2
	res, err = RunBatch(context.Background(), jobs, BatchOptions{Workers: 3, MaxNodes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if i == 1 {
			if !errors.Is(r.Err, ErrBudgetExceeded) {
				t.Fatalf("job 1 with own tiny budget: err %v, want budget exceeded", r.Err)
			}
		} else if r.Err != nil {
			t.Fatalf("job %d under generous split: %v", i, r.Err)
		}
	}
}

// TestRunBatchWorkerMetrics: the pool instruments and the per-worker
// peak-node gauges (fed from run_end events) must be populated.
func TestRunBatchWorkerMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng, 5, 40, false)
	jobs := make([]BatchJob, 6)
	for i := range jobs {
		jobs[i] = BatchJob{Circuit: c}
	}
	reg := obs.NewRegistry()
	res, err := RunBatch(context.Background(), jobs, BatchOptions{Workers: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	var started float64
	var peak float64
	for _, s := range reg.Snapshot() {
		switch {
		case strings.HasPrefix(s.Name, "batch_jobs_started_total{"):
			started += s.Value
		case strings.HasPrefix(s.Name, "batch_worker_peak_nodes{"):
			if s.Value > peak {
				peak = s.Value
			}
		}
	}
	if started != 6 {
		t.Fatalf("batch_jobs_started_total sums to %v, want 6", started)
	}
	if peak <= 0 {
		t.Fatal("no batch_worker_peak_nodes gauge was fed from run_end")
	}
}

// countingSink is deliberately not goroutine-safe: RunBatch promises to
// serialise the shared event sink, and the race detector holds it to
// that promise here.
type countingSink struct{ runEnds, events int }

func (s *countingSink) Emit(e obs.Event) {
	s.events++
	if e.Kind == obs.KindRunEnd {
		s.runEnds++
	}
}

func TestRunBatchSharedEventSinkSerialised(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomCircuit(rng, 5, 40, false)
	jobs := make([]BatchJob, 8)
	for i := range jobs {
		jobs[i] = BatchJob{Circuit: c}
	}
	sink := &countingSink{}
	res, err := RunBatch(context.Background(), jobs, BatchOptions{Workers: 4, Events: sink})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	if sink.runEnds != len(jobs) {
		t.Fatalf("shared sink saw %d run_end events, want %d", sink.runEnds, len(jobs))
	}
}
