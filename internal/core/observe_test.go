package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dd"
	"repro/internal/grover"
	"repro/internal/obs"
)

func eventsOfKind(evs []obs.Event, k obs.Kind) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestEventStreamGrover is the tentpole acceptance test: a Grover run
// emits run_start, exactly one step event per applied operation with
// monotonically consistent gate indices and node counts, and a closing
// run_end whose totals match the Result.
func TestEventStreamGrover(t *testing.T) {
	c := grover.Circuit(8, 3, grover.Iterations(8))
	ring := obs.NewRing(1 << 16)
	reg := obs.NewRegistry()
	res, err := Run(c, Options{EventSink: ring, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) < 3 {
		t.Fatalf("only %d events", len(evs))
	}
	if evs[0].Kind != obs.KindRunStart {
		t.Fatalf("first event is %v, want run_start", evs[0].Kind)
	}
	if evs[0].Circuit != c.Name || evs[0].TotalGates != len(c.Gates) {
		t.Fatalf("run_start = %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Kind != obs.KindRunEnd {
		t.Fatalf("last event is %v, want run_end", last.Kind)
	}

	steps := eventsOfKind(evs, obs.KindStep)
	if len(steps) != res.MatVecSteps {
		t.Fatalf("%d step events, but Result reports %d matrix-vector steps", len(steps), res.MatVecSteps)
	}
	prevGate, prevSeq := 0, uint64(0)
	var sumCombined int
	for i, s := range steps {
		if s.Seq <= prevSeq {
			t.Fatalf("step %d: seq %d not increasing", i, s.Seq)
		}
		prevSeq = s.Seq
		if s.Gate < prevGate {
			t.Fatalf("step %d: gate %d < previous %d", i, s.Gate, prevGate)
		}
		prevGate = s.Gate
		if s.StateNodes <= 0 || s.OpNodes <= 0 {
			t.Fatalf("step %d: non-positive sizes %+v", i, s)
		}
		// The state DD is interned, so its size can never exceed the
		// live vector-node count at emission time.
		if s.StateNodes > s.VLive {
			t.Fatalf("step %d: state %d nodes > %d live", i, s.StateNodes, s.VLive)
		}
		if s.MatVecMuls != 1 {
			t.Fatalf("step %d: %d matrix-vector muls, want exactly 1", i, s.MatVecMuls)
		}
		sumCombined += s.Combined
	}
	if prevGate != len(c.Gates) || last.Gate != len(c.Gates) {
		t.Fatalf("final gate %d / run_end gate %d, want %d", prevGate, last.Gate, len(c.Gates))
	}
	if sumCombined != len(c.Gates) {
		t.Fatalf("steps cover %d gates, circuit has %d", sumCombined, len(c.Gates))
	}
	if got := int(last.MatVecMuls); got != res.MatVecSteps {
		t.Fatalf("run_end matvec total %d, Result %d", got, res.MatVecSteps)
	}
	if last.PeakNodes != res.Stats.PeakVNodes+res.Stats.PeakMNodes {
		t.Fatalf("run_end peak %d, stats %d", last.PeakNodes, res.Stats.PeakVNodes+res.Stats.PeakMNodes)
	}

	// Metrics: counter totals match the event stream; snapshots
	// round-trip as valid JSON and Prometheus text.
	snap := reg.Snapshot()
	byName := map[string]obs.MetricSnapshot{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if got := byName["dd_steps_total"].Value; int(got) != len(steps) {
		t.Fatalf("dd_steps_total = %g, want %d", got, len(steps))
	}
	if byName["dd_matvec_muls_total"].Value != float64(res.MatVecSteps) {
		t.Fatalf("dd_matvec_muls_total = %g", byName["dd_matvec_muls_total"].Value)
	}
	h := byName["dd_state_nodes"]
	if h.Count != uint64(len(steps)) || len(h.Buckets) == 0 {
		t.Fatalf("dd_state_nodes histogram: %+v", h)
	}
	if lastB := h.Buckets[len(h.Buckets)-1]; lastB.LE != "+Inf" || lastB.Count != h.Count {
		t.Fatalf("+Inf bucket %+v != count %d", lastB, h.Count)
	}
	var jsonBuf, promBuf bytes.Buffer
	if err := reg.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(jsonBuf.Bytes()) {
		t.Fatalf("metrics JSON invalid:\n%s", jsonBuf.String())
	}
	if err := reg.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE dd_steps_total counter", "dd_step_seconds_bucket{le=\"+Inf\"}", "dd_live_nodes"} {
		if !strings.Contains(promBuf.String(), want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, promBuf.String())
		}
	}
}

// TestTraceMatchesEvents pins the Result.Trace contract: the trace is
// now derived from the same step observations as the event stream, and
// the two must agree point for point.
func TestTraceMatchesEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	c := randomCircuit(rng, 6, 80, true)
	ring := obs.NewRing(1 << 12)
	res, err := Run(c, Options{Strategy: KOperations{K: 4}, UseBlocks: true,
		RecordTrace: true, EventSink: ring})
	if err != nil {
		t.Fatal(err)
	}
	steps := eventsOfKind(ring.Events(), obs.KindStep)
	if len(steps) != len(res.Trace) {
		t.Fatalf("%d step events vs %d trace points", len(steps), len(res.Trace))
	}
	for i, tp := range res.Trace {
		s := steps[i]
		if tp.GateIndex != s.Gate || tp.OpSize != s.OpNodes || tp.StateSize != s.StateNodes ||
			tp.Combined != s.Combined || tp.FromBlock != s.FromBlock ||
			tp.BlockName != s.Block || tp.BlockReuse != s.BlockReuse || tp.Fallback != s.Fallback {
			t.Fatalf("trace[%d] %+v != event %+v", i, tp, s)
		}
	}
}

// TestTraceUnchangedByObservability pins that attaching a sink does not
// perturb the recorded trace relative to a plain RecordTrace run.
func TestTraceUnchangedByObservability(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	c := randomCircuit(rng, 5, 60, false)
	plain, err := Run(c, Options{Strategy: MaxSize{SMax: 64}, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(c, Options{Strategy: MaxSize{SMax: 64}, RecordTrace: true,
		EventSink: obs.NewRing(16), Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Trace) != len(observed.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plain.Trace), len(observed.Trace))
	}
	for i := range plain.Trace {
		if plain.Trace[i] != observed.Trace[i] {
			t.Fatalf("trace[%d]: %+v vs %+v", i, plain.Trace[i], observed.Trace[i])
		}
	}
}

// TestFallbackAndGCEvents drives a budget-constrained run and checks
// the degradation and GC paths show up in the stream and the registry.
func TestFallbackAndGCEvents(t *testing.T) {
	c := grover.Circuit(10, 3, grover.Iterations(10))
	ring := obs.NewRing(1 << 16)
	reg := obs.NewRegistry()
	res, err := Run(c, Options{Strategy: MaxSize{SMax: 1 << 20}, MaxNodes: 150,
		EventSink: ring, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks == 0 {
		t.Fatal("budget never tripped; fallback path untested")
	}
	evs := ring.Events()
	fbs := eventsOfKind(evs, obs.KindFallback)
	if len(fbs) != res.Fallbacks {
		t.Fatalf("%d fallback events, Result says %d", len(fbs), res.Fallbacks)
	}
	if fbs[0].Combined <= 0 {
		t.Fatalf("fallback event carries no replay extent: %+v", fbs[0])
	}
	if len(eventsOfKind(evs, obs.KindGC)) == 0 {
		t.Fatal("budgeted run emitted no gc events")
	}
	end := evs[len(evs)-1]
	if end.Kind != obs.KindRunEnd || end.Fallbacks != res.Fallbacks || end.Abort != "" {
		t.Fatalf("run_end = %+v", end)
	}
	snap := reg.Snapshot()
	for _, m := range snap {
		if m.Name == "dd_fallbacks_total" && int(m.Value) != res.Fallbacks {
			t.Fatalf("dd_fallbacks_total = %g, want %d", m.Value, res.Fallbacks)
		}
		if m.Name == "dd_gc_total" && m.Value == 0 {
			t.Fatal("dd_gc_total = 0 despite gc events")
		}
	}
}

// TestAbortEvents checks that a deadline abort is visible in the stream
// and stamped onto run_end.
func TestAbortEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	c := randomCircuit(rng, 6, 200, false)
	ring := obs.NewRing(1 << 12)
	_, err := Run(c, Options{Deadline: time.Now().Add(-time.Second), EventSink: ring})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	evs := ring.Events()
	aborts := eventsOfKind(evs, obs.KindAbort)
	if len(aborts) != 1 || aborts[0].Abort != "deadline" {
		t.Fatalf("abort events: %+v", aborts)
	}
	end := evs[len(evs)-1]
	if end.Kind != obs.KindRunEnd || end.Abort != "deadline" {
		t.Fatalf("run_end = %+v", end)
	}
}

// TestCheckpointEventsEmitted checks periodic checkpoints appear in the
// stream after the callback succeeded.
func TestCheckpointEventsEmitted(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	c := randomCircuit(rng, 5, 100, false)
	ring := obs.NewRing(1 << 12)
	saves := 0
	_, err := Run(c, Options{
		CheckpointEvery: 20,
		OnCheckpoint:    func(*Checkpoint) error { saves++; return nil },
		EventSink:       ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if saves == 0 {
		t.Fatal("no checkpoints taken")
	}
	if got := len(eventsOfKind(ring.Events(), obs.KindCheckpoint)); got != saves {
		t.Fatalf("%d checkpoint events, %d saves", got, saves)
	}
}

// TestSaveCheckpointDurable covers the durability fix: the installed
// file is complete and loadable, overwriting an existing checkpoint
// works, and no temp files are left behind.
func TestSaveCheckpointDurable(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	e := dd.New()
	ck := &Checkpoint{CircuitName: "durable", NQubits: 5, NextGate: 9, Seed: 3,
		State: e.FromVector(randAmps(rng, 5))}
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("installed checkpoint: %v (size %d)", err, fi.Size())
	}
	got, err := LoadCheckpoint(path, dd.New())
	if err != nil {
		t.Fatalf("installed checkpoint unreadable: %v", err)
	}
	if got.CircuitName != "durable" || got.NextGate != 9 {
		t.Fatalf("loaded %+v", got)
	}
	vectorsMatch(t, got.State.ToVector(), ck.State.ToVector())

	// Overwrite with a later checkpoint; the new content must win.
	ck2 := &Checkpoint{CircuitName: "durable", NQubits: 5, NextGate: 21, Seed: 3,
		State: e.FromVector(randAmps(rng, 5))}
	if err := SaveCheckpoint(path, ck2); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadCheckpoint(path, dd.New())
	if err != nil {
		t.Fatal(err)
	}
	if got2.NextGate != 21 {
		t.Fatalf("overwrite kept stale checkpoint: %+v", got2)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), ".ckpt-") {
			t.Fatalf("temp file %q left behind", ent.Name())
		}
	}
}
