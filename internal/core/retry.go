package core

import "errors"

// ErrCheckpointWrite marks a failure to persist a checkpoint (the
// OnCheckpoint callback returned an error, either periodically or on
// the abort path). It is wrapped into the run's returned error; match
// with errors.Is. Checkpoint-write failures are never retryable: the
// journal medium is broken, and re-running the job would only lose the
// work again.
var ErrCheckpointWrite = errors.New("core: checkpoint write failed")

// Retryable reports whether a failed run is worth re-executing — the
// classification the serving layer (internal/serve) uses to decide
// between scheduling a backoff retry and failing a job permanently.
//
// Retryable failure kinds:
//
//   - FailureInjected: chaos-injected aborts are transient by
//     construction — the rehearsal of a cosmic-ray class fault.
//   - FailureBudget: node-budget exhaustion depends on what else is
//     sharing the engine's budget pool at the time; a later attempt
//     under a quieter box (or after fallback tuning) can succeed.
//   - FailurePanic: a recovered engine panic with no identified cause.
//     A deterministic panic burns the retry budget and then fails; a
//     one-off does not kill the job.
//   - FailurePressure: the memory-pressure governor parked the run
//     behind a checkpoint; re-admitting it under a quieter budget (or
//     after siblings released theirs) resumes from the park point.
//
// Non-retryable:
//
//   - FailureDeadline: the job's own time budget expired; a retry
//     would consume the same budget again and fail the same way.
//   - FailureCanceled: the caller asked for the stop.
//   - FailureCorruption: verification found damage repair could not
//     clear — re-running on the same inputs is how the damage was
//     produced.
//   - ErrCheckpointWrite anywhere in the error chain: the durability
//     medium is failing, not the computation.
//   - Anything that is not a *RunError (configuration errors,
//     malformed circuits): deterministic, fails identically on retry.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCheckpointWrite) || errors.Is(err, ErrCorruption) {
		return false
	}
	var re *RunError
	if !errors.As(err, &re) {
		return false
	}
	switch re.Kind {
	case FailureInjected, FailureBudget, FailurePanic, FailurePressure:
		return true
	}
	return false
}
