package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/obs"
	"repro/internal/verify"
)

// verifyStrategies is the matrix the verification tests sweep: both
// multiplication regimes plus the hybrids, so the verifier sees states
// with and without an accumulated operation matrix in flight.
var verifyStrategies = []Strategy{
	Sequential{},
	KOperations{K: 4},
	MaxSize{SMax: 64},
	Adaptive{Ratio: 1},
	CombineAll{},
}

// TestVerifiedRunMatchesDense runs random circuits under VerifyEvery=1
// with and without Paranoid and checks the result still matches a dense
// simulation — verification must never perturb the state.
func TestVerifiedRunMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(3)
		c := verify.RandomCircuit(rng, n, 20+rng.Intn(20))
		oracle := dense.Simulate(c)
		for _, st := range verifyStrategies {
			for _, paranoid := range []bool{false, true} {
				res, err := Run(c, Options{Strategy: st, VerifyEvery: 1, Paranoid: paranoid})
				if err != nil {
					t.Fatalf("trial %d %s paranoid=%v: %v", trial, st.Name(), paranoid, err)
				}
				if f := verify.Fidelity(res.State.ToVector(), oracle); f < 1-verify.FidelityTol {
					t.Fatalf("trial %d %s paranoid=%v: fidelity %v", trial, st.Name(), paranoid, f)
				}
				if res.Repairs != 0 {
					t.Fatalf("trial %d %s: %d repairs on a healthy run", trial, st.Name(), res.Repairs)
				}
				if res.NormDrift < 0 || res.NormDrift > dd.DefaultNormTol {
					t.Fatalf("trial %d %s: norm drift %g", trial, st.Name(), res.NormDrift)
				}
			}
		}
	}
}

// TestVerifyCadence checks that VerifyEvery > 1 still verifies at the
// end of the run, and that a disabled verifier reports no drift.
func TestVerifyCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := verify.RandomCircuit(rng, 4, 30)
	ring := obs.NewRing(512)
	if _, err := Run(c, Options{VerifyEvery: 10, EventSink: ring}); err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	for _, e := range ring.Events() {
		if e.Kind == obs.KindVerify {
			events = append(events, e)
		}
	}
	if len(events) < 3 {
		t.Fatalf("VerifyEvery=10 over 30 gates produced %d verify events, want >= 3", len(events))
	}
	for _, e := range events {
		if e.Check != "" {
			t.Fatalf("healthy run produced failing verify event: %+v", e)
		}
	}

	res, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NormDrift != 0 || res.Repairs != 0 {
		t.Fatalf("unverified run reports drift %g repairs %d", res.NormDrift, res.Repairs)
	}
}

// TestParanoidQubitCap: Paranoid beyond the dense oracle's range is a
// configuration error, not a silent downgrade.
func TestParanoidQubitCap(t *testing.T) {
	c := circuit.New(verify.MaxOracleQubits + 1)
	c.H(0)
	if _, err := Run(c, Options{Paranoid: true}); err == nil {
		t.Fatal("Paranoid accepted a circuit beyond the oracle's qubit range")
	}
	// Plain VerifyEvery has no dense oracle and must still work.
	if _, err := Run(c, Options{VerifyEvery: 1}); err != nil {
		t.Fatalf("VerifyEvery beyond oracle range: %v", err)
	}
}

// TestBitFlipRepair is the chaos sweep at the runtime level: a bit-flip
// fault is armed at varying interning counts and kinds, and every trial
// must end in one of exactly two ways — a FailureCorruption abort, or a
// successful run whose final state matches the dense oracle. A silent
// wrong-amplitude escape fails the test. Requires chaos builds
// (DD_CHAOS=1 or the ddchaos tag).
func TestBitFlipRepair(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	rng := rand.New(rand.NewSource(1213))
	repaired, aborted := 0, 0
	for _, kind := range []dd.FaultKind{dd.FaultWeightFlip, dd.FaultChildFlip} {
		for _, after := range []uint64{1, 5, 17, 43, 101, 211} {
			for _, st := range verifyStrategies {
				c := verify.RandomCircuit(rng, 4, 30)
				oracle := dense.Simulate(c)
				eng := dd.New()
				if !eng.InjectBitFlipAfter(after, kind) {
					t.Skip("fault injection did not arm (chaos disabled)")
				}
				res, err := Run(c, Options{
					Engine:      eng,
					Strategy:    st,
					VerifyEvery: 1,
				})
				if err != nil {
					if !errors.Is(err, ErrCorruption) {
						t.Fatalf("%v after %d under %s: non-corruption failure %v", kind, after, st.Name(), err)
					}
					aborted++
					continue
				}
				if f := verify.Fidelity(res.State.ToVector(), oracle); f < 1-verify.FidelityTol {
					t.Fatalf("%v after %d under %s: SILENT ESCAPE — run succeeded with fidelity %v (repairs %d, faults %d)",
						kind, after, st.Name(), f, res.Repairs, res.Stats.FaultsInjected)
				}
				if res.Repairs > 0 {
					repaired++
					if res.Stats.FaultsInjected == 0 {
						t.Fatalf("%v after %d under %s: repair without a recorded fault", kind, after, st.Name())
					}
				}
			}
		}
	}
	t.Logf("sweep: %d repaired, %d aborted", repaired, aborted)
	if repaired == 0 {
		t.Error("no trial exercised the repair path; widen the sweep")
	}
}

// TestRepairEmitsEvents checks the observability contract: a repaired
// run emits verify events with a failing check and a repair event, and
// the metrics counters move.
func TestRepairEmitsEvents(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	rng := rand.New(rand.NewSource(99))
	reg := obs.NewRegistry()
	// Sweep injection points until one lands mid-run and is repaired.
	for after := uint64(3); after < 120; after += 7 {
		c := verify.RandomCircuit(rng, 4, 30)
		eng := dd.New()
		if !eng.InjectBitFlipAfter(after, dd.FaultWeightFlip) {
			t.Skip("fault injection did not arm (chaos disabled)")
		}
		ring := obs.NewRing(2048)
		res, err := Run(c, Options{Engine: eng, VerifyEvery: 1, EventSink: ring, Metrics: reg})
		if err != nil || res.Repairs == 0 {
			continue
		}
		var verifies, fails, repairs int
		for _, e := range ring.Events() {
			switch e.Kind {
			case obs.KindVerify:
				verifies++
				if e.Check != "" {
					fails++
				}
			case obs.KindRepair:
				repairs++
			}
		}
		if verifies == 0 || fails == 0 || repairs == 0 {
			t.Fatalf("repaired run emitted verifies=%d fails=%d repairs=%d", verifies, fails, repairs)
		}
		return
	}
	t.Skip("no injection point produced an in-run repair for this seed sweep")
}

// TestVerifierStatsCarryAcrossRepair checks that a run surviving an
// engine swap still reports sane totals: the counters must cover both
// engines (at least as much work as the gate count implies) and not
// underflow into absurd values.
func TestVerifierStatsCarryAcrossRepair(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	rng := rand.New(rand.NewSource(4242))
	for after := uint64(5); after < 150; after += 11 {
		c := verify.RandomCircuit(rng, 4, 40)
		eng := dd.New()
		if !eng.InjectBitFlipAfter(after, dd.FaultWeightFlip) {
			t.Skip("fault injection did not arm (chaos disabled)")
		}
		res, err := Run(c, Options{Engine: eng, VerifyEvery: 1})
		if err != nil || res.Repairs == 0 {
			continue
		}
		if res.Stats.FaultsInjected != 1 {
			t.Fatalf("faults injected %d, want 1", res.Stats.FaultsInjected)
		}
		if res.Stats.NodesCreated == 0 || res.Stats.NodesCreated > 1<<40 {
			t.Fatalf("implausible NodesCreated %d after engine swap (counter underflow?)", res.Stats.NodesCreated)
		}
		if res.Stats.MatVecMuls == 0 || res.Stats.MatVecMuls > 1<<30 {
			t.Fatalf("implausible MatVecMuls %d after engine swap", res.Stats.MatVecMuls)
		}
		if res.Engine == eng {
			t.Fatal("result still points at the retired engine")
		}
		return
	}
	t.Skip("no injection point produced an in-run repair for this seed sweep")
}

// TestLockstepOracle unit-tests the shared oracle: advance, no-rewind,
// and mismatch classification.
func TestLockstepOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := verify.RandomCircuit(rng, 3, 15)
	ls, err := verify.NewLockstep(c, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := dd.New()
	v := eng.ZeroState(3)
	for i, g := range c.Gates {
		v = eng.MulVec(eng.GateDD(g.Matrix, 3, g.Target, g.Controls), v)
		if err := ls.Advance(i + 1); err != nil {
			t.Fatal(err)
		}
		if err := ls.Check(v); err != nil {
			t.Fatalf("gate %d: %v", i, err)
		}
	}
	if err := ls.Advance(5); err != nil {
		t.Fatalf("rewind-style Advance errored: %v", err)
	}
	if ls.Applied() != len(c.Gates) {
		t.Fatalf("oracle rewound to %d", ls.Applied())
	}
	if err := ls.Advance(len(c.Gates) + 1); err == nil {
		t.Fatal("Advance beyond circuit end accepted")
	}
	// A deliberately wrong state must be classified as ErrMismatch.
	wrong := eng.MulVec(eng.GateDD([2][2]complex128{{0, 1}, {1, 0}}, 3, 0, nil), v)
	if err := ls.Check(wrong); !errors.Is(err, verify.ErrMismatch) {
		t.Fatalf("wrong state: got %v, want ErrMismatch", err)
	}
}
