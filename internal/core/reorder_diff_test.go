// Differential tests for dynamic variable reordering: every strategy,
// with sifting forced aggressively, must reproduce the fixed-order
// amplitudes exactly (up to weight-canonicalisation drift), including
// across a mid-run checkpoint/resume under a non-identity order. The
// file lives in the external test package so it can drive the real
// workload generators (internal/shor imports core).
package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnum"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/grover"
	"repro/internal/obs"
	"repro/internal/qft"
	"repro/internal/shor"
	"repro/internal/supremacy"
)

// siftHard returns options that force a sifting pass at essentially
// every flush boundary — the worst case for order bookkeeping.
func siftHard(st core.Strategy) core.Options {
	return core.Options{
		Strategy:     st,
		Reorder:      "sifting",
		SiftMinNodes: 1,
		SiftGrowth:   1,
	}
}

// fidelity returns |<b|a>|² for two amplitude slices.
func fidelity(a, b []complex128) float64 {
	var ip complex128
	for i := range a {
		ip += complex(real(b[i]), -imag(b[i])) * a[i]
	}
	return cnum.Abs2(ip)
}

// Heavy sifting rounds every touched weight through the canonical
// table (~1e-10 per operation), so the acceptance margin is looser
// than verify.FidelityTol; a genuine permutation bug costs orders of
// magnitude more.
const siftFidelityTol = 1e-7

func reorderTestCircuits(t *testing.T) []*circuit.Circuit {
	t.Helper()
	ua, _, err := shor.ControlledUaCircuit(15, 7)
	if err != nil {
		t.Fatal(err)
	}
	ua.Name = "shor_15_7_ua"
	return []*circuit.Circuit{
		grover.Circuit(8, 0x2d, 0),
		qft.Circuit(8, true),
		supremacy.Circuit(2, 3, 8, 7),
		ua,
	}
}

// TestReorderDifferentialAcrossStrategies compares sifting-forced and
// static-order runs against the fixed-order amplitudes for the paper's
// workload families under every combination strategy.
func TestReorderDifferentialAcrossStrategies(t *testing.T) {
	planner, err := core.NewStrategy("planner", core.StrategyKnobs{})
	if err != nil {
		t.Fatal(err)
	}
	strategies := []core.Strategy{
		core.Sequential{},
		core.KOperations{K: 4},
		core.MaxSize{SMax: 128},
		planner,
	}
	for _, c := range reorderTestCircuits(t) {
		ref, err := core.Run(c, core.Options{})
		if err != nil {
			t.Fatalf("%s: reference run: %v", c.Name, err)
		}
		refAmps := ref.State.ToVector()
		for _, st := range strategies {
			for _, mode := range []string{"sifting", "static"} {
				opt := siftHard(st)
				opt.Reorder = mode
				res, err := core.Run(c, opt)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", c.Name, st.Name(), mode, err)
				}
				if res.Order != nil && !dd.IsPermutation(res.Order) {
					t.Fatalf("%s/%s/%s: final order %v not a permutation", c.Name, st.Name(), mode, res.Order)
				}
				amps := dd.VectorInOrder(res.State, res.Order)
				if f := fidelity(amps, refAmps); f < 1-siftFidelityTol {
					t.Fatalf("%s/%s/%s: fidelity %.12f (order %v)", c.Name, st.Name(), mode, f, res.Order)
				}
				if err := res.Engine.AuditV(res.State); err != nil {
					t.Fatalf("%s/%s/%s: %v", c.Name, st.Name(), mode, err)
				}
			}
		}
	}
}

// TestReorderCheckpointResume checkpoints mid-run under a non-identity
// order, round-trips the checkpoint through its byte encoding into a
// fresh engine, resumes, and compares against a straight fixed-order
// run. Covered twice: an explicit reversed initial order (deterministic
// non-identity order, no sifting), and aggressive sifting.
func TestReorderCheckpointResume(t *testing.T) {
	c := qft.Circuit(8, true)
	ref, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refAmps := ref.State.ToVector()

	reversed := make([]int, c.NQubits)
	for i := range reversed {
		reversed[i] = c.NQubits - 1 - i
	}

	cases := []struct {
		name string
		opt  core.Options
	}{
		{"reversed-initial-order", core.Options{InitialOrder: reversed}},
		{"sifting", siftHard(core.KOperations{K: 4})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ckBytes []byte
			opt := tc.opt
			opt.CheckpointEvery = 7
			opt.OnCheckpoint = func(ck *core.Checkpoint) error {
				if ckBytes == nil && ck.NextGate > 0 && ck.NextGate < c.GateCount() {
					if tc.name == "reversed-initial-order" && ck.Order == nil {
						t.Fatal("mid-run checkpoint lost the non-identity order")
					}
					var buf bytes.Buffer
					if err := core.WriteCheckpoint(&buf, ck); err != nil {
						return err
					}
					ckBytes = buf.Bytes()
				}
				return nil
			}
			full, err := core.Run(c, opt)
			if err != nil {
				t.Fatal(err)
			}
			if ckBytes == nil {
				t.Fatal("no mid-run checkpoint captured")
			}
			if f := fidelity(dd.VectorInOrder(full.State, full.Order), refAmps); f < 1-siftFidelityTol {
				t.Fatalf("uninterrupted run fidelity %.12f", f)
			}

			eng := dd.New()
			ck, err := core.ReadCheckpoint(bytes.NewReader(ckBytes), eng)
			if err != nil {
				t.Fatal(err)
			}
			resumeOpt := tc.opt
			resumeOpt.Engine = eng
			resumeOpt.Strategy = nil // adopt the recorded strategy
			resumeOpt, err = core.ResumeOptions(resumeOpt, c, ck)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(c, resumeOpt)
			if err != nil {
				t.Fatal(err)
			}
			if f := fidelity(dd.VectorInOrder(res.State, res.Order), refAmps); f < 1-siftFidelityTol {
				t.Fatalf("resumed run fidelity %.12f (resumed at gate %d under order %v)",
					f, ck.NextGate, ck.Order)
			}
		})
	}
}

// TestShorGateLevelWithSifting runs the semiclassical Shor simulation —
// which resets a qubit between core runs and must map it through the
// live order — with sifting forced, and checks the measured phase and
// factors agree with the fixed-order run under the same rng stream.
func TestShorGateLevelWithSifting(t *testing.T) {
	ref, err := shor.SimulateGateLevel(15, 7, core.Options{}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := shor.SimulateGateLevel(15, 7, siftHard(core.Sequential{}), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase != ref.Phase {
		t.Fatalf("sifting changed the measured phase: %d vs %d", res.Phase, ref.Phase)
	}
}

// TestReorderOptionValidation covers the Options error paths.
func TestReorderOptionValidation(t *testing.T) {
	c := qft.Circuit(4, true)
	if _, err := core.Run(c, core.Options{Reorder: "bogus"}); err == nil {
		t.Fatal("unknown Reorder mode accepted")
	}
	for _, bad := range [][]int{{0, 0, 1, 2}, {0, 1, 2}, {0, 1, 2, 4}} {
		if _, err := core.Run(c, core.Options{InitialOrder: bad}); err == nil {
			t.Fatalf("invalid InitialOrder %v accepted", bad)
		}
	}
}

// TestReorderEventsAndStats checks the observability contract: a
// sifting run emits KindReorder events whose swap counts match the
// run-total stats, and the run_end event carries the totals.
func TestReorderEventsAndStats(t *testing.T) {
	ring := obs.NewRing(4096)
	opt := siftHard(core.Sequential{})
	opt.EventSink = ring
	res, err := core.Run(supremacy.Circuit(2, 3, 8, 7), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReorderSwaps == 0 || res.Stats.SiftPasses == 0 {
		t.Fatalf("forced sifting did no work: %+v", res.Stats)
	}
	var evSwaps uint64
	var reorders int
	var runEnd *obs.Event
	for _, ev := range ring.Events() {
		ev := ev
		switch ev.Kind {
		case obs.KindReorder:
			reorders++
			evSwaps += ev.Swaps
			if ev.NodesBefore <= 0 || ev.NodesAfter <= 0 {
				t.Fatalf("reorder event without node sizes: %+v", ev)
			}
		case obs.KindRunEnd:
			runEnd = &ev
		}
	}
	if reorders == 0 {
		t.Fatal("no KindReorder events emitted")
	}
	if evSwaps != res.Stats.ReorderSwaps {
		t.Fatalf("event swap total %d, stats %d", evSwaps, res.Stats.ReorderSwaps)
	}
	if runEnd == nil || runEnd.Swaps != res.Stats.ReorderSwaps || runEnd.SiftPasses != res.Stats.SiftPasses {
		t.Fatalf("run_end totals missing or wrong: %+v", runEnd)
	}
}
