package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dd"
	"repro/internal/grover"
)

// vectorsMatch compares two amplitude vectors elementwise.
func vectorsMatch(t *testing.T, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		d := got[i] - want[i]
		if real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("amplitude %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestRunContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := randomCircuit(rng, 6, 200, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, c, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailureCanceled {
		t.Fatalf("err = %#v, want *RunError with FailureCanceled", err)
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
	if res.GatesApplied != 0 {
		t.Fatalf("pre-canceled run applied %d gates", res.GatesApplied)
	}
}

func TestRunContextCancelMidMultiplication(t *testing.T) {
	// combine-all on a deep wide circuit spends its time inside
	// multiplications; cancellation must reach in there via the
	// engine-level probes.
	rng := rand.New(rand.NewSource(32))
	c := randomCircuit(rng, 14, 400, false)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, c, Options{Strategy: CombineAll{}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Fatal("cancellation misclassified as deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestBudgetFallbackCompletes is the graceful-degradation acceptance
// test: a Grover run whose combination strategy cannot fit the node
// budget must complete anyway by degrading to sequential replay, while
// the same budget with fallback disabled aborts.
func TestBudgetFallbackCompletes(t *testing.T) {
	n := 10
	c := grover.Circuit(n, 3, grover.Iterations(n))
	want, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}

	st := MaxSize{SMax: 1 << 20} // combine without bound; only the budget stops it
	res, err := Run(c, Options{Strategy: st, MaxNodes: 150})
	if err != nil {
		t.Fatalf("budgeted run did not complete via fallback: %v", err)
	}
	if res.Fallbacks == 0 {
		t.Fatal("budgeted max-size run recorded no fallbacks")
	}
	if res.GatesApplied != len(c.Gates) {
		t.Fatalf("applied %d of %d gates", res.GatesApplied, len(c.Gates))
	}
	vectorsMatch(t, res.State.ToVector(), want.State.ToVector())

	// Same cap, fallback disabled: the run must abort with a typed
	// budget error and still hand back partial progress.
	res, err = Run(c, Options{Strategy: st, MaxNodes: 150, DisableFallback: true})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailureBudget {
		t.Fatalf("err = %#v, want *RunError with FailureBudget", err)
	}
	if res == nil || res.Fallbacks != 0 {
		t.Fatalf("disabled fallback still degraded: %+v", res)
	}
}

// TestBudgetFallbackTracing checks that replayed steps are flagged in
// the trace.
func TestBudgetFallbackTracing(t *testing.T) {
	c := grover.Circuit(10, 3, grover.Iterations(10))
	res, err := Run(c, Options{Strategy: MaxSize{SMax: 1 << 20}, MaxNodes: 150, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks == 0 {
		t.Fatal("budget never tripped; fallback path untested")
	}
	var flagged int
	for _, tp := range res.Trace {
		if tp.Fallback {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("fallback replay left no trace marks")
	}
}

func TestPanicRecoveredToRunError(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	c := randomCircuit(rng, 4, 20, false)
	res, err := Run(c, Options{Strategy: panicStrategy{}})
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailurePanic {
		t.Fatalf("err = %v, want *RunError with FailurePanic", err)
	}
	if res == nil {
		t.Fatal("recovered panic returned no partial result")
	}
}

type panicStrategy struct{}

func (panicStrategy) Name() string { return "panic" }
func (panicStrategy) ShouldApply(combined int, _, _ func() int) bool {
	if combined >= 3 {
		panic("strategy blew up")
	}
	return false
}

// TestInjectedAbortSurfacesTyped chaos-tests the whole recovery path:
// a synthetic engine abort at an exact kernel probe surfaces as a
// typed *RunError with a partial result, and the engine remains usable
// for a follow-up run.
func TestInjectedAbortSurfacesTyped(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	rng := rand.New(rand.NewSource(34))
	c := randomCircuit(rng, 8, 120, false)
	eng := dd.New()
	if !eng.InjectAbortAfter(500, dd.AbortInjected) {
		t.Fatal("fault injection did not arm")
	}
	res, err := Run(c, Options{Engine: eng})
	if !errors.Is(err, ErrInjectedAbort) {
		t.Fatalf("err = %v, want ErrInjectedAbort", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailureInjected {
		t.Fatalf("err = %#v, want FailureInjected", err)
	}
	if res == nil || res.GatesApplied >= len(c.Gates) {
		t.Fatalf("injected abort reported full completion: %+v", res)
	}
	// Injection is one-shot; the same engine must finish a clean re-run.
	clean, err := Run(c, Options{Engine: eng})
	if err != nil {
		t.Fatalf("engine unusable after injected abort: %v", err)
	}
	if f := fidelityWithDense(t, clean, c); f < 1-1e-9 {
		t.Fatalf("post-abort fidelity %v", f)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	e1 := dd.New()
	v := e1.FromVector(randAmps(rng, 5))
	ck := &Checkpoint{CircuitName: "rt", NQubits: 5, NextGate: 17, Seed: 99, Fallbacks: 2, State: v}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	e2 := dd.New()
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), e2)
	if err != nil {
		t.Fatal(err)
	}
	if got.CircuitName != "rt" || got.NQubits != 5 || got.NextGate != 17 || got.Seed != 99 || got.Fallbacks != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	vectorsMatch(t, got.State.ToVector(), v.ToVector())

	if _, err := ReadCheckpoint(bytes.NewReader([]byte("NOTACKPT")), e2); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func randAmps(rng *rand.Rand, n int) []complex128 {
	amps := make([]complex128, 1<<n)
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	s := complex(1/sqrtFloat(norm), 0)
	for i := range amps {
		amps[i] *= s
	}
	return amps
}

func sqrtFloat(x float64) float64 {
	// small helper to avoid importing math just for this file's tests
	z := x
	for i := 0; i < 40; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// TestKillAndResume is the checkpoint/resume acceptance test: a run is
// "killed" mid-flight (the checkpoint sink errors once it has a
// mid-circuit snapshot), then resumed from the saved checkpoint on a
// fresh engine; the resumed final state must match an uninterrupted
// run exactly.
func TestKillAndResume(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	c := randomCircuit(rng, 6, 120, false)
	c.Name = "killme"

	want, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	killed := errors.New("simulated kill")
	_, err = Run(c, Options{
		Seed:            7,
		CheckpointEvery: 10,
		OnCheckpoint: func(ck *Checkpoint) error {
			if ck.NextGate < 30 {
				return SaveCheckpoint(path, ck)
			}
			if err := SaveCheckpoint(path, ck); err != nil {
				return err
			}
			return killed
		},
	})
	if !errors.Is(err, killed) {
		t.Fatalf("err = %v, want the simulated kill", err)
	}

	eng := dd.New()
	ck, err := LoadCheckpoint(path, eng)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NextGate <= 0 || ck.NextGate >= len(c.Gates) {
		t.Fatalf("checkpoint at gate %d of %d — not mid-flight", ck.NextGate, len(c.Gates))
	}
	if ck.Seed != 7 {
		t.Fatalf("checkpoint seed %d, want 7", ck.Seed)
	}
	opt, err := ResumeOptions(Options{Engine: eng}, c, ck)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.GatesApplied != len(c.Gates) {
		t.Fatalf("resumed run applied %d of %d gates", res.GatesApplied, len(c.Gates))
	}
	vectorsMatch(t, res.State.ToVector(), want.State.ToVector())
}

// TestAbortCheckpoint checks that an aborting run emits a final
// checkpoint so progress is never lost.
func TestAbortCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	c := randomCircuit(rng, 6, 300, false)
	var last *Checkpoint
	var lastVec []complex128
	res, err := Run(c, Options{
		Deadline: time.Now().Add(-time.Second),
		OnCheckpoint: func(ck *Checkpoint) error {
			last = ck
			lastVec = ck.State.ToVector()
			return nil
		},
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if last == nil {
		t.Fatal("abort emitted no checkpoint")
	}
	if last.NextGate != res.GatesApplied {
		t.Fatalf("checkpoint gate %d != applied %d", last.NextGate, res.GatesApplied)
	}
	if len(lastVec) != 1<<c.NQubits {
		t.Fatalf("checkpoint state spans %d amplitudes", len(lastVec))
	}
}

// TestResumeOptionsValidates rejects checkpoints that do not match the
// circuit.
func TestResumeOptionsValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	c := randomCircuit(rng, 5, 20, false)
	c.Name = "target"
	e := dd.New()
	state := e.ZeroState(4)
	if _, err := ResumeOptions(Options{}, c, &Checkpoint{NQubits: 4, State: state}); err == nil {
		t.Fatal("qubit mismatch accepted")
	}
	st5 := e.ZeroState(5)
	if _, err := ResumeOptions(Options{}, c, &Checkpoint{NQubits: 5, NextGate: len(c.Gates) + 1, State: st5}); err == nil {
		t.Fatal("out-of-range gate index accepted")
	}
	if _, err := ResumeOptions(Options{}, c, &Checkpoint{CircuitName: "other", NQubits: 5, State: st5}); err == nil {
		t.Fatal("circuit name mismatch accepted")
	}
}

// TestDeadlinePartialProgress checks the partial-result contract: an
// aborted run reports how far it got and keeps a consistent state.
func TestDeadlinePartialProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	c := randomCircuit(rng, 12, 600, false)
	deadline := time.Now().Add(30 * time.Millisecond)
	res, err := Run(c, Options{Deadline: deadline})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Skipf("machine too fast for a 30ms deadline on this circuit (err=%v)", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	if res.GatesApplied < 0 || res.GatesApplied > len(c.Gates) {
		t.Fatalf("GatesApplied %d out of range", res.GatesApplied)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err %T is not *RunError", err)
	}
	if re.GateIndex < res.GatesApplied {
		t.Fatalf("failing gate %d precedes applied prefix %d", re.GateIndex, res.GatesApplied)
	}
}
