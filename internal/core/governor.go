package core

import (
	"fmt"

	"repro/internal/dd"
)

// Memory-pressure governor: staged graceful degradation instead of
// budget-cliff aborts.
//
// The engine's pressure signal (dd.SetSoftBudget / dd.Pressure) bands
// live-node occupancy against watermark fractions of a soft budget.
// The governor consults it at flush boundaries — the only points where
// the run is in a consistent, checkpointable state — and walks a
// degradation ladder, taking the cheapest measure that clears the
// pressure before reaching for the next:
//
//	rung 1 (≥ low)       emergency GC + compute-cache purge — exact,
//	                     pointer-preserving.
//	rung 2 (≥ high)      flush the accumulated operation matrix and pin
//	                     the strategy to sequential until occupancy
//	                     falls below the low watermark — exact; the
//	                     pending matrix is applied just like a regular
//	                     flush, only earlier.
//	rung 3 (≥ high)      a sifting pass to shrink the state DD itself —
//	                     exact up to weight re-canonicalisation (the
//	                     same contract as Options.Reorder "sifting").
//	       (critical)    before degrading further, Options.GrowBudget
//	                     is consulted for more headroom (the batch
//	                     ledger returns finished siblings' unused
//	                     shares).
//	rung 4 (critical)    opt-in (Degrade "approx"): fidelity-bounded
//	                     state approximation via dd.Engine.Approximate;
//	                     the bound multiplies into Result.FidelityBound.
//	rung 5 (critical)    checkpoint-then-park: the run returns a
//	                     *RunError of kind FailurePressure (retryable —
//	                     the abort-checkpoint path in RunContext writes
//	                     the park checkpoint) instead of tripping the
//	                     hard budget mid-kernel.
//
// Every action is journaled into Result.Degradations and emitted as an
// obs KindPressure event with dd_pressure_* metrics. Under chaos
// injection (dd.InjectPressure) the level never subsides, so a single
// governor look deterministically walks every rung the injected level
// unlocks — that is how CI forces each rung.

// Degrade modes (Options.Degrade).
const (
	degradeOff    = "off"
	degradeLadder = "ladder"
	degradeApprox = "approx"
)

// Degradation is one journaled action of the governor's ladder.
type Degradation struct {
	// GateIndex is the gate index through which the state was applied
	// when the action was taken.
	GateIndex int `json:"gate"`
	// Rung is the ladder rung (1–5; 0 for a budget grow, which is a
	// headroom acquisition rather than a degradation).
	Rung int `json:"rung"`
	// Action names the measure: "gc", "flush", "sift", "grow",
	// "approx", "park".
	Action string `json:"action"`
	// Level is the pressure band that triggered the action ("low",
	// "high", "critical").
	Level string `json:"level"`
	// LiveBefore/LiveAfter are the combined live-node counts around
	// the action.
	LiveBefore int `json:"live_before"`
	LiveAfter  int `json:"live_after"`
	// Fidelity is the fidelity bound of an approximation rung (0 for
	// exact actions).
	Fidelity float64 `json:"fidelity,omitempty"`
}

// governorArmed reports whether the options (after normalizeGovernor)
// call for a governor.
func governorArmed(opt Options) bool {
	return opt.Degrade == degradeLadder || opt.Degrade == degradeApprox
}

// normalizeGovernor validates the governor knobs and resolves their
// defaults in place: SoftBudget implies Degrade "ladder"; Degrade
// without SoftBudget governs against MaxNodes; ApproxNodes defaults to
// SoftBudget/4 floored at the qubit count. Violations return a typed
// *ConfigError naming the offending option.
func normalizeGovernor(opt *Options, nqubits int) error {
	switch opt.Degrade {
	case "", degradeOff, degradeLadder, degradeApprox:
	default:
		return &ConfigError{Option: "Degrade",
			Msg: fmt.Sprintf("unknown mode %q (want off, ladder or approx)", opt.Degrade)}
	}
	if !opt.PressureWatermarks.Valid() {
		w := opt.PressureWatermarks
		return &ConfigError{Option: "PressureWatermarks",
			Msg: fmt.Sprintf("watermarks must be strictly increasing within (0,1], got %g/%g/%g", w.Low, w.High, w.Critical)}
	}
	if opt.SoftBudget < 0 {
		return &ConfigError{Option: "SoftBudget",
			Msg: fmt.Sprintf("must be >= 0, got %d", opt.SoftBudget)}
	}
	if opt.SoftBudget > 0 && opt.MaxNodes > 0 && opt.SoftBudget > opt.MaxNodes {
		return &ConfigError{Option: "SoftBudget",
			Msg: fmt.Sprintf("soft budget %d exceeds the hard budget MaxNodes=%d", opt.SoftBudget, opt.MaxNodes)}
	}
	mode := opt.Degrade
	if mode == "" && opt.SoftBudget > 0 {
		mode = degradeLadder
	}
	if mode == "" || mode == degradeOff {
		if opt.ApproxNodes != 0 {
			return &ConfigError{Option: "ApproxNodes",
				Msg: `only meaningful with Degrade "approx"`}
		}
		opt.Degrade = mode
		return nil
	}
	if opt.SoftBudget == 0 {
		if opt.MaxNodes == 0 {
			return &ConfigError{Option: "Degrade",
				Msg: fmt.Sprintf("%q needs a budget to govern against (set SoftBudget or MaxNodes)", mode)}
		}
		opt.SoftBudget = opt.MaxNodes
	}
	switch {
	case mode != degradeApprox && opt.ApproxNodes != 0:
		return &ConfigError{Option: "ApproxNodes",
			Msg: `only meaningful with Degrade "approx"`}
	case mode == degradeApprox && opt.ApproxNodes == 0:
		opt.ApproxNodes = opt.SoftBudget / 4
		if opt.ApproxNodes < nqubits {
			opt.ApproxNodes = nqubits
		}
	case mode == degradeApprox && opt.ApproxNodes < nqubits:
		// Mirrors the dd.Engine.Approximate precondition: a product
		// state already needs one node per qubit.
		return &ConfigError{Option: "ApproxNodes",
			Msg: fmt.Sprintf("approximation floor %d below qubit count %d (a state DD cannot be smaller)", opt.ApproxNodes, nqubits)}
	}
	opt.Degrade = mode
	return nil
}

// governor holds the ladder state of one run.
type governor struct {
	r    *runner
	mode string // degradeLadder or degradeApprox
	// soft is the current soft budget (grows via Options.GrowBudget).
	soft int
	// approxNodes is rung 4's state-size target.
	approxNodes int
	// pinned forces ShouldApply while set: the strategy is held at
	// sequential until occupancy falls below the low watermark.
	pinned bool
	// journal is the run's Result.Degradations.
	journal []Degradation
	// fidelity is the cumulative fidelity bound (1 until rung 4 cuts).
	fidelity float64
	// lastGCs is the engine's GC count at the last governor look;
	// rung 1 only collects when nothing else collected since.
	lastGCs uint64
	// lastSiftGate/lastApproxGate dedupe rungs 3 and 4 to one attempt
	// per applied-gate position.
	lastSiftGate   int
	lastApproxGate int
}

func newGovernor(r *runner) *governor {
	return &governor{
		r:              r,
		mode:           r.opt.Degrade,
		soft:           r.opt.SoftBudget,
		approxNodes:    r.opt.ApproxNodes,
		fidelity:       1,
		lastSiftGate:   -1,
		lastApproxGate: -1,
	}
}

// maybeGovern consults the pressure signal at a flush boundary and, if
// a watermark is crossed, walks the ladder. The returned error is a
// *RunError only for a rung-5 park or a genuine abort inside a rung.
func (r *runner) maybeGovern() error {
	g := r.gov
	if g == nil {
		return nil
	}
	p := r.eng.Pressure()
	if p.Level == dd.PressureNone {
		// Recovery: below the low watermark the pin is lifted and the
		// configured strategy resumes combining.
		g.pinned = false
		g.lastGCs = r.eng.Stats().GCs
		return nil
	}
	return g.act(p)
}

// govPinned reports whether the governor is holding the strategy at
// sequential (rung 2's sticky half).
func (r *runner) govPinned() bool { return r.gov != nil && r.gov.pinned }

// act walks the ladder for one boundary. Each rung re-reads the
// pressure afterwards and stops as soon as the level has dropped below
// the next rung's threshold. Under chaos injection the level never
// drops, so one call deterministically reaches every rung the injected
// level unlocks.
func (g *governor) act(p dd.PressureInfo) error {
	r := g.r

	// Rung 1 (≥ low): emergency collection + compute-cache purge —
	// skipped when a collection already ran since the last look (then
	// the garbage is already gone and the live set is what remains).
	if gcs := r.eng.Stats().GCs; gcs == g.lastGCs {
		before, lvl := p.Live, p.Level
		r.collect()
		p = r.eng.Pressure()
		g.note(1, "gc", lvl, before, p.Live, 0)
	}
	g.lastGCs = r.eng.Stats().GCs
	if p.Level < dd.PressureHigh {
		return nil
	}

	// Rung 2 (≥ high): stop accumulating. The pending operation matrix
	// is flushed — applied to the state exactly as a regular flush
	// would, only earlier — and the strategy is pinned to sequential
	// until occupancy falls below the low watermark.
	if r.accValid || !g.pinned {
		before, lvl := p.Live, p.Level
		if err := r.flush(r.next); err != nil {
			return err
		}
		g.pinned = true
		r.collect()
		g.lastGCs = r.eng.Stats().GCs
		p = r.eng.Pressure()
		g.note(2, "flush", lvl, before, p.Live, 0)
		if p.Level < dd.PressureHigh {
			return nil
		}
	}

	// Rung 3 (≥ high persists): one sifting pass to shrink the state
	// DD itself. Skipped while a combined block matrix is alive (it
	// would go stale against the new order), when sifting's own
	// intermediates would not fit the hard budget, and re-attempted at
	// most once per gate position.
	if g.lastSiftGate != r.applied && len(r.blockMats) == 0 && g.siftHeadroom() {
		g.lastSiftGate = r.applied
		before, lvl := p.Live, p.Level
		if err := r.governorSift(); err != nil {
			return err
		}
		p = r.eng.Pressure()
		g.note(3, "sift", lvl, before, p.Live, 0)
	}
	if p.Level < dd.PressureCritical {
		return nil
	}

	// Critical: ask for more headroom before degrading further. In a
	// batch, finished siblings' unused budget shares come back here.
	if r.opt.GrowBudget != nil {
		if nb := r.opt.GrowBudget(g.soft); nb > g.soft {
			before := p.Live
			g.grow(nb)
			p = r.eng.Pressure()
			g.note(0, "grow", dd.PressureCritical, before, p.Live, 0)
			if p.Level < dd.PressureCritical {
				return nil
			}
		}
	}

	// Rung 4 (critical, opt-in): fidelity-bounded approximation of the
	// state DD down to approxNodes.
	if g.mode == degradeApprox && g.lastApproxGate != r.applied {
		g.lastApproxGate = r.applied
		cut, err := g.approximate(&p)
		if err != nil {
			return err
		}
		if cut && p.Level < dd.PressureCritical {
			return nil
		}
	}
	if p.Level < dd.PressureCritical {
		return nil
	}

	// Rung 5: checkpoint-then-park. The run returns a typed pressure
	// failure from a consistent boundary; RunContext's abort-checkpoint
	// path writes the park checkpoint, and Retryable reports the error
	// as retryable so schedulers re-admit the job under a quieter
	// budget instead of losing it.
	g.note(5, "park", dd.PressureCritical, p.Live, p.Live, 0)
	return &RunError{Kind: FailurePressure, GateIndex: r.next, Err: ErrPressure}
}

// grow raises the soft budget (and the hard budget with it when one is
// armed — the ledger's grant is real headroom, not a reinterpretation
// of the existing cap).
func (g *governor) grow(nb int) {
	r := g.r
	g.soft = nb
	if r.opt.MaxNodes > 0 && nb > r.opt.MaxNodes {
		r.opt.MaxNodes = nb
		r.eng.SetBudget(nb)
	}
	r.eng.SetSoftBudget(nb, r.opt.PressureWatermarks)
}

// siftHeadroom mirrors maybeReorder's guard: sifting under a nearly
// exhausted hard budget would spend the remaining headroom on
// intermediate diagrams and abort the run over a remedy.
func (g *governor) siftHeadroom() bool {
	r := g.r
	if r.opt.MaxNodes <= 0 {
		return true
	}
	return (r.eng.VNodeCount()+r.eng.MNodeCount())*2 <= r.opt.MaxNodes
}

// governorSift runs one sifting pass unconditionally (unlike
// maybeReorder it is not gated on Options.Reorder — under pressure the
// governor may shrink the state even in fixed-order runs). The order,
// position map and sift baseline are updated exactly as maybeReorder
// does, so a subsequent Reorder "sifting" trigger stays consistent.
func (r *runner) governorSift() error {
	order := r.order
	if order == nil {
		order = dd.IdentityOrder(r.c.NQubits)
	} else {
		order = append([]int(nil), order...)
	}
	var (
		sifted dd.VEdge
		sres   dd.SiftResult
	)
	if err := r.guard(r.next, func() {
		sifted, sres = r.eng.SiftV(r.v, order, r.siftMaxSwaps())
	}); err != nil {
		return err
	}
	r.v = sifted
	r.order = order
	r.buildPos()
	r.stateSz = sres.After
	r.siftBase = sres.After
	r.collect()
	if r.obs != nil {
		r.obs.reorderEv(r.applied, sres)
	}
	return nil
}

// approximate runs rung 4: cut the state DD down to g.approxNodes,
// multiplying the cut's fidelity into the cumulative bound. Reports
// whether a cut happened; a state already at or under the target, or
// one the engine refuses to cut (it would collapse), falls through to
// the next rung without an error.
func (g *governor) approximate(p *dd.PressureInfo) (bool, error) {
	r := g.r
	if r.stateSz < 0 {
		if err := r.guard(r.next, func() { r.stateSz = r.eng.SizeV(r.v) }); err != nil {
			return false, err
		}
	}
	if r.stateSz <= g.approxNodes {
		return false, nil // the state is not what fills the budget
	}
	before := p.Live
	var (
		ar   dd.ApproxResult
		aerr error
	)
	if err := r.guard(r.next, func() {
		ar, aerr = r.eng.Approximate(r.v, g.approxNodes)
	}); err != nil {
		return false, err
	}
	if aerr != nil {
		// Unusable cut (e.g. the state would collapse to zero): stay
		// exact and let the next rung decide.
		return false, nil
	}
	r.v = ar.State
	r.stateSz = -1
	g.fidelity *= ar.Fidelity
	r.collect()
	*p = r.eng.Pressure()
	g.note(4, "approx", dd.PressureCritical, before, p.Live, ar.Fidelity)
	return true, nil
}

// note journals one ladder action and forwards it to the event stream
// and the caller's pressure hook.
func (g *governor) note(rung int, action string, level dd.PressureLevel, before, after int, fid float64) {
	d := Degradation{
		GateIndex:  g.r.applied,
		Rung:       rung,
		Action:     action,
		Level:      level.String(),
		LiveBefore: before,
		LiveAfter:  after,
		Fidelity:   fid,
	}
	g.journal = append(g.journal, d)
	if g.r.obs != nil {
		g.r.obs.pressureEv(g.r.next, d)
	}
	if g.r.opt.OnPressure != nil {
		g.r.opt.OnPressure(d)
	}
}
