package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/obs"
)

// BatchJob is one independent simulation in a batch: a circuit and its
// per-run options. Unless Options.Engine is set the job runs on a
// freshly created engine — engines are not goroutine-safe, so
// isolation between concurrent jobs is per-engine by construction. A
// caller-supplied engine must not be shared with any other job of the
// same batch (chaos tests use this to arm fault injection on exactly
// one worker's engine).
type BatchJob struct {
	Circuit *circuit.Circuit
	Options Options
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Workers bounds the number of simulations in flight; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// FailFast cancels the whole batch on the first job failure: running
	// siblings abort (FailureCanceled) and queued jobs are skipped with
	// ErrBatchSkipped. Off by default — one aborted job must not kill
	// its siblings.
	FailFast bool
	// MaxNodes is a shared live-node budget divided evenly across the
	// in-flight workers (shared-nothing split: each concurrent job gets
	// MaxNodes/Workers). A job whose own Options.MaxNodes is tighter
	// keeps it. Zero means unlimited.
	//
	// The split is also tracked in a batch-wide ledger: when a job
	// finishes, its unused share returns to the ledger, and a straggler
	// whose memory-pressure governor reaches critical occupancy is
	// granted that headroom through Options.GrowBudget instead of
	// degrading further (jobs with their own GrowBudget keep it).
	MaxNodes int
	// Metrics, when set, receives the pool's per-worker instruments
	// (batch_jobs_*_total{worker=...}, queue-wait histogram, in-flight
	// gauge, per-worker peak-node gauges) and — for jobs that do not
	// carry their own registry — the per-run telemetry too.
	Metrics *obs.Registry
	// Events, when set, receives every job's event stream. The sink is
	// wrapped in one obs.SyncSink, so events arrive whole but streams of
	// concurrent jobs interleave.
	Events obs.Sink
}

// ErrBatchSkipped marks a job that never ran because the batch aborted
// first (parent context cancelled, or a sibling failed under
// FailFast). Match with errors.Is.
var ErrBatchSkipped = batch.ErrSkipped

// BatchResult is one job's outcome. Exactly one Result per job is
// returned, in job order.
type BatchResult struct {
	// Result is the simulation outcome — partial for aborted runs, nil
	// only for jobs that never started (Err wraps ErrBatchSkipped) or
	// failed option validation.
	Result *Result
	// Err is the job's *RunError (or validation error); nil on success.
	Err error
	// Worker is the pool worker that ran the job (-1 if skipped).
	Worker int
	// QueueWait is how long the job waited for a free worker.
	QueueWait time.Duration
}

// RunBatch executes the jobs concurrently on a bounded worker pool,
// one freshly created engine per job, and returns their results in job
// order. Per-job failures (deadline, budget, panic, …) are recorded in
// the matching BatchResult and never kill the batch unless FailFast is
// set; cancelling ctx aborts every running job cooperatively. RunBatch
// itself errors only on invalid configuration (nil circuit, nil job).
func RunBatch(ctx context.Context, jobs []BatchJob, opt BatchOptions) ([]BatchResult, error) {
	for i, j := range jobs {
		if j.Circuit == nil {
			return nil, fmt.Errorf("core: batch job %d: nil circuit", i)
		}
	}
	workers := batch.Options{Workers: opt.Workers}.EffectiveWorkers(len(jobs))
	perJobBudget := 0
	if opt.MaxNodes > 0 && workers > 0 {
		perJobBudget = opt.MaxNodes / workers
		if perJobBudget < 1 {
			perJobBudget = 1
		}
	}
	var events obs.Sink
	if opt.Events != nil {
		events = obs.NewSyncSink(opt.Events)
	}
	peaks := newWorkerPeaks(opt.Metrics, workers)
	var ledger *budgetLedger
	if perJobBudget > 0 {
		ledger = &budgetLedger{free: opt.MaxNodes}
	}

	pjobs := make([]batch.Job[*Result], len(jobs))
	for i := range jobs {
		i := i
		pjobs[i] = func(jctx context.Context, worker int) (*Result, error) {
			o := jobs[i].Options
			if o.Engine == nil {
				o.Engine = dd.New()
			}
			if perJobBudget > 0 && (o.MaxNodes == 0 || o.MaxNodes > perJobBudget) {
				o.MaxNodes = perJobBudget
			}
			if ledger != nil {
				lease := ledger.take(perJobBudget)
				defer func() { ledger.release(lease.held()) }()
				if o.GrowBudget == nil {
					o.GrowBudget = lease.grow
				}
			}
			if o.Metrics == nil {
				o.Metrics = opt.Metrics
			}
			if events != nil {
				if o.EventSink != nil {
					o.EventSink = obs.MultiSink{o.EventSink, events}
				} else {
					o.EventSink = events
				}
			}
			if peaks != nil {
				cap := &peakCapture{}
				if o.EventSink != nil {
					o.EventSink = obs.MultiSink{o.EventSink, cap}
				} else {
					o.EventSink = cap
				}
				defer func() { peaks.note(worker, cap.peak) }()
			}
			return RunContext(jctx, jobs[i].Circuit, o)
		}
	}
	pres, err := batch.Run(ctx, pjobs, batch.Options{
		Workers:  opt.Workers,
		FailFast: opt.FailFast,
		Metrics:  opt.Metrics,
	})
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(pres))
	for i, pr := range pres {
		out[i] = BatchResult{
			Result:    pr.Value,
			Err:       pr.Err,
			Worker:    pr.Worker,
			QueueWait: pr.QueueWait,
		}
	}
	return out, nil
}

// budgetLedger rebalances the batch-wide node budget: every running
// job holds a lease on its share; finished jobs return theirs, and a
// straggler at critical pressure may grow its lease from the freed
// pool (Options.GrowBudget) instead of degrading further.
type budgetLedger struct {
	mu   sync.Mutex
	free int // unleased budget
}

// take opens a lease on the job's initial share. The pool never admits
// more than Workers concurrent jobs and the share is MaxNodes/Workers,
// so free cannot go negative while every lease is honoured.
func (l *budgetLedger) take(share int) *budgetLease {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.free -= share
	return &budgetLease{ledger: l, amount: share}
}

// release returns a finished lease to the pool.
func (l *budgetLedger) release(amount int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.free += amount
}

// budgetLease is one job's slice of the batch budget. grow matches the
// Options.GrowBudget contract: called on the job's goroutine with the
// current soft budget, it grants up to the smaller of the freed pool
// and the current budget (so one request at most doubles the lease,
// leaving headroom for sibling stragglers).
type budgetLease struct {
	ledger *budgetLedger
	mu     sync.Mutex
	amount int
}

func (l *budgetLease) grow(current int) int {
	l.ledger.mu.Lock()
	grant := l.ledger.free
	if grant > current {
		grant = current
	}
	if grant <= 0 {
		l.ledger.mu.Unlock()
		return current
	}
	l.ledger.free -= grant
	l.ledger.mu.Unlock()

	l.mu.Lock()
	l.amount += grant
	l.mu.Unlock()
	return current + grant
}

// held reports the lease's current size (initial share plus grants).
func (l *budgetLease) held() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.amount
}

// workerPeaks feeds the per-worker peak-node gauges from the run_end
// plumbing: every job's closing run_end event carries the run's peak
// live-node count; the gauge keeps the maximum its worker has seen.
type workerPeaks struct {
	gauges []*obs.Gauge
}

func newWorkerPeaks(r *obs.Registry, workers int) *workerPeaks {
	if r == nil {
		return nil
	}
	p := &workerPeaks{}
	for w := 0; w < workers; w++ {
		p.gauges = append(p.gauges, r.Gauge(
			obs.Label("batch_worker_peak_nodes", "worker", strconv.Itoa(w)),
			"Peak live DD nodes of any job run by this worker (from run_end)."))
	}
	return p
}

// note records a finished job's peak on its worker's gauge. Each
// worker runs jobs serially, so the read-modify-write is single-writer.
func (p *workerPeaks) note(worker, peak int) {
	if worker >= len(p.gauges) || peak <= 0 {
		return
	}
	if g := p.gauges[worker]; int64(peak) > g.Value() {
		g.Set(int64(peak))
	}
}

// peakCapture snatches PeakNodes off the job's run_end event.
type peakCapture struct{ peak int }

func (c *peakCapture) Emit(e obs.Event) {
	if e.Kind == obs.KindRunEnd && e.PeakNodes > c.peak {
		c.peak = e.PeakNodes
	}
}

// BatchFailed reports whether err is a real job failure rather than a
// skip marker — convenience for sweep-style callers that treat skipped
// and failed cells differently.
func BatchFailed(err error) bool {
	return err != nil && !errors.Is(err, ErrBatchSkipped)
}
