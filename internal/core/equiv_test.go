package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dd"
)

func TestEquivalentIdenticalCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(rng, 4, 30, false)
	res, err := Equivalent(nil, c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("circuit not equivalent to itself (overlap %v)", res.HSOverlap)
	}
	if cmplx.Abs(res.Phase-1) > 1e-6 {
		t.Fatalf("self-equivalence phase %v, want 1", res.Phase)
	}
}

func TestEquivalentUpToGlobalPhase(t *testing.T) {
	// RZ(θ) and P(θ) differ by the global phase e^{-iθ/2}.
	a := circuit.New(2)
	a.RZ(0.8, 0).CX(0, 1)
	b := circuit.New(2)
	b.P(0.8, 0).CX(0, 1)
	res, err := Equivalent(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("phase-equivalent circuits rejected (overlap %v)", res.HSOverlap)
	}
	want := cmplx.Exp(complex(0, -0.4))
	if cmplx.Abs(res.Phase-want) > 1e-6 {
		t.Fatalf("phase %v, want %v", res.Phase, want)
	}
}

func TestEquivalentRejectsDifferent(t *testing.T) {
	a := circuit.New(3)
	a.H(0).CX(0, 1)
	b := circuit.New(3)
	b.H(0).CX(0, 2)
	res, err := Equivalent(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("different circuits reported equivalent")
	}
	if res.HSOverlap >= 1-1e-6 {
		t.Fatalf("overlap %v too high for distinct circuits", res.HSOverlap)
	}
}

func TestEquivalentGateCommutation(t *testing.T) {
	// Gates on disjoint qubits commute: two orderings are equivalent.
	a := circuit.New(3)
	a.H(0).T(1).CX(1, 2)
	b := circuit.New(3)
	b.T(1).CX(1, 2).H(0)
	res, err := Equivalent(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("commuting reorder rejected (overlap %v)", res.HSOverlap)
	}
}

func TestIsIdentityCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomCircuit(rng, 4, 24, false)
	c.AppendCircuit(c.Inverse())
	ok, err := IsIdentityCircuit(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("circuit·inverse not recognised as identity")
	}
	c2 := circuit.New(2)
	c2.H(0)
	ok, err = IsIdentityCircuit(nil, c2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("H recognised as identity")
	}
}

func TestEquivalentErrors(t *testing.T) {
	if _, err := Equivalent(nil, nil, circuit.New(2)); err == nil {
		t.Fatal("nil circuit accepted")
	}
	if _, err := Equivalent(nil, circuit.New(2), circuit.New(3)); err == nil {
		t.Fatal("qubit mismatch accepted")
	}
}

func TestTraceOfGateMatrices(t *testing.T) {
	eng := dd.New()
	// tr(I_n) = 2^n.
	for n := 1; n <= 6; n++ {
		tr := eng.Trace(eng.Identity(n))
		if cmplx.Abs(tr-complex(math.Pow(2, float64(n)), 0)) > 1e-9 {
			t.Fatalf("tr(I_%d) = %v", n, tr)
		}
	}
	// tr(X ⊗ I) = 0; tr(T ⊗ I_2) = 4·(1 + e^{iπ/4})/... compute directly.
	x := eng.GateDD([2][2]complex128{{0, 1}, {1, 0}}, 3, 1, nil)
	if tr := eng.Trace(x); cmplx.Abs(tr) > 1e-9 {
		t.Fatalf("tr(X padded) = %v", tr)
	}
	tgate := eng.GateDD([2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}}, 3, 0, nil)
	want := complex(4, 0) * (1 + cmplx.Exp(complex(0, math.Pi/4)))
	if tr := eng.Trace(tgate); cmplx.Abs(tr-want) > 1e-9 {
		t.Fatalf("tr(T padded) = %v, want %v", tr, want)
	}
}

func TestAdaptiveStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(rng, 5, 60, false)
	res, err := Run(c, Options{Strategy: Adaptive{}})
	if err != nil {
		t.Fatal(err)
	}
	if f := fidelityWithDense(t, res, c); f < 1-1e-9 {
		t.Fatalf("adaptive fidelity %v", f)
	}
	// Adaptive must actually combine something on entangled workloads.
	if res.MatMatSteps == 0 {
		t.Fatal("adaptive never combined operations")
	}
	if (Adaptive{}).Name() != "adaptive(r=1)" {
		t.Fatalf("name %q", Adaptive{}.Name())
	}
	if (Adaptive{Ratio: 2.5}).Name() != "adaptive(r=2.5)" {
		t.Fatalf("name %q", (Adaptive{Ratio: 2.5}).Name())
	}
}

func TestCombineGatesTreeMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eng := dd.New()
	c := randomCircuit(rng, 4, 20, false)
	lin, err := CombineGates(eng, c, 0, c.GateCount())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := CombineGatesTree(eng, c, 0, c.GateCount())
	if err != nil {
		t.Fatal(err)
	}
	// The two folds compute the same unitary; hash-consing should even
	// make the diagrams structurally close, but compare semantically.
	lm := lin.ToMatrix()
	tm := tree.ToMatrix()
	for i := range lm {
		for j := range lm[i] {
			if cmplx.Abs(lm[i][j]-tm[i][j]) > 1e-8 {
				t.Fatalf("entry (%d,%d): %v vs %v", i, j, lm[i][j], tm[i][j])
			}
		}
	}
	if _, err := CombineGatesTree(eng, c, 3, 3); err == nil {
		t.Fatal("empty range accepted")
	}
}
