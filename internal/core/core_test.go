package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/gates"
)

// randomCircuit builds a seeded random circuit with single-qubit gates
// and controlled gates, optionally with a repeated block.
func randomCircuit(rng *rand.Rand, n, length int, withBlock bool) *circuit.Circuit {
	c := circuit.New(n)
	add := func(c *circuit.Circuit) {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.P(rng.Float64()*2*math.Pi, rng.Intn(n))
		case 3:
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			c.CX(a, b)
		case 4:
			c.SX(rng.Intn(n))
		default:
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			c.CP(rng.Float64()*math.Pi, a, b)
		}
	}
	for i := 0; i < length/2; i++ {
		add(c)
	}
	if withBlock && length >= 8 {
		// Deterministic body so repetitions match exactly.
		c.Repeat("blk", 3, func(c *circuit.Circuit) {
			c.H(0)
			c.CX(0, n-1)
			c.T(n - 1)
		})
	}
	for i := 0; i < length/2; i++ {
		add(c)
	}
	return c
}

func fidelityWithDense(t *testing.T, res *Result, c *circuit.Circuit) float64 {
	t.Helper()
	want := dense.Simulate(c)
	got := res.State.ToVector()
	var ip complex128
	for i := range got {
		ip += complex(real(want.Amps[i]), -imag(want.Amps[i])) * got[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

func TestAllStrategiesMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	strategies := []Strategy{
		Sequential{},
		KOperations{K: 2},
		KOperations{K: 4},
		KOperations{K: 16},
		MaxSize{SMax: 4},
		MaxSize{SMax: 64},
		CombineAll{},
	}
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(4)
		c := randomCircuit(rng, n, 40, trial%2 == 0)
		for _, st := range strategies {
			for _, useBlocks := range []bool{false, true} {
				res, err := Run(c, Options{Strategy: st, UseBlocks: useBlocks})
				if err != nil {
					t.Fatalf("%s blocks=%v: %v", st.Name(), useBlocks, err)
				}
				if f := fidelityWithDense(t, res, c); f < 1-1e-9 {
					t.Fatalf("%s blocks=%v: fidelity %v", st.Name(), useBlocks, f)
				}
				if math.Abs(res.State.Norm()-1) > 1e-9 {
					t.Fatalf("%s: norm %v", st.Name(), res.State.Norm())
				}
			}
		}
	}
}

func TestSequentialCounts(t *testing.T) {
	c := circuit.New(3)
	c.H(0).CX(0, 1).T(2).CCX(0, 1, 2).H(1)
	res, err := Run(c, Options{Strategy: Sequential{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatVecSteps != c.GateCount() {
		t.Fatalf("sequential matvec steps %d, want %d", res.MatVecSteps, c.GateCount())
	}
	if res.MatMatSteps != 0 {
		t.Fatalf("sequential matmat steps %d, want 0", res.MatMatSteps)
	}
}

func TestKOperationsCounts(t *testing.T) {
	c := circuit.New(3)
	for i := 0; i < 12; i++ {
		c.H(i % 3)
	}
	res, err := Run(c, Options{Strategy: KOperations{K: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// 12 gates in groups of 4: 3 matvec steps, 3*(4-1) = 9 matmat steps.
	if res.MatVecSteps != 3 {
		t.Fatalf("matvec steps %d, want 3", res.MatVecSteps)
	}
	if res.MatMatSteps != 9 {
		t.Fatalf("matmat steps %d, want 9", res.MatMatSteps)
	}
}

func TestKOperationsTrailingPartialGroup(t *testing.T) {
	c := circuit.New(2)
	for i := 0; i < 5; i++ {
		c.H(i % 2)
	}
	res, err := Run(c, Options{Strategy: KOperations{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Groups: 3 + 2 → 2 matvec steps, (2)+(1) = 3 matmat steps.
	if res.MatVecSteps != 2 || res.MatMatSteps != 3 {
		t.Fatalf("steps = (%d,%d), want (2,3)", res.MatVecSteps, res.MatMatSteps)
	}
}

func TestCombineAllSingleApply(t *testing.T) {
	c := circuit.New(3)
	for i := 0; i < 9; i++ {
		c.T(i % 3)
	}
	res, err := Run(c, Options{Strategy: CombineAll{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatVecSteps != 1 {
		t.Fatalf("combine-all matvec steps %d, want 1", res.MatVecSteps)
	}
	if res.MatMatSteps != 8 {
		t.Fatalf("combine-all matmat steps %d, want 8", res.MatMatSteps)
	}
}

func TestBlocksReuseMatrix(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.Repeat("iter", 5, func(c *circuit.Circuit) {
		c.CX(0, 1)
		c.T(1)
		c.CX(1, 2)
	})
	// With blocks: body (3 gates) combined once = 2 matmat, then 5 matvec
	// applications + 1 for the leading H.
	res, err := Run(c, Options{Strategy: Sequential{}, UseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatVecSteps != 6 {
		t.Fatalf("matvec steps %d, want 6", res.MatVecSteps)
	}
	if res.MatMatSteps != 2 {
		t.Fatalf("matmat steps %d, want 2 (body combined once)", res.MatMatSteps)
	}
	// Without blocks the same circuit costs 16 matvec steps.
	res2, err := Run(c, Options{Strategy: Sequential{}, UseBlocks: false})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MatVecSteps != 16 {
		t.Fatalf("matvec steps %d, want 16", res2.MatVecSteps)
	}
	// Both must agree with the dense oracle.
	if f := fidelityWithDense(t, res, c); f < 1-1e-9 {
		t.Fatalf("blocks run fidelity %v", f)
	}
}

func TestTraceRecording(t *testing.T) {
	c := circuit.New(2)
	c.H(0).CX(0, 1).T(1).H(1)
	res, err := Run(c, Options{Strategy: KOperations{K: 2}, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace length %d, want 2", len(res.Trace))
	}
	for _, tp := range res.Trace {
		if tp.OpSize <= 0 || tp.StateSize <= 0 || tp.Combined != 2 {
			t.Fatalf("bad trace point %+v", tp)
		}
	}
	if res.Trace[1].GateIndex != 4 {
		t.Fatalf("final trace gate index %d, want 4", res.Trace[1].GateIndex)
	}
}

func TestTraceBlocks(t *testing.T) {
	c := circuit.New(2)
	c.Repeat("r", 3, func(c *circuit.Circuit) { c.H(0); c.CX(0, 1) })
	res, err := Run(c, Options{Strategy: Sequential{}, UseBlocks: true, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 3 {
		t.Fatalf("trace length %d, want 3", len(res.Trace))
	}
	if res.Trace[0].BlockReuse || !res.Trace[1].BlockReuse || !res.Trace[2].BlockReuse {
		t.Fatalf("block reuse flags wrong: %+v", res.Trace)
	}
	for _, tp := range res.Trace {
		if !tp.FromBlock || tp.BlockName != "r" {
			t.Fatalf("block annotation missing: %+v", tp)
		}
	}
}

func TestGCDuringRun(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(rng, 6, 200, false)
	res, err := Run(c, Options{Strategy: KOperations{K: 4}, GCThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GCs == 0 {
		t.Fatal("expected at least one garbage collection")
	}
	if f := fidelityWithDense(t, res, c); f < 1-1e-9 {
		t.Fatalf("fidelity after GC runs: %v", f)
	}
}

func TestInitialStateOption(t *testing.T) {
	eng := dd.New()
	init := eng.BasisState(2, 3)
	c := circuit.New(2)
	c.X(0)
	res, err := Run(c, Options{Engine: eng, InitialState: &init})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.State.Amplitude(2); math.Abs(real(got)-1) > 1e-9 {
		t.Fatalf("X|11> amplitude at |10> = %v, want 1", got)
	}
	// Mismatched span must error.
	bad := eng.BasisState(3, 0)
	if _, err := Run(c, Options{Engine: eng, InitialState: &bad}); err == nil {
		t.Fatal("expected error for mismatched initial state")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("nil circuit accepted")
	}
	bad := circuit.New(2)
	bad.Gates = append(bad.Gates, circuit.Gate{Name: "bogus", Matrix: gates.Matrix{{2, 0}, {0, 1}}, Target: 0})
	if _, err := Run(bad, Options{}); err == nil {
		t.Fatal("non-unitary gate accepted")
	}
}

func TestCombineGates(t *testing.T) {
	eng := dd.New()
	c := circuit.New(2)
	c.H(0).CX(0, 1)
	m, err := CombineGates(eng, c, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Must equal CX·(H⊗I): applying it to |00> gives the Bell state.
	v := eng.MulVec(m, eng.ZeroState(2))
	w := complex(1/math.Sqrt2, 0)
	if got := v.Amplitude(0); math.Abs(real(got)-real(w)) > 1e-9 {
		t.Fatalf("Bell amplitude(00) = %v", got)
	}
	if got := v.Amplitude(3); math.Abs(real(got)-real(w)) > 1e-9 {
		t.Fatalf("Bell amplitude(11) = %v", got)
	}
	if _, err := CombineGates(eng, c, 1, 1); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := CombineGates(eng, c, 0, 5); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestFullMatrixOfEmptyCircuit(t *testing.T) {
	eng := dd.New()
	c := circuit.New(3)
	m, err := FullMatrix(eng, c)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != eng.Identity(3).N {
		t.Fatal("empty circuit matrix is not the identity")
	}
}

func TestStrategyNames(t *testing.T) {
	if (Sequential{}).Name() != "sequential" {
		t.Error("sequential name")
	}
	if (KOperations{K: 4}).Name() != "k-operations(k=4)" {
		t.Error("k-operations name")
	}
	if (MaxSize{SMax: 32}).Name() != "max-size(s=32)" {
		t.Error("max-size name")
	}
	if (CombineAll{}).Name() != "combine-all" {
		t.Error("combine-all name")
	}
}

// Nonsensical strategy parameters must be rejected at RunContext entry
// with a typed *ConfigError — before this check, KOperations{K: 0} and
// MaxSize{SMax: 0} ran but silently degenerated to sequential behaviour
// under a misleading Name().
func TestStrategyValidation(t *testing.T) {
	c := circuit.New(2)
	c.H(0).CX(0, 1)
	bad := []Strategy{
		KOperations{},
		KOperations{K: -3},
		MaxSize{},
		MaxSize{SMax: -1},
		Adaptive{Ratio: -0.5},
		&Planner{MaxWindow: -1},
		&Planner{FlushRatio: -1},
		&Planner{Growth: -2},
	}
	for _, st := range bad {
		res, err := Run(c, Options{Strategy: st})
		if err == nil {
			t.Fatalf("%T %+v: accepted", st, st)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%T %+v: error %v is not a *ConfigError", st, st, err)
		}
		if res != nil {
			t.Fatalf("%T: configuration error must not produce a partial result", st)
		}
	}
	good := []Strategy{
		KOperations{K: 1},
		MaxSize{SMax: 1},
		Adaptive{},
		&Planner{},
		Sequential{},
		CombineAll{},
	}
	for _, st := range good {
		if _, err := Run(c, Options{Strategy: st}); err != nil {
			t.Fatalf("%s: %v", st.Name(), err)
		}
	}
}

// NewStrategy is the shared table behind the ddsim flags and the
// ddserve decoder: zero knobs select defaults, negatives are typed
// errors, unknown names enumerate the accepted set.
func TestNewStrategy(t *testing.T) {
	cases := []struct {
		name string
		kn   StrategyKnobs
		want string
	}{
		{"sequential", StrategyKnobs{}, "sequential"},
		{"k-operations", StrategyKnobs{}, "k-operations(k=4)"},
		{"k-operations", StrategyKnobs{K: 7}, "k-operations(k=7)"},
		{"max-size", StrategyKnobs{}, "max-size(s=128)"},
		{"adaptive", StrategyKnobs{Ratio: 2}, "adaptive(r=2)"},
		{"planner", StrategyKnobs{}, "planner(w=1024,r=1,g=2)"},
		{"planner", StrategyKnobs{Window: 16, Ratio: 0.5, Growth: 4}, "planner(w=16,r=0.5,g=4)"},
		{"combine-all", StrategyKnobs{}, "combine-all"},
	}
	for _, tc := range cases {
		st, err := NewStrategy(tc.name, tc.kn)
		if err != nil {
			t.Fatalf("%s %+v: %v", tc.name, tc.kn, err)
		}
		if st.Name() != tc.want {
			t.Fatalf("%s %+v: name %q, want %q", tc.name, tc.kn, st.Name(), tc.want)
		}
	}
	var ce *ConfigError
	if _, err := NewStrategy("nope", StrategyKnobs{}); !errors.As(err, &ce) {
		t.Fatalf("unknown name: %v", err)
	}
	if _, err := NewStrategy("k-operations", StrategyKnobs{K: -1}); !errors.As(err, &ce) {
		t.Fatalf("negative k: %v", err)
	}
	if _, err := NewStrategy("planner", StrategyKnobs{Window: -4}); !errors.As(err, &ce) {
		t.Fatalf("negative window: %v", err)
	}
	// Every canonical selector must construct with default knobs and
	// survive the checkpoint name round-trip.
	for _, name := range StrategyNames() {
		st, err := NewStrategy(name, StrategyKnobs{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := StrategyFromName(st.Name())
		if err != nil {
			t.Fatalf("%s: StrategyFromName(%q): %v", name, st.Name(), err)
		}
		if back.Name() != st.Name() {
			t.Fatalf("%s: round trip %q -> %q", name, st.Name(), back.Name())
		}
	}
}

// Property: for any k and s_max, results are identical to sequential.
func TestStrategyEquivalenceSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := randomCircuit(rng, 4, 30, false)
	ref, err := Run(c, Options{Strategy: Sequential{}})
	if err != nil {
		t.Fatal(err)
	}
	refVec := ref.State.ToVector()
	for k := 1; k <= 32; k *= 2 {
		res, err := Run(c, Options{Strategy: KOperations{K: k}})
		if err != nil {
			t.Fatal(err)
		}
		vec := res.State.ToVector()
		for i := range vec {
			if d := vec[i] - refVec[i]; math.Abs(real(d)) > 1e-8 || math.Abs(imag(d)) > 1e-8 {
				t.Fatalf("k=%d: amplitude %d differs: %v vs %v", k, i, vec[i], refVec[i])
			}
		}
	}
	for s := 1; s <= 1024; s *= 4 {
		res, err := Run(c, Options{Strategy: MaxSize{SMax: s}})
		if err != nil {
			t.Fatal(err)
		}
		vec := res.State.ToVector()
		for i := range vec {
			if d := vec[i] - refVec[i]; math.Abs(real(d)) > 1e-8 || math.Abs(imag(d)) > 1e-8 {
				t.Fatalf("s=%d: amplitude %d differs", s, i)
			}
		}
	}
}

func TestDeadlineExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng, 6, 500, false)
	_, err := Run(c, Options{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	// A generous deadline must not interfere.
	res, err := Run(c, Options{Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if f := fidelityWithDense(t, res, c); f < 1-1e-9 {
		t.Fatalf("fidelity %v", f)
	}
}

func TestDeadlineAbortsMidMultiplication(t *testing.T) {
	// combine-all on a deep random circuit grows enormous operation
	// DDs; the engine-level deadline must abort from inside the
	// multiplication, not only between gates.
	rng := rand.New(rand.NewSource(9))
	c := randomCircuit(rng, 14, 400, false)
	eng := dd.New()
	start := time.Now()
	_, err := Run(c, Options{Strategy: CombineAll{}, Engine: eng, Deadline: time.Now().Add(150 * time.Millisecond)})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}
	// The engine must stay usable after an abort.
	small := circuit.New(2)
	small.H(0).CX(0, 1)
	res, err := Run(small, Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.State.Norm()-1) > 1e-9 {
		t.Fatal("engine unusable after abort")
	}
}
