package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dd"
)

// The identity experiment measures the identity-aware multiplication
// kernels directly: every workload×strategy cell runs twice on fresh
// engines — once with the identity short-circuits disabled
// (core.Options.DisableIdentitySkip) and once with them on — and
// reports the MulRecursions and wall-time deltas. The paper's
// combination strategies build accumulated operation matrices that are
// mostly identity structure, so the interesting comparison is
// sequential (where only gate padding is identity) against
// k-operations / max-size / DD-repeating (where the accumulated and
// repeated matrices are).

// IdentityRow is one workload×strategy cell of the identity sweep.
type IdentityRow struct {
	Workload string
	Strategy string

	// SecondsOff/On are the wall times without and with the identity
	// short-circuits; MulRecursionsOff/On the kernel recursion counts.
	SecondsOff float64
	SecondsOn  float64
	MarkOff    string
	MarkOn     string

	MulRecursionsOff uint64
	MulRecursionsOn  uint64
	// IdentitySkips and IdentitySkipLevels are taken from the "on" run:
	// short-circuits hit and recursion levels avoided.
	IdentitySkips      uint64
	IdentitySkipLevels uint64
}

// RecursionRatio returns MulRecursionsOn/MulRecursionsOff (1 when the
// off run did not recurse).
func (r IdentityRow) RecursionRatio() float64 {
	if r.MulRecursionsOff == 0 {
		return 1
	}
	return float64(r.MulRecursionsOn) / float64(r.MulRecursionsOff)
}

// identityStrategies are the strategy columns of the identity sweep:
// the sequential baseline, both combination families, and Grover's
// DD-repeating combined-operator case.
type identityStrategy struct {
	name      string
	strategy  core.Strategy
	useBlocks bool
}

func identityStrategies() []identityStrategy {
	return []identityStrategy{
		{name: "sequential", strategy: core.Sequential{}},
		{name: "k-operations (k=4)", strategy: core.KOperations{K: 4}},
		{name: "max-size (s=128)", strategy: core.MaxSize{SMax: 128}},
		{name: "DD-repeating", strategy: core.Sequential{}, useBlocks: true},
	}
}

// IdentitySweep runs the before/after comparison over the Grover and
// QFT workloads (two of the paper's benchmark families with very
// different DD profiles: Grover's combined operator is dense below the
// oracle, QFT's controlled phases are nearly diagonal).
func IdentitySweep(cfg Config) ([]IdentityRow, error) {
	ws := []Workload{
		GroverWorkload(14),
		QFTWorkload(16),
	}
	var rows []IdentityRow
	for _, w := range ws {
		for _, is := range identityStrategies() {
			row := IdentityRow{Workload: w.Name, Strategy: is.name}
			for _, disable := range []bool{true, false} {
				secs, stats, mark, err := identityCell(w, is, disable, cfg)
				if err != nil {
					return nil, err
				}
				if disable {
					row.SecondsOff, row.MarkOff = secs, mark
					row.MulRecursionsOff = stats.MulRecursions
				} else {
					row.SecondsOn, row.MarkOn = secs, mark
					row.MulRecursionsOn = stats.MulRecursions
					row.IdentitySkips = stats.IdentitySkipsMV + stats.IdentitySkipsMM
					row.IdentitySkipLevels = stats.IdentitySkipLevels
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// identityCell times one configuration on a fresh engine; reps > 1 keep
// the fastest wall time (the counters are deterministic, so any rep's
// snapshot reports them).
func identityCell(w Workload, is identityStrategy, disable bool, cfg Config) (float64, dd.Stats, string, error) {
	best := 0.0
	var stats dd.Stats
	for rep := 0; rep < cfg.reps(); rep++ {
		e := dd.New()
		opt := core.Options{
			Strategy:            is.strategy,
			UseBlocks:           is.useBlocks,
			Engine:              e,
			MaxNodes:            cfg.MaxNodes,
			DisableIdentitySkip: disable,
			Metrics:             cfg.Metrics,
		}
		if cfg.Budget > 0 {
			opt.Deadline = time.Now().Add(cfg.Budget)
		}
		start := time.Now()
		err := w.Run(opt)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			switch {
			case errors.Is(err, core.ErrDeadlineExceeded):
				return elapsed, e.Stats(), "timeout", nil
			case errors.Is(err, core.ErrBudgetExceeded):
				return elapsed, e.Stats(), "oom", nil
			}
			return 0, dd.Stats{}, "", fmt.Errorf("bench: identity: %s/%s: %w", w.Name, is.name, err)
		}
		if rep == 0 || elapsed < best {
			best = elapsed
		}
		stats = e.Stats()
	}
	return best, stats, "", nil
}

// RenderIdentity renders the before/after table.
func RenderIdentity(rows []IdentityRow) string {
	var sb strings.Builder
	sb.WriteString("Identity-aware kernels: multiplication recursions and wall time with the\n")
	sb.WriteString("identity short-circuits off vs. on (same circuits, same strategies; results\n")
	sb.WriteString("are pointer-identical either way — only the work to reach them changes)\n\n")
	fmt.Fprintf(&sb, "%-10s %-18s %14s %14s %6s %10s %10s %7s %12s\n",
		"Benchmark", "Strategy", "mul-rec off", "mul-rec on", "ratio",
		"t-off", "t-on", "dt", "id-skips")
	for _, r := range rows {
		off, on := fmtCellSeconds(r.SecondsOff, r.MarkOff), fmtCellSeconds(r.SecondsOn, r.MarkOn)
		dt := "-"
		if r.MarkOff == "" && r.MarkOn == "" && r.SecondsOff > 0 {
			dt = fmt.Sprintf("%+.0f%%", 100*(r.SecondsOn-r.SecondsOff)/r.SecondsOff)
		}
		fmt.Fprintf(&sb, "%-10s %-18s %14d %14d %6.2f %10s %10s %7s %12d\n",
			r.Workload, r.Strategy, r.MulRecursionsOff, r.MulRecursionsOn,
			r.RecursionRatio(), off, on, dt, r.IdentitySkips)
	}
	return sb.String()
}

func fmtCellSeconds(s float64, mark string) string {
	if mark != "" {
		return mark
	}
	return fmt.Sprintf("%.3fs", s)
}

// IdentityCSV renders the sweep as CSV.
func IdentityCSV(rows []IdentityRow) string {
	var sb strings.Builder
	sb.WriteString("workload,strategy,seconds_off,seconds_on,mark_off,mark_on," +
		"mul_recursions_off,mul_recursions_on,recursion_ratio," +
		"identity_skips,identity_skip_levels\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s,%s,%d,%d,%s,%d,%d\n",
			csvEscape(r.Workload), csvEscape(r.Strategy),
			csvFloat(r.SecondsOff), csvFloat(r.SecondsOn),
			r.MarkOff, r.MarkOn,
			r.MulRecursionsOff, r.MulRecursionsOn, csvFloat(r.RecursionRatio()),
			r.IdentitySkips, r.IdentitySkipLevels)
	}
	return sb.String()
}
