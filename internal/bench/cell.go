package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
)

// CellMetrics is the per-cell observability snapshot an experiment
// carries alongside its timing: the run totals harvested from the
// run's closing run_end event (see internal/obs). Aborted cells
// (timeout / oom) still carry the partial run's totals, which is
// exactly what explains *why* the cell failed.
type CellMetrics struct {
	// Valid reports whether a run_end event was captured; runs that
	// fail before the simulation starts (config errors) have none.
	Valid   bool
	Seconds float64

	MatVecMuls uint64
	MatMatMuls uint64
	// MulRecursions counts multiplication-kernel recursion steps;
	// IdentitySkipsMV/MM the identity short-circuits taken inside them.
	// Their ratio is the identity-aware kernels' effect per cell.
	MulRecursions   uint64
	IdentitySkipsMV uint64
	IdentitySkipsMM uint64
	CacheLookups    uint64
	CacheHits       uint64
	NodesCreated    uint64

	GCs            uint64
	GCPauseSeconds float64

	PeakNodes  int
	Fallbacks  int
	StateNodes int // final state DD size

	// Degradations counts the memory-pressure governor's ladder actions
	// during the run; FidelityBound is the run's cumulative fidelity
	// lower bound (0 for runs the governor never touched).
	Degradations  int
	FidelityBound float64

	// Abort is the failure kind of an aborted run ("" for clean runs).
	Abort string
}

// CacheHitRate returns hits/lookups, NaN when the caches were never
// consulted — renderers must show "-" or an empty cell, not 0%.
func (c CellMetrics) CacheHitRate() float64 {
	if c.CacheLookups == 0 {
		return math.NaN()
	}
	return float64(c.CacheHits) / float64(c.CacheLookups)
}

// runEndCapture is the sink the harness attaches to every measured
// run: it keeps the last run_end event (multi-run workloads such as
// shor's semiclassical loop emit several; the final one carries the
// totals of the run that produced the cell's outcome).
type runEndCapture struct {
	ev obs.Event
	ok bool
}

func (s *runEndCapture) Emit(e obs.Event) {
	if e.Kind == obs.KindRunEnd {
		s.ev, s.ok = e, true
	}
}

// cell converts the captured run_end into a CellMetrics.
func (s *runEndCapture) cell(seconds float64) CellMetrics {
	if !s.ok {
		return CellMetrics{Seconds: seconds}
	}
	e := s.ev
	return CellMetrics{
		Valid:           true,
		Seconds:         seconds,
		MatVecMuls:      e.MatVecMuls,
		MatMatMuls:      e.MatMatMuls,
		MulRecursions:   e.MulRecursions,
		IdentitySkipsMV: e.IdentitySkipsMV,
		IdentitySkipsMM: e.IdentitySkipsMM,
		CacheLookups:    e.CacheLookups,
		CacheHits:       e.CacheHits,
		NodesCreated:    e.NodesCreated,
		GCs:             e.GCs,
		GCPauseSeconds:  float64(e.GCPauseNS) / 1e9,
		PeakNodes:       e.PeakNodes,
		Fallbacks:       e.Fallbacks,
		StateNodes:      e.StateNodes,
		Degradations:    e.Degradations,
		FidelityBound:   e.FidelityBound,
		Abort:           e.Abort,
	}
}

// metricsCSVHeader is the long-format per-cell telemetry schema shared
// by the sweep experiments.
const metricsCSVHeader = "workload,param,seconds,mark," +
	"matvec_muls,matmat_muls,mul_recursions,identity_skips_mv,identity_skips_mm," +
	"cache_lookups,cache_hits,cache_hit_rate," +
	"nodes_created,gcs,gc_pause_seconds,peak_nodes,fallbacks,state_nodes," +
	"degradations,fidelity_bound\n"

func appendMetricsRow(sb *strings.Builder, workload, param, mark string, c CellMetrics) {
	if !c.Valid {
		return
	}
	rate := ""
	if hr := c.CacheHitRate(); !math.IsNaN(hr) {
		rate = fmt.Sprintf("%.4f", hr)
	}
	bound := ""
	if c.FidelityBound > 0 {
		bound = fmt.Sprintf("%.6g", c.FidelityBound)
	}
	fmt.Fprintf(sb, "%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%s,%d,%d,%d,%d,%s\n",
		csvEscape(workload), csvEscape(param), csvFloat(c.Seconds), mark,
		c.MatVecMuls, c.MatMatMuls, c.MulRecursions, c.IdentitySkipsMV, c.IdentitySkipsMM,
		c.CacheLookups, c.CacheHits, rate,
		c.NodesCreated, c.GCs, csvFloat(c.GCPauseSeconds),
		c.PeakNodes, c.Fallbacks, c.StateNodes,
		c.Degradations, bound)
}

// MetricsCSV renders the sweep's per-cell telemetry in long format —
// one row per measured cell, baseline rows first (param "baseline").
// Returns "" for results recorded before cell metrics existed.
func (r *SweepResult) MetricsCSV() string {
	if r.Cells == nil && r.BaselineCells == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(metricsCSVHeader)
	for wi, name := range r.Names {
		if wi < len(r.BaselineCells) {
			appendMetricsRow(&sb, name, "baseline", r.baselineMark(wi), r.BaselineCells[wi])
		}
		if wi >= len(r.Cells) {
			continue
		}
		for pi, p := range r.Params {
			if pi < len(r.Cells[wi]) {
				appendMetricsRow(&sb, name, fmt.Sprintf("%d", p), r.mark(wi, pi), r.Cells[wi][pi])
			}
		}
	}
	return sb.String()
}
