package bench

import (
	"fmt"
	"math"
	"strings"
)

// CSV renders a sweep as comma-separated values (one row per parameter)
// — the raw data behind the paper's figures, ready for external
// plotting. Failed cells carry their mark ("timeout", "oom", "error");
// results without mark data leave them empty.
func (r *SweepResult) CSV() string {
	var sb strings.Builder
	sb.WriteString(csvEscape(r.Param))
	for _, name := range r.Names {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(name))
	}
	sb.WriteString(",average\n")

	sb.WriteString("baseline_seconds")
	for wi, b := range r.Baseline {
		sb.WriteByte(',')
		if m := r.baselineMark(wi); m != "" {
			sb.WriteString(m)
		} else {
			sb.WriteString(csvFloat(b))
		}
	}
	sb.WriteString(",\n")

	for pi, p := range r.Params {
		fmt.Fprintf(&sb, "%d", p)
		for wi := range r.Names {
			sb.WriteByte(',')
			if m := r.mark(wi, pi); m != "" {
				sb.WriteString(m)
			} else {
				sb.WriteString(csvFloat(r.Speedups[wi][pi]))
			}
		}
		sb.WriteByte(',')
		sb.WriteString(csvFloat(r.Average[pi]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Table1CSV renders Table I rows as CSV; failed cells carry their mark.
func Table1CSV(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("benchmark,t_sota,t_general,t_dd_repeating,best_general\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s\n",
			csvEscape(r.Name),
			csvCell(r.TSota, r.SotaMark),
			csvCell(r.TGeneral, r.GeneralMark),
			csvCell(r.TRepeating, r.RepeatingMark),
			csvEscape(r.GeneralName))
	}
	return sb.String()
}

// Table2CSV renders Table II rows as CSV; timed-out cells carry the
// budget prefixed with ">", other failures their mark.
func Table2CSV(rows []Table2Row, budget float64) string {
	var sb strings.Builder
	sb.WriteString("benchmark,qubits_gate,t_sota,t_general,t_dd_construct,qubits_construct,best_general\n")
	for _, r := range rows {
		sota := csvFloat(r.TSota)
		switch {
		case r.SotaTimeout:
			sota = fmt.Sprintf(">%g", budget)
		case r.SotaMark != "":
			sota = r.SotaMark
		}
		general := csvFloat(r.TGeneral)
		name := r.GeneralName
		if r.GeneralTimeout {
			general = fmt.Sprintf(">%g", budget)
			if r.GeneralMark != "" && r.GeneralMark != "timeout" {
				general = r.GeneralMark
			}
			name = ""
		}
		fmt.Fprintf(&sb, "%s,%d,%s,%s,%s,%d,%s\n",
			csvEscape(r.Name), r.QubitsGate, sota, general,
			csvFloat(r.TConstruct), r.QubitsConstruct, csvEscape(name))
	}
	return sb.String()
}

// csvCell renders a time cell, preferring the failure mark.
func csvCell(v float64, mark string) string {
	if mark != "" {
		return mark
	}
	return csvFloat(v)
}

// TraceCSV renders the Fig. 5 size traces as CSV (long format: one row
// per applied operation with its scheme).
func TraceCSV(r *TraceResult) string {
	var sb strings.Builder
	sb.WriteString("scheme,gate_index,op_nodes,state_nodes,combined\n")
	for _, tp := range r.Seq {
		fmt.Fprintf(&sb, "sequential,%d,%d,%d,%d\n", tp.GateIndex, tp.OpSize, tp.StateSize, tp.Combined)
	}
	for _, tp := range r.Combined {
		fmt.Fprintf(&sb, "combined,%d,%d,%d,%d\n", tp.GateIndex, tp.OpSize, tp.StateSize, tp.Combined)
	}
	return sb.String()
}

func csvFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ""
	}
	return fmt.Sprintf("%g", v)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
