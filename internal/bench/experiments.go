package bench

import (
	"context"
	"math"
	"math/rand"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shor"
	"repro/internal/supremacy"
)

// newSeededRand returns the deterministic randomness source used for
// measurement outcomes in benchmark runs.
func newSeededRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

// --- Fig. 8 / Fig. 9: parameter sweeps ---------------------------------

// SweepResult holds a speed-up sweep: for each workload a speed-up per
// parameter value (t_sequential / t_strategy), plus the per-parameter
// geometric-mean average line the paper plots.
type SweepResult struct {
	Title    string
	Param    string // "k" or "s_max"
	Params   []int
	Names    []string    // workload names
	Baseline []float64   // sequential seconds per workload
	Speedups [][]float64 // [workload][param]; NaN marks a timeout/oom/error
	Average  []float64   // geometric mean per param over valid entries
	// Marks records why a cell is NaN ("timeout", "oom", "error"; "" for
	// clean cells). BaselineMark does the same for the baseline column.
	// Both may be nil on results built before marks existed.
	Marks        [][]string
	BaselineMark []string
	// Cells and BaselineCells carry per-cell run telemetry (same layout
	// as Speedups / Baseline); rendered by MetricsCSV. Nil on results
	// built before cell metrics existed.
	Cells         [][]CellMetrics
	BaselineCells []CellMetrics
}

// mark returns the cell mark, tolerating results without mark data.
func (r *SweepResult) mark(wi, pi int) string {
	if r.Marks == nil || wi >= len(r.Marks) || pi >= len(r.Marks[wi]) {
		return ""
	}
	return r.Marks[wi][pi]
}

func (r *SweepResult) baselineMark(wi int) string {
	if wi >= len(r.BaselineMark) {
		return ""
	}
	return r.BaselineMark[wi]
}

// Fig8Params are the k values swept for strategy k-operations.
var Fig8Params = []int{2, 4, 8, 16, 32, 64, 128}

// Fig9Params are the s_max values swept for strategy max-size.
var Fig9Params = []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Fig8 reproduces the k-operations sweep.
func Fig8(cfg Config) (*SweepResult, error) {
	return sweep(cfg, "Fig. 8: speed-up of strategy k-operations vs. sequential", "k",
		Fig8Params, func(p int) core.Strategy { return core.KOperations{K: p} }, FigWorkloads(cfg.Full))
}

// Fig9 reproduces the max-size sweep.
func Fig9(cfg Config) (*SweepResult, error) {
	return sweep(cfg, "Fig. 9: speed-up of strategy max-size vs. sequential", "s_max",
		Fig9Params, func(p int) core.Strategy { return core.MaxSize{SMax: p} }, FigWorkloads(cfg.Full))
}

func sweep(cfg Config, title, param string, params []int, mk func(int) core.Strategy, ws []Workload) (*SweepResult, error) {
	res := &SweepResult{Title: title, Param: param, Params: params}
	// Every cell — the sequential baselines included — is an independent
	// measurement on its own fresh engine; the speed-up arithmetic runs
	// afterwards, so the cells can execute in any order and runCells may
	// fan them out across a worker pool (cfg.Parallel). Cell index
	// layout: workload wi owns the contiguous block starting at
	// wi*(1+len(params)), baseline first, then one cell per parameter.
	stride := 1 + len(params)
	strategyFor := func(i int) core.Strategy {
		if i%stride == 0 {
			return core.Sequential{}
		}
		return mk(params[i%stride-1])
	}
	ms, err := runCells(cfg, stride*len(ws), func(i int, cfg Config) Measurement {
		return Time(ws[i/stride], core.Options{Strategy: strategyFor(i)}, cfg)
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		base := ms[wi*stride]
		res.Names = append(res.Names, w.Name)
		res.BaselineMark = append(res.BaselineMark, base.Mark())
		baseSec := base.Seconds
		if base.Mark() != "" {
			baseSec = math.NaN()
		}
		res.Baseline = append(res.Baseline, baseSec)
		res.BaselineCells = append(res.BaselineCells, base.Cell)
		row := make([]float64, len(params))
		marks := make([]string, len(params))
		cells := make([]CellMetrics, len(params))
		for i := range params {
			m := ms[wi*stride+1+i]
			marks[i] = m.Mark()
			cells[i] = m.Cell
			if m.Mark() != "" || base.Mark() != "" {
				row[i] = math.NaN()
			} else {
				row[i] = base.Seconds / m.Seconds
			}
		}
		res.Speedups = append(res.Speedups, row)
		res.Marks = append(res.Marks, marks)
		res.Cells = append(res.Cells, cells)
	}
	res.Average = make([]float64, len(params))
	for i := range params {
		prod, n := 1.0, 0
		for _, row := range res.Speedups {
			if !math.IsNaN(row[i]) {
				prod *= row[i]
				n++
			}
		}
		if n == 0 {
			res.Average[i] = math.NaN()
		} else {
			res.Average[i] = math.Pow(prod, 1/float64(n))
		}
	}
	return res, nil
}

// runCells executes n independent cell measurements: in index order
// when cfg.Parallel <= 1, otherwise through a bounded worker pool
// (internal/batch). Results always come back in cell order, so the
// rendered tables and CSV are identical either way — marks and node
// counts exactly, timings modulo machine load. cfg.MaxNodes stays a
// per-run budget (each cell simulates on its own fresh engine), so
// oom marks do not depend on the worker count. Shared sinks are
// serialised for the parallel path; the shared metrics registry is
// already safe for concurrent runs.
func runCells(cfg Config, n int, measure func(i int, cfg Config) Measurement) ([]Measurement, error) {
	if cfg.Parallel <= 1 {
		out := make([]Measurement, n)
		for i := range out {
			out[i] = measure(i, cfg)
		}
		return out, nil
	}
	pcfg := cfg
	if cfg.Events != nil {
		pcfg.Events = obs.NewSyncSink(cfg.Events)
	}
	jobs := make([]batch.Job[Measurement], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context, int) (Measurement, error) {
			return measure(i, pcfg), nil
		}
	}
	pres, err := batch.Run(context.Background(), jobs,
		batch.Options{Workers: cfg.Parallel, Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}
	out := make([]Measurement, n)
	for i, pr := range pres {
		// Cells report failures through Measurement marks; pool-level
		// errors only arise from panics the measurement did not absorb.
		if pr.Err != nil {
			out[i] = Measurement{Err: pr.Err}
			continue
		}
		out[i] = pr.Value
	}
	return out, nil
}

// --- Table I: grover with DD-repeating ----------------------------------

// Table1Row mirrors one row of the paper's Table I. The mark fields
// carry "timeout" / "oom" / "error" when the corresponding column
// failed ("" for clean cells); its time is then NaN.
type Table1Row struct {
	Name          string
	TSota         float64 // sequential (state of the art)
	SotaMark      string
	TGeneral      float64 // best general strategy
	GeneralName   string  // which general strategy won
	GeneralMark   string
	TRepeating    float64 // DD-repeating (block matrix re-used)
	RepeatingMark string
}

// Table1Sizes returns the grover sizes benchmarked (paper: 23–29
// qubits; scaled here per DESIGN.md).
func Table1Sizes(full bool) []int {
	if full {
		return []int{14, 16, 18, 20}
	}
	return []int{12, 14, 16, 18}
}

// generalStrategies is the small sweep from which t_general picks its
// best result (the paper reports the best k/s_max choice).
func generalStrategies() []core.Strategy {
	return []core.Strategy{
		core.KOperations{K: 4},
		core.KOperations{K: 8},
		core.KOperations{K: 16},
		core.MaxSize{SMax: 64},
		core.MaxSize{SMax: 256},
	}
}

// Table1 reproduces Table I: t_sota, t_general and t_DD-repeating for
// the grover benchmarks. Custom sizes override the defaults (used by
// tests and ad-hoc sweeps).
func Table1(cfg Config, sizes ...int) ([]Table1Row, error) {
	if len(sizes) == 0 {
		sizes = Table1Sizes(cfg.Full)
	}
	var rows []Table1Row
	for _, n := range sizes {
		w := GroverWorkload(n)
		sota := Time(w, core.Options{Strategy: core.Sequential{}}, cfg)
		row := Table1Row{Name: w.Name, TSota: sota.Seconds, SotaMark: sota.Mark()}
		if sota.Mark() != "" {
			row.TSota = math.NaN()
		}

		row.TGeneral = math.Inf(1)
		failMark := "timeout"
		anyClean := false
		for _, st := range generalStrategies() {
			m := Time(w, core.Options{Strategy: st}, cfg)
			if m.Mark() != "" {
				failMark = m.Mark()
				continue
			}
			anyClean = true
			if m.Seconds < row.TGeneral {
				row.TGeneral = m.Seconds
				row.GeneralName = st.Name()
			}
		}
		if !anyClean {
			row.TGeneral, row.GeneralMark = math.NaN(), failMark
		}

		rep := Time(w, core.Options{Strategy: core.Sequential{}, UseBlocks: true}, cfg)
		row.TRepeating, row.RepeatingMark = rep.Seconds, rep.Mark()
		if rep.Mark() != "" {
			row.TRepeating = math.NaN()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Table II: shor with DD-construct -----------------------------------

// Table2Row mirrors one row of the paper's Table II. Timeout flags
// correspond to the paper's ">7200.00" entries; the mark fields
// additionally distinguish "oom" and "error" cells under a node budget.
type Table2Row struct {
	Name            string
	QubitsGate      int // 2n+3 qubits of the gate-level circuit
	QubitsConstruct int // n+1 qubits of the DD-construct run
	TSota           float64
	SotaTimeout     bool
	SotaMark        string
	TGeneral        float64
	GeneralTimeout  bool
	GeneralMark     string
	GeneralName     string
	TConstruct      float64
}

// ShorInstance is one (N, a) order-finding instance.
type ShorInstance struct {
	N, A uint64
}

// Table2Instances returns the shor instances. The quick set completes
// within the budget on all three columns; the full set adds the paper's
// own large moduli, for which the gate-level columns time out exactly
// as in the paper while DD-construct stays in the sub-second range.
func Table2Instances(full bool) []ShorInstance {
	quick := []ShorInstance{{15, 7}, {21, 2}, {33, 5}, {35, 6}, {55, 6}}
	if !full {
		return quick
	}
	return append(quick,
		ShorInstance{1007, 602},  // paper instance shor_1007_602_23
		ShorInstance{1851, 17},   // paper instance shor_1851_17_25
		ShorInstance{2561, 2409}, // paper instance shor_2561_2409_27
	)
}

// Table2 reproduces Table II: t_sota, t_general and t_DD-construct.
// Custom instances override the defaults.
func Table2(cfg Config, instances ...ShorInstance) ([]Table2Row, error) {
	if len(instances) == 0 {
		instances = Table2Instances(cfg.Full)
	}
	var rows []Table2Row
	for _, inst := range instances {
		w := ShorWorkload(inst.N, inst.A)
		nBits := bitLen(inst.N)
		row := Table2Row{
			Name:            w.Name,
			QubitsGate:      2*nBits + 3,
			QubitsConstruct: nBits + 1,
		}

		sota := Time(w, core.Options{Strategy: core.Sequential{}}, cfg)
		row.TSota, row.SotaTimeout, row.SotaMark = sota.Seconds, sota.TimedOut, sota.Mark()

		row.TGeneral = math.Inf(1)
		row.GeneralTimeout = true
		failMark := "timeout"
		for _, st := range generalStrategies() {
			m := Time(w, core.Options{Strategy: st}, cfg)
			if m.Mark() != "" {
				failMark = m.Mark()
				continue
			}
			if m.Seconds < row.TGeneral {
				row.TGeneral = m.Seconds
				row.GeneralName = st.Name()
				row.GeneralTimeout = false
			}
		}
		if row.GeneralTimeout {
			row.TGeneral = cfg.Budget.Seconds()
			row.GeneralMark = failMark
		}

		start := time.Now()
		if _, err := shor.SimulateDDConstruct(inst.N, inst.A, newSeededRand()); err != nil {
			return nil, err
		}
		row.TConstruct = time.Since(start).Seconds()
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Fig. 5 / Example 3: DD size traces ----------------------------------

// TraceResult contrasts the DD sizes processed when following Eq. 1
// (pure matrix-vector) against combining pairs of operations first
// (Eq. 2 locally), on a supremacy slice — the quantitative version of
// the paper's Fig. 5 illustration.
type TraceResult struct {
	Workload string
	// Per applied operation: sizes of the operation DD and the state DD.
	Seq      []core.TracePoint
	Combined []core.TracePoint
	// Total multiplication recursions (the actual work metric).
	SeqRecursions      uint64
	CombinedRecursions uint64
}

// Fig5 records the size traces.
func Fig5(cfg Config) (*TraceResult, error) {
	c := supremacy.Circuit(4, 4, 14, 7)
	seq, err := core.Run(c, core.Options{Strategy: core.Sequential{}, RecordTrace: true})
	if err != nil {
		return nil, err
	}
	comb, err := core.Run(c, core.Options{Strategy: core.KOperations{K: 4}, RecordTrace: true})
	if err != nil {
		return nil, err
	}
	return &TraceResult{
		Workload:           c.Name,
		Seq:                seq.Trace,
		Combined:           comb.Trace,
		SeqRecursions:      seq.Stats.MulRecursions + seq.Stats.AddRecursions,
		CombinedRecursions: comb.Stats.MulRecursions + comb.Stats.AddRecursions,
	}, nil
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// AdaptiveParams are the ratio values (×100, to keep the integer sweep
// machinery) swept for the adaptive-strategy ablation: 0.1 … 8.
var AdaptiveParams = []int{10, 25, 50, 100, 200, 400, 800}

// AdaptiveSweep runs the fig-8/9-style sweep for the adaptive strategy
// (an extension beyond the paper; see DESIGN.md ablations).
func AdaptiveSweep(cfg Config) (*SweepResult, error) {
	return sweep(cfg, "Adaptive-strategy sweep: speed-up vs. op/state size ratio (×100)", "ratio×100",
		AdaptiveParams, func(p int) core.Strategy { return core.Adaptive{Ratio: float64(p) / 100} },
		FigWorkloads(cfg.Full))
}
