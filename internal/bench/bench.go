// Package bench defines the benchmark workloads and the experiment
// harness that regenerates every table and figure of the paper's
// evaluation (Figs. 8 and 9, Tables I and II, plus the Fig. 5 size
// trace). Absolute times differ from the paper's machine; the harness
// reports the same quantities (speed-ups over the sequential baseline,
// per-strategy runtimes) so the shapes can be compared directly.
package bench

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/grover"
	"repro/internal/hamiltonian"
	"repro/internal/obs"
	"repro/internal/qft"
	"repro/internal/shor"
	"repro/internal/supremacy"
)

// Workload is one deterministic benchmark instance: Run simulates it
// once under the given options (a fresh engine per run unless the
// options carry one).
type Workload struct {
	Name string
	Run  func(opt core.Options) error
}

// Config scales the experiment suite.
type Config struct {
	// Reps is the number of timing repetitions; the minimum is reported.
	Reps int
	// Budget caps a single simulation run; runs exceeding it are
	// reported as timeouts (the paper's ">7200s" rows).
	Budget time.Duration
	// MaxNodes caps the live DD nodes of a single run; runs exceeding it
	// are reported as "oom" cells (the memory analogue of Budget).
	// Strategy fallback is disabled so the cell reflects the strategy as
	// configured. Zero means unlimited.
	MaxNodes int
	// SoftBudget arms the memory-pressure governor for every measured
	// run (see core.Options.SoftBudget): cells degrade in stages near
	// the budget instead of aborting at it. Degraded-but-finished cells
	// carry a distinct mark. Clamped to MaxNodes when both are set.
	SoftBudget int
	// Degrade selects the governor mode ("", "off", "ladder" or
	// "approx"; see core.Options.Degrade).
	Degrade string
	// Full selects the larger instances (several minutes of total
	// runtime instead of tens of seconds).
	Full bool
	// Parallel runs sweep cells through a bounded worker pool of this
	// many workers (internal/batch), each cell on its own freshly
	// created engine. Values <= 1 keep the serial cell order. Marks and
	// node counts are identical to serial mode; only wall-clock timings
	// (and thus speed-up columns) shift with machine load. MaxNodes
	// stays a per-run budget — it is deliberately not split across
	// workers, so oom marks cannot depend on the worker count.
	Parallel int
	// Metrics, when non-nil, aggregates run telemetry from every measured
	// run into one shared registry (see internal/obs).
	Metrics *obs.Registry
	// Events, when non-nil, additionally receives the structured event
	// stream of every measured run.
	Events obs.Sink
}

// DefaultConfig returns the quick configuration used by cmd/ddbench.
func DefaultConfig() Config {
	return Config{Reps: 1, Budget: 30 * time.Second}
}

func (c Config) reps() int {
	if c.Reps < 1 {
		return 1
	}
	return c.Reps
}

// GroverWorkload returns the grover_<n> benchmark (marked element fixed
// per size for determinism).
func GroverWorkload(n int) Workload {
	marked := uint64(0x5a5a5a5a5a5a5a5a) & ((1 << uint(n)) - 1)
	c := grover.Circuit(n, marked, 0)
	return Workload{
		Name: fmt.Sprintf("grover_%d", n),
		Run: func(opt core.Options) error {
			_, err := core.Run(c, opt)
			return err
		},
	}
}

// ShorWorkload returns the gate-level shor_<N>_<a> benchmark
// (Beauregard circuit, 2n+3 qubits, fixed measurement seed).
func ShorWorkload(modN, a uint64) Workload {
	return Workload{
		Name: fmt.Sprintf("shor_%d_%d", modN, a),
		Run: func(opt core.Options) error {
			_, err := shor.SimulateGateLevel(modN, a, opt, rand.New(rand.NewSource(1)))
			return err
		},
	}
}

// QFTWorkload returns the qft_<n> benchmark (quantum Fourier transform
// with final swaps, applied to the |0…0> state).
func QFTWorkload(n int) Workload {
	c := qft.Circuit(n, true)
	return Workload{
		Name: fmt.Sprintf("qft_%d", n),
		Run: func(opt core.Options) error {
			_, err := core.Run(c, opt)
			return err
		},
	}
}

// SupremacyWorkload returns the supremacy_<depth>_<qubits> benchmark.
func SupremacyWorkload(rows, cols, depth int, seed int64) Workload {
	c := supremacy.Circuit(rows, cols, depth, seed)
	return Workload{
		Name: c.Name,
		Run: func(opt core.Options) error {
			_, err := core.Run(c, opt)
			return err
		},
	}
}

// FigWorkloads is the benchmark mix used for the Fig. 8 / Fig. 9
// parameter sweeps — all three families of the paper.
func FigWorkloads(full bool) []Workload {
	ws := []Workload{
		GroverWorkload(14),
		GroverWorkload(16),
		ShorWorkload(15, 7),
		ShorWorkload(21, 2),
		SupremacyWorkload(4, 4, 12, 7),
		SupremacyWorkload(4, 4, 16, 7),
	}
	if full {
		ws = append(ws,
			GroverWorkload(18),
			ShorWorkload(33, 5),
			ShorWorkload(55, 6),
			SupremacyWorkload(4, 5, 14, 7),
			TFIMWorkload(14, 2, 24),
		)
	}
	return ws
}

// Measurement is one timed run.
type Measurement struct {
	Seconds  float64
	TimedOut bool
	OOM      bool // node budget exceeded (cfg.MaxNodes)
	Canceled bool // run cancelled (fail-fast batch abort, ^C)
	Parked   bool // memory-pressure governor parked the run
	// Degraded marks a run that finished, but only because the
	// memory-pressure governor intervened; FidelityBound is the run's
	// cumulative fidelity lower bound (1 when every measure was exact).
	Degraded      bool
	FidelityBound float64
	Err           error
	// Cell carries the run's telemetry totals (Valid=false when the run
	// died before emitting a run_end event). Aborted cells keep the
	// partial run's counters.
	Cell CellMetrics
}

// Mark classifies the measurement for table cells: "" for a clean run,
// "timeout", "oom", "canceled", "parked", "error", or — for runs the
// memory-pressure governor rescued — "degraded" / "degraded(f≥X)" with
// the fidelity bound when approximation lowered it below 1. Sweeps
// record the mark per cell instead of aborting, so one blown
// configuration cannot kill a whole experiment.
func (m Measurement) Mark() string {
	switch {
	case m.TimedOut:
		return "timeout"
	case m.OOM:
		return "oom"
	case m.Canceled:
		return "canceled"
	case m.Parked:
		return "parked"
	case m.Err != nil:
		return "error"
	case m.Degraded && m.FidelityBound > 0 && m.FidelityBound < 1:
		return fmt.Sprintf("degraded(f≥%.3g)", m.FidelityBound)
	case m.Degraded:
		return "degraded"
	}
	return ""
}

// Time runs w under opt, repeating cfg.Reps times and keeping the
// fastest run. A run that exceeds cfg.Budget reports a timeout; one
// that exceeds cfg.MaxNodes reports an OOM. Other failures are captured
// in Err rather than propagated, so sweeps degrade per cell.
//
// Every state Time touches — the rep deadline, the run_end capture, the
// reported telemetry cell — is local to one repetition, so concurrent
// Time calls (batch-executed sweep cells) cannot cross-contaminate, and
// the reported Cell always belongs to the rep whose timing is reported.
func Time(w Workload, opt core.Options, cfg Config) Measurement {
	best := Measurement{Seconds: math.Inf(1)}
	for i := 0; i < cfg.reps(); i++ {
		m := timeOnce(w, opt, cfg)
		if m.Mark() != "" {
			return m
		}
		if m.Seconds < best.Seconds {
			best = m
		}
	}
	return best
}

// timeOnce performs one timed repetition with rep-local deadline and
// telemetry capture. The options value is copied, never mutated in
// place, so the caller's opt survives across reps and across
// concurrently measured cells.
func timeOnce(w Workload, opt core.Options, cfg Config) Measurement {
	// Harvest run totals from the run_end event; core emits it even for
	// aborted runs, so timeout/oom cells still carry their counters.
	capture := &runEndCapture{}
	sinks := obs.MultiSink{capture}
	if opt.EventSink != nil {
		sinks = append(sinks, opt.EventSink)
	}
	if cfg.Events != nil {
		sinks = append(sinks, cfg.Events)
	}
	opt.EventSink = sinks
	if opt.Metrics == nil {
		opt.Metrics = cfg.Metrics
	}
	if cfg.Budget > 0 {
		// The deadline is armed per repetition, at the moment the run
		// actually starts — a batch-executed cell must not burn its budget
		// sitting in the pool queue.
		opt.Deadline = time.Now().Add(cfg.Budget)
	}
	if cfg.MaxNodes > 0 {
		if opt.MaxNodes == 0 || opt.MaxNodes > cfg.MaxNodes {
			opt.MaxNodes = cfg.MaxNodes
		}
		// The cell reports whether the strategy as configured fits the
		// budget; silent degradation would blur the comparison.
		opt.DisableFallback = true
	}
	if cfg.SoftBudget > 0 || cfg.Degrade != "" {
		opt.SoftBudget = cfg.SoftBudget
		opt.Degrade = cfg.Degrade
		if opt.MaxNodes > 0 && opt.SoftBudget > opt.MaxNodes {
			opt.SoftBudget = opt.MaxNodes
		}
	}
	// Collect and return freed pages before the clock starts, in the
	// spirit of testing.B's pre-run GC: a sweep cell must not pay GC
	// debt or allocator state for garbage the previous cell left behind
	// (combine-all cells retire with multi-GB heaps), and the order of
	// cells must not bias the comparison.
	debug.FreeOSMemory()
	start := time.Now()
	err := w.Run(opt)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		m := classify(err, elapsed, cfg)
		m.Cell = capture.cell(m.Seconds)
		return m
	}
	m := Measurement{Seconds: elapsed, Cell: capture.cell(elapsed)}
	if m.Cell.Degradations > 0 {
		m.Degraded = true
		m.FidelityBound = m.Cell.FidelityBound
	}
	return m
}

// classify maps a run failure onto the measurement marks. The typed
// *core.RunError carries the exact failure kind — including for
// batch-executed cells, whose errors may additionally wrap pool
// context — with the sentinel checks kept as a fallback for workloads
// that re-wrap errors without preserving the RunError.
func classify(err error, elapsed float64, cfg Config) Measurement {
	var re *core.RunError
	if errors.As(err, &re) {
		switch re.Kind {
		case core.FailureDeadline:
			return Measurement{Seconds: cfg.Budget.Seconds(), TimedOut: true}
		case core.FailureBudget:
			return Measurement{Seconds: elapsed, OOM: true, Err: err}
		case core.FailureCanceled:
			return Measurement{Seconds: elapsed, Canceled: true, Err: err}
		case core.FailurePressure:
			return Measurement{Seconds: elapsed, Parked: true, Err: err}
		}
		return Measurement{Seconds: elapsed, Err: err}
	}
	switch {
	case errors.Is(err, core.ErrDeadlineExceeded):
		return Measurement{Seconds: cfg.Budget.Seconds(), TimedOut: true}
	case errors.Is(err, core.ErrBudgetExceeded):
		return Measurement{Seconds: elapsed, OOM: true, Err: err}
	case errors.Is(err, core.ErrCanceled):
		return Measurement{Seconds: elapsed, Canceled: true, Err: err}
	}
	return Measurement{Seconds: elapsed, Err: err}
}

// TFIMWorkload returns a Trotterized transverse-field Ising evolution
// benchmark (tfim_<sites>_t<t>_s<steps>).
func TFIMWorkload(sites int, t float64, steps int) Workload {
	m := hamiltonian.TFIM{Sites: sites, J: 1, H: 0.9}
	c, err := m.TrotterCircuit(t, steps)
	if err != nil {
		panic(err) // static parameters; misuse is a programming error
	}
	return Workload{
		Name: c.Name,
		Run: func(opt core.Options) error {
			_, err := core.Run(c, opt)
			return err
		},
	}
}
