package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/grover"
	"repro/internal/qft"
	"repro/internal/shor"
	"repro/internal/supremacy"
)

// The reorder experiment measures what variable order is worth: every
// workload runs three times on fresh engines — fixed identity order
// ("off"), the static interaction-graph order derived before the run
// ("static"), and dynamic sifting ("sifting") — and reports the peak
// state-DD size along the run, the final size, wall time, and the swap
// work the dynamic mode spent. The cross-register entangler is the
// canonical order-sensitive workload (identity order pays 2^(n/2)
// nodes for a state an interleaved order represents in O(n)); the
// paper's benchmark families show how much of that sensitivity real
// circuits retain.

// ReorderRow is one workload×mode cell of the reorder sweep.
type ReorderRow struct {
	Workload string
	Mode     string // off | static | sifting

	Seconds float64
	Mark    string // "", "timeout", "oom"

	// PeakNodes is the largest state-DD size along the run's trace;
	// FinalNodes the state size at the end.
	PeakNodes  int
	FinalNodes int

	// Swaps and SiftPasses are the dynamic-reordering work (zero for
	// off/static).
	Swaps      uint64
	SiftPasses uint64
}

// reorderCircuit pairs a named circuit with the sweep.
type reorderCircuit struct {
	name string
	c    *circuit.Circuit
}

// crossEntangler builds the cross-register Bell pairer: H(i) then
// CX(i, i+n/2) for each i < n/2.
func crossEntangler(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.Name = fmt.Sprintf("cross_%d", n)
	half := n / 2
	for i := 0; i < half; i++ {
		c.H(i)
		c.CX(i, i+half)
	}
	return c
}

func reorderCircuits(full bool) ([]reorderCircuit, error) {
	groverN, qftN := 12, 14
	if full {
		groverN, qftN = 14, 16
	}
	shorC, _, err := shor.ControlledUaCircuit(15, 7)
	if err != nil {
		return nil, fmt.Errorf("bench: reorder: %w", err)
	}
	shorC.Name = "shor_15_7_ua"
	return []reorderCircuit{
		{fmt.Sprintf("grover_%d", groverN), grover.Circuit(groverN, uint64(0x5a5a)&((1<<uint(groverN))-1), 0)},
		{fmt.Sprintf("qft_%d", qftN), qft.Circuit(qftN, true)},
		{"shor_15_7_ua", shorC},
		{"supremacy_12_16", supremacy.Circuit(4, 4, 12, 7)},
		{"cross_24", crossEntangler(24)},
	}, nil
}

// ReorderSweep runs every workload under each reordering mode.
func ReorderSweep(cfg Config) ([]ReorderRow, error) {
	circuits, err := reorderCircuits(cfg.Full)
	if err != nil {
		return nil, err
	}
	var rows []ReorderRow
	for _, rc := range circuits {
		for _, mode := range []string{"off", "static", "sifting"} {
			row, err := reorderCell(rc, mode, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// reorderCell times one circuit×mode configuration on a fresh engine;
// reps > 1 keep the fastest wall time (peaks and swap counts are
// deterministic, so any rep's snapshot reports them).
func reorderCell(rc reorderCircuit, mode string, cfg Config) (ReorderRow, error) {
	row := ReorderRow{Workload: rc.name, Mode: mode}
	for rep := 0; rep < cfg.reps(); rep++ {
		e := dd.New()
		opt := core.Options{
			Engine:      e,
			Reorder:     mode,
			RecordTrace: true,
			MaxNodes:    cfg.MaxNodes,
			Metrics:     cfg.Metrics,
			EventSink:   cfg.Events,
		}
		if cfg.Budget > 0 {
			opt.Deadline = time.Now().Add(cfg.Budget)
		}
		start := time.Now()
		res, err := core.Run(rc.c, opt)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			switch {
			case errors.Is(err, core.ErrDeadlineExceeded):
				row.Seconds, row.Mark = elapsed, "timeout"
				return row, nil
			case errors.Is(err, core.ErrBudgetExceeded):
				row.Seconds, row.Mark = elapsed, "oom"
				return row, nil
			}
			return row, fmt.Errorf("bench: reorder: %s/%s: %w", rc.name, mode, err)
		}
		if rep == 0 || elapsed < row.Seconds {
			row.Seconds = elapsed
		}
		peak := 0
		for _, tp := range res.Trace {
			if tp.StateSize > peak {
				peak = tp.StateSize
			}
		}
		row.PeakNodes = peak
		row.FinalNodes = res.Engine.SizeV(res.State)
		row.Swaps = res.Stats.ReorderSwaps
		row.SiftPasses = res.Stats.SiftPasses
	}
	return row, nil
}

// RenderReorder renders the sweep as a fixed-width table, one block per
// workload with the off row first so the reduction column reads as
// "peak relative to fixed order".
func RenderReorder(rows []ReorderRow) string {
	peakOff := map[string]int{}
	for _, r := range rows {
		if r.Mode == "off" {
			peakOff[r.Workload] = r.PeakNodes
		}
	}
	var sb strings.Builder
	sb.WriteString("Variable reordering: peak and final state-DD sizes under fixed order\n")
	sb.WriteString("(off), the static interaction-graph order (static), and dynamic sifting\n")
	sb.WriteString("(sifting); reduction is peak(off)/peak(mode)\n\n")
	fmt.Fprintf(&sb, "%-16s %-8s %10s %10s %10s %8s %7s %10s\n",
		"Benchmark", "mode", "peak", "final", "reduction", "swaps", "passes", "time")
	for _, r := range rows {
		red := "-"
		if off := peakOff[r.Workload]; r.Mode != "off" && off > 0 && r.PeakNodes > 0 && r.Mark == "" {
			red = fmt.Sprintf("%.2fx", float64(off)/float64(r.PeakNodes))
		}
		fmt.Fprintf(&sb, "%-16s %-8s %10d %10d %10s %8d %7d %10s\n",
			r.Workload, r.Mode, r.PeakNodes, r.FinalNodes, red,
			r.Swaps, r.SiftPasses, fmtCellSeconds(r.Seconds, r.Mark))
	}
	return sb.String()
}

// ReorderCSV renders the sweep as CSV.
func ReorderCSV(rows []ReorderRow) string {
	var sb strings.Builder
	sb.WriteString("workload,mode,seconds,mark,peak_nodes,final_nodes,swaps,sift_passes\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%d,%d,%d,%d\n",
			csvEscape(r.Workload), r.Mode, csvFloat(r.Seconds), r.Mark,
			r.PeakNodes, r.FinalNodes, r.Swaps, r.SiftPasses)
	}
	return sb.String()
}
