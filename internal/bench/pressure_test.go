// Tests for the harness's view of the memory-pressure governor: the
// measurement marks ("parked", "degraded", "degraded(f≥X)"), a real
// degraded-but-finished cell produced under injected pressure, and the
// per-cell CSV carrying the degradation count and fidelity bound.
package bench

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dd"
)

// TestMarkPressureClassification pins the mark strings and their
// precedence for the governor-related outcomes.
func TestMarkPressureClassification(t *testing.T) {
	cases := []struct {
		name string
		m    Measurement
		want string
	}{
		{"parked", Measurement{Parked: true}, "parked"},
		{"parked beats error", Measurement{Parked: true, Err: errors.New("x")}, "parked"},
		{"timeout beats parked", Measurement{TimedOut: true, Parked: true}, "timeout"},
		{"degraded exact", Measurement{Degraded: true, FidelityBound: 1}, "degraded"},
		{"degraded no bound", Measurement{Degraded: true}, "degraded"},
		{"degraded approx", Measurement{Degraded: true, FidelityBound: 0.98125}, "degraded(f≥0.981)"},
		{"error beats degraded", Measurement{Degraded: true, Err: errors.New("x")}, "error"},
		{"clean", Measurement{}, ""},
	}
	for _, c := range cases {
		if got := c.m.Mark(); got != c.want {
			t.Errorf("%s: Mark() = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestTimeDegradedCell runs a real workload with the governor armed and
// pressure injected: the run finishes, but the cell is marked degraded
// and its telemetry carries the ladder actions. Exact-rung degradation
// keeps the fidelity bound at 1, so the mark has no f≥ suffix.
func TestTimeDegradedCell(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	eng := dd.New()
	if !eng.InjectPressure(dd.PressureLow) {
		t.Fatal("chaos injection refused under DD_CHAOS=1")
	}
	cfg := Config{SoftBudget: 1 << 20, Degrade: "ladder"}
	m := Time(GroverWorkload(6), core.Options{Engine: eng}, cfg)
	if m.Err != nil {
		t.Fatalf("degraded run failed outright: %v", m.Err)
	}
	if !m.Degraded || m.Mark() != "degraded" {
		t.Fatalf("Degraded=%v Mark=%q, want a plain degraded cell", m.Degraded, m.Mark())
	}
	if m.FidelityBound != 1 {
		t.Fatalf("exact ladder rungs reported bound %v, want 1", m.FidelityBound)
	}
	if !m.Cell.Valid || m.Cell.Degradations == 0 {
		t.Fatalf("cell telemetry missing the ladder actions: %+v", m.Cell)
	}
	if m.Cell.FidelityBound != 1 {
		t.Fatalf("cell fidelity bound %v, want 1", m.Cell.FidelityBound)
	}
}

// TestMetricsCSVDegradedCell: degraded cells render their distinct mark
// and the degradations/fidelity_bound columns; untouched cells leave
// the bound column empty rather than printing a misleading 0.
func TestMetricsCSVDegradedCell(t *testing.T) {
	r := &SweepResult{
		Names:        []string{"w"},
		Params:       []int{4},
		Baseline:     []float64{1},
		Speedups:     [][]float64{{1.5}},
		Marks:        [][]string{{"degraded(f≥0.98)"}},
		BaselineMark: []string{""},
		Cells: [][]CellMetrics{{{
			Valid: true, Seconds: 0.5, Degradations: 3, FidelityBound: 0.98,
		}}},
		BaselineCells: []CellMetrics{{Valid: true, Seconds: 1}},
	}
	csv := r.MetricsCSV()
	if !strings.HasPrefix(csv, metricsCSVHeader) {
		t.Fatalf("csv header mismatch:\n%s", csv)
	}
	if !strings.HasSuffix(metricsCSVHeader, "degradations,fidelity_bound\n") {
		t.Fatalf("header does not end with the governor columns: %q", metricsCSVHeader)
	}
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + baseline + cell:\n%s", len(lines), csv)
	}
	baseline, cell := lines[1], lines[2]
	if !strings.HasSuffix(baseline, ",0,") {
		t.Errorf("untouched baseline row should end \",0,\" (empty bound): %q", baseline)
	}
	if !strings.Contains(cell, ",degraded(f≥0.98),") {
		t.Errorf("degraded cell row lost its mark: %q", cell)
	}
	if !strings.HasSuffix(cell, ",3,0.98") {
		t.Errorf("degraded cell row should end \",3,0.98\": %q", cell)
	}
}
