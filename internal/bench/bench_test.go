package bench

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grover"
)

// tinyWorkloads keeps experiment tests fast.
func tinyWorkloads() []Workload {
	return []Workload{
		GroverWorkload(6),
		SupremacyWorkload(2, 3, 8, 3),
	}
}

func TestWorkloadNames(t *testing.T) {
	if GroverWorkload(12).Name != "grover_12" {
		t.Error("grover workload name")
	}
	if ShorWorkload(15, 7).Name != "shor_15_7" {
		t.Error("shor workload name")
	}
	if SupremacyWorkload(4, 4, 12, 7).Name != "supremacy_12_16" {
		t.Error("supremacy workload name")
	}
}

func TestTimeMeasures(t *testing.T) {
	cfg := Config{Reps: 2, Budget: time.Minute}
	m := Time(GroverWorkload(6), core.Options{Strategy: core.Sequential{}}, cfg)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.TimedOut || m.Seconds <= 0 {
		t.Fatalf("measurement %+v", m)
	}
}

func TestTimeTimesOut(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Nanosecond}
	m := Time(GroverWorkload(10), core.Options{Strategy: core.Sequential{}}, cfg)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if !m.TimedOut {
		t.Fatal("expected timeout")
	}
}

func TestTimePropagatesErrors(t *testing.T) {
	w := Workload{Name: "boom", Run: func(core.Options) error { return errors.New("boom") }}
	m := Time(w, core.Options{}, Config{Reps: 1})
	if m.Err == nil {
		t.Fatal("expected error")
	}
}

func TestSweepShape(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Minute}
	params := []int{1, 2, 4}
	res, err := sweep(cfg, "test sweep", "k", params,
		func(p int) core.Strategy { return core.KOperations{K: p} }, tinyWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 || len(res.Params) != 3 {
		t.Fatalf("shape %v %v", res.Names, res.Params)
	}
	for wi := range res.Names {
		if len(res.Speedups[wi]) != len(params) {
			t.Fatalf("row %d has %d entries", wi, len(res.Speedups[wi]))
		}
		for _, v := range res.Speedups[wi] {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("invalid speed-up %v", v)
			}
		}
	}
	for _, v := range res.Average {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("invalid average %v", v)
		}
	}
	// k=1 is the sequential scheme re-run: speed-up should be near 1.
	if res.Average[0] < 0.2 || res.Average[0] > 5 {
		t.Fatalf("k=1 average speed-up %v wildly off 1.0", res.Average[0])
	}
	out := RenderSweep(res)
	for _, want := range []string{"test sweep", "grover_6", "average", "1.0x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered sweep missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	res, err := Fig5(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seq) == 0 || len(res.Combined) == 0 {
		t.Fatal("empty traces")
	}
	if len(res.Combined) >= len(res.Seq) {
		t.Fatalf("combining should reduce the number of applications: %d vs %d",
			len(res.Combined), len(res.Seq))
	}
	if res.SeqRecursions == 0 || res.CombinedRecursions == 0 {
		t.Fatal("missing work counters")
	}
	out := RenderFig5(res)
	if !strings.Contains(out, "state nodes") || !strings.Contains(out, "recursions") {
		t.Fatalf("rendered Fig.5 incomplete:\n%s", out)
	}
}

func TestRenderTable1(t *testing.T) {
	rows := []Table1Row{
		{Name: "grover_14", TSota: 1.5, TGeneral: 0.5, GeneralName: "k-operations(k=8)", TRepeating: 0.25},
	}
	out := RenderTable1(rows)
	for _, want := range []string{"grover_14", "1.50", "0.500", "0.250", "k-operations(k=8)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable2Timeouts(t *testing.T) {
	rows := []Table2Row{
		{Name: "shor_1007_602", QubitsGate: 23, QubitsConstruct: 11,
			TSota: 30, SotaTimeout: true, TGeneral: 30, GeneralTimeout: true, TConstruct: 0.02},
	}
	out := RenderTable2(rows, 30)
	if !strings.Contains(out, ">30.00") {
		t.Fatalf("timeout rows not marked:\n%s", out)
	}
	if !strings.Contains(out, "0.02") {
		t.Fatalf("construct time missing:\n%s", out)
	}
}

func TestTable2InstancesValid(t *testing.T) {
	for _, inst := range Table2Instances(true) {
		if inst.N%2 == 0 {
			t.Errorf("instance N=%d is even", inst.N)
		}
		if gcd(inst.A, inst.N) != 1 {
			t.Errorf("instance a=%d not coprime to N=%d", inst.A, inst.N)
		}
		// Must be composite (otherwise there is nothing to factor).
		prime := true
		for d := uint64(2); d*d <= inst.N; d++ {
			if inst.N%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			t.Errorf("instance N=%d is prime", inst.N)
		}
	}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestFigWorkloadsCoverAllFamilies(t *testing.T) {
	for _, full := range []bool{false, true} {
		families := map[string]bool{}
		for _, w := range FigWorkloads(full) {
			switch {
			case strings.HasPrefix(w.Name, "grover"):
				families["grover"] = true
			case strings.HasPrefix(w.Name, "shor"):
				families["shor"] = true
			case strings.HasPrefix(w.Name, "supremacy"):
				families["supremacy"] = true
			}
		}
		if len(families) != 3 {
			t.Fatalf("full=%v: families %v", full, families)
		}
	}
}

func TestGroverWorkloadMatchesGenerator(t *testing.T) {
	// The workload must actually be a Grover circuit of the stated size.
	w := GroverWorkload(8)
	res := make(chan error, 1)
	res <- w.Run(core.Options{Strategy: core.Sequential{}})
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	_ = grover.Iterations(8)
}

func TestAdaptiveSweepSmall(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Minute}
	res, err := sweep(cfg, "adaptive", "r", []int{50, 100},
		func(p int) core.Strategy { return core.Adaptive{Ratio: float64(p) / 100} }, tinyWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Speedups {
		for _, v := range row {
			if v <= 0 || math.IsNaN(v) {
				t.Fatalf("invalid speed-up %v", v)
			}
		}
	}
}

func TestTable1SmallInstance(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Minute}
	rows, err := Table1(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "grover_8" {
		t.Fatalf("rows %+v", rows)
	}
	r := rows[0]
	if r.TSota <= 0 || r.TGeneral <= 0 || r.TRepeating <= 0 {
		t.Fatalf("non-positive timings: %+v", r)
	}
	if r.GeneralName == "" {
		t.Fatal("best general strategy not recorded")
	}
	// No relative-speed assertion here: grover_8 runs in milliseconds
	// and scheduler jitter dominates; the speed claims are validated on
	// the real instance sizes by cmd/ddbench (see EXPERIMENTS.md).
}

func TestTable2SmallInstance(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Minute}
	rows, err := Table2(cfg, ShorInstance{N: 15, A: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows %+v", rows)
	}
	r := rows[0]
	if r.QubitsGate != 11 || r.QubitsConstruct != 5 {
		t.Fatalf("qubit columns wrong: %+v", r)
	}
	if r.SotaTimeout || r.GeneralTimeout {
		t.Fatalf("unexpected timeout: %+v", r)
	}
	if r.TConstruct <= 0 || r.TConstruct > r.TSota {
		t.Fatalf("DD-construct should beat the gate level: %+v", r)
	}
}

func TestSweepCSV(t *testing.T) {
	r := &SweepResult{
		Param:    "k",
		Params:   []int{2, 4},
		Names:    []string{"grover_6", "shor,weird"},
		Baseline: []float64{0.5, 1.25},
		Speedups: [][]float64{{1.5, math.NaN()}, {0.9, 2}},
		Average:  []float64{1.2, 2},
	}
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines %d:\n%s", len(lines), csv)
	}
	if lines[0] != `k,grover_6,"shor,weird",average` {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "2,1.5,0.9,") {
		t.Fatalf("row %q", lines[2])
	}
	// Timeout cell is empty.
	if lines[3] != "4,,2,2" {
		t.Fatalf("timeout row %q", lines[3])
	}
}

func TestTableCSVs(t *testing.T) {
	t1 := Table1CSV([]Table1Row{{Name: "grover_12", TSota: 1, TGeneral: 0.5, TRepeating: 0.1, GeneralName: "k-operations(k=4)"}})
	if !strings.Contains(t1, "grover_12,1,0.5,0.1,k-operations(k=4)") {
		t.Fatalf("table1 csv:\n%s", t1)
	}
	t2 := Table2CSV([]Table2Row{{
		Name: "shor_1007_602", QubitsGate: 23, QubitsConstruct: 11,
		SotaTimeout: true, GeneralTimeout: true, TConstruct: 0.2,
	}}, 90)
	if !strings.Contains(t2, "shor_1007_602,23,>90,>90,0.2,11,") {
		t.Fatalf("table2 csv:\n%s", t2)
	}
}

func TestTraceCSV(t *testing.T) {
	r := &TraceResult{
		Seq:      []core.TracePoint{{GateIndex: 1, OpSize: 2, StateSize: 3, Combined: 1}},
		Combined: []core.TracePoint{{GateIndex: 4, OpSize: 5, StateSize: 6, Combined: 4}},
	}
	csv := TraceCSV(r)
	if !strings.Contains(csv, "sequential,1,2,3,1") || !strings.Contains(csv, "combined,4,5,6,4") {
		t.Fatalf("trace csv:\n%s", csv)
	}
}

// TestTimeReportsOOM checks the node-budget mapping: a run exceeding
// cfg.MaxNodes is marked "oom", not propagated as a fatal error.
func TestTimeReportsOOM(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Minute, MaxNodes: 5}
	m := Time(GroverWorkload(10), core.Options{Strategy: core.Sequential{}}, cfg)
	if !m.OOM || m.Mark() != "oom" {
		t.Fatalf("measurement %+v, want oom", m)
	}
	if !errors.Is(m.Err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", m.Err)
	}
}

// TestSweepResilient checks that one blown workload cannot kill a
// sweep: its cells carry marks while the healthy workload still
// produces speed-ups, and the rendered/CSV outputs surface the marks.
func TestSweepResilient(t *testing.T) {
	boom := Workload{Name: "boom", Run: func(core.Options) error { return errors.New("boom") }}
	ws := []Workload{GroverWorkload(6), boom}
	cfg := Config{Reps: 1, Budget: time.Minute}
	params := []int{2, 4}
	res, err := sweep(cfg, "resilient sweep", "k", params,
		func(p int) core.Strategy { return core.KOperations{K: p} }, ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Speedups[0] {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("healthy workload got invalid speed-up %v", v)
		}
	}
	if res.baselineMark(1) != "error" {
		t.Fatalf("baseline mark = %q, want error", res.baselineMark(1))
	}
	for pi := range params {
		if !math.IsNaN(res.Speedups[1][pi]) || res.mark(1, pi) != "error" {
			t.Fatalf("blown cell %d: speedup %v mark %q", pi, res.Speedups[1][pi], res.mark(1, pi))
		}
	}
	out := RenderSweep(res)
	if !strings.Contains(out, "error") {
		t.Fatalf("render hides the marks:\n%s", out)
	}
	csv := res.CSV()
	if !strings.Contains(csv, "error") {
		t.Fatalf("CSV hides the marks:\n%s", csv)
	}
}

// TestTable1Resilient checks that an OOM-marked column is reported
// instead of failing the table.
func TestTable1Resilient(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Minute, MaxNodes: 5}
	rows, err := Table1(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.SotaMark != "oom" || r.GeneralMark != "oom" || r.RepeatingMark != "oom" {
		t.Fatalf("marks %q %q %q, want oom everywhere under a 5-node budget",
			r.SotaMark, r.GeneralMark, r.RepeatingMark)
	}
	for _, out := range []string{RenderTable1(rows), Table1CSV(rows)} {
		if !strings.Contains(out, "oom") {
			t.Fatalf("output hides the oom marks:\n%s", out)
		}
	}
}

// TestTimeClassifiesRunErrorKinds pins the Mark plumbing for
// batch-executed cells: the typed *core.RunError — however a workload
// wraps it — must populate the timeout/oom/canceled marks.
func TestTimeClassifiesRunErrorKinds(t *testing.T) {
	mk := func(kind core.FailureKind, sentinel error) Workload {
		return Workload{Name: "synthetic", Run: func(core.Options) error {
			return fmt.Errorf("wrapped: %w", &core.RunError{Kind: kind, Err: sentinel})
		}}
	}
	m := Time(mk(core.FailureDeadline, core.ErrDeadlineExceeded), core.Options{}, Config{Reps: 1, Budget: time.Minute})
	if !m.TimedOut || m.Mark() != "timeout" {
		t.Fatalf("deadline kind: %+v mark %q", m, m.Mark())
	}
	if m.Seconds != 60 {
		t.Fatalf("timeout cell must report the budget, got %v", m.Seconds)
	}
	m = Time(mk(core.FailureBudget, core.ErrBudgetExceeded), core.Options{}, Config{Reps: 1, MaxNodes: 10})
	if !m.OOM || m.Mark() != "oom" {
		t.Fatalf("budget kind: %+v mark %q", m, m.Mark())
	}
	m = Time(mk(core.FailureCanceled, core.ErrCanceled), core.Options{}, Config{Reps: 1})
	if !m.Canceled || m.Mark() != "canceled" {
		t.Fatalf("canceled kind: %+v mark %q", m, m.Mark())
	}
	m = Time(mk(core.FailurePanic, errors.New("kaboom")), core.Options{}, Config{Reps: 1})
	if m.Mark() != "error" {
		t.Fatalf("panic kind: %+v mark %q", m, m.Mark())
	}
}

// TestTimeRepsKeepMatchingCell: with several reps the reported Cell
// must belong to the reported timing, not to whichever rep ran last.
func TestTimeRepsKeepMatchingCell(t *testing.T) {
	m := Time(GroverWorkload(6), core.Options{Strategy: core.Sequential{}}, Config{Reps: 3, Budget: time.Minute})
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if !m.Cell.Valid {
		t.Fatal("no cell captured")
	}
	// The engine work of grover_6 under a fixed strategy is
	// deterministic, so any rep's counters match; the sanity check is
	// that the cell is populated and consistent with a clean run.
	if m.Cell.Abort != "" || m.Cell.MatVecMuls == 0 {
		t.Fatalf("cell %+v", m.Cell)
	}
}

// deterministicCell strips the wall-clock fields; everything left must
// be identical between a serial and a parallel sweep of the same cells.
func deterministicCell(c CellMetrics) CellMetrics {
	c.Seconds = 0
	c.GCPauseSeconds = 0
	return c
}

// TestSweepParallelMatchesSerial is the harness half of the acceptance
// criterion "ddbench -parallel 4 produces the same CSV cells as serial
// mode": marks, node counts and every other deterministic counter of
// every cell must be identical; only timings may differ.
func TestSweepParallelMatchesSerial(t *testing.T) {
	params := []int{1, 2, 4}
	run := func(parallel int) *SweepResult {
		cfg := Config{Reps: 1, Budget: time.Minute, Parallel: parallel}
		res, err := sweep(cfg, "par sweep", "k", params,
			func(p int) core.Strategy { return core.KOperations{K: p} }, tinyWorkloads())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)

	if !reflect.DeepEqual(serial.Marks, parallel.Marks) ||
		!reflect.DeepEqual(serial.BaselineMark, parallel.BaselineMark) {
		t.Fatalf("marks diverge:\nserial:   %v / %v\nparallel: %v / %v",
			serial.Marks, serial.BaselineMark, parallel.Marks, parallel.BaselineMark)
	}
	for wi := range serial.Names {
		if s, p := deterministicCell(serial.BaselineCells[wi]), deterministicCell(parallel.BaselineCells[wi]); s != p {
			t.Fatalf("%s baseline cell diverges:\nserial:   %+v\nparallel: %+v", serial.Names[wi], s, p)
		}
		for pi := range params {
			s := deterministicCell(serial.Cells[wi][pi])
			p := deterministicCell(parallel.Cells[wi][pi])
			if s != p {
				t.Fatalf("%s cell k=%d diverges:\nserial:   %+v\nparallel: %+v", serial.Names[wi], params[pi], s, p)
			}
		}
	}
}

// TestSweepParallelOOMMarksMatchSerial: cfg.MaxNodes stays a per-run
// budget in parallel mode — oom marks must not depend on the worker
// count.
func TestSweepParallelOOMMarksMatchSerial(t *testing.T) {
	params := []int{2, 8}
	run := func(parallel int) *SweepResult {
		cfg := Config{Reps: 1, Budget: time.Minute, MaxNodes: 40, Parallel: parallel}
		res, err := sweep(cfg, "oom sweep", "k", params,
			func(p int) core.Strategy { return core.KOperations{K: p} }, tinyWorkloads())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial.Marks, parallel.Marks) ||
		!reflect.DeepEqual(serial.BaselineMark, parallel.BaselineMark) {
		t.Fatalf("oom marks diverge:\nserial:   %v / %v\nparallel: %v / %v",
			serial.Marks, serial.BaselineMark, parallel.Marks, parallel.BaselineMark)
	}
}
