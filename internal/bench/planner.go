package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
)

// The planner experiment answers the question ROADMAP item 4 poses: can
// the cost-model-driven planner (core.Planner) match the best fixed
// strategy per circuit family without being told which one that is?
// Every workload of the Fig. 8/9 mix runs under every fixed strategy
// and under the planner with default knobs; the planner's time is
// compared per workload against the best and worst fixed cell.

// PlannerCell is one workload×strategy measurement of the planner
// sweep.
type PlannerCell struct {
	Workload string
	Strategy string
	// Planner marks the planner column (the comparison target).
	Planner bool
	Seconds float64
	Mark    string // "", "timeout", "oom", "canceled", "error"
}

// PlannerSummary compares the planner against the fixed strategies on
// one workload.
type PlannerSummary struct {
	Workload string
	// PlannerSeconds is the planner cell's time (math.Inf(1) when the
	// planner cell did not finish; Mark says why).
	PlannerSeconds float64
	PlannerMark    string
	// Best/Worst are the fastest and slowest fixed strategies. A fixed
	// cell that did not finish scores its elapsed wall time (for
	// timeouts, the full budget) — a lower bound on its true cost.
	BestStrategy  string
	BestSeconds   float64
	WorstStrategy string
	WorstSeconds  float64
}

// VsBest returns planner/best (how far the planner is from the best
// fixed strategy; 1.0 = matched it, lower = beat it).
func (s PlannerSummary) VsBest() float64 {
	if s.BestSeconds <= 0 {
		return 1
	}
	return s.PlannerSeconds / s.BestSeconds
}

// WorstVsPlanner returns worst/planner (how much the worst fixed
// strategy loses to the planner).
func (s PlannerSummary) WorstVsPlanner() float64 {
	if s.PlannerSeconds <= 0 {
		return math.Inf(1)
	}
	return s.WorstSeconds / s.PlannerSeconds
}

// PlannerResult is the full sweep plus its per-workload summaries.
type PlannerResult struct {
	Cells     []PlannerCell
	Summaries []PlannerSummary
}

// plannerStrategies are the fixed-strategy columns the planner is
// judged against — every strategy family at its default
// parameterisation, including the deliberately bad combine-all
// extreme.
func plannerStrategies() []identityStrategy {
	return []identityStrategy{
		{name: "sequential", strategy: core.Sequential{}},
		{name: "k-operations (k=4)", strategy: core.KOperations{K: 4}},
		{name: "max-size (s=128)", strategy: core.MaxSize{SMax: 128}},
		{name: "adaptive (r=1)", strategy: core.Adaptive{Ratio: 1}},
		{name: "combine-all", strategy: core.CombineAll{}},
	}
}

// PlannerSweep measures every Fig. 8/9 workload under every fixed
// strategy and under the planner, serially on fresh engines.
//
// Repetitions are interleaved rep-major (every cell once, then every
// cell again) instead of cell-major (all reps of one cell back to
// back). The sweep's verdict is a ratio between cells, and machine
// load drifts on the scale of whole cells: run cell-major, a slow
// epoch lands entirely inside whichever cell owns that wall-clock
// span and its minimum is poisoned across all its reps at once.
// Interleaved, a slow epoch taxes one rep of many cells, and every
// cell keeps reps from the quiet epochs — the per-cell minima are
// taken under matched conditions. Within a rep the planner cell runs
// first: combine-all (always in the fixed set, frequently a timeout)
// retires with a multi-GB heap whose allocator residue slows whatever
// follows, and the comparison target must not systematically inherit
// it. Cells that die (timeout/oom) are not retried on later reps —
// re-running them would re-pay the full budget per rep for a cell
// whose verdict cannot change.
func PlannerSweep(cfg Config) (*PlannerResult, error) {
	ws := FigWorkloads(cfg.Full)
	res := &PlannerResult{}
	if len(ws) > 0 {
		// One small untimed run before any timed cell: process warm-up
		// (code paging, the heap's first growth) must not be billed to
		// whichever cell happens to run first.
		_ = GroverWorkload(10).Run(core.Options{Strategy: core.Sequential{}})
	}
	fixed := plannerStrategies()
	// slot [workload][column]: column 0 is the planner, 1.. the fixed
	// strategies. Each slot keeps the minimum over its clean reps.
	type slot struct {
		m   Measurement
		set bool
	}
	cells := make([][]slot, len(ws))
	for i := range cells {
		cells[i] = make([]slot, 1+len(fixed))
	}
	oneRep := cfg
	oneRep.Reps = 1
	for rep := 0; rep < cfg.reps(); rep++ {
		for wi, w := range ws {
			for col := 0; col <= len(fixed); col++ {
				s := &cells[wi][col]
				if s.set && s.m.Mark() != "" {
					continue
				}
				var st core.Strategy = &core.Planner{}
				name := "planner"
				if col > 0 {
					st, name = fixed[col-1].strategy, fixed[col-1].name
				}
				m := Time(w, core.Options{Strategy: st, Metrics: cfg.Metrics}, oneRep)
				if m.Err != nil && m.Mark() == "error" {
					return nil, fmt.Errorf("bench: planner sweep: %s/%s: %w", w.Name, name, m.Err)
				}
				if !s.set || (m.Mark() == "" && m.Seconds < s.m.Seconds) {
					s.m = m
				}
				s.set = true
			}
		}
	}
	for wi, w := range ws {
		sum := PlannerSummary{Workload: w.Name, BestSeconds: math.Inf(1)}
		for col, is := range fixed {
			m := cells[wi][col+1].m
			secs := effectiveSeconds(m, cfg)
			res.Cells = append(res.Cells, PlannerCell{
				Workload: w.Name, Strategy: is.name, Seconds: m.Seconds, Mark: m.Mark(),
			})
			// Marked cells never win "best": they did not finish.
			if m.Mark() == "" && secs < sum.BestSeconds {
				sum.BestSeconds, sum.BestStrategy = secs, is.name
			}
			if secs > sum.WorstSeconds {
				sum.WorstSeconds, sum.WorstStrategy = secs, is.name
			}
		}
		pm := cells[wi][0].m
		res.Cells = append(res.Cells, PlannerCell{
			Workload: w.Name, Strategy: "planner", Planner: true,
			Seconds: pm.Seconds, Mark: pm.Mark(),
		})
		sum.PlannerMark = pm.Mark()
		sum.PlannerSeconds = pm.Seconds
		if sum.PlannerMark != "" {
			sum.PlannerSeconds = math.Inf(1)
		}
		res.Summaries = append(res.Summaries, sum)
	}
	return res, nil
}

// effectiveSeconds scores a measurement for best/worst comparison: a
// clean run scores its wall time; a run that died scores the larger of
// its elapsed time and the budget — a lower bound on what it would
// have cost.
func effectiveSeconds(m Measurement, cfg Config) float64 {
	if m.Mark() == "" {
		return m.Seconds
	}
	return math.Max(m.Seconds, cfg.Budget.Seconds())
}

// RenderPlanner renders the sweep table and the per-workload verdict
// lines.
func RenderPlanner(r *PlannerResult) string {
	var sb strings.Builder
	sb.WriteString("Adaptive strategy planner vs. every fixed strategy (fresh engine per cell;\n")
	sb.WriteString("planner knobs at defaults — it is told nothing about the circuit family)\n\n")
	fmt.Fprintf(&sb, "%-18s %-20s %10s\n", "Benchmark", "Strategy", "time")
	last := ""
	for _, c := range r.Cells {
		if c.Workload != last && last != "" {
			sb.WriteString("\n")
		}
		last = c.Workload
		fmt.Fprintf(&sb, "%-18s %-20s %10s\n", c.Workload, c.Strategy, fmtCellSeconds(c.Seconds, c.Mark))
	}
	sb.WriteString("\nPer-benchmark verdict (planner/best <= 1.10 everywhere and worst/planner >= 2\n")
	sb.WriteString("somewhere is the planner pulling its weight):\n\n")
	fmt.Fprintf(&sb, "%-18s %10s %-20s %10s %-20s %12s %14s\n",
		"Benchmark", "planner", "best fixed", "t-best", "worst fixed", "planner/best", "worst/planner")
	for _, s := range r.Summaries {
		planner := fmtCellSeconds(s.PlannerSeconds, s.PlannerMark)
		fmt.Fprintf(&sb, "%-18s %10s %-20s %10s %-20s %12.2f %14.1f\n",
			s.Workload, planner, s.BestStrategy, fmtCellSeconds(s.BestSeconds, ""),
			s.WorstStrategy, s.VsBest(), s.WorstVsPlanner())
	}
	return sb.String()
}

// PlannerCSV renders the sweep cells as CSV.
func PlannerCSV(r *PlannerResult) string {
	var sb strings.Builder
	sb.WriteString("workload,strategy,planner,seconds,mark\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%s,%s,%t,%s,%s\n",
			csvEscape(c.Workload), csvEscape(c.Strategy), c.Planner, csvFloat(c.Seconds), c.Mark)
	}
	return sb.String()
}
