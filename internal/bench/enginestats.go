package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dd"
)

// EngineStatsRow is one workload×strategy run with the engine's cache
// and memory-layer counters snapshotted after the simulation.
type EngineStatsRow struct {
	Workload string
	Strategy string
	Seconds  float64

	AddV, AddM, MulMV, MulMM dd.CacheStats

	// MulRecursions counts multiplication-kernel recursion steps;
	// IdentitySkips the identity short-circuits taken (mat-vec +
	// mat-mat) and IdentitySkipLevels the recursion levels they avoided.
	MulRecursions      uint64
	IdentitySkips      uint64
	IdentitySkipLevels uint64

	NodesCreated  uint64
	NodesRecycled uint64
	GCs           uint64
	GCPause       time.Duration
	PeakNodes     int
	Fallbacks     int
}

// EngineStats runs a small workload mix under each strategy family with
// a dedicated engine per run and reports the per-cache hit rates and GC
// behaviour. This is the harness view of the engine memory layer: the
// same counters ddsim -stats prints for a single circuit, across the
// paper's benchmark families.
func EngineStats(cfg Config) ([]EngineStatsRow, error) {
	ws := []Workload{
		GroverWorkload(14),
		ShorWorkload(15, 7),
		SupremacyWorkload(4, 4, 12, 7),
	}
	strategies := []core.Strategy{
		core.Sequential{},
		core.KOperations{K: 4},
		core.MaxSize{SMax: 128},
	}
	var rows []EngineStatsRow
	for _, w := range ws {
		for _, st := range strategies {
			e := dd.New()
			cap := &runEndCapture{}
			opt := core.Options{Strategy: st, Engine: e, EventSink: cap, Metrics: cfg.Metrics}
			if cfg.Budget > 0 {
				opt.Deadline = time.Now().Add(cfg.Budget)
			}
			start := time.Now()
			err := w.Run(opt)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				if errors.Is(err, core.ErrDeadlineExceeded) {
					continue // drop timed-out runs; the row would be partial
				}
				return nil, fmt.Errorf("bench: enginestats: %s/%s: %w", w.Name, st.Name(), err)
			}
			s := e.Stats()
			rows = append(rows, EngineStatsRow{
				Workload:           w.Name,
				Strategy:           st.Name(),
				Seconds:            elapsed,
				AddV:               s.AddV,
				AddM:               s.AddM,
				MulMV:              s.MulMV,
				MulMM:              s.MulMM,
				MulRecursions:      s.MulRecursions,
				IdentitySkips:      s.IdentitySkipsMV + s.IdentitySkipsMM,
				IdentitySkipLevels: s.IdentitySkipLevels,
				NodesCreated:       s.NodesCreated,
				NodesRecycled:      s.NodesRecycled,
				GCs:                s.GCs,
				GCPause:            s.GCPause,
				PeakNodes:          s.PeakVNodes + s.PeakMNodes,
				Fallbacks:          cap.cell(elapsed).Fallbacks,
			})
		}
	}
	return rows, nil
}

// RenderEngineStats renders the engine-counter table.
func RenderEngineStats(rows []EngineStatsRow) string {
	var sb strings.Builder
	sb.WriteString("Engine statistics: per-cache hit rates and GC behaviour per workload and strategy\n")
	sb.WriteString("(hit rate = cache hits / lookups; mul-rec = multiplication recursions, id-skips = identity\n")
	sb.WriteString(" short-circuits taken; nodes = created/recycled; pauses summed over all collections)\n\n")
	fmt.Fprintf(&sb, "%-18s %-18s %8s %8s %8s %8s %10s %9s %12s %12s %5s %10s %9s %5s\n",
		"Benchmark", "Strategy", "add-v", "add-m", "mul-mv", "mul-mm",
		"mul-rec", "id-skips", "created", "recycled", "GCs", "pause", "peak", "fb")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %-18s %8s %8s %8s %8s %10d %9d %12d %12d %5d %10s %9d %5d\n",
			r.Workload, r.Strategy,
			fmtRate(r.AddV), fmtRate(r.AddM), fmtRate(r.MulMV), fmtRate(r.MulMM),
			r.MulRecursions, r.IdentitySkips,
			r.NodesCreated, r.NodesRecycled, r.GCs, r.GCPause.Round(time.Microsecond),
			r.PeakNodes, r.Fallbacks)
	}
	return sb.String()
}

func fmtRate(c dd.CacheStats) string {
	if c.Lookups == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*c.HitRate())
}

// EngineStatsCSV renders the raw counters as CSV.
func EngineStatsCSV(rows []EngineStatsRow) string {
	var sb strings.Builder
	sb.WriteString("workload,strategy,seconds," +
		"addv_lookups,addv_hits,addm_lookups,addm_hits," +
		"mulmv_lookups,mulmv_hits,mulmm_lookups,mulmm_hits," +
		"mul_recursions,identity_skips,identity_skip_levels," +
		"nodes_created,nodes_recycled,gcs,gc_pause_seconds,peak_nodes,fallbacks\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d\n",
			csvEscape(r.Workload), csvEscape(r.Strategy), csvFloat(r.Seconds),
			r.AddV.Lookups, r.AddV.Hits, r.AddM.Lookups, r.AddM.Hits,
			r.MulMV.Lookups, r.MulMV.Hits, r.MulMM.Lookups, r.MulMM.Hits,
			r.MulRecursions, r.IdentitySkips, r.IdentitySkipLevels,
			r.NodesCreated, r.NodesRecycled, r.GCs, csvFloat(r.GCPause.Seconds()),
			r.PeakNodes, r.Fallbacks)
	}
	return sb.String()
}
