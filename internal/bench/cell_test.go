package bench

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestTimeCapturesCellMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Reps: 1, Budget: time.Minute, Metrics: reg}
	m := Time(GroverWorkload(6), core.Options{Strategy: core.Sequential{}}, cfg)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	c := m.Cell
	if !c.Valid {
		t.Fatal("expected a captured run_end cell")
	}
	if c.MatVecMuls == 0 || c.NodesCreated == 0 || c.PeakNodes == 0 || c.StateNodes == 0 {
		t.Fatalf("cell totals not populated: %+v", c)
	}
	if c.Abort != "" || c.Fallbacks != 0 {
		t.Fatalf("clean run carries abort/fallback markers: %+v", c)
	}
	if c.Seconds != m.Seconds {
		t.Fatalf("cell seconds %v != measurement %v", c.Seconds, m.Seconds)
	}
	if r := c.CacheHitRate(); math.IsNaN(r) || r < 0 || r > 1 {
		t.Fatalf("hit rate %v", r)
	}
	// The shared registry aggregated the same run.
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == "dd_matvec_muls_total" && s.Value == float64(c.MatVecMuls) {
			found = true
		}
	}
	if !found {
		t.Fatal("registry did not aggregate dd_matvec_muls_total to the cell total")
	}
}

func TestTimeCellOnTimeout(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Nanosecond}
	m := Time(GroverWorkload(10), core.Options{Strategy: core.Sequential{}}, cfg)
	if !m.TimedOut {
		t.Fatal("expected timeout")
	}
	if !m.Cell.Valid || m.Cell.Abort != "deadline" {
		t.Fatalf("timeout cell %+v", m.Cell)
	}
}

func TestCellHitRateNaNWithoutLookups(t *testing.T) {
	if !math.IsNaN((CellMetrics{}).CacheHitRate()) {
		t.Fatal("zero-lookup hit rate must be NaN")
	}
}

func TestSweepMetricsCSV(t *testing.T) {
	cfg := Config{Reps: 1, Budget: time.Minute}
	params := []int{2, 4}
	res, err := sweep(cfg, "test sweep", "k", params,
		func(p int) core.Strategy { return core.KOperations{K: p} }, tinyWorkloads())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(res.Names) || len(res.BaselineCells) != len(res.Names) {
		t.Fatalf("cell shape: %d/%d rows for %d workloads", len(res.Cells), len(res.BaselineCells), len(res.Names))
	}
	out := res.MetricsCSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + (baseline + len(params)) rows per workload
	want := 1 + len(res.Names)*(1+len(params))
	if len(lines) != want {
		t.Fatalf("metrics CSV has %d lines, want %d:\n%s", len(lines), want, out)
	}
	if !strings.HasPrefix(lines[0], "workload,param,seconds,mark,matvec_muls") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(out, "grover_6,baseline,") {
		t.Fatalf("missing baseline row:\n%s", out)
	}
	cols := strings.Count(lines[0], ",")
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Fatalf("ragged row %q", l)
		}
	}
}

func TestMetricsCSVEmptyWithoutCells(t *testing.T) {
	r := &SweepResult{Names: []string{"w"}, Params: []int{1}}
	if got := r.MetricsCSV(); got != "" {
		t.Fatalf("pre-cells result rendered %q", got)
	}
}

func TestEngineStatsCarriesPeakAndFallbacks(t *testing.T) {
	rows, err := EngineStats(Config{Budget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.PeakNodes <= 0 {
			t.Fatalf("row %s/%s has no peak nodes", r.Workload, r.Strategy)
		}
	}
	text := RenderEngineStats(rows)
	if !strings.Contains(text, "peak") || !strings.Contains(text, "fb") {
		t.Fatalf("render missing new columns:\n%s", text)
	}
	csv := EngineStatsCSV(rows)
	if !strings.Contains(csv, ",peak_nodes,fallbacks") {
		t.Fatalf("CSV missing new columns:\n%s", csv)
	}
}
