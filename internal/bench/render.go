package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
)

// RenderSweep renders a Fig. 8/9 sweep as a text table followed by an
// ASCII plot of the average line.
func RenderSweep(r *SweepResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.Title)
	fmt.Fprintf(&sb, "(speed-up = t_sequential / t_strategy; baseline seconds in brackets)\n\n")

	fmt.Fprintf(&sb, "%-22s", r.Param)
	for _, name := range r.Names {
		fmt.Fprintf(&sb, "%*s", colWidth(name), name)
	}
	fmt.Fprintf(&sb, "%12s\n", "average")

	fmt.Fprintf(&sb, "%-22s", "(baseline)")
	for i, name := range r.Names {
		cell := fmtSec(r.Baseline[i])
		if m := r.baselineMark(i); m != "" {
			cell = m
		}
		fmt.Fprintf(&sb, "%*s", colWidth(name), fmt.Sprintf("[%ss]", cell))
	}
	sb.WriteString("\n")

	for pi, p := range r.Params {
		fmt.Fprintf(&sb, "%-22d", p)
		for wi, name := range r.Names {
			cell := fmtSpeedup(r.Speedups[wi][pi])
			if m := r.mark(wi, pi); m != "" {
				cell = m
			}
			fmt.Fprintf(&sb, "%*s", colWidth(name), cell)
		}
		fmt.Fprintf(&sb, "%12s\n", fmtSpeedup(r.Average[pi]))
	}
	sb.WriteString("\n")
	sb.WriteString(renderAverageChart(r))
	return sb.String()
}

func colWidth(name string) int {
	w := len(name) + 2
	if w < 12 {
		w = 12
	}
	return w
}

func fmtSec(s float64) string {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return "timeout"
	}
	switch {
	case s < 0.01:
		return fmt.Sprintf("%.4f", s)
	case s < 1:
		return fmt.Sprintf("%.3f", s)
	default:
		return fmt.Sprintf("%.2f", s)
	}
}

func fmtSpeedup(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	return fmt.Sprintf("%.2fx", v)
}

// renderAverageChart draws the average speed-up per parameter as a bar
// chart, the textual analogue of the paper's figure.
func renderAverageChart(r *SweepResult) string {
	var sb strings.Builder
	maxAvg := 1.0
	for _, v := range r.Average {
		if !math.IsNaN(v) && v > maxAvg {
			maxAvg = v
		}
	}
	const width = 48
	fmt.Fprintf(&sb, "average speed-up over %s (| marks 1.0x):\n", r.Param)
	onePos := int(float64(width) / maxAvg)
	for pi, p := range r.Params {
		v := r.Average[pi]
		if math.IsNaN(v) {
			fmt.Fprintf(&sb, "%8d  (timeout)\n", p)
			continue
		}
		bars := int(v / maxAvg * float64(width))
		line := make([]byte, width+1)
		for i := range line {
			switch {
			case i < bars:
				line[i] = '#'
			case i == onePos:
				line[i] = '|'
			default:
				line[i] = ' '
			}
		}
		fmt.Fprintf(&sb, "%8d  %s %.2fx\n", p, string(line), v)
	}
	return sb.String()
}

// RenderTable1 renders Table I.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table I: results for grover benchmarks (strategy DD-repeating)\n")
	sb.WriteString("all times in seconds\n\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s %14s   %s\n", "Benchmark", "t_sota", "t_general", "t_DD-repeat", "(best general)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12s %12s %14s   %s\n",
			r.Name, fmtCell(r.TSota, r.SotaMark), fmtCell(r.TGeneral, r.GeneralMark),
			fmtCell(r.TRepeating, r.RepeatingMark), r.GeneralName)
	}
	return sb.String()
}

// fmtCell renders a seconds cell, preferring the failure mark.
func fmtCell(v float64, mark string) string {
	if mark != "" {
		return mark
	}
	return fmtSec(v)
}

// RenderTable2 renders Table II.
func RenderTable2(rows []Table2Row, budget float64) string {
	var sb strings.Builder
	sb.WriteString("Table II: results for shor benchmarks (strategy DD-construct)\n")
	sb.WriteString("all times in seconds; gate-level columns use the Beauregard 2n+3-qubit circuit,\n")
	sb.WriteString("DD-construct builds the oracle directly on n+1 qubits\n\n")
	fmt.Fprintf(&sb, "%-16s %7s %12s %12s %15s %8s   %s\n",
		"Benchmark", "qubits", "t_sota", "t_general", "t_DD-construct", "qubits'", "(best general)")
	for _, r := range rows {
		sota := fmtSec(r.TSota)
		switch {
		case r.SotaTimeout:
			sota = fmt.Sprintf(">%s", fmtSec(budget))
		case r.SotaMark != "":
			sota = r.SotaMark
		}
		general := fmtSec(r.TGeneral)
		name := r.GeneralName
		if r.GeneralTimeout {
			general = fmt.Sprintf(">%s", fmtSec(budget))
			if r.GeneralMark != "" && r.GeneralMark != "timeout" {
				general = r.GeneralMark
			}
			name = ""
		}
		fmt.Fprintf(&sb, "%-16s %7d %12s %12s %15s %8d   %s\n",
			r.Name, r.QubitsGate, sota, general, fmtSec(r.TConstruct), r.QubitsConstruct, name)
	}
	return sb.String()
}

// RenderFig5 renders the size-trace comparison.
func RenderFig5(r *TraceResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 5 / Example 3: DD sizes along Eq. 1 vs. combining operations (%s)\n\n", r.Workload)
	fmt.Fprintf(&sb, "sequential (Eq. 1): one matrix-vector multiplication per gate\n")
	fmt.Fprintf(&sb, "%-10s %10s %12s\n", "gate", "op nodes", "state nodes")
	for _, tp := range sampleTrace(r.Seq, 20) {
		fmt.Fprintf(&sb, "%-10d %10d %12d\n", tp.GateIndex, tp.OpSize, tp.StateSize)
	}
	fmt.Fprintf(&sb, "\ncombined (k-operations, k=4): gates multiplied together first\n")
	fmt.Fprintf(&sb, "%-10s %10s %12s\n", "gate", "op nodes", "state nodes")
	for _, tp := range sampleTrace(r.Combined, 20) {
		fmt.Fprintf(&sb, "%-10d %10d %12d\n", tp.GateIndex, tp.OpSize, tp.StateSize)
	}
	fmt.Fprintf(&sb, "\ntotal multiplication/addition recursions (work metric):\n")
	fmt.Fprintf(&sb, "  sequential: %d\n  combined:   %d  (%.2fx less work)\n",
		r.SeqRecursions, r.CombinedRecursions,
		float64(r.SeqRecursions)/float64(r.CombinedRecursions))
	return sb.String()
}

// sampleTrace thins a trace to at most n evenly spaced points.
func sampleTrace(tr []core.TracePoint, n int) []core.TracePoint {
	if len(tr) <= n {
		return tr
	}
	out := make([]core.TracePoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, tr[i*len(tr)/n])
	}
	return out
}
