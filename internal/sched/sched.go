// Package sched reorders circuits without changing their semantics,
// exploiting only the trivial commutation rule (gates on disjoint
// qubits commute). Two schedules are provided:
//
//   - Layers: ASAP layering — every gate moves to the earliest layer in
//     which none of its qubits are busy. Gates inside one layer act on
//     disjoint qubits, so combining a layer multiplies structurally
//     independent DDs.
//   - ByLocality: inside each ASAP layer gates are ordered by their
//     lowest qubit, so consecutive gates in the flattened sequence tend
//     to act on neighbouring wires — runs that the paper's combination
//     strategies turn into small operation DDs.
//
// Reordering is a legality-preserving transformation in the spirit of
// Sec. IV-B's "choosing and combining those operations in a fashion
// which suits DD-based simulation"; BenchmarkAblationScheduling
// measures its actual effect.
package sched

import (
	"sort"

	"repro/internal/circuit"
)

// Layers partitions the gate sequence into ASAP layers. The
// concatenation of the layers is a valid reordering of the circuit
// (only disjoint-support gates are ever swapped).
func Layers(c *circuit.Circuit) [][]circuit.Gate {
	var layers [][]circuit.Gate
	depthOf := make([]int, c.NQubits) // next free layer per qubit
	for _, g := range c.Gates {
		layer := 0
		for _, q := range support(g) {
			if depthOf[q] > layer {
				layer = depthOf[q]
			}
		}
		for len(layers) <= layer {
			layers = append(layers, nil)
		}
		layers[layer] = append(layers[layer], g)
		for _, q := range support(g) {
			depthOf[q] = layer + 1
		}
	}
	return layers
}

// Flatten reassembles layers into a circuit.
func Flatten(nQubits int, layers [][]circuit.Gate, name string) *circuit.Circuit {
	out := circuit.New(nQubits)
	out.Name = name
	for _, layer := range layers {
		out.Gates = append(out.Gates, layer...)
	}
	return out
}

// ByLocality returns a reordered copy of the circuit: ASAP layers with
// gates inside each layer sorted by their lowest wire. The result is
// behaviourally identical to the input.
func ByLocality(c *circuit.Circuit) *circuit.Circuit {
	layers := Layers(c)
	for _, layer := range layers {
		sort.SliceStable(layer, func(i, j int) bool {
			return minQubit(layer[i]) < minQubit(layer[j])
		})
	}
	return Flatten(c.NQubits, layers, c.Name)
}

// ASAP returns the plain ASAP-layered reordering (no intra-layer
// sorting beyond arrival order).
func ASAP(c *circuit.Circuit) *circuit.Circuit {
	return Flatten(c.NQubits, Layers(c), c.Name)
}

func support(g circuit.Gate) []int {
	qs := []int{g.Target}
	for _, ctl := range g.Controls {
		qs = append(qs, ctl.Qubit)
	}
	return qs
}

func minQubit(g circuit.Gate) int {
	m := g.Target
	for _, ctl := range g.Controls {
		if ctl.Qubit < m {
			m = ctl.Qubit
		}
	}
	return m
}

// Depth returns the layered depth (equals circuit.Depth, exposed here
// for the scheduling reports).
func Depth(c *circuit.Circuit) int { return len(Layers(c)) }
