// Package sched reorders circuits without changing their semantics,
// exploiting only the trivial commutation rule (gates on disjoint
// qubits commute). Two schedules are provided:
//
//   - Layers: ASAP layering — every gate moves to the earliest layer in
//     which none of its qubits are busy. Gates inside one layer act on
//     disjoint qubits, so combining a layer multiplies structurally
//     independent DDs.
//   - ByLocality: inside each ASAP layer gates are ordered by their
//     lowest qubit, so consecutive gates in the flattened sequence tend
//     to act on neighbouring wires — runs that the paper's combination
//     strategies turn into small operation DDs.
//
// Reordering is a legality-preserving transformation in the spirit of
// Sec. IV-B's "choosing and combining those operations in a fashion
// which suits DD-based simulation"; BenchmarkAblationScheduling
// measures its actual effect.
package sched

import (
	"sort"

	"repro/internal/circuit"
)

// Layers partitions the gate sequence into ASAP layers. The
// concatenation of the layers is a valid reordering of the circuit
// (only disjoint-support gates are ever swapped).
func Layers(c *circuit.Circuit) [][]circuit.Gate {
	var layers [][]circuit.Gate
	depthOf := make([]int, c.NQubits) // next free layer per qubit
	for _, g := range c.Gates {
		layer := 0
		for _, q := range support(g) {
			if depthOf[q] > layer {
				layer = depthOf[q]
			}
		}
		for len(layers) <= layer {
			layers = append(layers, nil)
		}
		layers[layer] = append(layers[layer], g)
		for _, q := range support(g) {
			depthOf[q] = layer + 1
		}
	}
	return layers
}

// Flatten reassembles layers into a circuit.
func Flatten(nQubits int, layers [][]circuit.Gate, name string) *circuit.Circuit {
	out := circuit.New(nQubits)
	out.Name = name
	for _, layer := range layers {
		out.Gates = append(out.Gates, layer...)
	}
	return out
}

// ByLocality returns a reordered copy of the circuit: ASAP layers with
// gates inside each layer sorted by their lowest wire. The result is
// behaviourally identical to the input.
func ByLocality(c *circuit.Circuit) *circuit.Circuit {
	layers := Layers(c)
	for _, layer := range layers {
		sort.SliceStable(layer, func(i, j int) bool {
			return minQubit(layer[i]) < minQubit(layer[j])
		})
	}
	return Flatten(c.NQubits, layers, c.Name)
}

// ASAP returns the plain ASAP-layered reordering (no intra-layer
// sorting beyond arrival order).
func ASAP(c *circuit.Circuit) *circuit.Circuit {
	return Flatten(c.NQubits, Layers(c), c.Name)
}

func support(g circuit.Gate) []int {
	qs := []int{g.Target}
	for _, ctl := range g.Controls {
		qs = append(qs, ctl.Qubit)
	}
	return qs
}

func minQubit(g circuit.Gate) int {
	m := g.Target
	for _, ctl := range g.Controls {
		if ctl.Qubit < m {
			m = ctl.Qubit
		}
	}
	return m
}

// Depth returns the layered depth (equals circuit.Depth, exposed here
// for the scheduling reports).
func Depth(c *circuit.Circuit) int { return len(Layers(c)) }

// StaticOrder proposes a DD variable order for c from its qubit-
// interaction graph — the circuit-preprocessing reorder trick of
// arXiv 2211.07110: qubits that interact (share multi-qubit gates)
// should sit on adjacent DD levels, because entanglement between
// distant levels multiplies node counts across every level in between.
//
// The heuristic is a greedy linear arrangement. Edge weights count the
// multi-qubit gates coupling each qubit pair; the arrangement starts
// from the qubit with the heaviest total coupling and repeatedly
// appends the unplaced qubit with the strongest connection to the
// already-placed set (falling back to the heaviest unplaced qubit when
// a new connected component starts). Ties break towards the lower
// qubit index, so the pass is deterministic.
//
// The result uses the dd reordering convention order[level] = circuit
// qubit and is always a permutation of [0, NQubits); feeding it to
// core.Options.InitialOrder reorders the run without any circuit
// transformation — gates are mapped through the permutation at
// absorption time.
func StaticOrder(c *circuit.Circuit) []int {
	n := c.NQubits
	w := make([][]int, n)
	for i := range w {
		w[i] = make([]int, n)
	}
	deg := make([]int, n)
	for _, g := range c.Gates {
		qs := support(g)
		for i := 0; i < len(qs); i++ {
			for j := i + 1; j < len(qs); j++ {
				a, b := qs[i], qs[j]
				if a == b {
					continue
				}
				w[a][b]++
				w[b][a]++
				deg[a]++
				deg[b]++
			}
		}
	}
	placed := make([]bool, n)
	conn := make([]int, n) // coupling of each unplaced qubit to the placed set
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore, seeding := -1, -1, true
		for q := 0; q < n; q++ {
			if placed[q] {
				continue
			}
			score := conn[q]
			if score > 0 {
				if seeding || score > bestScore {
					best, bestScore, seeding = q, score, false
				}
			} else if seeding && deg[q] > bestScore {
				best, bestScore = q, deg[q]
			}
		}
		placed[best] = true
		order = append(order, best)
		for q := 0; q < n; q++ {
			if !placed[q] {
				conn[q] += w[best][q]
			}
		}
	}
	return order
}
