// These tests drive internal/core, which itself imports sched for the
// static reorder pass — in-package tests would form an import cycle, so
// they live in the external test package.
package sched_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/sched"
	"repro/internal/verify"
)

func TestReorderingUnderStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := verify.RandomCircuit(rng, 5, 60)
	ref, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []*circuit.Circuit{sched.ASAP(c), sched.ByLocality(c)} {
		res, err := core.Run(variant, core.Options{Strategy: core.KOperations{K: 4}, Engine: ref.Engine})
		if err != nil {
			t.Fatal(err)
		}
		if f := ref.Engine.Fidelity(res.State, ref.State); math.Abs(f-1) > 1e-9 {
			t.Fatalf("reordered simulation differs: fidelity %v", f)
		}
	}
}

// crossCircuit entangles qubit i with qubit i+n/2 — the canonical
// order-sensitive workload: identity order pays 2^(n/2) nodes, an
// interleaved order O(n).
func crossCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	half := n / 2
	for i := 0; i < half; i++ {
		c.H(i)
		c.CX(i, i+half)
	}
	return c
}

func TestStaticOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(7)
		c := verify.RandomCircuit(rng, n, 30)
		order := sched.StaticOrder(c)
		if len(order) != n || !dd.IsPermutation(order) {
			t.Fatalf("trial %d: StaticOrder returned %v for %d qubits", trial, order, n)
		}
		again := sched.StaticOrder(c)
		for l := range order {
			if order[l] != again[l] {
				t.Fatalf("trial %d: StaticOrder not deterministic: %v vs %v", trial, order, again)
			}
		}
	}
}

func TestStaticOrderInterleavesCrossRegisters(t *testing.T) {
	n := 8
	order := sched.StaticOrder(crossCircuit(n))
	pos := make([]int, n)
	for l, q := range order {
		pos[q] = l
	}
	for i := 0; i < n/2; i++ {
		if d := pos[i] - pos[i+n/2]; d != 1 && d != -1 {
			t.Fatalf("qubits %d and %d not adjacent in static order %v", i, i+n/2, order)
		}
	}
}

// TestSchedulesComposedWithStaticOrder composes the gate schedulers
// with the static reorder pass: the rescheduled circuit must stay legal
// (per-qubit wire order preserved) and simulating it under the derived
// variable order must reproduce the original circuit's amplitudes.
func TestSchedulesComposedWithStaticOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(4)
		c := verify.RandomCircuit(rng, n, 40)
		oracle := dense.Simulate(c)
		for _, variant := range []*circuit.Circuit{sched.ASAP(c), sched.ByLocality(c)} {
			checkWireOrder(t, c, variant)
			order := sched.StaticOrder(variant)
			res, err := core.Run(variant, core.Options{
				InitialOrder: order,
				Strategy:     core.KOperations{K: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			amps := dd.VectorInOrder(res.State, res.Order)
			if f := verify.Fidelity(amps, oracle); f < 1-1e-9 {
				t.Fatalf("trial %d: schedule+static order changed semantics (fidelity %v, order %v)",
					trial, f, order)
			}
		}
		// The same composition through the automatic pass.
		res, err := core.Run(sched.ByLocality(c), core.Options{Reorder: "static"})
		if err != nil {
			t.Fatal(err)
		}
		amps := dd.VectorInOrder(res.State, res.Order)
		if f := verify.Fidelity(amps, oracle); f < 1-1e-9 {
			t.Fatalf("trial %d: Reorder=static run changed semantics (fidelity %v)", trial, f)
		}
	}
}

func checkWireOrder(t *testing.T, orig, variant *circuit.Circuit) {
	t.Helper()
	key := func(g circuit.Gate) string {
		s := g.Name
		for _, c := range g.Controls {
			s += string(rune('0' + c.Qubit))
		}
		return s + string(rune('0'+g.Target))
	}
	for q := 0; q < orig.NQubits; q++ {
		var a, b []string
		for _, g := range orig.Gates {
			if touchesQubit(g, q) {
				a = append(a, key(g))
			}
		}
		for _, g := range variant.Gates {
			if touchesQubit(g, q) {
				b = append(b, key(g))
			}
		}
		if len(a) != len(b) {
			t.Fatalf("qubit %d gate count changed", q)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("qubit %d wire order changed at %d: %s vs %s", q, i, a[i], b[i])
			}
		}
	}
}

func touchesQubit(g circuit.Gate, q int) bool {
	if g.Target == q {
		return true
	}
	for _, c := range g.Controls {
		if c.Qubit == q {
			return true
		}
	}
	return false
}
