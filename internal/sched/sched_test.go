package sched

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dense"
)

func randomCircuit(rng *rand.Rand, n, length int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < length; i++ {
		q := rng.Intn(n)
		p := (q + 1 + rng.Intn(n-1)) % n
		switch rng.Intn(4) {
		case 0:
			c.H(q)
		case 1:
			c.T(q)
		case 2:
			c.CX(q, p)
		default:
			c.CP(rng.Float64(), q, p)
		}
	}
	return c
}

func TestLayersAreDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(rng, 6, 60)
	layers := Layers(c)
	total := 0
	for li, layer := range layers {
		used := map[int]bool{}
		for _, g := range layer {
			for _, q := range support(g) {
				if used[q] {
					t.Fatalf("layer %d reuses qubit %d", li, q)
				}
				used[q] = true
			}
			total++
		}
	}
	if total != c.GateCount() {
		t.Fatalf("layers hold %d gates, circuit has %d", total, c.GateCount())
	}
	if len(layers) != c.Depth() {
		t.Fatalf("layer count %d != Depth %d", len(layers), c.Depth())
	}
	if Depth(c) != c.Depth() {
		t.Fatal("Depth helper disagrees")
	}
}

func TestLayersPreserveWireOrder(t *testing.T) {
	// Gates sharing a qubit must keep their relative order across
	// layers.
	rng := rand.New(rand.NewSource(2))
	c := randomCircuit(rng, 5, 50)
	reordered := ASAP(c)
	// Per qubit, the subsequence of gates touching it must be identical.
	for q := 0; q < c.NQubits; q++ {
		var orig, after []string
		for _, g := range c.Gates {
			if touches(g, q) {
				orig = append(orig, gateKey(g))
			}
		}
		for _, g := range reordered.Gates {
			if touches(g, q) {
				after = append(after, gateKey(g))
			}
		}
		if len(orig) != len(after) {
			t.Fatalf("qubit %d gate count changed", q)
		}
		for i := range orig {
			if orig[i] != after[i] {
				t.Fatalf("qubit %d order changed at %d: %s vs %s", q, i, orig[i], after[i])
			}
		}
	}
}

func touches(g circuit.Gate, q int) bool {
	for _, s := range support(g) {
		if s == q {
			return true
		}
	}
	return false
}

func gateKey(g circuit.Gate) string {
	return g.Name + string(rune('0'+g.Target))
}

func TestReorderingsPreserveSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(rng, 3+rng.Intn(4), 40)
		oracle := dense.Simulate(c)
		for _, variant := range []*circuit.Circuit{ASAP(c), ByLocality(c)} {
			got := dense.Simulate(variant)
			if f := oracle.Fidelity(got); f < 1-1e-9 {
				t.Fatalf("trial %d: reordering changed semantics (fidelity %v)", trial, f)
			}
			if variant.GateCount() != c.GateCount() {
				t.Fatalf("trial %d: gate count changed", trial)
			}
			if err := variant.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestByLocalitySortsWithinLayers(t *testing.T) {
	c := circuit.New(4)
	c.H(3).H(1).H(2).H(0) // one layer, scrambled
	out := ByLocality(c)
	for i, g := range out.Gates {
		if g.Target != i {
			t.Fatalf("intra-layer sorting wrong: %v", out.Gates)
		}
	}
}
