package dynamic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gates"
)

func g(name string, m gates.Matrix, target int) circuit.Gate {
	return circuit.Gate{Name: name, Matrix: m, Target: target}
}

func TestUnitaryOnlyProgramMatchesCore(t *testing.T) {
	p := New(2, 0)
	p.Gate(g("h", gates.H, 0))
	p.Gate(circuit.Gate{Name: "x", Matrix: gates.X, Target: 1,
		Controls: []dd.Control{dd.Pos(0)}})
	res, err := p.Run(core.Options{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	w := 1 / math.Sqrt2
	if a := res.State.Amplitude(0); math.Abs(real(a)-w) > 1e-9 {
		t.Fatalf("Bell amplitude %v", a)
	}
	if a := res.State.Amplitude(3); math.Abs(real(a)-w) > 1e-9 {
		t.Fatalf("Bell amplitude %v", a)
	}
}

func TestMeasureCollapsesAndRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	zeros, ones := 0, 0
	for i := 0; i < 400; i++ {
		p := New(2, 1)
		p.Gate(g("h", gates.H, 0))
		p.Gate(circuit.Gate{Name: "x", Matrix: gates.X, Target: 1, Controls: []dd.Control{dd.Pos(0)}})
		p.Measure(0, 0)
		res, err := p.Run(core.Options{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		bit := int(res.Classical & 1)
		if bit == 0 {
			zeros++
		} else {
			ones++
		}
		// Qubit 1 must be perfectly correlated after the collapse.
		if pq := res.State.Prob(1, bit); math.Abs(pq-1) > 1e-9 {
			t.Fatalf("correlation broken: P(q1=%d)=%v", bit, pq)
		}
	}
	if zeros < 100 || ones < 100 {
		t.Fatalf("measurement statistics off: %d zeros, %d ones", zeros, ones)
	}
}

func TestConditionalGate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		// Measure a |+> qubit, then conditionally flip qubit 1 so it
		// always ends equal to the measured bit; finally verify.
		p := New(2, 1)
		p.Gate(g("h", gates.H, 0))
		p.Measure(0, 0)
		p.GateIf(g("x", gates.X, 1), 1, 1)
		res, err := p.Run(core.Options{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		bit := int(res.Classical & 1)
		if pq := res.State.Prob(1, bit); math.Abs(pq-1) > 1e-9 {
			t.Fatalf("conditional X not applied correctly: bit=%d P=%v", bit, pq)
		}
	}
}

func TestResetProducesZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		p := New(1, 0)
		p.Gate(g("h", gates.H, 0))
		p.Reset(0)
		res, err := p.Run(core.Options{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if pq := res.State.Prob(0, 0); math.Abs(pq-1) > 1e-9 {
			t.Fatalf("reset left P(0)=%v", pq)
		}
	}
}

func TestTeleportation(t *testing.T) {
	// Teleport an arbitrary single-qubit state from qubit 0 to qubit 2
	// using measurements and classically-controlled corrections — the
	// canonical dynamic-circuit integration test.
	rng := rand.New(rand.NewSource(5))
	theta, phi, lam := 0.731, 1.21, 0.4
	for i := 0; i < 30; i++ {
		p := New(3, 2)
		// Prepare the payload on qubit 0.
		p.Gate(circuit.Gate{Name: "u", Matrix: gates.U(theta, phi, lam), Target: 0})
		// Bell pair on qubits 1, 2.
		p.Gate(g("h", gates.H, 1))
		p.Gate(circuit.Gate{Name: "x", Matrix: gates.X, Target: 2, Controls: []dd.Control{dd.Pos(1)}})
		// Bell measurement of qubits 0, 1.
		p.Gate(circuit.Gate{Name: "x", Matrix: gates.X, Target: 1, Controls: []dd.Control{dd.Pos(0)}})
		p.Gate(g("h", gates.H, 0))
		p.Measure(0, 0)
		p.Measure(1, 1)
		// Corrections on qubit 2.
		p.GateIf(g("x", gates.X, 2), 0b10, 0b10)
		p.GateIf(g("z", gates.Z, 2), 0b01, 0b01)
		res, err := p.Run(core.Options{Strategy: core.KOperations{K: 2}}, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Qubit 2 must now hold U|0>: P(q2=1) = |U10|².
		u := gates.U(theta, phi, lam)
		want := real(u[1][0])*real(u[1][0]) + imag(u[1][0])*imag(u[1][0])
		if got := res.State.Prob(2, 1); math.Abs(got-want) > 1e-9 {
			t.Fatalf("teleportation failed: P(q2=1)=%v, want %v", got, want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Program{
		func() *Program { p := New(1, 0); p.Gate(g("x", gates.X, 5)); return p }(),
		func() *Program { p := New(1, 0); p.Measure(0, 0); return p }(), // no clbits
		func() *Program { p := New(1, 1); p.Measure(3, 0); return p }(),
		func() *Program { p := New(1, 1); p.Reset(3); return p }(),
		func() *Program {
			p := New(1, 1)
			p.GateIf(g("x", gates.X, 0), 0b10, 0) // mask beyond register
			return p
		}(),
		func() *Program {
			p := New(1, 0)
			p.Gate(circuit.Gate{Name: "bad", Matrix: gates.Matrix{{2, 0}, {0, 1}}, Target: 0})
			return p
		}(),
		func() *Program {
			p := New(2, 0)
			p.Gate(circuit.Gate{Name: "x", Matrix: gates.X, Target: 0, Controls: []dd.Control{dd.Pos(0)}})
			return p
		}(),
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid program accepted", i)
		}
	}
	mustPanic(t, func() { New(0, 0) })
	mustPanic(t, func() { New(1, 65) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestRunRejectsInitialState(t *testing.T) {
	p := New(1, 0)
	p.Gate(g("h", gates.H, 0))
	eng := dd.New()
	init := eng.ZeroState(1)
	_, err := p.Run(core.Options{Engine: eng, InitialState: &init}, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("InitialState accepted")
	}
}
