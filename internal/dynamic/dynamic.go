// Package dynamic executes circuits with intermediate measurements,
// qubit resets and classically-controlled gates — the "dynamic
// circuit" model used by semiclassical phase estimation (footnote 7 of
// the paper / Beauregard's one-control-qubit trick).
//
// A Program interleaves unitary gates with measure/reset operations and
// classical conditions over previously measured bits. Unitary runs
// between non-unitary operations are simulated through the core
// combination strategies, so all of the paper's machinery applies to
// the unitary segments.
package dynamic

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gates"
)

// OpKind discriminates program operations.
type OpKind int

// Operation kinds.
const (
	OpGate OpKind = iota
	OpMeasure
	OpReset
)

// Op is one program step. For OpGate, Cond (optional) gates the
// application on previously measured classical bits. For OpMeasure the
// qubit is measured into Clbit (collapsing the state); OpReset
// measures and flips the qubit back to |0>.
type Op struct {
	Kind  OpKind
	Gate  circuit.Gate // OpGate
	Qubit int          // OpMeasure / OpReset
	Clbit int          // OpMeasure
	Cond  *Condition   // OpGate only
}

// Condition gates an operation on the classical register:
// (bits & Mask) == Value.
type Condition struct {
	Mask  uint64
	Value uint64
}

// Program is a dynamic circuit.
type Program struct {
	NQubits int
	NClbits int
	Ops     []Op
}

// New returns an empty program.
func New(nQubits, nClbits int) *Program {
	if nQubits <= 0 {
		panic(fmt.Sprintf("dynamic: New(%d, %d): qubit count must be positive", nQubits, nClbits))
	}
	if nClbits < 0 || nClbits > 64 {
		panic(fmt.Sprintf("dynamic: New: classical bit count %d out of [0,64]", nClbits))
	}
	return &Program{NQubits: nQubits, NClbits: nClbits}
}

// Gate appends an unconditional gate.
func (p *Program) Gate(g circuit.Gate) *Program {
	p.Ops = append(p.Ops, Op{Kind: OpGate, Gate: g})
	return p
}

// GateIf appends a gate applied only when (classical & mask) == value.
func (p *Program) GateIf(g circuit.Gate, mask, value uint64) *Program {
	p.Ops = append(p.Ops, Op{Kind: OpGate, Gate: g, Cond: &Condition{Mask: mask, Value: value}})
	return p
}

// Measure appends a measurement of qubit into clbit.
func (p *Program) Measure(qubit, clbit int) *Program {
	p.Ops = append(p.Ops, Op{Kind: OpMeasure, Qubit: qubit, Clbit: clbit})
	return p
}

// Reset appends a reset of qubit to |0>.
func (p *Program) Reset(qubit int) *Program {
	p.Ops = append(p.Ops, Op{Kind: OpReset, Qubit: qubit})
	return p
}

// Validate checks indices and conditions.
func (p *Program) Validate() error {
	for i, op := range p.Ops {
		switch op.Kind {
		case OpGate:
			g := op.Gate
			if g.Target < 0 || g.Target >= p.NQubits {
				return fmt.Errorf("dynamic: op %d: target %d out of range", i, g.Target)
			}
			seen := map[int]bool{g.Target: true}
			for _, ctl := range g.Controls {
				if ctl.Qubit < 0 || ctl.Qubit >= p.NQubits {
					return fmt.Errorf("dynamic: op %d: control %d out of range", i, ctl.Qubit)
				}
				if seen[ctl.Qubit] {
					return fmt.Errorf("dynamic: op %d: qubit %d used twice", i, ctl.Qubit)
				}
				seen[ctl.Qubit] = true
			}
			if err := gates.CheckUnitary(g.Matrix, 1e-9); err != nil {
				return fmt.Errorf("dynamic: op %d: %w", i, err)
			}
			if op.Cond != nil && p.NClbits < 64 && op.Cond.Mask >= 1<<uint(p.NClbits) {
				return fmt.Errorf("dynamic: op %d: condition mask %#x exceeds %d classical bits", i, op.Cond.Mask, p.NClbits)
			}
		case OpMeasure:
			if op.Qubit < 0 || op.Qubit >= p.NQubits {
				return fmt.Errorf("dynamic: op %d: measure qubit %d out of range", i, op.Qubit)
			}
			if op.Clbit < 0 || op.Clbit >= p.NClbits {
				return fmt.Errorf("dynamic: op %d: clbit %d out of range", i, op.Clbit)
			}
		case OpReset:
			if op.Qubit < 0 || op.Qubit >= p.NQubits {
				return fmt.Errorf("dynamic: op %d: reset qubit %d out of range", i, op.Qubit)
			}
		default:
			return fmt.Errorf("dynamic: op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// Result is the outcome of one program execution.
type Result struct {
	State     dd.VEdge
	Classical uint64 // final classical register
	Engine    *dd.Engine
	Duration  time.Duration
	// Aggregated over all unitary segments.
	MatVecSteps  int
	MatMatSteps  int
	Measurements int
}

// Run executes the program from |0…0>. Unitary runs between
// measurements are simulated with opt's strategy (opt.InitialState is
// managed internally and must be unset).
func (p *Program) Run(opt core.Options, rng *rand.Rand) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.InitialState != nil {
		return nil, fmt.Errorf("dynamic: Run manages the state; Options.InitialState must be nil")
	}
	eng := opt.Engine
	if eng == nil {
		eng = dd.New()
	}
	opt.Engine = eng

	start := time.Now()
	res := &Result{Engine: eng}
	state := eng.ZeroState(p.NQubits)
	var classical uint64

	// pending accumulates the current unitary segment.
	pending := circuit.New(p.NQubits)
	flush := func() error {
		if pending.GateCount() == 0 {
			return nil
		}
		opt.InitialState = &state
		r, err := core.Run(pending, opt)
		if err != nil {
			return err
		}
		state = r.State
		res.MatVecSteps += r.MatVecSteps
		res.MatMatSteps += r.MatMatSteps
		pending = circuit.New(p.NQubits)
		return nil
	}

	for i, op := range p.Ops {
		switch op.Kind {
		case OpGate:
			if op.Cond != nil && classical&op.Cond.Mask != op.Cond.Value {
				continue
			}
			pending.Append(op.Gate)
		case OpMeasure:
			if err := flush(); err != nil {
				return nil, fmt.Errorf("dynamic: op %d: %w", i, err)
			}
			bit, post := eng.MeasureQubit(state, op.Qubit, rng)
			state = post
			classical &^= 1 << uint(op.Clbit)
			classical |= uint64(bit) << uint(op.Clbit)
			res.Measurements++
		case OpReset:
			if err := flush(); err != nil {
				return nil, fmt.Errorf("dynamic: op %d: %w", i, err)
			}
			_, post := eng.ResetQubit(state, op.Qubit, rng)
			state = post
			res.Measurements++
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	res.State = state
	res.Classical = classical
	res.Duration = time.Since(start)
	return res, nil
}
