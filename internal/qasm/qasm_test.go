package qasm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/gates"
)

// --- expression parser ---------------------------------------------------

func evalString(t *testing.T, s string, env map[string]float64) float64 {
	t.Helper()
	e, err := parseExpr(s)
	if err != nil {
		t.Fatalf("parseExpr(%q): %v", s, err)
	}
	v, err := e.eval(env)
	if err != nil {
		t.Fatalf("eval(%q): %v", s, err)
	}
	return v
}

func TestExprBasics(t *testing.T) {
	cases := map[string]float64{
		"1":             1,
		"1.5e2":         150,
		"pi":            math.Pi,
		"-pi/2":         -math.Pi / 2,
		"pi/4":          math.Pi / 4,
		"2*pi":          2 * math.Pi,
		"1+2*3":         7,
		"(1+2)*3":       9,
		"2^3":           8,
		"2^3^2":         512, // right associative
		"-2^2":          -4,  // unary binds the power result
		"sin(pi/2)":     1,
		"cos(0)":        1,
		"sqrt(4)":       2,
		"ln(exp(2))":    2,
		"3-2-1":         0, // left associative
		"8/4/2":         1,
		"1 + 2 * (3-1)": 5,
	}
	for s, want := range cases {
		if got := evalString(t, s, nil); math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %v, want %v", s, got, want)
		}
	}
}

func TestExprVariables(t *testing.T) {
	env := map[string]float64{"theta": 0.5, "lam": 2}
	if got := evalString(t, "theta*lam + pi", env); math.Abs(got-(1+math.Pi)) > 1e-12 {
		t.Errorf("got %v", got)
	}
}

func TestExprErrors(t *testing.T) {
	bad := []string{"", "1+", "(1", "foo(1", "1)", "@", "1/0", "unknownfn(1)"}
	for _, s := range bad {
		e, err := parseExpr(s)
		if err == nil {
			if _, err = e.eval(nil); err == nil {
				t.Errorf("expression %q accepted", s)
			}
		}
	}
	// Unbound variable fails at evaluation time.
	e, err := parseExpr("zzz")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.eval(nil); err == nil {
		t.Error("unbound variable accepted")
	}
}

// --- parser ---------------------------------------------------------------

func TestParseBellProgram(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	prog, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NQubits != 2 || prog.Circuit.GateCount() != 2 {
		t.Fatalf("parsed %d qubits, %d gates", prog.Circuit.NQubits, prog.Circuit.GateCount())
	}
	if len(prog.Measurements) != 2 || prog.NClbits != 2 {
		t.Fatalf("measurements %v", prog.Measurements)
	}
	s := dense.Simulate(prog.Circuit)
	w := 1 / math.Sqrt2
	if math.Abs(real(s.Amps[0])-w) > 1e-9 || math.Abs(real(s.Amps[3])-w) > 1e-9 {
		t.Fatalf("not a Bell state: %v", s.Amps)
	}
}

func TestParseRegisterBroadcast(t *testing.T) {
	prog, err := ParseString(`
qreg q[3];
h q;
cx q[0], q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.GateCount() != 4 {
		t.Fatalf("broadcast h produced %d gates, want 4 total", prog.Circuit.GateCount())
	}
}

func TestParseTwoQregs(t *testing.T) {
	prog, err := ParseString(`
qreg a[2];
qreg b[3];
x a[1];
x b[0];
cx a[0], b[2];
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	if c.NQubits != 5 {
		t.Fatalf("qubits %d", c.NQubits)
	}
	if c.Gates[0].Target != 1 || c.Gates[1].Target != 2 {
		t.Fatalf("register offsets wrong: %+v", c.Gates[:2])
	}
	if c.Gates[2].Controls[0].Qubit != 0 || c.Gates[2].Target != 4 {
		t.Fatalf("cross-register cx wrong: %+v", c.Gates[2])
	}
}

func TestParseMeasureRegisterWide(t *testing.T) {
	prog, err := ParseString(`
qreg q[3];
creg c[3];
h q;
measure q -> c;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Measurements) != 3 {
		t.Fatalf("measurements %v", prog.Measurements)
	}
}

func TestParseCustomGate(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg q[2];
gate mybell a, b {
  h a;
  cx a, b;
}
mybell q[0], q[1];
`
	prog, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.GateCount() != 2 {
		t.Fatalf("custom gate expanded to %d gates, want 2", prog.Circuit.GateCount())
	}
	s := dense.Simulate(prog.Circuit)
	if math.Abs(real(s.Amps[3])-1/math.Sqrt2) > 1e-9 {
		t.Fatalf("custom gate semantics wrong: %v", s.Amps)
	}
}

func TestParseParametrisedCustomGate(t *testing.T) {
	src := `
qreg q[1];
gate twist(theta, phi) a {
  rz(theta) a;
  ry(phi/2) a;
  rz(-theta) a;
}
twist(pi/2, pi) q[0];
`
	prog, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.GateCount() != 3 {
		t.Fatalf("gates %d", prog.Circuit.GateCount())
	}
	// rz(pi/2), ry(pi/2), rz(-pi/2) — check the middle angle.
	if got := prog.Circuit.Gates[1].Params[0]; math.Abs(got-math.Pi/2) > 1e-12 {
		t.Fatalf("substituted angle %v", got)
	}
}

func TestParseNestedCustomGates(t *testing.T) {
	src := `
qreg q[2];
gate inner a { h a; }
gate outer a, b { inner a; cx a, b; inner b; }
outer q[0], q[1];
`
	prog, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.GateCount() != 3 {
		t.Fatalf("nested expansion gave %d gates", prog.Circuit.GateCount())
	}
}

func TestParseBuiltinCoverage(t *testing.T) {
	src := `
qreg q[3];
id q[0]; x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0]; t q[0]; tdg q[0];
sx q[0]; sxdg q[0];
rx(0.1) q[0]; ry(0.2) q[0]; rz(0.3) q[0];
p(0.4) q[0]; u1(0.5) q[0]; u2(0.1,0.2) q[0]; u3(0.1,0.2,0.3) q[0];
cx q[0],q[1]; cz q[0],q[1]; cy q[0],q[1]; ch q[0],q[1]; swap q[0],q[1];
crx(0.1) q[0],q[1]; cry(0.2) q[0],q[1]; crz(0.3) q[0],q[1];
cp(0.4) q[0],q[1]; cu1(0.5) q[0],q[1]; cu3(0.1,0.2,0.3) q[0],q[1];
ccx q[0],q[1],q[2]; ccz q[0],q[1],q[2]; cswap q[0],q[1],q[2];
rzz(0.6) q[0],q[1];
barrier q;
`
	prog, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.GateCount() == 0 {
		t.Fatal("no gates parsed")
	}
}

func TestParseSemantics(t *testing.T) {
	// u2(φ,λ) must equal U(π/2,φ,λ); rzz must be the two-qubit phase.
	prog, err := ParseString("qreg q[1]; u2(0.3,0.7) q[0];")
	if err != nil {
		t.Fatal(err)
	}
	want := gates.U(math.Pi/2, 0.3, 0.7)
	if !gates.ApproxEqual(prog.Circuit.Gates[0].Matrix, want, 1e-12, false) {
		t.Fatal("u2 semantics wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                         // no qreg
		"OPENQASM 3.0; qreg q[1];", // version
		"qreg q[1]; frob q[0];",    // unknown gate
		"qreg q[1]; h q[5];",       // out of range
		"qreg q[1]; h p[0];",       // unknown register
		"qreg q[2]; cx q[0],q[0];", // duplicate qubit
		"qreg q[1]; rx q[0];",      // missing param
		"qreg q[1]; rx(1,2) q[0];", // too many params
		"qreg q[1]; h q[0]",        // missing semicolon
		"qreg q[1]; gate g a { h a; } gate g a { x a; } g q[0];",         // dup def
		"qreg q[1]; gate h a { x a; } h q[0];",                           // shadows builtin
		"qreg q[1]; gate g a { g a; } g q[0];",                           // recursion
		"qreg q[1]; creg c[1]; measure q -> c[0]; measure q[0] -> d[0];", // bad creg
		"qreg q[2]; creg c[1]; measure q -> c;",                          // size mismatch
		"qreg q[1]; reset q[0];",                                         // unsupported
		"qreg q[1]; opaque o a;",                                         // unsupported
		"qreg q[1]; if (c==0) x q[0];",                                   // unsupported
		"qreg q[2]; qreg q[3];",                                          // duplicate qreg
		"qreg q[1]; h q[0]; }",                                           // unbalanced brace
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) accepted", src)
		}
	}
}

// --- exporter ---------------------------------------------------------------

func TestExportRoundTrip(t *testing.T) {
	src := `
qreg q[3];
h q[0];
t q[1];
u3(0.1,0.2,0.3) q[2];
cx q[0],q[1];
crz(0.5) q[1],q[2];
ccx q[0],q[1],q[2];
`
	prog, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExportString(prog.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parsing export:\n%s\n%v", out, err)
	}
	a := dense.Simulate(prog.Circuit)
	b := dense.Simulate(prog2.Circuit)
	if f := a.Fidelity(b); f < 1-1e-9 {
		t.Fatalf("round trip fidelity %v\nexport:\n%s", f, out)
	}
}

func TestExportNegativeControls(t *testing.T) {
	prog, err := ParseString("qreg q[2]; h q[0];")
	if err != nil {
		t.Fatal(err)
	}
	circ := prog.Circuit
	circ.MC("x", gates.X, []dd.Control{dd.Neg(1)}, 0)
	out, err := ExportString(circ)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x q[1];\ncx q[1],q[0];\nx q[1];") {
		t.Fatalf("negative control not conjugated:\n%s", out)
	}
	// Semantics must survive the conjugation.
	prog2, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	a := dense.Simulate(circ)
	b := dense.Simulate(prog2.Circuit)
	if f := a.Fidelity(b); f < 1-1e-9 {
		t.Fatalf("negative-control export fidelity %v", f)
	}
}

func TestExportUnsupported(t *testing.T) {
	prog, err := ParseString("qreg q[1]; h q[0];")
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	c.SY(0)
	if _, err := ExportString(c); err == nil {
		t.Fatal("sy export should fail (no qelib1 equivalent)")
	}
}

// QASM-imported circuits must simulate identically under all strategies.
func TestParsedCircuitUnderStrategies(t *testing.T) {
	src := `
qreg q[4];
h q;
cx q[0],q[1];
cp(pi/3) q[1],q[2];
ccx q[1],q[2],q[3];
u3(0.4,0.1,0.9) q[0];
rzz(0.7) q[2],q[3];
`
	prog, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ref := dense.Simulate(prog.Circuit)
	for _, st := range []core.Strategy{core.Sequential{}, core.KOperations{K: 3}, core.MaxSize{SMax: 32}} {
		res, err := core.Run(prog.Circuit, core.Options{Strategy: st})
		if err != nil {
			t.Fatal(err)
		}
		vec := res.State.ToVector()
		for i := range vec {
			d := vec[i] - ref.Amps[i]
			if math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
				t.Fatalf("%s: amplitude %d differs", st.Name(), i)
			}
		}
	}
}
