package qasm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestParseDynamicTeleportation(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c0[1];
creg c1[1];
// payload
u3(0.731,1.21,0.4) q[0];
// bell pair
h q[1];
cx q[1],q[2];
// bell measurement
cx q[0],q[1];
h q[0];
measure q[0] -> c0[0];
measure q[1] -> c1[0];
// corrections
if (c1 == 1) x q[2];
if (c0 == 1) z q[2];
`
	prog, err := ParseDynamicString(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NQubits != 3 || prog.NClbits != 2 {
		t.Fatalf("program dims %d/%d", prog.NQubits, prog.NClbits)
	}
	rng := rand.New(rand.NewSource(1))
	// |U10|² for u3(0.731,1.21,0.4)
	want := math.Sin(0.731/2) * math.Sin(0.731/2)
	for i := 0; i < 25; i++ {
		res, err := prog.Run(core.Options{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.State.Prob(2, 1); math.Abs(got-want) > 1e-9 {
			t.Fatalf("teleportation via QASM failed: P = %v, want %v", got, want)
		}
	}
}

func TestParseDynamicReset(t *testing.T) {
	prog, err := ParseDynamicString(`
qreg q[2];
h q[0];
reset q[0];
reset q;
`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	res, err := prog.Run(core.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.State.Prob(0, 0); math.Abs(p-1) > 1e-9 {
		t.Fatalf("reset failed: %v", p)
	}
}

func TestParseDynamicConditionOnWideRegister(t *testing.T) {
	// A 2-bit register condition compares the whole register.
	src := `
qreg q[3];
creg c[2];
x q[0];
x q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
if (c == 3) x q[2];
`
	prog, err := ParseDynamicString(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(core.Options{}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Classical != 3 {
		t.Fatalf("classical register %b, want 11", res.Classical)
	}
	if p := res.State.Prob(2, 1); math.Abs(p-1) > 1e-9 {
		t.Fatalf("conditioned X not applied: %v", p)
	}
	// Condition not met → gate skipped.
	src2 := `
qreg q[2];
creg c[1];
measure q[0] -> c[0];
if (c == 1) x q[1];
`
	prog2, err := ParseDynamicString(src2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := prog2.Run(core.Options{}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if p := res2.State.Prob(1, 0); math.Abs(p-1) > 1e-9 {
		t.Fatalf("unmet condition applied the gate: %v", p)
	}
}

func TestParseDynamicErrors(t *testing.T) {
	bad := []string{
		"qreg q[1]; if c == 1 x q[0];",              // missing parens
		"qreg q[1]; if (c == 1 x q[0];",             // missing ')'
		"qreg q[1]; creg c[1]; if (c != 1) x q[0];", // unsupported operator
		"qreg q[1]; if (d == 1) x q[0];",            // unknown creg
		"qreg q[1]; creg c[1]; if (c == 2) x q[0];", // value exceeds width
		"qreg q[1]; opaque o a;",                    // unsupported
		"qreg q[1]; reset r[0];",                    // unknown register
		"OPENQASM 3.0; qreg q[1];",                  // version
	}
	for _, src := range bad {
		if _, err := ParseDynamicString(src); err == nil {
			t.Errorf("ParseDynamicString(%q) accepted", src)
		}
	}
}

func TestParseDynamicMatchesStaticForUnitary(t *testing.T) {
	src := `
qreg q[3];
h q[0];
cx q[0],q[1];
ccx q[0],q[1],q[2];
t q[2];
`
	static, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := ParseDynamicString(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dyn.Run(core.Options{}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Run(static.Circuit, core.Options{Engine: res.Engine})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Engine.Fidelity(res.State, ref.State); f < 1-1e-9 {
		t.Fatalf("dynamic/static mismatch: fidelity %v", f)
	}
}
