package qasm

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
)

func TestRegisterSizeCapped(t *testing.T) {
	for _, src := range []string{
		"OPENQASM 2.0; qreg q[999999999];",
		"OPENQASM 2.0; qreg q[1]; creg c[999999999];",
	} {
		if _, err := ParseString(src); err == nil || !strings.Contains(err.Error(), "limit") {
			t.Errorf("ParseString(%q) err = %v, want register-limit error", src, err)
		}
	}
	if _, err := ParseString("OPENQASM 2.0; qreg q[4096];"); err != nil {
		t.Errorf("register at the limit rejected: %v", err)
	}
}

func TestGateExpansionCapped(t *testing.T) {
	// Each definition invokes the previous one four times, so eleven
	// levels expand to 4^11 ≈ 4M leaf gates — past the cap from under a
	// kilobyte of source.
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\nqreg q[1];\ngate g0 a { h a; }\n")
	for i := 1; i <= 11; i++ {
		fmt.Fprintf(&sb, "gate g%d a { %s}\n", i, strings.Repeat(fmt.Sprintf("g%d a; ", i-1), 4))
	}
	sb.WriteString("g11 q[0];\n")
	_, err := ParseString(sb.String())
	if err == nil || !strings.Contains(err.Error(), "expands") {
		t.Fatalf("err = %v, want expansion-cap error", err)
	}
}

func TestExportRejectsNonFiniteParams(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		c := circuit.New(1)
		c.RZ(bad, 0)
		if _, err := ExportString(c); err == nil {
			t.Errorf("ExportString with param %v succeeded, want error", bad)
		}
	}
}
