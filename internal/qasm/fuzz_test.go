package qasm

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse asserts two properties over arbitrary input: the parser
// never panics (it must reject garbage with an error), and any circuit
// it accepts survives an export→parse→export round trip — the second
// export is a fixpoint of the first, and the qubit count is preserved.
func FuzzParse(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.qasm"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no seed corpus in testdata/")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("OPENQASM 2.0; qreg q[1]; u3(0.1,0.2,0.3) q[0];")
	f.Add("qreg q[2]; gate g a { h a; } g q[0]; g q[1];")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1024 {
			return // bound per-input parse cost, not coverage
		}
		prog, err := ParseString(src)
		if err != nil {
			return // rejected input; only panics are failures
		}
		out, err := ExportString(prog.Circuit)
		if err != nil {
			// Some accepted circuits are outside the qelib1-expressible
			// subset (e.g. many-controlled rotations); that is a
			// documented export limitation, not a round-trip failure.
			return
		}
		prog2, err := ParseString(out)
		if err != nil {
			t.Fatalf("re-parse of exported program failed: %v\nexport:\n%s", err, out)
		}
		if prog2.Circuit.NQubits != prog.Circuit.NQubits {
			t.Fatalf("round trip changed qubit count: %d -> %d", prog.Circuit.NQubits, prog2.Circuit.NQubits)
		}
		out2, err := ExportString(prog2.Circuit)
		if err != nil {
			t.Fatalf("re-export failed: %v\nfirst export:\n%s", err, out)
		}
		if out2 != out {
			t.Fatalf("export is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	})
}
