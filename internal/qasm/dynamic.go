package qasm

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/dynamic"
)

// ParseDynamic parses an OpenQASM 2.0 program into a dynamic.Program,
// additionally supporting the non-unitary statements Parse rejects:
// mid-circuit `measure`, `reset`, and classical control
// `if (creg == value) gate …;`. Conditions compare one whole classical
// register against an integer, as OpenQASM 2.0 specifies.
func ParseDynamic(r io.Reader) (*dynamic.Program, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("qasm: read: %w", err)
	}
	return ParseDynamicString(string(src))
}

// ParseDynamicString parses a dynamic program from a string.
func ParseDynamicString(src string) (*dynamic.Program, error) {
	p := &parser{
		qregs: map[string]reg{},
		cregs: map[string]reg{},
		defs:  map[string]gateDef{},
	}
	stmts, err := splitStatements(stripComments(src))
	if err != nil {
		return nil, err
	}
	for _, s := range stmts {
		if name, size, ok := parseRegDecl(s, "qreg"); ok {
			if _, dup := p.qregs[name]; dup {
				return nil, fmt.Errorf("qasm: duplicate qreg %q", name)
			}
			p.qregs[name] = reg{offset: p.nqubits, size: size}
			p.qorder = append(p.qorder, name)
			p.nqubits += size
		}
		if name, size, ok := parseRegDecl(s, "creg"); ok {
			if _, dup := p.cregs[name]; dup {
				return nil, fmt.Errorf("qasm: duplicate creg %q", name)
			}
			p.cregs[name] = reg{offset: p.nclbits, size: size}
			p.corder = append(p.corder, name)
			p.nclbits += size
		}
	}
	if p.nqubits == 0 {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	if p.nclbits > 64 {
		return nil, fmt.Errorf("qasm: %d classical bits exceed the 64-bit register", p.nclbits)
	}
	prog := dynamic.New(p.nqubits, p.nclbits)

	// Unitary statements are routed through the standard parser by
	// letting it append into a scratch circuit, then transferring the
	// produced gates into the program (with the active condition).
	p.prog = &Program{Circuit: circuit.New(p.nqubits)}

	emit := func(cond *dynamic.Condition) {
		c := p.prog.Circuit
		for _, g := range c.Gates {
			if cond != nil {
				prog.GateIf(g, cond.Mask, cond.Value)
			} else {
				prog.Gate(g)
			}
		}
		c.Gates = c.Gates[:0]
	}

	for _, s := range stmts {
		switch {
		case s == "" || strings.HasPrefix(s, "OPENQASM") || strings.HasPrefix(s, "include") ||
			strings.HasPrefix(s, "qreg ") || strings.HasPrefix(s, "creg ") ||
			strings.HasPrefix(s, "barrier"):
			if strings.HasPrefix(s, "OPENQASM") {
				ver := strings.TrimSpace(strings.TrimPrefix(s, "OPENQASM"))
				if ver != "2.0" {
					return nil, fmt.Errorf("qasm: unsupported version %q (only 2.0)", ver)
				}
			}
		case strings.HasPrefix(s, "gate "):
			if err := p.gateDefinition(s); err != nil {
				return nil, err
			}
		case strings.HasPrefix(s, "measure"):
			before := len(p.prog.Measurements)
			if err := p.measure(s); err != nil {
				return nil, err
			}
			for _, m := range p.prog.Measurements[before:] {
				prog.Measure(m.Qubit, m.Clbit)
			}
		case strings.HasPrefix(s, "reset"):
			arg := strings.TrimSpace(strings.TrimPrefix(s, "reset"))
			qs, err := p.resolveArg(arg, p.qregs)
			if err != nil {
				return nil, err
			}
			for _, q := range qs {
				prog.Reset(q)
			}
		case strings.HasPrefix(s, "if"):
			cond, rest, err := p.parseIf(s)
			if err != nil {
				return nil, err
			}
			if err := p.application(rest, nil, nil, 0); err != nil {
				return nil, err
			}
			emit(cond)
		case strings.HasPrefix(s, "opaque"):
			return nil, fmt.Errorf("qasm: opaque gates are not supported")
		default:
			if err := p.application(s, nil, nil, 0); err != nil {
				return nil, err
			}
			emit(nil)
		}
	}
	return prog, nil
}

// parseIf handles `if (creg == value) statement`.
func (p *parser) parseIf(s string) (*dynamic.Condition, string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(s, "if"))
	if !strings.HasPrefix(rest, "(") {
		return nil, "", fmt.Errorf("qasm: malformed if %q", abbreviate(s))
	}
	close := strings.IndexByte(rest, ')')
	if close < 0 {
		return nil, "", fmt.Errorf("qasm: missing ')' in %q", abbreviate(s))
	}
	condStr := rest[1:close]
	stmt := strings.TrimSpace(rest[close+1:])
	parts := strings.Split(condStr, "==")
	if len(parts) != 2 {
		return nil, "", fmt.Errorf("qasm: only '==' conditions are supported, got %q", condStr)
	}
	regName := strings.TrimSpace(parts[0])
	r, ok := p.cregs[regName]
	if !ok {
		return nil, "", fmt.Errorf("qasm: unknown creg %q in condition", regName)
	}
	val, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 0, 64)
	if err != nil {
		return nil, "", fmt.Errorf("qasm: bad condition value in %q", condStr)
	}
	if r.size < 64 && val >= 1<<uint(r.size) {
		return nil, "", fmt.Errorf("qasm: condition value %d exceeds %d-bit register %q", val, r.size, regName)
	}
	mask := (uint64(1)<<uint(r.size) - 1) << uint(r.offset)
	return &dynamic.Condition{Mask: mask, Value: val << uint(r.offset)}, stmt, nil
}
