package qasm

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/circuit"
)

// Export writes a circuit as an OpenQASM 2.0 program using the qelib1
// gate set. Gates outside the expressible subset (more than two
// controls on gates other than X/Z, bare √Y) yield an error; negative
// controls are conjugated with X gates.
func Export(w io.Writer, c *circuit.Circuit) error {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\n")
	sb.WriteString("include \"qelib1.inc\";\n")
	if c.Name != "" {
		fmt.Fprintf(&sb, "// %s\n", c.Name)
	}
	fmt.Fprintf(&sb, "qreg q[%d];\n", c.NQubits)
	for i, g := range c.Gates {
		line, err := exportGate(g)
		if err != nil {
			return fmt.Errorf("qasm: gate %d: %w", i, err)
		}
		sb.WriteString(line)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ExportString renders the circuit as an OpenQASM 2.0 string.
func ExportString(c *circuit.Circuit) (string, error) {
	var sb strings.Builder
	if err := Export(&sb, c); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func exportGate(g circuit.Gate) (string, error) {
	// %.17g renders NaN/Inf as words the parser would read back as
	// unknown identifiers; a non-finite angle is not expressible.
	for _, v := range g.Params {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("gate %q has non-finite parameter %v", g.Name, v)
		}
	}
	var pre, post strings.Builder
	var posControls []int
	for _, ctl := range g.Controls {
		if ctl.Negative {
			fmt.Fprintf(&pre, "x q[%d];\n", ctl.Qubit)
			fmt.Fprintf(&post, "x q[%d];\n", ctl.Qubit)
		}
		posControls = append(posControls, ctl.Qubit)
	}
	body, err := exportBody(g, posControls)
	if err != nil {
		return "", err
	}
	return pre.String() + body + post.String(), nil
}

func exportBody(g circuit.Gate, controls []int) (string, error) {
	p := func(i int) float64 {
		if i < len(g.Params) {
			return g.Params[i]
		}
		return 0
	}
	q := func(idx int) string { return fmt.Sprintf("q[%d]", idx) }
	args := func(name string) string {
		parts := make([]string, 0, len(controls)+1)
		for _, c := range controls {
			parts = append(parts, q(c))
		}
		parts = append(parts, q(g.Target))
		return fmt.Sprintf("%s %s;\n", name, strings.Join(parts, ","))
	}

	switch len(controls) {
	case 0:
		switch g.Name {
		case "i":
			return args("id"), nil
		case "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg":
			return args(g.Name), nil
		case "p":
			return args(fmt.Sprintf("u1(%.17g)", p(0))), nil
		case "rx":
			return args(fmt.Sprintf("rx(%.17g)", p(0))), nil
		case "ry":
			return args(fmt.Sprintf("ry(%.17g)", p(0))), nil
		case "rz":
			return args(fmt.Sprintf("rz(%.17g)", p(0))), nil
		case "u":
			return args(fmt.Sprintf("u3(%.17g,%.17g,%.17g)", p(0), p(1), p(2))), nil
		}
		return "", fmt.Errorf("gate %q has no qelib1 equivalent", g.Name)
	case 1:
		switch g.Name {
		case "x":
			return args("cx"), nil
		case "y":
			return args("cy"), nil
		case "z":
			return args("cz"), nil
		case "h":
			return args("ch"), nil
		case "p":
			return args(fmt.Sprintf("cu1(%.17g)", p(0))), nil
		case "rx":
			return args(fmt.Sprintf("crx(%.17g)", p(0))), nil
		case "ry":
			return args(fmt.Sprintf("cry(%.17g)", p(0))), nil
		case "rz":
			return args(fmt.Sprintf("crz(%.17g)", p(0))), nil
		case "u":
			return args(fmt.Sprintf("cu3(%.17g,%.17g,%.17g)", p(0), p(1), p(2))), nil
		}
		return "", fmt.Errorf("controlled %q has no qelib1 equivalent", g.Name)
	case 2:
		switch g.Name {
		case "x":
			return args("ccx"), nil
		case "z":
			return args("ccz"), nil
		}
		return "", fmt.Errorf("doubly-controlled %q has no qelib1 equivalent", g.Name)
	}
	return "", fmt.Errorf("%d-controlled %q has no qelib1 equivalent", len(controls), g.Name)
}
