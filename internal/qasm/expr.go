// Package qasm implements an OpenQASM 2.0 frontend for the simulator:
// a parser covering the language subset that real benchmark files use
// (qreg/creg, the qelib1 gate set, custom gate definitions with
// parameter expressions, barrier, measure) and an exporter. It lets the
// simulator consume the circuit files distributed with other quantum
// toolchains.
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// expr is a parsed parameter expression; it evaluates under an
// environment binding gate-parameter names to values.
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numExpr float64

func (n numExpr) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varExpr string

func (v varExpr) eval(env map[string]float64) (float64, error) {
	if val, ok := env[string(v)]; ok {
		return val, nil
	}
	if string(v) == "pi" {
		return math.Pi, nil
	}
	return 0, fmt.Errorf("qasm: unbound parameter %q", string(v))
}

type unaryExpr struct {
	op rune
	x  expr
}

func (u unaryExpr) eval(env map[string]float64) (float64, error) {
	v, err := u.x.eval(env)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case '-':
		return -v, nil
	case '+':
		return v, nil
	}
	return 0, fmt.Errorf("qasm: unknown unary operator %q", u.op)
}

type binExpr struct {
	op   rune
	l, r expr
}

func (b binExpr) eval(env map[string]float64) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("qasm: division by zero")
		}
		return l / r, nil
	case '^':
		return math.Pow(l, r), nil
	}
	return 0, fmt.Errorf("qasm: unknown operator %q", b.op)
}

type callExpr struct {
	fn string
	x  expr
}

func (c callExpr) eval(env map[string]float64) (float64, error) {
	v, err := c.x.eval(env)
	if err != nil {
		return 0, err
	}
	switch c.fn {
	case "sin":
		return math.Sin(v), nil
	case "cos":
		return math.Cos(v), nil
	case "tan":
		return math.Tan(v), nil
	case "exp":
		return math.Exp(v), nil
	case "ln":
		return math.Log(v), nil
	case "sqrt":
		return math.Sqrt(v), nil
	}
	return 0, fmt.Errorf("qasm: unknown function %q", c.fn)
}

// exprParser is a recursive-descent parser over a parameter expression
// string (precedence: unary, ^, */ , +-).
type exprParser struct {
	s   string
	pos int
}

// parseExpr parses a complete expression string.
func parseExpr(s string) (expr, error) {
	p := &exprParser{s: s}
	e, err := p.addSub()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("qasm: trailing input %q in expression %q", p.s[p.pos:], s)
	}
	return e, nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.s) && unicode.IsSpace(rune(p.s[p.pos])) {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func (p *exprParser) addSub() (expr, error) {
	l, err := p.mulDiv()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '+', '-':
			op := rune(p.s[p.pos])
			p.pos++
			r, err := p.mulDiv()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: op, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) mulDiv() (expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*', '/':
			op := rune(p.s[p.pos])
			p.pos++
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: op, l: l, r: r}
		default:
			return l, nil
		}
	}
}

// unary binds looser than '^' (so -2^2 == -(2^2), the usual
// mathematical convention), but the exponent itself may be signed.
func (p *exprParser) unary() (expr, error) {
	switch p.peek() {
	case '-', '+':
		op := rune(p.s[p.pos])
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: op, x: x}, nil
	}
	return p.power()
}

func (p *exprParser) power() (expr, error) {
	l, err := p.atom()
	if err != nil {
		return nil, err
	}
	if p.peek() == '^' {
		p.pos++
		r, err := p.unary() // right associative, signed exponents allowed
		if err != nil {
			return nil, err
		}
		return binExpr{op: '^', l: l, r: r}, nil
	}
	return l, nil
}

func (p *exprParser) atom() (expr, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		e, err := p.addSub()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("qasm: missing ')' in expression %q", p.s)
		}
		p.pos++
		return e, nil
	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.s) {
			ch := p.s[p.pos]
			if ch >= '0' && ch <= '9' || ch == '.' || ch == 'e' || ch == 'E' {
				p.pos++
				continue
			}
			if (ch == '+' || ch == '-') && p.pos > start && (p.s[p.pos-1] == 'e' || p.s[p.pos-1] == 'E') {
				p.pos++
				continue
			}
			break
		}
		v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("qasm: bad number %q", p.s[start:p.pos])
		}
		return numExpr(v), nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.s) && isIdentPart(p.s[p.pos]) {
			p.pos++
		}
		name := p.s[start:p.pos]
		if p.peek() == '(' {
			p.pos++
			arg, err := p.addSub()
			if err != nil {
				return nil, err
			}
			if p.peek() != ')' {
				return nil, fmt.Errorf("qasm: missing ')' after %s(", name)
			}
			p.pos++
			return callExpr{fn: strings.ToLower(name), x: arg}, nil
		}
		return varExpr(name), nil
	case c == 0:
		return nil, fmt.Errorf("qasm: unexpected end of expression %q", p.s)
	}
	return nil, fmt.Errorf("qasm: unexpected character %q in expression %q", c, p.s)
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
