package qasm

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/gates"
)

// Measurement records one `measure` statement (qubit → classical bit,
// both as flat indices).
type Measurement struct {
	Qubit int
	Clbit int
}

// Program is a parsed OpenQASM 2.0 program: the unitary part as a
// circuit plus the trailing measurements.
type Program struct {
	Circuit      *circuit.Circuit
	Measurements []Measurement
	NClbits      int
}

// reg is a declared quantum or classical register.
type reg struct {
	offset, size int
}

// gateDef is a user-defined gate macro.
type gateDef struct {
	params []string
	qubits []string
	body   []appStmt
}

// appStmt is one gate application (inside a gate body or at top level,
// pre-broadcast).
type appStmt struct {
	name   string
	params []expr
	args   []string // formal names inside bodies
}

// maxRegSize bounds a single register declaration. A DD engine handles
// far fewer qubits than this in practice; the cap exists so a malformed
// or hostile `qreg q[999999999]` fails with a parse error instead of an
// enormous allocation.
const maxRegSize = 4096

type parser struct {
	qregs   map[string]reg
	qorder  []string
	cregs   map[string]reg
	corder  []string
	nqubits int
	nclbits int
	defs    map[string]gateDef
	prog    *Program
}

// Parse reads an OpenQASM 2.0 program.
func Parse(r io.Reader) (*Program, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("qasm: read: %w", err)
	}
	return ParseString(string(src))
}

// ParseString parses an OpenQASM 2.0 program from a string.
func ParseString(src string) (*Program, error) {
	p := &parser{
		qregs: map[string]reg{},
		cregs: map[string]reg{},
		defs:  map[string]gateDef{},
	}
	stmts, err := splitStatements(stripComments(src))
	if err != nil {
		return nil, err
	}
	// First pass: find total qubit count (qreg declarations).
	for _, s := range stmts {
		if name, size, ok := parseRegDecl(s, "qreg"); ok {
			if size > maxRegSize {
				return nil, fmt.Errorf("qasm: qreg %q has %d qubits (limit %d)", name, size, maxRegSize)
			}
			if _, dup := p.qregs[name]; dup {
				return nil, fmt.Errorf("qasm: duplicate qreg %q", name)
			}
			p.qregs[name] = reg{offset: p.nqubits, size: size}
			p.qorder = append(p.qorder, name)
			p.nqubits += size
		}
		if name, size, ok := parseRegDecl(s, "creg"); ok {
			if size > maxRegSize {
				return nil, fmt.Errorf("qasm: creg %q has %d bits (limit %d)", name, size, maxRegSize)
			}
			if _, dup := p.cregs[name]; dup {
				return nil, fmt.Errorf("qasm: duplicate creg %q", name)
			}
			p.cregs[name] = reg{offset: p.nclbits, size: size}
			p.corder = append(p.corder, name)
			p.nclbits += size
		}
	}
	if p.nqubits == 0 {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	p.prog = &Program{Circuit: circuit.New(p.nqubits), NClbits: p.nclbits}

	for _, s := range stmts {
		if err := p.statement(s); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

// stripComments removes // comments.
func stripComments(src string) string {
	var sb strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// splitStatements splits the source into ';'-terminated statements,
// keeping `gate … { … }` definitions as single units.
func splitStatements(src string) ([]string, error) {
	var stmts []string
	var cur strings.Builder
	depth := 0
	for _, r := range src {
		switch r {
		case '{':
			depth++
			cur.WriteRune(r)
		case '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("qasm: unbalanced '}'")
			}
			cur.WriteRune(r)
			if depth == 0 {
				stmts = append(stmts, strings.TrimSpace(cur.String()))
				cur.Reset()
			}
		case ';':
			if depth > 0 {
				cur.WriteRune(r)
			} else {
				if s := strings.TrimSpace(cur.String()); s != "" {
					stmts = append(stmts, s)
				}
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("qasm: unbalanced '{'")
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		return nil, fmt.Errorf("qasm: missing ';' after %q", abbreviate(s))
	}
	return stmts, nil
}

func abbreviate(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}

func parseRegDecl(s, kw string) (name string, size int, ok bool) {
	rest, found := strings.CutPrefix(s, kw+" ")
	if !found {
		return "", 0, false
	}
	rest = strings.TrimSpace(rest)
	open := strings.IndexByte(rest, '[')
	closeB := strings.IndexByte(rest, ']')
	if open <= 0 || closeB <= open {
		return "", 0, false
	}
	n, err := strconv.Atoi(rest[open+1 : closeB])
	if err != nil || n <= 0 {
		return "", 0, false
	}
	return strings.TrimSpace(rest[:open]), n, true
}

func (p *parser) statement(s string) error {
	switch {
	case s == "":
		return nil
	case strings.HasPrefix(s, "OPENQASM"):
		ver := strings.TrimSpace(strings.TrimPrefix(s, "OPENQASM"))
		if ver != "2.0" {
			return fmt.Errorf("qasm: unsupported version %q (only 2.0)", ver)
		}
		return nil
	case strings.HasPrefix(s, "include"):
		return nil // qelib1 gates are built in
	case strings.HasPrefix(s, "qreg "), strings.HasPrefix(s, "creg "):
		return nil // handled in the first pass
	case strings.HasPrefix(s, "barrier"):
		return nil // no effect on the state vector
	case strings.HasPrefix(s, "gate "):
		return p.gateDefinition(s)
	case strings.HasPrefix(s, "measure"):
		return p.measure(s)
	case strings.HasPrefix(s, "opaque"):
		return fmt.Errorf("qasm: opaque gates are not supported")
	case strings.HasPrefix(s, "reset"):
		return fmt.Errorf("qasm: reset is not supported in the unitary circuit model")
	case strings.HasPrefix(s, "if"):
		return fmt.Errorf("qasm: classical control (if) is not supported")
	default:
		return p.application(s, nil, nil, 0)
	}
}

// gateDefinition parses `gate name(p1,p2) q1,q2 { body }`.
func (p *parser) gateDefinition(s string) error {
	body := ""
	if i := strings.IndexByte(s, '{'); i >= 0 {
		if !strings.HasSuffix(s, "}") {
			return fmt.Errorf("qasm: malformed gate body in %q", abbreviate(s))
		}
		body = s[i+1 : len(s)-1]
		s = strings.TrimSpace(s[:i])
	} else {
		return fmt.Errorf("qasm: gate definition without body: %q", abbreviate(s))
	}
	header := strings.TrimSpace(strings.TrimPrefix(s, "gate "))
	name, params, qubitsPart, err := splitNameParamsArgs(header)
	if err != nil {
		return err
	}
	if _, exists := builtinArity[name]; exists {
		return fmt.Errorf("qasm: gate %q shadows a builtin", name)
	}
	if _, exists := p.defs[name]; exists {
		return fmt.Errorf("qasm: duplicate gate definition %q", name)
	}
	def := gateDef{}
	if params != "" {
		for _, q := range strings.Split(params, ",") {
			def.params = append(def.params, strings.TrimSpace(q))
		}
	}
	for _, q := range strings.Split(qubitsPart, ",") {
		q = strings.TrimSpace(q)
		if q == "" {
			return fmt.Errorf("qasm: gate %q: empty qubit argument", name)
		}
		def.qubits = append(def.qubits, q)
	}
	bodyStmts, err := splitStatements(body)
	if err != nil {
		return err
	}
	for _, bs := range bodyStmts {
		if strings.HasPrefix(bs, "barrier") {
			continue
		}
		bn, bParams, bArgs, err := parseApplication(bs)
		if err != nil {
			return fmt.Errorf("qasm: gate %q body: %w", name, err)
		}
		def.body = append(def.body, appStmt{name: bn, params: bParams, args: bArgs})
	}
	p.defs[name] = def
	return nil
}

// splitNameParamsArgs splits "name(a,b) rest" into its pieces.
func splitNameParamsArgs(s string) (name, params, rest string, err error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		j := strings.IndexByte(s, ')')
		if j < i {
			return "", "", "", fmt.Errorf("qasm: unbalanced parentheses in %q", abbreviate(s))
		}
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1 : j]), strings.TrimSpace(s[j+1:]), nil
	}
	fields := strings.SplitN(s, " ", 2)
	if len(fields) != 2 {
		return "", "", "", fmt.Errorf("qasm: malformed statement %q", abbreviate(s))
	}
	return fields[0], "", strings.TrimSpace(fields[1]), nil
}

// parseApplication parses "name(exprs) a, b[1], c".
func parseApplication(s string) (name string, params []expr, args []string, err error) {
	name, paramsStr, rest, err := splitNameParamsArgs(s)
	if err != nil {
		return "", nil, nil, err
	}
	if paramsStr != "" {
		for _, ps := range splitTopLevel(paramsStr) {
			e, err := parseExpr(strings.TrimSpace(ps))
			if err != nil {
				return "", nil, nil, err
			}
			params = append(params, e)
		}
	}
	for _, a := range strings.Split(rest, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, nil, fmt.Errorf("qasm: empty argument in %q", abbreviate(s))
		}
		args = append(args, a)
	}
	return name, params, args, nil
}

// splitTopLevel splits on commas not nested in parentheses.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// measure handles `measure q[i] -> c[j];` and register-wide
// `measure q -> c;`.
func (p *parser) measure(s string) error {
	parts := strings.Split(strings.TrimPrefix(s, "measure"), "->")
	if len(parts) != 2 {
		return fmt.Errorf("qasm: malformed measure %q", abbreviate(s))
	}
	qArg := strings.TrimSpace(parts[0])
	cArg := strings.TrimSpace(parts[1])
	qs, err := p.resolveArg(qArg, p.qregs)
	if err != nil {
		return err
	}
	cs, err := p.resolveArg(cArg, p.cregs)
	if err != nil {
		return err
	}
	if len(qs) != len(cs) {
		return fmt.Errorf("qasm: measure size mismatch %q -> %q", qArg, cArg)
	}
	for i := range qs {
		p.prog.Measurements = append(p.prog.Measurements, Measurement{Qubit: qs[i], Clbit: cs[i]})
	}
	return nil
}

// resolveArg resolves "name" (whole register) or "name[i]" into flat
// indices.
func (p *parser) resolveArg(a string, regs map[string]reg) ([]int, error) {
	if i := strings.IndexByte(a, '['); i >= 0 {
		if !strings.HasSuffix(a, "]") {
			return nil, fmt.Errorf("qasm: malformed argument %q", a)
		}
		name := strings.TrimSpace(a[:i])
		r, ok := regs[name]
		if !ok {
			return nil, fmt.Errorf("qasm: unknown register %q", name)
		}
		idx, err := strconv.Atoi(a[i+1 : len(a)-1])
		if err != nil || idx < 0 || idx >= r.size {
			return nil, fmt.Errorf("qasm: index out of range in %q", a)
		}
		return []int{r.offset + idx}, nil
	}
	r, ok := regs[a]
	if !ok {
		return nil, fmt.Errorf("qasm: unknown register %q", a)
	}
	out := make([]int, r.size)
	for i := range out {
		out[i] = r.offset + i
	}
	return out, nil
}

const maxExpansionDepth = 64

// maxExpandedGates bounds the total gate count a program may expand to.
// Depth alone does not: a chain of definitions that each invoke the
// previous one twice grows 2^depth applications from a kilobyte of
// source, which is a hang rather than a circuit.
const maxExpandedGates = 1 << 20

// application handles a gate application at top level (env == nil) or
// inside a gate-body expansion (env binds params, bindings binds formal
// qubit names).
func (p *parser) application(s string, env map[string]float64, bindings map[string]int, depth int) error {
	name, params, args, err := parseApplication(s)
	if err != nil {
		return err
	}
	return p.apply(name, params, args, env, bindings, depth)
}

func (p *parser) apply(name string, params []expr, args []string, env map[string]float64, bindings map[string]int, depth int) error {
	if depth > maxExpansionDepth {
		return fmt.Errorf("qasm: gate expansion too deep (recursive definition of %q?)", name)
	}
	vals := make([]float64, len(params))
	for i, e := range params {
		v, err := e.eval(env)
		if err != nil {
			return err
		}
		vals[i] = v
	}

	// Resolve arguments: inside a body, names are formal bindings; at
	// top level they are register references with broadcast.
	var argSets [][]int
	if bindings != nil {
		argSets = make([][]int, len(args))
		for i, a := range args {
			q, ok := bindings[a]
			if !ok {
				return fmt.Errorf("qasm: unknown qubit %q in gate body", a)
			}
			argSets[i] = []int{q}
		}
	} else {
		argSets = make([][]int, len(args))
		broadcast := 1
		for i, a := range args {
			qs, err := p.resolveArg(a, p.qregs)
			if err != nil {
				return err
			}
			argSets[i] = qs
			if len(qs) > 1 {
				if broadcast > 1 && broadcast != len(qs) {
					return fmt.Errorf("qasm: broadcast size mismatch in %s", name)
				}
				broadcast = len(qs)
			}
		}
		for i := range argSets {
			if len(argSets[i]) == 1 && broadcast > 1 {
				rep := make([]int, broadcast)
				for j := range rep {
					rep[j] = argSets[i][0]
				}
				argSets[i] = rep
			}
		}
	}

	n := len(argSets[0])
	for shot := 0; shot < n; shot++ {
		qs := make([]int, len(argSets))
		for i := range argSets {
			qs[i] = argSets[i][shot]
		}
		if err := p.applyOne(name, vals, qs, depth); err != nil {
			return err
		}
	}
	return nil
}

// builtinArity maps builtin gate names to (nParams, nQubits).
var builtinArity = map[string][2]int{
	"id": {0, 1}, "x": {0, 1}, "y": {0, 1}, "z": {0, 1}, "h": {0, 1},
	"s": {0, 1}, "sdg": {0, 1}, "t": {0, 1}, "tdg": {0, 1},
	"sx": {0, 1}, "sxdg": {0, 1},
	"rx": {1, 1}, "ry": {1, 1}, "rz": {1, 1},
	"p": {1, 1}, "u1": {1, 1}, "u2": {2, 1}, "u3": {3, 1}, "u": {3, 1},
	"U":  {3, 1},
	"cx": {0, 2}, "CX": {0, 2}, "cz": {0, 2}, "cy": {0, 2}, "ch": {0, 2},
	"swap": {0, 2},
	"crx":  {1, 2}, "cry": {1, 2}, "crz": {1, 2}, "cp": {1, 2}, "cu1": {1, 2},
	"cu3": {3, 2},
	"ccx": {0, 3}, "ccz": {0, 3}, "cswap": {0, 3},
	"rzz": {1, 2},
}

func (p *parser) applyOne(name string, vals []float64, qs []int, depth int) error {
	if p.prog.Circuit.GateCount() >= maxExpandedGates {
		return fmt.Errorf("qasm: program expands to more than %d gates", maxExpandedGates)
	}
	if def, ok := p.defs[name]; ok {
		if len(vals) != len(def.params) {
			return fmt.Errorf("qasm: gate %s expects %d parameters, got %d", name, len(def.params), len(vals))
		}
		if len(qs) != len(def.qubits) {
			return fmt.Errorf("qasm: gate %s expects %d qubits, got %d", name, len(def.qubits), len(qs))
		}
		env := make(map[string]float64, len(vals))
		for i, pn := range def.params {
			env[pn] = vals[i]
		}
		bind := make(map[string]int, len(qs))
		for i, qn := range def.qubits {
			if qs[i] < 0 {
				return fmt.Errorf("qasm: invalid qubit for %s", name)
			}
			bind[qn] = qs[i]
		}
		for _, bs := range def.body {
			if err := p.apply(bs.name, bs.params, bs.args, env, bind, depth+1); err != nil {
				return err
			}
		}
		return nil
	}

	ar, ok := builtinArity[name]
	if !ok {
		return fmt.Errorf("qasm: unknown gate %q", name)
	}
	if len(vals) != ar[0] {
		return fmt.Errorf("qasm: gate %s expects %d parameters, got %d", name, ar[0], len(vals))
	}
	if len(qs) != ar[1] {
		return fmt.Errorf("qasm: gate %s expects %d qubits, got %d", name, ar[1], len(qs))
	}
	for i := range qs {
		for j := i + 1; j < len(qs); j++ {
			if qs[i] == qs[j] {
				return fmt.Errorf("qasm: gate %s uses qubit %d twice", name, qs[i])
			}
		}
	}
	c := p.prog.Circuit
	v := func(i int) float64 { return vals[i] }
	switch name {
	case "id":
		c.I(qs[0])
	case "x":
		c.X(qs[0])
	case "y":
		c.Y(qs[0])
	case "z":
		c.Z(qs[0])
	case "h":
		c.H(qs[0])
	case "s":
		c.S(qs[0])
	case "sdg":
		c.Sdg(qs[0])
	case "t":
		c.T(qs[0])
	case "tdg":
		c.Tdg(qs[0])
	case "sx":
		c.SX(qs[0])
	case "sxdg":
		c.Append(circuit.Gate{Name: "sxdg", Matrix: gates.SXdg, Target: qs[0]})
	case "rx":
		c.RX(v(0), qs[0])
	case "ry":
		c.RY(v(0), qs[0])
	case "rz":
		c.RZ(v(0), qs[0])
	case "p", "u1":
		c.P(v(0), qs[0])
	case "u2":
		c.U(math.Pi/2, v(0), v(1), qs[0])
	case "u3", "u", "U":
		c.U(v(0), v(1), v(2), qs[0])
	case "cx", "CX":
		c.CX(qs[0], qs[1])
	case "cz":
		c.CZ(qs[0], qs[1])
	case "cy":
		c.MC("y", gates.Y, []dd.Control{dd.Pos(qs[0])}, qs[1])
	case "ch":
		c.MC("h", gates.H, []dd.Control{dd.Pos(qs[0])}, qs[1])
	case "swap":
		c.Swap(qs[0], qs[1])
	case "crx":
		c.MC("rx", gates.RX(v(0)), []dd.Control{dd.Pos(qs[0])}, qs[1], v(0))
	case "cry":
		c.MC("ry", gates.RY(v(0)), []dd.Control{dd.Pos(qs[0])}, qs[1], v(0))
	case "crz":
		c.MC("rz", gates.RZ(v(0)), []dd.Control{dd.Pos(qs[0])}, qs[1], v(0))
	case "cp", "cu1":
		c.CP(v(0), qs[0], qs[1])
	case "cu3":
		c.MC("u", gates.U(v(0), v(1), v(2)), []dd.Control{dd.Pos(qs[0])}, qs[1], v(0), v(1), v(2))
	case "ccx":
		c.CCX(qs[0], qs[1], qs[2])
	case "ccz":
		c.MC("z", gates.Z, []dd.Control{dd.Pos(qs[0]), dd.Pos(qs[1])}, qs[2])
	case "cswap":
		c.CSwap(qs[0], qs[1], qs[2])
	case "rzz":
		// rzz(θ) = cx a,b; rz(θ) b; cx a,b
		c.CX(qs[0], qs[1])
		c.RZ(v(0), qs[1])
		c.CX(qs[0], qs[1])
	default:
		return fmt.Errorf("qasm: builtin %q not wired", name)
	}
	return nil
}
