OPENQASM 2.0;
include "qelib1.inc";
// parameterised gate definition with expression arithmetic
gate foo(theta, phi) a, b {
  rx(theta/2) a;
  cu1(phi + pi/4) a, b;
  u3(theta, -phi, pi) b;
}
qreg q[3];
foo(pi/3, 0.25) q[0], q[2];
rz(2*pi/7) q[1];
barrier q;
foo(1.5e-3, -pi) q[1], q[0];
