// Package supremacy generates random quantum circuits in the style of
// Boixo et al., "Characterizing quantum supremacy in near-term devices"
// (ref [11] of the paper) — the third benchmark family of the
// evaluation.
//
// Construction (following the published layout rules):
//
//  1. Start with a layer of Hadamards on every qubit of a rows×cols grid.
//  2. In each of `depth` clock cycles, apply one of eight CZ
//     configurations (alternating horizontal/vertical nearest-neighbour
//     edge sets with shifting offsets, cycled in fixed order).
//  3. In the same cycle, apply single-qubit gates to qubits that are not
//     part of a CZ this cycle, subject to the published rules:
//     - only if the qubit participated in a CZ in the previous cycle,
//     - a T gate if the qubit has not yet received a non-H single-qubit
//     gate,
//     - otherwise a gate drawn uniformly from {√X, √Y} that differs
//     from the qubit's previous single-qubit gate.
//
// The original circuit files are not redistributable; this generator is
// the seeded synthetic equivalent documented in DESIGN.md — it matches
// the structural statistics (two-qubit gate density, single-qubit gate
// mix) that drive DD sizes during simulation.
package supremacy

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// Edge is one CZ application between two grid qubits.
type Edge struct {
	A, B int
}

// CZPattern returns the CZ edge set of configuration p (mod 8) on a
// rows×cols grid. Even p are horizontal layers, odd p vertical; the
// four variants per direction shift the starting column/row so that the
// eight patterns jointly cover every nearest-neighbour edge.
func CZPattern(rows, cols, p int) []Edge {
	p = ((p % 8) + 8) % 8
	horizontal := p%2 == 0
	variant := p / 2
	colOff := variant & 1
	rowOff := variant >> 1
	var edges []Edge
	q := func(r, c int) int { return r*cols + c }
	if horizontal {
		for r := 0; r < rows; r++ {
			if r%2 != rowOff {
				continue
			}
			for c := colOff; c+1 < cols; c += 2 {
				edges = append(edges, Edge{q(r, c), q(r, c+1)})
			}
		}
	} else {
		for c := 0; c < cols; c++ {
			if c%2 != rowOff {
				continue
			}
			for r := colOff; r+1 < rows; r += 2 {
				edges = append(edges, Edge{q(r, c), q(r+1, c)})
			}
		}
	}
	return edges
}

// Circuit generates the random circuit for a rows×cols grid with the
// given number of CZ cycles. The same seed always yields the same
// circuit. Its name follows the paper's convention
// supremacy_<depth>_<qubits>.
func Circuit(rows, cols, depth int, seed int64) *circuit.Circuit {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("supremacy: grid %dx%d too small", rows, cols))
	}
	if depth < 1 {
		panic(fmt.Sprintf("supremacy: depth %d must be positive", depth))
	}
	n := rows * cols
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	c.Name = fmt.Sprintf("supremacy_%d_%d", depth, n)

	for q := 0; q < n; q++ {
		c.H(q)
	}

	// lastSingle tracks the previous non-H single-qubit gate per qubit
	// ("" = none yet); inCZPrev marks CZ participation last cycle.
	lastSingle := make([]string, n)
	inCZPrev := make([]bool, n)

	for t := 0; t < depth; t++ {
		edges := CZPattern(rows, cols, t)
		inCZNow := make([]bool, n)
		for _, e := range edges {
			c.CZ(e.A, e.B)
			inCZNow[e.A] = true
			inCZNow[e.B] = true
		}
		for q := 0; q < n; q++ {
			if inCZNow[q] || !inCZPrev[q] {
				continue
			}
			switch lastSingle[q] {
			case "":
				c.T(q)
				lastSingle[q] = "t"
			case "t":
				if rng.Intn(2) == 0 {
					c.SX(q)
					lastSingle[q] = "sx"
				} else {
					c.SY(q)
					lastSingle[q] = "sy"
				}
			case "sx":
				c.SY(q)
				lastSingle[q] = "sy"
			default: // "sy"
				c.SX(q)
				lastSingle[q] = "sx"
			}
		}
		inCZPrev = inCZNow
	}
	return c
}
