package supremacy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/gates"
)

func TestCZPatternDisjoint(t *testing.T) {
	for p := 0; p < 8; p++ {
		edges := CZPattern(4, 4, p)
		used := map[int]bool{}
		for _, e := range edges {
			if used[e.A] || used[e.B] {
				t.Fatalf("pattern %d reuses a qubit: %+v", p, edges)
			}
			used[e.A] = true
			used[e.B] = true
			// Must be a grid nearest-neighbour pair.
			ra, ca := e.A/4, e.A%4
			rb, cb := e.B/4, e.B%4
			if !((ra == rb && cb == ca+1) || (ca == cb && rb == ra+1)) {
				t.Fatalf("pattern %d has non-adjacent edge %v", p, e)
			}
		}
	}
}

func TestCZPatternsCoverAllEdges(t *testing.T) {
	rows, cols := 4, 4
	want := map[Edge]bool{}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := r*cols + c
			if c+1 < cols {
				want[Edge{q, q + 1}] = true
			}
			if r+1 < rows {
				want[Edge{q, q + cols}] = true
			}
		}
	}
	got := map[Edge]bool{}
	for p := 0; p < 8; p++ {
		for _, e := range CZPattern(rows, cols, p) {
			got[e] = true
		}
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("edge %v never covered by the 8 patterns", e)
		}
	}
}

func TestCZPatternPeriodic(t *testing.T) {
	for p := 0; p < 8; p++ {
		a := CZPattern(3, 5, p)
		b := CZPattern(3, 5, p+8)
		if len(a) != len(b) {
			t.Fatalf("pattern %d not periodic", p)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pattern %d not periodic", p)
			}
		}
	}
}

func TestCircuitDeterministic(t *testing.T) {
	a := Circuit(3, 3, 10, 42)
	b := Circuit(3, 3, 10, 42)
	if a.String() != b.String() {
		t.Fatal("same seed produced different circuits")
	}
	c := Circuit(3, 3, 10, 43)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestCircuitStructure(t *testing.T) {
	rows, cols, depth := 3, 4, 12
	n := rows * cols
	c := Circuit(rows, cols, depth, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Name != "supremacy_12_12" {
		t.Fatalf("name %q", c.Name)
	}
	// First n gates are the Hadamard layer.
	for i := 0; i < n; i++ {
		if c.Gates[i].Name != "h" {
			t.Fatalf("gate %d is %q, want h", i, c.Gates[i].Name)
		}
	}
	counts := c.CountByName()
	if counts["cz"] == 0 {
		t.Fatal("no CZ gates generated")
	}
	if counts["t"] == 0 {
		t.Fatal("no T gates generated")
	}
	if counts["sx"]+counts["sy"] == 0 {
		t.Fatal("no √X/√Y gates generated")
	}
}

// TestSingleQubitRules re-derives the placement rules from the emitted
// gate sequence.
func TestSingleQubitRules(t *testing.T) {
	rows, cols, depth := 3, 3, 16
	n := rows * cols
	c := Circuit(rows, cols, depth, 7)

	// Re-segment the flat gate list into cycles: the initial H layer,
	// then per cycle the CZs of pattern t followed by single-qubit gates.
	idx := n // skip H layer
	inCZPrev := make([]bool, n)
	firstSingle := make([]bool, n)
	lastSingle := make([]string, n)
	for cyc := 0; cyc < depth; cyc++ {
		edges := CZPattern(rows, cols, cyc)
		inCZNow := make([]bool, n)
		for range edges {
			g := c.Gates[idx]
			idx++
			if g.Name != "z" || len(g.Controls) != 1 {
				t.Fatalf("cycle %d: expected cz, got %+v", cyc, g)
			}
			inCZNow[g.Controls[0].Qubit] = true
			inCZNow[g.Target] = true
		}
		for idx < len(c.Gates) {
			g := c.Gates[idx]
			if len(g.Controls) != 0 {
				break // next cycle's CZs
			}
			q := g.Target
			if inCZNow[q] {
				t.Fatalf("cycle %d: single-qubit gate on CZ-active qubit %d", cyc, q)
			}
			if !inCZPrev[q] {
				t.Fatalf("cycle %d: single-qubit gate on qubit %d not in previous CZ", cyc, q)
			}
			switch g.Name {
			case "t":
				if firstSingle[q] {
					t.Fatalf("cycle %d: second T on qubit %d", cyc, q)
				}
				firstSingle[q] = true
				lastSingle[q] = "t"
			case "sx", "sy":
				if !firstSingle[q] {
					t.Fatalf("cycle %d: %s before T on qubit %d", cyc, g.Name, q)
				}
				if lastSingle[q] == g.Name {
					t.Fatalf("cycle %d: repeated %s on qubit %d", cyc, g.Name, q)
				}
				lastSingle[q] = g.Name
			default:
				t.Fatalf("cycle %d: unexpected single-qubit gate %q", cyc, g.Name)
			}
			idx++
		}
		inCZPrev = inCZNow
	}
	if idx != len(c.Gates) {
		t.Fatalf("re-segmentation consumed %d of %d gates", idx, len(c.Gates))
	}
}

func TestCircuitPanics(t *testing.T) {
	mustPanic(t, func() { Circuit(1, 4, 4, 0) })
	mustPanic(t, func() { Circuit(4, 1, 4, 0) })
	mustPanic(t, func() { Circuit(2, 2, 0, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestStrategiesAgreeOnSupremacy(t *testing.T) {
	c := Circuit(2, 3, 10, 5)
	ref := dense.Simulate(c)
	for _, st := range []core.Strategy{
		core.Sequential{}, core.KOperations{K: 4}, core.MaxSize{SMax: 64},
	} {
		res, err := core.Run(c, core.Options{Strategy: st})
		if err != nil {
			t.Fatal(err)
		}
		vec := res.State.ToVector()
		for i := range vec {
			d := vec[i] - ref.Amps[i]
			if real(d)*real(d)+imag(d)*imag(d) > 1e-16 {
				t.Fatalf("%s: amplitude %d differs", st.Name(), i)
			}
		}
	}
}

func TestEntanglementGrowth(t *testing.T) {
	// Deeper supremacy circuits must produce larger state DDs — this is
	// the regime where combining operations pays off (Sec. III).
	shallow, err := core.Run(Circuit(3, 3, 2, 9), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := core.Run(Circuit(3, 3, 20, 9), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Engine.SizeV(deep.State) <= shallow.Engine.SizeV(shallow.State) {
		t.Fatalf("state DD did not grow with depth: %d vs %d",
			shallow.Engine.SizeV(shallow.State), deep.Engine.SizeV(deep.State))
	}
	_ = gates.I // keep the import for documentation symmetry
}
