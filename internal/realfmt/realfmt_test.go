package realfmt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dense"
	"repro/internal/gates"
)

const sampleToffoli = `
# a 3-line Toffoli benchmark
.version 2.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c'
.constants ---
.garbage ---
.begin
t3 a b c
t2 a b
t1 a
.end
`

func TestParseToffoliChain(t *testing.T) {
	prog, err := ParseString(sampleToffoli)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	if c.NQubits != 3 || c.GateCount() != 3 {
		t.Fatalf("parsed %d qubits, %d gates", c.NQubits, c.GateCount())
	}
	if len(c.Gates[0].Controls) != 2 || c.Gates[0].Target != 2 {
		t.Fatalf("t3 parsed wrong: %+v", c.Gates[0])
	}
	if len(prog.Variables) != 3 || prog.Variables[1] != "b" {
		t.Fatalf("variables %v", prog.Variables)
	}
	// Behaviour check: on |110> the chain computes t3→|111>, t2→|101>,
	// t1→|001>… wait, verify against dense simulation on all inputs.
	for x := uint64(0); x < 8; x++ {
		s := dense.NewState(3)
		for q := 0; q < 3; q++ {
			if x>>uint(q)&1 == 1 {
				s.Apply(gates.X, q, nil)
			}
		}
		s.Run(c)
		// Classical emulation of the same chain.
		y := x
		if y&1 == 1 && y&2 == 2 {
			y ^= 4
		}
		if y&1 == 1 {
			y ^= 2
		}
		y ^= 1
		p := real(s.Amps[y])*real(s.Amps[y]) + imag(s.Amps[y])*imag(s.Amps[y])
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("input %b: expected output %b, P = %v", x, y, p)
		}
	}
}

func TestParseNegativeControls(t *testing.T) {
	prog, err := ParseString(`
.numvars 2
.variables a b
.begin
t2 -a b
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Circuit.Gates[0]
	if len(g.Controls) != 1 || !g.Controls[0].Negative {
		t.Fatalf("negative control not parsed: %+v", g)
	}
}

func TestParseFredkin(t *testing.T) {
	prog, err := ParseString(`
.numvars 3
.variables a b c
.begin
f3 a b c
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	// Controlled swap of (b, c) on a: check the permutation densely.
	c := prog.Circuit
	for x := uint64(0); x < 8; x++ {
		s := dense.NewState(3)
		for q := 0; q < 3; q++ {
			if x>>uint(q)&1 == 1 {
				s.Apply(gates.X, q, nil)
			}
		}
		s.Run(c)
		y := x
		if x&1 == 1 { // control a set: swap bits 1 and 2
			b := x >> 1 & 1
			cbit := x >> 2 & 1
			y = x&1 | cbit<<1 | b<<2
		}
		p := real(s.Amps[y])*real(s.Amps[y]) + imag(s.Amps[y])*imag(s.Amps[y])
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("fredkin input %03b: expected %03b", x, y)
		}
	}
}

func TestParsePeres(t *testing.T) {
	prog, err := ParseString(`
.numvars 3
.variables a b c
.begin
p3 a b c
q3 a b c
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	// Peres followed by inverse Peres is the identity.
	c := prog.Circuit
	for x := uint64(0); x < 8; x++ {
		s := dense.NewState(3)
		for q := 0; q < 3; q++ {
			if x>>uint(q)&1 == 1 {
				s.Apply(gates.X, q, nil)
			}
		}
		s.Run(c)
		p := real(s.Amps[x])*real(s.Amps[x]) + imag(s.Amps[x])*imag(s.Amps[x])
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("peres·peres⁻¹ not identity on %03b", x)
		}
	}
}

func TestParseVGates(t *testing.T) {
	prog, err := ParseString(`
.numvars 2
.variables a b
.begin
v2 a b
v2 a b
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	// Two controlled-V in a row equal a CX.
	s := dense.NewState(2)
	s.Apply(gates.X, 0, nil)
	s.Run(prog.Circuit)
	p := real(s.Amps[3])*real(s.Amps[3]) + imag(s.Amps[3])*imag(s.Amps[3])
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("V·V != CX: %v", s.Amps)
	}
	// v then w cancel.
	prog2, err := ParseString(".numvars 2\n.variables a b\n.begin\nv2 a b\nw2 a b\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	s2 := dense.NewState(2)
	s2.Apply(gates.X, 0, nil)
	s2.Run(prog2.Circuit)
	p2 := real(s2.Amps[1])*real(s2.Amps[1]) + imag(s2.Amps[1])*imag(s2.Amps[1])
	if math.Abs(p2-1) > 1e-9 {
		t.Fatalf("V·V† != I: %v", s2.Amps)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                 // empty
		".numvars 2\n.begin\nt1 a\n.end\n", // no variables
		".numvars 2\n.variables a\n.begin\n.end\n",             // count mismatch
		".numvars 1\n.variables a\nt1 a\n.begin\n.end\n",       // gate outside body
		".numvars 1\n.variables a\n.begin\nt1 b\n.end\n",       // unknown line
		".numvars 1\n.variables a\n.begin\nz1 a\n.end\n",       // unknown kind
		".numvars 1\n.variables a\n.begin\nt2 a\n.end\n",       // arity mismatch
		".numvars 1\n.variables a\n.begin\nt1 -a\n.end\n",      // negated target
		".numvars 1\n.variables a\n.begin\nt1 a\n",             // missing .end
		".numvars 2\n.variables a a\n.begin\n.end\n",           // duplicate var
		".numvars 1\n.variables a\n.frob x\n.begin\n.end\n",    // bad directive
		".numvars 3\n.variables a b c\n.begin\np2 a b\n.end\n", // peres arity
		".end\n", // stray .end
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) accepted", src)
		}
	}
}

func TestExportRoundTrip(t *testing.T) {
	prog, err := ParseString(sampleToffoli)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Export(&sb, prog.Circuit); err != nil {
		t.Fatal(err)
	}
	prog2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("re-parsing export:\n%s\n%v", sb.String(), err)
	}
	a := dense.Simulate(prog.Circuit)
	b := dense.Simulate(prog2.Circuit)
	if f := a.Fidelity(b); f < 1-1e-9 {
		t.Fatalf("round trip fidelity %v", f)
	}
}

func TestExportRejectsNonReversible(t *testing.T) {
	prog, err := ParseString(".numvars 1\n.variables a\n.begin\nt1 a\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	prog.Circuit.H(0)
	var sb strings.Builder
	if err := Export(&sb, prog.Circuit); err == nil {
		t.Fatal("H exported to .real")
	}
}
