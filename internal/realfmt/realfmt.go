// Package realfmt reads and writes the RevLib ".real" format for
// reversible circuits — the benchmark format the JKU tools around the
// paper consume. The supported gate library covers the common
// reversible benchmarks: multi-controlled Toffoli (t), Fredkin (f),
// Peres (p) and inverse Peres (pi), V/V† (controlled square roots of
// NOT), and the standard header keys (.version .numvars .variables
// .inputs .outputs .constants .garbage .begin .end).
//
// Reversible circuits are Boolean, so every .real circuit is also a
// valid quantum circuit; importing yields the circuit IR directly.
package realfmt

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/gates"
)

// Program is a parsed .real file.
type Program struct {
	Circuit   *circuit.Circuit
	Variables []string
	Inputs    []string
	Outputs   []string
	Constants string // one char per line: '-' or '0'/'1'
	Garbage   string // one char per line: '-' or '1'
}

// Parse reads a .real program.
func Parse(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	prog := &Program{}
	varIndex := map[string]int{}
	inBody := false
	lineNo := 0
	numVars := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			key, rest, _ := strings.Cut(line, " ")
			rest = strings.TrimSpace(rest)
			switch key {
			case ".version":
				// informative only
			case ".numvars":
				if _, err := fmt.Sscanf(rest, "%d", &numVars); err != nil || numVars <= 0 {
					return nil, fmt.Errorf("real: line %d: bad .numvars %q", lineNo, rest)
				}
			case ".variables":
				prog.Variables = strings.Fields(rest)
				for i, v := range prog.Variables {
					if _, dup := varIndex[v]; dup {
						return nil, fmt.Errorf("real: line %d: duplicate variable %q", lineNo, v)
					}
					varIndex[v] = i
				}
			case ".inputs":
				prog.Inputs = strings.Fields(rest)
			case ".outputs":
				prog.Outputs = strings.Fields(rest)
			case ".constants":
				prog.Constants = rest
			case ".garbage":
				prog.Garbage = rest
			case ".begin":
				if numVars < 0 || len(prog.Variables) == 0 {
					return nil, fmt.Errorf("real: line %d: .begin before .numvars/.variables", lineNo)
				}
				if len(prog.Variables) != numVars {
					return nil, fmt.Errorf("real: %d variables declared, .numvars says %d", len(prog.Variables), numVars)
				}
				prog.Circuit = circuit.New(numVars)
				inBody = true
			case ".end":
				if !inBody {
					return nil, fmt.Errorf("real: line %d: .end without .begin", lineNo)
				}
				inBody = false
			default:
				return nil, fmt.Errorf("real: line %d: unknown directive %q", lineNo, key)
			}
			continue
		}
		if !inBody {
			return nil, fmt.Errorf("real: line %d: gate %q outside .begin/.end", lineNo, line)
		}
		if err := parseGate(prog.Circuit, varIndex, line); err != nil {
			return nil, fmt.Errorf("real: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("real: read: %w", err)
	}
	if prog.Circuit == nil {
		return nil, fmt.Errorf("real: missing .begin section")
	}
	if inBody {
		return nil, fmt.Errorf("real: missing .end")
	}
	return prog, nil
}

// ParseString parses a .real program from a string.
func ParseString(s string) (*Program, error) { return Parse(strings.NewReader(s)) }

// parseGate handles one body line: "<kind><size> line…". Control lines
// may carry a '-' prefix for negative controls (RevLib 2.0 extension).
func parseGate(c *circuit.Circuit, vars map[string]int, line string) error {
	fields := strings.Fields(line)
	spec := strings.ToLower(fields[0])
	args := fields[1:]

	resolve := func(s string) (int, bool, error) {
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		}
		idx, ok := vars[s]
		if !ok {
			return 0, false, fmt.Errorf("unknown line %q", s)
		}
		return idx, neg, nil
	}

	kind := spec[:1]
	size := 0
	if len(spec) > 1 {
		if _, err := fmt.Sscanf(spec[1:], "%d", &size); err != nil {
			return fmt.Errorf("bad gate spec %q", spec)
		}
	} else {
		size = len(args)
	}
	if size != len(args) {
		return fmt.Errorf("gate %q expects %d lines, got %d", spec, size, len(args))
	}

	switch kind {
	case "t": // multi-controlled Toffoli: last line is the target
		if size < 1 {
			return fmt.Errorf("t gate needs at least a target")
		}
		target, neg, err := resolve(args[size-1])
		if err != nil {
			return err
		}
		if neg {
			return fmt.Errorf("target %q may not be negated", args[size-1])
		}
		var controls []dd.Control
		for _, a := range args[:size-1] {
			q, neg, err := resolve(a)
			if err != nil {
				return err
			}
			controls = append(controls, dd.Control{Qubit: q, Negative: neg})
		}
		c.MC("x", gates.X, controls, target)
	case "f": // multi-controlled Fredkin: last two lines are swapped
		if size < 2 {
			return fmt.Errorf("f gate needs two targets")
		}
		a, negA, err := resolve(args[size-2])
		if err != nil {
			return err
		}
		b, negB, err := resolve(args[size-1])
		if err != nil {
			return err
		}
		if negA || negB {
			return fmt.Errorf("fredkin targets may not be negated")
		}
		var controls []dd.Control
		for _, s := range args[:size-2] {
			q, neg, err := resolve(s)
			if err != nil {
				return err
			}
			controls = append(controls, dd.Control{Qubit: q, Negative: neg})
		}
		// CSWAP = CX(b,a) · CCX(ctl…,a,b) · CX(b,a) generalised to any
		// control set.
		c.CX(b, a)
		c.MC("x", gates.X, append(append([]dd.Control{}, controls...), dd.Pos(a)), b)
		c.CX(b, a)
	case "p", "q": // Peres (p) and inverse Peres (q/pi): a,b,c lines
		if size != 3 {
			return fmt.Errorf("peres gate needs exactly 3 lines")
		}
		a, negA, err := resolve(args[0])
		if err != nil {
			return err
		}
		b, negB, err := resolve(args[1])
		if err != nil {
			return err
		}
		tgt, negC, err := resolve(args[2])
		if err != nil {
			return err
		}
		if negA || negB || negC {
			return fmt.Errorf("peres lines may not be negated")
		}
		if kind == "p" {
			// Peres = CCX(a,b,c) · CX(a,b)  (applied right to left)
			c.CX(a, b)
			c.CCX(a, b, tgt)
		} else {
			c.CCX(a, b, tgt)
			c.CX(a, b)
		}
	case "v": // controlled V = controlled sqrt(X)
		if err := appendControlledRoot(c, vars, args, false); err != nil {
			return err
		}
	case "w": // RevLib "v+": controlled V† (also written v+ in some files)
		if err := appendControlledRoot(c, vars, args, true); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unsupported gate kind %q", spec)
	}
	return nil
}

func appendControlledRoot(c *circuit.Circuit, vars map[string]int, args []string, adjoint bool) error {
	if len(args) < 1 {
		return fmt.Errorf("v gate needs a target")
	}
	target, ok := vars[args[len(args)-1]]
	if !ok {
		return fmt.Errorf("unknown line %q", args[len(args)-1])
	}
	var controls []dd.Control
	for _, a := range args[:len(args)-1] {
		neg := false
		if strings.HasPrefix(a, "-") {
			neg = true
			a = a[1:]
		}
		q, ok := vars[a]
		if !ok {
			return fmt.Errorf("unknown line %q", a)
		}
		controls = append(controls, dd.Control{Qubit: q, Negative: neg})
	}
	if adjoint {
		c.MC("sxdg", gates.SXdg, controls, target)
	} else {
		c.MC("sx", gates.SX, controls, target)
	}
	return nil
}

// Export writes the circuit in .real format. Only gates with a
// reversible-library equivalent are supported: X with any controls
// (t-gates), and sx/sxdg with controls (v/w).
func Export(w io.Writer, c *circuit.Circuit) error {
	var sb strings.Builder
	sb.WriteString(".version 2.0\n")
	fmt.Fprintf(&sb, ".numvars %d\n", c.NQubits)
	names := make([]string, c.NQubits)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	fmt.Fprintf(&sb, ".variables %s\n", strings.Join(names, " "))
	sb.WriteString(".begin\n")
	for i, g := range c.Gates {
		var kind string
		switch g.Name {
		case "x":
			kind = "t"
		case "sx":
			kind = "v"
		case "sxdg":
			kind = "w"
		default:
			return fmt.Errorf("real: gate %d (%s) has no reversible equivalent", i, g.Name)
		}
		size := len(g.Controls) + 1
		fmt.Fprintf(&sb, "%s%d", kind, size)
		for _, ctl := range g.Controls {
			if ctl.Negative {
				fmt.Fprintf(&sb, " -%s", names[ctl.Qubit])
			} else {
				fmt.Fprintf(&sb, " %s", names[ctl.Qubit])
			}
		}
		fmt.Fprintf(&sb, " %s\n", names[g.Target])
	}
	sb.WriteString(".end\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
