package qft

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
)

// dftAmplitudes returns the exact QFT image of basis state |x> on n
// qubits: (1/√2^n) e^{2πi·xy/2^n} at index y.
func dftAmplitudes(n int, x uint64) []complex128 {
	dim := uint64(1) << uint(n)
	out := make([]complex128, dim)
	norm := complex(1/math.Sqrt(float64(dim)), 0)
	for y := uint64(0); y < dim; y++ {
		theta := 2 * math.Pi * float64(x*y%dim) / float64(dim)
		out[y] = norm * cmplx.Exp(complex(0, theta))
	}
	return out
}

func TestQFTMatchesDFT(t *testing.T) {
	for n := 1; n <= 6; n++ {
		c := Circuit(n, true)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		dim := uint64(1) << uint(n)
		for x := uint64(0); x < dim; x++ {
			s := dense.NewState(n)
			// Prepare |x>.
			for q := 0; q < n; q++ {
				if x>>uint(q)&1 == 1 {
					s.Apply([2][2]complex128{{0, 1}, {1, 0}}, q, nil)
				}
			}
			s.Run(c)
			want := dftAmplitudes(n, x)
			for y := range s.Amps {
				if cmplx.Abs(s.Amps[y]-want[y]) > 1e-9 {
					t.Fatalf("n=%d x=%d: amplitude %d = %v, want %v", n, x, y, s.Amps[y], want[y])
				}
			}
		}
	}
}

func TestQFTWithoutSwapsIsBitReversed(t *testing.T) {
	n := 4
	c := Circuit(n, false)
	dim := uint64(1) << uint(n)
	rev := func(y uint64) uint64 {
		var r uint64
		for i := 0; i < n; i++ {
			r |= (y >> uint(i) & 1) << uint(n-1-i)
		}
		return r
	}
	x := uint64(5)
	s := dense.NewState(n)
	for q := 0; q < n; q++ {
		if x>>uint(q)&1 == 1 {
			s.Apply([2][2]complex128{{0, 1}, {1, 0}}, q, nil)
		}
	}
	s.Run(c)
	want := dftAmplitudes(n, x)
	for y := uint64(0); y < dim; y++ {
		if cmplx.Abs(s.Amps[rev(y)]-want[y]) > 1e-9 {
			t.Fatalf("bit-reversed amplitude mismatch at %d", y)
		}
	}
}

func TestInverseQFTRoundTrip(t *testing.T) {
	n := 5
	c := Circuit(n, true)
	c.AppendCircuit(InverseCircuit(n, true))
	res, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// QFT·QFT† on |0…0> must return |0…0>.
	if got := res.State.Amplitude(0); cmplx.Abs(got-1) > 1e-8 {
		t.Fatalf("round trip amplitude %v, want 1", got)
	}
}

func TestAppendInverseMatchesInverse(t *testing.T) {
	n := 4
	qs := []int{3, 2, 1, 0}
	a := Circuit(n, true)
	bInv := InverseCircuit(n, true)
	manual := a.Inverse()
	_ = bInv
	// AppendInverse on a fresh circuit must equal Circuit(n).Inverse()
	// in behaviour: compose and check identity.
	comp := Circuit(n, true)
	AppendInverse(comp, qs, true)
	s := dense.Simulate(comp)
	if cmplx.Abs(s.Amps[0]-1) > 1e-8 {
		t.Fatalf("QFT followed by AppendInverse is not identity: %v", s.Amps[0])
	}
	_ = manual
}

func TestGateCount(t *testing.T) {
	// QFT has n Hadamards, n(n-1)/2 controlled phases, and 3*floor(n/2)
	// CX gates from the swaps.
	n := 6
	c := Circuit(n, true)
	want := n + n*(n-1)/2 + 3*(n/2)
	if c.GateCount() != want {
		t.Fatalf("gate count %d, want %d", c.GateCount(), want)
	}
	c2 := Circuit(n, false)
	if c2.GateCount() != n+n*(n-1)/2 {
		t.Fatalf("swapless gate count %d", c2.GateCount())
	}
}

func TestQFTStateIsCompactDD(t *testing.T) {
	// The QFT of a basis state is a tensor-product state, which a DD
	// represents with one node per level — a structure the DD simulator
	// exploits heavily.
	n := 10
	c := Circuit(n, false)
	res, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.SizeV(res.State) != n {
		t.Fatalf("QFT|0> DD size %d, want %d", res.Engine.SizeV(res.State), n)
	}
}
