// Package qft generates quantum Fourier transform circuits — the
// arithmetic backbone of the Draper adders in the Shor benchmarks and a
// benchmark circuit in its own right.
package qft

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Circuit returns the QFT on qubits [0, n) of an n-qubit register,
// mapping |x> to (1/√2^n) Σ_y e^{2πi·xy/2^n} |y>. The construction is
// the textbook cascade of Hadamards and controlled phases followed by
// the qubit-reversing swap network (included iff withSwaps).
func Circuit(n int, withSwaps bool) *circuit.Circuit {
	c := circuit.New(n)
	c.Name = fmt.Sprintf("qft_%d", n)
	Append(c, allQubits(n), withSwaps)
	return c
}

// InverseCircuit returns the inverse QFT on n qubits.
func InverseCircuit(n int, withSwaps bool) *circuit.Circuit {
	inv := Circuit(n, withSwaps).Inverse()
	inv.Name = fmt.Sprintf("iqft_%d", n)
	return inv
}

// Append appends the QFT acting on the given qubit slice (most
// significant first) to an existing circuit — used by the Shor adders,
// which apply the QFT to a sub-register.
func Append(c *circuit.Circuit, qubits []int, withSwaps bool) {
	n := len(qubits)
	// qubits[0] is the most significant position of the transformed
	// register. Standard cascade: H on the MSB, then controlled phases
	// with exponentially decreasing angles from the lower qubits.
	for i := 0; i < n; i++ {
		c.H(qubits[i])
		for j := i + 1; j < n; j++ {
			angle := math.Pi / float64(uint64(1)<<uint(j-i))
			c.CP(angle, qubits[j], qubits[i])
		}
	}
	if withSwaps {
		for i := 0; i < n/2; i++ {
			c.Swap(qubits[i], qubits[n-1-i])
		}
	}
}

// AppendInverse appends the inverse QFT on the given qubits.
func AppendInverse(c *circuit.Circuit, qubits []int, withSwaps bool) {
	if withSwaps {
		for i := n(qubits) / 2; i > 0; i-- {
			c.Swap(qubits[i-1], qubits[n(qubits)-i])
		}
	}
	for i := n(qubits) - 1; i >= 0; i-- {
		for j := n(qubits) - 1; j > i; j-- {
			angle := -math.Pi / float64(uint64(1)<<uint(j-i))
			c.CP(angle, qubits[j], qubits[i])
		}
		c.H(qubits[i])
	}
}

func n(qubits []int) int { return len(qubits) }

func allQubits(n int) []int {
	qs := make([]int, n)
	for i := range qs {
		// Most significant first: qubit n-1 carries the top bit in our
		// little-endian register convention.
		qs[i] = n - 1 - i
	}
	return qs
}
